#include "knmatch/common/status.h"

#include <gtest/gtest.h>

namespace knmatch {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, NamedConstructorsCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");

  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::DataLoss("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(StatusTest, ToStringNamesEveryCode) {
  EXPECT_EQ(Status::DataLoss("page 7 corrupt").ToString(),
            "DataLoss: page 7 corrupt");
  EXPECT_EQ(Status::Unavailable("retries exhausted").ToString(),
            "Unavailable: retries exhausted");
  EXPECT_EQ(Status::NotFound("nope").ToString(), "NotFound: nope");
  EXPECT_EQ(Status::DeadlineExceeded("1ms budget spent").ToString(),
            "DeadlineExceeded: 1ms budget spent");
  EXPECT_EQ(Status::ResourceExhausted("page budget").ToString(),
            "ResourceExhausted: page budget");
}

TEST(StatusTest, EqualityComparesCodeOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
  EXPECT_NE(Status::DataLoss("a"), Status::Unavailable("a"));
  EXPECT_FALSE(Status::DataLoss("a") != Status::DataLoss("b"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(41);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 41);
  r.value() = 42;
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveExtractsValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, HoldsNewErrorCodes) {
  Result<int> loss(Status::DataLoss("gone"));
  EXPECT_FALSE(loss.ok());
  EXPECT_EQ(loss.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(loss.status().message(), "gone");

  Result<int> flaky(Status::Unavailable("try later"));
  EXPECT_FALSE(flaky.ok());
  EXPECT_EQ(flaky.status().code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace knmatch

#include "knmatch/core/sorted_columns.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "knmatch/common/random.h"
#include "knmatch/datagen/generators.h"

namespace knmatch {
namespace {

TEST(SortedColumnsTest, EmptyDefault) {
  SortedColumns columns;
  EXPECT_EQ(columns.dims(), 0u);
  EXPECT_EQ(columns.size(), 0u);
}

TEST(SortedColumnsTest, ColumnsAreSortedAndComplete) {
  Dataset db = datagen::MakeUniform(200, 6, 3);
  SortedColumns columns(db);
  ASSERT_EQ(columns.dims(), 6u);
  ASSERT_EQ(columns.size(), 200u);
  for (size_t dim = 0; dim < 6; ++dim) {
    auto col = columns.column(dim);
    std::set<PointId> pids;
    for (size_t i = 0; i < col.size(); ++i) {
      if (i > 0) EXPECT_LE(col[i - 1].value, col[i].value);
      EXPECT_EQ(col[i].value, db.at(col[i].pid, dim));
      pids.insert(col[i].pid);
    }
    EXPECT_EQ(pids.size(), 200u) << "every pid appears exactly once";
  }
}

TEST(SortedColumnsTest, DuplicateValuesTieBrokenByPid) {
  Dataset db(Matrix::FromRows({{0.5}, {0.5}, {0.2}, {0.5}}));
  SortedColumns columns(db);
  auto col = columns.column(0);
  EXPECT_EQ(col[0].pid, 2u);
  EXPECT_EQ(col[1].pid, 0u);
  EXPECT_EQ(col[2].pid, 1u);
  EXPECT_EQ(col[3].pid, 3u);
}

TEST(SortedColumnsTest, LowerBoundSemantics) {
  Dataset db(Matrix::FromRows({{0.1}, {0.3}, {0.3}, {0.7}}));
  SortedColumns columns(db);
  EXPECT_EQ(columns.LowerBound(0, 0.0), 0u);
  EXPECT_EQ(columns.LowerBound(0, 0.1), 0u);
  EXPECT_EQ(columns.LowerBound(0, 0.2), 1u);
  EXPECT_EQ(columns.LowerBound(0, 0.3), 1u);   // first of the duplicates
  EXPECT_EQ(columns.LowerBound(0, 0.31), 3u);
  EXPECT_EQ(columns.LowerBound(0, 0.7), 3u);
  EXPECT_EQ(columns.LowerBound(0, 0.8), 4u);   // past the end
}

TEST(SortedColumnsTest, LowerBoundAgreesWithStdLowerBound) {
  Dataset db = datagen::MakeUniform(500, 3, 17);
  SortedColumns columns(db);
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t dim = trial % 3;
    const Value v = rng.Uniform(-0.1, 1.1);
    auto col = columns.column(dim);
    auto it = std::lower_bound(
        col.begin(), col.end(), v,
        [](const ColumnEntry& e, Value t) { return e.value < t; });
    EXPECT_EQ(columns.LowerBound(dim, v),
              static_cast<size_t>(it - col.begin()));
  }
}

}  // namespace
}  // namespace knmatch

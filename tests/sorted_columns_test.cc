#include "knmatch/core/sorted_columns.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "knmatch/common/random.h"
#include "knmatch/datagen/generators.h"

namespace knmatch {
namespace {

TEST(SortedColumnsTest, EmptyDefault) {
  SortedColumns columns;
  EXPECT_EQ(columns.dims(), 0u);
  EXPECT_EQ(columns.size(), 0u);
}

TEST(SortedColumnsTest, ColumnsAreSortedAndComplete) {
  Dataset db = datagen::MakeUniform(200, 6, 3);
  SortedColumns columns(db);
  ASSERT_EQ(columns.dims(), 6u);
  ASSERT_EQ(columns.size(), 200u);
  for (size_t dim = 0; dim < 6; ++dim) {
    auto vals = columns.values(dim);
    auto ids = columns.pids(dim);
    ASSERT_EQ(vals.size(), ids.size());
    std::set<PointId> pids;
    for (size_t i = 0; i < vals.size(); ++i) {
      if (i > 0) EXPECT_LE(vals[i - 1], vals[i]);
      EXPECT_EQ(vals[i], db.at(ids[i], dim));
      EXPECT_EQ(columns.entry(dim, i), (ColumnEntry{vals[i], ids[i]}));
      pids.insert(ids[i]);
    }
    EXPECT_EQ(pids.size(), 200u) << "every pid appears exactly once";
  }
}

TEST(SortedColumnsTest, DuplicateValuesTieBrokenByPid) {
  Dataset db(Matrix::FromRows({{0.5}, {0.5}, {0.2}, {0.5}}));
  SortedColumns columns(db);
  auto ids = columns.pids(0);
  EXPECT_EQ(ids[0], 2u);
  EXPECT_EQ(ids[1], 0u);
  EXPECT_EQ(ids[2], 1u);
  EXPECT_EQ(ids[3], 3u);
}

TEST(SortedColumnsTest, LowerBoundSemantics) {
  Dataset db(Matrix::FromRows({{0.1}, {0.3}, {0.3}, {0.7}}));
  SortedColumns columns(db);
  EXPECT_EQ(columns.LowerBound(0, 0.0), 0u);
  EXPECT_EQ(columns.LowerBound(0, 0.1), 0u);
  EXPECT_EQ(columns.LowerBound(0, 0.2), 1u);
  EXPECT_EQ(columns.LowerBound(0, 0.3), 1u);   // first of the duplicates
  EXPECT_EQ(columns.LowerBound(0, 0.31), 3u);
  EXPECT_EQ(columns.LowerBound(0, 0.7), 3u);
  EXPECT_EQ(columns.LowerBound(0, 0.8), 4u);   // past the end
}

TEST(SortedColumnsTest, LowerBoundAgreesWithStdLowerBound) {
  Dataset db = datagen::MakeUniform(500, 3, 17);
  SortedColumns columns(db);
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t dim = trial % 3;
    const Value v = rng.Uniform(-0.1, 1.1);
    auto vals = columns.values(dim);
    auto it = std::lower_bound(vals.begin(), vals.end(), v);
    EXPECT_EQ(columns.LowerBound(dim, v),
              static_cast<size_t>(it - vals.begin()));
  }
}

}  // namespace
}  // namespace knmatch

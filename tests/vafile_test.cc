#include <cmath>

#include <gtest/gtest.h>

#include "knmatch/common/random.h"
#include "knmatch/core/nmatch_naive.h"
#include "knmatch/baselines/knn_scan.h"
#include "knmatch/datagen/generators.h"
#include "knmatch/storage/row_store.h"
#include "knmatch/vafile/va_file.h"
#include "knmatch/vafile/va_knmatch.h"
#include "knmatch/vafile/va_knn.h"

namespace knmatch {
namespace {

TEST(VaFileTest, QuantizeRoundTripsIntoCell) {
  Dataset db = datagen::MakeUniform(400, 5, 20);
  DiskSimulator disk;
  VaFile va(db, &disk, 8);
  EXPECT_EQ(va.cells(), 256u);
  for (PointId pid = 0; pid < 50; ++pid) {
    for (size_t dim = 0; dim < db.dims(); ++dim) {
      const Value v = db.at(pid, dim);
      const uint32_t code = va.Quantize(dim, v);
      EXPECT_LE(va.CellLower(dim, code), v + 1e-12);
      EXPECT_GE(va.CellUpper(dim, code), v - 1e-12);
    }
  }
}

TEST(VaFileTest, ApproxScanReproducesQuantization) {
  Dataset db = datagen::MakeUniform(1000, 6, 21);
  DiskSimulator disk;
  VaFile va(db, &disk, 8);
  const size_t s = va.OpenStream();
  PointId expected = 0;
  va.ForEachApprox(s, [&](PointId pid, std::span<const uint32_t> codes) {
    ASSERT_EQ(pid, expected++);
    for (size_t dim = 0; dim < db.dims(); ++dim) {
      ASSERT_EQ(codes[dim], va.Quantize(dim, db.at(pid, dim)))
          << "pid=" << pid << " dim=" << dim;
    }
  });
  EXPECT_EQ(expected, 1000u);
  // The scan is sequential.
  EXPECT_EQ(disk.random_reads(), 1u);
}

TEST(VaFileTest, OddBitWidthsPackCorrectly) {
  Dataset db = datagen::MakeUniform(300, 7, 22);
  DiskSimulator disk;
  VaFile va(db, &disk, 5);  // 35 bits per row -> deliberately unaligned
  EXPECT_EQ(va.cells(), 32u);
  const size_t s = va.OpenStream();
  va.ForEachApprox(s, [&](PointId pid, std::span<const uint32_t> codes) {
    for (size_t dim = 0; dim < db.dims(); ++dim) {
      ASSERT_EQ(codes[dim], va.Quantize(dim, db.at(pid, dim)))
          << "pid=" << pid << " dim=" << dim;
    }
  });
}

TEST(VaFileTest, ApproximationIsSmallerThanRowFile) {
  Dataset db = datagen::MakeUniform(20000, 16, 23);
  DiskSimulator disk;
  RowStore rows(db, &disk);
  VaFile va(db, &disk, 8);
  // 8 bits vs 64-bit doubles: the approximation should be ~1/8 the
  // size (the paper's float data gives 25%).
  EXPECT_LT(va.num_pages(), rows.num_pages() / 6);
}

TEST(VaFileTest, BoundsBracketTrueDifference) {
  Dataset db = datagen::MakeUniform(200, 4, 24);
  DiskSimulator disk;
  VaFile va(db, &disk, 6);
  Rng rng(55);
  std::vector<Value> q(4);
  for (Value& v : q) v = rng.Uniform01();
  for (PointId pid = 0; pid < db.size(); ++pid) {
    for (size_t dim = 0; dim < 4; ++dim) {
      const uint32_t code = va.Quantize(dim, db.at(pid, dim));
      const Value lo = va.CellLower(dim, code);
      const Value hi = va.CellUpper(dim, code);
      Value lb = 0;
      if (q[dim] < lo) {
        lb = lo - q[dim];
      } else if (q[dim] > hi) {
        lb = q[dim] - hi;
      }
      const Value ub =
          std::max(std::abs(q[dim] - lo), std::abs(q[dim] - hi));
      const Value truth = std::abs(db.at(pid, dim) - q[dim]);
      EXPECT_LE(lb, truth + 1e-12);
      EXPECT_GE(ub, truth - 1e-12);
    }
  }
}

class VaEquivalence : public ::testing::TestWithParam<unsigned> {};

TEST_P(VaEquivalence, FrequentKnMatchExactlyMatchesNaive) {
  const unsigned bits = GetParam();
  Dataset db = datagen::MakeUniform(800, 8, 25);
  DiskSimulator disk;
  RowStore rows(db, &disk);
  VaFile va(db, &disk, bits);
  VaKnMatchSearcher searcher(va, rows);

  Rng rng(77);
  std::vector<Value> q(8);
  for (Value& v : q) v = rng.Uniform01();

  auto va_result = searcher.FrequentKnMatch(q, 2, 7, 6);
  auto naive = FrequentKnMatchNaive(db, q, 2, 7, 6);
  ASSERT_TRUE(va_result.ok());
  EXPECT_EQ(va_result.value().base.matches, naive.value().matches);
  EXPECT_EQ(va_result.value().base.frequencies, naive.value().frequencies);
  EXPECT_EQ(va_result.value().base.per_n_sets, naive.value().per_n_sets);
  EXPECT_LE(va_result.value().points_refined, db.size());
}

TEST_P(VaEquivalence, MoreBitsPruneMore) {
  Dataset db = datagen::MakeSkewed(2000, 8, 26);
  DiskSimulator disk;
  RowStore rows(db, &disk);
  VaFile coarse(db, &disk, 2);
  VaFile fine(db, &disk, 8);
  VaKnMatchSearcher coarse_search(coarse, rows);
  VaKnMatchSearcher fine_search(fine, rows);
  std::vector<Value> q(db.point(3).begin(), db.point(3).end());
  auto rc = coarse_search.FrequentKnMatch(q, 2, 7, 5);
  auto rf = fine_search.FrequentKnMatch(q, 2, 7, 5);
  ASSERT_TRUE(rc.ok());
  ASSERT_TRUE(rf.ok());
  EXPECT_LE(rf.value().points_refined, rc.value().points_refined);
  EXPECT_EQ(rf.value().base.matches, rc.value().base.matches);
}

INSTANTIATE_TEST_SUITE_P(Bits, VaEquivalence, ::testing::Values(4, 6, 8),
                         [](const ::testing::TestParamInfo<unsigned>& info) {
                           return "bits" + std::to_string(info.param);
                         });

TEST(VaKnnTest, ExactlyMatchesScanKnn) {
  Dataset db = datagen::MakeUniform(600, 10, 27);
  DiskSimulator disk;
  RowStore rows(db, &disk);
  VaFile va(db, &disk, 8);
  VaKnnSearcher searcher(va, rows);
  Rng rng(88);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<Value> q(10);
    for (Value& v : q) v = rng.Uniform01();
    auto va_result = searcher.Knn(q, 9);
    auto scan = KnnScan(db, q, 9, Metric::kEuclidean);
    ASSERT_TRUE(va_result.ok());
    EXPECT_EQ(va_result.value().matches, scan.value().matches);
    EXPECT_LT(searcher.last_points_refined(), db.size());
  }
}

TEST(VaKnmatchTest, KnMatchSpecialCaseMatchesNaive) {
  Dataset db = datagen::MakeUniform(300, 6, 28);
  DiskSimulator disk;
  RowStore rows(db, &disk);
  VaFile va(db, &disk, 8);
  VaKnMatchSearcher searcher(va, rows);
  std::vector<Value> q(6, 0.66);
  auto va_result = searcher.KnMatch(q, 3, 4);
  auto naive = KnMatchNaive(db, q, 3, 4);
  ASSERT_TRUE(va_result.ok());
  EXPECT_EQ(va_result.value().base.per_n_sets[0], naive.value().matches);
}

TEST(VaKnmatchTest, RejectsMismatchedStores) {
  Dataset a = datagen::MakeUniform(100, 4, 29);
  Dataset b = datagen::MakeUniform(50, 4, 30);
  DiskSimulator disk;
  RowStore rows(a, &disk);
  VaFile va(b, &disk, 8);
  VaKnMatchSearcher searcher(va, rows);
  std::vector<Value> q(4, 0.5);
  EXPECT_FALSE(searcher.FrequentKnMatch(q, 1, 4, 3).ok());
}

}  // namespace
}  // namespace knmatch

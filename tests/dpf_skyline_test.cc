#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "knmatch/baselines/dpf.h"
#include "knmatch/baselines/knn_scan.h"
#include "knmatch/baselines/skyline.h"
#include "knmatch/core/nmatch_naive.h"
#include "knmatch/datagen/generators.h"

namespace knmatch {
namespace {

TEST(DpfTest, NEqualsDimsAndR1IsManhattan) {
  const Value p[] = {0.1, 0.5, 0.9};
  const Value q[] = {0.2, 0.2, 0.2};
  EXPECT_NEAR(DpfDistance(p, q, 3, 1.0),
              MetricDistance(p, q, Metric::kManhattan), 1e-12);
}

TEST(DpfTest, UsesOnlySmallestNDifferences) {
  const Value p[] = {0.0, 0.0, 10.0};
  const Value q[] = {0.1, 0.2, 0.0};
  EXPECT_NEAR(DpfDistance(p, q, 1, 1.0), 0.1, 1e-12);
  EXPECT_NEAR(DpfDistance(p, q, 2, 1.0), 0.3, 1e-12);
  EXPECT_NEAR(DpfDistance(p, q, 3, 1.0), 10.3, 1e-12);
}

TEST(DpfTest, MonotoneInN) {
  Dataset db = datagen::MakeUniform(50, 8, 40);
  std::vector<Value> q(8, 0.5);
  for (PointId pid = 0; pid < 10; ++pid) {
    Value prev = 0;
    for (size_t n = 1; n <= 8; ++n) {
      const Value dist = DpfDistance(db.point(pid), q, n);
      EXPECT_GE(dist, prev);
      prev = dist;
    }
  }
}

TEST(DpfTest, EuclideanNormVariant) {
  const Value p[] = {0.3, 0.4};
  const Value q[] = {0.0, 0.0};
  EXPECT_NEAR(DpfDistance(p, q, 2, 2.0), 0.5, 1e-12);
}

TEST(DpfTest, KnnScanReturnsAscending) {
  Dataset db = datagen::MakeUniform(300, 6, 41);
  std::vector<Value> q(6, 0.4);
  auto r = DpfKnn(db, q, 4, 10);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().matches.size(), 10u);
  for (size_t i = 0; i + 1 < 10; ++i) {
    EXPECT_LE(r.value().matches[i].distance,
              r.value().matches[i + 1].distance);
  }
  for (const Neighbor& nb : r.value().matches) {
    EXPECT_DOUBLE_EQ(nb.distance, DpfDistance(db.point(nb.pid), q, 4));
  }
}

TEST(DpfTest, RejectsBadNorm) {
  Dataset db = datagen::MakeUniform(10, 3, 42);
  std::vector<Value> q(3, 0.5);
  EXPECT_FALSE(DpfKnn(db, q, 2, 1, 0.0).ok());
}

// The paper's Figure 2 layout (2-d points around a query): the skyline
// of the differences is {A, B, C}, while e.g. the 3-1-match is {A, D,
// E} — different answers, as Section 2.1 stresses.
TEST(SkylineTest, Figure2Contrast) {
  // Differences |p - q| per point, chosen to mimic Figure 2:
  //   A: tiny x-diff, large y-diff
  //   B: small both
  //   C: large x-diff, tiny y-diff
  //   D: small x-diff, larger y than B
  //   E: slightly larger x than D, large y
  Dataset db(Matrix::FromRows({
      {0.05, 0.80},  // A
      {0.30, 0.30},  // B
      {0.90, 0.02},  // C
      {0.10, 0.60},  // D
      {0.15, 0.90},  // E
  }));
  std::vector<Value> q = {0.0, 0.0};

  auto skyline = SkylineOfDifferences(db, q);
  EXPECT_EQ(skyline, (std::vector<PointId>{0, 1, 2, 3}));  // A,B,C,D

  // 3-1-match: three points with the smallest single-dimension diff.
  auto knm = KnMatchNaive(db, q, 1, 3);
  ASSERT_TRUE(knm.ok());
  std::vector<PointId> pids;
  for (const auto& nb : knm.value().matches) pids.push_back(nb.pid);
  std::sort(pids.begin(), pids.end());
  EXPECT_EQ(pids, (std::vector<PointId>{0, 2, 3}));  // A, C, D
}

TEST(SkylineTest, SinglePointIsItsOwnSkyline) {
  Dataset db(Matrix::FromRows({{0.5, 0.5}}));
  EXPECT_EQ(SkylineBnl(db), std::vector<PointId>{0});
}

TEST(SkylineTest, DominatedChainCollapsesToOnePoint) {
  Dataset db(Matrix::FromRows({{3, 3}, {2, 2}, {1, 1}}));
  EXPECT_EQ(SkylineBnl(db), std::vector<PointId>{2});
}

TEST(SkylineTest, AntichainIsFullyKept) {
  Dataset db(Matrix::FromRows({{1, 4}, {2, 3}, {3, 2}, {4, 1}}));
  EXPECT_EQ(SkylineBnl(db), (std::vector<PointId>{0, 1, 2, 3}));
}

TEST(SkylineTest, DuplicatePointsDoNotDominateEachOther) {
  Dataset db(Matrix::FromRows({{1, 1}, {1, 1}}));
  EXPECT_EQ(SkylineBnl(db), (std::vector<PointId>{0, 1}));
}

TEST(SkylineTest, MatchesBruteForceOnRandomData) {
  Dataset db = datagen::MakeUniform(150, 3, 43);
  auto skyline = SkylineBnl(db);

  // Brute force check.
  std::vector<PointId> expected;
  for (PointId a = 0; a < db.size(); ++a) {
    bool dominated = false;
    for (PointId b = 0; b < db.size() && !dominated; ++b) {
      if (a == b) continue;
      bool all_le = true, one_lt = false;
      for (size_t dim = 0; dim < 3; ++dim) {
        if (db.at(b, dim) > db.at(a, dim)) all_le = false;
        if (db.at(b, dim) < db.at(a, dim)) one_lt = true;
      }
      dominated = all_le && one_lt;
    }
    if (!dominated) expected.push_back(a);
  }
  EXPECT_EQ(skyline, expected);
}

}  // namespace
}  // namespace knmatch

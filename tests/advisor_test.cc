#include "knmatch/eval/advisor.h"

#include <gtest/gtest.h>

#include "knmatch/datagen/generators.h"
#include "knmatch/datagen/texture_like.h"
#include "knmatch/diskalgo/disk_ad.h"
#include "knmatch/diskalgo/disk_scan.h"
#include "knmatch/storage/column_store.h"
#include "knmatch/storage/row_store.h"
#include "knmatch/vafile/va_file.h"
#include "knmatch/vafile/va_knmatch.h"

namespace knmatch::eval {
namespace {

TEST(QueryAdvisorTest, ValidatesParameters) {
  Dataset db = datagen::MakeUniform(1000, 8, 96);
  QueryAdvisor advisor(db);
  std::vector<Value> q(8, 0.5);
  EXPECT_FALSE(advisor.Estimate(q, 0, 8, 10).ok());
  EXPECT_FALSE(advisor.Estimate(q, 1, 9, 10).ok());
  std::vector<Value> bad(7, 0.5);
  EXPECT_FALSE(advisor.Estimate(bad, 1, 8, 10).ok());
}

TEST(QueryAdvisorTest, SelectiveQueryPrefersAd) {
  Dataset db = datagen::MakeTextureLike(97, 20000);
  QueryAdvisor advisor(db);
  std::vector<Value> q(db.point(11).begin(), db.point(11).end());
  auto estimate = advisor.Estimate(q, 4, 8, 10);
  ASSERT_TRUE(estimate.ok());
  EXPECT_EQ(estimate.value().best, SearchMethod::kDiskAd);
  EXPECT_LT(estimate.value().ad_attribute_fraction, 0.5);
}

TEST(QueryAdvisorTest, FullRangeUniformPrefersScanOverAd) {
  // n1 = d on uniform data: Figure 12(a) shows AD reading nearly the
  // whole column file, so scanning wins (per-page costs equal, AD adds
  // seeks).
  Dataset db = datagen::MakeUniform(20000, 16, 98);
  QueryAdvisor advisor(db);
  std::vector<Value> q(16, 0.5);
  auto estimate = advisor.Estimate(q, 14, 16, 50);
  ASSERT_TRUE(estimate.ok());
  EXPECT_GT(estimate.value().ad_attribute_fraction, 0.5);
  EXPECT_LT(estimate.value().scan_seconds, estimate.value().ad_seconds);
}

TEST(QueryAdvisorTest, EstimatedOrderingMatchesMeasuredOrdering) {
  Dataset db = datagen::MakeTextureLike(99, 15000);
  QueryAdvisor advisor(db);
  std::vector<Value> q(db.point(42).begin(), db.point(42).end());
  auto estimate = advisor.Estimate(q, 4, 8, 10);
  ASSERT_TRUE(estimate.ok());

  // Measure all three for real.
  DiskSimulator disk;
  RowStore rows(db, &disk);
  ColumnStore columns(db, &disk);
  VaFile va(db, &disk, 8);
  DiskScan scan(rows);
  DiskAdSearcher ad(columns);
  VaKnMatchSearcher va_search(va, rows);

  disk.ResetCounters();
  scan.FrequentKnMatch(q, 4, 8, 10).value();
  const double scan_io = disk.SimulatedIoSeconds();
  disk.ResetCounters();
  ad.FrequentKnMatch(q, 4, 8, 10).value();
  const double ad_io = disk.SimulatedIoSeconds();
  disk.ResetCounters();
  va_search.FrequentKnMatch(q, 4, 8, 10).value();
  const double va_io = disk.SimulatedIoSeconds();

  // The advisor picked AD; AD must indeed be the measured minimum.
  EXPECT_EQ(estimate.value().best, SearchMethod::kDiskAd);
  EXPECT_LT(ad_io, scan_io);
  EXPECT_LT(ad_io, va_io);
  // Estimates should be in the right ballpark (within 3x of measured).
  EXPECT_LT(estimate.value().scan_seconds, 3 * scan_io);
  EXPECT_GT(estimate.value().scan_seconds, scan_io / 3);
  EXPECT_LT(estimate.value().ad_seconds, 3 * ad_io);
  EXPECT_GT(estimate.value().ad_seconds, ad_io / 3);
}

TEST(QueryAdvisorTest, SampleLargerThanDatasetIsClamped) {
  Dataset db = datagen::MakeUniform(100, 4, 100);
  QueryAdvisor advisor(db, DiskConfig(), /*sample_size=*/100000);
  std::vector<Value> q(4, 0.5);
  EXPECT_TRUE(advisor.Estimate(q, 1, 4, 5).ok());
}

}  // namespace
}  // namespace knmatch::eval

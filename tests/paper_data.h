#ifndef KNMATCH_TESTS_PAPER_DATA_H_
#define KNMATCH_TESTS_PAPER_DATA_H_

#include <vector>

#include "knmatch/common/dataset.h"

namespace knmatch::testing {

// The example database of the paper's Figure 1 (10 dimensions, 4 data
// objects). Note the paper numbers objects from 1; we use pids 0-3 for
// its objects 1-4.
inline Dataset Figure1Database() {
  return Dataset(Matrix::FromRows({
      {1.1, 100, 1.2, 1.6, 1.6, 1.1, 1.2, 1.2, 1, 1},    // object 1
      {1.4, 1.4, 1.4, 1.5, 100, 1.4, 1.2, 1.2, 1, 1},    // object 2
      {1, 1, 1, 1, 1, 1, 2, 100, 2, 2},                  // object 3
      {20, 20, 20, 20, 20, 20, 20, 20, 20, 20},          // object 4
  }));
}

inline std::vector<Value> Figure1Query() {
  return {1, 1, 1, 1, 1, 1, 1, 1, 1, 1};
}

// The example database of the paper's Figure 3 (3 dimensions, 5 data
// objects); pids 0-4 are its objects 1-5.
inline Dataset Figure3Database() {
  return Dataset(Matrix::FromRows({
      {0.4, 1.0, 1.0},  // object 1
      {2.8, 5.5, 2.0},  // object 2
      {6.5, 7.8, 5.0},  // object 3
      {9.0, 9.0, 9.0},  // object 4
      {3.5, 1.5, 8.0},  // object 5
  }));
}

inline std::vector<Value> Figure3Query() { return {3.0, 7.0, 4.0}; }

}  // namespace knmatch::testing

#endif  // KNMATCH_TESTS_PAPER_DATA_H_

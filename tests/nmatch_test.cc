#include "knmatch/core/nmatch.h"

#include <gtest/gtest.h>

namespace knmatch {
namespace {

TEST(NMatchDifferenceTest, SortedAbsDifferencesSorts) {
  const Value p[] = {1.0, 5.0, 2.0};
  const Value q[] = {2.0, 1.0, 2.0};
  std::vector<Value> out;
  SortedAbsDifferences(p, q, &out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], 0.0);
  EXPECT_EQ(out[1], 1.0);
  EXPECT_EQ(out[2], 4.0);
}

TEST(NMatchDifferenceTest, MatchesDefinitionOneBased) {
  const Value p[] = {0.1, 0.5, 0.9};
  const Value q[] = {0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(NMatchDifference(p, q, 1), 0.1);
  EXPECT_DOUBLE_EQ(NMatchDifference(p, q, 2), 0.5);
  EXPECT_DOUBLE_EQ(NMatchDifference(p, q, 3), 0.9);
}

TEST(NMatchDifferenceTest, Symmetric) {
  const Value p[] = {0.3, 0.7};
  const Value q[] = {0.5, 0.1};
  EXPECT_EQ(NMatchDifference(p, q, 2), NMatchDifference(q, p, 2));
}

TEST(NMatchDifferenceTest, MonotoneInN) {
  const Value p[] = {0.9, 0.2, 0.4, 0.6};
  const Value q[] = {0.0, 0.0, 0.0, 0.0};
  Value prev = 0;
  for (size_t n = 1; n <= 4; ++n) {
    const Value diff = NMatchDifference(p, q, n);
    EXPECT_GE(diff, prev);
    prev = diff;
  }
}

// Section 2.1's demonstration that the n-match difference is not a
// metric: F(0.1,0.5,0.9), G(0.1,0.1,0.1), H(0.5,0.5,0.5) violate the
// triangle inequality under the 1-match difference.
TEST(NMatchDifferenceTest, PaperTriangleInequalityCounterexample) {
  const Value f[] = {0.1, 0.5, 0.9};
  const Value g[] = {0.1, 0.1, 0.1};
  const Value h[] = {0.5, 0.5, 0.5};
  const Value fg = NMatchDifference(f, g, 1);
  const Value fh = NMatchDifference(f, h, 1);
  const Value gh = NMatchDifference(g, h, 1);
  EXPECT_DOUBLE_EQ(fg, 0.0);
  EXPECT_DOUBLE_EQ(fh, 0.0);
  EXPECT_DOUBLE_EQ(gh, 0.4);
  EXPECT_LT(fg + fh, gh);  // triangle inequality fails
}

TEST(ValidateMatchParamsTest, AcceptsValid) {
  EXPECT_TRUE(ValidateMatchParams(10, 4, 4, 1, 4, 10).ok());
  EXPECT_TRUE(ValidateMatchParams(10, 4, 4, 2, 2, 1).ok());
}

TEST(ValidateMatchParamsTest, RejectsEmptyDatabase) {
  EXPECT_EQ(ValidateMatchParams(0, 4, 4, 1, 4, 1).code(),
            StatusCode::kFailedPrecondition);
}

TEST(ValidateMatchParamsTest, RejectsDimensionMismatch) {
  EXPECT_EQ(ValidateMatchParams(10, 4, 5, 1, 4, 1).code(),
            StatusCode::kInvalidArgument);
}

TEST(ValidateMatchParamsTest, RejectsBadNRange) {
  EXPECT_FALSE(ValidateMatchParams(10, 4, 4, 0, 4, 1).ok());
  EXPECT_FALSE(ValidateMatchParams(10, 4, 4, 1, 5, 1).ok());
  EXPECT_FALSE(ValidateMatchParams(10, 4, 4, 3, 2, 1).ok());
}

TEST(ValidateMatchParamsTest, RejectsBadK) {
  EXPECT_FALSE(ValidateMatchParams(10, 4, 4, 1, 4, 0).ok());
  EXPECT_FALSE(ValidateMatchParams(10, 4, 4, 1, 4, 11).ok());
}

}  // namespace
}  // namespace knmatch

// Tests for the query-execution subsystem: the fixed thread pool, the
// per-worker AdScratch arena, the flat cursor heap, the batch entry
// points on SimilarityEngine, and the engine's concurrent-query
// contract. The determinism tests are the load-bearing ones: batch
// answers must be bit-for-bit identical to sequential per-query
// answers, for every thread count, run after run.

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "knmatch/common/random.h"
#include "knmatch/core/ad_scratch.h"
#include "knmatch/datagen/generators.h"
#include "knmatch/engine.h"
#include "knmatch/eval/experiment.h"
#include "knmatch/exec/thread_pool.h"

namespace knmatch {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  exec::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  constexpr size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  std::atomic<bool> worker_in_range{true};
  pool.ParallelFor(kCount, [&](size_t worker, size_t i) {
    if (worker >= 4) worker_in_range = false;
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_TRUE(worker_in_range);
  for (size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ZeroWorkerPoolRunsInlineOnCaller) {
  exec::ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  const std::thread::id caller = std::this_thread::get_id();
  size_t ran = 0;
  bool on_caller = true;
  pool.ParallelFor(17, [&](size_t worker, size_t /*i*/) {
    if (std::this_thread::get_id() != caller || worker != 0) {
      on_caller = false;
    }
    ++ran;  // safe: inline execution is single-threaded
  });
  EXPECT_TRUE(on_caller);
  EXPECT_EQ(ran, 17u);
}

TEST(ThreadPoolTest, ReusableAcrossManyDispatches) {
  exec::ThreadPool pool(3);
  std::atomic<size_t> total{0};
  for (size_t round = 0; round < 50; ++round) {
    pool.ParallelFor(round, [&](size_t, size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 50u * 49u / 2);
}

TEST(ThreadPoolTest, ResolveThreadsMapsZeroToHardware) {
  const size_t hw = exec::ResolveThreads(0);
  EXPECT_GE(hw, 1u);
  // Default: explicit requests are clamped to the hardware thread count
  // (oversubscribing a CPU-bound pool only adds context switches).
  EXPECT_EQ(exec::ResolveThreads(5), std::min<size_t>(5, hw));
  EXPECT_EQ(exec::ResolveThreads(100000), std::min<size_t>(256, hw));
  // The documented override takes the request literally (up to 256).
  EXPECT_EQ(exec::ResolveThreads(5, /*allow_oversubscription=*/true), 5u);
  EXPECT_EQ(exec::ResolveThreads(100000, /*allow_oversubscription=*/true),
            256u);
}

// ---------------------------------------------------------------------------
// AdCursorHeap

TEST(AdCursorHeapTest, PopsInAscendingDifferenceThenSlotOrder) {
  internal::AdCursorHeap heap;
  heap.Reset(16);
  ASSERT_TRUE(heap.empty());
  // Includes a tie on dif (0.25) that must break by slot.
  const std::vector<std::pair<Value, uint32_t>> items = {
      {0.5, 3}, {0.25, 7}, {0.75, 1}, {0.25, 2}, {0.0, 9},
      {1.5, 0}, {0.125, 4}, {0.625, 6}, {0.25, 5}, {2.0, 8}};
  for (const auto& [dif, slot] : items) {
    heap.Push(internal::AdHeapItem{dif, slot, ColumnEntry{dif, slot}});
  }
  EXPECT_EQ(heap.size(), items.size());
  std::vector<std::pair<Value, uint32_t>> popped;
  while (!heap.empty()) {
    popped.emplace_back(heap.top().dif, heap.top().slot);
    heap.Pop();
  }
  auto sorted = items;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(popped, sorted);
}

TEST(AdCursorHeapTest, ResetReusesStorageAcrossQueries) {
  internal::AdCursorHeap heap;
  for (int round = 0; round < 3; ++round) {
    heap.Reset(4);
    for (uint32_t s = 0; s < 4; ++s) {
      heap.Push(internal::AdHeapItem{Value(4 - s), s, {}});
    }
    Value prev = -1;
    while (!heap.empty()) {
      EXPECT_GT(heap.top().dif, prev);
      prev = heap.top().dif;
      heap.Pop();
    }
  }
}

// ---------------------------------------------------------------------------
// AdScratch reuse

TEST(AdScratchTest, ReusedScratchGivesIdenticalAnswers) {
  const Dataset db = datagen::MakeUniform(500, 6, 991);
  const AdSearcher searcher(db);
  internal::AdScratch scratch;
  for (size_t qi = 0; qi < 40; ++qi) {
    std::vector<Value> q(db.point(qi * 7 % db.size()).begin(),
                         db.point(qi * 7 % db.size()).end());
    auto fresh = searcher.KnMatch(q, 3, 8);
    auto reused = searcher.KnMatch(q, 3, 8, {}, &scratch);
    ASSERT_TRUE(fresh.ok());
    ASSERT_TRUE(reused.ok());
    EXPECT_EQ(fresh.value().matches, reused.value().matches);
    EXPECT_EQ(fresh.value().attributes_retrieved,
              reused.value().attributes_retrieved);

    auto ffresh = searcher.FrequentKnMatch(q, 2, 5, 8);
    auto freused = searcher.FrequentKnMatch(q, 2, 5, 8, {}, &scratch);
    ASSERT_TRUE(ffresh.ok());
    ASSERT_TRUE(freused.ok());
    EXPECT_EQ(ffresh.value().matches, freused.value().matches);
    EXPECT_EQ(ffresh.value().frequencies, freused.value().frequencies);
    EXPECT_EQ(ffresh.value().per_n_sets, freused.value().per_n_sets);
  }
}

TEST(AdScratchTest, OneScratchServesDatasetsOfDifferentShapes) {
  // The arena grows to the largest shape seen and keeps serving
  // smaller ones; alternating shapes exercises Prepare's epoch logic.
  const Dataset small = datagen::MakeUniform(120, 4, 5);
  const Dataset large = datagen::MakeUniform(800, 10, 6);
  const AdSearcher s_small(small);
  const AdSearcher s_large(large);
  internal::AdScratch scratch;
  for (size_t round = 0; round < 10; ++round) {
    std::vector<Value> qs(small.point(round).begin(),
                          small.point(round).end());
    std::vector<Value> ql(large.point(round).begin(),
                          large.point(round).end());
    auto rs = s_small.KnMatch(qs, 2, 5, {}, &scratch);
    auto rl = s_large.KnMatch(ql, 6, 5, {}, &scratch);
    ASSERT_TRUE(rs.ok());
    ASSERT_TRUE(rl.ok());
    EXPECT_EQ(rs.value().matches, s_small.KnMatch(qs, 2, 5).value().matches);
    EXPECT_EQ(rl.value().matches, s_large.KnMatch(ql, 6, 5).value().matches);
  }
}

// ---------------------------------------------------------------------------
// Batch determinism

std::vector<std::vector<Value>> MixedQueries(const Dataset& db,
                                             size_t count) {
  // Half dataset points (selective queries), half uniform random
  // vectors (unselective) — both classes must be deterministic.
  std::vector<std::vector<Value>> queries;
  for (const PointId pid : eval::SampleQueryPids(db, count / 2, 77)) {
    auto p = db.point(pid);
    queries.emplace_back(p.begin(), p.end());
  }
  Rng rng(123);
  while (queries.size() < count) {
    std::vector<Value> q(db.dims());
    for (Value& v : q) v = rng.Uniform01();
    queries.push_back(std::move(q));
  }
  return queries;
}

TEST(BatchDeterminismTest, KnMatchBatchMatchesSequentialAtEveryThreadCount) {
  SimilarityEngine engine(datagen::MakeUniform(2000, 8, 321));
  exec::BatchRequest request;
  request.queries = MixedQueries(engine.dataset(), 48);

  std::vector<KnMatchResult> sequential;
  uint64_t total_attrs = 0;
  for (const auto& q : request.queries) {
    auto r = engine.KnMatch(q, 4, 10);
    ASSERT_TRUE(r.ok());
    total_attrs += r.value().attributes_retrieved;
    sequential.push_back(std::move(r).value());
  }

  for (const size_t threads : {1u, 2u, 4u, 8u}) {
    request.options.threads = threads;
    request.options.allow_oversubscription = true;
    for (int run = 0; run < 2; ++run) {  // run-to-run determinism too
      auto batch = engine.KnMatchBatch(request, 4, 10);
      ASSERT_TRUE(batch.ok()) << "threads=" << threads;
      ASSERT_EQ(batch.value().results.size(), sequential.size());
      EXPECT_EQ(batch.value().attributes_retrieved, total_attrs);
      for (size_t i = 0; i < sequential.size(); ++i) {
        EXPECT_EQ(batch.value().results[i].matches, sequential[i].matches)
            << "threads=" << threads << " run=" << run << " query=" << i;
        EXPECT_EQ(batch.value().results[i].attributes_retrieved,
                  sequential[i].attributes_retrieved);
      }
    }
  }
}

TEST(BatchDeterminismTest, FrequentKnMatchBatchMatchesSequential) {
  SimilarityEngine engine(datagen::MakeUniform(1500, 8, 654));
  exec::BatchRequest request;
  request.queries = MixedQueries(engine.dataset(), 32);

  std::vector<FrequentKnMatchResult> sequential;
  for (const auto& q : request.queries) {
    auto r = engine.FrequentKnMatch(q, 2, 6, 10);
    ASSERT_TRUE(r.ok());
    sequential.push_back(std::move(r).value());
  }

  for (const size_t threads : {1u, 2u, 4u, 8u}) {
    request.options.threads = threads;
    request.options.allow_oversubscription = true;
    auto batch = engine.FrequentKnMatchBatch(request, 2, 6, 10);
    ASSERT_TRUE(batch.ok()) << "threads=" << threads;
    ASSERT_EQ(batch.value().results.size(), sequential.size());
    for (size_t i = 0; i < sequential.size(); ++i) {
      const auto& b = batch.value().results[i];
      EXPECT_EQ(b.matches, sequential[i].matches) << "query " << i;
      EXPECT_EQ(b.frequencies, sequential[i].frequencies);
      EXPECT_EQ(b.per_n_sets, sequential[i].per_n_sets);
      EXPECT_EQ(b.attributes_retrieved, sequential[i].attributes_retrieved);
    }
  }
}

TEST(BatchDeterminismTest, KnnBatchMatchesSequential) {
  SimilarityEngine engine(datagen::MakeUniform(1200, 6, 987));
  exec::BatchRequest request;
  request.queries = MixedQueries(engine.dataset(), 24);

  std::vector<KnMatchResult> sequential;
  for (const auto& q : request.queries) {
    auto r = engine.Knn(q, 7);
    ASSERT_TRUE(r.ok());
    sequential.push_back(std::move(r).value());
  }

  for (const size_t threads : {1u, 2u, 4u, 8u}) {
    request.options.threads = threads;
    request.options.allow_oversubscription = true;
    auto batch = engine.KnnBatch(request, 7);
    ASSERT_TRUE(batch.ok()) << "threads=" << threads;
    ASSERT_EQ(batch.value().results.size(), sequential.size());
    for (size_t i = 0; i < sequential.size(); ++i) {
      EXPECT_EQ(batch.value().results[i].matches, sequential[i].matches)
          << "query " << i;
    }
  }
}

TEST(BatchDeterminismTest, WeightedBatchMatchesWeightedSequential) {
  SimilarityEngine engine(datagen::MakeUniform(600, 5, 42));
  const std::vector<Value> weights = {1.0, 2.0, 0.5, 3.0, 1.5};
  exec::BatchRequest request;
  request.queries = MixedQueries(engine.dataset(), 16);
  request.options.threads = 4;
  request.options.allow_oversubscription = true;

  auto batch = engine.KnMatchBatch(request, 3, 6, weights);
  ASSERT_TRUE(batch.ok());
  for (size_t i = 0; i < request.queries.size(); ++i) {
    auto r = engine.KnMatch(request.queries[i], 3, 6, weights);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(batch.value().results[i].matches, r.value().matches);
  }
}

// ---------------------------------------------------------------------------
// Batch validation & lifecycle

TEST(BatchValidationTest, RejectsBadQueryUpFrontNamingItsIndex) {
  SimilarityEngine engine(datagen::MakeUniform(100, 4, 1));
  exec::BatchRequest request;
  request.queries = {std::vector<Value>(4, 0.5), std::vector<Value>(3, 0.5)};
  auto r = engine.KnMatchBatch(request, 2, 5);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("query 1"), std::string::npos)
      << r.status().message();

  // Shared parameters are validated too.
  request.queries.pop_back();
  EXPECT_FALSE(engine.KnMatchBatch(request, 9, 5).ok());
  EXPECT_FALSE(engine.KnMatchBatch(request, 2, 500).ok());
  std::vector<Value> bad_weights(4, -1.0);
  EXPECT_FALSE(engine.KnMatchBatch(request, 2, 5, bad_weights).ok());
}

TEST(BatchValidationTest, EmptyBatchSucceedsWithNoResults) {
  SimilarityEngine engine(datagen::MakeUniform(100, 4, 2));
  exec::BatchRequest request;
  auto r = engine.FrequentKnMatchBatch(request, 1, 3, 5);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().results.empty());
  EXPECT_EQ(r.value().attributes_retrieved, 0u);
}

TEST(BatchLifecycleTest, BatchWorksAcrossInsertPointInvalidation) {
  SimilarityEngine engine(datagen::MakeUniform(300, 4, 3));
  exec::BatchRequest request;
  request.queries = MixedQueries(engine.dataset(), 8);
  request.options.threads = 2;
  request.options.allow_oversubscription = true;

  auto before = engine.KnMatchBatch(request, 2, 5);
  ASSERT_TRUE(before.ok());

  engine.InsertPoint(std::vector<Value>(4, 0.5));
  auto after = engine.KnMatchBatch(request, 2, 5);
  ASSERT_TRUE(after.ok());
  // The rebuilt index covers the new point; answers may legitimately
  // differ, but each must equal its sequential counterpart.
  for (size_t i = 0; i < request.queries.size(); ++i) {
    EXPECT_EQ(after.value().results[i].matches,
              engine.KnMatch(request.queries[i], 2, 5).value().matches);
  }
}

TEST(BatchLifecycleTest, ChangingThreadCountRebuildsPoolTransparently) {
  SimilarityEngine engine(datagen::MakeUniform(400, 6, 4));
  exec::BatchRequest request;
  request.queries = MixedQueries(engine.dataset(), 12);
  std::vector<Neighbor> reference;
  for (const size_t threads : {2u, 8u, 1u, 4u, 2u}) {
    request.options.threads = threads;
    request.options.allow_oversubscription = true;
    auto r = engine.KnMatchBatch(request, 3, 5);
    ASSERT_TRUE(r.ok());
    if (reference.empty()) {
      reference = r.value().results[0].matches;
    } else {
      EXPECT_EQ(r.value().results[0].matches, reference);
    }
  }
}

// ---------------------------------------------------------------------------
// Engine concurrency (the call_once contract; run under TSan by
// scripts/check_tsan.sh)

TEST(EngineConcurrencyTest, ConcurrentFirstQueriesRaceOnlyOnCallOnce) {
  SimilarityEngine engine(datagen::MakeUniform(800, 6, 5));
  std::vector<Value> q(engine.dataset().point(11).begin(),
                       engine.dataset().point(11).end());
  const auto expected = engine.KnMatch(q, 3, 5);  // warm reference
  ASSERT_TRUE(expected.ok());

  SimilarityEngine cold(datagen::MakeUniform(800, 6, 5));
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 8; ++i) {
        auto r = cold.KnMatch(q, 3, 5);       // first calls race EnsureAd
        auto f = cold.FrequentKnMatch(q, 2, 4, 5);
        auto s = cold.Knn(q, 5);
        if (!r.ok() || !f.ok() || !s.ok() ||
            r.value().matches != expected.value().matches) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(EngineConcurrencyTest, ConcurrentBatchCallsSerializeSafely) {
  SimilarityEngine engine(datagen::MakeUniform(500, 6, 6));
  exec::BatchRequest request;
  request.queries = MixedQueries(engine.dataset(), 16);
  request.options.threads = 2;
  request.options.allow_oversubscription = true;
  auto reference = engine.KnMatchBatch(request, 3, 5);
  ASSERT_TRUE(reference.ok());

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 4; ++i) {
        auto r = engine.KnMatchBatch(request, 3, 5);
        if (!r.ok() ||
            r.value().results[0].matches !=
                reference.value().results[0].matches) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// ---------------------------------------------------------------------------
// Chunked dispatch and duplicate collapse

TEST(ThreadPoolTest, ChunkedRunsEveryIndexOnceForAnyGrain) {
  exec::ThreadPool pool(4);
  constexpr size_t kCount = 997;  // prime: exercises the short tail chunk
  for (const size_t grain : {size_t{1}, size_t{7}, size_t{64}, size_t{2000}}) {
    std::vector<std::atomic<int>> hits(kCount);
    bool ranges_ok = true;
    pool.ParallelForChunked(kCount, grain,
                            [&](size_t /*worker*/, size_t begin, size_t end) {
                              if (end <= begin || end > kCount) {
                                ranges_ok = false;
                              }
                              for (size_t i = begin; i < end; ++i) {
                                hits[i].fetch_add(1, std::memory_order_relaxed);
                              }
                            });
    EXPECT_TRUE(ranges_ok) << "grain " << grain;
    for (size_t i = 0; i < kCount; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "grain " << grain << " index " << i;
    }
  }
}

TEST(ThreadPoolTest, ChunkedZeroWorkerPoolRunsInline) {
  exec::ThreadPool pool(0);
  size_t ran = 0;
  pool.ParallelForChunked(10, 3, [&](size_t worker, size_t begin, size_t end) {
    EXPECT_EQ(worker, 0u);
    ran += end - begin;
  });
  EXPECT_EQ(ran, 10u);
}

TEST(BatchDedupTest, DuplicateQueriesCollapseToOneExecution) {
  SimilarityEngine engine(datagen::MakeUniform(400, 4, 91));
  exec::BatchRequest request;
  const std::vector<Value> hot{0.2, 0.4, 0.6, 0.8};
  const std::vector<Value> other{0.7, 0.1, 0.3, 0.9};
  // 6 copies of `hot` interleaved with 2 distinct queries.
  request.queries = {hot, other, hot, hot, {0.5, 0.5, 0.5, 0.5},
                     hot, hot, hot};
  request.options.threads = 2;
  request.options.allow_oversubscription = true;

  const auto batch = engine.KnMatchBatch(request, 2, 5);
  ASSERT_TRUE(batch.ok());
  // Every duplicate slot carries the representative's exact answer.
  const auto solo = engine.KnMatch(hot, 2, 5);
  ASSERT_TRUE(solo.ok());
  for (const size_t i : {0u, 2u, 3u, 5u, 6u, 7u}) {
    EXPECT_TRUE(batch.value().results[i].matches == solo.value().matches)
        << "slot " << i;
  }
  // The batch's cost metric counts the 3 distinct executions once each.
  uint64_t distinct_cost = solo.value().attributes_retrieved;
  for (const auto& q : {other, std::vector<Value>{0.5, 0.5, 0.5, 0.5}}) {
    distinct_cost += engine.KnMatch(q, 2, 5).value().attributes_retrieved;
  }
  EXPECT_EQ(batch.value().attributes_retrieved, distinct_cost);

  // With collapsing off the answers are identical and the cost metric
  // counts every slot.
  request.options.collapse_duplicates = false;
  const auto full = engine.KnMatchBatch(request, 2, 5);
  ASSERT_TRUE(full.ok());
  for (size_t i = 0; i < request.queries.size(); ++i) {
    EXPECT_TRUE(full.value().results[i].matches ==
                batch.value().results[i].matches)
        << "slot " << i;
  }
  EXPECT_GT(full.value().attributes_retrieved,
            batch.value().attributes_retrieved);
}

TEST(BatchDedupTest, GovernanceAccountingSeesDistinctQueriesOnly) {
  SimilarityEngine engine(datagen::MakeUniform(400, 4, 92));
  exec::BatchRequest request;
  const std::vector<Value> hot{0.3, 0.6, 0.2, 0.8};
  request.queries.assign(8, hot);  // one distinct query, 8 slots
  request.options.threads = 1;
  // An attribute pool large enough for exactly one execution of `hot`:
  // collapsing must satisfy all 8 slots from that single run.
  const auto solo = engine.KnMatch(hot, 2, 4);
  ASSERT_TRUE(solo.ok());
  request.options.attribute_pool = solo.value().attributes_retrieved;

  const auto batch = engine.KnMatchBatch(request, 2, 4);
  ASSERT_TRUE(batch.ok());
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(batch.value().statuses[i].ok()) << "slot " << i;
    EXPECT_TRUE(batch.value().results[i].matches == solo.value().matches)
        << "slot " << i;
  }
  EXPECT_EQ(batch.value().attributes_retrieved,
            solo.value().attributes_retrieved);

  // Without collapsing, the same pool is exhausted after the first
  // query and the remaining slots shed.
  request.options.collapse_duplicates = false;
  const auto shed = engine.KnMatchBatch(request, 2, 4);
  ASSERT_TRUE(shed.ok());
  EXPECT_TRUE(shed.value().statuses[0].ok());
  size_t exhausted = 0;
  for (size_t i = 1; i < 8; ++i) {
    if (shed.value().statuses[i].code() == StatusCode::kResourceExhausted) {
      ++exhausted;
    }
  }
  EXPECT_EQ(exhausted, 7u);
}

TEST(BatchDedupTest, QueueDepthCapAppliesBeforeCollapse) {
  SimilarityEngine engine(datagen::MakeUniform(300, 3, 93));
  exec::BatchRequest request;
  const std::vector<Value> hot{0.5, 0.5, 0.5};
  request.queries.assign(6, hot);
  request.options.threads = 1;
  request.options.max_queue_depth = 4;  // sheds slots 4 and 5 first

  const auto batch = engine.KnMatchBatch(request, 2, 3);
  ASSERT_TRUE(batch.ok());
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(batch.value().statuses[i].ok()) << "slot " << i;
  }
  for (size_t i = 4; i < 6; ++i) {
    EXPECT_EQ(batch.value().statuses[i].code(),
              StatusCode::kResourceExhausted)
        << "slot " << i;
  }
}

TEST(BatchDedupTest, ChunkedBatchStaysDeterministicAcrossThreadCounts) {
  SimilarityEngine engine(datagen::MakeUniform(800, 6, 94));
  exec::BatchRequest request;
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    std::vector<Value> q(6);
    for (Value& v : q) v = rng.Uniform01();
    request.queries.push_back(q);
    if (i % 3 == 0) request.queries.push_back(q);  // sprinkle duplicates
  }
  exec::BatchRequest seq = request;
  seq.options.threads = 1;
  const auto reference = engine.KnMatchBatch(seq, 3, 5);
  ASSERT_TRUE(reference.ok());
  for (const size_t threads : {2u, 4u, 8u}) {
    exec::BatchRequest par = request;
    par.options.threads = threads;
    par.options.allow_oversubscription = true;
    const auto got = engine.KnMatchBatch(par, 3, 5);
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got.value().results.size(), reference.value().results.size());
    for (size_t i = 0; i < got.value().results.size(); ++i) {
      EXPECT_TRUE(got.value().results[i].matches ==
                  reference.value().results[i].matches)
          << "threads " << threads << " slot " << i;
    }
    EXPECT_EQ(got.value().attributes_retrieved,
              reference.value().attributes_retrieved);
  }
}

}  // namespace
}  // namespace knmatch

#include "knmatch/common/matrix.h"

#include <gtest/gtest.h>

namespace knmatch {
namespace {

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(MatrixTest, SizedConstructionZeroInitializes) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 4; ++c) {
      EXPECT_EQ(m.at(r, c), 0.0);
    }
  }
}

TEST(MatrixTest, FromRowsBuildsRowMajor) {
  Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  ASSERT_EQ(m.rows(), 2u);
  ASSERT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.at(0, 0), 1.0);
  EXPECT_EQ(m.at(1, 2), 6.0);
}

TEST(MatrixTest, RowSpanViewsUnderlyingData) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  auto row1 = m.row(1);
  ASSERT_EQ(row1.size(), 2u);
  EXPECT_EQ(row1[0], 3.0);
  m.row(1)[0] = 7.0;
  EXPECT_EQ(m.at(1, 0), 7.0);
}

TEST(MatrixTest, AppendRowDefinesColsOnFirstRow) {
  Matrix m;
  const Value row[] = {0.5, 0.25};
  m.AppendRow(row);
  EXPECT_EQ(m.rows(), 1u);
  EXPECT_EQ(m.cols(), 2u);
  m.AppendRow(row);
  EXPECT_EQ(m.rows(), 2u);
}

TEST(MatrixTest, NormalizeColumnsMapsToUnitRange) {
  Matrix m = Matrix::FromRows({{0, 10}, {5, 20}, {10, 30}});
  auto ranges = m.NormalizeColumns();
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_EQ(ranges[0], (std::pair<Value, Value>{0, 10}));
  EXPECT_EQ(ranges[1], (std::pair<Value, Value>{10, 30}));
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(m.at(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.at(2, 1), 1.0);
}

TEST(MatrixTest, NormalizeConstantColumnMapsToZero) {
  Matrix m = Matrix::FromRows({{7, 1}, {7, 2}});
  m.NormalizeColumns();
  EXPECT_EQ(m.at(0, 0), 0.0);
  EXPECT_EQ(m.at(1, 0), 0.0);
}

}  // namespace
}  // namespace knmatch

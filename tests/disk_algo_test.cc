#include <gtest/gtest.h>

#include "knmatch/common/random.h"
#include "knmatch/core/ad_algorithm.h"
#include "knmatch/core/nmatch_naive.h"
#include "knmatch/datagen/generators.h"
#include "knmatch/diskalgo/disk_ad.h"
#include "knmatch/diskalgo/disk_scan.h"
#include "knmatch/baselines/knn_scan.h"
#include "knmatch/storage/column_store.h"
#include "knmatch/storage/row_store.h"

namespace knmatch {
namespace {

class DiskAlgoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = datagen::MakeUniform(6000, 8, 19);
    rows_.emplace(db_, &disk_);
    columns_.emplace(db_, &disk_);
    Rng rng(4242);
    query_.resize(db_.dims());
    for (Value& v : query_) v = rng.Uniform01();
  }

  Dataset db_;
  DiskSimulator disk_;
  std::optional<RowStore> rows_;
  std::optional<ColumnStore> columns_;
  std::vector<Value> query_;
};

TEST_F(DiskAlgoTest, DiskScanKnMatchEqualsNaive) {
  DiskScan scan(*rows_);
  for (size_t n : {size_t{1}, size_t{4}, size_t{8}}) {
    auto disk_result = scan.KnMatch(query_, n, 10);
    auto mem_result = KnMatchNaive(db_, query_, n, 10);
    ASSERT_TRUE(disk_result.ok());
    EXPECT_EQ(disk_result.value().matches, mem_result.value().matches);
  }
}

TEST_F(DiskAlgoTest, DiskScanFrequentEqualsNaive) {
  DiskScan scan(*rows_);
  auto disk_result = scan.FrequentKnMatch(query_, 2, 7, 6);
  auto mem_result = FrequentKnMatchNaive(db_, query_, 2, 7, 6);
  ASSERT_TRUE(disk_result.ok());
  EXPECT_EQ(disk_result.value().matches, mem_result.value().matches);
  EXPECT_EQ(disk_result.value().per_n_sets, mem_result.value().per_n_sets);
}

TEST_F(DiskAlgoTest, DiskScanKnnEqualsMemoryKnn) {
  DiskScan scan(*rows_);
  auto disk_result = scan.KnnEuclidean(query_, 12);
  auto mem_result = KnnScan(db_, query_, 12, Metric::kEuclidean);
  ASSERT_TRUE(disk_result.ok());
  EXPECT_EQ(disk_result.value().matches, mem_result.value().matches);
}

TEST_F(DiskAlgoTest, DiskScanIoIsOneSequentialPass) {
  DiskScan scan(*rows_);
  disk_.ResetCounters();
  auto r = scan.FrequentKnMatch(query_, 1, 8, 5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(disk_.total_reads(), rows_->num_pages());
  EXPECT_EQ(disk_.random_reads(), 1u);  // the initial seek only
}

TEST_F(DiskAlgoTest, DiskAdEqualsMemoryAdIncludingCost) {
  AdSearcher mem(db_);
  DiskAdSearcher ad(*columns_);
  for (size_t n : {size_t{1}, size_t{3}, size_t{8}}) {
    auto disk_result = ad.KnMatch(query_, n, 7);
    auto mem_result = mem.KnMatch(query_, n, 7);
    ASSERT_TRUE(disk_result.ok());
    EXPECT_EQ(disk_result.value().matches, mem_result.value().matches);
    EXPECT_EQ(disk_result.value().attributes_retrieved,
              mem_result.value().attributes_retrieved);
  }
}

TEST_F(DiskAlgoTest, DiskAdFrequentEqualsMemory) {
  AdSearcher mem(db_);
  DiskAdSearcher ad(*columns_);
  auto disk_result = ad.FrequentKnMatch(query_, 3, 6, 9);
  auto mem_result = mem.FrequentKnMatch(query_, 3, 6, 9);
  ASSERT_TRUE(disk_result.ok());
  EXPECT_EQ(disk_result.value().matches, mem_result.value().matches);
  EXPECT_EQ(disk_result.value().frequencies, mem_result.value().frequencies);
  EXPECT_EQ(disk_result.value().per_n_sets, mem_result.value().per_n_sets);
}

TEST_F(DiskAlgoTest, DiskAdReadsFewerPagesThanScanOnSelectiveQuery) {
  DiskAdSearcher ad(*columns_);
  DiskScan scan(*rows_);

  // A selective query (small n1), as in the paper's Figure 12 regime.
  disk_.ResetCounters();
  auto ad_result = ad.FrequentKnMatch(query_, 1, 3, 10);
  ASSERT_TRUE(ad_result.ok());
  const uint64_t ad_pages = disk_.total_reads();

  disk_.ResetCounters();
  auto scan_result = scan.FrequentKnMatch(query_, 1, 3, 10);
  ASSERT_TRUE(scan_result.ok());
  const uint64_t scan_pages = disk_.total_reads();

  EXPECT_LT(ad_pages, scan_pages);
}

TEST_F(DiskAlgoTest, BatchScanMatchesIndividualQueries) {
  DiskScan scan(*rows_);
  Rng rng(777);
  std::vector<std::vector<Value>> queries(3);
  for (auto& q : queries) {
    q.resize(db_.dims());
    for (Value& v : q) v = rng.Uniform01();
  }
  auto batch = scan.FrequentKnMatchBatch(queries, 2, 6, 7);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch.value().size(), 3u);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    auto single = scan.FrequentKnMatch(queries[qi], 2, 6, 7);
    EXPECT_EQ(batch.value()[qi].matches, single.value().matches);
    EXPECT_EQ(batch.value()[qi].per_n_sets, single.value().per_n_sets);
  }
}

TEST_F(DiskAlgoTest, BatchScanPaysIoOnce) {
  DiskScan scan(*rows_);
  std::vector<std::vector<Value>> queries(
      4, std::vector<Value>(db_.dims(), 0.5));
  queries[1].assign(db_.dims(), 0.2);
  queries[2].assign(db_.dims(), 0.8);
  queries[3].assign(db_.dims(), 0.35);

  disk_.ResetCounters();
  auto batch = scan.FrequentKnMatchBatch(queries, 1, 4, 5);
  ASSERT_TRUE(batch.ok());
  const uint64_t batch_pages = disk_.total_reads();

  disk_.ResetCounters();
  for (const auto& q : queries) {
    scan.FrequentKnMatch(q, 1, 4, 5).value();
  }
  const uint64_t individual_pages = disk_.total_reads();
  EXPECT_EQ(batch_pages, rows_->num_pages());
  EXPECT_EQ(individual_pages, 4 * rows_->num_pages());
}

TEST_F(DiskAlgoTest, BatchScanValidatesEveryQuery) {
  DiskScan scan(*rows_);
  std::vector<std::vector<Value>> queries = {
      std::vector<Value>(db_.dims(), 0.5),
      std::vector<Value>(db_.dims() - 1, 0.5),  // wrong arity
  };
  EXPECT_FALSE(scan.FrequentKnMatchBatch(queries, 1, 4, 5).ok());
}

TEST_F(DiskAlgoTest, DiskAdForwardRunsAreMostlySequential) {
  DiskAdSearcher ad(*columns_);
  disk_.ResetCounters();
  // A large-n query reads long runs per cursor.
  auto r = ad.FrequentKnMatch(query_, 2, 8, 30);
  ASSERT_TRUE(r.ok());
  // Random reads are bounded by roughly one seek per cursor direction
  // (2d), not by the number of pages touched.
  EXPECT_LE(disk_.random_reads(), 2 * db_.dims() + 2);
  EXPECT_GT(disk_.sequential_reads(), 0u);
}

}  // namespace
}  // namespace knmatch

// Sharded scatter-gather: partition plans, the exact answer merge, and
// the ShardRouter (hedged dispatch, replica failover, breaker-driven
// partial answers, rebalancing under snapshot reads). The Shard* suites
// also run under ASan/TSan (see scripts/check_asan.sh, check_tsan.sh).
//
// The heart of this file is ShardDifferentialSoak: >1000 randomized
// queries asserting the sharded answer is bit-identical to one
// unsharded engine, across all three partitioners, with hedging forced
// on, and under injected disk faults.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "knmatch.h"
#include "status_matchers.h"

namespace knmatch {
namespace {

using shard::Partitioner;
using shard::RouterOptions;
using shard::ShardRouter;

std::vector<Value> RandomQuery(Rng& rng, size_t dims) {
  std::vector<Value> q(dims);
  for (Value& v : q) v = static_cast<Value>(rng.Uniform01());
  return q;
}

void ExpectSameMatches(const std::vector<Neighbor>& sharded,
                       const std::vector<Neighbor>& unsharded,
                       const char* what) {
  ASSERT_EQ(sharded.size(), unsharded.size()) << what;
  for (size_t i = 0; i < sharded.size(); ++i) {
    EXPECT_EQ(sharded[i].pid, unsharded[i].pid) << what << " entry " << i;
    EXPECT_EQ(sharded[i].distance, unsharded[i].distance)
        << what << " entry " << i;
  }
}

void ExpectSameFrequent(const FrequentKnMatchResult& sharded,
                        const FrequentKnMatchResult& unsharded) {
  ExpectSameMatches(sharded.matches, unsharded.matches, "matches");
  EXPECT_EQ(sharded.frequencies, unsharded.frequencies);
  ASSERT_EQ(sharded.per_n_sets.size(), unsharded.per_n_sets.size());
  for (size_t n = 0; n < sharded.per_n_sets.size(); ++n) {
    ExpectSameMatches(sharded.per_n_sets[n], unsharded.per_n_sets[n],
                      "per_n_set");
  }
}

// ---------------------------------------------------------------------------
// The merge kernel (core/answer_merge.h).

TEST(ShardMerge, KWayMergeIsCanonical) {
  const std::vector<Neighbor> a = {{0, 0.1f}, {4, 0.3f}, {2, 0.5f}};
  const std::vector<Neighbor> b = {{3, 0.2f}, {1, 0.3f}};
  const std::vector<const std::vector<Neighbor>*> lists = {&a, &b};
  const std::vector<Neighbor> merged = internal::MergeAnswerLists(lists, 4);
  // Equal differences (0.3) order by pid: 1 before 4.
  const std::vector<Neighbor> want = {
      {0, 0.1f}, {3, 0.2f}, {1, 0.3f}, {4, 0.3f}};
  ASSERT_EQ(merged.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(merged[i].pid, want[i].pid) << i;
    EXPECT_EQ(merged[i].distance, want[i].distance) << i;
  }
}

TEST(ShardMerge, ResortsNonCanonicalInputAndClampsK) {
  // Same difference everywhere but pids out of order within a list:
  // the merge must still come out pid-ascending.
  const std::vector<Neighbor> a = {{7, 0.5f}, {1, 0.5f}};
  const std::vector<const std::vector<Neighbor>*> lists = {&a};
  const std::vector<Neighbor> merged = internal::MergeAnswerLists(lists, 10);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].pid, 1u);
  EXPECT_EQ(merged[1].pid, 7u);
  EXPECT_TRUE(internal::MergeAnswerLists({}, 5).empty());
}

TEST(ShardMerge, FrequentPartialsRankLikeTheNaiveRanker) {
  // Two shards, two levels (n0..n0+1). Point 5 appears on both levels,
  // points 2 and 9 once each; ranking is count desc, best diff asc,
  // pid asc — exactly RankByFrequency.
  FrequentKnMatchResult s0;
  s0.per_n_sets = {{{5, 0.2f}}, {{5, 0.1f}}};
  s0.attributes_retrieved = 10;
  FrequentKnMatchResult s1;
  s1.per_n_sets = {{{2, 0.05f}}, {{9, 0.3f}}};
  s1.attributes_retrieved = 7;
  const std::vector<const FrequentKnMatchResult*> partials = {&s0, &s1};
  const FrequentKnMatchResult merged =
      internal::MergeFrequentPartials(partials, 2, 2);
  ASSERT_EQ(merged.matches.size(), 2u);
  EXPECT_EQ(merged.matches[0].pid, 5u);
  EXPECT_EQ(merged.frequencies[0], 2u);
  EXPECT_EQ(merged.matches[1].pid, 2u);  // 0.05 beats 0.3
  EXPECT_EQ(merged.frequencies[1], 1u);
  EXPECT_EQ(merged.attributes_retrieved, 17u);
  ASSERT_EQ(merged.per_n_sets.size(), 2u);
}

// ---------------------------------------------------------------------------
// Partition plans.

TEST(ShardPartition, ParseRoundTrip) {
  for (Partitioner p : {Partitioner::kHash, Partitioner::kRange,
                        Partitioner::kKMeans}) {
    auto parsed = shard::ParsePartitioner(shard::PartitionerName(p));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), p);
  }
  EXPECT_TRUE(StatusIs(shard::ParsePartitioner("mod17"),
                       StatusCode::kInvalidArgument));
}

TEST(ShardPartition, PlanInvariants) {
  const Dataset db = datagen::MakeUniform(500, 6, 11);
  for (Partitioner p : {Partitioner::kHash, Partitioner::kRange,
                        Partitioner::kKMeans}) {
    const shard::PartitionPlan plan =
        shard::BuildPartitionPlan(db, p, 4, 8, 7);
    EXPECT_EQ(plan.num_shards, 4u);
    EXPECT_EQ(plan.partition_of.size(), db.size());
    EXPECT_EQ(plan.shard_of_partition.size(), plan.num_partitions);
    uint64_t total = 0;
    for (uint64_t n : plan.partition_points) total += n;
    EXPECT_EQ(total, db.size());
    const std::vector<uint64_t> shard_points = plan.ShardPoints();
    total = 0;
    for (uint64_t n : shard_points) total += n;
    EXPECT_EQ(total, db.size());
    for (PointId pid = 0; pid < db.size(); ++pid) {
      ASSERT_LT(plan.partition_of[pid], plan.num_partitions);
      ASSERT_LT(plan.shard_of(pid), plan.num_shards);
    }
  }
  // Range partitions are contiguous pid intervals.
  const shard::PartitionPlan range =
      shard::BuildPartitionPlan(db, Partitioner::kRange, 4, 8, 0);
  for (PointId pid = 1; pid < db.size(); ++pid) {
    EXPECT_GE(range.partition_of[pid], range.partition_of[pid - 1]);
  }
  // More shards than points: every partition still lands somewhere.
  const shard::PartitionPlan tiny = shard::BuildPartitionPlan(
      datagen::MakeUniform(3, 4, 1), Partitioner::kHash, 8, 8, 0);
  EXPECT_EQ(tiny.num_partitions, 3u);
}

TEST(ShardPartition, BalanceAssignmentLevelsSkew) {
  // Skewed partition sizes: one giant, many small.
  const std::vector<uint64_t> points = {100, 5, 5, 5, 5, 5, 5, 5};
  const std::vector<uint32_t> balanced =
      shard::BalanceAssignment(points, 4);
  std::vector<uint64_t> load(4, 0);
  for (size_t p = 0; p < points.size(); ++p) {
    load[balanced[p]] += points[p];
  }
  // Round-robin would stack 100+5 = 105 on shard 0; LPT isolates the
  // giant partition instead.
  EXPECT_EQ(*std::max_element(load.begin(), load.end()), 100u);
}

// ---------------------------------------------------------------------------
// Router basics.

TEST(ShardRouterBasics, SingleShardMatchesEngine) {
  const Dataset db = datagen::MakeUniform(200, 5, 21);
  const SimilarityEngine engine(db);
  RouterOptions options;
  options.shards = 1;
  const ShardRouter router(db, options);
  Rng rng(33);
  for (int i = 0; i < 20; ++i) {
    const std::vector<Value> q = RandomQuery(rng, db.dims());
    auto sharded = router.KnMatch(q, 2, 7);
    auto direct = engine.KnMatch(q, 2, 7);
    ASSERT_TRUE(sharded.ok());
    ASSERT_TRUE(direct.ok());
    ExpectSameMatches(sharded.value().matches, direct.value().matches,
                      "single shard");
    EXPECT_EQ(sharded.value().attributes_retrieved,
              direct.value().attributes_retrieved);
  }
}

TEST(ShardRouterBasics, MoreShardsThanPointsSkipsEmptyShards) {
  const Dataset db = datagen::MakeUniform(5, 4, 3);
  const SimilarityEngine engine(db);
  RouterOptions options;
  options.shards = 16;
  const ShardRouter router(db, options);
  const std::vector<Value> q(4, 0.4f);
  auto sharded = router.KnMatch(q, 1, 5);  // k == cardinality
  auto direct = engine.KnMatch(q, 1, 5);
  ASSERT_TRUE(sharded.ok());
  ASSERT_TRUE(direct.ok());
  ExpectSameMatches(sharded.value().matches, direct.value().matches,
                    "tiny dataset");
  // Empty shards are neither dispatched nor failures.
  EXPECT_FALSE(router.last_dispatch().degradation.partial());
  EXPECT_LE(router.last_dispatch().shards_dispatched, 5u);
}

TEST(ShardRouterBasics, ValidatesLikeTheEngine) {
  const Dataset db = datagen::MakeUniform(50, 4, 5);
  const ShardRouter router(db);
  const std::vector<Value> q(4, 0.5f);
  EXPECT_TRUE(StatusIs(router.KnMatch(q, 0, 5),
                       StatusCode::kInvalidArgument));  // n < 1
  EXPECT_TRUE(StatusIs(router.KnMatch(q, 1, 0),
                       StatusCode::kInvalidArgument));  // k < 1
  EXPECT_TRUE(StatusIs(router.KnMatch({q.data(), 2}, 1, 5),
                       StatusCode::kInvalidArgument));  // dims mismatch
  EXPECT_TRUE(StatusIs(router.FrequentKnMatch(q, 3, 2, 5),
                       StatusCode::kInvalidArgument));  // n1 < n0

  // Weights work in memory, are rejected on the disk path.
  const std::vector<Value> w = {1.0f, 2.0f, 0.5f, 1.0f};
  EXPECT_TRUE(router.KnMatch(q, 2, 5, w).ok());
  RouterOptions disk;
  disk.method = RouterOptions::Method::kDiskAuto;
  const ShardRouter disk_router(db, disk);
  EXPECT_TRUE(StatusIs(disk_router.KnMatch(q, 2, 5, w),
                       StatusCode::kInvalidArgument));
}

TEST(ShardRouterBasics, StatsAndCacheHits) {
  const Dataset db = datagen::MakeUniform(300, 6, 17);
  RouterOptions options;
  options.shards = 4;
  ShardRouter router(db, options);
  shard::RouterStats stats = router.Stats();
  uint64_t total = 0;
  for (uint64_t n : stats.shard_points) total += n;
  EXPECT_EQ(total, db.size());
  for (size_t s = 0; s < router.num_shards(); ++s) {
    EXPECT_EQ(router.shard_size(s), stats.shard_points[s]);
  }

  router.EnableCache();
  const std::vector<Value> q(6, 0.3f);
  auto cold = router.KnMatch(q, 2, 8);
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(router.last_dispatch().cache_hit);
  auto warm = router.KnMatch(q, 2, 8);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(router.last_dispatch().cache_hit);
  ExpectSameMatches(warm.value().matches, cold.value().matches, "cache");

  stats = router.Stats();
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.dispatches, 4u);  // only the cold query fanned out
  EXPECT_NE(router.cache_epoch(), 0u);
  router.DisableCache();
  EXPECT_EQ(router.cache(), nullptr);
}

// ---------------------------------------------------------------------------
// The randomized differential soak: sharded == unsharded, bit for bit.
// Continuous random coordinates make cross-point difference ties a
// measure-zero event, so the canonical merge order is THE order (see
// docs/sharding.md for the boundary-tie caveat this sidesteps).

struct SoakRig {
  Dataset db;
  SimilarityEngine reference;

  explicit SoakRig(size_t cardinality, size_t dims, uint64_t seed)
      : db(datagen::MakeUniform(cardinality, dims, seed)), reference(db) {}

  // Runs `queries` random queries against `router`, asserting
  // bit-identity with the unsharded reference engine.
  void Soak(const ShardRouter& router, int queries, Rng& rng) {
    for (int i = 0; i < queries; ++i) {
      const std::vector<Value> q = RandomQuery(rng, db.dims());
      const size_t n0 = 1 + rng.UniformInt(db.dims());
      const size_t n1 = n0 + rng.UniformInt(db.dims() - n0 + 1);
      const size_t k = 1 + rng.UniformInt(20);
      if (i % 2 == 0) {
        auto sharded = router.KnMatch(q, n0, k);
        auto direct = reference.KnMatch(q, n0, k);
        ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
        ASSERT_TRUE(direct.ok());
        ExpectSameMatches(sharded.value().matches, direct.value().matches,
                          "soak knmatch");
      } else {
        auto sharded = router.FrequentKnMatch(q, n0, n1, k);
        auto direct = reference.FrequentKnMatch(q, n0, n1, k);
        ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
        ASSERT_TRUE(direct.ok());
        ExpectSameFrequent(sharded.value(), direct.value());
      }
      if (HasFatalFailure()) return;
    }
  }

  static bool HasFatalFailure() {
    return testing::Test::HasFatalFailure();
  }
};

TEST(ShardDifferentialSoak, AllPartitionersBitIdentical) {
  SoakRig rig(600, 8, 1234);
  Rng rng(99);
  for (Partitioner p : {Partitioner::kHash, Partitioner::kRange,
                        Partitioner::kKMeans}) {
    RouterOptions options;
    options.shards = 4;
    options.partitioner = p;
    options.partitions_per_shard = 4;
    const ShardRouter router(rig.db, options);
    rig.Soak(router, 300, rng);
    if (testing::Test::HasFatalFailure()) return;
    EXPECT_FALSE(router.last_dispatch().degradation.partial());
  }
}

TEST(ShardDifferentialSoak, HedgingPreservesBitIdentity) {
  SoakRig rig(400, 6, 777);
  RouterOptions options;
  options.shards = 4;
  options.replicas = 2;
  options.hedge_threshold_ms = 1e-9;  // hedge every dispatch after the first
  const ShardRouter router(rig.db, options);
  Rng rng(42);
  rig.Soak(router, 150, rng);
  const shard::RouterStats stats = router.Stats();
  EXPECT_GT(stats.hedges, 0u);
  EXPECT_EQ(stats.failovers, 0u);
}

TEST(ShardDifferentialSoak, AutoDiskAbsorbsInjectedFaults) {
  // kDiskAuto lets each shard's engine degrade internally: a fault on
  // one replica's disk never surfaces to the router, and answers stay
  // bit-identical (the engine's degradation chain is itself exact).
  SoakRig rig(300, 5, 31);
  RouterOptions options;
  options.shards = 4;
  options.method = RouterOptions::Method::kDiskAuto;
  const ShardRouter router(rig.db, options);
  FaultInjector chaos(FaultInjector::Config{.seed = 5,
                                            .transient_error_rate = 0.4,
                                            .corruption_rate = 0.1});
  router.replica_engine(0, 0)->SetFaultInjector(&chaos);
  router.replica_engine(2, 0)->SetFaultInjector(&chaos);
  Rng rng(8);
  rig.Soak(router, 60, rng);
  EXPECT_FALSE(router.last_dispatch().degradation.partial());
  router.replica_engine(0, 0)->SetFaultInjector(nullptr);
  router.replica_engine(2, 0)->SetFaultInjector(nullptr);
}

TEST(ShardDifferentialSoak, ExplicitDiskFailsOverToReplicas) {
  // An explicitly-requested disk method surfaces faults instead of
  // degrading, so a dead replica 0 forces router-level failover — and
  // the failover answer is still bit-identical.
  SoakRig rig(300, 5, 57);
  RouterOptions options;
  options.shards = 4;
  options.replicas = 2;
  options.method = RouterOptions::Method::kDiskScan;
  const ShardRouter router(rig.db, options);
  FaultInjector dead(
      FaultInjector::Config{.seed = 3, .transient_error_rate = 1.0});
  for (size_t s = 0; s < router.num_shards(); ++s) {
    router.replica_engine(s, 0)->SetFaultInjector(&dead);
  }
  Rng rng(16);
  rig.Soak(router, 40, rng);
  const shard::RouterStats stats = router.Stats();
  EXPECT_GT(stats.failovers, 0u);
  EXPECT_EQ(stats.partial_answers, 0u);
  for (size_t s = 0; s < router.num_shards(); ++s) {
    router.replica_engine(s, 0)->SetFaultInjector(nullptr);
  }
}

// ---------------------------------------------------------------------------
// Governance: breaker-driven partial answers, deadline slices, budgets.

TEST(ShardGovernance, BreakerTripYieldsWellFormedPartialAnswer) {
  const Dataset db = datagen::MakeUniform(400, 5, 71);
  RouterOptions options;
  options.shards = 4;
  options.method = RouterOptions::Method::kDiskScan;
  const ShardRouter router(db, options);

  // Kill shard 1's only replica. Every dispatch to it fails with
  // kUnavailable until the breaker opens and skips it outright.
  FaultInjector dead(
      FaultInjector::Config{.seed = 9, .transient_error_rate = 1.0});
  router.replica_engine(1, 0)->SetFaultInjector(&dead);

  // The reference: an unsharded engine over everything EXCEPT shard
  // 1's points. BuildPartitionPlan is deterministic, so rebuilding the
  // router's plan tells us exactly which points those are.
  const shard::PartitionPlan plan = shard::BuildPartitionPlan(
      db, options.partitioner, options.shards, options.partitions_per_shard,
      options.seed);
  Dataset survivors;
  for (PointId pid = 0; pid < db.size(); ++pid) {
    if (plan.shard_of(pid) != 1) survivors.Append(db.point(pid));
  }
  // Surviving pids are dense in the reference engine; map them back.
  std::vector<PointId> to_global;
  for (PointId pid = 0; pid < db.size(); ++pid) {
    if (plan.shard_of(pid) != 1) to_global.push_back(pid);
  }
  const SimilarityEngine reference(std::move(survivors));

  Rng rng(6);
  bool saw_breaker_skip = false;
  for (int i = 0; i < 20; ++i) {
    const std::vector<Value> q = RandomQuery(rng, db.dims());
    auto partial = router.FrequentKnMatch(q, 2, 4, 9);
    ASSERT_TRUE(partial.ok()) << partial.status().ToString();
    const shard::ShardDegradation& deg =
        router.last_dispatch().degradation;
    ASSERT_TRUE(deg.partial());
    ASSERT_EQ(deg.failed.size(), 1u);
    EXPECT_EQ(deg.failed[0].shard, 1u);
    EXPECT_TRUE(StatusIs(deg.failed[0].status, StatusCode::kUnavailable));
    EXPECT_EQ(deg.shards_answered, 3u);
    EXPECT_EQ(deg.shards_total, 4u);
    if (router.last_dispatch().breaker_skips > 0) saw_breaker_skip = true;

    // The partial answer is exactly the full answer over the surviving
    // shards' points.
    auto expect = reference.FrequentKnMatch(q, 2, 4, 9);
    ASSERT_TRUE(expect.ok());
    FrequentKnMatchResult remapped = expect.value();
    for (auto& set : remapped.per_n_sets) {
      for (Neighbor& nb : set) nb.pid = to_global[nb.pid];
    }
    for (Neighbor& nb : remapped.matches) nb.pid = to_global[nb.pid];
    ExpectSameFrequent(partial.value(), remapped);
    if (testing::Test::HasFatalFailure()) return;
  }
  // The dead shard's breaker must eventually open and shed dispatches.
  EXPECT_TRUE(saw_breaker_skip);
  EXPECT_EQ(router.breaker_state(1), exec::CircuitBreaker::State::kOpen);
  EXPECT_GT(router.Stats().partial_answers, 0u);
  router.replica_engine(1, 0)->SetFaultInjector(nullptr);
}

TEST(ShardGovernance, PartialRefusedWhenDisallowed) {
  const Dataset db = datagen::MakeUniform(200, 4, 13);
  RouterOptions options;
  options.shards = 4;
  options.method = RouterOptions::Method::kDiskScan;
  options.allow_partial = false;
  const ShardRouter router(db, options);
  FaultInjector dead(
      FaultInjector::Config{.seed = 2, .transient_error_rate = 1.0});
  router.replica_engine(0, 0)->SetFaultInjector(&dead);
  const std::vector<Value> q(4, 0.5f);
  EXPECT_TRUE(
      StatusIs(router.KnMatch(q, 1, 5), StatusCode::kUnavailable));
  router.replica_engine(0, 0)->SetFaultInjector(nullptr);
}

TEST(ShardGovernance, ExpiredDeadlineTripsEveryShardSlice) {
  const Dataset db = datagen::MakeUniform(5000, 8, 91);
  const ShardRouter router(db);
  QueryContext ctx;
  ctx.set_deadline(QueryContext::Clock::now() -
                   std::chrono::milliseconds(1));
  const std::vector<Value> q(8, 0.5f);
  EXPECT_TRUE(StatusIs(router.KnMatch(q, 2, 10, {}, &ctx),
                       StatusCode::kDeadlineExceeded));
  // A latched trip short-circuits before any fan-out.
  const uint64_t dispatched = router.Stats().dispatches;
  EXPECT_TRUE(StatusIs(router.KnMatch(q, 2, 10, {}, &ctx),
                       StatusCode::kDeadlineExceeded));
  EXPECT_EQ(router.Stats().dispatches, dispatched);
}

TEST(ShardGovernance, CancellationPropagatesToShards) {
  const Dataset db = datagen::MakeUniform(2000, 6, 23);
  const ShardRouter router(db);
  auto flag = std::make_shared<std::atomic<bool>>(true);
  QueryContext ctx;
  ctx.set_cancel(flag);
  const std::vector<Value> q(6, 0.5f);
  EXPECT_TRUE(StatusIs(router.KnMatch(q, 2, 10, {}, &ctx),
                       StatusCode::kUnavailable));
}

TEST(ShardGovernance, SplitBudgetsStillAnswerWhenGenerous) {
  const Dataset db = datagen::MakeUniform(500, 6, 37);
  const SimilarityEngine reference(db);
  const ShardRouter router(db);
  QueryContext ctx;
  ctx.budgets().max_attributes = 10'000'000;  // generous, split 4 ways
  const std::vector<Value> q(6, 0.25f);
  auto governed = router.KnMatch(q, 2, 8, {}, &ctx);
  ASSERT_TRUE(governed.ok()) << governed.status().ToString();
  EXPECT_FALSE(ctx.tripped());
  auto direct = reference.KnMatch(q, 2, 8);
  ASSERT_TRUE(direct.ok());
  ExpectSameMatches(governed.value().matches, direct.value().matches,
                    "budgeted");

  // A starvation budget trips every slice with kResourceExhausted.
  // (Budget checks run once per governance stride, so the query must
  // be heavy enough that no shard finishes inside its first stride —
  // same sizing as the engine's own attribute-budget test.)
  const Dataset big = datagen::MakeUniform(2000, 8, 11);
  const ShardRouter big_router(big);
  QueryContext tiny;
  tiny.budgets().max_attributes = 512;
  const std::vector<Value> heavy(8, 0.4f);
  EXPECT_TRUE(
      StatusIs(big_router.FrequentKnMatch(heavy, 1, 8, 50, {}, &tiny),
               StatusCode::kResourceExhausted));
}

// ---------------------------------------------------------------------------
// Rebalancing under snapshot reads.

TEST(ShardRebalance, KMeansSkewLevelsAndAnswersAreInvariant) {
  SoakRig rig(500, 6, 19);
  RouterOptions options;
  options.shards = 4;
  options.partitioner = Partitioner::kKMeans;
  options.partitions_per_shard = 8;
  ShardRouter router(rig.db, options);

  Rng rng(3);
  std::vector<std::vector<Value>> queries;
  std::vector<FrequentKnMatchResult> before;
  for (int i = 0; i < 10; ++i) {
    queries.push_back(RandomQuery(rng, rig.db.dims()));
    auto r = router.FrequentKnMatch(queries.back(), 2, 4, 7);
    ASSERT_TRUE(r.ok());
    before.push_back(std::move(r.value()));
  }

  auto report = router.Rebalance();
  ASSERT_TRUE(report.ok());
  EXPECT_LE(report.value().max_shard_points_after,
            report.value().max_shard_points_before);
  const shard::RouterStats stats = router.Stats();
  EXPECT_EQ(stats.rebalances, 1u);
  uint64_t total = 0;
  for (uint64_t n : stats.shard_points) total += n;
  EXPECT_EQ(total, rig.db.size());

  // Placement changed; answers must not.
  for (size_t i = 0; i < queries.size(); ++i) {
    auto after = router.FrequentKnMatch(queries[i], 2, 4, 7);
    ASSERT_TRUE(after.ok());
    ExpectSameFrequent(after.value(), before[i]);
  }

  // LPT is deterministic: a second rebalance of the same plan is a
  // no-op.
  auto again = router.Rebalance();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().partitions_moved, 0u);
}

TEST(ShardRebalance, QueriesKeepAnsweringDuringRebalance) {
  SoakRig rig(400, 5, 47);
  RouterOptions options;
  options.shards = 4;
  options.partitioner = Partitioner::kKMeans;
  ShardRouter router(rig.db, options);

  std::atomic<bool> stop{false};
  std::atomic<int> checked{0};
  std::thread reader([&] {
    Rng rng(12);
    while (!stop.load(std::memory_order_acquire)) {
      const std::vector<Value> q = RandomQuery(rng, rig.db.dims());
      auto sharded = router.KnMatch(q, 2, 6);
      auto direct = rig.reference.KnMatch(q, 2, 6);
      if (!sharded.ok() || !direct.ok() ||
          !(sharded.value().matches == direct.value().matches)) {
        ADD_FAILURE() << "divergence during rebalance";
        return;
      }
      checked.fetch_add(1, std::memory_order_relaxed);
    }
  });
  // Keep rebalancing until the reader has raced a few swaps (rebalance
  // of a small set can finish before the reader's first query lands).
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (checked.load(std::memory_order_relaxed) < 5 &&
         std::chrono::steady_clock::now() < give_up) {
    ASSERT_TRUE(router.Rebalance().ok());
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_GT(checked.load(), 0);
}

// ---------------------------------------------------------------------------
// Observability: the knmatch_shard_* family mirrors RouterStats 1:1.

TEST(ShardObs, MetricsEqualRouterStats) {
  const obs::Catalog& cat = obs::Cat();
  const uint64_t queries0 = cat.shard_queries->Value();
  const uint64_t dispatches0 = cat.shard_dispatches->Value();
  const uint64_t hedges0 = cat.shard_hedges->Value();
  const uint64_t hedge_wins0 = cat.shard_hedge_wins->Value();
  const uint64_t failovers0 = cat.shard_failovers->Value();
  const uint64_t skips0 = cat.shard_breaker_skips->Value();
  const uint64_t partial0 = cat.shard_partial_answers->Value();
  const uint64_t rebalances0 = cat.shard_rebalances->Value();
  const uint64_t moved0 = cat.shard_partitions_moved->Value();
  const uint64_t cache0 = cat.shard_cache_hits->Value();

  const Dataset db = datagen::MakeUniform(300, 6, 53);
  RouterOptions options;
  options.shards = 4;
  options.replicas = 2;
  options.hedge_threshold_ms = 1e-9;
  options.partitioner = Partitioner::kKMeans;
  ShardRouter router(db, options);
  EXPECT_EQ(cat.shard_count->Value(), 4);
  EXPECT_EQ(cat.shard_replicas->Value(), 2);
  for (size_t s = 0; s < router.num_shards(); ++s) {
    EXPECT_EQ(static_cast<uint64_t>(obs::ShardPointsGauge(s)->Value()),
              router.shard_size(s));
  }

  router.EnableCache();
  Rng rng(29);
  for (int i = 0; i < 12; ++i) {
    const std::vector<Value> q = RandomQuery(rng, db.dims());
    ASSERT_TRUE(router.KnMatch(q, 2, 6).ok());
  }
  const std::vector<Value> repeat(6, 0.5f);
  ASSERT_TRUE(router.KnMatch(repeat, 2, 6).ok());
  ASSERT_TRUE(router.KnMatch(repeat, 2, 6).ok());  // cache hit
  ASSERT_TRUE(router.Rebalance().ok());

  const shard::RouterStats stats = router.Stats();
  EXPECT_EQ(cat.shard_queries->Value() - queries0, stats.queries);
  EXPECT_EQ(cat.shard_dispatches->Value() - dispatches0, stats.dispatches);
  EXPECT_EQ(cat.shard_hedges->Value() - hedges0, stats.hedges);
  EXPECT_EQ(cat.shard_hedge_wins->Value() - hedge_wins0, stats.hedge_wins);
  EXPECT_EQ(cat.shard_failovers->Value() - failovers0, stats.failovers);
  EXPECT_EQ(cat.shard_breaker_skips->Value() - skips0, stats.breaker_skips);
  EXPECT_EQ(cat.shard_partial_answers->Value() - partial0,
            stats.partial_answers);
  EXPECT_EQ(cat.shard_rebalances->Value() - rebalances0, stats.rebalances);
  EXPECT_EQ(cat.shard_partitions_moved->Value() - moved0,
            stats.partitions_moved);
  EXPECT_EQ(cat.shard_cache_hits->Value() - cache0, stats.cache_hits);
}

}  // namespace
}  // namespace knmatch

#include "knmatch/core/categorical.h"

#include <gtest/gtest.h>

#include "knmatch/core/nmatch.h"
#include "knmatch/core/nmatch_naive.h"
#include "knmatch/datagen/generators.h"

namespace knmatch {
namespace {

TEST(MixedNMatchTest, AllNumericEqualsPlainNMatch) {
  Dataset db = datagen::MakeUniform(80, 5, 14);
  std::vector<Value> q(5, 0.5);
  MixedSchema schema;  // defaults: all numeric, no weights
  for (size_t n = 1; n <= 5; ++n) {
    auto mixed = MixedKnMatch(db, q, schema, n, 7);
    auto plain = KnMatchNaive(db, q, n, 7);
    ASSERT_TRUE(mixed.ok());
    ASSERT_TRUE(plain.ok());
    EXPECT_EQ(mixed.value().matches, plain.value().matches);
  }
}

TEST(MixedNMatchTest, CategoricalExactMatchScoresZero) {
  MixedSchema schema;
  schema.kinds = {AttributeKind::kCategorical, AttributeKind::kCategorical,
                  AttributeKind::kNumeric};
  const Value p[] = {2.0, 3.0, 0.5};
  const Value q[] = {2.0, 4.0, 0.45};
  // Differences: 0 (match), 1 (mismatch penalty), 0.05.
  EXPECT_DOUBLE_EQ(MixedNMatchDifference(p, q, schema, 1), 0.0);
  EXPECT_NEAR(MixedNMatchDifference(p, q, schema, 2), 0.05, 1e-12);
  EXPECT_DOUBLE_EQ(MixedNMatchDifference(p, q, schema, 3), 1.0);
}

TEST(MixedNMatchTest, MismatchPenaltyConfigurable) {
  MixedSchema schema;
  schema.kinds = {AttributeKind::kCategorical};
  schema.mismatch_penalty = 7.5;
  const Value p[] = {1.0};
  const Value q[] = {2.0};
  EXPECT_DOUBLE_EQ(MixedNMatchDifference(p, q, schema, 1), 7.5);
}

TEST(MixedNMatchTest, WeightsScaleDifferences) {
  MixedSchema schema;
  schema.kinds = {AttributeKind::kNumeric, AttributeKind::kNumeric};
  schema.weights = {10.0, 1.0};
  const Value p[] = {0.1, 0.0};
  const Value q[] = {0.0, 0.5};
  // Weighted diffs: 1.0 and 0.5 -> order flips relative to unweighted.
  EXPECT_DOUBLE_EQ(MixedNMatchDifference(p, q, schema, 1), 0.5);
  EXPECT_DOUBLE_EQ(MixedNMatchDifference(p, q, schema, 2), 1.0);
}

TEST(MixedNMatchTest, ZeroWeightIgnoresDimension) {
  MixedSchema schema;
  schema.kinds = {AttributeKind::kNumeric, AttributeKind::kNumeric};
  schema.weights = {0.0, 1.0};
  const Value p[] = {0.9, 0.2};
  const Value q[] = {0.0, 0.2};
  EXPECT_DOUBLE_EQ(MixedNMatchDifference(p, q, schema, 1), 0.0);
}

TEST(MixedKnMatchTest, FindsCategoricalPartialMatches) {
  // Points with two matching categorical attributes beat points that are
  // numerically close but categorically different, at n = 2.
  Matrix m = Matrix::FromRows({
      {1.0, 2.0, 0.50},  // both categories match the query
      {9.0, 9.0, 0.50},  // categories differ, numeric exact
      {1.0, 9.0, 0.49},  // one category matches
  });
  Dataset db(std::move(m));
  MixedSchema schema;
  schema.kinds = {AttributeKind::kCategorical, AttributeKind::kCategorical,
                  AttributeKind::kNumeric};
  const std::vector<Value> q = {1.0, 2.0, 0.5};
  auto r = MixedKnMatch(db, q, schema, 2, 3);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().matches[0].pid, 0u);
  EXPECT_DOUBLE_EQ(r.value().matches[0].distance, 0.0);
  EXPECT_EQ(r.value().matches[1].pid, 2u);  // one match + close numeric
}

TEST(MixedKnMatchTest, ValidatesSchema) {
  Dataset db = datagen::MakeUniform(10, 3, 1);
  std::vector<Value> q(3, 0.5);
  MixedSchema bad_kinds;
  bad_kinds.kinds = {AttributeKind::kNumeric};  // wrong arity
  EXPECT_FALSE(MixedKnMatch(db, q, bad_kinds, 1, 1).ok());

  MixedSchema bad_weights;
  bad_weights.weights = {1.0, -1.0, 1.0};
  EXPECT_FALSE(MixedKnMatch(db, q, bad_weights, 1, 1).ok());

  MixedSchema bad_penalty;
  bad_penalty.mismatch_penalty = -2.0;
  EXPECT_FALSE(MixedKnMatch(db, q, bad_penalty, 1, 1).ok());
}

TEST(MixedFrequentTest, AllNumericEqualsPlainFrequent) {
  Dataset db = datagen::MakeUniform(60, 6, 15);
  std::vector<Value> q(6, 0.25);
  MixedSchema schema;
  auto mixed = MixedFrequentKnMatch(db, q, schema, 2, 5, 4);
  auto plain = FrequentKnMatchNaive(db, q, 2, 5, 4);
  ASSERT_TRUE(mixed.ok());
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(mixed.value().matches, plain.value().matches);
  EXPECT_EQ(mixed.value().frequencies, plain.value().frequencies);
}

TEST(MixedFrequentTest, CategoricalDominantPointWins) {
  // One point shares every categorical attribute with the query; it
  // should appear in all answer sets.
  Matrix m = Matrix::FromRows({
      {1, 1, 1, 0.9},
      {2, 1, 3, 0.5},
      {4, 5, 6, 0.1},
  });
  Dataset db(std::move(m));
  MixedSchema schema;
  schema.kinds = {AttributeKind::kCategorical, AttributeKind::kCategorical,
                  AttributeKind::kCategorical, AttributeKind::kNumeric};
  const std::vector<Value> q = {1, 1, 1, 0.1};
  auto r = MixedFrequentKnMatch(db, q, schema, 1, 4, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().matches[0].pid, 0u);
  EXPECT_EQ(r.value().frequencies[0], 4u);
}

}  // namespace
}  // namespace knmatch

#include "knmatch/baselines/rtree.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "knmatch/baselines/knn_scan.h"
#include "knmatch/common/random.h"
#include "knmatch/datagen/generators.h"

namespace knmatch {
namespace {

TEST(RTreeTest, EmptyTree) {
  RTree tree(4);
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 0u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  std::vector<Value> q(4, 0.5);
  EXPECT_FALSE(tree.Knn(q, 1).ok());
}

TEST(RTreeTest, SinglePoint) {
  RTree tree(3);
  const Value p[] = {0.1, 0.2, 0.3};
  tree.Insert(0, p);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.height(), 1u);
  std::vector<Value> q(3, 0.0);
  auto r = tree.Knn(q, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().matches[0].pid, 0u);
}

TEST(RTreeTest, GrowsAndKeepsInvariants) {
  Dataset db = datagen::MakeUniform(3000, 4, 61);
  DiskSimulator disk;
  RTree tree = RTree::Build(db, &disk);
  EXPECT_EQ(tree.size(), 3000u);
  EXPECT_GE(tree.height(), 2u);
  ASSERT_TRUE(tree.CheckInvariants().ok())
      << tree.CheckInvariants().ToString();
}

TEST(RTreeTest, KnnMatchesScanExactly) {
  Dataset db = datagen::MakeUniform(2000, 5, 62);
  RTree tree = RTree::Build(db);
  Rng rng(63);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Value> q(5);
    for (Value& v : q) v = rng.Uniform01();
    auto tree_result = tree.Knn(q, 10);
    auto scan_result = KnnScan(db, q, 10, Metric::kEuclidean);
    ASSERT_TRUE(tree_result.ok());
    EXPECT_EQ(tree_result.value().matches, scan_result.value().matches);
  }
}

TEST(RTreeTest, KnnOnClusteredData) {
  Dataset db = datagen::MakeSkewed(3000, 4, 64);
  RTree tree = RTree::Build(db);
  Rng rng(65);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<Value> q(4);
    for (Value& v : q) v = rng.Uniform01();
    auto tree_result = tree.Knn(q, 7);
    auto scan_result = KnnScan(db, q, 7, Metric::kEuclidean);
    ASSERT_TRUE(tree_result.ok());
    EXPECT_EQ(tree_result.value().matches, scan_result.value().matches);
  }
}

TEST(RTreeTest, KnnVisitsFewNodesInLowDimensions) {
  Dataset db = datagen::MakeUniform(5000, 2, 66);
  RTree tree = RTree::Build(db);
  std::vector<Value> q = {0.4, 0.6};
  auto r = tree.Knn(q, 10);
  ASSERT_TRUE(r.ok());
  // In 2-d the best-first search should prune the vast majority.
  EXPECT_LT(tree.last_nodes_visited(), tree.num_nodes() / 4);
}

TEST(RTreeTest, DimensionalityCurseDegradesPruning) {
  // The related-work claim: the visited fraction grows sharply with d.
  double low_d_fraction = 0, high_d_fraction = 0;
  for (const size_t d : {size_t{2}, size_t{24}}) {
    Dataset db = datagen::MakeUniform(4000, d, 67);
    RTree tree = RTree::Build(db);
    std::vector<Value> q(d, 0.5);
    auto r = tree.Knn(q, 10);
    ASSERT_TRUE(r.ok());
    const double fraction =
        static_cast<double>(tree.last_nodes_visited()) /
        static_cast<double>(tree.num_nodes());
    (d == 2 ? low_d_fraction : high_d_fraction) = fraction;
  }
  EXPECT_GT(high_d_fraction, 3 * low_d_fraction);
}

TEST(RTreeTest, RangeQueryMatchesBruteForce) {
  Dataset db = datagen::MakeUniform(1500, 3, 68);
  RTree tree = RTree::Build(db);
  const std::vector<Value> lo = {0.2, 0.3, 0.1};
  const std::vector<Value> hi = {0.6, 0.7, 0.5};
  auto result = tree.RangeQuery(lo, hi);

  std::vector<PointId> expected;
  for (PointId pid = 0; pid < db.size(); ++pid) {
    bool inside = true;
    for (size_t i = 0; i < 3; ++i) {
      if (db.at(pid, i) < lo[i] || db.at(pid, i) > hi[i]) inside = false;
    }
    if (inside) expected.push_back(pid);
  }
  EXPECT_EQ(result, expected);
}

TEST(RTreeTest, RangeQueryEmptyBox) {
  Dataset db = datagen::MakeUniform(500, 2, 69);
  RTree tree = RTree::Build(db);
  const std::vector<Value> lo = {2.0, 2.0};
  const std::vector<Value> hi = {3.0, 3.0};
  EXPECT_TRUE(tree.RangeQuery(lo, hi).empty());
}

TEST(RTreeTest, ChargesNodeVisits) {
  Dataset db = datagen::MakeUniform(3000, 2, 70);
  DiskSimulator disk;
  RTree tree = RTree::Build(db, &disk);
  disk.ResetCounters();
  std::vector<Value> q = {0.5, 0.5};
  auto r = tree.Knn(q, 5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(disk.total_reads(), tree.last_nodes_visited());
}

TEST(RTreeTest, DuplicatePointsAllRetrievable) {
  RTree tree(2);
  const Value p[] = {0.5, 0.5};
  for (PointId pid = 0; pid < 50; ++pid) tree.Insert(pid, p);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  auto r = tree.Knn(std::vector<Value>{0.5, 0.5}, 50);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().matches.size(), 50u);
  for (const Neighbor& nb : r.value().matches) {
    EXPECT_EQ(nb.distance, 0.0);
  }
}

}  // namespace
}  // namespace knmatch

// Tests for the observability subsystem's primitives: sharded counters,
// gauges, log-bucketed histograms, the metrics registry, the runtime
// kill switch, and the Prometheus/JSON exposition (golden outputs).
// Concurrency tests run under scripts/check_tsan.sh (filter Obs*), so
// they double as the data-race proof for the relaxed-atomic design.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "knmatch/core/ad_algorithm.h"
#include "knmatch/datagen/generators.h"
#include "knmatch/exec/thread_pool.h"
#include "knmatch/obs/catalog.h"
#include "knmatch/obs/exposition.h"
#include "knmatch/obs/metrics.h"

namespace knmatch::obs {
namespace {

#if !KNMATCH_OBS_ENABLED

// KNMATCH_DISABLE_METRICS build: the only contract left is that the
// no-op types truly record nothing.
TEST(ObsMetricsTest, CompiledOutTypesRecordNothing) {
  EXPECT_FALSE(kMetricsCompiledIn);
  Counter c;
  c.Add(7);
  EXPECT_EQ(c.Value(), 0u);
  Histogram h;
  h.Observe(7);
  EXPECT_EQ(h.Snapshot().count, 0u);
}

#else

TEST(ObsCounterTest, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(ObsGaugeTest, SetAddAndNegativeValues) {
  Gauge g;
  g.Set(10);
  g.Add(-12);
  EXPECT_EQ(g.Value(), -2);
  g.Reset();
  EXPECT_EQ(g.Value(), 0);
}

TEST(ObsKillSwitchTest, DisabledMutatorsAreNoOps) {
  Counter c;
  Gauge g;
  Histogram h;
  SetEnabled(false);
  c.Add(7);
  g.Set(7);
  h.Observe(7);
  SetEnabled(true);
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_EQ(g.Value(), 0);
  EXPECT_EQ(h.Snapshot().count, 0u);
  c.Add(7);
  EXPECT_EQ(c.Value(), 7u);
}

TEST(ObsHistogramTest, BucketBoundaries) {
  // Bucket 0 holds exact zeros; bucket i >= 1 holds [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketOf(0), 0u);
  EXPECT_EQ(Histogram::BucketOf(1), 1u);
  EXPECT_EQ(Histogram::BucketOf(2), 2u);
  EXPECT_EQ(Histogram::BucketOf(3), 2u);
  EXPECT_EQ(Histogram::BucketOf(4), 3u);
  EXPECT_EQ(Histogram::BucketOf(1023), 10u);
  EXPECT_EQ(Histogram::BucketOf(1024), 11u);
  EXPECT_EQ(Histogram::BucketOf(UINT64_MAX), 64u);
  EXPECT_EQ(Histogram::BucketLowerRaw(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperRaw(1), 2.0);
  EXPECT_EQ(Histogram::BucketUpperRaw(10), 1024.0);
}

TEST(ObsHistogramTest, SnapshotCountsSumAndScale) {
  Histogram h(0.5);
  h.Observe(0);
  h.Observe(1);
  h.Observe(2);
  h.Observe(3);
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.sum_raw, 6u);
  EXPECT_EQ(snap.scale, 0.5);
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 2u);
  h.Reset();
  EXPECT_EQ(h.Snapshot().count, 0u);
}

TEST(ObsHistogramTest, QuantileWithinBucketResolution) {
  Histogram h;
  for (int i = 0; i < 64; ++i) h.Observe(10);  // all in bucket [8, 16)
  EXPECT_EQ(h.Quantile(0.0), 8.0);  // lower bound of the only bucket
  const double median = h.Quantile(0.5);
  EXPECT_GE(median, 8.0);
  EXPECT_LE(median, 16.0);
  Histogram empty;
  EXPECT_EQ(empty.Quantile(0.5), 0.0);
}

TEST(ObsHistogramTest, ObserveSecondsUsesScale) {
  Histogram h(1e-9);  // observes nanoseconds, displays seconds
  h.ObserveSeconds(1.0);
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.sum_raw, 1000000000u);
  EXPECT_NEAR(static_cast<double>(snap.sum_raw) * snap.scale, 1.0, 1e-9);
}

TEST(ObsRegistryTest, DedupsByNameAndLabels) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("x_total", "k=\"1\"", "help");
  Counter* b = reg.GetCounter("x_total", "k=\"1\"", "help");
  Counter* c = reg.GetCounter("x_total", "k=\"2\"", "help");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(ObsRegistryTest, ResetZeroesValuesButKeepsRegistrations) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("x_total", "", "help");
  Gauge* g = reg.GetGauge("y", "", "help");
  Histogram* h = reg.GetHistogram("z_seconds", "", "help", 1e-9);
  c->Add(5);
  g->Set(5);
  h->Observe(5);
  reg.Reset();
  EXPECT_EQ(reg.size(), 3u);
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(g->Value(), 0);
  EXPECT_EQ(h->Snapshot().count, 0u);
  EXPECT_EQ(reg.GetCounter("x_total", "", "help"), c);
}

TEST(ObsRegistryTest, SnapshotSortedByNameThenLabels) {
  MetricsRegistry reg;
  reg.GetCounter("b_total", "", "help");
  reg.GetCounter("a_total", "k=\"2\"", "help");
  reg.GetCounter("a_total", "k=\"1\"", "help");
  const std::vector<MetricSample> samples = reg.Snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "a_total");
  EXPECT_EQ(samples[0].labels, "k=\"1\"");
  EXPECT_EQ(samples[1].name, "a_total");
  EXPECT_EQ(samples[1].labels, "k=\"2\"");
  EXPECT_EQ(samples[2].name, "b_total");
}

TEST(ObsCatalogTest, GlobalCatalogRegistersOnce) {
  const Catalog& cat = Cat();
  ASSERT_NE(cat.attrs_ad_memory, nullptr);
  ASSERT_NE(cat.queries_knmatch, nullptr);
  // Re-resolving the same (name, labels) lands on the same metric.
  EXPECT_EQ(MetricsRegistry::Global().GetCounter(
                "knmatch_attributes_retrieved_total",
                "algo=\"ad_memory\"", ""),
            cat.attrs_ad_memory);
  EXPECT_EQ(BatchWorkerLatency(0), BatchWorkerLatency(0));
}

// ---------------------------------------------------------------------------
// Exposition goldens. A fixed local registry must render byte-for-byte
// stable output (Snapshot() sorts, so registration order is irrelevant).

class ObsExpositionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Counter* a = reg_.GetCounter("test_requests_total", "kind=\"a\"",
                                 "Requests");
    Counter* b = reg_.GetCounter("test_requests_total", "kind=\"b\"",
                                 "Requests");
    Gauge* g = reg_.GetGauge("test_queue_depth", "", "Depth");
    Histogram* h =
        reg_.GetHistogram("test_latency_seconds", "", "Latency", 0.5);
    a->Add(3);
    b->Add(5);
    g->Set(-2);
    h->Observe(0);
    h->Observe(1);
    h->Observe(2);
    h->Observe(3);
  }
  MetricsRegistry reg_;
};

TEST_F(ObsExpositionTest, PrometheusGolden) {
  const std::string expected =
      "# HELP test_latency_seconds Latency\n"
      "# TYPE test_latency_seconds histogram\n"
      "test_latency_seconds_bucket{le=\"0\"} 1\n"
      "test_latency_seconds_bucket{le=\"1\"} 2\n"
      "test_latency_seconds_bucket{le=\"2\"} 4\n"
      "test_latency_seconds_bucket{le=\"+Inf\"} 4\n"
      "test_latency_seconds_sum 3\n"
      "test_latency_seconds_count 4\n"
      "# HELP test_queue_depth Depth\n"
      "# TYPE test_queue_depth gauge\n"
      "test_queue_depth -2\n"
      "# HELP test_requests_total Requests\n"
      "# TYPE test_requests_total counter\n"
      "test_requests_total{kind=\"a\"} 3\n"
      "test_requests_total{kind=\"b\"} 5\n";
  EXPECT_EQ(RenderPrometheus(reg_), expected);
}

TEST_F(ObsExpositionTest, JsonGolden) {
  const std::string expected =
      "{\"metrics\":["
      "{\"name\":\"test_latency_seconds\",\"type\":\"histogram\","
      "\"labels\":{},\"count\":4,\"sum\":3,\"buckets\":["
      "{\"le\":0,\"count\":1},{\"le\":1,\"count\":2},"
      "{\"le\":2,\"count\":4},{\"le\":\"+Inf\",\"count\":4}]},"
      "{\"name\":\"test_queue_depth\",\"type\":\"gauge\","
      "\"labels\":{},\"value\":-2},"
      "{\"name\":\"test_requests_total\",\"type\":\"counter\","
      "\"labels\":{\"kind\":\"a\"},\"value\":3},"
      "{\"name\":\"test_requests_total\",\"type\":\"counter\","
      "\"labels\":{\"kind\":\"b\"},\"value\":5}"
      "]}";
  EXPECT_EQ(RenderJson(reg_), expected);
}

TEST_F(ObsExpositionTest, RendersAreDeterministic) {
  EXPECT_EQ(RenderPrometheus(reg_), RenderPrometheus(reg_));
  EXPECT_EQ(RenderJson(reg_), RenderJson(reg_));
}

// ---------------------------------------------------------------------------
// Concurrency: hammer the primitives from the thread pool and require
// exact totals. Run under TSan via scripts/check_tsan.sh.

TEST(ObsConcurrencyTest, CountersSumExactlyUnderContention) {
  Counter counter;
  Gauge gauge;
  Histogram histogram;
  exec::ThreadPool pool(8);
  constexpr size_t kTasks = 64;
  constexpr size_t kPerTask = 5000;
  pool.ParallelFor(kTasks, [&](size_t /*worker*/, size_t /*i*/) {
    for (size_t j = 0; j < kPerTask; ++j) {
      counter.Add();
      gauge.Add(1);
      histogram.Observe(j);
    }
  });
  EXPECT_EQ(counter.Value(), kTasks * kPerTask);
  EXPECT_EQ(gauge.Value(),
            static_cast<int64_t>(kTasks * kPerTask));
  EXPECT_EQ(histogram.Snapshot().count, kTasks * kPerTask);
  EXPECT_EQ(histogram.Snapshot().sum_raw,
            kTasks * (kPerTask * (kPerTask - 1) / 2));
}

TEST(ObsConcurrencyTest, ConcurrentRegistrationYieldsOneMetric) {
  MetricsRegistry reg;
  exec::ThreadPool pool(8);
  std::vector<Counter*> seen(64, nullptr);
  pool.ParallelFor(seen.size(), [&](size_t /*worker*/, size_t i) {
    seen[i] = reg.GetCounter("shared_total", "", "help");
    seen[i]->Add();
  });
  EXPECT_EQ(reg.size(), 1u);
  for (Counter* c : seen) EXPECT_EQ(c, seen[0]);
  EXPECT_EQ(seen[0]->Value(), seen.size());
}

// ---------------------------------------------------------------------------
// End-to-end: the catalog's cost metric must agree with what the AD
// engine itself reports (the paper's attributes-retrieved count).

TEST(ObsEndToEndTest, AttributesMetricMatchesAdAnswerStats) {
  const Dataset db = datagen::MakeUniform(400, 6, /*seed=*/7);
  AdSearcher searcher(db);
  MetricsRegistry::Global().Reset();
  const auto query = db.point(12);
  auto r = searcher.KnMatch(std::vector<Value>(query.begin(), query.end()),
                            /*n=*/4, /*k=*/5);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.value().attributes_retrieved, 0u);
  EXPECT_EQ(Cat().attrs_ad_memory->Value(),
            r.value().attributes_retrieved);
  EXPECT_EQ(Cat().queries_knmatch->Value(), 1u);
  EXPECT_EQ(Cat().latency_knmatch->Snapshot().count, 1u);
  EXPECT_GT(Cat().pops_ad_memory->Value(), 0u);
}

#endif  // KNMATCH_OBS_ENABLED

}  // namespace
}  // namespace knmatch::obs

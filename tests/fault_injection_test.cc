#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "knmatch/common/random.h"
#include "knmatch/datagen/generators.h"
#include "knmatch/engine.h"
#include "knmatch/exec/batch.h"
#include "knmatch/storage/bplus_tree.h"
#include "knmatch/storage/disk_simulator.h"
#include "knmatch/storage/fault_injector.h"
#include "knmatch/storage/page_codec.h"
#include "knmatch/storage/paged_file.h"
#include "status_matchers.h"

namespace knmatch {
namespace {

using DiskMethod = SimilarityEngine::DiskMethod;

// ---------------------------------------------------------------------------
// Page codec

TEST(PageCodecTest, RoundTripsPayload) {
  std::vector<std::byte> payload;
  for (int i = 0; i < 100; ++i) payload.push_back(std::byte(i * 7 + 3));
  std::vector<std::byte> page = FrameChecksummedPage(payload, 4096);
  ASSERT_EQ(page.size(), 4096u);

  auto unframed = VerifyAndUnframePage(page);
  ASSERT_TRUE(unframed.ok());
  ASSERT_EQ(unframed.value().size(), payload.size());
  for (size_t i = 0; i < payload.size(); ++i) {
    EXPECT_EQ(unframed.value()[i], payload[i]);
  }
}

TEST(PageCodecTest, EmptyPayloadRoundTrips) {
  std::vector<std::byte> page = FrameChecksummedPage({}, 64);
  auto unframed = VerifyAndUnframePage(page);
  ASSERT_TRUE(unframed.ok());
  EXPECT_EQ(unframed.value().size(), 0u);
}

TEST(PageCodecTest, AnySingleByteFlipIsDetected) {
  std::vector<std::byte> payload = {std::byte{0xAB}, std::byte{0x00},
                                    std::byte{0xFF}, std::byte{0x5C}};
  const std::vector<std::byte> page = FrameChecksummedPage(payload, 64);
  // Flip every byte of the frame in turn — header, payload, padding,
  // and the checksum itself must all be covered.
  for (size_t i = 0; i < page.size(); ++i) {
    std::vector<std::byte> damaged = page;
    damaged[i] ^= std::byte{0x01};
    auto verdict = VerifyAndUnframePage(damaged);
    EXPECT_TRUE(StatusIs(verdict, StatusCode::kDataLoss))
        << "flip at byte " << i << " went undetected";
  }
}

TEST(PageCodecTest, TruncatedImageRejected) {
  std::vector<std::byte> tiny(kPageFrameOverhead, std::byte{0});
  EXPECT_TRUE(StatusIs(VerifyAndUnframePage(tiny), StatusCode::kDataLoss));
  EXPECT_TRUE(StatusIs(VerifyAndUnframePage({}), StatusCode::kDataLoss));
}

// ---------------------------------------------------------------------------
// Fault injector

TEST(FaultInjectorTest, DeterministicGivenSeedAndSequence) {
  const FaultInjector::Config config{.seed = 17,
                                     .transient_error_rate = 0.3,
                                     .corruption_rate = 0.05};
  FaultInjector a(config);
  FaultInjector b(config);
  for (uint64_t page = 0; page < 50; ++page) {
    for (int attempt = 0; attempt < 3; ++attempt) {
      EXPECT_EQ(a.OnReadAttempt(page), b.OnReadAttempt(page))
          << "page " << page << " attempt " << attempt;
    }
  }
  EXPECT_EQ(a.transient_faults_injected(), b.transient_faults_injected());
  EXPECT_EQ(a.corruptions_injected(), b.corruptions_injected());
}

TEST(FaultInjectorTest, ScriptedFailuresCountDownThenSucceed) {
  FaultInjector injector;
  injector.FailNextReads(4, 2);
  EXPECT_EQ(injector.OnReadAttempt(4), FaultInjector::Outcome::kTransientError);
  EXPECT_EQ(injector.OnReadAttempt(4), FaultInjector::Outcome::kTransientError);
  EXPECT_EQ(injector.OnReadAttempt(4), FaultInjector::Outcome::kOk);
  EXPECT_EQ(injector.OnReadAttempt(5), FaultInjector::Outcome::kOk);
  EXPECT_EQ(injector.transient_faults_injected(), 2u);
}

TEST(FaultInjectorTest, ScriptedCorruptionIsStickyUntilHealed) {
  FaultInjector injector;
  injector.CorruptPage(9);
  EXPECT_EQ(injector.OnReadAttempt(9), FaultInjector::Outcome::kCorruption);
  EXPECT_EQ(injector.OnReadAttempt(9), FaultInjector::Outcome::kCorruption);
  injector.HealPage(9);
  EXPECT_EQ(injector.OnReadAttempt(9), FaultInjector::Outcome::kOk);
}

TEST(FaultInjectorTest, ClearStopsAllFaults) {
  FaultInjector injector(FaultInjector::Config{.seed = 1,
                                               .transient_error_rate = 1.0,
                                               .corruption_rate = 1.0});
  injector.FailNextReads(0, 100);
  EXPECT_NE(injector.OnReadAttempt(0), FaultInjector::Outcome::kOk);
  injector.Clear();
  for (uint64_t page = 0; page < 20; ++page) {
    EXPECT_EQ(injector.OnReadAttempt(page), FaultInjector::Outcome::kOk);
  }
}

// ---------------------------------------------------------------------------
// Disk simulator retry accounting (the counter-skew regression suite)

TEST(DiskSimulatorFaultTest, EveryPhysicalAttemptIsCharged) {
  DiskSimulator disk;
  disk.AllocatePages(10);
  FaultInjector injector;
  disk.set_fault_injector(&injector);
  const size_t s = disk.OpenStream();

  injector.FailNextReads(5, 2);
  EXPECT_TRUE(disk.ChargedRead(s, 5).ok());
  // Three physical attempts: the first is a seek (random), the two
  // same-page retries run with the head already in place (sequential).
  EXPECT_EQ(disk.total_reads(), 3u);
  EXPECT_EQ(disk.random_reads(), 1u);
  EXPECT_EQ(disk.sequential_reads(), 2u);
  EXPECT_EQ(disk.failed_reads(), 2u);
}

TEST(DiskSimulatorFaultTest, RetriesExhaustBudgetThenUnavailable) {
  DiskSimulator disk;
  disk.AllocatePages(10);
  FaultInjector injector;
  disk.set_fault_injector(&injector);
  const size_t s = disk.OpenStream();

  injector.FailNextReads(3, DiskSimulator::kMaxReadAttempts);
  EXPECT_TRUE(StatusIs(disk.ChargedRead(s, 3), StatusCode::kUnavailable));
  EXPECT_EQ(disk.failed_reads(),
            static_cast<uint64_t>(DiskSimulator::kMaxReadAttempts));
  // The script is spent, so the next charged read succeeds — and it is
  // a real physical read, not a phantom buffer hit.
  const uint64_t before = disk.total_reads();
  EXPECT_TRUE(disk.ChargedRead(s, 3).ok());
  EXPECT_EQ(disk.total_reads(), before + 1);
  EXPECT_EQ(disk.buffer_hits(), 0u);
}

TEST(DiskSimulatorFaultTest, FailedReadsDoNotPopulateBufferPool) {
  DiskConfig config;
  config.buffer_pool_pages = 8;
  DiskSimulator disk(config);
  disk.AllocatePages(4);
  FaultInjector injector;
  disk.set_fault_injector(&injector);
  const size_t s = disk.OpenStream();
  const size_t t = disk.OpenStream();
  const size_t u = disk.OpenStream();

  injector.FailNextReads(2, DiskSimulator::kMaxReadAttempts);
  EXPECT_TRUE(StatusIs(disk.ChargedRead(s, 2), StatusCode::kUnavailable));
  // Another stream must go to the media: the failed transfers must not
  // have left page 2 in the shared pool.
  EXPECT_TRUE(disk.ChargedRead(t, 2).ok());
  EXPECT_EQ(disk.buffer_hits(), 0u);
  // That successful read *does* populate the pool.
  EXPECT_TRUE(disk.ChargedRead(u, 2).ok());
  EXPECT_EQ(disk.buffer_hits(), 1u);
}

TEST(DiskSimulatorFaultTest, QuarantinedPageRefusedWithoutIo) {
  DiskSimulator disk;
  disk.AllocatePages(4);
  FaultInjector injector;
  disk.set_fault_injector(&injector);
  const size_t s = disk.OpenStream();

  injector.CorruptPage(1);
  EXPECT_TRUE(StatusIs(disk.ChargedRead(s, 1), StatusCode::kDataLoss));
  EXPECT_TRUE(disk.IsQuarantined(1));
  EXPECT_EQ(disk.quarantined_pages(), 1u);

  disk.ResetCounters();
  EXPECT_TRUE(StatusIs(disk.ChargedRead(s, 1), StatusCode::kDataLoss));
  EXPECT_EQ(disk.total_reads(), 0u);  // refusal is free

  injector.HealPage(1);
  disk.ClearQuarantine();
  EXPECT_TRUE(disk.ChargedRead(s, 1).ok());
}

// ---------------------------------------------------------------------------
// PagedFile under faults

std::vector<std::byte> TestPayload() {
  std::vector<std::byte> payload;
  PutScalar<double>(&payload, 6.5);
  PutScalar<uint32_t>(&payload, 99);
  return payload;
}

TEST(PagedFileFaultTest, OutOfRangeIndexIsAnError) {
  DiskSimulator disk;
  PagedFile file(&disk);
  file.AppendPage(TestPayload());
  const size_t s = disk.OpenStream();
  EXPECT_TRUE(StatusIs(file.ReadPage(s, 1), StatusCode::kOutOfRange));
  EXPECT_TRUE(StatusIs(file.ReadPage(s, 999), StatusCode::kOutOfRange));
  EXPECT_TRUE(StatusIs(file.PeekPage(7), StatusCode::kOutOfRange));
  EXPECT_EQ(disk.total_reads(), 0u);
}

TEST(PagedFileFaultTest, TransientFaultsHealWithinRetryBudget) {
  DiskSimulator disk;
  FaultInjector injector;
  disk.set_fault_injector(&injector);
  PagedFile file(&disk);
  const std::vector<std::byte> payload = TestPayload();
  file.AppendPage(payload);

  injector.FailNextReads(file.first_global_page(),
                         DiskSimulator::kMaxReadAttempts - 1);
  auto read = file.ReadPage(disk.OpenStream(), 0);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(GetScalar<double>(read.value(), 0), 6.5);
  EXPECT_EQ(disk.failed_reads(),
            static_cast<uint64_t>(DiskSimulator::kMaxReadAttempts - 1));
}

TEST(PagedFileFaultTest, TransientFaultsBeyondBudgetAreUnavailable) {
  DiskSimulator disk;
  FaultInjector injector;
  disk.set_fault_injector(&injector);
  PagedFile file(&disk);
  file.AppendPage(TestPayload());
  const size_t s = disk.OpenStream();

  injector.FailNextReads(file.first_global_page(),
                         DiskSimulator::kMaxReadAttempts);
  EXPECT_TRUE(StatusIs(file.ReadPage(s, 0), StatusCode::kUnavailable));
  // Unavailable means exactly that: the same read succeeds once the
  // fault passes, and the payload is intact.
  auto read = file.ReadPage(s, 0);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(GetScalar<uint32_t>(read.value(), sizeof(double)), 99u);
}

TEST(PagedFileFaultTest, TransferCorruptionQuarantinesThenHeals) {
  DiskSimulator disk;
  FaultInjector injector;
  disk.set_fault_injector(&injector);
  PagedFile file(&disk);
  file.AppendPage(TestPayload());
  const uint64_t global = file.first_global_page();
  const size_t s = disk.OpenStream();

  injector.CorruptPage(global);
  EXPECT_TRUE(StatusIs(file.ReadPage(s, 0), StatusCode::kDataLoss));
  EXPECT_TRUE(disk.IsQuarantined(global));

  // Re-reads are refused from the quarantine, without touching disk.
  disk.ResetCounters();
  EXPECT_TRUE(StatusIs(file.ReadPage(s, 0), StatusCode::kDataLoss));
  EXPECT_EQ(disk.total_reads(), 0u);

  // The corruption was a transfer fault — the stored image is intact,
  // so healing the page restores the original bytes exactly.
  injector.HealPage(global);
  disk.ClearQuarantine();
  auto read = file.ReadPage(s, 0);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(GetScalar<double>(read.value(), 0), 6.5);
  EXPECT_EQ(GetScalar<uint32_t>(read.value(), sizeof(double)), 99u);
}

TEST(PagedFileFaultTest, AtRestDamageFailsChecksum) {
  DiskSimulator disk;
  PagedFile file(&disk);
  file.AppendPage(TestPayload());
  const size_t s = disk.OpenStream();
  ASSERT_TRUE(file.ReadPage(s, 0).ok());  // verified and memoized

  file.CorruptStoredByte(0, 5);  // bit rot inside the payload
  EXPECT_TRUE(StatusIs(file.PeekPage(0), StatusCode::kDataLoss));
  // A charged read quarantines the damaged page.
  disk.ClearQuarantine();
  EXPECT_TRUE(StatusIs(file.ReadPage(s, 0), StatusCode::kDataLoss));
  EXPECT_TRUE(disk.IsQuarantined(file.first_global_page()));

  // Restoring the byte heals the image (XOR is its own inverse).
  file.CorruptStoredByte(0, 5);
  disk.ClearQuarantine();
  EXPECT_TRUE(file.ReadPage(s, 0).ok());
}

// ---------------------------------------------------------------------------
// B+-tree under faults

TEST(BPlusTreeFaultTest, SeeksAndMutationsReportUnreadableNodes) {
  DiskSimulator disk;
  BPlusTree tree(&disk);
  std::vector<ColumnEntry> entries;
  for (PointId pid = 0; pid < 2000; ++pid) {
    entries.push_back(ColumnEntry{static_cast<Value>(pid) / 2000.0, pid});
  }
  tree.BulkLoad(entries);

  FaultInjector injector(
      FaultInjector::Config{.seed = 3, .transient_error_rate = 1.0});
  disk.set_fault_injector(&injector);
  const size_t s = tree.OpenStream();

  auto it = tree.SeekLowerBound(s, 0.5);
  EXPECT_FALSE(it.Valid());
  EXPECT_TRUE(StatusIs(it.status(), StatusCode::kUnavailable));

  EXPECT_TRUE(StatusIs(tree.RankOf(s, 0.5), StatusCode::kUnavailable));

  const size_t size_before = tree.size();
  EXPECT_TRUE(
      StatusIs(tree.Insert(ColumnEntry{0.25, 5000}), StatusCode::kUnavailable));
  EXPECT_EQ(tree.size(), size_before);  // failed insert mutates nothing
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BPlusTreeFaultTest, IteratorLatchesErrorAtLeafBoundary) {
  DiskSimulator disk;
  BPlusTree tree(&disk);
  std::vector<ColumnEntry> entries;
  for (PointId pid = 0; pid < 2000; ++pid) {
    entries.push_back(ColumnEntry{static_cast<Value>(pid) / 2000.0, pid});
  }
  tree.BulkLoad(entries);

  const size_t s = tree.OpenStream();
  auto it = tree.SeekLowerBound(s, -1.0);  // healthy seek to the front
  ASSERT_TRUE(it.Valid());

  FaultInjector injector(
      FaultInjector::Config{.seed = 3, .transient_error_rate = 1.0});
  disk.set_fault_injector(&injector);
  size_t visited = 0;
  while (it.Valid() && it.status().ok()) {
    it.Next();
    ++visited;
  }
  // The walk dies at the first leaf-boundary crossing, not the column
  // end, and reports the damage rather than pretending exhaustion.
  EXPECT_LT(visited, entries.size());
  EXPECT_FALSE(it.Valid());
  EXPECT_TRUE(StatusIs(it.status(), StatusCode::kUnavailable));
}

// ---------------------------------------------------------------------------
// Engine-level degradation

std::vector<Value> MidQuery(size_t dims) {
  std::vector<Value> q(dims);
  for (size_t i = 0; i < dims; ++i) {
    q[i] = 0.3 + 0.1 * static_cast<Value>(i);
  }
  return q;
}

TEST(EngineFaultTest, ExplicitMethodSurfacesItsError) {
  SimilarityEngine engine(datagen::MakeUniform(600, 3, 11));
  FaultInjector injector(
      FaultInjector::Config{.seed = 5, .corruption_rate = 1.0});
  engine.SetFaultInjector(&injector);

  const std::vector<Value> q = MidQuery(3);
  auto r = engine.DiskFrequentKnMatch(q, 1, 3, 5, DiskMethod::kAd);
  EXPECT_TRUE(StatusIs(r, StatusCode::kDataLoss));
  EXPECT_EQ(engine.last_disk_method(), DiskMethod::kAd);
  EXPECT_TRUE(engine.last_disk_fallback().empty());
}

TEST(EngineFaultTest, AutoDegradesToMemoryAdWhenDiskIsGone) {
  SimilarityEngine clean(datagen::MakeUniform(600, 3, 11));
  SimilarityEngine faulty(datagen::MakeUniform(600, 3, 11));
  FaultInjector injector(
      FaultInjector::Config{.seed = 5, .transient_error_rate = 1.0});
  faulty.SetFaultInjector(&injector);

  const std::vector<Value> q = MidQuery(3);
  auto expected = clean.DiskFrequentKnMatch(q, 1, 3, 5, DiskMethod::kScan);
  ASSERT_TRUE(expected.ok());

  auto got = faulty.DiskFrequentKnMatch(q, 1, 3, 5, DiskMethod::kAuto);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(faulty.last_disk_method(), DiskMethod::kMemoryAd);
  // Whatever the advisor picked, the three disk methods all failed.
  ASSERT_EQ(faulty.last_disk_fallback().size(), 3u);
  for (const auto& step : faulty.last_disk_fallback()) {
    EXPECT_TRUE(StatusIs(step.status, StatusCode::kUnavailable));
    EXPECT_NE(step.method, DiskMethod::kMemoryAd);
  }
  // Degraded answers are bit-identical to healthy ones.
  EXPECT_EQ(got.value().matches, expected.value().matches);
  EXPECT_EQ(got.value().frequencies, expected.value().frequencies);
  EXPECT_EQ(got.value().per_n_sets, expected.value().per_n_sets);
}

TEST(EngineFaultTest, AutoRoutesAroundAPoisonedColumnStore) {
  SimilarityEngine clean(datagen::MakeUniform(600, 3, 11));
  SimilarityEngine faulty(datagen::MakeUniform(600, 3, 11));
  FaultInjector injector;
  faulty.SetFaultInjector(&injector);

  // Pages are laid out rows, then columns, then the VA file; corrupt
  // every column page so only the AD method loses its data.
  const auto stats = faulty.DiskStorageStats();
  for (uint64_t p = stats.row_pages; p < stats.row_pages + stats.column_pages;
       ++p) {
    injector.CorruptPage(p);
  }

  const std::vector<Value> q = MidQuery(3);
  auto expected = clean.DiskFrequentKnMatch(q, 1, 3, 5, DiskMethod::kScan);
  ASSERT_TRUE(expected.ok());
  auto got = faulty.DiskFrequentKnMatch(q, 1, 3, 5, DiskMethod::kAuto);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  // The answer came from a method that still has its data.
  EXPECT_NE(faulty.last_disk_method(), DiskMethod::kAd);
  for (const auto& step : faulty.last_disk_fallback()) {
    EXPECT_EQ(step.method, DiskMethod::kAd);
    EXPECT_TRUE(StatusIs(step.status, StatusCode::kDataLoss));
  }
  EXPECT_EQ(got.value().matches, expected.value().matches);
  EXPECT_EQ(got.value().per_n_sets, expected.value().per_n_sets);
}

TEST(EngineFaultTest, ClearFaultsRestoresEveryMethod) {
  SimilarityEngine engine(datagen::MakeUniform(600, 3, 11));
  FaultInjector injector(
      FaultInjector::Config{.seed = 5, .corruption_rate = 1.0});
  engine.SetFaultInjector(&injector);

  const std::vector<Value> q = MidQuery(3);
  ASSERT_FALSE(
      engine.DiskFrequentKnMatch(q, 1, 3, 5, DiskMethod::kAd).ok());
  ASSERT_GT(engine.disk_simulator()->quarantined_pages(), 0u);

  engine.ClearFaults();
  EXPECT_EQ(engine.disk_simulator()->quarantined_pages(), 0u);
  for (DiskMethod m :
       {DiskMethod::kScan, DiskMethod::kAd, DiskMethod::kVaFile}) {
    auto r = engine.DiskFrequentKnMatch(q, 1, 3, 5, m);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  }
}

// ---------------------------------------------------------------------------
// Batch deadline / cancellation

TEST(BatchDeadlineTest, PreSetCancelSkipsEveryQuery) {
  SimilarityEngine engine(datagen::MakeUniform(500, 3, 17));
  exec::BatchRequest request;
  for (int i = 0; i < 8; ++i) {
    request.queries.push_back({0.1 * i, 0.4, 0.6});
  }
  request.options.threads = 2;
  request.options.allow_oversubscription = true;
  request.options.cancel = std::make_shared<std::atomic<bool>>(true);

  auto r = engine.KnMatchBatch(request, 2, 5);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().statuses.size(), request.queries.size());
  for (const Status& s : r.value().statuses) {
    EXPECT_TRUE(StatusIs(s, StatusCode::kUnavailable));
  }
  for (const KnMatchResult& res : r.value().results) {
    EXPECT_TRUE(res.matches.empty());
  }
  EXPECT_EQ(r.value().attributes_retrieved, 0u);
}

TEST(BatchDeadlineTest, ExpiredDeadlineSkipsEveryQuery) {
  SimilarityEngine engine(datagen::MakeUniform(500, 3, 17));
  exec::BatchRequest request;
  for (int i = 0; i < 6; ++i) {
    request.queries.push_back({0.1 * i, 0.4, 0.6});
  }
  request.options.threads = 2;
  request.options.allow_oversubscription = true;
  request.options.deadline_ms = 1e-6;  // expires before any query starts

  auto r = engine.FrequentKnMatchBatch(request, 1, 3, 5);
  ASSERT_TRUE(r.ok());
  // Deadline skips carry the typed deadline status (cancellation keeps
  // kUnavailable), so callers can tell "retry with a larger deadline"
  // from "the batch was called off".
  for (const Status& s : r.value().statuses) {
    EXPECT_TRUE(StatusIs(s, StatusCode::kDeadlineExceeded));
  }
}

TEST(BatchDeadlineTest, GenerousDeadlineMatchesUnboundedRun) {
  SimilarityEngine engine(datagen::MakeUniform(500, 3, 17));
  exec::BatchRequest request;
  for (int i = 0; i < 6; ++i) {
    request.queries.push_back({0.15 * i, 0.3, 0.7});
  }
  request.options.threads = 2;
  request.options.allow_oversubscription = true;

  auto unbounded = engine.KnMatchBatch(request, 2, 5);
  ASSERT_TRUE(unbounded.ok());

  request.options.deadline_ms = 1e9;
  request.options.cancel = std::make_shared<std::atomic<bool>>(false);
  auto bounded = engine.KnMatchBatch(request, 2, 5);
  ASSERT_TRUE(bounded.ok());

  ASSERT_EQ(bounded.value().results.size(), unbounded.value().results.size());
  for (size_t i = 0; i < bounded.value().results.size(); ++i) {
    EXPECT_TRUE(bounded.value().statuses[i].ok());
    EXPECT_EQ(bounded.value().results[i].matches,
              unbounded.value().results[i].matches);
  }
  EXPECT_EQ(bounded.value().attributes_retrieved,
            unbounded.value().attributes_retrieved);
}

// ---------------------------------------------------------------------------
// The randomized fault-schedule soak

TEST(FaultSoakTest, TwoThousandQueriesSurviveARandomizedFaultSchedule) {
  constexpr size_t kCardinality = 800;
  constexpr size_t kDims = 4;
  constexpr int kQueries = 2000;

  SimilarityEngine clean(datagen::MakeUniform(kCardinality, kDims, 42));
  SimilarityEngine faulty(datagen::MakeUniform(kCardinality, kDims, 42));
  FaultInjector injector(FaultInjector::Config{
      .seed = 7, .transient_error_rate = 0.01, .corruption_rate = 0.001});
  faulty.SetFaultInjector(&injector);

  // Midway through, a deterministic mechanical failure takes out one
  // row page and one column page on top of the random schedule.
  const auto stats = faulty.DiskStorageStats();
  ASSERT_GT(stats.row_pages, 2u);
  ASSERT_GT(stats.column_pages, 2u);

  Rng rng(99);
  size_t degraded = 0;
  for (int qi = 0; qi < kQueries; ++qi) {
    if (qi == kQueries / 2) {
      injector.CorruptPage(2);                   // a row-store page
      injector.CorruptPage(stats.row_pages + 1);  // a column page
    }
    std::vector<Value> q(kDims);
    for (size_t d = 0; d < kDims; ++d) q[d] = rng.Uniform(0.0, 1.0);

    auto expected = clean.DiskFrequentKnMatch(q, 2, 4, 5, DiskMethod::kScan);
    ASSERT_TRUE(expected.ok());

    // kAuto must always answer (the in-memory terminal fallback cannot
    // fail), and the answer must be bit-identical to the healthy run.
    auto got = faulty.DiskFrequentKnMatch(q, 2, 4, 5, DiskMethod::kAuto);
    ASSERT_TRUE(got.ok()) << "query " << qi << ": "
                          << got.status().ToString();
    ASSERT_EQ(got.value().matches, expected.value().matches) << "query " << qi;
    ASSERT_EQ(got.value().frequencies, expected.value().frequencies)
        << "query " << qi;
    ASSERT_EQ(got.value().per_n_sets, expected.value().per_n_sets)
        << "query " << qi;
    if (!faulty.last_disk_fallback().empty()) ++degraded;
  }
  // The schedule genuinely fired.
  EXPECT_GT(injector.transient_faults_injected(), 0u);
  EXPECT_GT(injector.corruptions_injected(), 0u);
  EXPECT_GT(degraded, 0u);

  // Operator swaps the disk: faults cleared, quarantines lifted. The
  // stored images were never touched, so every query must now run
  // undegraded and still bit-identical.
  faulty.ClearFaults();
  EXPECT_EQ(faulty.disk_simulator()->quarantined_pages(), 0u);
  for (int qi = 0; qi < 200; ++qi) {
    std::vector<Value> q(kDims);
    for (size_t d = 0; d < kDims; ++d) q[d] = rng.Uniform(0.0, 1.0);
    auto expected = clean.DiskFrequentKnMatch(q, 2, 4, 5, DiskMethod::kScan);
    ASSERT_TRUE(expected.ok());
    auto got = faulty.DiskFrequentKnMatch(q, 2, 4, 5, DiskMethod::kAuto);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(faulty.last_disk_fallback().empty()) << "query " << qi;
    ASSERT_EQ(got.value().matches, expected.value().matches);
    ASSERT_EQ(got.value().per_n_sets, expected.value().per_n_sets);
  }
}

}  // namespace
}  // namespace knmatch

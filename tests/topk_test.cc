#include "knmatch/common/top_k.h"

#include <string>

#include <gtest/gtest.h>

namespace knmatch {
namespace {

using TopK = BoundedTopK<int, double, int>;

TEST(BoundedTopKTest, FillsUpToK) {
  TopK top(3);
  EXPECT_FALSE(top.full());
  EXPECT_TRUE(top.Offer(5.0, 1, 1));
  EXPECT_TRUE(top.Offer(3.0, 2, 2));
  EXPECT_EQ(top.size(), 2u);
  EXPECT_TRUE(top.Offer(4.0, 3, 3));
  EXPECT_TRUE(top.full());
  EXPECT_EQ(top.threshold(), 5.0);
}

TEST(BoundedTopKTest, RejectsWorseWhenFull) {
  TopK top(2);
  top.Offer(1.0, 1, 1);
  top.Offer(2.0, 2, 2);
  EXPECT_FALSE(top.Offer(3.0, 3, 3));
  EXPECT_EQ(top.threshold(), 2.0);
}

TEST(BoundedTopKTest, AcceptsBetterWhenFullAndEvictsWorst) {
  TopK top(2);
  top.Offer(1.0, 1, 1);
  top.Offer(5.0, 2, 2);
  EXPECT_TRUE(top.Offer(2.0, 3, 3));
  EXPECT_EQ(top.threshold(), 2.0);
  auto sorted = top.TakeSorted();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].item, 1);
  EXPECT_EQ(sorted[1].item, 3);
}

TEST(BoundedTopKTest, TiesBrokenBySecondaryKey) {
  TopK top(2);
  top.Offer(1.0, 10, 10);
  top.Offer(1.0, 20, 20);
  // Equal score, larger tiebreak than the worst -> rejected.
  EXPECT_FALSE(top.Offer(1.0, 30, 30));
  // Equal score, smaller tiebreak than the worst -> accepted.
  EXPECT_TRUE(top.Offer(1.0, 5, 5));
  auto sorted = top.TakeSorted();
  EXPECT_EQ(sorted[0].item, 5);
  EXPECT_EQ(sorted[1].item, 10);
}

TEST(BoundedTopKTest, TakeSortedOrdersByScoreThenTiebreak) {
  TopK top(4);
  top.Offer(2.0, 9, 9);
  top.Offer(1.0, 7, 7);
  top.Offer(2.0, 3, 3);
  top.Offer(0.5, 1, 1);
  auto sorted = top.TakeSorted();
  ASSERT_EQ(sorted.size(), 4u);
  EXPECT_EQ(sorted[0].item, 1);
  EXPECT_EQ(sorted[1].item, 7);
  EXPECT_EQ(sorted[2].item, 3);
  EXPECT_EQ(sorted[3].item, 9);
  EXPECT_EQ(top.size(), 0u);
}

TEST(BoundedTopKTest, KOneKeepsSingleBest) {
  TopK top(1);
  for (int i = 0; i < 100; ++i) {
    top.Offer(100.0 - i, i, i);
  }
  auto sorted = top.TakeSorted();
  ASSERT_EQ(sorted.size(), 1u);
  EXPECT_EQ(sorted[0].item, 99);
  EXPECT_EQ(sorted[0].score, 1.0);
}

TEST(BoundedTopKTest, WorksWithMoveOnlyLikePayload) {
  BoundedTopK<std::string, double, int> top(2);
  top.Offer(1.0, 1, "one");
  top.Offer(2.0, 2, "two");
  top.Offer(0.5, 0, "half");
  auto sorted = top.TakeSorted();
  EXPECT_EQ(sorted[0].item, "half");
  EXPECT_EQ(sorted[1].item, "one");
}

}  // namespace
}  // namespace knmatch

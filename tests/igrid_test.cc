#include "knmatch/baselines/igrid.h"

#include <gtest/gtest.h>

#include "knmatch/common/random.h"
#include "knmatch/datagen/generators.h"

namespace knmatch {
namespace {

TEST(IGridTest, DefaultPartitionsAreHalfDims) {
  Dataset db = datagen::MakeUniform(500, 16, 31);
  IGridIndex index(db);
  EXPECT_EQ(index.partitions(), 8u);
}

TEST(IGridTest, PartitionsOverride) {
  Dataset db = datagen::MakeUniform(500, 16, 31);
  IGridIndex index(db, IGridOptions{.partitions = 4});
  EXPECT_EQ(index.partitions(), 4u);
}

TEST(IGridTest, LowDimensionalFloorOfTwoPartitions) {
  Dataset db = datagen::MakeUniform(100, 2, 32);
  IGridIndex index(db);
  EXPECT_EQ(index.partitions(), 2u);
}

TEST(IGridTest, LocateRangeCoversWholeAxis) {
  Dataset db = datagen::MakeUniform(1000, 4, 33);
  IGridIndex index(db);
  for (size_t dim = 0; dim < 4; ++dim) {
    EXPECT_EQ(index.LocateRange(dim, -1.0), 0u);
    EXPECT_EQ(index.LocateRange(dim, 2.0), index.partitions() - 1);
    Rng rng(dim);
    for (int t = 0; t < 50; ++t) {
      const size_t r = index.LocateRange(dim, rng.Uniform01());
      EXPECT_LT(r, index.partitions());
    }
  }
}

TEST(IGridTest, EquiDepthPartitionsAreBalanced) {
  Dataset db = datagen::MakeSkewed(3000, 6, 34);
  IGridIndex index(db);
  // Count points per range in dimension 0 via LocateRange; equi-depth
  // partitioning should give each range roughly c/p points even on
  // skewed data.
  std::vector<size_t> counts(index.partitions(), 0);
  for (PointId pid = 0; pid < db.size(); ++pid) {
    ++counts[index.LocateRange(0, db.at(pid, 0))];
  }
  const size_t expected = db.size() / index.partitions();
  for (const size_t count : counts) {
    EXPECT_GT(count, expected / 3);
    EXPECT_LT(count, expected * 3);
  }
}

TEST(IGridTest, SelfQueryIsTopResult) {
  Dataset db = datagen::MakeUniform(400, 8, 35);
  IGridIndex index(db);
  for (PointId pid : {PointId{0}, PointId{123}, PointId{399}}) {
    auto r = index.Search(db.point(pid), 3);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().matches[0].pid, pid);
  }
}

TEST(IGridTest, ReturnsExactlyK) {
  Dataset db = datagen::MakeUniform(200, 6, 36);
  IGridIndex index(db);
  std::vector<Value> q(6, 0.5);
  auto r = index.Search(q, 17);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().matches.size(), 17u);
  // Best-first: negated similarity ascends.
  for (size_t i = 0; i + 1 < 17; ++i) {
    EXPECT_LE(r.value().matches[i].distance,
              r.value().matches[i + 1].distance);
  }
}

TEST(IGridTest, AccessedFractionIsRoughlyTwoOverD) {
  const size_t d = 16;
  Dataset db = datagen::MakeUniform(4000, d, 37);
  IGridIndex index(db);
  std::vector<Value> q(d, 0.3);
  auto r = index.Search(q, 10);
  ASSERT_TRUE(r.ok());
  const double fraction =
      static_cast<double>(r.value().attributes_retrieved) /
      (static_cast<double>(db.size()) * d);
  // One list per dimension, each ~c/p entries with p = d/2 -> 2/d = 12.5%.
  EXPECT_NEAR(fraction, 2.0 / d, 0.06);
}

TEST(IGridTest, ContiguousLayoutChargesOneSeekPerDimension) {
  Dataset db = datagen::MakeUniform(5000, 8, 38);
  DiskSimulator disk;
  IGridIndex index(db, IGridOptions{.fragmented = false}, &disk);
  std::vector<Value> q(8, 0.5);
  disk.ResetCounters();
  auto r = index.Search(q, 10);
  ASSERT_TRUE(r.ok());
  // One random seek per touched list (one per dimension), remainder
  // sequential within lists.
  EXPECT_EQ(disk.random_reads(), 8u);
  EXPECT_GT(disk.sequential_reads(), 0u);
}

TEST(IGridTest, FragmentedLayoutMakesEveryPageRandom) {
  Dataset db = datagen::MakeUniform(5000, 8, 38);
  DiskSimulator disk;
  IGridIndex index(db, IGridOptions{.fragmented = true}, &disk);
  std::vector<Value> q(8, 0.5);
  disk.ResetCounters();
  auto r = index.Search(q, 10);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(disk.sequential_reads(), 0u);
  EXPECT_GE(disk.random_reads(), 8u);

  // Same pages touched overall; both layouts return identical answers.
  DiskSimulator disk2;
  IGridIndex contiguous(db, IGridOptions{.fragmented = false}, &disk2);
  auto r2 = contiguous.Search(q, 10);
  const uint64_t frag_total = disk.total_reads();
  disk2.ResetCounters();
  r2 = contiguous.Search(q, 10);
  EXPECT_EQ(frag_total, disk2.total_reads());
  EXPECT_EQ(r.value().matches, r2.value().matches);
}

TEST(IGridTest, ValidatesParameters) {
  Dataset db = datagen::MakeUniform(10, 3, 39);
  IGridIndex index(db);
  std::vector<Value> q(3, 0.5);
  EXPECT_FALSE(index.Search(q, 0).ok());
  EXPECT_FALSE(index.Search(q, 11).ok());
  std::vector<Value> bad(2, 0.5);
  EXPECT_FALSE(index.Search(bad, 1).ok());
}

}  // namespace
}  // namespace knmatch

#include "knmatch/storage/bplus_tree.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "knmatch/common/random.h"
#include "knmatch/core/nmatch_naive.h"
#include "knmatch/datagen/generators.h"
#include "knmatch/diskalgo/btree_ad.h"
#include "knmatch/core/ad_algorithm.h"

namespace knmatch {
namespace {

std::vector<ColumnEntry> SortedEntries(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<ColumnEntry> entries(count);
  for (size_t i = 0; i < count; ++i) {
    entries[i] = ColumnEntry{rng.Uniform01(), static_cast<PointId>(i)};
  }
  std::sort(entries.begin(), entries.end(),
            [](const ColumnEntry& a, const ColumnEntry& b) {
              if (a.value != b.value) return a.value < b.value;
              return a.pid < b.pid;
            });
  return entries;
}

TEST(BPlusTreeTest, EmptyTree) {
  DiskSimulator disk;
  BPlusTree tree(&disk);
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 0u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  const size_t s = tree.OpenStream();
  EXPECT_FALSE(tree.SeekLowerBound(s, 0.5).Valid());
  EXPECT_FALSE(tree.SeekBefore(s, 0.5).Valid());
  EXPECT_EQ(tree.RankOf(s, 0.5).value(), 0u);
}

TEST(BPlusTreeTest, BulkLoadSingleLeaf) {
  DiskSimulator disk;
  BPlusTree tree(&disk);
  auto entries = SortedEntries(100, 1);
  tree.BulkLoad(entries);
  EXPECT_EQ(tree.size(), 100u);
  EXPECT_EQ(tree.height(), 1u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BPlusTreeTest, BulkLoadMultiLevel) {
  DiskSimulator disk;
  BPlusTree tree(&disk);
  auto entries = SortedEntries(100000, 2);
  tree.BulkLoad(entries);
  EXPECT_EQ(tree.size(), 100000u);
  EXPECT_GE(tree.height(), 2u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BPlusTreeTest, ForwardScanVisitsAllInOrder) {
  DiskSimulator disk;
  BPlusTree tree(&disk);
  auto entries = SortedEntries(5000, 3);
  tree.BulkLoad(entries);
  const size_t s = tree.OpenStream();
  auto it = tree.SeekLowerBound(s, -1.0);
  for (const ColumnEntry& expected : entries) {
    ASSERT_TRUE(it.Valid());
    EXPECT_EQ(it.Get(), expected);
    it.Next();
  }
  EXPECT_FALSE(it.Valid());
}

TEST(BPlusTreeTest, BackwardScanVisitsAllInReverse) {
  DiskSimulator disk;
  BPlusTree tree(&disk);
  auto entries = SortedEntries(5000, 4);
  tree.BulkLoad(entries);
  const size_t s = tree.OpenStream();
  auto it = tree.SeekBefore(s, 2.0);  // after everything
  for (size_t i = entries.size(); i-- > 0;) {
    ASSERT_TRUE(it.Valid());
    EXPECT_EQ(it.Get(), entries[i]);
    it.Prev();
  }
  EXPECT_FALSE(it.Valid());
}

TEST(BPlusTreeTest, SeekAgreesWithStdLowerBound) {
  DiskSimulator disk;
  BPlusTree tree(&disk);
  auto entries = SortedEntries(3000, 5);
  tree.BulkLoad(entries);
  Rng rng(77);
  const size_t s = tree.OpenStream();
  for (int trial = 0; trial < 300; ++trial) {
    const Value v = rng.Uniform(-0.1, 1.1);
    auto expected = std::lower_bound(
        entries.begin(), entries.end(), v,
        [](const ColumnEntry& e, Value t) { return e.value < t; });
    auto it = tree.SeekLowerBound(s, v);
    if (expected == entries.end()) {
      EXPECT_FALSE(it.Valid());
    } else {
      ASSERT_TRUE(it.Valid());
      EXPECT_EQ(it.Get(), *expected);
    }
    // RankOf matches the std::lower_bound index.
    EXPECT_EQ(tree.RankOf(s, v).value(),
              static_cast<size_t>(expected - entries.begin()));
    // SeekBefore gives the predecessor.
    auto before = tree.SeekBefore(s, v);
    if (expected == entries.begin()) {
      EXPECT_FALSE(before.Valid());
    } else {
      ASSERT_TRUE(before.Valid());
      EXPECT_EQ(before.Get(), *(expected - 1));
    }
  }
}

TEST(BPlusTreeTest, SeekChargesRootToLeafPages) {
  DiskSimulator disk;
  BPlusTree tree(&disk);
  tree.BulkLoad(SortedEntries(100000, 6));
  const size_t s = disk.OpenStream();
  // Use the tree's stream accounting: a fresh stream's seek charges
  // height() node visits (all random for the first seek).
  (void)s;
  const size_t stream = tree.OpenStream();
  disk.ResetCounters();
  tree.SeekLowerBound(stream, 0.5);
  EXPECT_EQ(disk.total_reads(), tree.height());
}

TEST(BPlusTreeTest, InsertIntoEmptyAndGrow) {
  DiskSimulator disk;
  BPlusTree tree(&disk);
  Rng rng(7);
  std::vector<ColumnEntry> reference;
  for (PointId pid = 0; pid < 2000; ++pid) {
    const ColumnEntry e{rng.Uniform01(), pid};
    tree.Insert(e);
    reference.push_back(e);
    if (pid % 500 == 499) {
      ASSERT_TRUE(tree.CheckInvariants().ok()) << "after " << pid + 1;
    }
  }
  EXPECT_EQ(tree.size(), 2000u);
  EXPECT_GE(tree.height(), 2u);
  ASSERT_TRUE(tree.CheckInvariants().ok());

  std::sort(reference.begin(), reference.end(),
            [](const ColumnEntry& a, const ColumnEntry& b) {
              if (a.value != b.value) return a.value < b.value;
              return a.pid < b.pid;
            });
  const size_t s = tree.OpenStream();
  auto it = tree.SeekLowerBound(s, -1.0);
  for (const ColumnEntry& expected : reference) {
    ASSERT_TRUE(it.Valid());
    EXPECT_EQ(it.Get(), expected);
    it.Next();
  }
  EXPECT_FALSE(it.Valid());
}

TEST(BPlusTreeTest, InsertAfterBulkLoad) {
  DiskSimulator disk;
  BPlusTree tree(&disk);
  auto entries = SortedEntries(1000, 8);
  tree.BulkLoad(entries);
  Rng rng(9);
  for (PointId pid = 1000; pid < 1500; ++pid) {
    tree.Insert(ColumnEntry{rng.Uniform01(), pid});
  }
  EXPECT_EQ(tree.size(), 1500u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BPlusTreeTest, EraseExistingAndMissing) {
  DiskSimulator disk;
  BPlusTree tree(&disk);
  auto entries = SortedEntries(500, 10);
  tree.BulkLoad(entries);
  EXPECT_TRUE(tree.Erase(entries[250]).value());
  EXPECT_EQ(tree.size(), 499u);
  EXPECT_FALSE(tree.Erase(entries[250]).value());  // already gone
  EXPECT_FALSE(tree.Erase(ColumnEntry{2.0, 1}).value());
  EXPECT_TRUE(tree.CheckInvariants().ok());

  // The erased entry is skipped by scans.
  const size_t s = tree.OpenStream();
  auto it = tree.SeekLowerBound(s, -1.0);
  size_t seen = 0;
  while (it.Valid()) {
    EXPECT_FALSE(it.Get() == entries[250]);
    ++seen;
    it.Next();
  }
  EXPECT_EQ(seen, 499u);
}

TEST(BPlusTreeTest, EraseWholeLeafThenIterate) {
  DiskSimulator disk;
  BPlusTree tree(&disk);
  auto entries = SortedEntries(1000, 11);
  tree.BulkLoad(entries);
  // Erase a contiguous run wider than one leaf (capacity 256).
  for (size_t i = 100; i < 400; ++i) {
    ASSERT_TRUE(tree.Erase(entries[i]).value());
  }
  EXPECT_TRUE(tree.CheckInvariants().ok());
  const size_t s = tree.OpenStream();
  auto it = tree.SeekLowerBound(s, -1.0);
  size_t seen = 0;
  while (it.Valid()) {
    ++seen;
    it.Next();
  }
  EXPECT_EQ(seen, 700u);
  // Backward over the hole as well.
  auto back = tree.SeekBefore(s, 2.0);
  seen = 0;
  while (back.Valid()) {
    ++seen;
    back.Prev();
  }
  EXPECT_EQ(seen, 700u);
}

TEST(BTreeColumnsTest, AdOverBTreesMatchesMemoryAdExactly) {
  Dataset db = datagen::MakeUniform(3000, 6, 12);
  DiskSimulator disk;
  BTreeColumns columns(db, &disk);
  BTreeAdSearcher btree_ad(columns);
  AdSearcher mem(db);

  Rng rng(13);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<Value> q(6);
    for (Value& v : q) v = rng.Uniform01();
    for (size_t n : {size_t{1}, size_t{3}, size_t{6}}) {
      auto a = btree_ad.KnMatch(q, n, 7);
      auto b = mem.KnMatch(q, n, 7);
      ASSERT_TRUE(a.ok());
      EXPECT_EQ(a.value().matches, b.value().matches);
      EXPECT_EQ(a.value().attributes_retrieved,
                b.value().attributes_retrieved);
    }
    auto fa = btree_ad.FrequentKnMatch(q, 2, 5, 9);
    auto fb = mem.FrequentKnMatch(q, 2, 5, 9);
    ASSERT_TRUE(fa.ok());
    EXPECT_EQ(fa.value().matches, fb.value().matches);
    EXPECT_EQ(fa.value().per_n_sets, fb.value().per_n_sets);
  }
}

TEST(BTreeColumnsTest, InsertPointThenSearchFindsIt) {
  Dataset db = datagen::MakeUniform(500, 4, 14);
  DiskSimulator disk;
  BTreeColumns columns(db, &disk);
  // Insert a point identical to an existing query target.
  std::vector<Value> coords = {0.21, 0.43, 0.65, 0.87};
  columns.InsertPoint(500, coords);
  EXPECT_EQ(columns.column_size(), 501u);

  BTreeAdSearcher searcher(columns);
  auto r = searcher.KnMatch(coords, 4, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().matches[0].pid, 500u);
  EXPECT_EQ(r.value().matches[0].distance, 0.0);
}

}  // namespace
}  // namespace knmatch

// Tests for per-query tracing: scope installation/nesting, phase
// spans, and end-to-end traces of in-memory and disk queries, where
// the trace's cost counters must agree with the answers the engine
// itself reports.

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "knmatch/engine.h"
#include "knmatch/datagen/generators.h"
#include "knmatch/obs/trace.h"

namespace knmatch::obs {
namespace {

std::vector<Value> QueryAt(const Dataset& db, PointId pid) {
  const auto p = db.point(pid);
  return std::vector<Value>(p.begin(), p.end());
}

#if !KNMATCH_OBS_ENABLED

// KNMATCH_DISABLE_METRICS build: tracing is compiled out; the no-op
// scope/span must still be constructible around untraced queries.
TEST(ObsTraceTest, CompiledOutScopeAndSpanAreInert) {
  QueryTrace trace;
  TraceScope scope(&trace);
  TraceSpan span(Phase::kAscend);
  EXPECT_EQ(CurrentTrace(), nullptr);
}

#else

TEST(ObsTraceScopeTest, InstallsAndRestoresNested) {
  EXPECT_EQ(CurrentTrace(), nullptr);
  QueryTrace outer;
  {
    TraceScope a(&outer);
    EXPECT_EQ(CurrentTrace(), &outer);
    QueryTrace inner;
    {
      TraceScope b(&inner);
      EXPECT_EQ(CurrentTrace(), &inner);
    }
    EXPECT_EQ(CurrentTrace(), &outer);
  }
  EXPECT_EQ(CurrentTrace(), nullptr);
}

TEST(ObsTraceScopeTest, IsThreadLocal) {
  QueryTrace trace;
  TraceScope scope(&trace);
  QueryTrace* seen = &trace;  // sentinel; the thread must overwrite it
  std::thread([&] { seen = CurrentTrace(); }).join();
  EXPECT_EQ(seen, nullptr);
  EXPECT_EQ(CurrentTrace(), &trace);
}

TEST(ObsTraceSpanTest, ChargesElapsedTimeToPhase) {
  QueryTrace trace;
  {
    TraceScope scope(&trace);
    TraceSpan span(Phase::kAscend);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(trace.phase_seconds(Phase::kAscend), 0.0);
  EXPECT_EQ(trace.phase_seconds(Phase::kLocate), 0.0);
  EXPECT_DOUBLE_EQ(trace.cpu_seconds(),
                   trace.phase_seconds(Phase::kAscend));
}

TEST(ObsTraceSpanTest, NoTraceMeansNoRecording) {
  ASSERT_EQ(CurrentTrace(), nullptr);
  TraceSpan span(Phase::kVerify);  // must be a harmless no-op
}

TEST(ObsTraceTest, DiskIoExcludedFromCpuSeconds) {
  QueryTrace trace;
  trace.AddPhaseSeconds(Phase::kLocate, 0.5);
  trace.AddPhaseSeconds(Phase::kDiskIo, 2.0);
  EXPECT_DOUBLE_EQ(trace.cpu_seconds(), 0.5);
  EXPECT_DOUBLE_EQ(trace.phase_seconds(Phase::kDiskIo), 2.0);
}

TEST(ObsTraceTest, ClearZeroesEverything) {
  QueryTrace trace;
  trace.AddPhaseSeconds(Phase::kRank, 1.0);
  trace.counters().attributes_retrieved = 7;
  trace.Clear();
  EXPECT_EQ(trace.phase_seconds(Phase::kRank), 0.0);
  EXPECT_EQ(trace.counters().attributes_retrieved, 0u);
}

TEST(ObsTraceTest, RenderingsNamePhasesAndCounters) {
  QueryTrace trace;
  trace.AddPhaseSeconds(Phase::kAscend, 0.25);
  trace.counters().attributes_retrieved = 42;
  const std::string text = trace.ToString();
  EXPECT_NE(text.find("ascend"), std::string::npos);
  EXPECT_NE(text.find("attributes_retrieved"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
  const std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"ascend\":0.250000000"), std::string::npos);
  EXPECT_NE(json.find("\"attributes_retrieved\":42"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(ObsTraceEndToEndTest, MemoryQueryTraceMatchesAnswerStats) {
  const Dataset db = datagen::MakeUniform(500, 8, /*seed=*/3);
  SimilarityEngine engine(datagen::MakeUniform(500, 8, /*seed=*/3));
  QueryTrace trace;
  Result<KnMatchResult> r = Status::Internal("unset");
  {
    TraceScope scope(&trace);
    r = engine.KnMatch(QueryAt(db, 21), /*n=*/5, /*k=*/8);
  }
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(trace.counters().attributes_retrieved,
            r.value().attributes_retrieved);
  EXPECT_GT(trace.counters().heap_pops, 0u);
  EXPECT_GT(trace.phase_seconds(Phase::kAscend), 0.0);
  EXPECT_EQ(trace.phase_seconds(Phase::kDiskIo), 0.0);
}

TEST(ObsTraceEndToEndTest, FrequentQueryChargesRankPhase) {
  const Dataset db = datagen::MakeUniform(400, 6, /*seed=*/11);
  SimilarityEngine engine(datagen::MakeUniform(400, 6, /*seed=*/11));
  QueryTrace trace;
  Result<FrequentKnMatchResult> r = Status::Internal("unset");
  {
    TraceScope scope(&trace);
    r = engine.FrequentKnMatch(QueryAt(db, 5), /*n0=*/2, /*n1=*/5,
                               /*k=*/6);
  }
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(trace.counters().attributes_retrieved,
            r.value().attributes_retrieved);
  EXPECT_GT(trace.phase_seconds(Phase::kRank), 0.0);
}

TEST(ObsTraceEndToEndTest, DiskQueryRecordsPagesAndModelledIo) {
  const Dataset db = datagen::MakeUniform(300, 6, /*seed=*/17);
  SimilarityEngine engine(datagen::MakeUniform(300, 6, /*seed=*/17));
  QueryTrace trace;
  Result<FrequentKnMatchResult> r = Status::Internal("unset");
  {
    TraceScope scope(&trace);
    r = engine.DiskFrequentKnMatch(QueryAt(db, 9), /*n0=*/2, /*n1=*/4,
                                   /*k=*/5,
                                   SimilarityEngine::DiskMethod::kScan);
  }
  ASSERT_TRUE(r.ok());
  const TraceCounters& c = trace.counters();
  EXPECT_GT(c.sequential_pages + c.random_pages + c.buffer_hits, 0u);
  EXPECT_GT(trace.phase_seconds(Phase::kDiskIo), 0.0);
  EXPECT_EQ(trace.phase_seconds(Phase::kDiskIo),
            engine.last_disk_cost().io_seconds);
  EXPECT_EQ(c.attributes_retrieved, r.value().attributes_retrieved);
  EXPECT_EQ(c.fallbacks, 0u);
}

TEST(ObsTraceEndToEndTest, SuccessiveQueriesAccumulateUntilCleared) {
  const Dataset db = datagen::MakeUniform(300, 6, /*seed=*/23);
  SimilarityEngine engine(datagen::MakeUniform(300, 6, /*seed=*/23));
  QueryTrace trace;
  TraceScope scope(&trace);
  ASSERT_TRUE(engine.KnMatch(QueryAt(db, 1), 3, 4).ok());
  const uint64_t after_one = trace.counters().attributes_retrieved;
  ASSERT_TRUE(engine.KnMatch(QueryAt(db, 2), 3, 4).ok());
  EXPECT_GT(trace.counters().attributes_retrieved, after_one);
  trace.Clear();
  EXPECT_EQ(trace.counters().attributes_retrieved, 0u);
}

#endif  // KNMATCH_OBS_ENABLED

}  // namespace
}  // namespace knmatch::obs

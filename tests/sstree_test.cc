#include "knmatch/baselines/sstree.h"

#include <cmath>

#include <gtest/gtest.h>

#include "knmatch/baselines/knn_scan.h"
#include "knmatch/common/random.h"
#include "knmatch/datagen/generators.h"

namespace knmatch {
namespace {

TEST(SsTreeTest, EmptyTree) {
  SsTree tree(4);
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  std::vector<Value> q(4, 0.5);
  EXPECT_FALSE(tree.Knn(q, 1).ok());
}

TEST(SsTreeTest, SinglePoint) {
  SsTree tree(2);
  const Value p[] = {0.3, 0.7};
  tree.Insert(0, p);
  auto r = tree.Knn(std::vector<Value>{0.0, 0.0}, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().matches[0].pid, 0u);
  EXPECT_NEAR(r.value().matches[0].distance, std::hypot(0.3, 0.7), 1e-12);
}

TEST(SsTreeTest, GrowsAndKeepsInvariants) {
  Dataset db = datagen::MakeUniform(3000, 5, 140);
  DiskSimulator disk;
  SsTree tree = SsTree::Build(db, &disk);
  EXPECT_EQ(tree.size(), 3000u);
  EXPECT_GE(tree.height(), 2u);
  ASSERT_TRUE(tree.CheckInvariants().ok())
      << tree.CheckInvariants().ToString();
}

TEST(SsTreeTest, KnnMatchesScanExactly) {
  Dataset db = datagen::MakeUniform(2000, 4, 141);
  SsTree tree = SsTree::Build(db);
  Rng rng(142);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Value> q(4);
    for (Value& v : q) v = rng.Uniform01();
    auto tree_result = tree.Knn(q, 8);
    auto scan_result = KnnScan(db, q, 8, Metric::kEuclidean);
    ASSERT_TRUE(tree_result.ok());
    EXPECT_EQ(tree_result.value().matches, scan_result.value().matches);
  }
}

TEST(SsTreeTest, KnnOnSkewedData) {
  Dataset db = datagen::MakeSkewed(2500, 6, 143);
  SsTree tree = SsTree::Build(db);
  Rng rng(144);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<Value> q(6);
    for (Value& v : q) v = rng.Uniform01();
    auto tree_result = tree.Knn(q, 12);
    auto scan_result = KnnScan(db, q, 12, Metric::kEuclidean);
    ASSERT_TRUE(tree_result.ok());
    EXPECT_EQ(tree_result.value().matches, scan_result.value().matches);
  }
}

TEST(SsTreeTest, PrunesInLowDimensionsCursesInHigh) {
  double low = 0, high = 0;
  for (const size_t d : {size_t{2}, size_t{24}}) {
    Dataset db = datagen::MakeUniform(4000, d, 145);
    SsTree tree = SsTree::Build(db);
    std::vector<Value> q(d, 0.5);
    auto r = tree.Knn(q, 10);
    ASSERT_TRUE(r.ok());
    const double fraction =
        static_cast<double>(tree.last_nodes_visited()) /
        static_cast<double>(tree.num_nodes());
    (d == 2 ? low : high) = fraction;
  }
  EXPECT_LT(low, 0.35);
  EXPECT_GT(high, 2 * low);
}

TEST(SsTreeTest, ChargesNodeVisits) {
  Dataset db = datagen::MakeUniform(2000, 3, 146);
  DiskSimulator disk;
  SsTree tree = SsTree::Build(db, &disk);
  disk.ResetCounters();
  auto r = tree.Knn(std::vector<Value>(3, 0.4), 5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(disk.total_reads(), tree.last_nodes_visited());
}

TEST(SsTreeTest, DuplicatePointsAllRetrievable) {
  SsTree tree(2);
  const Value p[] = {0.4, 0.4};
  for (PointId pid = 0; pid < 40; ++pid) tree.Insert(pid, p);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  auto r = tree.Knn(std::vector<Value>{0.4, 0.4}, 40);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().matches.size(), 40u);
}

}  // namespace
}  // namespace knmatch

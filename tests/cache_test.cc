// Tests for the query-result cache: key exactness, LRU bounding,
// exact-hit serving through the engine and the batch executor, precise
// insert/erase invalidation (the inverted index and the guard band),
// the B+-tree mutation bridge, the warm-start differential guarantee,
// a randomized update/query soak against an uncached mirror, and a
// concurrency hammer for the TSan gate.
//
// Every answer comparison in this file compares answer fields only
// (matches, per_n_sets, frequencies) — a cache hit intentionally
// returns the populating run's attributes_retrieved, which a re-run
// need not reproduce.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "knmatch/cache/btree_bridge.h"
#include "knmatch/cache/query_cache.h"
#include "knmatch/common/random.h"
#include "knmatch/datagen/generators.h"
#include "knmatch/engine.h"
#include "knmatch/obs/catalog.h"

namespace knmatch {
namespace {

using cache::CacheConfig;
using cache::QueryResultCache;

void ExpectSameMatches(const std::vector<Neighbor>& a,
                       const std::vector<Neighbor>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].pid, b[i].pid) << "slot " << i;
    EXPECT_EQ(a[i].distance, b[i].distance) << "slot " << i;
  }
}

void ExpectSameFrequent(const FrequentKnMatchResult& a,
                        const FrequentKnMatchResult& b) {
  ExpectSameMatches(a.matches, b.matches);
  EXPECT_EQ(a.frequencies, b.frequencies);
  ASSERT_EQ(a.per_n_sets.size(), b.per_n_sets.size());
  for (size_t lvl = 0; lvl < a.per_n_sets.size(); ++lvl) {
    ExpectSameMatches(a.per_n_sets[lvl], b.per_n_sets[lvl]);
  }
}

// Brace lists don't convert to std::span; V names the vector.
std::vector<Value> V(std::initializer_list<Value> values) { return values; }

KnMatchResult MakeResult(std::vector<Neighbor> matches) {
  KnMatchResult r;
  r.matches = std::move(matches);
  r.attributes_retrieved = 123;
  return r;
}

// ---------------------------------------------------------------------------
// CacheUnitTest: the data structure in isolation.

TEST(CacheUnitTest, ExactKeyHitAndParameterMisses) {
  QueryResultCache cache;
  const std::vector<Value> q{0.1, 0.2, 0.3};
  const KnMatchResult r = MakeResult({{7, 0.01}, {3, 0.02}});
  cache.StoreKnMatch(/*epoch=*/1, q, /*n=*/2, /*k=*/2, {}, r);

  auto hit = cache.LookupKnMatch(1, q, 2, 2, {});
  ASSERT_TRUE(hit.has_value());
  ExpectSameMatches(hit->matches, r.matches);
  EXPECT_EQ(hit->attributes_retrieved, r.attributes_retrieved);

  // Every key field participates: change one, miss.
  EXPECT_FALSE(cache.LookupKnMatch(2, q, 2, 2, {}).has_value());
  EXPECT_FALSE(cache.LookupKnMatch(1, q, 3, 2, {}).has_value());
  EXPECT_FALSE(cache.LookupKnMatch(1, q, 2, 3, {}).has_value());
  const std::vector<Value> q2{0.1, 0.2, 0.30000001};
  EXPECT_FALSE(cache.LookupKnMatch(1, q2, 2, 2, {}).has_value());
  const std::vector<Value> w{1.0, 2.0, 1.0};
  EXPECT_FALSE(cache.LookupKnMatch(1, q, 2, 2, w).has_value());
  // Methods never alias, even with identical numeric parameters.
  EXPECT_FALSE(cache.LookupKnn(1, q, 2, Metric::kEuclidean).has_value());

  const auto stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 6u);
  EXPECT_EQ(stats.stores, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(CacheUnitTest, ByteBudgetEvictsFromTheLruTail) {
  CacheConfig config;
  config.shards = 1;
  config.max_bytes = 4096;
  QueryResultCache cache(config);
  for (size_t i = 0; i < 64; ++i) {
    const std::vector<Value> q{static_cast<Value>(i), 0.5};
    const auto pid = static_cast<PointId>(i);
    cache.StoreKnMatch(1, q, 1, 2, {},
                       MakeResult({{pid, 0.1}, {pid + 1000, 0.2}}));
  }
  const auto stats = cache.Stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LT(stats.entries, 64u);
  EXPECT_LE(stats.bytes, config.max_bytes);
  // The most recent store must have survived; the oldest must be gone.
  EXPECT_TRUE(
      cache.LookupKnMatch(1, V({63.0, 0.5}),1, 2, {}).has_value());
  EXPECT_FALSE(cache.LookupKnMatch(1, V({0.0, 0.5}),1, 2, {}).has_value());
}

TEST(CacheUnitTest, ClearDropsEverything) {
  QueryResultCache cache;
  cache.StoreKnMatch(1, V({0.1}),1, 1, {}, MakeResult({{0, 0.5}}));
  cache.StoreKnn(1, V({0.2}),1, Metric::kManhattan, MakeResult({{1, 0.5}}));
  EXPECT_EQ(cache.Stats().entries, 2u);
  cache.Clear();
  const auto stats = cache.Stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_FALSE(cache.LookupKnMatch(1, V({0.1}),1, 1, {}).has_value());
}

// ---------------------------------------------------------------------------
// CacheEngineTest: exact hits through the facade and the batch path.

TEST(CacheEngineTest, ServesAllThreeMethodsBitIdentically) {
  SimilarityEngine engine(datagen::MakeUniform(400, 6, 11));
  engine.EnableCache();
  const std::vector<Value> q{0.2, 0.4, 0.6, 0.8, 0.3, 0.5};

  const auto km1 = engine.KnMatch(q, 3, 5);
  const auto km2 = engine.KnMatch(q, 3, 5);
  ASSERT_TRUE(km1.ok() && km2.ok());
  ExpectSameMatches(km1.value().matches, km2.value().matches);

  const auto fr1 = engine.FrequentKnMatch(q, 2, 5, 4);
  const auto fr2 = engine.FrequentKnMatch(q, 2, 5, 4);
  ASSERT_TRUE(fr1.ok() && fr2.ok());
  ExpectSameFrequent(fr1.value(), fr2.value());

  const auto nn1 = engine.Knn(q, 5);
  const auto nn2 = engine.Knn(q, 5);
  ASSERT_TRUE(nn1.ok() && nn2.ok());
  ExpectSameMatches(nn1.value().matches, nn2.value().matches);

  const auto stats = engine.cache()->Stats();
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.stores, 3u);

  // And the cached answers match an uncached engine exactly.
  SimilarityEngine plain(datagen::MakeUniform(400, 6, 11));
  ExpectSameMatches(km2.value().matches,
                    plain.KnMatch(q, 3, 5).value().matches);
  ExpectSameFrequent(fr2.value(),
                     plain.FrequentKnMatch(q, 2, 5, 4).value());
  ExpectSameMatches(nn2.value().matches, plain.Knn(q, 5).value().matches);
}

TEST(CacheEngineTest, WeightedQueriesKeyOnTheirWeights) {
  SimilarityEngine engine(datagen::MakeUniform(300, 4, 12));
  engine.EnableCache();
  const std::vector<Value> q{0.3, 0.6, 0.2, 0.8};
  const std::vector<Value> w{2.0, 1.0, 1.0, 0.5};
  const auto plain = engine.KnMatch(q, 2, 4);
  const auto weighted = engine.KnMatch(q, 2, 4, w);
  ASSERT_TRUE(plain.ok() && weighted.ok());
  EXPECT_EQ(engine.cache()->Stats().hits, 0u);  // distinct keys
  const auto weighted_again = engine.KnMatch(q, 2, 4, w);
  ASSERT_TRUE(weighted_again.ok());
  EXPECT_EQ(engine.cache()->Stats().hits, 1u);
  ExpectSameMatches(weighted.value().matches,
                    weighted_again.value().matches);
}

TEST(CacheEngineTest, BatchSharesTheCacheWithSequentialCalls) {
  SimilarityEngine engine(datagen::MakeUniform(500, 5, 13));
  engine.EnableCache();
  exec::BatchRequest request;
  Rng rng(99);
  for (int i = 0; i < 12; ++i) {
    std::vector<Value> q(5);
    for (Value& v : q) v = rng.Uniform01();
    request.queries.push_back(std::move(q));
  }
  request.options.threads = 2;
  request.options.allow_oversubscription = true;

  const auto cold = engine.KnMatchBatch(request, 3, 4);
  ASSERT_TRUE(cold.ok());
  const uint64_t stores = engine.cache()->Stats().stores;
  EXPECT_EQ(stores, 12u);

  // The whole second batch is served from cache...
  const auto warm = engine.KnMatchBatch(request, 3, 4);
  ASSERT_TRUE(warm.ok());
  EXPECT_GE(engine.cache()->Stats().hits, 12u);
  for (size_t i = 0; i < request.queries.size(); ++i) {
    ExpectSameMatches(cold.value().results[i].matches,
                      warm.value().results[i].matches);
  }
  // ...and a sequential call sees the batch's entries.
  const auto seq = engine.KnMatch(request.queries[0], 3, 4);
  ASSERT_TRUE(seq.ok());
  ExpectSameMatches(seq.value().matches, cold.value().results[0].matches);
}

// ---------------------------------------------------------------------------
// CacheInvalidationTest: precision of the two mutation hooks.

TEST(CacheInvalidationTest, EraseEvictsExactlyTheEntriesContainingThePid) {
  QueryResultCache cache;
  cache.StoreKnMatch(1, V({0.1}),1, 2, {}, MakeResult({{5, 0.1}, {9, 0.2}}));
  cache.StoreKnMatch(1, V({0.2}),1, 2, {}, MakeResult({{9, 0.1}, {3, 0.2}}));
  cache.StoreKnMatch(1, V({0.3}),1, 2, {}, MakeResult({{3, 0.1}, {4, 0.2}}));

  cache.OnPointErased(9);  // in entries 1 and 2, not 3
  EXPECT_FALSE(cache.LookupKnMatch(1, V({0.1}),1, 2, {}).has_value());
  EXPECT_FALSE(cache.LookupKnMatch(1, V({0.2}),1, 2, {}).has_value());
  EXPECT_TRUE(cache.LookupKnMatch(1, V({0.3}),1, 2, {}).has_value());
  EXPECT_EQ(cache.Stats().invalidated_erase, 2u);

  cache.OnPointErased(12345);  // in no entry: nothing changes
  EXPECT_EQ(cache.Stats().invalidated_erase, 2u);
  EXPECT_EQ(cache.Stats().entries, 1u);
}

TEST(CacheInvalidationTest, InsertEvictsOnlyEntriesTheNewPointCouldEnter) {
  QueryResultCache cache;
  // Entry A: query at 0.1, k-th best difference 0.05.
  cache.StoreKnMatch(1, V({0.1, 0.1}),1, 2, {},
                     MakeResult({{5, 0.02}, {9, 0.05}}));
  // Entry B: query at 0.9, k-th best difference 0.04.
  cache.StoreKnMatch(1, V({0.9, 0.9}),1, 2, {},
                     MakeResult({{2, 0.01}, {7, 0.04}}));

  // A point near A's query (1-match dif 0.03 <= 0.05) but far from B's
  // (1-match dif 0.77 > 0.04): A must go, B must stay.
  cache.OnPointInserted(100, std::vector<Value>{0.13, 0.8});
  EXPECT_FALSE(cache.LookupKnMatch(1, V({0.1, 0.1}),1, 2, {}).has_value());
  EXPECT_TRUE(cache.LookupKnMatch(1, V({0.9, 0.9}),1, 2, {}).has_value());
  EXPECT_EQ(cache.Stats().invalidated_insert, 1u);

  // A point outside every entry's threshold evicts nothing.
  cache.OnPointInserted(101, std::vector<Value>{0.5, 0.5});
  EXPECT_TRUE(cache.LookupKnMatch(1, V({0.9, 0.9}),1, 2, {}).has_value());
  EXPECT_EQ(cache.Stats().invalidated_insert, 1u);
}

TEST(CacheInvalidationTest, BoundaryTieEvictsWithoutAGuardBand) {
  QueryResultCache cache;
  cache.StoreKnMatch(1, V({0.5}),1, 1, {}, MakeResult({{3, 0.25}}));
  // 1-match difference exactly equal to the k-th best: could tie into
  // the answer set, so the <= test must evict.
  cache.OnPointInserted(50, std::vector<Value>{0.75});
  EXPECT_FALSE(cache.LookupKnMatch(1, V({0.5}),1, 1, {}).has_value());
}

TEST(CacheInvalidationTest, EngineInsertKeepsUnaffectedEntriesWarm) {
  SimilarityEngine engine(datagen::MakeUniform(500, 4, 42));
  engine.EnableCache();
  const std::vector<Value> qa{0.1, 0.1, 0.1, 0.1};
  const std::vector<Value> qb{0.9, 0.9, 0.9, 0.9};
  ASSERT_TRUE(engine.KnMatch(qa, 2, 3).ok());
  ASSERT_TRUE(engine.KnMatch(qb, 2, 3).ok());

  // Insert right on top of qa: its entry must be invalidated; qb's
  // entry (2-match difference ~0.8 away) must survive.
  engine.InsertPoint(std::vector<Value>{0.1, 0.1, 0.1, 0.1});
  EXPECT_EQ(engine.cache()->Stats().invalidated_insert, 1u);
  EXPECT_EQ(engine.cache()->Stats().entries, 1u);

  // Both queries must now agree exactly with an uncached engine over
  // the mutated dataset — qa recomputed, qb served from cache.
  SimilarityEngine mirror(datagen::MakeUniform(500, 4, 42));
  mirror.InsertPoint(std::vector<Value>{0.1, 0.1, 0.1, 0.1});
  const auto ra = engine.KnMatch(qa, 2, 3);
  const auto rb = engine.KnMatch(qb, 2, 3);
  ASSERT_TRUE(ra.ok() && rb.ok());
  ExpectSameMatches(ra.value().matches,
                    mirror.KnMatch(qa, 2, 3).value().matches);
  ExpectSameMatches(rb.value().matches,
                    mirror.KnMatch(qb, 2, 3).value().matches);
}

TEST(CacheInvalidationTest, BTreeBridgeTranslatesTreeMutations) {
  QueryResultCache cache;
  cache.StoreKnMatch(1, V({0.1, 0.1}),1, 2, {},
                     MakeResult({{5, 0.02}, {9, 0.05}}));
  cache.StoreKnMatch(1, V({0.9, 0.9}),1, 2, {},
                     MakeResult({{2, 0.01}, {7, 0.04}}));

  DiskSimulator disk;
  BPlusTree dim0(&disk);
  BPlusTree dim1(&disk);
  cache::BTreeCacheBridge bridge(&cache, 2);
  dim0.set_mutation_listener(bridge.ListenerFor(0));
  dim1.set_mutation_listener(bridge.ListenerFor(1));

  // Inserting pid 100 at (0.12, 0.11) — inside the first entry's
  // threshold — fires OnPointInserted once BOTH dimensions landed.
  ASSERT_TRUE(dim0.Insert(ColumnEntry{0.12, 100}).ok());
  EXPECT_EQ(cache.Stats().invalidated_insert, 0u);  // coords incomplete
  ASSERT_TRUE(dim1.Insert(ColumnEntry{0.11, 100}).ok());
  EXPECT_EQ(cache.Stats().invalidated_insert, 1u);
  EXPECT_FALSE(cache.LookupKnMatch(1, V({0.1, 0.1}),1, 2, {}).has_value());
  EXPECT_TRUE(cache.LookupKnMatch(1, V({0.9, 0.9}),1, 2, {}).has_value());

  // Erasing an answer pid of the surviving entry evicts it on the
  // first per-dimension erase.
  ASSERT_TRUE(dim0.Erase(ColumnEntry{0.5, 7}).ok());  // not present: no-op
  EXPECT_EQ(cache.Stats().invalidated_erase, 0u);
  ASSERT_TRUE(dim0.Insert(ColumnEntry{0.5, 7}).ok());  // evicts nothing new
  ASSERT_TRUE(dim0.Erase(ColumnEntry{0.5, 7}).value());
  EXPECT_FALSE(cache.LookupKnMatch(1, V({0.9, 0.9}),1, 2, {}).has_value());
  EXPECT_GE(cache.Stats().invalidated_erase, 1u);

  dim0.set_mutation_listener(nullptr);
  dim1.set_mutation_listener(nullptr);
}

// ---------------------------------------------------------------------------
// CacheWarmStartTest: the differential bit-identity guarantee.

TEST(CacheWarmStartTest, WarmAnswersAreBitIdenticalToColdRuns) {
  const Dataset db = datagen::MakeUniform(2000, 8, 21);
  SimilarityEngine cached(datagen::MakeUniform(2000, 8, 21));
  SimilarityEngine cold(datagen::MakeUniform(2000, 8, 21));
  CacheConfig config;
  config.warm_radius = 0.05;
  cached.EnableCache(config);

  const uint64_t warm_before = obs::Cat().cache_warm_hits->Value();
  Rng rng(7);
  size_t compared = 0;
  for (int round = 0; round < 20; ++round) {
    // Seed query: a database point; probe query: a nearby perturbation
    // within the warm radius.
    const auto p = db.point(rng.UniformInt(db.size()));
    std::vector<Value> q(p.begin(), p.end());
    ASSERT_TRUE(cached.KnMatch(q, 4, 5).ok());
    std::vector<Value> probe = q;
    for (Value& v : probe) {
      v = std::clamp(v + rng.Uniform(-0.02, 0.02), 0.0, 1.0);
    }
    const auto warm = cached.KnMatch(probe, 4, 5);
    const auto reference = cold.KnMatch(probe, 4, 5);
    ASSERT_TRUE(warm.ok() && reference.ok());
    ExpectSameMatches(warm.value().matches, reference.value().matches);
    ++compared;

    const auto fwarm = cached.FrequentKnMatch(probe, 3, 6, 5);
    const auto fref = cold.FrequentKnMatch(probe, 3, 6, 5);
    ASSERT_TRUE(fwarm.ok() && fref.ok());
    ExpectSameFrequent(fwarm.value(), fref.value());
  }
  EXPECT_EQ(compared, 20u);
  if (obs::Enabled()) {
    // On continuous uniform data ties are measure-zero: the seeded
    // path must have actually served some of these probes.
    EXPECT_GT(obs::Cat().cache_warm_hits->Value(), warm_before);
  }
}

TEST(CacheWarmStartTest, QuantizedTiesFallBackToColdAndStayCorrect) {
  // Coordinates on a coarse grid make equal differences common; the
  // seeded path must refuse those (returning the cold answer) rather
  // than guess at the kernel's pop order.
  Dataset db = datagen::MakeUniform(600, 4, 31);
  Matrix quantized(db.size(), db.dims());
  for (size_t r = 0; r < db.size(); ++r) {
    const auto p = db.point(r);
    for (size_t c = 0; c < db.dims(); ++c) {
      quantized.at(r, c) = std::round(p[c] * 8.0) / 8.0;
    }
  }
  Dataset qdb(quantized);
  SimilarityEngine cached{Dataset(quantized)};
  SimilarityEngine cold{Dataset(quantized)};
  CacheConfig config;
  config.warm_radius = 0.3;
  cached.EnableCache(config);

  Rng rng(17);
  for (int round = 0; round < 15; ++round) {
    const auto p = qdb.point(rng.UniformInt(qdb.size()));
    std::vector<Value> q(p.begin(), p.end());
    ASSERT_TRUE(cached.KnMatch(q, 2, 4).ok());
    std::vector<Value> probe = q;
    probe[rng.UniformInt(probe.size())] += 0.125;  // stays on-grid
    const auto warm = cached.KnMatch(probe, 2, 4);
    const auto reference = cold.KnMatch(probe, 2, 4);
    ASSERT_TRUE(warm.ok() && reference.ok());
    ExpectSameMatches(warm.value().matches, reference.value().matches);
  }
}

// ---------------------------------------------------------------------------
// CacheSoakTest: interleaved updates and queries never serve stale.

TEST(CacheSoakTest, RandomInterleavedUpdatesNeverServeStaleAnswers) {
  SimilarityEngine cached(datagen::MakeUniform(300, 4, 55));
  SimilarityEngine mirror(datagen::MakeUniform(300, 4, 55));
  CacheConfig config;
  config.warm_radius = 0.04;
  cached.EnableCache(config);

  Rng rng(123);
  // A small query pool so repeats (and therefore hits) are common.
  std::vector<std::vector<Value>> pool;
  for (int i = 0; i < 8; ++i) {
    std::vector<Value> q(4);
    for (Value& v : q) v = rng.Uniform01();
    pool.push_back(std::move(q));
  }

  for (int step = 0; step < 60; ++step) {
    if (rng.Bernoulli(0.3)) {
      std::vector<Value> coords(4);
      for (Value& v : coords) v = rng.Uniform01();
      cached.InsertPoint(coords);
      mirror.InsertPoint(coords);
    }
    const auto& q = pool[rng.UniformInt(pool.size())];
    if (rng.Bernoulli(0.5)) {
      const auto a = cached.KnMatch(q, 2, 5);
      const auto b = mirror.KnMatch(q, 2, 5);
      ASSERT_TRUE(a.ok() && b.ok());
      ExpectSameMatches(a.value().matches, b.value().matches);
    } else {
      const auto a = cached.FrequentKnMatch(q, 2, 4, 5);
      const auto b = mirror.FrequentKnMatch(q, 2, 4, 5);
      ASSERT_TRUE(a.ok() && b.ok());
      ExpectSameFrequent(a.value(), b.value());
    }
  }
  // The soak must actually have exercised the cache.
  EXPECT_GT(cached.cache()->Stats().hits + cached.cache()->Stats().stores,
            0u);
}

// ---------------------------------------------------------------------------
// CacheConcurrencyTest: for the TSan gate.

TEST(CacheConcurrencyTest, ConcurrentLookupsStoresAndInvalidations) {
  QueryResultCache cache;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&cache, &stop, t] {
      Rng rng(1000 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::vector<Value> q{rng.Uniform01(), rng.Uniform01()};
        if (rng.Bernoulli(0.5)) {
          cache.StoreKnMatch(
              1, q, 1, 2, {},
              MakeResult(
                  {{static_cast<PointId>(rng.UniformInt(50)), 0.1},
                   {static_cast<PointId>(rng.UniformInt(50) + 50), 0.2}}));
        } else {
          (void)cache.LookupKnMatch(1, q, 1, 2, {});
        }
      }
    });
  }
  threads.emplace_back([&cache, &stop] {
    Rng rng(2000);
    while (!stop.load(std::memory_order_relaxed)) {
      cache.OnPointErased(rng.UniformInt(100));
      cache.OnPointInserted(
          rng.UniformInt(100) + 200,
          std::vector<Value>{rng.Uniform01(), rng.Uniform01()});
      (void)cache.Stats();
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true);
  for (std::thread& t : threads) t.join();
  // The structure must still be coherent after the hammer.
  cache.Clear();
  EXPECT_EQ(cache.Stats().entries, 0u);
}

TEST(CacheConcurrencyTest, ConcurrentEngineQueriesShareTheCache) {
  SimilarityEngine engine(datagen::MakeUniform(400, 4, 77));
  engine.EnableCache();
  std::vector<std::vector<Value>> pool;
  Rng rng(3);
  for (int i = 0; i < 6; ++i) {
    std::vector<Value> q(4);
    for (Value& v : q) v = rng.Uniform01();
    pool.push_back(std::move(q));
  }
  std::vector<std::thread> threads;
  std::atomic<bool> all_ok{true};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&engine, &pool, &all_ok, t] {
      for (int i = 0; i < 25; ++i) {
        const auto& q = pool[(t + i) % pool.size()];
        if (!engine.KnMatch(q, 2, 5).ok()) all_ok = false;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_TRUE(all_ok);
  EXPECT_GT(engine.cache()->Stats().hits, 0u);
}

}  // namespace
}  // namespace knmatch

#include "knmatch/core/nmatch_naive.h"

#include <gtest/gtest.h>

#include "knmatch/core/nmatch.h"
#include "knmatch/datagen/generators.h"
#include "paper_data.h"

namespace knmatch {
namespace {

using testing::Figure3Database;
using testing::Figure3Query;

TEST(KnMatchNaiveTest, ValidatesParameters) {
  Dataset db = Figure3Database();
  auto q = Figure3Query();
  EXPECT_FALSE(KnMatchNaive(db, q, 0, 1).ok());
  EXPECT_FALSE(KnMatchNaive(db, q, 4, 1).ok());
  EXPECT_FALSE(KnMatchNaive(db, q, 1, 0).ok());
  EXPECT_FALSE(KnMatchNaive(db, q, 1, 6).ok());
  std::vector<Value> wrong_dims = {1.0, 2.0};
  EXPECT_FALSE(KnMatchNaive(db, wrong_dims, 1, 1).ok());
}

TEST(KnMatchNaiveTest, ResultsAscendAndCarryExactDifferences) {
  Dataset db = Figure3Database();
  auto q = Figure3Query();
  auto r = KnMatchNaive(db, q, 2, 5);
  ASSERT_TRUE(r.ok());
  const auto& matches = r.value().matches;
  ASSERT_EQ(matches.size(), 5u);
  for (size_t i = 0; i + 1 < matches.size(); ++i) {
    EXPECT_LE(matches[i].distance, matches[i + 1].distance);
  }
  for (const Neighbor& nb : matches) {
    EXPECT_DOUBLE_EQ(nb.distance, NMatchDifference(db.point(nb.pid), q, 2));
  }
}

TEST(KnMatchNaiveTest, KEqualsCardinalityReturnsAll) {
  Dataset db = Figure3Database();
  auto q = Figure3Query();
  auto r = KnMatchNaive(db, q, 1, db.size());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().matches.size(), db.size());
}

TEST(KnMatchNaiveTest, CostIsFullScan) {
  Dataset db = Figure3Database();
  auto q = Figure3Query();
  auto r = KnMatchNaive(db, q, 1, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().attributes_retrieved, db.size() * db.dims());
}

TEST(KnMatchNaiveTest, NEqualsDimsIsChebyshevRanking) {
  // For n = d the n-match difference is the maximum per-dimension
  // difference, i.e., the Chebyshev distance.
  Dataset db = datagen::MakeUniform(200, 6, 21);
  std::vector<Value> q(6, 0.5);
  auto r = KnMatchNaive(db, q, 6, 5);
  ASSERT_TRUE(r.ok());
  for (const Neighbor& nb : r.value().matches) {
    Value cheb = 0;
    for (size_t i = 0; i < 6; ++i) {
      cheb = std::max(cheb, std::abs(db.at(nb.pid, i) - q[i]));
    }
    EXPECT_DOUBLE_EQ(nb.distance, cheb);
  }
}

TEST(FrequentKnMatchNaiveTest, PerNSetsHaveKEntriesEach) {
  Dataset db = Figure3Database();
  auto q = Figure3Query();
  auto r = FrequentKnMatchNaive(db, q, 1, 3, 2);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().per_n_sets.size(), 3u);
  for (const auto& set : r.value().per_n_sets) {
    EXPECT_EQ(set.size(), 2u);
  }
}

TEST(FrequentKnMatchNaiveTest, FrequenciesAreDescendingAndBounded) {
  Dataset db = datagen::MakeUniform(100, 8, 5);
  std::vector<Value> q(8, 0.3);
  auto r = FrequentKnMatchNaive(db, q, 1, 8, 10);
  ASSERT_TRUE(r.ok());
  const auto& freqs = r.value().frequencies;
  ASSERT_EQ(freqs.size(), 10u);
  for (size_t i = 0; i + 1 < freqs.size(); ++i) {
    EXPECT_GE(freqs[i], freqs[i + 1]);
  }
  for (const uint32_t f : freqs) {
    EXPECT_GE(f, 1u);
    EXPECT_LE(f, 8u);
  }
}

TEST(FrequentKnMatchNaiveTest, SingleNRangeMatchesPlainKnMatch) {
  Dataset db = datagen::MakeUniform(150, 5, 6);
  std::vector<Value> q(5, 0.7);
  auto frequent = FrequentKnMatchNaive(db, q, 3, 3, 7);
  auto plain = KnMatchNaive(db, q, 3, 7);
  ASSERT_TRUE(frequent.ok());
  ASSERT_TRUE(plain.ok());
  ASSERT_EQ(frequent.value().per_n_sets.size(), 1u);
  EXPECT_EQ(frequent.value().per_n_sets[0], plain.value().matches);
}

TEST(FrequentKnMatchNaiveTest, QueryPointInDatabaseDominates) {
  // A point identical to the query appears in every answer set.
  Dataset db = datagen::MakeUniform(100, 6, 8);
  std::vector<Value> q(db.point(42).begin(), db.point(42).end());
  auto r = FrequentKnMatchNaive(db, q, 1, 6, 5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().matches[0].pid, 42u);
  EXPECT_EQ(r.value().frequencies[0], 6u);
}

TEST(RankByFrequencyTest, TieBrokenByBestDifferenceThenPid) {
  FrequentKnMatchResult result;
  // pid 5 appears twice (best diff 0.2), pid 9 twice (best diff 0.1),
  // pid 1 once.
  result.per_n_sets = {
      {{5, 0.2}, {9, 0.3}},
      {{9, 0.1}, {5, 0.4}},
      {{1, 0.05}},
  };
  RankByFrequency(3, &result);
  ASSERT_EQ(result.matches.size(), 3u);
  EXPECT_EQ(result.matches[0].pid, 9u);  // freq 2, best 0.1
  EXPECT_EQ(result.matches[1].pid, 5u);  // freq 2, best 0.2
  EXPECT_EQ(result.matches[2].pid, 1u);  // freq 1
  EXPECT_EQ(result.frequencies, (std::vector<uint32_t>{2, 2, 1}));
}

TEST(RankByFrequencyTest, TruncatesToK) {
  FrequentKnMatchResult result;
  result.per_n_sets = {{{1, 0.1}, {2, 0.2}, {3, 0.3}, {4, 0.4}}};
  RankByFrequency(2, &result);
  EXPECT_EQ(result.matches.size(), 2u);
  EXPECT_EQ(result.matches[0].pid, 1u);
  EXPECT_EQ(result.matches[1].pid, 2u);
}

}  // namespace
}  // namespace knmatch

#include "knmatch/storage/wal.h"

#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "knmatch/storage/free_space.h"
#include "status_matchers.h"

namespace knmatch {
namespace {

std::vector<std::byte> Bytes(std::string_view s) {
  std::vector<std::byte> out(s.size());
  for (size_t i = 0; i < s.size(); ++i) out[i] = std::byte(s[i]);
  return out;
}

TEST(FreeSpaceTest, AcquireReturnsSmallestFirst) {
  FreeSpaceManager fsm;
  fsm.Free(7);
  fsm.Free(2);
  fsm.Free(11);
  EXPECT_EQ(fsm.free_count(), 3u);
  EXPECT_EQ(fsm.Acquire().value(), 2u);
  EXPECT_EQ(fsm.Acquire().value(), 7u);
  EXPECT_EQ(fsm.Acquire().value(), 11u);
  EXPECT_FALSE(fsm.Acquire().has_value());
}

TEST(FreeSpaceTest, DoubleFreeIsIdempotent) {
  FreeSpaceManager fsm;
  fsm.Free(3);
  fsm.Free(3);
  EXPECT_EQ(fsm.free_count(), 1u);
  EXPECT_TRUE(fsm.is_free(3));
  EXPECT_FALSE(fsm.is_free(4));
}

TEST(FreeSpaceTest, RestoreRoundTripsSortedList) {
  FreeSpaceManager fsm;
  fsm.Free(9);
  fsm.Free(1);
  fsm.Free(5);
  const std::vector<uint64_t> list = fsm.ToSortedList();
  EXPECT_EQ(list, (std::vector<uint64_t>{1, 5, 9}));

  FreeSpaceManager other;
  other.Restore(list);
  EXPECT_EQ(other.ToSortedList(), list);
  EXPECT_EQ(other.Acquire().value(), 1u);
}

TEST(WalTest, EmptyLogRecoversNothing) {
  WriteAheadLog wal;
  const auto rr = wal.Recover();
  EXPECT_TRUE(rr.committed.empty());
  EXPECT_EQ(rr.committed_txns, 0u);
  EXPECT_EQ(rr.discarded_txns, 0u);
  EXPECT_FALSE(rr.torn_tail);
}

TEST(WalTest, CommittedTransactionRecoversInLsnOrder) {
  WriteAheadLog wal;
  const uint64_t txn = wal.Begin();
  wal.AppendPageImage(txn, 42, Bytes("page-image"));
  wal.AppendRow(WriteAheadLog::RecordType::kRowInsert, txn, Bytes("row"));
  const auto ticket = wal.AppendCommit(txn);
  EXPECT_TRUE(ticket.group_full);  // window defaults to 1
  wal.Sync();

  const auto rr = wal.Recover();
  EXPECT_EQ(rr.committed_txns, 1u);
  EXPECT_EQ(rr.discarded_txns, 0u);
  ASSERT_EQ(rr.committed.size(), 2u);
  EXPECT_EQ(rr.committed[0].type, WriteAheadLog::RecordType::kPageImage);
  EXPECT_EQ(rr.committed[0].page, 42u);
  EXPECT_EQ(rr.committed[0].payload, Bytes("page-image"));
  EXPECT_EQ(rr.committed[1].type, WriteAheadLog::RecordType::kRowInsert);
  EXPECT_LT(rr.committed[0].lsn, rr.committed[1].lsn);
}

TEST(WalTest, PowerLossDropsTheVolatileTail) {
  WriteAheadLog wal;
  const uint64_t t1 = wal.Begin();
  wal.AppendPageImage(t1, 1, Bytes("a"));
  wal.AppendCommit(t1);
  wal.Sync();

  // The second transaction's body is synced but its commit is not:
  // recovery must discard it.
  const uint64_t t2 = wal.Begin();
  wal.AppendPageImage(t2, 2, Bytes("b"));
  wal.Sync();
  wal.AppendCommit(t2);
  wal.LoseVolatileTail();

  const auto rr = wal.Recover();
  EXPECT_EQ(rr.committed_txns, 1u);
  EXPECT_EQ(rr.discarded_txns, 1u);
  ASSERT_EQ(rr.committed.size(), 1u);
  EXPECT_EQ(rr.committed[0].page, 1u);
}

TEST(WalTest, MidFsyncTearsTheLastRecord) {
  WriteAheadLog wal;
  const uint64_t txn = wal.Begin();
  wal.AppendPageImage(txn, 5, Bytes("image"));
  wal.AppendCommit(txn);
  const auto before = wal.stats();
  // All but the final CRC word reaches the platter.
  wal.SyncPartial(before.log_bytes - before.durable_bytes -
                  sizeof(uint32_t));
  wal.LoseVolatileTail();

  const auto rr = wal.Recover();
  EXPECT_TRUE(rr.torn_tail);
  EXPECT_EQ(rr.committed_txns, 0u);
  EXPECT_EQ(rr.discarded_txns, 1u);
  EXPECT_TRUE(rr.committed.empty());
}

TEST(WalTest, GroupCommitWindowFillsOnTheNthCommit) {
  WriteAheadLog wal(WriteAheadLog::Config{/*group_commit_window=*/3});
  for (int i = 0; i < 2; ++i) {
    const uint64_t txn = wal.Begin();
    EXPECT_FALSE(wal.AppendCommit(txn).group_full);
  }
  EXPECT_EQ(wal.pending_commits(), 2u);
  const uint64_t txn = wal.Begin();
  EXPECT_TRUE(wal.AppendCommit(txn).group_full);
  wal.Sync();
  EXPECT_EQ(wal.pending_commits(), 0u);
  EXPECT_EQ(wal.Recover().committed_txns, 3u);
  EXPECT_EQ(wal.stats().fsyncs, 1u);
}

TEST(WalTest, TruncationDropsRecordsBeforeTheCheckpoint) {
  WriteAheadLog wal;
  const uint64_t t1 = wal.Begin();
  wal.AppendPageImage(t1, 1, Bytes("old"));
  wal.AppendCommit(t1);
  wal.AppendCheckpoint();
  wal.Sync();
  ASSERT_TRUE(StatusIs(wal.TruncateToLastCheckpoint(), StatusCode::kOk));
  EXPECT_EQ(wal.Recover().committed_txns, 0u);

  const uint64_t t2 = wal.Begin();
  wal.AppendPageImage(t2, 2, Bytes("new"));
  wal.AppendCommit(t2);
  wal.Sync();
  const auto rr = wal.Recover();
  EXPECT_EQ(rr.committed_txns, 1u);
  ASSERT_EQ(rr.committed.size(), 1u);
  EXPECT_EQ(rr.committed[0].page, 2u);
}

TEST(WalTest, TruncationWithoutDurableCheckpointIsRefused) {
  WriteAheadLog wal;
  EXPECT_TRUE(
      StatusIs(wal.TruncateToLastCheckpoint(), StatusCode::kNotFound));
  wal.AppendCheckpoint();  // appended but not synced
  EXPECT_TRUE(
      StatusIs(wal.TruncateToLastCheckpoint(), StatusCode::kNotFound));
}

TEST(WalTest, ResetRetiresTheLogButKeepsLifetimeCounters) {
  WriteAheadLog wal;
  const uint64_t txn = wal.Begin();
  wal.AppendPageImage(txn, 3, Bytes("x"));
  wal.AppendCommit(txn);
  wal.Sync();
  const auto before = wal.stats();
  EXPECT_GT(before.log_bytes, 0u);

  wal.Reset();
  const auto after = wal.stats();
  EXPECT_EQ(after.log_bytes, 0u);
  EXPECT_EQ(after.durable_bytes, 0u);
  EXPECT_EQ(after.pending_commits, 0u);
  EXPECT_EQ(after.next_lsn, 1u);
  EXPECT_EQ(after.appends, before.appends);
  EXPECT_EQ(after.fsyncs, before.fsyncs);
  EXPECT_TRUE(wal.Recover().committed.empty());
}

}  // namespace
}  // namespace knmatch

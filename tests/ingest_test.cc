#include "knmatch/storage/ingest.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "knmatch/cache/query_cache.h"
#include "knmatch/common/random.h"
#include "knmatch/datagen/generators.h"
#include "knmatch/diskalgo/btree_ad.h"
#include "knmatch/engine.h"
#include "knmatch/obs/catalog.h"
#include "knmatch/storage/fault_injector.h"
#include "status_matchers.h"

namespace knmatch {
namespace {

using CrashPoint = FaultInjector::CrashPoint;

/// A quiesced reference: one bulk-loaded tree per dimension over an
/// explicit row set, frozen into SnapshotColumns. Live answers must be
/// bit-identical to this.
struct Mirror {
  DiskSimulator disk;
  std::vector<std::unique_ptr<BPlusTree>> trees;
  size_t pid_bound = 0;

  explicit Mirror(
      const std::unordered_map<PointId, std::vector<Value>>& rows,
      size_t dims) {
    std::vector<ColumnEntry> column;
    column.reserve(rows.size());
    for (size_t dim = 0; dim < dims; ++dim) {
      column.clear();
      for (const auto& [pid, coords] : rows) {
        column.push_back(ColumnEntry{coords[dim], pid});
        pid_bound = std::max<size_t>(pid_bound, pid + 1);
      }
      std::sort(column.begin(), column.end(),
                [](const ColumnEntry& a, const ColumnEntry& b) {
                  if (a.value != b.value) return a.value < b.value;
                  return a.pid < b.pid;
                });
      auto tree = std::make_unique<BPlusTree>(&disk);
      tree->BulkLoad(column);
      trees.push_back(std::move(tree));
    }
  }

  SnapshotColumns Freeze() {
    std::vector<BPlusTree::Snapshot> snaps;
    snaps.reserve(trees.size());
    for (auto& tree : trees) snaps.push_back(tree->CreateSnapshot());
    return SnapshotColumns(std::move(snaps), pid_bound);
  }
};

std::unordered_map<PointId, std::vector<Value>> RowsOf(const Dataset& db) {
  std::unordered_map<PointId, std::vector<Value>> rows;
  rows.reserve(db.size());
  for (size_t pid = 0; pid < db.size(); ++pid) {
    const auto p = db.point(static_cast<PointId>(pid));
    rows.emplace(static_cast<PointId>(pid),
                 std::vector<Value>(p.begin(), p.end()));
  }
  return rows;
}

std::vector<std::vector<Value>> TestQueries(size_t dims, size_t count,
                                            uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<Value>> queries(count);
  for (auto& q : queries) {
    q.resize(dims);
    for (auto& v : q) v = rng.Uniform01();
  }
  return queries;
}

SnapshotColumns FreezeLive(const LiveColumnIndex& live) {
  const auto snap = live.PinSnapshot();
  return SnapshotColumns(snap->trees, snap->pid_bound);
}

/// Bit-identical answer check (pids, differences, attribute counts) for
/// both query types over every test query.
void ExpectSameAnswers(const SnapshotColumns& got,
                       const SnapshotColumns& want,
                       std::span<const std::vector<Value>> queries,
                       size_t k) {
  ASSERT_EQ(got.column_size(), want.column_size());
  const size_t dims = got.dims();
  const size_t n = dims >= 2 ? dims - 1 : 1;  // n <= d required
  for (const auto& q : queries) {
    auto a = SnapshotAdSearcher(got).KnMatch(q, n, k);
    auto b = SnapshotAdSearcher(want).KnMatch(q, n, k);
    ASSERT_TRUE(StatusIs(a, StatusCode::kOk));
    ASSERT_TRUE(StatusIs(b, StatusCode::kOk));
    EXPECT_EQ(a.value().matches, b.value().matches);
    EXPECT_EQ(a.value().attributes_retrieved,
              b.value().attributes_retrieved);

    auto fa = SnapshotAdSearcher(got).FrequentKnMatch(q, 1, dims, k);
    auto fb = SnapshotAdSearcher(want).FrequentKnMatch(q, 1, dims, k);
    ASSERT_TRUE(StatusIs(fa, StatusCode::kOk));
    ASSERT_TRUE(StatusIs(fb, StatusCode::kOk));
    EXPECT_EQ(fa.value().matches, fb.value().matches);
    EXPECT_EQ(fa.value().frequencies, fb.value().frequencies);
  }
}

TEST(LiveColumnIndexTest, InsertEraseAndSnapshotMatchQuiescedMirror) {
  const Dataset base = datagen::MakeUniform(300, 3, 21);
  DiskSimulator disk;
  LiveColumnIndex live(base, &disk);
  EXPECT_EQ(live.live_size(), 300u);
  EXPECT_EQ(live.epoch(), 1u);

  auto rows = RowsOf(base);
  Rng rng(77);
  for (PointId pid = 300; pid < 320; ++pid) {
    std::vector<Value> coords(3);
    for (auto& v : coords) v = rng.Uniform01();
    ASSERT_TRUE(StatusIs(live.Insert(pid, coords), StatusCode::kOk));
    rows[pid] = coords;
  }
  for (PointId pid = 0; pid < 30; pid += 3) {
    auto erased = live.Erase(pid);
    ASSERT_TRUE(StatusIs(erased, StatusCode::kOk));
    EXPECT_TRUE(erased.value());
    rows.erase(pid);
  }
  EXPECT_EQ(live.live_size(), rows.size());
  EXPECT_EQ(live.epoch(), 31u);  // 30 committed ops, one epoch each

  Mirror mirror(rows, 3);
  const auto queries = TestQueries(3, 6, 5);
  ExpectSameAnswers(FreezeLive(live), mirror.Freeze(), queries, 6);

  // Not-live points are refused / reported absent.
  EXPECT_FALSE(live.Erase(0).value());
  EXPECT_TRUE(StatusIs(live.Insert(5, std::vector<Value>(3, 0.5)),
                       StatusCode::kInvalidArgument));
  EXPECT_TRUE(StatusIs(live.CoordsOf(0), StatusCode::kNotFound));
}

TEST(LiveColumnIndexTest, PinnedSnapshotIsImmuneToLaterWrites) {
  const Dataset base = datagen::MakeUniform(200, 2, 22);
  DiskSimulator disk;
  LiveColumnIndex live(base, &disk);
  const auto queries = TestQueries(2, 4, 9);

  const auto pinned = live.PinSnapshot();
  SnapshotColumns before(pinned->trees, pinned->pid_bound);
  std::vector<std::vector<Neighbor>> answers;
  for (const auto& q : queries) {
    answers.push_back(
        SnapshotAdSearcher(before).KnMatch(q, 2, 5).value().matches);
  }

  Rng rng(13);
  for (PointId pid = 200; pid < 260; ++pid) {
    std::vector<Value> coords{rng.Uniform01(), rng.Uniform01()};
    ASSERT_TRUE(StatusIs(live.Insert(pid, coords), StatusCode::kOk));
  }
  EXPECT_EQ(pinned->epoch, 1u);
  EXPECT_EQ(live.epoch(), 61u);

  SnapshotColumns after(pinned->trees, pinned->pid_bound);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(
        SnapshotAdSearcher(after).KnMatch(queries[i], 2, 5).value().matches,
        answers[i]);
  }
}

TEST(LiveColumnIndexTest, GroupCommitPublishesOnlyWhenTheWindowFills) {
  const Dataset base = datagen::MakeUniform(100, 2, 23);
  DiskSimulator disk;
  LiveColumnIndex live(base, &disk,
                       LiveColumnIndex::Config{/*group_commit_window=*/3});
  const uint64_t epoch0 = live.epoch();

  Rng rng(31);
  for (PointId pid = 100; pid < 102; ++pid) {
    std::vector<Value> coords{rng.Uniform01(), rng.Uniform01()};
    ASSERT_TRUE(StatusIs(live.Insert(pid, coords), StatusCode::kOk));
  }
  // Applied but unpublished: readers still see the old epoch and size.
  EXPECT_EQ(live.pending_ops(), 2u);
  EXPECT_EQ(live.epoch(), epoch0);
  EXPECT_EQ(live.live_size(), 100u);
  EXPECT_EQ(live.committed_ops().size(), 0u);

  std::vector<Value> coords{rng.Uniform01(), rng.Uniform01()};
  ASSERT_TRUE(StatusIs(live.Insert(102, coords), StatusCode::kOk));
  EXPECT_EQ(live.pending_ops(), 0u);
  EXPECT_EQ(live.epoch(), epoch0 + 1);
  EXPECT_EQ(live.live_size(), 103u);
  EXPECT_EQ(live.committed_ops().size(), 3u);

  // Flush publishes a partial window.
  ASSERT_TRUE(StatusIs(live.Insert(103, coords), StatusCode::kOk));
  EXPECT_EQ(live.pending_ops(), 1u);
  ASSERT_TRUE(StatusIs(live.Flush(), StatusCode::kOk));
  EXPECT_EQ(live.pending_ops(), 0u);
  EXPECT_EQ(live.live_size(), 104u);
}

/// Captures MutationListener callbacks (satellite regression: under the
/// live index they must arrive only after commit durability).
struct RecordingListener : BPlusTree::MutationListener {
  std::vector<std::pair<bool, ColumnEntry>> events;
  void OnInsert(const ColumnEntry& entry) override {
    events.emplace_back(true, entry);
  }
  void OnErase(const ColumnEntry& entry) override {
    events.emplace_back(false, entry);
  }
};

TEST(LiveColumnIndexTest, ListenersFireOnlyAfterCommitDurability) {
  const Dataset base = datagen::MakeUniform(50, 2, 24);
  DiskSimulator disk;
  LiveColumnIndex live(base, &disk,
                       LiveColumnIndex::Config{/*group_commit_window=*/2});
  RecordingListener listener;
  live.tree(0).set_mutation_listener(&listener);

  ASSERT_TRUE(
      StatusIs(live.Insert(50, std::vector<Value>{0.1, 0.2}),
               StatusCode::kOk));
  EXPECT_TRUE(listener.events.empty());  // applied, not yet durable

  ASSERT_TRUE(
      StatusIs(live.Insert(51, std::vector<Value>{0.3, 0.4}),
               StatusCode::kOk));
  ASSERT_EQ(listener.events.size(), 2u);  // window synced: both fire
  EXPECT_TRUE(listener.events[0].first);
  EXPECT_EQ(listener.events[0].second.pid, 50u);
  EXPECT_EQ(listener.events[1].second.pid, 51u);

  auto erased = live.Erase(50);
  ASSERT_TRUE(StatusIs(erased, StatusCode::kOk));
  EXPECT_EQ(listener.events.size(), 2u);  // pending again
  ASSERT_TRUE(StatusIs(live.Flush(), StatusCode::kOk));
  ASSERT_EQ(listener.events.size(), 3u);
  EXPECT_FALSE(listener.events[2].first);
  EXPECT_EQ(listener.events[2].second.pid, 50u);
}

TEST(LiveColumnIndexTest, ListenersNeverFireForACrashDiscardedTxn) {
  const Dataset base = datagen::MakeUniform(50, 2, 25);
  DiskSimulator disk;
  LiveColumnIndex live(base, &disk,
                       LiveColumnIndex::Config{/*group_commit_window=*/4});
  FaultInjector injector;
  live.set_fault_injector(&injector);
  RecordingListener listener;
  live.tree(0).set_mutation_listener(&listener);

  ASSERT_TRUE(
      StatusIs(live.Insert(50, std::vector<Value>{0.1, 0.2}),
               StatusCode::kOk));
  injector.ScheduleCrash(CrashPoint::kMidFsync);
  EXPECT_TRUE(StatusIs(live.Flush(), StatusCode::kUnavailable));
  ASSERT_TRUE(live.crashed());

  ASSERT_TRUE(StatusIs(live.Recover(), StatusCode::kOk));
  EXPECT_TRUE(listener.events.empty());  // the txn never became durable
  EXPECT_EQ(live.committed_ops().size(), 0u);
  EXPECT_EQ(live.live_size(), 50u);

  // The listener survives recovery: the retried insert notifies.
  ASSERT_TRUE(
      StatusIs(live.Insert(50, std::vector<Value>{0.1, 0.2}),
               StatusCode::kOk));
  ASSERT_TRUE(StatusIs(live.Flush(), StatusCode::kOk));
  ASSERT_EQ(listener.events.size(), 1u);
  EXPECT_EQ(listener.events[0].second.pid, 50u);
}

// ---------------------------------------------------------------------
// Crash-recovery matrix: kill the writer at every crash point and prove
// recovery lands bit-identically on the pre- or post-transaction state.
// ---------------------------------------------------------------------

constexpr size_t kScenarioInserts = 10;
constexpr size_t kScenarioOps = 15;

std::vector<Value> OpCoords(size_t k, size_t dims) {
  Rng rng(1000 + k);
  std::vector<Value> coords(dims);
  for (auto& v : coords) v = rng.Uniform01();
  return coords;
}

/// Applies scripted op `k` to `rows` (the quiesced reference) — must
/// mirror ApplyOp exactly.
void ApplyOpToRows(size_t k,
                   std::unordered_map<PointId, std::vector<Value>>* rows) {
  if (k < kScenarioInserts) {
    (*rows)[static_cast<PointId>(400 + k)] = OpCoords(k, 2);
  } else {
    rows->erase(static_cast<PointId>((k - kScenarioInserts) * 3));
  }
}

Status ApplyOp(LiveColumnIndex& live, size_t k) {
  if (k < kScenarioInserts) {
    return live.Insert(static_cast<PointId>(400 + k), OpCoords(k, 2));
  }
  auto erased = live.Erase(static_cast<PointId>((k - kScenarioInserts) * 3));
  if (!erased.ok()) return erased.status();
  EXPECT_TRUE(erased.value());
  return Status::OK();
}

/// Runs the scripted scenario with a crash scheduled at (point, nth),
/// recovers, and differentially checks the recovered state against a
/// quiesced mirror of the expected committed prefix.
///
/// `survives`: whether the in-flight transaction must be present after
/// recovery (kAfterFsync: commit durable, publication lost). For the
/// checkpoint-only points the crash fires after all ops committed.
void RunCrashScenario(CrashPoint point, uint32_t nth, bool survives,
                      bool fires_in_checkpoint) {
  SCOPED_TRACE(testing::Message()
               << "point=" << static_cast<int>(point) << " nth=" << nth);
  const Dataset base = datagen::MakeUniform(400, 2, 11);
  DiskSimulator disk;
  LiveColumnIndex live(base, &disk);
  FaultInjector injector;
  live.set_fault_injector(&injector);
  injector.ScheduleCrash(point, nth);

  size_t applied = 0;
  for (size_t k = 0; k < kScenarioOps; ++k) {
    Status s = ApplyOp(live, k);
    if (!s.ok()) {
      ASSERT_TRUE(StatusIs(s, StatusCode::kUnavailable));
      ASSERT_TRUE(live.crashed());
      break;
    }
    ++applied;
  }
  if (fires_in_checkpoint) {
    ASSERT_EQ(applied, kScenarioOps);
    ASSERT_FALSE(live.crashed());
    EXPECT_TRUE(StatusIs(live.Checkpoint(), StatusCode::kUnavailable));
    ASSERT_TRUE(live.crashed());
  } else {
    ASSERT_LT(applied, kScenarioOps) << "crash never fired";
  }
  EXPECT_EQ(injector.crashes_delivered(), 1u);

  // Mutations are refused until recovery.
  EXPECT_TRUE(StatusIs(live.Insert(900, std::vector<Value>(2, 0.5)),
                       StatusCode::kFailedPrecondition));

  ASSERT_TRUE(StatusIs(live.Recover(), StatusCode::kOk));
  EXPECT_FALSE(live.crashed());

  const size_t expected = fires_in_checkpoint ? kScenarioOps
                          : survives         ? applied + 1
                                             : applied;
  EXPECT_EQ(live.committed_ops().size(), expected);

  auto rows = RowsOf(base);
  for (size_t k = 0; k < expected; ++k) ApplyOpToRows(k, &rows);
  EXPECT_EQ(live.live_size(), rows.size());
  for (size_t dim = 0; dim < 2; ++dim) {
    EXPECT_TRUE(StatusIs(live.tree(dim).CheckInvariants(), StatusCode::kOk));
  }
  const auto queries = TestQueries(2, 5, 3);
  {
    Mirror mirror(rows, 2);
    ExpectSameAnswers(FreezeLive(live), mirror.Freeze(), queries, 6);
  }

  // The recovered index is fully operational: more mutations, another
  // checkpoint, and the differential still holds.
  Rng rng(500);
  for (PointId pid = 600; pid < 603; ++pid) {
    std::vector<Value> coords{rng.Uniform01(), rng.Uniform01()};
    ASSERT_TRUE(StatusIs(live.Insert(pid, coords), StatusCode::kOk));
    rows[pid] = coords;
  }
  auto erased = live.Erase(601);
  ASSERT_TRUE(StatusIs(erased, StatusCode::kOk));
  rows.erase(601);
  ASSERT_TRUE(StatusIs(live.Checkpoint(), StatusCode::kOk));
  EXPECT_EQ(live.live_size(), rows.size());
  {
    Mirror mirror(rows, 2);
    ExpectSameAnswers(FreezeLive(live), mirror.Freeze(), queries, 6);
  }
}

TEST(CrashMatrixTest, AfterWalAppendLosesTheInFlightTxn) {
  RunCrashScenario(CrashPoint::kAfterWalAppend, 1, false, false);
  RunCrashScenario(CrashPoint::kAfterWalAppend, 12, false, false);
}

TEST(CrashMatrixTest, AfterCommitAppendLosesTheInFlightTxn) {
  RunCrashScenario(CrashPoint::kAfterCommitAppend, 1, false, false);
  RunCrashScenario(CrashPoint::kAfterCommitAppend, 12, false, false);
}

TEST(CrashMatrixTest, MidFsyncTearsAndDiscardsTheInFlightTxn) {
  RunCrashScenario(CrashPoint::kMidFsync, 1, false, false);
  RunCrashScenario(CrashPoint::kMidFsync, 12, false, false);
}

TEST(CrashMatrixTest, AfterFsyncKeepsTheDurableUnpublishedTxn) {
  RunCrashScenario(CrashPoint::kAfterFsync, 1, true, false);
  RunCrashScenario(CrashPoint::kAfterFsync, 12, true, false);
}

TEST(CrashMatrixTest, MidPageFlushTearsAPageTheWalRestores) {
  RunCrashScenario(CrashPoint::kMidPageFlush, 1, false, true);
  RunCrashScenario(CrashPoint::kMidPageFlush, 3, false, true);
}

TEST(CrashMatrixTest, AfterPageFlushLosesNothing) {
  RunCrashScenario(CrashPoint::kAfterPageFlush, 1, false, true);
  RunCrashScenario(CrashPoint::kAfterPageFlush, 3, false, true);
}

TEST(CrashMatrixTest, MidCheckpointFsyncKeepsThePriorCheckpointUsable) {
  RunCrashScenario(CrashPoint::kMidCheckpoint, 1, false, true);
}

TEST(CrashMatrixTest, HealthyRecoveryDrillIsLossless) {
  const Dataset base = datagen::MakeUniform(400, 2, 11);
  DiskSimulator disk;
  LiveColumnIndex live(base, &disk);
  auto rows = RowsOf(base);
  for (size_t k = 0; k < kScenarioOps; ++k) {
    ASSERT_TRUE(StatusIs(ApplyOp(live, k), StatusCode::kOk));
    ApplyOpToRows(k, &rows);
  }
  ASSERT_TRUE(StatusIs(live.Recover(), StatusCode::kOk));
  EXPECT_EQ(live.committed_ops().size(), kScenarioOps);
  EXPECT_EQ(live.live_size(), rows.size());
  Mirror mirror(rows, 2);
  ExpectSameAnswers(FreezeLive(live), mirror.Freeze(),
                    TestQueries(2, 5, 3), 6);
}

TEST(CrashMatrixTest, RecoversAcrossReclaimedNodeSlots) {
  // Mass erases reclaim whole leaves (and their parents); a crash in
  // the next transaction must recover across the freed slots.
  const Dataset base = datagen::MakeUniform(1500, 2, 41);
  DiskSimulator disk;
  LiveColumnIndex live(base, &disk);
  auto rows = RowsOf(base);
  // Erase in ascending dimension-0 order so whole leaves of tree 0
  // empty out and get reclaimed.
  std::vector<PointId> by_value(1500);
  for (PointId pid = 0; pid < 1500; ++pid) by_value[pid] = pid;
  std::sort(by_value.begin(), by_value.end(),
            [&base](PointId a, PointId b) {
              return base.at(a, 0) < base.at(b, 0);
            });
  for (size_t i = 0; i < 1200; ++i) {
    auto erased = live.Erase(by_value[i]);
    ASSERT_TRUE(StatusIs(erased, StatusCode::kOk));
    ASSERT_TRUE(erased.value());
    rows.erase(by_value[i]);
  }
  EXPECT_GT(live.free_slots(), 0u);

  FaultInjector injector;
  live.set_fault_injector(&injector);
  injector.ScheduleCrash(CrashPoint::kAfterCommitAppend);
  EXPECT_TRUE(StatusIs(live.Insert(2000, std::vector<Value>{0.5, 0.5}),
                       StatusCode::kUnavailable));
  ASSERT_TRUE(StatusIs(live.Recover(), StatusCode::kOk));

  EXPECT_EQ(live.live_size(), rows.size());
  for (size_t dim = 0; dim < 2; ++dim) {
    EXPECT_TRUE(StatusIs(live.tree(dim).CheckInvariants(), StatusCode::kOk));
  }
  Mirror mirror(rows, 2);
  ExpectSameAnswers(FreezeLive(live), mirror.Freeze(),
                    TestQueries(2, 5, 8), 6);

  // Freed slots are reused, not leaked: refilling does not grow the
  // node count past what the full tree ever needed.
  const size_t nodes_before = live.tree(0).num_nodes();
  Rng rng(43);
  for (PointId pid = 2000; pid < 2300; ++pid) {
    std::vector<Value> coords{rng.Uniform01(), rng.Uniform01()};
    ASSERT_TRUE(StatusIs(live.Insert(pid, coords), StatusCode::kOk));
  }
  EXPECT_EQ(live.tree(0).num_nodes(), nodes_before);
}

TEST(CrashMatrixTest, SurvivesBackToBackCrashes) {
  const Dataset base = datagen::MakeUniform(200, 2, 51);
  DiskSimulator disk;
  LiveColumnIndex live(base, &disk);
  FaultInjector injector;
  live.set_fault_injector(&injector);
  auto rows = RowsOf(base);

  injector.ScheduleCrash(CrashPoint::kAfterWalAppend);
  EXPECT_TRUE(StatusIs(live.Insert(200, std::vector<Value>{0.1, 0.9}),
                       StatusCode::kUnavailable));
  ASSERT_TRUE(StatusIs(live.Recover(), StatusCode::kOk));

  ASSERT_TRUE(StatusIs(live.Insert(200, std::vector<Value>{0.1, 0.9}),
                       StatusCode::kOk));
  rows[200] = {0.1, 0.9};

  injector.ScheduleCrash(CrashPoint::kMidPageFlush, 2);
  EXPECT_TRUE(StatusIs(live.Checkpoint(), StatusCode::kUnavailable));
  ASSERT_TRUE(StatusIs(live.Recover(), StatusCode::kOk));

  EXPECT_EQ(live.live_size(), rows.size());
  Mirror mirror(rows, 2);
  ExpectSameAnswers(FreezeLive(live), mirror.Freeze(),
                    TestQueries(2, 4, 6), 5);
}

// ---------------------------------------------------------------------
// Observability: the catalog's WAL/ingest metrics must equal the
// engine-side stats they mirror.
// ---------------------------------------------------------------------

TEST(IngestObsTest, CatalogMetricsMatchWalStats) {
  const uint64_t appends0 = obs::Cat().wal_appends->Value();
  const uint64_t commits0 = obs::Cat().wal_commits->Value();
  const uint64_t fsyncs0 = obs::Cat().wal_fsyncs->Value();
  const uint64_t checkpoints0 = obs::Cat().wal_checkpoints->Value();
  const uint64_t txns0 = obs::Cat().ingest_txns->Value();

  const Dataset base = datagen::MakeUniform(100, 2, 61);
  DiskSimulator disk;
  LiveColumnIndex live(base, &disk);
  Rng rng(62);
  for (PointId pid = 100; pid < 120; ++pid) {
    std::vector<Value> coords{rng.Uniform01(), rng.Uniform01()};
    ASSERT_TRUE(StatusIs(live.Insert(pid, coords), StatusCode::kOk));
  }
  ASSERT_TRUE(StatusIs(live.Checkpoint(), StatusCode::kOk));

  const WriteAheadLog::Stats st = live.wal().stats();
  EXPECT_EQ(obs::Cat().wal_appends->Value() - appends0, st.appends);
  EXPECT_EQ(obs::Cat().wal_commits->Value() - commits0, st.commits);
  EXPECT_EQ(obs::Cat().wal_fsyncs->Value() - fsyncs0, st.fsyncs);
  EXPECT_EQ(obs::Cat().wal_checkpoints->Value() - checkpoints0,
            st.checkpoints);
  EXPECT_EQ(obs::Cat().ingest_txns->Value() - txns0, 20u);
  EXPECT_EQ(obs::Cat().snapshot_epoch->Value(),
            static_cast<int64_t>(live.epoch()));
  EXPECT_EQ(obs::Cat().ingest_free_slots->Value(),
            static_cast<int64_t>(live.free_slots()));
}

TEST(IngestObsTest, RecoveryCountersTrackReplayAndDiscard) {
  const uint64_t recoveries0 = obs::Cat().recoveries->Value();
  const uint64_t discarded0 = obs::Cat().recovery_discarded_txns->Value();

  const Dataset base = datagen::MakeUniform(100, 2, 63);
  DiskSimulator disk;
  LiveColumnIndex live(base, &disk);
  FaultInjector injector;
  live.set_fault_injector(&injector);
  injector.ScheduleCrash(CrashPoint::kMidFsync);
  EXPECT_TRUE(StatusIs(live.Insert(100, std::vector<Value>{0.2, 0.8}),
                       StatusCode::kUnavailable));
  ASSERT_TRUE(StatusIs(live.Recover(), StatusCode::kOk));

  EXPECT_EQ(obs::Cat().recoveries->Value() - recoveries0, 1u);
  EXPECT_EQ(obs::Cat().recovery_discarded_txns->Value() - discarded0, 1u);
}

// ---------------------------------------------------------------------
// Engine facade.
// ---------------------------------------------------------------------

TEST(EngineIngestTest, LifecycleIngestQueryMaterialize) {
  SimilarityEngine engine(datagen::MakeUniform(200, 3, 71));
  EXPECT_FALSE(engine.ingest_active());
  EXPECT_TRUE(StatusIs(engine.IngestPoint(std::vector<Value>(3, 0.5)),
                       StatusCode::kFailedPrecondition));

  ASSERT_TRUE(StatusIs(engine.BeginIngest(), StatusCode::kOk));
  EXPECT_TRUE(engine.ingest_active());
  EXPECT_TRUE(StatusIs(engine.BeginIngest(), StatusCode::kFailedPrecondition));

  Rng rng(72);
  for (int i = 0; i < 5; ++i) {
    std::vector<Value> coords(3);
    for (auto& v : coords) v = rng.Uniform01();
    auto pid = engine.IngestPoint(coords);
    ASSERT_TRUE(StatusIs(pid, StatusCode::kOk));
    EXPECT_EQ(pid.value(), 200u + static_cast<PointId>(i));
  }
  auto erased = engine.ErasePoint(0);
  ASSERT_TRUE(StatusIs(erased, StatusCode::kOk));
  EXPECT_TRUE(erased.value());

  // The classic path still answers over the base dataset...
  EXPECT_EQ(engine.dataset().size(), 200u);
  auto classic = engine.KnMatch(std::vector<Value>(3, 0.5), 3, 5);
  ASSERT_TRUE(StatusIs(classic, StatusCode::kOk));

  // ...while the live path answers over the committed live state,
  // bit-identically to a quiesced mirror of it.
  const LiveColumnIndex* live = engine.live_index();
  ASSERT_NE(live, nullptr);
  std::unordered_map<PointId, std::vector<Value>> rows;
  for (const PointId pid : live->LivePids()) {
    rows[pid] = live->CoordsOf(pid).value();
  }
  EXPECT_EQ(rows.size(), 204u);
  Mirror mirror(rows, 3);
  SnapshotColumns want = mirror.Freeze();
  for (const auto& q : TestQueries(3, 4, 73)) {
    auto got = engine.LiveKnMatch(q, 3, 5);
    auto ref = SnapshotAdSearcher(want).KnMatch(q, 3, 5);
    ASSERT_TRUE(StatusIs(got, StatusCode::kOk));
    EXPECT_EQ(got.value().matches, ref.value().matches);
    auto fgot = engine.LiveFrequentKnMatch(q, 2, 3, 5);
    auto fref = SnapshotAdSearcher(want).FrequentKnMatch(q, 2, 3, 5);
    ASSERT_TRUE(StatusIs(fgot, StatusCode::kOk));
    EXPECT_EQ(fgot.value().matches, fref.value().matches);
  }

  // EndIngest materializes: 200 + 5 - 1 rows, ids remapped to 0..203.
  ASSERT_TRUE(StatusIs(engine.EndIngest(), StatusCode::kOk));
  EXPECT_FALSE(engine.ingest_active());
  EXPECT_EQ(engine.dataset().size(), 204u);
  auto after = engine.KnMatch(std::vector<Value>(3, 0.5), 3, 5);
  ASSERT_TRUE(StatusIs(after, StatusCode::kOk));
  for (const Neighbor& nb : after.value().matches) {
    EXPECT_LT(nb.pid, 204u);
  }
}

TEST(EngineIngestTest, CacheInvalidationWaitsForCommitDurability) {
  SimilarityEngine engine(datagen::MakeUniform(100, 2, 81));
  engine.EnableCache(cache::CacheConfig{});
  const std::vector<Value> q{0.42, 0.42};
  ASSERT_TRUE(StatusIs(engine.KnMatch(q, 2, 3), StatusCode::kOk));
  ASSERT_TRUE(StatusIs(engine.KnMatch(q, 2, 3), StatusCode::kOk));
  ASSERT_GE(engine.cache()->Stats().hits, 1u);

  SimilarityEngine::IngestConfig config;
  config.group_commit_window = 2;
  ASSERT_TRUE(StatusIs(engine.BeginIngest(config), StatusCode::kOk));

  // A point that would certainly enter the cached answer, applied but
  // not yet durable: the entry must stay.
  const uint64_t invalidated0 = engine.cache()->Stats().invalidated_insert;
  ASSERT_TRUE(StatusIs(engine.IngestPoint(q), StatusCode::kOk));
  EXPECT_EQ(engine.cache()->Stats().invalidated_insert, invalidated0);

  // The second insert fills the window; both commits become durable and
  // only now does the bridge invalidate.
  ASSERT_TRUE(StatusIs(engine.IngestPoint(std::vector<Value>{0.9, 0.9}),
                       StatusCode::kOk));
  EXPECT_GT(engine.cache()->Stats().invalidated_insert, invalidated0);
}

TEST(EngineIngestTest, RecoverBumpsTheCacheEpoch) {
  SimilarityEngine engine(datagen::MakeUniform(100, 2, 82));
  engine.EnableCache(cache::CacheConfig{});
  const std::vector<Value> q{0.3, 0.7};
  ASSERT_TRUE(StatusIs(engine.KnMatch(q, 2, 3), StatusCode::kOk));
  ASSERT_TRUE(StatusIs(engine.KnMatch(q, 2, 3), StatusCode::kOk));
  const auto warm = engine.cache()->Stats();
  ASSERT_GE(warm.hits, 1u);

  FaultInjector injector;
  engine.SetFaultInjector(&injector);
  ASSERT_TRUE(StatusIs(engine.BeginIngest(), StatusCode::kOk));

  const uint64_t epoch0 = engine.cache_epoch();
  injector.ScheduleCrash(CrashPoint::kAfterWalAppend);
  EXPECT_TRUE(StatusIs(engine.IngestPoint(std::vector<Value>{0.5, 0.5}),
                       StatusCode::kUnavailable));
  ASSERT_TRUE(engine.live_index()->crashed());
  ASSERT_TRUE(StatusIs(engine.Recover(), StatusCode::kOk));
  EXPECT_NE(engine.cache_epoch(), epoch0);

  // The pre-crash entry is stranded under the old epoch: same query,
  // cache miss.
  const auto before = engine.cache()->Stats();
  ASSERT_TRUE(StatusIs(engine.KnMatch(q, 2, 3), StatusCode::kOk));
  const auto after = engine.cache()->Stats();
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses + 1);
}

TEST(EngineIngestTest, EndIngestStrandsEveryCachedEntry) {
  SimilarityEngine engine(datagen::MakeUniform(100, 2, 83));
  engine.EnableCache(cache::CacheConfig{});
  const std::vector<Value> q{0.6, 0.1};
  ASSERT_TRUE(StatusIs(engine.KnMatch(q, 2, 3), StatusCode::kOk));
  const uint64_t epoch0 = engine.cache_epoch();

  ASSERT_TRUE(StatusIs(engine.BeginIngest(), StatusCode::kOk));
  ASSERT_TRUE(StatusIs(engine.IngestPoint(std::vector<Value>{0.5, 0.5}),
                       StatusCode::kOk));
  ASSERT_TRUE(StatusIs(engine.EndIngest(), StatusCode::kOk));
  EXPECT_NE(engine.cache_epoch(), epoch0);

  const auto before = engine.cache()->Stats();
  ASSERT_TRUE(StatusIs(engine.KnMatch(q, 2, 3), StatusCode::kOk));
  EXPECT_EQ(engine.cache()->Stats().hits, before.hits);
}

// ---------------------------------------------------------------------
// Concurrent reader/writer soak: N query threads over pinned snapshots
// while one writer ingests, checkpoints included; every sampled answer
// is differentially checked against a quiesced mirror of the epoch it
// was served from. Duration scales via KNMATCH_SOAK_MS (the TSan lane
// runs it long).
// ---------------------------------------------------------------------

TEST(IngestSoakTest, ConcurrentReadersMatchQuiescedMirrors) {
  int soak_ms = 1500;
  if (const char* env = std::getenv("KNMATCH_SOAK_MS")) {
    soak_ms = std::max(1, std::atoi(env));
  }
  constexpr size_t kReaders = 4;
  constexpr size_t kDims = 3;
  constexpr size_t kN = 2;
  constexpr size_t kK = 6;

  const Dataset base = datagen::MakeUniform(500, kDims, 91);
  DiskSimulator disk;
  LiveColumnIndex live(base, &disk);
  const auto queries = TestQueries(kDims, 8, 92);

  struct Sample {
    uint64_t epoch = 0;
    size_t query = 0;
    std::vector<Neighbor> matches;
    uint64_t attributes = 0;
  };
  std::vector<std::vector<Sample>> samples(kReaders);
  std::atomic<bool> stop{false};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      size_t iteration = r;  // desynchronize the query mix
      while (!stop.load(std::memory_order_relaxed)) {
        const auto snap = live.PinSnapshot();
        SnapshotColumns columns(snap->trees, snap->pid_bound);
        const size_t qi = iteration++ % queries.size();
        auto result = SnapshotAdSearcher(columns).KnMatch(queries[qi], kN, kK);
        ASSERT_TRUE(StatusIs(result, StatusCode::kOk));
        if (samples[r].size() < 64) {
          samples[r].push_back(Sample{snap->epoch, qi,
                                      result.value().matches,
                                      result.value().attributes_retrieved});
        }
      }
    });
  }

  // The single writer: scripted inserts and erases (committed order ==
  // call order with a window of 1), periodic checkpoints.
  std::vector<std::pair<bool, PointId>> ops;  // (insert?, pid)
  std::vector<PointId> inserted;              // erased FIFO from the front
  size_t next_victim = 0;
  Rng rng(93);
  PointId next_pid = 500;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(soak_ms);
  size_t step = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    if (step % 5 == 4 && next_victim < inserted.size()) {
      const PointId victim = inserted[next_victim++];
      auto erased = live.Erase(victim);
      ASSERT_TRUE(StatusIs(erased, StatusCode::kOk));
      ops.emplace_back(false, victim);
    } else {
      std::vector<Value> coords(kDims);
      for (auto& v : coords) v = rng.Uniform01();
      ASSERT_TRUE(StatusIs(live.Insert(next_pid, coords), StatusCode::kOk));
      ops.emplace_back(true, next_pid);
      inserted.push_back(next_pid);
      ++next_pid;
    }
    if (step % 128 == 127) {
      ASSERT_TRUE(StatusIs(live.Checkpoint(), StatusCode::kOk));
    }
    ++step;
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  ASSERT_GT(ops.size(), 0u);

  // Reconstruct each sampled epoch's quiesced state: epoch e is the
  // base plus the first e-1 committed ops (the constructor publishes
  // epoch 1 with none). Replay incrementally in epoch order.
  std::vector<Sample> all;
  for (auto& chunk : samples) {
    all.insert(all.end(), chunk.begin(), chunk.end());
  }
  ASSERT_GT(all.size(), 0u);
  std::sort(all.begin(), all.end(),
            [](const Sample& a, const Sample& b) { return a.epoch < b.epoch; });

  auto rows = RowsOf(base);
  Rng replay(93);  // must regenerate the writer's coordinate stream
  size_t applied = 0;
  std::unique_ptr<Mirror> mirror;
  uint64_t mirror_epoch = 0;
  size_t verified = 0;
  for (const Sample& sample : all) {
    ASSERT_GE(sample.epoch, 1u);
    ASSERT_LE(sample.epoch - 1, ops.size());
    if (mirror == nullptr || sample.epoch != mirror_epoch) {
      while (applied < sample.epoch - 1) {
        const auto& [was_insert, pid] = ops[applied];
        if (was_insert) {
          std::vector<Value> coords(kDims);
          for (auto& v : coords) v = replay.Uniform01();
          rows[pid] = std::move(coords);
        } else {
          rows.erase(pid);
        }
        ++applied;
      }
      mirror = std::make_unique<Mirror>(rows, kDims);
      mirror_epoch = sample.epoch;
    }
    auto want = SnapshotAdSearcher(mirror->Freeze())
                    .KnMatch(queries[sample.query], kN, kK);
    ASSERT_TRUE(StatusIs(want, StatusCode::kOk));
    EXPECT_EQ(sample.matches, want.value().matches)
        << "epoch " << sample.epoch << " query " << sample.query;
    EXPECT_EQ(sample.attributes, want.value().attributes_retrieved);
    ++verified;
  }
  EXPECT_GT(verified, 0u);
}

}  // namespace
}  // namespace knmatch

#ifndef KNMATCH_TESTS_STATUS_MATCHERS_H_
#define KNMATCH_TESTS_STATUS_MATCHERS_H_

#include <gtest/gtest.h>

#include "knmatch/common/status.h"

namespace knmatch {

/// Assertion helpers for Status / Result<T>:
///
///   EXPECT_TRUE(StatusIs(engine.Foo(q), StatusCode::kDataLoss));
///   ASSERT_TRUE(StatusIs(file.ReadPage(s, 0), StatusCode::kOk));
///
/// On mismatch the failure message renders the actual status, so a
/// test log shows "DataLoss: page 7 failed verification" instead of
/// just "false".
inline testing::AssertionResult StatusIs(const Status& status,
                                         StatusCode code) {
  if (status.code() == code) return testing::AssertionSuccess();
  return testing::AssertionFailure()
         << "expected status code " << static_cast<int>(code) << ", got "
         << status.ToString();
}

template <typename T>
testing::AssertionResult StatusIs(const Result<T>& result,
                                  StatusCode code) {
  return StatusIs(result.status(), code);
}

}  // namespace knmatch

#endif  // KNMATCH_TESTS_STATUS_MATCHERS_H_

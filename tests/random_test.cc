#include "knmatch/common/random.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace knmatch {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(RngTest, Uniform01MeanNearHalf) {
  Rng rng(11);
  double sum = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) sum += rng.Uniform01();
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(RngTest, UniformIntInRangeAndCoversValues) {
  Rng rng(13);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.UniformInt(5);
    EXPECT_LT(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(17);
  constexpr int kSamples = 100000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < kSamples; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum2 += g * g;
  }
  const double mean = sum / kSamples;
  const double var = sum2 / kSamples - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, GaussianScaledMoments) {
  Rng rng(19);
  constexpr int kSamples = 50000;
  double sum = 0;
  for (int i = 0; i < kSamples; ++i) sum += rng.Gaussian(3.0, 0.5);
  EXPECT_NEAR(sum / kSamples, 3.0, 0.02);
}

TEST(RngTest, ExponentialMeanIsInverseRate) {
  Rng rng(23);
  constexpr int kSamples = 100000;
  double sum = 0;
  for (int i = 0; i < kSamples; ++i) {
    const double e = rng.Exponential(2.0);
    EXPECT_GE(e, 0.0);
    sum += e;
  }
  EXPECT_NEAR(sum / kSamples, 0.5, 0.02);
}

TEST(RngTest, BernoulliFrequencyTracksP) {
  Rng rng(29);
  int hits = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(31);
  auto perm = rng.Permutation(100);
  std::set<uint32_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(perm.size(), 100u);
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(37);
  auto sample = rng.SampleWithoutReplacement(50, 20);
  std::set<uint32_t> seen(sample.begin(), sample.end());
  EXPECT_EQ(sample.size(), 20u);
  EXPECT_EQ(seen.size(), 20u);
  for (uint32_t v : sample) EXPECT_LT(v, 50u);
}

TEST(RngTest, SampleFullPopulation) {
  Rng rng(41);
  auto sample = rng.SampleWithoutReplacement(10, 10);
  std::set<uint32_t> seen(sample.begin(), sample.end());
  EXPECT_EQ(seen.size(), 10u);
}

}  // namespace
}  // namespace knmatch

#include "knmatch/common/stats.h"

#include <gtest/gtest.h>

namespace knmatch {
namespace {

TEST(SummaryTest, EmptySummaryIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_EQ(s.Stddev(), 0.0);
  EXPECT_EQ(s.Min(), 0.0);
  EXPECT_EQ(s.Max(), 0.0);
}

TEST(SummaryTest, BasicMoments) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.Stddev(), 2.0);  // classic textbook sample
  EXPECT_EQ(s.Min(), 2.0);
  EXPECT_EQ(s.Max(), 9.0);
  EXPECT_DOUBLE_EQ(s.Sum(), 40.0);
}

TEST(SummaryTest, PercentileInterpolates) {
  Summary s;
  for (double v : {10.0, 20.0, 30.0, 40.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 40.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 25.0);
}

TEST(SummaryTest, AddAfterReadKeepsConsistency) {
  Summary s;
  s.Add(5.0);
  EXPECT_EQ(s.Min(), 5.0);
  s.Add(1.0);
  EXPECT_EQ(s.Min(), 1.0);
  EXPECT_EQ(s.Max(), 5.0);
}

TEST(TimerTest, MeasuresNonNegativeAndMonotonic) {
  Timer t;
  const double a = t.Seconds();
  const double b = t.Seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  t.Reset();
  EXPECT_GE(t.Seconds(), 0.0);
}

}  // namespace
}  // namespace knmatch

#include <set>

#include <gtest/gtest.h>

#include "knmatch/baselines/idistance.h"
#include "knmatch/baselines/knn_scan.h"
#include "knmatch/common/kmeans.h"
#include "knmatch/common/random.h"
#include "knmatch/datagen/generators.h"

namespace knmatch {
namespace {

TEST(KMeansTest, ShapesAndDeterminism) {
  Dataset db = datagen::MakeUniform(500, 4, 120);
  KMeansResult a = KMeans(db, 8, 7);
  KMeansResult b = KMeans(db, 8, 7);
  EXPECT_EQ(a.centers.rows(), 8u);
  EXPECT_EQ(a.centers.cols(), 4u);
  EXPECT_EQ(a.assignment.size(), 500u);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.inertia, b.inertia);
  for (const uint32_t cluster : a.assignment) EXPECT_LT(cluster, 8u);
}

TEST(KMeansTest, KClampedToCardinality) {
  Dataset db = datagen::MakeUniform(5, 3, 121);
  KMeansResult r = KMeans(db, 50, 1);
  EXPECT_EQ(r.centers.rows(), 5u);
}

TEST(KMeansTest, RecoversWellSeparatedClusters) {
  datagen::ClusteredSpec spec;
  spec.cardinality = 300;
  spec.dims = 6;
  spec.num_classes = 3;
  spec.cluster_sigma = 0.02;
  spec.noise_dim_fraction = 0;
  spec.outlier_prob = 0;
  spec.seed = 122;
  Dataset db = datagen::MakeClustered(spec);
  KMeansResult r = KMeans(db, 3, 9);
  // Every k-means cluster should be (near-)pure in true labels.
  for (uint32_t cluster = 0; cluster < 3; ++cluster) {
    std::set<Label> labels;
    for (PointId pid = 0; pid < db.size(); ++pid) {
      if (r.assignment[pid] == cluster) labels.insert(db.label(pid));
    }
    EXPECT_EQ(labels.size(), 1u) << "cluster " << cluster;
  }
}

TEST(KMeansTest, AssignmentIsNearestCenter) {
  Dataset db = datagen::MakeUniform(200, 3, 123);
  KMeansResult r = KMeans(db, 5, 11);
  for (PointId pid = 0; pid < db.size(); ++pid) {
    double assigned = MetricDistance(
        db.point(pid), r.centers.row(r.assignment[pid]),
        Metric::kEuclidean);
    for (size_t center = 0; center < 5; ++center) {
      EXPECT_LE(assigned, MetricDistance(db.point(pid),
                                         r.centers.row(center),
                                         Metric::kEuclidean) +
                              1e-12);
    }
  }
}

class IDistanceSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(IDistanceSweep, KnnMatchesScanExactly) {
  const size_t d = GetParam();
  Dataset db = datagen::MakeSkewed(2000, d, 124);
  DiskSimulator disk;
  IDistanceIndex index(db, &disk);
  Rng rng(125);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<Value> q(d);
    for (Value& v : q) v = rng.Uniform01();
    auto idist = index.Knn(q, 10);
    auto scan = KnnScan(db, q, 10, Metric::kEuclidean);
    ASSERT_TRUE(idist.ok());
    EXPECT_EQ(idist.value().matches, scan.value().matches)
        << "d=" << d << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, IDistanceSweep,
                         ::testing::Values(2, 4, 8, 16),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "d" + std::to_string(info.param);
                         });

TEST(IDistanceTest, ExaminesFractionOnClusteredData) {
  Dataset db = datagen::MakeSkewed(8000, 8, 126);
  DiskSimulator disk;
  IDistanceIndex index(db, &disk);
  std::vector<Value> q(db.point(17).begin(), db.point(17).end());
  auto r = index.Knn(q, 10);
  ASSERT_TRUE(r.ok());
  EXPECT_LT(index.last_points_examined(), db.size() / 2);
}

TEST(IDistanceTest, KEqualsCardinality) {
  Dataset db = datagen::MakeUniform(60, 3, 127);
  DiskSimulator disk;
  IDistanceIndex index(db, &disk);
  std::vector<Value> q(3, 0.5);
  auto r = index.Knn(q, 60);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().matches.size(), 60u);
  std::set<PointId> pids;
  for (const Neighbor& nb : r.value().matches) pids.insert(nb.pid);
  EXPECT_EQ(pids.size(), 60u);
}

TEST(IDistanceTest, ValidatesParameters) {
  Dataset db = datagen::MakeUniform(50, 4, 128);
  DiskSimulator disk;
  IDistanceIndex index(db, &disk);
  std::vector<Value> q(4, 0.5);
  EXPECT_FALSE(index.Knn(q, 0).ok());
  EXPECT_FALSE(index.Knn(q, 51).ok());
  std::vector<Value> bad(3, 0.5);
  EXPECT_FALSE(index.Knn(bad, 1).ok());
}

TEST(IDistanceTest, ChargesTreePages) {
  Dataset db = datagen::MakeSkewed(5000, 6, 129);
  DiskSimulator disk;
  IDistanceIndex index(db, &disk);
  disk.ResetCounters();
  std::vector<Value> q(6, 0.3);
  auto r = index.Knn(q, 5);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(disk.total_reads(), 0u);
}

TEST(BufferPoolTest, HitsAreFreeAndLruEvicts) {
  DiskConfig config;
  config.buffer_pool_pages = 2;
  DiskSimulator disk(config);
  disk.AllocatePages(10);
  const size_t s = disk.OpenStream();
  disk.RecordRead(s, 0);  // miss
  disk.RecordRead(s, 1);  // miss (sequential)
  EXPECT_EQ(disk.total_reads(), 2u);
  EXPECT_EQ(disk.buffer_hits(), 0u);
  disk.RecordRead(s, 0);  // hit
  disk.RecordRead(s, 1);  // hit
  EXPECT_EQ(disk.total_reads(), 2u);
  EXPECT_EQ(disk.buffer_hits(), 2u);
  disk.RecordRead(s, 5);  // miss, evicts LRU (page 0)
  disk.RecordRead(s, 0);  // miss again
  EXPECT_EQ(disk.buffer_hits(), 2u);
  EXPECT_EQ(disk.total_reads(), 4u);
}

TEST(BufferPoolTest, SurvivesCounterResetAndDrops) {
  DiskConfig config;
  config.buffer_pool_pages = 4;
  DiskSimulator disk(config);
  disk.AllocatePages(10);
  const size_t s = disk.OpenStream();
  disk.RecordRead(s, 3);
  disk.ResetCounters();
  disk.RecordRead(s, 3);  // warm: a hit even after reset
  EXPECT_EQ(disk.buffer_hits(), 1u);
  EXPECT_EQ(disk.total_reads(), 0u);
  // Dropping the pool AND resetting the stream buffers makes the next
  // read cold again.
  disk.DropBufferPool();
  disk.ResetCounters();
  disk.RecordRead(s, 3);
  EXPECT_EQ(disk.total_reads(), 1u);
  EXPECT_EQ(disk.buffer_hits(), 0u);
}

}  // namespace
}  // namespace knmatch

// Verifies every worked example in the paper's text against this
// implementation: Figure 1's n-match answers, Figure 3's 1-match and
// non-monotonicity discussion, the Figure 5 sorted organization, and
// the full 2-2-match run of Section 3.1.

#include <algorithm>

#include <gtest/gtest.h>

#include "knmatch/baselines/knn_scan.h"
#include "knmatch/core/ad_algorithm.h"
#include "knmatch/core/nmatch.h"
#include "knmatch/core/nmatch_naive.h"
#include "knmatch/core/sorted_columns.h"
#include "paper_data.h"

namespace knmatch {
namespace {

using testing::Figure1Database;
using testing::Figure1Query;
using testing::Figure3Database;
using testing::Figure3Query;

// "A search for the nearest neighbor based on Euclidean distance will
// return object 4 as the answer."
TEST(PaperFigure1, EuclideanNnReturnsObject4) {
  Dataset db = Figure1Database();
  auto q = Figure1Query();
  auto r = KnnScan(db, q, 1, Metric::kEuclidean);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().matches[0].pid, 3u);  // object 4
}

// "point 3 is the 6-match (eps=0) of the query, point 1 is the 7-match
// (eps=0.2) and point 2 is the 8-match (eps=0.4)."
TEST(PaperFigure1, NMatchAnswers) {
  Dataset db = Figure1Database();
  auto q = Figure1Query();
  AdSearcher searcher(db);

  auto m6 = searcher.KnMatch(q, 6, 1);
  ASSERT_TRUE(m6.ok());
  EXPECT_EQ(m6.value().matches[0].pid, 2u);  // object 3
  EXPECT_DOUBLE_EQ(m6.value().matches[0].distance, 0.0);

  auto m7 = searcher.KnMatch(q, 7, 1);
  ASSERT_TRUE(m7.ok());
  EXPECT_EQ(m7.value().matches[0].pid, 0u);  // object 1
  EXPECT_NEAR(m7.value().matches[0].distance, 0.2, 1e-12);

  auto m8 = searcher.KnMatch(q, 8, 1);
  ASSERT_TRUE(m8.ok());
  EXPECT_EQ(m8.value().matches[0].pid, 1u);  // object 2
  EXPECT_NEAR(m8.value().matches[0].distance, 0.4, 1e-12);
}

// "if we issue a 6-match query, object 3 will be returned ... If we set
// eps to 0.2, we would have an additional answer, object 1, for the
// 6-match query": objects 3 and 1 are the two best 6-matches.
TEST(PaperFigure1, Two6MatchesAreObjects3And1) {
  Dataset db = Figure1Database();
  auto q = Figure1Query();
  auto r = KnMatchNaive(db, q, 6, 2);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().matches.size(), 2u);
  EXPECT_EQ(r.value().matches[0].pid, 2u);  // object 3, eps = 0
  EXPECT_EQ(r.value().matches[1].pid, 0u);  // object 1, eps = 0.2
  EXPECT_NEAR(r.value().matches[1].distance, 0.2, 1e-12);
}

// Section 3's monotonicity counterexample: "we are looking for the
// 1-match of the query (3.0, 7.0, 4.0) ... we get point 1, which is a
// wrong answer (the correct answer is point 2)". Point 1's 1-match
// difference is 2.6, point 2's is 0.2, point 4's is 2.0.
TEST(PaperFigure3, OneMatchDifferencesAndAnswer) {
  Dataset db = Figure3Database();
  auto q = Figure3Query();
  EXPECT_NEAR(NMatchDifference(db.point(0), q, 1), 2.6, 1e-12);
  EXPECT_NEAR(NMatchDifference(db.point(1), q, 1), 0.2, 1e-12);
  EXPECT_NEAR(NMatchDifference(db.point(3), q, 1), 2.0, 1e-12);

  AdSearcher searcher(db);
  auto r = searcher.KnMatch(q, 1, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().matches[0].pid, 1u);  // object 2
  EXPECT_NEAR(r.value().matches[0].distance, 0.2, 1e-12);
}

// Figure 5's sorted dimensions: "1, 0.4 / 2, 2.8 / 5, 3.5 / 3, 6.5 /
// 4, 9.0" etc. (paper object ids are 1-based).
TEST(PaperFigure5, SortedColumnsMatchFigure) {
  Dataset db = Figure3Database();
  SortedColumns columns(db);
  ASSERT_EQ(columns.dims(), 3u);
  ASSERT_EQ(columns.size(), 5u);

  const ColumnEntry expected_d1[] = {
      {0.4, 0}, {2.8, 1}, {3.5, 4}, {6.5, 2}, {9.0, 3}};
  const ColumnEntry expected_d2[] = {
      {1.0, 0}, {1.5, 4}, {5.5, 1}, {7.8, 2}, {9.0, 3}};
  const ColumnEntry expected_d3[] = {
      {1.0, 0}, {2.0, 1}, {5.0, 2}, {8.0, 4}, {9.0, 3}};
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(columns.entry(0, i), expected_d1[i]) << "d1 row " << i;
    EXPECT_EQ(columns.entry(1, i), expected_d2[i]) << "d2 row " << i;
    EXPECT_EQ(columns.entry(2, i), expected_d3[i]) << "d3 row " << i;
  }
}

// The running 2-2-match example of Section 3.1: "The 2-2-match set is
// {point 2, point 3} and we also get the 2-2-match difference, 1.5."
TEST(PaperSection31, RunningExample22Match) {
  Dataset db = Figure3Database();
  auto q = Figure3Query();
  AdSearcher searcher(db);
  auto r = searcher.KnMatch(q, 2, 2);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().matches.size(), 2u);
  // Ascending by difference: point 3 (1.0) then point 2 (1.5).
  EXPECT_EQ(r.value().matches[0].pid, 2u);  // object 3
  EXPECT_NEAR(r.value().matches[0].distance, 1.0, 1e-12);
  EXPECT_EQ(r.value().matches[1].pid, 1u);  // object 2
  EXPECT_NEAR(r.value().matches[1].distance, 1.5, 1e-12);
}

// The same run, counting retrieved attributes: the paper's trace primes
// six cursors (6 attributes), pops five triples, each pop refilling its
// cursor with one further attribute (5 more), for 11 in total.
TEST(PaperSection31, RunningExampleAttributeCount) {
  Dataset db = Figure3Database();
  auto q = Figure3Query();
  AdSearcher searcher(db);
  auto r = searcher.KnMatch(q, 2, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().attributes_retrieved, 11u);
  // Far fewer than the naive algorithm's c * d = 15.
  EXPECT_LT(r.value().attributes_retrieved, 15u);
}

// Figure 2's 2-dimensional scenario: "A is the 1-match of Q ... B is
// the 2-match ... {A,D,E} is the 3-1-match of Q while {A,B} is the
// 2-2-match". The figure is a diagram, so we reconstruct coordinates
// satisfying all four statements and verify them mechanically. (The
// skyline contrast of the same figure is covered in
// dpf_skyline_test.cc.)
TEST(PaperFigure2, AllFourMatchStatementsHold) {
  Dataset db(Matrix::FromRows({
      {0.48, 0.58},  // A: diffs (0.02, 0.08)
      {0.56, 0.44},  // B: diffs (0.06, 0.06)
      {0.80, 0.56},  // C: diffs (0.30, 0.06)
      {0.47, 0.70},  // D: diffs (0.03, 0.20)
      {0.54, 0.78},  // E: diffs (0.04, 0.28)
  }));
  const std::vector<Value> q = {0.5, 0.5};
  AdSearcher searcher(db);

  // "A is the 1-match of Q because it has the smallest difference from
  // Q in dimension x."
  auto m1 = searcher.KnMatch(q, 1, 1);
  EXPECT_EQ(m1.value().matches[0].pid, 0u);  // A

  // "B is the 2-match of Q because when we consider 2 dimensions, B
  // has the smallest difference."
  auto m2 = searcher.KnMatch(q, 2, 1);
  EXPECT_EQ(m2.value().matches[0].pid, 1u);  // B

  // "{A,D,E} is the 3-1-match of Q."
  auto m31 = searcher.KnMatch(q, 1, 3);
  std::vector<PointId> pids31;
  for (const auto& nb : m31.value().matches) pids31.push_back(nb.pid);
  std::sort(pids31.begin(), pids31.end());
  EXPECT_EQ(pids31, (std::vector<PointId>{0, 3, 4}));  // A, D, E

  // "{A,B} is the 2-2-match of Q."
  auto m22 = searcher.KnMatch(q, 2, 2);
  std::vector<PointId> pids22;
  for (const auto& nb : m22.value().matches) pids22.push_back(nb.pid);
  std::sort(pids22.begin(), pids22.end());
  EXPECT_EQ(pids22, (std::vector<PointId>{0, 1}));  // A, B
}

}  // namespace
}  // namespace knmatch

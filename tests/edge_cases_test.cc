// Cross-module edge cases: minimal datasets, extreme parameters,
// boundary geometry — the configurations that unit tests built around
// "typical" sizes never touch.

#include <cmath>

#include <gtest/gtest.h>

#include "knmatch/baselines/igrid.h"
#include "knmatch/baselines/knn_scan.h"
#include "knmatch/common/random.h"
#include "knmatch/core/ad_algorithm.h"
#include "knmatch/core/ad_stream.h"
#include "knmatch/core/nmatch_naive.h"
#include "knmatch/datagen/generators.h"
#include "knmatch/engine.h"
#include "knmatch/io/binary.h"
#include "knmatch/io/csv.h"
#include "knmatch/storage/bplus_tree.h"
#include "knmatch/storage/column_store.h"
#include "knmatch/storage/row_store.h"
#include "knmatch/vafile/va_file.h"
#include "knmatch/vafile/va_knmatch.h"

namespace knmatch {
namespace {

TEST(EdgeCases, SinglePointSingleDimension) {
  Dataset db(Matrix::FromRows({{0.5}}));
  AdSearcher searcher(db);
  std::vector<Value> q = {0.2};
  auto r = searcher.KnMatch(q, 1, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().matches[0].pid, 0u);
  EXPECT_NEAR(r.value().matches[0].distance, 0.3, 1e-12);

  auto f = searcher.FrequentKnMatch(q, 1, 1, 1);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f.value().frequencies[0], 1u);
}

TEST(EdgeCases, AllPointsIdentical) {
  Dataset db(Matrix::FromRows({{0.5, 0.5}, {0.5, 0.5}, {0.5, 0.5}}));
  AdSearcher searcher(db);
  std::vector<Value> q = {0.1, 0.9};
  auto ad = searcher.KnMatch(q, 2, 3);
  auto naive = KnMatchNaive(db, q, 2, 3);
  ASSERT_TRUE(ad.ok());
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(ad.value().matches[i].distance,
                     naive.value().matches[i].distance);
    EXPECT_DOUBLE_EQ(ad.value().matches[i].distance, 0.4);
  }
}

TEST(EdgeCases, ConstantColumnEverywhere) {
  // A constant dimension: the VA-file's cell width is zero there.
  Matrix m(50, 3);
  Rng rng(200);
  for (size_t r = 0; r < 50; ++r) {
    m.at(r, 0) = 0.7;  // constant
    m.at(r, 1) = rng.Uniform01();
    m.at(r, 2) = rng.Uniform01();
  }
  Dataset db(std::move(m));
  DiskSimulator disk;
  RowStore rows(db, &disk);
  VaFile va(db, &disk, 8);
  VaKnMatchSearcher searcher(va, rows);
  std::vector<Value> q = {0.7, 0.5, 0.5};
  auto va_result = searcher.FrequentKnMatch(q, 1, 3, 5);
  auto naive = FrequentKnMatchNaive(db, q, 1, 3, 5);
  ASSERT_TRUE(va_result.ok());
  EXPECT_EQ(va_result.value().base.matches, naive.value().matches);
}

TEST(EdgeCases, KEqualsCardinalityEverywhere) {
  Dataset db = datagen::MakeUniform(37, 4, 201);
  AdSearcher searcher(db);
  std::vector<Value> q(4, 0.41);
  auto ad = searcher.FrequentKnMatch(q, 1, 4, 37);
  auto naive = FrequentKnMatchNaive(db, q, 1, 4, 37);
  ASSERT_TRUE(ad.ok());
  EXPECT_EQ(ad.value().matches, naive.value().matches);
  // Every point appears in every answer set.
  for (const uint32_t f : ad.value().frequencies) EXPECT_EQ(f, 4u);
  // Full frequent run at k = c touches every attribute.
  EXPECT_EQ(ad.value().attributes_retrieved, 37u * 4u);
}

TEST(EdgeCases, NEqualsDAndKOne) {
  Dataset db = datagen::MakeUniform(64, 9, 202);
  AdSearcher searcher(db);
  std::vector<Value> q(9, 0.5);
  auto ad = searcher.KnMatch(q, 9, 1);
  auto naive = KnMatchNaive(db, q, 9, 1);
  ASSERT_TRUE(ad.ok());
  EXPECT_EQ(ad.value().matches, naive.value().matches);
}

TEST(EdgeCases, RowStoreExactlyFullPages) {
  // (4096 - 8 frame bytes) / (8 * 8B) = 63 rows per page; 126 rows =
  // exactly 2 full pages.
  Dataset db = datagen::MakeUniform(126, 8, 203);
  DiskSimulator disk;
  RowStore rows(db, &disk);
  EXPECT_EQ(rows.rows_per_page(), 63u);
  EXPECT_EQ(rows.num_pages(), 2u);
  const size_t s = rows.OpenStream();
  std::vector<Value> buf;
  auto row = rows.ReadRow(s, 125, &buf);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row.value()[0], db.at(125, 0));
}

TEST(EdgeCases, ColumnStoreSingleEntryPerPage) {
  DiskConfig config;
  config.page_size = 20;  // 8 frame bytes + exactly one 12-byte entry
  DiskSimulator disk(config);
  Dataset db = datagen::MakeUniform(20, 2, 204);
  ColumnStore store(db, &disk);
  EXPECT_EQ(store.entries_per_page(), 1u);
  EXPECT_EQ(store.num_pages(), 40u);
  SortedColumns reference(db);
  const size_t s = store.OpenStream();
  for (size_t idx = 0; idx < 20; ++idx) {
    auto entry = store.ReadEntry(s, 1, idx);
    ASSERT_TRUE(entry.ok());
    EXPECT_EQ(entry.value(), reference.entry(1, idx));
  }
  for (int trial = 0; trial < 20; ++trial) {
    const Value v = static_cast<Value>(trial) / 19.0;
    EXPECT_EQ(store.LowerBound(0, v), reference.LowerBound(0, v));
  }
}

TEST(EdgeCases, IGridMorePartitionsThanPoints) {
  Dataset db = datagen::MakeUniform(5, 16, 205);
  IGridIndex index(db, IGridOptions{.partitions = 100});
  EXPECT_LE(index.partitions(), 5u);
  std::vector<Value> q(16, 0.5);
  auto r = index.Search(q, 3);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().matches.size(), 3u);
}

TEST(EdgeCases, IGridSimilarityIsNegatedAndBounded) {
  Dataset db = datagen::MakeUniform(100, 8, 206);
  IGridIndex index(db);
  auto r = index.Search(db.point(0), 1);
  ASSERT_TRUE(r.ok());
  // Self-similarity: every dimension co-located with contribution 1,
  // so the negated similarity is -d.
  EXPECT_NEAR(r.value().matches[0].distance, -8.0, 1e-9);
}

TEST(EdgeCases, MetricDistancesAgreeWithClosedForms) {
  const Value a[] = {0.0, 0.0, 0.0};
  const Value b[] = {3.0, 4.0, 0.0};
  EXPECT_DOUBLE_EQ(MetricDistance(a, b, Metric::kEuclidean), 5.0);
  EXPECT_DOUBLE_EQ(MetricDistance(a, b, Metric::kManhattan), 7.0);
  EXPECT_DOUBLE_EQ(MetricDistance(a, b, Metric::kChebyshev), 4.0);
  // Fractional (p = 0.5): (sqrt(3) + sqrt(4))^2.
  const double expected = std::pow(std::sqrt(3.0) + 2.0, 2.0);
  EXPECT_NEAR(MetricDistance(a, b, Metric::kFractional), expected, 1e-12);
}

TEST(EdgeCases, WeightedStreamMatchesWeightedBatch) {
  Dataset db = datagen::MakeUniform(150, 4, 207);
  SortedColumns columns(db);
  AdSearcher searcher(db);
  std::vector<Value> q(4, 0.3);
  std::vector<Value> w = {2.0, 0.5, 1.0, 4.0};
  AdMatchStream stream(columns, q, 2, w);
  auto batch = searcher.KnMatch(q, 2, 12, w);
  ASSERT_TRUE(batch.ok());
  for (const Neighbor& expected : batch.value().matches) {
    auto next = stream.Next();
    ASSERT_TRUE(next.has_value());
    EXPECT_EQ(*next, expected);
  }
}

TEST(EdgeCases, EngineWeightedQueries) {
  SimilarityEngine engine(datagen::MakeUniform(120, 5, 208));
  std::vector<Value> q(5, 0.5);
  std::vector<Value> w = {1, 1, 1, 1, 10};
  auto weighted = engine.KnMatch(q, 3, 4, w);
  auto plain = engine.KnMatch(q, 3, 4);
  ASSERT_TRUE(weighted.ok());
  ASSERT_TRUE(plain.ok());
  // Weighting must at least be accepted and produce valid output.
  EXPECT_EQ(weighted.value().matches.size(), 4u);
  EXPECT_FALSE(engine.FrequentKnMatch(q, 1, 5, 4,
                                      std::vector<Value>{1, -1, 1, 1, 1})
                   .ok());
}

TEST(EdgeCases, FrequentRangeFullDimsOnTinyD) {
  // d = 1: the frequent query degenerates to plain 1-match.
  Dataset db = datagen::MakeUniform(40, 1, 209);
  AdSearcher searcher(db);
  std::vector<Value> q = {0.77};
  auto f = searcher.FrequentKnMatch(q, 1, 1, 5);
  auto p = searcher.KnMatch(q, 1, 5);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f.value().per_n_sets[0], p.value().matches);
}

TEST(EdgeCases, NaiveAttributesAccountingIsExact) {
  Dataset db = datagen::MakeUniform(33, 7, 210);
  std::vector<Value> q(7, 0.1);
  auto r = KnMatchNaive(db, q, 3, 4);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().attributes_retrieved, 33u * 7u);
}

TEST(EdgeCases, VaFileOneBitPerDimension) {
  Dataset db = datagen::MakeUniform(300, 6, 211);
  DiskSimulator disk;
  RowStore rows(db, &disk);
  VaFile va(db, &disk, 1);
  EXPECT_EQ(va.cells(), 2u);
  VaKnMatchSearcher searcher(va, rows);
  std::vector<Value> q(6, 0.4);
  auto va_result = searcher.FrequentKnMatch(q, 2, 5, 4);
  auto naive = FrequentKnMatchNaive(db, q, 2, 5, 4);
  ASSERT_TRUE(va_result.ok());
  EXPECT_EQ(va_result.value().base.matches, naive.value().matches);
  // With 1-bit cells pruning is almost useless but still correct.
  EXPECT_LE(va_result.value().points_refined, db.size());
}

TEST(EdgeCases, VaFileSixteenBits) {
  Dataset db = datagen::MakeUniform(200, 3, 212);
  DiskSimulator disk;
  RowStore rows(db, &disk);
  VaFile va(db, &disk, 16);
  EXPECT_EQ(va.cells(), 65536u);
  VaKnMatchSearcher searcher(va, rows);
  std::vector<Value> q(3, 0.6);
  auto va_result = searcher.FrequentKnMatch(q, 1, 3, 5);
  auto naive = FrequentKnMatchNaive(db, q, 1, 3, 5);
  ASSERT_TRUE(va_result.ok());
  EXPECT_EQ(va_result.value().base.matches, naive.value().matches);
}

TEST(EdgeCases, DatasetLabelArityMismatchFailsValidation) {
  Matrix m = Matrix::FromRows({{1}, {2}});
  Dataset db(std::move(m), {0, 1});
  EXPECT_TRUE(db.Validate().ok());
}

TEST(EdgeCases, PerNSetsAreCappedAtK) {
  // Definition 4: each per-n answer set holds the first k completions
  // only, even though more points eventually reach n appearances.
  Dataset db = datagen::MakeUniform(50, 4, 214);
  AdSearcher searcher(db);
  std::vector<Value> q(4, 0.5);
  auto r = searcher.FrequentKnMatch(q, 1, 4, 3);
  ASSERT_TRUE(r.ok());
  for (const auto& set : r.value().per_n_sets) {
    EXPECT_EQ(set.size(), 3u);
    for (size_t i = 0; i + 1 < set.size(); ++i) {
      EXPECT_LE(set[i].distance, set[i + 1].distance);
    }
  }
}

TEST(EdgeCases, BPlusTreeAscendingInsertWorstCase) {
  // Monotonically increasing keys: every insert lands in the rightmost
  // leaf — the classic split-heavy pattern.
  DiskSimulator disk;
  BPlusTree tree(&disk);
  for (PointId pid = 0; pid < 3000; ++pid) {
    tree.Insert(ColumnEntry{static_cast<Value>(pid), pid});
  }
  EXPECT_EQ(tree.size(), 3000u);
  ASSERT_TRUE(tree.CheckInvariants().ok())
      << tree.CheckInvariants().ToString();
  const size_t s = tree.OpenStream();
  auto it = tree.SeekLowerBound(s, -1.0);
  for (PointId pid = 0; pid < 3000; ++pid) {
    ASSERT_TRUE(it.Valid());
    EXPECT_EQ(it.Get().pid, pid);
    it.Next();
  }
}

TEST(EdgeCases, CsvWriteToUnwritablePathFails) {
  Dataset db = datagen::MakeUniform(5, 2, 215);
  EXPECT_FALSE(io::WriteCsv(db, "/nonexistent-dir/x.csv").ok());
  EXPECT_FALSE(io::SaveDataset(db, "/nonexistent-dir/x.knm").ok());
}

TEST(EdgeCases, DatasetAppendGrowsAndLabels) {
  Dataset db(Matrix::FromRows({{0.1, 0.2}}), {7});
  const std::vector<Value> coords = {0.3, 0.4};
  const PointId pid = db.Append(coords, 9);
  EXPECT_EQ(pid, 1u);
  EXPECT_EQ(db.size(), 2u);
  EXPECT_EQ(db.label(1), 9);
  EXPECT_TRUE(db.Validate().ok());

  Dataset unlabelled(Matrix::FromRows({{0.5}}));
  unlabelled.Append(std::vector<Value>{0.6});
  EXPECT_FALSE(unlabelled.labelled());
  EXPECT_EQ(unlabelled.size(), 2u);
}

TEST(EdgeCases, JoinOnEngineAfterInsertSeesNewPoint) {
  SimilarityEngine engine(Dataset(Matrix::FromRows({
      {0.10, 0.10},
      {0.90, 0.90},
  })));
  auto before = engine.SelfJoin(2, 0.05);
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE(before.value().empty());
  engine.InsertPoint(std::vector<Value>{0.11, 0.11});
  auto after = engine.SelfJoin(2, 0.05);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value(), (std::vector<JoinPair>{{0, 2}}));
}

TEST(EdgeCases, QueryFarOutsideEveryColumn) {
  Dataset db = datagen::MakeUniform(100, 3, 213);
  AdSearcher searcher(db);
  std::vector<Value> q = {50.0, -50.0, 100.0};
  auto ad = searcher.FrequentKnMatch(q, 1, 3, 10);
  auto naive = FrequentKnMatchNaive(db, q, 1, 3, 10);
  ASSERT_TRUE(ad.ok());
  EXPECT_EQ(ad.value().matches, naive.value().matches);
}

}  // namespace
}  // namespace knmatch

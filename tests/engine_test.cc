#include "knmatch/engine.h"

#include <gtest/gtest.h>

#include "knmatch/core/nmatch_naive.h"
#include "knmatch/datagen/generators.h"
#include "knmatch/datagen/texture_like.h"

namespace knmatch {
namespace {

TEST(SimilarityEngineTest, OwnsDatasetAndAnswersMemoryQueries) {
  SimilarityEngine engine(datagen::MakeUniform(500, 6, 110));
  EXPECT_EQ(engine.dataset().size(), 500u);
  std::vector<Value> q(6, 0.5);

  auto knm = engine.KnMatch(q, 3, 5);
  ASSERT_TRUE(knm.ok());
  EXPECT_EQ(knm.value().matches.size(), 5u);
  EXPECT_EQ(knm.value().matches,
            KnMatchNaive(engine.dataset(), q, 3, 5).value().matches);

  auto fknm = engine.FrequentKnMatch(q, 2, 5, 5);
  ASSERT_TRUE(fknm.ok());
  EXPECT_EQ(fknm.value().matches.size(), 5u);

  auto knn = engine.Knn(q, 5);
  ASSERT_TRUE(knn.ok());
  EXPECT_EQ(knn.value().matches.size(), 5u);

  auto igrid = engine.IGridSearch(q, 5);
  ASSERT_TRUE(igrid.ok());
  EXPECT_EQ(igrid.value().matches.size(), 5u);
}

TEST(SimilarityEngineTest, PropagatesValidationErrors) {
  SimilarityEngine engine(datagen::MakeUniform(100, 4, 111));
  std::vector<Value> q(4, 0.5);
  EXPECT_FALSE(engine.KnMatch(q, 0, 1).ok());
  EXPECT_FALSE(engine.KnMatch(q, 5, 1).ok());
  EXPECT_FALSE(engine.FrequentKnMatch(q, 3, 2, 1).ok());
  std::vector<Value> bad(3, 0.5);
  EXPECT_FALSE(engine.Knn(bad, 1).ok());
}

TEST(SimilarityEngineTest, DiskMethodsAgreeWithEachOther) {
  SimilarityEngine engine(datagen::MakeTextureLike(112, 5000));
  std::vector<Value> q(engine.dataset().point(99).begin(),
                       engine.dataset().point(99).end());
  auto scan = engine.DiskFrequentKnMatch(q, 4, 8, 10,
                                         SimilarityEngine::DiskMethod::kScan);
  auto ad = engine.DiskFrequentKnMatch(q, 4, 8, 10,
                                       SimilarityEngine::DiskMethod::kAd);
  auto va = engine.DiskFrequentKnMatch(
      q, 4, 8, 10, SimilarityEngine::DiskMethod::kVaFile);
  ASSERT_TRUE(scan.ok());
  ASSERT_TRUE(ad.ok());
  ASSERT_TRUE(va.ok());
  EXPECT_EQ(scan.value().matches, ad.value().matches);
  EXPECT_EQ(scan.value().matches, va.value().matches);
}

TEST(SimilarityEngineTest, DiskCostIsReportedPerCall) {
  SimilarityEngine engine(datagen::MakeTextureLike(113, 5000));
  std::vector<Value> q(engine.dataset().point(5).begin(),
                       engine.dataset().point(5).end());
  auto scan = engine.DiskFrequentKnMatch(q, 4, 8, 10,
                                         SimilarityEngine::DiskMethod::kScan);
  ASSERT_TRUE(scan.ok());
  const auto scan_cost = engine.last_disk_cost();
  EXPECT_GT(scan_cost.total_pages(), 0u);

  auto ad = engine.DiskFrequentKnMatch(q, 4, 8, 10,
                                       SimilarityEngine::DiskMethod::kAd);
  ASSERT_TRUE(ad.ok());
  const auto ad_cost = engine.last_disk_cost();
  EXPECT_LT(ad_cost.total_pages(), scan_cost.total_pages());
}

TEST(SimilarityEngineTest, AutoRoutingPicksTheMeasuredWinner) {
  // Large enough that the AD algorithm's 2d initial seeks are amortized
  // (at ~10k points a scan is genuinely cheaper and the advisor rightly
  // picks it; see the advisor tests).
  SimilarityEngine engine(datagen::MakeTextureLike(114, 40000));
  std::vector<Value> q(engine.dataset().point(77).begin(),
                       engine.dataset().point(77).end());
  auto result = engine.DiskFrequentKnMatch(q, 4, 8, 10);
  ASSERT_TRUE(result.ok());
  // On skewed 16-d data with a selective range the advisor should pick
  // the AD algorithm, matching the paper's Figures 11/15.
  EXPECT_EQ(engine.last_disk_method(), SimilarityEngine::DiskMethod::kAd);
  // The routed answer equals the scan's answer.
  auto scan = engine.DiskFrequentKnMatch(q, 4, 8, 10,
                                         SimilarityEngine::DiskMethod::kScan);
  EXPECT_EQ(result.value().matches, scan.value().matches);
}

TEST(SimilarityEngineTest, SelfJoinAndEstimateWork) {
  SimilarityEngine engine(datagen::MakeUniform(200, 4, 116));
  auto join = engine.SelfJoin(4, 0.05);
  ASSERT_TRUE(join.ok());
  for (const JoinPair& pair : join.value()) {
    EXPECT_LT(pair.a, pair.b);
  }
  std::vector<Value> q(4, 0.5);
  auto estimate = engine.EstimateSelectivity(q, 2, 10);
  ASSERT_TRUE(estimate.ok());
  EXPECT_GT(estimate.value().estimated_difference, 0.0);
  EXPECT_GT(estimate.value().ad_attribute_fraction, 0.0);
  EXPECT_LE(estimate.value().ad_attribute_fraction, 1.0);
  EXPECT_FALSE(engine.EstimateSelectivity(q, 0, 10).ok());
}

TEST(SimilarityEngineTest, InsertPointInvalidatesIndexes) {
  SimilarityEngine engine(datagen::MakeUniform(100, 3, 117));
  std::vector<Value> q = {0.111, 0.222, 0.333};
  // Query once so indexes exist.
  auto before = engine.KnMatch(q, 3, 1);
  ASSERT_TRUE(before.ok());
  EXPECT_GT(before.value().matches[0].distance, 0.0);

  // Insert an exact duplicate of the query; it must become the top
  // answer on the next query.
  const PointId pid = engine.InsertPoint(q);
  EXPECT_EQ(pid, 100u);
  EXPECT_EQ(engine.dataset().size(), 101u);
  auto after = engine.KnMatch(q, 3, 1);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().matches[0].pid, pid);
  EXPECT_EQ(after.value().matches[0].distance, 0.0);

  // Disk structures also see the new point.
  auto disk = engine.DiskFrequentKnMatch(q, 1, 3, 1,
                                         SimilarityEngine::DiskMethod::kScan);
  ASSERT_TRUE(disk.ok());
  EXPECT_EQ(disk.value().matches[0].pid, pid);
}

TEST(SimilarityEngineTest, StorageStatsReportFootprints) {
  SimilarityEngine engine(datagen::MakeUniform(2000, 8, 115));
  const auto stats = engine.DiskStorageStats();
  EXPECT_GT(stats.row_pages, 0u);
  EXPECT_GT(stats.column_pages, stats.row_pages);  // 12B/attr vs 8B/attr
  EXPECT_LT(stats.va_pages, stats.row_pages);
}

}  // namespace
}  // namespace knmatch

// Randomized differential tests: every structure against a trivially
// correct reference, under adversarial conditions the unit tests do not
// reach — duplicate-heavy data (ties everywhere), tiny pages (every
// path crosses page boundaries), and long random operation sequences.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "knmatch/baselines/rtree.h"
#include "knmatch/baselines/knn_scan.h"
#include "knmatch/common/random.h"
#include "knmatch/core/ad_algorithm.h"
#include "knmatch/core/nmatch.h"
#include "knmatch/core/nmatch_naive.h"
#include "knmatch/datagen/generators.h"
#include "knmatch/diskalgo/disk_ad.h"
#include "knmatch/diskalgo/disk_scan.h"
#include "knmatch/storage/bplus_tree.h"
#include "knmatch/storage/column_store.h"
#include "knmatch/storage/row_store.h"
#include "knmatch/vafile/va_file.h"
#include "knmatch/vafile/va_knmatch.h"

namespace knmatch {
namespace {

/// Quantized data: coordinates drawn from a small value alphabet, so
/// exact ties are everywhere.
Dataset MakeDuplicateHeavy(size_t c, size_t d, uint64_t seed,
                           uint64_t levels = 7) {
  Rng rng(seed);
  Matrix m(c, d);
  for (Value& v : m.data()) {
    v = static_cast<Value>(rng.UniformInt(levels)) /
        static_cast<Value>(levels - 1);
  }
  Dataset db(std::move(m));
  db.set_name("duplicate-heavy");
  return db;
}

class FuzzSeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzSeeds, BPlusTreeMatchesReferenceUnderRandomOps) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  DiskSimulator disk;
  BPlusTree tree(&disk);

  auto entry_less = [](const ColumnEntry& a, const ColumnEntry& b) {
    if (a.value != b.value) return a.value < b.value;
    return a.pid < b.pid;
  };
  std::set<std::pair<Value, PointId>> reference;

  for (int op = 0; op < 3000; ++op) {
    const uint64_t roll = rng.UniformInt(10);
    if (roll < 7 || reference.empty()) {
      // Insert (dup-prone value alphabet).
      const ColumnEntry e{
          static_cast<Value>(rng.UniformInt(50)) / 49.0,
          static_cast<PointId>(rng.UniformInt(100000))};
      if (reference.insert({e.value, e.pid}).second) {
        tree.Insert(e);
      }
    } else {
      // Erase a random existing entry.
      auto it = reference.begin();
      std::advance(it, static_cast<long>(
                           rng.UniformInt(reference.size())));
      ASSERT_TRUE(tree.Erase(ColumnEntry{it->first, it->second}).value());
      reference.erase(it);
    }
    if (op % 500 == 499) {
      ASSERT_TRUE(tree.CheckInvariants().ok())
          << tree.CheckInvariants().ToString() << " at op " << op;
      ASSERT_EQ(tree.size(), reference.size());
      // Probe a few random seeks.
      const size_t stream = tree.OpenStream();
      for (int probe = 0; probe < 10; ++probe) {
        const Value v = rng.Uniform(-0.1, 1.1);
        auto expected = std::find_if(
            reference.begin(), reference.end(),
            [&](const auto& p) { return p.first >= v; });
        auto it2 = tree.SeekLowerBound(stream, v);
        if (expected == reference.end()) {
          EXPECT_FALSE(it2.Valid());
        } else {
          ASSERT_TRUE(it2.Valid());
          EXPECT_EQ(it2.Get().value, expected->first);
          EXPECT_EQ(it2.Get().pid, expected->second);
        }
      }
    }
  }
  (void)entry_less;
}

TEST_P(FuzzSeeds, RTreeMatchesScanUnderIncrementalInserts) {
  const uint64_t seed = GetParam();
  Rng rng(seed ^ 0xABCD);
  const size_t d = 3 + seed % 3;
  RTree tree(d);
  Matrix m(0, d);
  std::vector<Value> point(d);
  for (PointId pid = 0; pid < 800; ++pid) {
    for (Value& v : point) v = rng.Uniform01();
    tree.Insert(pid, point);
    m.AppendRow(point);
    if (pid % 200 == 199) {
      ASSERT_TRUE(tree.CheckInvariants().ok());
      Dataset snapshot{Matrix(m)};
      std::vector<Value> q(d);
      for (Value& v : q) v = rng.Uniform01();
      auto tree_knn = tree.Knn(q, 5);
      auto scan_knn = KnnScan(snapshot, q, 5);
      ASSERT_TRUE(tree_knn.ok());
      EXPECT_EQ(tree_knn.value().matches, scan_knn.value().matches);
    }
  }
}

TEST_P(FuzzSeeds, AdOnDuplicateHeavyDataIsDistanceCorrect) {
  const uint64_t seed = GetParam();
  Dataset db = MakeDuplicateHeavy(400, 6, seed);
  AdSearcher searcher(db);
  Rng rng(seed ^ 0x55);
  std::vector<Value> q(6);
  for (Value& v : q) {
    v = static_cast<Value>(rng.UniformInt(7)) / 6.0;
  }
  for (size_t n = 1; n <= 6; ++n) {
    auto ad = searcher.KnMatch(q, n, 20);
    auto naive = KnMatchNaive(db, q, n, 20);
    ASSERT_TRUE(ad.ok());
    ASSERT_EQ(ad.value().matches.size(), naive.value().matches.size());
    for (size_t i = 0; i < ad.value().matches.size(); ++i) {
      // Under ties the pid order may legitimately differ, but the
      // distance sequence must match and every reported distance must
      // be the point's true n-match difference.
      const Neighbor& nb = ad.value().matches[i];
      EXPECT_DOUBLE_EQ(nb.distance, naive.value().matches[i].distance)
          << "n=" << n << " i=" << i;
      EXPECT_DOUBLE_EQ(nb.distance,
                       NMatchDifference(db.point(nb.pid), q, n));
    }
    // No duplicate pids in the answer.
    std::set<PointId> pids;
    for (const Neighbor& nb : ad.value().matches) pids.insert(nb.pid);
    EXPECT_EQ(pids.size(), ad.value().matches.size());
  }
}

TEST_P(FuzzSeeds, VaFileExactOnDuplicateHeavyData) {
  const uint64_t seed = GetParam();
  Dataset db = MakeDuplicateHeavy(500, 5, seed, 9);
  DiskSimulator disk;
  RowStore rows(db, &disk);
  VaFile va(db, &disk, 4);
  VaKnMatchSearcher searcher(va, rows);
  Rng rng(seed ^ 0x99);
  std::vector<Value> q(5);
  for (Value& v : q) v = rng.Uniform01();
  auto va_result = searcher.FrequentKnMatch(q, 2, 4, 6);
  auto naive = FrequentKnMatchNaive(db, q, 2, 4, 6);
  ASSERT_TRUE(va_result.ok());
  // Both sides break ties by (difference, pid), so equality is exact
  // even with massive duplication.
  EXPECT_EQ(va_result.value().base.per_n_sets, naive.value().per_n_sets);
  EXPECT_EQ(va_result.value().base.matches, naive.value().matches);
}

TEST_P(FuzzSeeds, TinyPagesExerciseEveryBoundary) {
  const uint64_t seed = GetParam();
  DiskConfig config;
  config.page_size = 256;  // 21 column entries / 4 rows (d=8) per page
  DiskSimulator disk(config);
  Dataset db = datagen::MakeUniform(300, 8, seed);
  RowStore rows(db, &disk);
  ColumnStore columns(db, &disk);
  DiskAdSearcher ad(columns);
  DiskScan scan(rows);
  AdSearcher mem(db);

  Rng rng(seed ^ 0x11);
  std::vector<Value> q(8);
  for (Value& v : q) v = rng.Uniform01();

  auto disk_ad = ad.FrequentKnMatch(q, 2, 6, 9);
  auto mem_ad = mem.FrequentKnMatch(q, 2, 6, 9);
  ASSERT_TRUE(disk_ad.ok());
  EXPECT_EQ(disk_ad.value().matches, mem_ad.value().matches);
  EXPECT_EQ(disk_ad.value().per_n_sets, mem_ad.value().per_n_sets);

  auto disk_scan = scan.FrequentKnMatch(q, 2, 6, 9);
  ASSERT_TRUE(disk_scan.ok());
  EXPECT_EQ(disk_scan.value().matches, mem_ad.value().matches);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds,
                         ::testing::Values(1, 2, 3, 4, 5),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace knmatch

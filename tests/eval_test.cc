#include <sstream>

#include <gtest/gtest.h>

#include "knmatch/datagen/generators.h"
#include "knmatch/eval/class_strip.h"
#include "knmatch/eval/experiment.h"

namespace knmatch::eval {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer-name", "2.5"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name        | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer-name | 2.5   |"), std::string::npos);
  EXPECT_NE(out.find("|------"), std::string::npos);
}

TEST(FmtTest, Formats) {
  EXPECT_EQ(Fmt(0.875, 3), "0.875");
  EXPECT_EQ(Fmt(0.875, 1), "0.9");
  EXPECT_EQ(Fmt(uint64_t{42}), "42");
}

TEST(SampleQueryPidsTest, DeterministicAndDistinct) {
  Dataset db = datagen::MakeUniform(200, 4, 50);
  auto a = SampleQueryPids(db, 50, 7);
  auto b = SampleQueryPids(db, 50, 7);
  auto c = SampleQueryPids(db, 50, 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  std::set<PointId> distinct(a.begin(), a.end());
  EXPECT_EQ(distinct.size(), 50u);
}

TEST(SampleQueryPidsTest, ClampsToCardinality) {
  Dataset db = datagen::MakeUniform(10, 2, 51);
  EXPECT_EQ(SampleQueryPids(db, 100, 1).size(), 10u);
}

TEST(MeasureQueryTest, CapturesIoAndCpu) {
  DiskSimulator disk;
  disk.AllocatePages(5);
  const size_t s = disk.OpenStream();
  QueryCost cost = MeasureQuery(&disk, [&] {
    disk.RecordRead(s, 0);
    disk.RecordRead(s, 1);
  });
  EXPECT_EQ(cost.random_pages, 1u);
  EXPECT_EQ(cost.sequential_pages, 1u);
  EXPECT_GT(cost.io_seconds, 0.0);
  EXPECT_GE(cost.cpu_seconds, 0.0);
  EXPECT_EQ(cost.total_pages(), 2u);
}

TEST(ClassStripTest, PerfectMethodScoresOne) {
  // Trivially separable data: two classes at opposite corners with no
  // noise; any sane method scores 1.0. Use an oracle method that
  // returns same-class points directly to validate the harness's
  // counting.
  datagen::ClusteredSpec spec;
  spec.cardinality = 60;
  spec.dims = 4;
  spec.num_classes = 2;
  spec.noise_dim_fraction = 0;
  spec.outlier_prob = 0;
  spec.seed = 9;
  Dataset db = datagen::MakeClustered(spec);

  ClassStripConfig config;
  config.num_queries = 20;
  config.k = 5;
  const SearchFn oracle = [&db](std::span<const Value>, PointId qpid,
                                size_t k) {
    std::vector<PointId> out;
    for (PointId pid = 0; pid < db.size() && out.size() < k; ++pid) {
      if (pid != qpid && db.label(pid) == db.label(qpid)) out.push_back(pid);
    }
    return out;
  };
  EXPECT_DOUBLE_EQ(ClassStripAccuracy(db, config, oracle), 1.0);
}

TEST(ClassStripTest, AntiOracleScoresZero) {
  datagen::ClusteredSpec spec;
  spec.cardinality = 60;
  spec.dims = 4;
  spec.num_classes = 2;
  spec.seed = 10;
  Dataset db = datagen::MakeClustered(spec);
  ClassStripConfig config;
  config.num_queries = 10;
  config.k = 5;
  const SearchFn anti = [&db](std::span<const Value>, PointId qpid,
                              size_t k) {
    std::vector<PointId> out;
    for (PointId pid = 0; pid < db.size() && out.size() < k; ++pid) {
      if (db.label(pid) != db.label(qpid)) out.push_back(pid);
    }
    return out;
  };
  EXPECT_DOUBLE_EQ(ClassStripAccuracy(db, config, anti), 0.0);
}

TEST(ClassStripTest, BuiltInMethodsBeatChanceOnClusteredData) {
  datagen::ClusteredSpec spec;
  spec.cardinality = 240;
  spec.dims = 12;
  spec.num_classes = 4;
  spec.seed = 11;
  Dataset db = datagen::MakeClustered(spec);
  AdSearcher searcher(db);
  IGridIndex igrid(db);

  ClassStripConfig config;
  config.num_queries = 40;
  config.k = 10;

  const double chance = 0.25;
  EXPECT_GT(ClassStripAccuracy(db, config,
                               FrequentKnMatchMethod(searcher, 1, 12)),
            2 * chance);
  EXPECT_GT(ClassStripAccuracy(db, config, KnMatchMethod(searcher, 6)),
            2 * chance);
  EXPECT_GT(ClassStripAccuracy(db, config, KnnMethod(db)), 2 * chance);
  EXPECT_GT(ClassStripAccuracy(db, config, IGridMethod(igrid)),
            2 * chance);
}

TEST(ClassStripTest, QueryPointNeverCounted) {
  datagen::ClusteredSpec spec;
  spec.cardinality = 40;
  spec.dims = 4;
  spec.num_classes = 2;
  spec.seed = 12;
  Dataset db = datagen::MakeClustered(spec);
  AdSearcher searcher(db);
  ClassStripConfig config;
  config.num_queries = 10;
  config.k = 3;
  const SearchFn method = FrequentKnMatchMethod(searcher, 1, 4);
  // The adapter must have stripped the query pid from the answers.
  for (PointId qpid : {PointId{0}, PointId{5}}) {
    auto answers = method(db.point(qpid), qpid, 3);
    for (PointId pid : answers) EXPECT_NE(pid, qpid);
  }
}

}  // namespace
}  // namespace knmatch::eval

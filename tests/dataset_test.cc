#include "knmatch/common/dataset.h"

#include <gtest/gtest.h>

namespace knmatch {
namespace {

TEST(DatasetTest, UnlabelledBasics) {
  Dataset db(Matrix::FromRows({{0.1, 0.2}, {0.3, 0.4}, {0.5, 0.6}}));
  EXPECT_EQ(db.size(), 3u);
  EXPECT_EQ(db.dims(), 2u);
  EXPECT_FALSE(db.labelled());
  EXPECT_EQ(db.label(0), kNoLabel);
  EXPECT_EQ(db.num_classes(), 0u);
  EXPECT_EQ(db.at(1, 1), 0.4);
  EXPECT_EQ(db.point(2)[0], 0.5);
}

TEST(DatasetTest, LabelledBasics) {
  Dataset db(Matrix::FromRows({{1}, {2}, {3}, {4}}), {0, 1, 0, 2});
  EXPECT_TRUE(db.labelled());
  EXPECT_EQ(db.label(1), 1);
  EXPECT_EQ(db.num_classes(), 3u);
}

TEST(DatasetTest, NameRoundTrips) {
  Dataset db;
  db.set_name("demo");
  EXPECT_EQ(db.name(), "demo");
}

TEST(DatasetTest, NormalizeScalesToUnitRange) {
  Dataset db(Matrix::FromRows({{0, 100}, {10, 200}}));
  db.Normalize();
  EXPECT_DOUBLE_EQ(db.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(db.at(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(db.at(1, 1), 1.0);
}

TEST(DatasetTest, ValidateAcceptsFiniteData) {
  Dataset db(Matrix::FromRows({{1, 2}}));
  EXPECT_TRUE(db.Validate().ok());
}

TEST(DatasetTest, ValidateRejectsNonFinite) {
  Matrix m = Matrix::FromRows({{1, 2}});
  m.at(0, 1) = std::numeric_limits<Value>::quiet_NaN();
  Dataset db(std::move(m));
  EXPECT_FALSE(db.Validate().ok());
}

}  // namespace
}  // namespace knmatch

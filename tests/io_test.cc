#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "knmatch/datagen/generators.h"
#include "knmatch/io/binary.h"
#include "knmatch/io/csv.h"

namespace knmatch::io {
namespace {

class TempDir : public ::testing::Test {
 protected:
  std::string Path(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
  }
};

using CsvTest = TempDir;
using BinaryTest = TempDir;

TEST_F(CsvTest, RoundTripUnlabelled) {
  Dataset original = datagen::MakeUniform(50, 4, 90);
  const std::string path = Path("unlabelled.csv");
  ASSERT_TRUE(WriteCsv(original, path).ok());

  CsvOptions options;
  options.normalize = false;
  auto loaded = LoadCsv(path, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().size(), 50u);
  ASSERT_EQ(loaded.value().dims(), 4u);
  for (PointId pid = 0; pid < 50; ++pid) {
    for (size_t dim = 0; dim < 4; ++dim) {
      EXPECT_DOUBLE_EQ(loaded.value().at(pid, dim),
                       original.at(pid, dim));
    }
  }
}

TEST_F(CsvTest, RoundTripLabelled) {
  datagen::ClusteredSpec spec;
  spec.cardinality = 30;
  spec.dims = 3;
  spec.num_classes = 3;
  spec.seed = 91;
  Dataset original = datagen::MakeClustered(spec);
  const std::string path = Path("labelled.csv");
  ASSERT_TRUE(WriteCsv(original, path).ok());

  CsvOptions options;
  options.label_column = 3;  // label written as the last column
  options.normalize = false;
  auto loaded = LoadCsv(path, options);
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(loaded.value().labelled());
  EXPECT_EQ(loaded.value().num_classes(), 3u);
  EXPECT_EQ(loaded.value().dims(), 3u);
}

TEST_F(CsvTest, ParsesHeaderAndTextLabels) {
  const std::string path = Path("iris_style.csv");
  std::ofstream out(path);
  out << "sepal_l,sepal_w,species\n"
         "5.1,3.5,setosa\n"
         "4.9,3.0,setosa\n"
         "6.3,2.9,virginica\n";
  out.close();

  CsvOptions options;
  options.has_header = true;
  options.label_column = 2;
  options.normalize = true;
  auto loaded = LoadCsv(path, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().size(), 3u);
  EXPECT_EQ(loaded.value().dims(), 2u);
  EXPECT_EQ(loaded.value().num_classes(), 2u);
  // Labels are interned in first-seen order: setosa=0, virginica=1.
  EXPECT_EQ(loaded.value().label(0), 0);
  EXPECT_EQ(loaded.value().label(2), 1);
  // Normalized to [0, 1].
  EXPECT_DOUBLE_EQ(loaded.value().at(2, 0), 1.0);
}

TEST_F(CsvTest, RejectsMissingFile) {
  EXPECT_EQ(LoadCsv(Path("nope.csv")).status().code(),
            StatusCode::kNotFound);
}

TEST_F(CsvTest, RejectsRaggedRows) {
  const std::string path = Path("ragged.csv");
  std::ofstream out(path);
  out << "1,2,3\n1,2\n";
  out.close();
  EXPECT_EQ(LoadCsv(path).status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CsvTest, RejectsNonNumericCoordinates) {
  const std::string path = Path("text.csv");
  std::ofstream out(path);
  out << "1,banana,3\n";
  out.close();
  EXPECT_EQ(LoadCsv(path).status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CsvTest, RejectsEmptyFile) {
  const std::string path = Path("empty.csv");
  std::ofstream out(path);
  out.close();
  EXPECT_EQ(LoadCsv(path).status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CsvTest, HandlesWindowsLineEndings) {
  const std::string path = Path("crlf.csv");
  std::ofstream out(path);
  out << "0.25,0.5\r\n0.75,1.0\r\n";
  out.close();
  CsvOptions options;
  options.normalize = false;
  auto loaded = LoadCsv(path, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().size(), 2u);
  EXPECT_DOUBLE_EQ(loaded.value().at(1, 1), 1.0);
}

TEST_F(BinaryTest, RoundTripUnlabelled) {
  Dataset original = datagen::MakeUniform(200, 6, 92);
  const std::string path = Path("data.knm");
  ASSERT_TRUE(SaveDataset(original, path).ok());
  auto loaded = LoadDataset(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().matrix().data(), original.matrix().data());
  EXPECT_FALSE(loaded.value().labelled());
}

TEST_F(BinaryTest, RoundTripLabelled) {
  datagen::ClusteredSpec spec;
  spec.cardinality = 80;
  spec.dims = 5;
  spec.num_classes = 4;
  spec.seed = 93;
  Dataset original = datagen::MakeClustered(spec);
  const std::string path = Path("labelled.knm");
  ASSERT_TRUE(SaveDataset(original, path).ok());
  auto loaded = LoadDataset(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(loaded.value().labelled());
  for (PointId pid = 0; pid < 80; ++pid) {
    EXPECT_EQ(loaded.value().label(pid), original.label(pid));
  }
}

TEST_F(BinaryTest, RejectsMissingFile) {
  EXPECT_EQ(LoadDataset(Path("missing.knm")).status().code(),
            StatusCode::kNotFound);
}

TEST_F(BinaryTest, RejectsWrongMagic) {
  const std::string path = Path("wrong_magic.knm");
  std::ofstream out(path, std::ios::binary);
  out << "NOPE here is a long enough file to get past the size check";
  out.close();
  EXPECT_EQ(LoadDataset(path).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(BinaryTest, RejectsCorruption) {
  Dataset original = datagen::MakeUniform(50, 3, 94);
  const std::string path = Path("corrupt.knm");
  ASSERT_TRUE(SaveDataset(original, path).ok());
  // Flip one payload byte.
  std::fstream file(path,
                    std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(40);
  char byte;
  file.seekg(40);
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0xFF);
  file.seekp(40);
  file.write(&byte, 1);
  file.close();
  EXPECT_EQ(LoadDataset(path).status().code(), StatusCode::kInternal);
}

TEST_F(BinaryTest, RejectsTruncation) {
  Dataset original = datagen::MakeUniform(50, 3, 95);
  const std::string path = Path("truncated.knm");
  ASSERT_TRUE(SaveDataset(original, path).ok());
  // Rewrite the file without its last 16 bytes.
  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  bytes.resize(bytes.size() - 16);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  EXPECT_FALSE(LoadDataset(path).ok());
}

}  // namespace
}  // namespace knmatch::io

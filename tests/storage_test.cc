#include <cstring>

#include <gtest/gtest.h>

#include "knmatch/common/random.h"
#include "knmatch/core/sorted_columns.h"
#include "knmatch/datagen/generators.h"
#include "knmatch/storage/column_store.h"
#include "knmatch/storage/disk_simulator.h"
#include "knmatch/storage/paged_file.h"
#include "knmatch/storage/row_store.h"

namespace knmatch {
namespace {

TEST(DiskSimulatorTest, FirstReadOfStreamIsRandom) {
  DiskSimulator disk;
  disk.AllocatePages(10);
  const size_t s = disk.OpenStream();
  disk.RecordRead(s, 5);
  EXPECT_EQ(disk.random_reads(), 1u);
  EXPECT_EQ(disk.sequential_reads(), 0u);
}

TEST(DiskSimulatorTest, AdjacentReadsAreSequentialBothDirections) {
  DiskSimulator disk;
  disk.AllocatePages(10);
  const size_t s = disk.OpenStream();
  disk.RecordRead(s, 5);
  disk.RecordRead(s, 6);  // forward
  disk.RecordRead(s, 5);  // backward
  EXPECT_EQ(disk.sequential_reads(), 2u);
  EXPECT_EQ(disk.random_reads(), 1u);
}

TEST(DiskSimulatorTest, RereadOfCurrentPageIsFree) {
  DiskSimulator disk;
  disk.AllocatePages(10);
  const size_t s = disk.OpenStream();
  disk.RecordRead(s, 3);
  disk.RecordRead(s, 3);
  disk.RecordRead(s, 3);
  EXPECT_EQ(disk.total_reads(), 1u);
}

TEST(DiskSimulatorTest, JumpIsRandom) {
  DiskSimulator disk;
  disk.AllocatePages(10);
  const size_t s = disk.OpenStream();
  disk.RecordRead(s, 1);
  disk.RecordRead(s, 7);
  EXPECT_EQ(disk.random_reads(), 2u);
}

TEST(DiskSimulatorTest, StreamsAreIndependent) {
  DiskSimulator disk;
  disk.AllocatePages(10);
  const size_t a = disk.OpenStream();
  const size_t b = disk.OpenStream();
  disk.RecordRead(a, 1);
  disk.RecordRead(b, 2);  // adjacent to a's page, but b's first read
  EXPECT_EQ(disk.random_reads(), 2u);
  disk.RecordRead(a, 2);  // still sequential for a
  EXPECT_EQ(disk.sequential_reads(), 1u);
}

TEST(DiskSimulatorTest, SimulatedTimeUsesConfig) {
  DiskConfig config;
  config.sequential_read_ms = 1.0;
  config.random_read_ms = 10.0;
  DiskSimulator disk(config);
  disk.AllocatePages(4);
  const size_t s = disk.OpenStream();
  disk.RecordRead(s, 0);  // random
  disk.RecordRead(s, 1);  // sequential
  disk.RecordRead(s, 2);  // sequential
  EXPECT_DOUBLE_EQ(disk.SimulatedIoSeconds(), (10.0 + 2.0) / 1000.0);
}

TEST(DiskSimulatorTest, ResetCountersClearsAndReseeks) {
  DiskSimulator disk;
  disk.AllocatePages(4);
  const size_t s = disk.OpenStream();
  disk.RecordRead(s, 0);
  disk.RecordRead(s, 1);
  disk.ResetCounters();
  EXPECT_EQ(disk.total_reads(), 0u);
  // After a reset the stream's first read counts as a seek again.
  disk.RecordRead(s, 2);
  EXPECT_EQ(disk.random_reads(), 1u);
}

TEST(DiskSimulatorTest, SingleHeadModeInterleavingDestroysLocality) {
  DiskConfig config;
  config.single_head = true;
  DiskSimulator disk(config);
  disk.AllocatePages(100);
  const size_t a = disk.OpenStream();
  const size_t b = disk.OpenStream();
  // Two interleaved forward scans: per-stream each is sequential, but
  // a single head bounces between them.
  disk.RecordRead(a, 0);
  disk.RecordRead(b, 50);
  disk.RecordRead(a, 1);
  disk.RecordRead(b, 51);
  EXPECT_EQ(disk.random_reads(), 4u);
  EXPECT_EQ(disk.sequential_reads(), 0u);

  // The same pattern with per-stream buffering: only the two initial
  // seeks are random.
  DiskSimulator buffered;
  buffered.AllocatePages(100);
  const size_t c = buffered.OpenStream();
  const size_t d = buffered.OpenStream();
  buffered.RecordRead(c, 0);
  buffered.RecordRead(d, 50);
  buffered.RecordRead(c, 1);
  buffered.RecordRead(d, 51);
  EXPECT_EQ(buffered.random_reads(), 2u);
  EXPECT_EQ(buffered.sequential_reads(), 2u);
}

TEST(DiskSimulatorTest, SingleHeadRereadIsFree) {
  DiskConfig config;
  config.single_head = true;
  DiskSimulator disk(config);
  disk.AllocatePages(10);
  const size_t s = disk.OpenStream();
  disk.RecordRead(s, 3);
  disk.RecordRead(s, 3);
  EXPECT_EQ(disk.total_reads(), 1u);
}

TEST(PagedFileTest, RoundTripsPageImages) {
  DiskSimulator disk;
  PagedFile file(&disk);
  std::vector<std::byte> image;
  PutScalar<double>(&image, 3.25);
  PutScalar<uint32_t>(&image, 77);
  const size_t page = file.AppendPage(image);
  EXPECT_EQ(page, 0u);
  EXPECT_EQ(file.num_pages(), 1u);

  const size_t s = disk.OpenStream();
  auto read = file.ReadPage(s, 0);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value().size(), image.size());
  EXPECT_EQ(GetScalar<double>(read.value(), 0), 3.25);
  EXPECT_EQ(GetScalar<uint32_t>(read.value(), sizeof(double)), 77u);
  EXPECT_EQ(disk.total_reads(), 1u);
}

TEST(PagedFileTest, ShortImagesKeepTheirLength) {
  DiskSimulator disk;
  PagedFile file(&disk);
  std::vector<std::byte> image = {std::byte{0xFF}};
  file.AppendPage(image);
  auto read = file.PeekPage(0);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read.value().size(), 1u);
  EXPECT_EQ(static_cast<uint8_t>(read.value()[0]), 0xFF);
}

TEST(PagedFileTest, CrossFileAdjacencyIsPhysicalAdjacency) {
  DiskSimulator disk;
  PagedFile a(&disk);
  std::vector<std::byte> img = {std::byte{1}};
  a.AppendPage(img);
  a.AppendPage(img);
  PagedFile b(&disk);
  b.AppendPage(img);
  const size_t s = disk.OpenStream();
  a.ReadPage(s, 1);  // global page 1 (random, first read)
  b.ReadPage(s, 0);  // global page 2 — adjacent globally, but that is
                     // genuinely how it would sit on disk: sequential.
  EXPECT_EQ(disk.sequential_reads(), 1u);
}

TEST(RowStoreTest, ReadRowMatchesDataset) {
  Dataset db = datagen::MakeUniform(300, 7, 5);
  DiskSimulator disk;
  RowStore rows(db, &disk);
  EXPECT_EQ(rows.size(), 300u);
  EXPECT_EQ(rows.dims(), 7u);
  // Frame overhead (length header + checksum) comes off the page.
  EXPECT_EQ(rows.rows_per_page(),
            (4096u - kPageFrameOverhead) / (7 * sizeof(Value)));

  const size_t s = rows.OpenStream();
  std::vector<Value> buf;
  for (PointId pid : {PointId{0}, PointId{150}, PointId{299}}) {
    auto row = rows.ReadRow(s, pid, &buf);
    ASSERT_TRUE(row.ok());
    ASSERT_EQ(row.value().size(), 7u);
    for (size_t dim = 0; dim < 7; ++dim) {
      EXPECT_EQ(row.value()[dim], db.at(pid, dim));
    }
  }
}

TEST(RowStoreTest, ForEachRowVisitsAllInOrderSequentially) {
  Dataset db = datagen::MakeUniform(500, 4, 6);
  DiskSimulator disk;
  RowStore rows(db, &disk);
  const size_t s = rows.OpenStream();
  PointId expected = 0;
  Status io = rows.ForEachRow(s, [&](PointId pid, std::span<const Value> p) {
    ASSERT_EQ(pid, expected++);
    for (size_t dim = 0; dim < 4; ++dim) {
      ASSERT_EQ(p[dim], db.at(pid, dim));
    }
  });
  EXPECT_TRUE(io.ok());
  EXPECT_EQ(expected, 500u);
  // One random seek to page 0, the rest sequential.
  EXPECT_EQ(disk.random_reads(), 1u);
  EXPECT_EQ(disk.total_reads(), rows.num_pages());
}

TEST(ColumnStoreTest, EntriesMatchInMemorySortedColumns) {
  Dataset db = datagen::MakeUniform(700, 5, 8);
  DiskSimulator disk;
  ColumnStore store(db, &disk);
  SortedColumns reference(db);
  EXPECT_EQ(store.dims(), 5u);
  EXPECT_EQ(store.column_size(), 700u);

  const size_t s = store.OpenStream();
  for (size_t dim = 0; dim < 5; ++dim) {
    for (size_t idx : {size_t{0}, size_t{341}, size_t{342}, size_t{699}}) {
      auto entry = store.ReadEntry(s, dim, idx);
      ASSERT_TRUE(entry.ok());
      EXPECT_EQ(entry.value(), reference.entry(dim, idx))
          << "dim=" << dim << " idx=" << idx;
    }
  }
}

TEST(ColumnStoreTest, LowerBoundMatchesInMemory) {
  Dataset db = datagen::MakeUniform(900, 3, 9);
  DiskSimulator disk;
  ColumnStore store(db, &disk);
  SortedColumns reference(db);
  Rng rng(123);
  for (int trial = 0; trial < 300; ++trial) {
    const size_t dim = trial % 3;
    const Value v = rng.Uniform(-0.05, 1.05);
    EXPECT_EQ(store.LowerBound(dim, v), reference.LowerBound(dim, v));
  }
}

TEST(ColumnStoreTest, SequentialEntryReadsShareAPage) {
  Dataset db = datagen::MakeUniform(1000, 2, 10);
  DiskSimulator disk;
  ColumnStore store(db, &disk);
  const size_t s = store.OpenStream();
  // Entries 0..340 live in one page: one physical read.
  for (size_t idx = 0; idx < store.entries_per_page(); ++idx) {
    store.ReadEntry(s, 0, idx);
  }
  EXPECT_EQ(disk.total_reads(), 1u);
  // Crossing into the next page adds one sequential read.
  store.ReadEntry(s, 0, store.entries_per_page());
  EXPECT_EQ(disk.total_reads(), 2u);
  EXPECT_EQ(disk.sequential_reads(), 1u);
}

}  // namespace
}  // namespace knmatch

#include "knmatch/core/ad_stream.h"

#include <gtest/gtest.h>

#include "knmatch/common/random.h"
#include "knmatch/core/ad_algorithm.h"
#include "knmatch/core/categorical.h"
#include "knmatch/core/nmatch_naive.h"
#include "knmatch/datagen/generators.h"

namespace knmatch {
namespace {

TEST(AdMatchStreamTest, PrefixEqualsKnMatch) {
  Dataset db = datagen::MakeUniform(400, 6, 81);
  SortedColumns columns(db);
  AdSearcher searcher(db);
  std::vector<Value> q(6, 0.37);

  AdMatchStream stream(columns, q, 3);
  auto batch = searcher.KnMatch(q, 3, 25);
  ASSERT_TRUE(batch.ok());
  for (const Neighbor& expected : batch.value().matches) {
    auto next = stream.Next();
    ASSERT_TRUE(next.has_value());
    EXPECT_EQ(*next, expected);
  }
  EXPECT_EQ(stream.yielded(), 25u);
}

TEST(AdMatchStreamTest, StoppingEarlyRetrievesKnMatchCost) {
  Dataset db = datagen::MakeUniform(500, 5, 82);
  SortedColumns columns(db);
  AdSearcher searcher(db);
  std::vector<Value> q(5, 0.61);

  AdMatchStream stream(columns, q, 2);
  for (int i = 0; i < 10; ++i) stream.Next();
  auto batch = searcher.KnMatch(q, 2, 10);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(stream.attributes_retrieved(),
            batch.value().attributes_retrieved);
}

TEST(AdMatchStreamTest, DrainsExactlyAllPoints) {
  Dataset db = datagen::MakeUniform(120, 4, 83);
  SortedColumns columns(db);
  std::vector<Value> q(4, 0.5);
  AdMatchStream stream(columns, q, 4);
  size_t count = 0;
  Value last = -1;
  while (auto next = stream.Next()) {
    EXPECT_GE(next->distance, last);
    last = next->distance;
    ++count;
  }
  EXPECT_EQ(count, 120u);
  // Draining the stream read every attribute exactly once.
  EXPECT_EQ(stream.attributes_retrieved(), 120u * 4u);
  // A drained stream stays drained.
  EXPECT_FALSE(stream.Next().has_value());
}

TEST(AdMatchStreamTest, QueryVectorNeedNotOutliveConstruction) {
  Dataset db = datagen::MakeUniform(100, 3, 84);
  SortedColumns columns(db);
  auto make_stream = [&columns]() {
    std::vector<Value> local_query = {0.2, 0.4, 0.6};  // dies at return
    return std::make_unique<AdMatchStream>(columns, local_query, 2);
  };
  auto stream = make_stream();
  auto first = stream->Next();
  ASSERT_TRUE(first.has_value());
  auto batch = KnMatchNaive(db, std::vector<Value>{0.2, 0.4, 0.6}, 2, 1);
  EXPECT_EQ(first->pid, batch.value().matches[0].pid);
}

TEST(WeightedAdTest, MatchesWeightedScan) {
  Dataset db = datagen::MakeUniform(300, 5, 85);
  AdSearcher searcher(db);
  Rng rng(86);
  std::vector<Value> q(5), w(5);
  for (Value& v : q) v = rng.Uniform01();
  for (Value& v : w) v = rng.Uniform(0.1, 5.0);

  MixedSchema schema;  // all numeric + weights == weighted n-match
  schema.weights = w;
  for (size_t n = 1; n <= 5; ++n) {
    auto ad = searcher.KnMatch(q, n, 8, w);
    auto scan = MixedKnMatch(db, q, schema, n, 8);
    ASSERT_TRUE(ad.ok());
    ASSERT_TRUE(scan.ok());
    ASSERT_EQ(ad.value().matches.size(), scan.value().matches.size());
    for (size_t i = 0; i < 8; ++i) {
      EXPECT_EQ(ad.value().matches[i].pid, scan.value().matches[i].pid)
          << "n=" << n << " i=" << i;
      EXPECT_NEAR(ad.value().matches[i].distance,
                  scan.value().matches[i].distance, 1e-12);
    }
  }
}

TEST(WeightedAdTest, FrequentWeightedMatchesScan) {
  Dataset db = datagen::MakeUniform(250, 6, 87);
  AdSearcher searcher(db);
  std::vector<Value> q(6, 0.44);
  std::vector<Value> w = {1, 2, 0.5, 3, 1.5, 0.25};
  MixedSchema schema;
  schema.weights = w;
  auto ad = searcher.FrequentKnMatch(q, 2, 5, 7, w);
  auto scan = MixedFrequentKnMatch(db, q, schema, 2, 5, 7);
  ASSERT_TRUE(ad.ok());
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(ad.value().matches, scan.value().matches);
  EXPECT_EQ(ad.value().frequencies, scan.value().frequencies);
}

TEST(WeightedAdTest, UnitWeightsEqualUnweighted) {
  Dataset db = datagen::MakeUniform(200, 4, 88);
  AdSearcher searcher(db);
  std::vector<Value> q(4, 0.3);
  std::vector<Value> ones(4, 1.0);
  auto weighted = searcher.KnMatch(q, 2, 6, ones);
  auto plain = searcher.KnMatch(q, 2, 6);
  ASSERT_TRUE(weighted.ok());
  EXPECT_EQ(weighted.value().matches, plain.value().matches);
  EXPECT_EQ(weighted.value().attributes_retrieved,
            plain.value().attributes_retrieved);
}

TEST(WeightedAdTest, RejectsBadWeights) {
  Dataset db = datagen::MakeUniform(50, 3, 89);
  AdSearcher searcher(db);
  std::vector<Value> q(3, 0.5);
  EXPECT_FALSE(searcher.KnMatch(q, 1, 1, std::vector<Value>{1, 2}).ok());
  EXPECT_FALSE(
      searcher.KnMatch(q, 1, 1, std::vector<Value>{1, 0, 2}).ok());
  EXPECT_FALSE(
      searcher.KnMatch(q, 1, 1, std::vector<Value>{1, -1, 2}).ok());
}

TEST(WeightedAdTest, WeightChangesWinner) {
  // Point A matches the query in dim 0 only; B in dim 1 only.
  // Up-weighting dim 0's differences pushes A's mismatch cost up.
  Dataset db(Matrix::FromRows({
      {0.50, 0.90},  // A: perfect in dim 0
      {0.90, 0.50},  // B: perfect in dim 1
  }));
  AdSearcher searcher(db);
  std::vector<Value> q = {0.5, 0.5};
  // 2-match difference (max of weighted diffs): A = w0*0 vs w1*0.4.
  auto heavy_dim0 = searcher.KnMatch(q, 2, 1, std::vector<Value>{10, 1});
  ASSERT_TRUE(heavy_dim0.ok());
  EXPECT_EQ(heavy_dim0.value().matches[0].pid, 0u);  // A: 0.4 < 4.0
  auto heavy_dim1 = searcher.KnMatch(q, 2, 1, std::vector<Value>{1, 10});
  ASSERT_TRUE(heavy_dim1.ok());
  EXPECT_EQ(heavy_dim1.value().matches[0].pid, 1u);
}

}  // namespace
}  // namespace knmatch

// Property-based sweep: on continuous random data (ties have
// probability zero) the AD algorithm must return byte-identical answers
// to the naive scan, for both query types, across cardinalities,
// dimensionalities, parameter ranges and data distributions — and its
// attribute-retrieval count must match the optimality characterization
// of Theorem 3.2.

#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "knmatch/common/random.h"
#include "knmatch/core/ad_algorithm.h"
#include "knmatch/core/nmatch.h"
#include "knmatch/core/nmatch_naive.h"
#include "knmatch/datagen/generators.h"

namespace knmatch {
namespace {

enum class Gen { kUniform, kSkewed, kCorrelated };

struct Params {
  size_t cardinality;
  size_t dims;
  Gen gen;
  uint64_t seed;
};

Dataset MakeData(const Params& p) {
  switch (p.gen) {
    case Gen::kUniform:
      return datagen::MakeUniform(p.cardinality, p.dims, p.seed);
    case Gen::kSkewed:
      return datagen::MakeSkewed(p.cardinality, p.dims, p.seed);
    case Gen::kCorrelated:
      return datagen::MakeCorrelated(p.cardinality, p.dims, p.seed);
  }
  return {};
}

class AdEquivalence : public ::testing::TestWithParam<Params> {};

TEST_P(AdEquivalence, KnMatchEqualsNaiveForAllNAndSeveralK) {
  const Params& p = GetParam();
  Dataset db = MakeData(p);
  AdSearcher searcher(db);
  Rng rng(p.seed ^ 0xABCDEF);
  std::vector<Value> q(p.dims);
  for (Value& v : q) v = rng.Uniform01();

  for (size_t n = 1; n <= p.dims; ++n) {
    for (const size_t k : {size_t{1}, size_t{5}, p.cardinality / 2}) {
      if (k == 0 || k > p.cardinality) continue;
      auto ad = searcher.KnMatch(q, n, k);
      auto naive = KnMatchNaive(db, q, n, k);
      ASSERT_TRUE(ad.ok());
      ASSERT_TRUE(naive.ok());
      ASSERT_EQ(ad.value().matches, naive.value().matches)
          << db.name() << " n=" << n << " k=" << k;
    }
  }
}

TEST_P(AdEquivalence, FrequentEqualsNaive) {
  const Params& p = GetParam();
  Dataset db = MakeData(p);
  AdSearcher searcher(db);
  Rng rng(p.seed ^ 0x123456);
  std::vector<Value> q(p.dims);
  for (Value& v : q) v = rng.Uniform01();

  const size_t k = std::min<size_t>(8, p.cardinality);
  const size_t n0 = 1 + p.dims / 4;
  const size_t n1 = p.dims;
  auto ad = searcher.FrequentKnMatch(q, n0, n1, k);
  auto naive = FrequentKnMatchNaive(db, q, n0, n1, k);
  ASSERT_TRUE(ad.ok());
  ASSERT_TRUE(naive.ok());
  ASSERT_EQ(ad.value().per_n_sets.size(), naive.value().per_n_sets.size());
  for (size_t i = 0; i < ad.value().per_n_sets.size(); ++i) {
    EXPECT_EQ(ad.value().per_n_sets[i], naive.value().per_n_sets[i])
        << db.name() << " n=" << (n0 + i);
  }
  EXPECT_EQ(ad.value().matches, naive.value().matches);
  EXPECT_EQ(ad.value().frequencies, naive.value().frequencies);
}

TEST_P(AdEquivalence, AttributeCountMatchesOptimalCharacterization) {
  // Theorem 3.2: every attribute whose difference to the query is
  // strictly below the final k-n-match difference epsilon must be
  // retrieved by any correct algorithm. The AD algorithm retrieves
  // those, the ones equal to epsilon it happens to pop, plus at most
  // one in-flight attribute per cursor direction (2d).
  const Params& p = GetParam();
  Dataset db = MakeData(p);
  AdSearcher searcher(db);
  Rng rng(p.seed ^ 0x777);
  std::vector<Value> q(p.dims);
  for (Value& v : q) v = rng.Uniform01();

  const size_t n = (p.dims + 1) / 2;
  const size_t k = std::min<size_t>(5, p.cardinality);
  auto ad = searcher.KnMatch(q, n, k);
  ASSERT_TRUE(ad.ok());
  const Value epsilon = ad.value().matches.back().distance;

  uint64_t below = 0, at_or_below = 0;
  for (PointId pid = 0; pid < db.size(); ++pid) {
    for (size_t dim = 0; dim < p.dims; ++dim) {
      const Value diff = std::abs(db.at(pid, dim) - q[dim]);
      if (diff < epsilon) ++below;
      if (diff <= epsilon) ++at_or_below;
    }
  }
  EXPECT_GE(ad.value().attributes_retrieved, below);
  EXPECT_LE(ad.value().attributes_retrieved, at_or_below + 2 * p.dims);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AdEquivalence,
    ::testing::Values(
        Params{1, 1, Gen::kUniform, 1}, Params{2, 1, Gen::kUniform, 2},
        Params{10, 2, Gen::kUniform, 3}, Params{50, 3, Gen::kUniform, 4},
        Params{100, 4, Gen::kUniform, 5}, Params{100, 8, Gen::kUniform, 6},
        Params{250, 16, Gen::kUniform, 7},
        Params{400, 5, Gen::kUniform, 8}, Params{64, 32, Gen::kUniform, 9},
        Params{100, 8, Gen::kSkewed, 10}, Params{250, 12, Gen::kSkewed, 11},
        Params{333, 6, Gen::kSkewed, 12},
        Params{100, 8, Gen::kCorrelated, 13},
        Params{200, 10, Gen::kCorrelated, 14},
        Params{77, 7, Gen::kCorrelated, 15}),
    [](const ::testing::TestParamInfo<Params>& info) {
      const char* gen = info.param.gen == Gen::kUniform      ? "uniform"
                        : info.param.gen == Gen::kSkewed     ? "skewed"
                                                             : "correlated";
      return std::string(gen) + "_c" +
             std::to_string(info.param.cardinality) + "_d" +
             std::to_string(info.param.dims);
    });

}  // namespace
}  // namespace knmatch

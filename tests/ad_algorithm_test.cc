#include "knmatch/core/ad_algorithm.h"

#include <gtest/gtest.h>

#include "knmatch/core/ad_engine.h"
#include "knmatch/core/nmatch.h"
#include "knmatch/core/nmatch_naive.h"
#include "knmatch/datagen/generators.h"
#include "paper_data.h"

namespace knmatch {
namespace {

using testing::Figure3Database;
using testing::Figure3Query;

TEST(AdSearcherTest, ValidatesParameters) {
  Dataset db = Figure3Database();
  AdSearcher searcher(db);
  auto q = Figure3Query();
  EXPECT_FALSE(searcher.KnMatch(q, 0, 1).ok());
  EXPECT_FALSE(searcher.KnMatch(q, 4, 1).ok());
  EXPECT_FALSE(searcher.KnMatch(q, 1, 0).ok());
  EXPECT_FALSE(searcher.KnMatch(q, 1, 6).ok());
  EXPECT_FALSE(searcher.FrequentKnMatch(q, 2, 1, 1).ok());
}

TEST(AdSearcherTest, MatchesNaiveOnFigure3) {
  // Figure 3's data contains exact ties (e.g., points 1 and 4 both have
  // 3-match difference 6.0), where the tie *order* is unspecified; the
  // returned difference sequence and the per-match differences must
  // still agree with the naive scan exactly.
  Dataset db = Figure3Database();
  AdSearcher searcher(db);
  auto q = Figure3Query();
  for (size_t n = 1; n <= 3; ++n) {
    for (size_t k = 1; k <= 5; ++k) {
      auto ad = searcher.KnMatch(q, n, k);
      auto naive = KnMatchNaive(db, q, n, k);
      ASSERT_TRUE(ad.ok());
      ASSERT_TRUE(naive.ok());
      ASSERT_EQ(ad.value().matches.size(), naive.value().matches.size());
      for (size_t i = 0; i < ad.value().matches.size(); ++i) {
        const Neighbor& nb = ad.value().matches[i];
        EXPECT_DOUBLE_EQ(nb.distance, naive.value().matches[i].distance)
            << "n=" << n << " k=" << k << " i=" << i;
        EXPECT_DOUBLE_EQ(nb.distance,
                         NMatchDifference(db.point(nb.pid), q, n));
      }
    }
  }
}

TEST(AdSearcherTest, QueryOutsideDataRange) {
  // All data in [0,1]; query far outside on both sides exercises the
  // exhausted-direction handling.
  Dataset db = datagen::MakeUniform(50, 4, 2);
  AdSearcher searcher(db);
  std::vector<Value> low(4, -5.0), high(4, 7.0);
  auto r_low = searcher.KnMatch(low, 2, 3);
  auto naive_low = KnMatchNaive(db, low, 2, 3);
  ASSERT_TRUE(r_low.ok());
  EXPECT_EQ(r_low.value().matches, naive_low.value().matches);

  auto r_high = searcher.KnMatch(high, 4, 5);
  auto naive_high = KnMatchNaive(db, high, 4, 5);
  ASSERT_TRUE(r_high.ok());
  EXPECT_EQ(r_high.value().matches, naive_high.value().matches);
}

TEST(AdSearcherTest, QueryEqualToDataValueConsumedOnce) {
  // The up cursor owns values equal to the query attribute; the answer
  // must still match the naive computation (no double counting).
  Dataset db(Matrix::FromRows({
      {0.5, 0.5},
      {0.5, 0.9},
      {0.1, 0.5},
  }));
  AdSearcher searcher(db);
  std::vector<Value> q = {0.5, 0.5};
  for (size_t n = 1; n <= 2; ++n) {
    auto ad = searcher.KnMatch(q, n, 3);
    auto naive = KnMatchNaive(db, q, n, 3);
    ASSERT_TRUE(ad.ok());
    // Distances must agree even if tie order differs.
    ASSERT_EQ(ad.value().matches.size(), naive.value().matches.size());
    for (size_t i = 0; i < ad.value().matches.size(); ++i) {
      EXPECT_DOUBLE_EQ(ad.value().matches[i].distance,
                       naive.value().matches[i].distance);
    }
  }
  auto one = searcher.KnMatch(q, 1, 1);
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one.value().matches[0].distance, 0.0);
}

TEST(AdSearcherTest, SinglePointDatabase) {
  Dataset db(Matrix::FromRows({{0.3, 0.6, 0.9}}));
  AdSearcher searcher(db);
  std::vector<Value> q = {0.0, 0.0, 0.0};
  auto r = searcher.KnMatch(q, 2, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().matches[0].pid, 0u);
  EXPECT_NEAR(r.value().matches[0].distance, 0.6, 1e-12);
}

TEST(AdSearcherTest, OneDimensionalDatabase) {
  Dataset db(Matrix::FromRows({{0.1}, {0.4}, {0.6}, {0.95}}));
  AdSearcher searcher(db);
  std::vector<Value> q = {0.5};
  auto r = searcher.KnMatch(q, 1, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().matches[0].pid, 1u);  // 0.4, diff 0.1
  EXPECT_EQ(r.value().matches[1].pid, 2u);  // 0.6, diff 0.1
}

TEST(AdSearcherTest, FrequentSingleNEqualsKnMatch) {
  Dataset db = datagen::MakeUniform(120, 6, 4);
  AdSearcher searcher(db);
  std::vector<Value> q(6, 0.42);
  auto frequent = searcher.FrequentKnMatch(q, 4, 4, 9);
  auto plain = searcher.KnMatch(q, 4, 9);
  ASSERT_TRUE(frequent.ok());
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(frequent.value().per_n_sets[0], plain.value().matches);
  EXPECT_EQ(frequent.value().attributes_retrieved,
            plain.value().attributes_retrieved);
}

TEST(AdSearcherTest, FrequentCostEqualsTerminalKnMatchCost) {
  // Theorem 3.3: FKNMatchAD retrieves exactly as many attributes as a
  // k-n1-match search.
  Dataset db = datagen::MakeUniform(300, 8, 12);
  AdSearcher searcher(db);
  std::vector<Value> q(8, 0.77);
  auto frequent = searcher.FrequentKnMatch(q, 2, 6, 5);
  auto terminal = searcher.KnMatch(q, 6, 5);
  ASSERT_TRUE(frequent.ok());
  ASSERT_TRUE(terminal.ok());
  EXPECT_EQ(frequent.value().attributes_retrieved,
            terminal.value().attributes_retrieved);
}

TEST(AdSearcherTest, RetrievesFarFewerAttributesThanScanOnSelectiveQuery) {
  Dataset db = datagen::MakeUniform(2000, 16, 33);
  AdSearcher searcher(db);
  std::vector<Value> q(db.point(17).begin(), db.point(17).end());
  auto r = searcher.KnMatch(q, 4, 10);
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r.value().attributes_retrieved,
            static_cast<uint64_t>(db.size()) * db.dims() / 2);
}

// A column source with ragged columns: some points lack a value in some
// dimensions (missing attributes / heterogeneous systems), so a column
// may hold fewer than `column_size()` entries. Exercises the optional
// `column_length` accessor extension and the graceful-exhaustion path
// in RunAdSearch: with k close to the cardinality and n1 = d, the
// columns run dry before k points complete n1 appearances, and the
// partial answer sets must come back instead of the release-mode UB the
// old unconditional `assert(pop.has_value())` left behind.
class RaggedColumnAccessor {
 public:
  // columns[dim] must be sorted by (value, pid); `cardinality` is the
  // total number of points (some absent from some columns).
  RaggedColumnAccessor(std::vector<std::vector<ColumnEntry>> columns,
                       size_t cardinality)
      : columns_(std::move(columns)), cardinality_(cardinality) {}

  size_t dims() const { return columns_.size(); }
  size_t column_size() const { return cardinality_; }
  size_t column_length(size_t dim) const { return columns_[dim].size(); }
  ColumnEntry ReadEntry(size_t dim, size_t idx, uint32_t /*slot*/) const {
    return columns_[dim][idx];
  }
  size_t LocateLowerBound(size_t dim, Value v) const {
    const auto& col = columns_[dim];
    size_t lo = 0;
    while (lo < col.size() && col[lo].value < v) ++lo;
    return lo;
  }

 private:
  std::vector<std::vector<ColumnEntry>> columns_;
  size_t cardinality_;
};

TEST(RunAdSearchTest, ExhaustedRaggedColumnsReturnPartialAnswerSets) {
  // 4 points, 3 dims; point 3 is missing from dimensions 1 and 2, and
  // point 2 is missing from dimension 2. Only points 0 and 1 can ever
  // complete 3 appearances, so a k=4, n1=3 search must exhaust and
  // return 2 terminal matches instead of crashing. All values are
  // dyadic so every difference is exact and the expected pop order can
  // be derived by hand.
  std::vector<std::vector<ColumnEntry>> columns(3);
  columns[0] = {{0.125, 0}, {0.25, 1}, {0.375, 2}, {0.5, 3}};
  columns[1] = {{0.125, 0}, {0.3125, 1}, {0.625, 2}};
  columns[2] = {{0.1875, 0}, {0.375, 1}};
  RaggedColumnAccessor acc(columns, /*cardinality=*/4);

  const std::vector<Value> query = {0.25, 0.25, 0.25};
  internal::AdOutput out =
      internal::RunAdSearch(acc, query, /*n0=*/1, /*n1=*/3, /*k=*/4);

  // Every attribute that exists was consumed (9 of the 12 a full
  // 4-point, 3-dim source would have).
  EXPECT_EQ(out.attributes_retrieved, 9u);
  ASSERT_EQ(out.per_n_sets.size(), 3u);
  // 1-matches: every point with at least one attribute appears once.
  EXPECT_EQ(out.per_n_sets[0].size(), 4u);
  // 2-matches: point 3 has a single attribute and cannot appear.
  EXPECT_EQ(out.per_n_sets[1].size(), 3u);
  // 3-matches (terminal): only points 0 and 1 exist in all columns.
  ASSERT_EQ(out.per_n_sets[2].size(), 2u);
  EXPECT_EQ(out.per_n_sets[2][0].pid, 0u);
  EXPECT_EQ(out.per_n_sets[2][1].pid, 1u);
}

TEST(RunAdSearchTest, RaggedColumnsWithEnoughMatchesStillComplete) {
  // Same source, but k=2, n1=3 is satisfiable: the search terminates
  // normally with the two fully-present points.
  std::vector<std::vector<ColumnEntry>> columns(3);
  columns[0] = {{0.125, 0}, {0.25, 1}, {0.375, 2}, {0.5, 3}};
  columns[1] = {{0.125, 0}, {0.3125, 1}, {0.625, 2}};
  columns[2] = {{0.1875, 0}, {0.375, 1}};
  RaggedColumnAccessor acc(columns, /*cardinality=*/4);

  const std::vector<Value> query = {0.25, 0.25, 0.25};
  internal::AdOutput out =
      internal::RunAdSearch(acc, query, /*n0=*/3, /*n1=*/3, /*k=*/2);
  ASSERT_EQ(out.per_n_sets.size(), 1u);
  ASSERT_EQ(out.per_n_sets[0].size(), 2u);
  EXPECT_EQ(out.per_n_sets[0][0].pid, 0u);
  EXPECT_EQ(out.per_n_sets[0][1].pid, 1u);
}

}  // namespace
}  // namespace knmatch

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "knmatch/common/random.h"
#include "knmatch/core/nmatch.h"
#include "knmatch/core/nmatch_join.h"
#include "knmatch/core/nmatch_naive.h"
#include "knmatch/datagen/generators.h"
#include "knmatch/core/ad_algorithm.h"
#include "knmatch/eval/selectivity.h"

namespace knmatch {
namespace {

TEST(SelectivityTest, MatchProbabilityIsACdfDifference) {
  Dataset db = datagen::MakeUniform(20000, 1, 300);
  eval::SelectivityEstimator est(db, 64);
  // Uniform on [0,1]: P[|X - 0.5| <= eps] ~ 2 eps.
  for (const double eps : {0.05, 0.1, 0.2}) {
    EXPECT_NEAR(est.MatchProbability(0, 0.5, eps), 2 * eps, 0.02);
  }
  // At the border only one side contributes.
  EXPECT_NEAR(est.MatchProbability(0, 0.0, 0.1), 0.1, 0.02);
  // Covering everything.
  EXPECT_NEAR(est.MatchProbability(0, 0.5, 2.0), 1.0, 1e-9);
}

TEST(SelectivityTest, SelectivityMatchesEmpiricalCountOnUniform) {
  Dataset db = datagen::MakeUniform(5000, 6, 301);
  eval::SelectivityEstimator est(db, 64);
  std::vector<Value> q(6, 0.5);
  for (const size_t n : {size_t{2}, size_t{4}, size_t{6}}) {
    const Value eps = 0.15;
    // Empirical fraction.
    size_t qualifying = 0;
    for (PointId pid = 0; pid < db.size(); ++pid) {
      if (NMatchDifference(db.point(pid), q, n) <= eps) ++qualifying;
    }
    const double empirical =
        static_cast<double>(qualifying) / static_cast<double>(db.size());
    const double estimated = est.NMatchSelectivity(q, n, eps);
    EXPECT_NEAR(estimated, empirical, 0.05) << "n=" << n;
  }
}

TEST(SelectivityTest, EstimatedDifferenceNearTrueKthDifference) {
  Dataset db = datagen::MakeUniform(4000, 8, 302);
  eval::SelectivityEstimator est(db, 64);
  std::vector<Value> q(8, 0.4);
  const size_t n = 4, k = 20;
  auto truth = KnMatchNaive(db, q, n, k);
  ASSERT_TRUE(truth.ok());
  const Value true_eps = truth.value().matches.back().distance;
  const Value estimated = est.EstimateKnMatchDifference(q, n, k);
  // Independence holds on uniform data, so the estimate is tight.
  EXPECT_NEAR(estimated, true_eps, 0.35 * true_eps + 0.01);
}

TEST(SelectivityTest, AttributeFractionTracksMeasuredAdCost) {
  Dataset db = datagen::MakeUniform(4000, 8, 303);
  eval::SelectivityEstimator est(db, 64);
  AdSearcher searcher(db);
  std::vector<Value> q(8, 0.6);
  const size_t n = 4, k = 20;
  auto measured = searcher.KnMatch(q, n, k);
  ASSERT_TRUE(measured.ok());
  const double measured_fraction =
      static_cast<double>(measured.value().attributes_retrieved) /
      (static_cast<double>(db.size()) * 8);
  const double estimated = est.EstimateAdAttributeFraction(q, n, k);
  EXPECT_NEAR(estimated, measured_fraction,
              0.5 * measured_fraction + 0.01);
}

TEST(SelectivityTest, TailMonotoneInEpsAndN) {
  Dataset db = datagen::MakeSkewed(3000, 5, 304);
  eval::SelectivityEstimator est(db, 32);
  std::vector<Value> q(5, 0.3);
  double prev = 0;
  for (const double eps : {0.01, 0.05, 0.1, 0.3, 0.8}) {
    const double sel = est.NMatchSelectivity(q, 3, eps);
    EXPECT_GE(sel, prev - 1e-12);
    prev = sel;
  }
  // Larger n -> stricter -> smaller selectivity.
  EXPECT_GE(est.NMatchSelectivity(q, 1, 0.1),
            est.NMatchSelectivity(q, 3, 0.1));
  EXPECT_GE(est.NMatchSelectivity(q, 3, 0.1),
            est.NMatchSelectivity(q, 5, 0.1));
}

std::vector<JoinPair> BruteForceJoin(const Dataset& db, size_t n,
                                     Value eps) {
  std::vector<JoinPair> pairs;
  for (PointId a = 0; a < db.size(); ++a) {
    for (PointId b = a + 1; b < db.size(); ++b) {
      if (NMatchDifference(db.point(a), db.point(b), n) <= eps) {
        pairs.push_back(JoinPair{a, b});
      }
    }
  }
  return pairs;
}

TEST(NMatchJoinTest, MatchesBruteForce) {
  Dataset db = datagen::MakeUniform(200, 4, 305);
  for (const size_t n : {size_t{1}, size_t{2}, size_t{4}}) {
    for (const Value eps : {Value{0.02}, Value{0.1}}) {
      auto join = NMatchSelfJoin(db, n, eps);
      ASSERT_TRUE(join.ok());
      EXPECT_EQ(join.value(), BruteForceJoin(db, n, eps))
          << "n=" << n << " eps=" << eps;
    }
  }
}

TEST(NMatchJoinTest, ClusteredDataJoinsWithinClusters) {
  datagen::ClusteredSpec spec;
  spec.cardinality = 120;
  spec.dims = 6;
  spec.num_classes = 3;
  spec.cluster_sigma = 0.01;
  spec.noise_dim_fraction = 0;
  spec.outlier_prob = 0;
  spec.seed = 306;
  Dataset db = datagen::MakeClustered(spec);
  auto join = NMatchSelfJoin(db, 6, 0.08);
  ASSERT_TRUE(join.ok());
  EXPECT_GT(join.value().size(), 100u);  // dense within-cluster pairs
  for (const JoinPair& pair : join.value()) {
    EXPECT_EQ(db.label(pair.a), db.label(pair.b))
        << pair.a << "," << pair.b;
  }
}

TEST(NMatchJoinTest, EpsilonZeroFindsDuplicates) {
  Dataset db(Matrix::FromRows({
      {0.1, 0.2},
      {0.1, 0.2},
      {0.3, 0.2},
  }));
  auto join = NMatchSelfJoin(db, 2, 0.0);
  ASSERT_TRUE(join.ok());
  EXPECT_EQ(join.value(), (std::vector<JoinPair>{{0, 1}}));
  // n = 1 at eps 0: pairs sharing any exact coordinate.
  auto loose = NMatchSelfJoin(db, 1, 0.0);
  EXPECT_EQ(loose.value(),
            (std::vector<JoinPair>{{0, 1}, {0, 2}, {1, 2}}));
}

TEST(NMatchJoinTest, ValidatesParameters) {
  Dataset db = datagen::MakeUniform(10, 3, 307);
  EXPECT_FALSE(NMatchSelfJoin(db, 0, 0.1).ok());
  EXPECT_FALSE(NMatchSelfJoin(db, 4, 0.1).ok());
  EXPECT_FALSE(NMatchSelfJoin(db, 2, -0.5).ok());
  Dataset empty;
  EXPECT_FALSE(NMatchSelfJoin(empty, 1, 0.1).ok());
}

}  // namespace
}  // namespace knmatch

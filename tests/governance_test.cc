// In-flight query governance: deadlines, cooperative cancellation,
// resource budgets, overload shedding, and the circuit breakers behind
// kAuto routing. The Governance* suites also run under ASan/TSan (see
// scripts/check_asan.sh, check_tsan.sh).

#include <atomic>
#include <chrono>
#include <memory>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "knmatch.h"
#include "status_matchers.h"

namespace knmatch {
namespace {

using exec::CircuitBreaker;
using DiskMethod = SimilarityEngine::DiskMethod;

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// ---------------------------------------------------------------------------
// The 50k x 32 acceptance rig: every method must honour a 1 ms deadline
// and hand back a typed partial result within 10 ms of wall clock.

struct BigRig {
  SimilarityEngine engine;
  std::unique_ptr<DiskSimulator> disk;
  std::unique_ptr<BTreeColumns> btree_columns;
  std::vector<Value> query;

  BigRig() : engine(datagen::MakeUniform(50000, 32, 99)) {
    engine.DiskStorageStats();  // build the disk stores up front
    disk = std::make_unique<DiskSimulator>(DiskConfig());
    btree_columns =
        std::make_unique<BTreeColumns>(engine.dataset(), disk.get());
    query.assign(32, 0.5);
    // Warm every lazy structure with an ungoverned query so the timed
    // runs below measure the query, not index construction.
    (void)engine.FrequentKnMatch(query, 1, 2, 5);
    for (DiskMethod m :
         {DiskMethod::kScan, DiskMethod::kAd, DiskMethod::kVaFile}) {
      (void)engine.DiskFrequentKnMatch(query, 1, 2, 5, m);
    }
    (void)BTreeAdSearcher(*btree_columns).FrequentKnMatch(query, 1, 2, 5);
  }
};

BigRig& Rig() {
  static BigRig* rig = new BigRig();
  return *rig;
}

// The workload every method needs well over 1 ms for: the full n-range
// forces ~cardinality * dims attribute retrievals out of the AD
// methods, and the scan-shaped methods always pay c * d.
constexpr size_t kBigN0 = 1, kBigN1 = 32, kBigK = 100;

void ExpectDeadlineTrip(const Status& status, const QueryContext& ctx,
                        double elapsed_ms) {
  EXPECT_TRUE(StatusIs(status, StatusCode::kDeadlineExceeded));
  EXPECT_LT(elapsed_ms, 10.0) << "trip took too long to unwind";
  EXPECT_GT(ctx.trip().attributes_retrieved, 0u)
      << "a tripped query reports the progress it paid for";
}

TEST(GovernanceDeadlineTest, MemoryAdTripsWithinTenMilliseconds) {
  BigRig& rig = Rig();
  QueryContext ctx;
  ctx.set_deadline_in_ms(1.0);
  const auto start = std::chrono::steady_clock::now();
  auto r = rig.engine.FrequentKnMatch(rig.query, kBigN0, kBigN1, kBigK, {},
                                      &ctx);
  ExpectDeadlineTrip(r.status(), ctx, ElapsedMs(start));
  EXPECT_GT(ctx.trip().pops, 0u);
  EXPECT_EQ(ctx.trip().partial_per_n_sets.size(), kBigN1 - kBigN0 + 1);
}

TEST(GovernanceDeadlineTest, DiskAdTripsWithinTenMilliseconds) {
  BigRig& rig = Rig();
  QueryContext ctx;
  ctx.set_deadline_in_ms(1.0);
  const auto start = std::chrono::steady_clock::now();
  auto r = rig.engine.DiskFrequentKnMatch(rig.query, kBigN0, kBigN1, kBigK,
                                          DiskMethod::kAd, &ctx);
  ExpectDeadlineTrip(r.status(), ctx, ElapsedMs(start));
  EXPECT_GT(ctx.trip().pages_read, 0u);
}

TEST(GovernanceDeadlineTest, ScanTripsWithinTenMilliseconds) {
  BigRig& rig = Rig();
  QueryContext ctx;
  ctx.set_deadline_in_ms(1.0);
  const auto start = std::chrono::steady_clock::now();
  auto r = rig.engine.DiskFrequentKnMatch(rig.query, kBigN0, kBigN1, kBigK,
                                          DiskMethod::kScan, &ctx);
  ExpectDeadlineTrip(r.status(), ctx, ElapsedMs(start));
  // The scan snapshots its running top-k accumulators on the way out.
  EXPECT_EQ(ctx.trip().partial_per_n_sets.size(), kBigN1 - kBigN0 + 1);
  EXPECT_FALSE(ctx.trip().partial_per_n_sets[0].empty());
}

TEST(GovernanceDeadlineTest, VaFileTripsWithinTenMilliseconds) {
  BigRig& rig = Rig();
  QueryContext ctx;
  ctx.set_deadline_in_ms(1.0);
  const auto start = std::chrono::steady_clock::now();
  auto r = rig.engine.DiskFrequentKnMatch(rig.query, kBigN0, kBigN1, kBigK,
                                          DiskMethod::kVaFile, &ctx);
  ExpectDeadlineTrip(r.status(), ctx, ElapsedMs(start));
}

TEST(GovernanceDeadlineTest, BTreeAdTripsWithinTenMilliseconds) {
  BigRig& rig = Rig();
  BTreeAdSearcher searcher(*rig.btree_columns);
  QueryContext ctx;
  ctx.set_deadline_in_ms(1.0);
  const auto start = std::chrono::steady_clock::now();
  auto r = searcher.FrequentKnMatch(rig.query, kBigN0, kBigN1, kBigK, &ctx);
  ExpectDeadlineTrip(r.status(), ctx, ElapsedMs(start));
}

TEST(GovernanceDeadlineTest, AutoRoutedTripNeverFallsBack) {
  BigRig& rig = Rig();
  QueryContext ctx;
  ctx.set_deadline_in_ms(1.0);
  auto r = rig.engine.DiskFrequentKnMatch(rig.query, kBigN0, kBigN1, kBigK,
                                          DiskMethod::kAuto, &ctx);
  EXPECT_TRUE(StatusIs(r.status(), StatusCode::kDeadlineExceeded));
  // The retry-amplification guard: a query that ran out of deadline is
  // surfaced, never re-run on a fallback method.
  EXPECT_TRUE(rig.engine.last_disk_fallback().empty());
}

TEST(GovernanceDeadlineTest, EngineIsReusableAfterATrip) {
  BigRig& rig = Rig();
  QueryContext ctx;
  ctx.set_deadline_in_ms(1.0);
  ASSERT_FALSE(
      rig.engine
          .FrequentKnMatch(rig.query, kBigN0, kBigN1, kBigK, {}, &ctx)
          .ok());
  // Same engine, small untripped query: answers as if nothing happened.
  auto clean = rig.engine.FrequentKnMatch(rig.query, 1, 2, 5);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_EQ(clean.value().matches.size(), 5u);
}

// ---------------------------------------------------------------------------
// Budgets and cancellation on a small dataset.

TEST(GovernanceBudgetTest, AttributeBudgetTripsResourceExhausted) {
  SimilarityEngine engine(datagen::MakeUniform(2000, 8, 11));
  std::vector<Value> q(8, 0.4);
  QueryContext ctx;
  ctx.budgets().max_attributes = 512;
  auto r = engine.FrequentKnMatch(q, 1, 8, 50, {}, &ctx);
  EXPECT_TRUE(StatusIs(r.status(), StatusCode::kResourceExhausted));
  EXPECT_GT(ctx.trip().attributes_retrieved, 512u);
}

TEST(GovernanceBudgetTest, PageBudgetTripsOnDiskMethod) {
  SimilarityEngine engine(datagen::MakeUniform(5000, 8, 12));
  std::vector<Value> q(8, 0.4);
  QueryContext ctx;
  ctx.budgets().max_pages = 2;
  auto r = engine.DiskFrequentKnMatch(q, 1, 8, 50, DiskMethod::kScan, &ctx);
  EXPECT_TRUE(StatusIs(r.status(), StatusCode::kResourceExhausted));
  EXPECT_GT(ctx.trip().pages_read, 2u);
}

TEST(GovernanceBudgetTest, ScratchBudgetRefusesAtAdmission) {
  SimilarityEngine engine(datagen::MakeUniform(2000, 8, 13));
  std::vector<Value> q(8, 0.4);
  QueryContext ctx;
  ctx.budgets().max_scratch_bytes = 16;  // far below any real footprint
  auto r = engine.FrequentKnMatch(q, 1, 8, 10, {}, &ctx);
  EXPECT_TRUE(StatusIs(r.status(), StatusCode::kResourceExhausted));
  // Refused before any work happened.
  EXPECT_EQ(ctx.trip().attributes_retrieved, 0u);
  EXPECT_EQ(ctx.trip().pops, 0u);
}

TEST(GovernanceBudgetTest, PreSetCancelTripsUnavailable) {
  SimilarityEngine engine(datagen::MakeUniform(2000, 8, 14));
  std::vector<Value> q(8, 0.4);
  QueryContext ctx;
  auto cancel = std::make_shared<std::atomic<bool>>(true);
  ctx.set_cancel(cancel);
  auto r = engine.FrequentKnMatch(q, 1, 8, 50, {}, &ctx);
  EXPECT_TRUE(StatusIs(r.status(), StatusCode::kUnavailable));
}

TEST(GovernanceBudgetTest, KnnScanBaselineHonoursBudgets) {
  Dataset db = datagen::MakeUniform(5000, 8, 15);
  std::vector<Value> q(8, 0.4);
  QueryContext ctx;
  ctx.budgets().max_attributes = 4096;
  auto r = KnnScan(db, q, 10, Metric::kEuclidean, &ctx);
  EXPECT_TRUE(StatusIs(r.status(), StatusCode::kResourceExhausted));
  ASSERT_EQ(ctx.trip().partial_per_n_sets.size(), 1u);
  EXPECT_FALSE(ctx.trip().partial_per_n_sets[0].empty());
}

TEST(GovernanceBudgetTest, RearmClearsTheTripAndReusesTheContext) {
  SimilarityEngine engine(datagen::MakeUniform(2000, 8, 16));
  std::vector<Value> q(8, 0.4);
  QueryContext ctx;
  ctx.budgets().max_attributes = 512;
  ASSERT_FALSE(engine.FrequentKnMatch(q, 1, 8, 50, {}, &ctx).ok());
  ASSERT_TRUE(ctx.tripped());
  ctx.Rearm();
  EXPECT_FALSE(ctx.tripped());
  ctx.budgets().max_attributes = 0;  // lift the budget: query completes
  auto r = engine.FrequentKnMatch(q, 1, 8, 50, {}, &ctx);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
}

// ---------------------------------------------------------------------------
// Untripped governed queries are bit-identical to ungoverned runs.

TEST(GovernanceIdentityTest, GenerousLimitsChangeNothing) {
  SimilarityEngine engine(datagen::MakeUniform(3000, 6, 21));
  std::vector<Value> q = {0.2, 0.8, 0.4, 0.6, 0.1, 0.9};

  auto plain = engine.FrequentKnMatch(q, 1, 6, 20);
  ASSERT_TRUE(plain.ok());

  QueryContext ctx;
  ctx.set_deadline_in_ms(1e9);
  ctx.budgets().max_attributes = ~uint64_t{0} >> 1;
  ctx.budgets().max_pages = ~uint64_t{0} >> 1;
  ctx.set_cancel(std::make_shared<std::atomic<bool>>(false));
  auto governed = engine.FrequentKnMatch(q, 1, 6, 20, {}, &ctx);
  ASSERT_TRUE(governed.ok()) << governed.status().ToString();

  EXPECT_EQ(governed.value().per_n_sets, plain.value().per_n_sets);
  EXPECT_EQ(governed.value().matches, plain.value().matches);
  EXPECT_EQ(governed.value().attributes_retrieved,
            plain.value().attributes_retrieved);

  for (DiskMethod m :
       {DiskMethod::kScan, DiskMethod::kAd, DiskMethod::kVaFile}) {
    ctx.Rearm();
    auto disk_plain = engine.DiskFrequentKnMatch(q, 1, 6, 20, m);
    auto disk_governed = engine.DiskFrequentKnMatch(q, 1, 6, 20, m, &ctx);
    ASSERT_TRUE(disk_plain.ok());
    ASSERT_TRUE(disk_governed.ok()) << disk_governed.status().ToString();
    EXPECT_EQ(disk_governed.value().per_n_sets,
              disk_plain.value().per_n_sets);
    EXPECT_EQ(disk_governed.value().matches, disk_plain.value().matches);
  }
}

// ---------------------------------------------------------------------------
// Observability: the governance metrics equal the engine's own story.

TEST(GovernanceObsTest, TripCountersAndCostsMatchTheEngine) {
  SimilarityEngine engine(datagen::MakeUniform(5000, 8, 31));
  std::vector<Value> q(8, 0.3);

  obs::Counter* trips = obs::Cat().governance_trip_attributes;
  obs::Counter* attrs = obs::Cat().attrs_scan;
  const uint64_t trips_before = trips->Value();
  const uint64_t attrs_before = attrs->Value();

  QueryContext ctx;
  ctx.budgets().max_attributes = 4096;
  auto r = engine.DiskFrequentKnMatch(q, 1, 8, 20, DiskMethod::kScan, &ctx);
  ASSERT_TRUE(StatusIs(r.status(), StatusCode::kResourceExhausted));

  EXPECT_EQ(trips->Value() - trips_before, 1u);
  // The scan charged exactly the attributes the trip record reports.
  EXPECT_EQ(attrs->Value() - attrs_before, ctx.trip().attributes_retrieved);
}

TEST(GovernanceObsTest, DeadlineFractionHistogramObservesGovernedQueries) {
  SimilarityEngine engine(datagen::MakeUniform(1000, 4, 32));
  std::vector<Value> q(4, 0.5);
  const uint64_t before = obs::Cat().deadline_fraction->Snapshot().count;
  QueryContext ctx;
  ctx.set_deadline_in_ms(1e6);
  ASSERT_TRUE(engine.FrequentKnMatch(q, 1, 4, 5, {}, &ctx).ok());
  EXPECT_EQ(obs::Cat().deadline_fraction->Snapshot().count, before + 1);
}

// ---------------------------------------------------------------------------
// Batch admission control and shedding.

TEST(GovernanceBatchTest, QueueDepthCapShedsTheTailDeterministically) {
  SimilarityEngine engine(datagen::MakeUniform(500, 3, 41));
  exec::BatchRequest request;
  for (int i = 0; i < 8; ++i) {
    request.queries.push_back({0.1 * i, 0.4, 0.6});
  }
  request.options.threads = 2;
  request.options.allow_oversubscription = true;

  auto unbounded = engine.KnMatchBatch(request, 2, 5);
  ASSERT_TRUE(unbounded.ok());

  request.options.max_queue_depth = 4;
  auto capped = engine.KnMatchBatch(request, 2, 5);
  ASSERT_TRUE(capped.ok());
  for (size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(capped.value().statuses[i].ok());
    EXPECT_EQ(capped.value().results[i].matches,
              unbounded.value().results[i].matches);
  }
  for (size_t i = 4; i < 8; ++i) {
    EXPECT_TRUE(StatusIs(capped.value().statuses[i],
                         StatusCode::kResourceExhausted));
    EXPECT_TRUE(capped.value().results[i].matches.empty());
  }
}

TEST(GovernanceBatchTest, AttributePoolShedsOnceDrained) {
  SimilarityEngine engine(datagen::MakeUniform(500, 4, 42));
  exec::BatchRequest request;
  for (int i = 0; i < 6; ++i) {
    request.queries.push_back({0.1 * i, 0.4, 0.6, 0.2});
  }
  request.options.threads = 1;  // sequential, so the drain is ordered

  auto unbounded = engine.FrequentKnMatchBatch(request, 1, 4, 10);
  ASSERT_TRUE(unbounded.ok());
  const uint64_t per_query =
      unbounded.value().results[0].attributes_retrieved;
  ASSERT_GT(per_query, 0u);

  // Room for roughly two queries; the rest must shed.
  request.options.attribute_pool = per_query * 2;
  auto pooled = engine.FrequentKnMatchBatch(request, 1, 4, 10);
  ASSERT_TRUE(pooled.ok());
  size_t ok = 0, shed = 0;
  for (size_t i = 0; i < pooled.value().statuses.size(); ++i) {
    if (pooled.value().statuses[i].ok()) {
      ++ok;
      EXPECT_EQ(pooled.value().results[i].per_n_sets,
                unbounded.value().results[i].per_n_sets);
    } else {
      ++shed;
      EXPECT_TRUE(StatusIs(pooled.value().statuses[i],
                           StatusCode::kResourceExhausted));
    }
  }
  EXPECT_GE(ok, 2u);
  EXPECT_GE(shed, 1u);
}

TEST(GovernanceBatchTest, PerQueryBudgetsTripInFlight) {
  SimilarityEngine engine(datagen::MakeUniform(800, 4, 43));
  exec::BatchRequest request;
  for (int i = 0; i < 4; ++i) {
    request.queries.push_back({0.1 * i, 0.4, 0.6, 0.2});
  }
  request.options.threads = 2;
  request.options.allow_oversubscription = true;
  request.options.budgets.max_attributes = 1;

  auto r = engine.FrequentKnMatchBatch(request, 1, 4, 50);
  ASSERT_TRUE(r.ok());
  for (const Status& s : r.value().statuses) {
    EXPECT_TRUE(StatusIs(s, StatusCode::kResourceExhausted));
  }
}

TEST(GovernanceBatchTest, PredictiveSheddingIsIdleUnderAGenerousDeadline) {
  SimilarityEngine engine(datagen::MakeUniform(500, 3, 44));
  exec::BatchRequest request;
  for (int i = 0; i < 6; ++i) {
    request.queries.push_back({0.1 * i, 0.4, 0.6});
  }
  request.options.threads = 2;
  request.options.allow_oversubscription = true;
  request.options.deadline_ms = 1e9;
  request.options.predictive_shedding = true;

  auto r = engine.KnMatchBatch(request, 2, 5);
  ASSERT_TRUE(r.ok());
  for (const Status& s : r.value().statuses) {
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
}

// ---------------------------------------------------------------------------
// Circuit breaker: unit transitions, then engine integration.

TEST(GovernanceBreakerTest, OpensHalfOpensAndRecovers) {
  CircuitBreaker::Options options;
  options.window = 8;
  options.min_samples = 4;
  options.trip_ratio = 0.5;
  options.cooldown = 3;
  CircuitBreaker breaker(options);

  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(breaker.Allow());
    breaker.RecordFailure();
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  // Refusals while open count toward the cooldown; the call that
  // exhausts it admits one probe.
  EXPECT_FALSE(breaker.Allow());
  EXPECT_FALSE(breaker.Allow());
  EXPECT_TRUE(breaker.Allow());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.Allow()) << "one probe at a time";

  // Probe fails: straight back to open, cooldown restarts.
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.Allow());
  EXPECT_FALSE(breaker.Allow());
  EXPECT_TRUE(breaker.Allow());

  // Probe succeeds: closed, with a fresh window.
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(breaker.Allow());
    breaker.RecordFailure();
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed)
      << "the pre-outage window was cleared; 3 < min_samples";
}

TEST(GovernanceBreakerTest, MixedOutcomesBelowRatioStayClosed) {
  CircuitBreaker breaker;  // defaults: window 16, min 8, ratio 0.5
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(breaker.Allow());
    if (i % 3 == 0) {
      breaker.RecordFailure();  // 1/3 failure rate < 0.5
    } else {
      breaker.RecordSuccess();
    }
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(GovernanceBreakerTest, EngineStopsRoutingToAFailingDiskAndRecovers) {
  SimilarityEngine engine(datagen::MakeUniform(500, 3, 51));
  std::vector<Value> q = {0.3, 0.5, 0.7};
  FaultInjector injector(
      FaultInjector::Config{.seed = 5, .transient_error_rate = 1.0});
  engine.SetFaultInjector(&injector);

  const uint64_t skipped_before = obs::Cat().breaker_skipped->Value();

  // Every disk read fails, so each kAuto query walks the whole chain to
  // the in-memory terminal and feeds one failure to every breaker.
  for (int i = 0; i < 12; ++i) {
    auto r = engine.DiskFrequentKnMatch(q, 1, 3, 5, DiskMethod::kAuto);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(engine.last_disk_method(), DiskMethod::kMemoryAd);
  }
  for (DiskMethod m :
       {DiskMethod::kScan, DiskMethod::kAd, DiskMethod::kVaFile}) {
    EXPECT_EQ(engine.circuit_breaker(m)->state(),
              CircuitBreaker::State::kOpen)
        << "method " << static_cast<int>(m);
  }
  EXPECT_GT(obs::Cat().breaker_skipped->Value(), skipped_before);

  // Disk replaced: the preferred method's cooldown elapses, its
  // half-open probe succeeds, the breaker closes, and queries answer
  // from disk again. Breakers further down the chain are no longer
  // consulted once the first choice recovers, so they stay open
  // latently — they would probe the next time routing reaches them.
  engine.ClearFaults();
  for (int i = 0; i < 30; ++i) {
    auto r = engine.DiskFrequentKnMatch(q, 1, 3, 5, DiskMethod::kAuto);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  ASSERT_NE(engine.last_disk_method(), DiskMethod::kMemoryAd);
  EXPECT_EQ(engine.circuit_breaker(engine.last_disk_method())->state(),
            CircuitBreaker::State::kClosed);
}

// ---------------------------------------------------------------------------
// The randomized governance soak: 2000+ queries under random deadlines,
// budgets, and cancel points across the memory, disk, and B+-tree
// accessors. Every trip leaves the engine reusable; every untripped
// query is bit-identical to a governance-free run.

TEST(GovernanceSoakTest, TwoThousandRandomlyGovernedQueriesStayExact) {
  constexpr size_t kCardinality = 800;
  constexpr size_t kDims = 4;
  constexpr int kQueries = 2000;

  SimilarityEngine engine(datagen::MakeUniform(kCardinality, kDims, 71));
  SimilarityEngine reference(datagen::MakeUniform(kCardinality, kDims, 71));
  DiskSimulator btree_disk{DiskConfig()};
  BTreeColumns btree_columns(engine.dataset(), &btree_disk);
  BTreeAdSearcher btree(btree_columns);
  DiskSimulator btree_ref_disk{DiskConfig()};
  BTreeColumns btree_ref_columns(reference.dataset(), &btree_ref_disk);
  BTreeAdSearcher btree_ref(btree_ref_columns);

  std::mt19937 rng(2026);
  std::uniform_real_distribution<double> coord(0.0, 1.0);
  std::uniform_int_distribution<int> accessor_pick(0, 4);
  std::uniform_int_distribution<int> limit_pick(0, 3);

  int trips = 0, completions = 0;
  for (int iter = 0; iter < kQueries; ++iter) {
    std::vector<Value> q(kDims);
    for (Value& v : q) v = coord(rng);
    const size_t n0 = 1;
    const size_t n1 = 1 + static_cast<size_t>(rng() % kDims);
    const size_t k = 1 + static_cast<size_t>(rng() % 20);

    QueryContext ctx;
    switch (limit_pick(rng)) {
      case 0:  // hair-trigger limits: almost always a trip
        ctx.set_deadline_in_ms(1e-6);
        break;
      case 1:
        ctx.budgets().max_attributes = 1 + rng() % 256;
        ctx.budgets().max_pages = 1 + rng() % 4;
        break;
      case 2:
        ctx.set_cancel(std::make_shared<std::atomic<bool>>(rng() % 2 == 0));
        break;
      default:  // generous: must complete and match the reference
        ctx.set_deadline_in_ms(1e9);
        ctx.budgets().max_attributes = ~uint64_t{0} >> 1;
        break;
    }

    const int accessor = accessor_pick(rng);
    Result<FrequentKnMatchResult> governed = Status::Internal("unset");
    Result<FrequentKnMatchResult> plain = Status::Internal("unset");
    switch (accessor) {
      case 0:
        governed = engine.FrequentKnMatch(q, n0, n1, k, {}, &ctx);
        plain = reference.FrequentKnMatch(q, n0, n1, k);
        break;
      case 1:
        governed = engine.DiskFrequentKnMatch(q, n0, n1, k,
                                              DiskMethod::kAd, &ctx);
        plain = reference.DiskFrequentKnMatch(q, n0, n1, k, DiskMethod::kAd);
        break;
      case 2:
        governed = engine.DiskFrequentKnMatch(q, n0, n1, k,
                                              DiskMethod::kScan, &ctx);
        plain =
            reference.DiskFrequentKnMatch(q, n0, n1, k, DiskMethod::kScan);
        break;
      case 3:
        governed = engine.DiskFrequentKnMatch(q, n0, n1, k,
                                              DiskMethod::kVaFile, &ctx);
        plain = reference.DiskFrequentKnMatch(q, n0, n1, k,
                                              DiskMethod::kVaFile);
        break;
      default:
        governed = btree.FrequentKnMatch(q, n0, n1, k, &ctx);
        plain = btree_ref.FrequentKnMatch(q, n0, n1, k);
        break;
    }
    ASSERT_TRUE(plain.ok()) << plain.status().ToString();

    if (governed.ok()) {
      ++completions;
      EXPECT_FALSE(ctx.tripped());
      ASSERT_EQ(governed.value().per_n_sets, plain.value().per_n_sets)
          << "accessor " << accessor << " iter " << iter;
      ASSERT_EQ(governed.value().matches, plain.value().matches);
      ASSERT_EQ(governed.value().attributes_retrieved,
                plain.value().attributes_retrieved);
    } else {
      ++trips;
      ASSERT_TRUE(ctx.tripped());
      EXPECT_EQ(governed.status().code(), ctx.trip_status().code());
      const StatusCode code = governed.status().code();
      EXPECT_TRUE(code == StatusCode::kDeadlineExceeded ||
                  code == StatusCode::kResourceExhausted ||
                  code == StatusCode::kUnavailable)
          << governed.status().ToString();
    }
  }
  // The mix must actually exercise both paths.
  EXPECT_GT(trips, kQueries / 10);
  EXPECT_GT(completions, kQueries / 10);
}

}  // namespace
}  // namespace knmatch

// Tests for the block-ascending AD kernel (core/ad_kernel.h): the
// loser tree's selection order, and the kernel's bit-for-bit
// equivalence to the reference heap engine — pop order, answer sets,
// attributes_retrieved, and (on disk) every I/O counter, with and
// without injected faults. These are the tests that license swapping
// the kernel into every production entry point.

#include "knmatch/core/ad_kernel.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "knmatch/common/random.h"
#include "knmatch/core/ad_engine.h"
#include "knmatch/core/ad_scratch.h"
#include "knmatch/core/sorted_columns.h"
#include "knmatch/datagen/generators.h"
#include "knmatch/storage/column_store.h"
#include "knmatch/storage/disk_simulator.h"
#include "knmatch/storage/fault_injector.h"

namespace knmatch {
namespace {

using internal::AdEngine;
using internal::AdKernel;
using internal::AdLoserTree;
using internal::AdOutput;
using internal::AdScratch;
using internal::MemoryColumnAccessor;
using internal::RunAdSearch;
using internal::RunAdSearchReference;

// ---------------------------------------------------------------------------
// AdLoserTree selection order

/// Linear-scan argmin by (key, slot) — the specification the tree must
/// match exactly.
uint32_t ScanWinner(const std::vector<Value>& keys) {
  uint32_t best = 0;
  for (uint32_t s = 1; s < keys.size(); ++s) {
    if (keys[s] < keys[best]) best = s;
  }
  return best;
}

uint32_t ScanRunnerUp(const std::vector<Value>& keys, uint32_t winner) {
  uint32_t best = AdLoserTree::kNone;
  for (uint32_t s = 0; s < keys.size(); ++s) {
    if (s == winner) continue;
    if (best == AdLoserTree::kNone || keys[s] < keys[best]) best = s;
  }
  return best;
}

TEST(AdKernelLoserTreeTest, WinnerAndRunnerUpMatchLinearScan) {
  const Value inf = std::numeric_limits<Value>::infinity();
  for (const size_t m : {2u, 3u, 4u, 5u, 7u, 8u, 13u, 16u}) {
    Rng rng(1000 + m);
    // Quantized keys: heavy duplicates, so the slot tie-break decides
    // most matches.
    std::vector<Value> keys(m);
    for (Value& k : keys) k = Value(rng.UniformInt(4)) / 4.0;
    AdLoserTree tree;
    tree.Build(m, keys.data());
    size_t live = m;
    for (int step = 0; step < 400 && live > 0; ++step) {
      const uint32_t w = tree.winner();
      ASSERT_EQ(w, ScanWinner(keys)) << "m=" << m << " step=" << step;
      ASSERT_EQ(tree.RunnerUp(w, keys.data()), ScanRunnerUp(keys, w))
          << "m=" << m << " step=" << step;
      // Advance the winner like a real cursor: key never decreases,
      // occasionally exhausting.
      if (rng.Bernoulli(0.05)) {
        keys[w] = inf;
        --live;
      } else {
        keys[w] += Value(rng.UniformInt(3)) / 4.0;
      }
      tree.Replay(w, keys.data());
    }
  }
}

TEST(AdKernelLoserTreeTest, AllExhaustedLeavesInfiniteWinner) {
  const Value inf = std::numeric_limits<Value>::infinity();
  std::vector<Value> keys = {0.5, 0.25, 0.75, 0.125};
  AdLoserTree tree;
  tree.Build(keys.size(), keys.data());
  for (size_t i = 0; i < keys.size(); ++i) {
    const uint32_t w = tree.winner();
    EXPECT_EQ(w, ScanWinner(keys));
    keys[w] = inf;
    tree.Replay(w, keys.data());
  }
  EXPECT_EQ(keys[tree.winner()], inf);
}

// ---------------------------------------------------------------------------
// Differential: kernel vs reference heap engine, in memory

/// Snaps every attribute of `db` to a `levels`-step grid, producing a
/// duplicate-heavy dataset where equal differences are the norm.
Dataset Quantize(const Dataset& db, double levels) {
  Matrix m(db.size(), db.dims());
  for (PointId pid = 0; pid < db.size(); ++pid) {
    for (size_t dim = 0; dim < db.dims(); ++dim) {
      m.at(pid, dim) = std::round(db.at(pid, dim) * levels) / levels;
    }
  }
  return Dataset(std::move(m));
}

void ExpectSameOutput(const AdOutput& kernel, const AdOutput& reference,
                      const char* what, size_t qi) {
  ASSERT_EQ(kernel.per_n_sets.size(), reference.per_n_sets.size())
      << what << " query " << qi;
  for (size_t s = 0; s < kernel.per_n_sets.size(); ++s) {
    EXPECT_EQ(kernel.per_n_sets[s], reference.per_n_sets[s])
        << what << " query " << qi << " set " << s;
  }
  EXPECT_EQ(kernel.attributes_retrieved, reference.attributes_retrieved)
      << what << " query " << qi;
  EXPECT_EQ(kernel.heap_pops, reference.heap_pops)
      << what << " query " << qi;
}

/// Runs `queries` randomized (n0, n1, k, weights) queries over `db`,
/// asserting the kernel's output is identical to the reference's.
void DifferentialSweep(const Dataset& db, size_t queries, uint64_t seed,
                       const char* what) {
  const SortedColumns columns(db);
  MemoryColumnAccessor acc(columns);
  AdScratch kernel_scratch;
  AdScratch reference_scratch;
  Rng rng(seed);
  const size_t d = db.dims();
  for (size_t qi = 0; qi < queries; ++qi) {
    std::vector<Value> q(d);
    // Mix in-range, boundary, and out-of-range coordinates: the latter
    // start one direction cursor exhausted from the first step.
    for (Value& v : q) v = rng.Uniform(-0.2, 1.2);
    const size_t n0 = 1 + rng.UniformInt(d);
    const size_t n1 = n0 + rng.UniformInt(d - n0 + 1);
    // Large k (up to the full cardinality) forces exhaustion mid-run
    // on a fair fraction of the queries.
    const size_t k = 1 + rng.UniformInt(db.size());
    std::vector<Value> weights;
    if (rng.Bernoulli(0.3)) {
      weights.resize(d);
      for (Value& w : weights) w = 0.25 + rng.Uniform01();
    }
    const AdOutput kernel =
        RunAdSearch(acc, q, n0, n1, k, weights, &kernel_scratch);
    const AdOutput reference = RunAdSearchReference(
        acc, q, n0, n1, k, weights, &reference_scratch);
    ExpectSameOutput(kernel, reference, what, qi);
  }
}

TEST(AdKernelDifferentialTest, UniformDataMatchesReference) {
  DifferentialSweep(datagen::MakeUniform(400, 6, 11), 250, 21, "uniform");
}

TEST(AdKernelDifferentialTest, DuplicateHeavyDataMatchesReference) {
  // Values quantized to an 8-level grid: equal differences across
  // slots and inside runs everywhere, so the slot tie-break (and the
  // run-stop condition's tie handling) carries the whole order.
  DifferentialSweep(Quantize(datagen::MakeUniform(300, 5, 12), 8.0), 250,
                    22, "duplicate");
}

TEST(AdKernelDifferentialTest, SkewedDataMatchesReference) {
  DifferentialSweep(datagen::MakeSkewed(350, 4, 13, 2.0), 250, 23,
                    "skewed");
}

TEST(AdKernelDifferentialTest, TinyDataExhaustsIdentically) {
  // 20 points, 2 dims: almost every query exhausts every cursor, so
  // the final-pop and all-exhausted paths run constantly.
  DifferentialSweep(datagen::MakeUniform(20, 2, 14), 250, 24, "tiny");
}

// ---------------------------------------------------------------------------
// Differential: ragged columns (and the ReadRun + column_length mix)

/// Ragged accessor with a full-service ReadRun: some points lack
/// values in some dimensions, and the kernel must size its run reads
/// by column_length, not column_size.
class RaggedRunAccessor {
 public:
  RaggedRunAccessor(std::vector<std::vector<ColumnEntry>> columns,
                    size_t cardinality)
      : columns_(std::move(columns)), cardinality_(cardinality) {}

  size_t dims() const { return columns_.size(); }
  size_t column_size() const { return cardinality_; }
  size_t column_length(size_t dim) const { return columns_[dim].size(); }
  ColumnEntry ReadEntry(size_t dim, size_t idx, uint32_t /*slot*/) const {
    return columns_[dim][idx];
  }
  size_t ReadRun(size_t dim, size_t idx, size_t len, uint32_t slot,
                 Value* values, PointId* pids) const {
    for (size_t i = 0; i < len; ++i) {
      const ColumnEntry& e =
          columns_[dim][slot % 2 == 0 ? idx - i : idx + i];
      values[i] = e.value;
      pids[i] = e.pid;
    }
    return len;
  }
  size_t LocateLowerBound(size_t dim, Value v) const {
    const auto& col = columns_[dim];
    size_t lo = 0;
    while (lo < col.size() && col[lo].value < v) ++lo;
    return lo;
  }

 private:
  std::vector<std::vector<ColumnEntry>> columns_;
  size_t cardinality_;
};

TEST(AdKernelDifferentialTest, RaggedColumnsMatchReference) {
  Rng rng(31);
  for (int round = 0; round < 25; ++round) {
    const size_t cardinality = 30 + rng.UniformInt(30);
    const size_t d = 2 + rng.UniformInt(4);
    std::vector<std::vector<ColumnEntry>> columns(d);
    for (size_t dim = 0; dim < d; ++dim) {
      for (PointId pid = 0; pid < cardinality; ++pid) {
        if (rng.Bernoulli(0.25)) continue;  // missing attribute
        // Quantized: ragged AND duplicate-heavy at once.
        columns[dim].push_back(
            {Value(rng.UniformInt(8)) / 8.0, pid});
      }
      // Keep at least one entry so LocateLowerBound stays in range.
      if (columns[dim].empty()) {
        columns[dim].push_back({0.5, 0});
      }
      std::sort(columns[dim].begin(), columns[dim].end(),
                [](const ColumnEntry& a, const ColumnEntry& b) {
                  if (a.value != b.value) return a.value < b.value;
                  return a.pid < b.pid;
                });
    }
    RaggedRunAccessor acc(columns, cardinality);
    AdScratch kernel_scratch;
    AdScratch reference_scratch;
    for (int qi = 0; qi < 40; ++qi) {
      std::vector<Value> q(d);
      for (Value& v : q) v = rng.Uniform01();
      const size_t n1 = 1 + rng.UniformInt(d);
      const size_t n0 = 1 + rng.UniformInt(n1);
      // k up to the cardinality: with missing attributes the columns
      // regularly exhaust before k points complete n1 appearances, so
      // the partial-answer path is exercised heavily.
      const size_t k = 1 + rng.UniformInt(cardinality);
      const AdOutput kernel =
          RunAdSearch(acc, q, n0, n1, k, {}, &kernel_scratch);
      const AdOutput reference =
          RunAdSearchReference(acc, q, n0, n1, k, {}, &reference_scratch);
      ExpectSameOutput(kernel, reference, "ragged", qi);
    }
  }
}

// ---------------------------------------------------------------------------
// Step(): the single-pop entry point (AdMatchStream's path)

TEST(AdKernelStepTest, StepSequenceMatchesHeapEngineToExhaustion) {
  // Duplicate-heavy so ties cover the tree's whole order; run both
  // engines dry and require identical pop sequences.
  const Dataset db = Quantize(datagen::MakeUniform(120, 3, 17), 4.0);
  const SortedColumns columns(db);
  MemoryColumnAccessor acc(columns);
  Rng rng(41);
  for (int qi = 0; qi < 20; ++qi) {
    std::vector<Value> q(db.dims());
    for (Value& v : q) v = rng.Uniform(-0.1, 1.1);
    AdKernel<MemoryColumnAccessor> kernel(acc, q);
    AdEngine<MemoryColumnAccessor> engine(acc, q);
    size_t pops = 0;
    for (;;) {
      auto kp = kernel.Step();
      auto ep = engine.Step();
      ASSERT_EQ(kp.has_value(), ep.has_value()) << "pop " << pops;
      if (!kp.has_value()) break;
      ASSERT_EQ(kp->pid, ep->pid) << "pop " << pops;
      ASSERT_EQ(kp->dif, ep->dif) << "pop " << pops;
      ASSERT_EQ(kp->appearances, ep->appearances) << "pop " << pops;
      ++pops;
    }
    EXPECT_EQ(pops, db.size() * db.dims());
    EXPECT_EQ(kernel.attributes_retrieved(), engine.attributes_retrieved());
  }
}

// ---------------------------------------------------------------------------
// Disk: ReadRun accounting and fault soak

/// The production disk accessor's shape, local to the test so both the
/// run-reading and the entry-only variant can be compared over
/// independent simulators.
template <bool kWithReadRun>
class TestDiskAccessor {
 public:
  explicit TestDiskAccessor(const ColumnStore& columns)
      : columns_(columns) {
    for (size_t i = 0; i < 2 * columns.dims(); ++i) {
      streams_.push_back(columns.OpenStream());
    }
  }

  size_t dims() const { return columns_.dims(); }
  size_t column_size() const { return columns_.column_size(); }

  ColumnEntry ReadEntry(size_t dim, size_t idx, uint32_t slot) {
    Result<ColumnEntry> e = columns_.ReadEntry(streams_[slot], dim, idx);
    if (!e.ok()) {
      status_ = e.status();
      return ColumnEntry{};
    }
    return e.value();
  }

  size_t ReadRun(size_t dim, size_t idx, size_t len, uint32_t slot,
                 Value* values, PointId* pids)
    requires(kWithReadRun)
  {
    Result<size_t> n = columns_.ReadRun(streams_[slot], dim, idx, len,
                                        slot % 2 == 0, values, pids);
    if (!n.ok()) {
      status_ = n.status();
      return 0;
    }
    return n.value();
  }

  size_t LocateLowerBound(size_t dim, Value v) const {
    return columns_.LowerBound(dim, v);
  }

  const Status& status() const { return status_; }

 private:
  const ColumnStore& columns_;
  std::vector<size_t> streams_;
  Status status_;
};

static_assert(internal::RunReadingAccessor<TestDiskAccessor<true>>);
static_assert(!internal::RunReadingAccessor<TestDiskAccessor<false>>);

struct DiskCounters {
  uint64_t sequential, random, buffer_hits, failed;

  explicit DiskCounters(const DiskSimulator& disk)
      : sequential(disk.sequential_reads()),
        random(disk.random_reads()),
        buffer_hits(disk.buffer_hits()),
        failed(disk.failed_reads()) {}

  friend bool operator==(const DiskCounters&, const DiskCounters&) =
      default;
};

/// Runs the same randomized query stream through (a) the kernel over a
/// run-reading accessor and (b) the reference heap engine over an
/// entry-only accessor, each on its own identically configured
/// simulator, asserting identical answers, attribute charges, statuses
/// and I/O counters after every query.
void DiskDifferentialSoak(FaultInjector* kernel_faults,
                          FaultInjector* reference_faults, size_t queries,
                          const char* what) {
  // A small page (21 entries) against kAdRunBlock = 64 makes nearly
  // every refill want more than one page can serve — the page-boundary
  // short-read path runs constantly.
  DiskConfig config;
  config.page_size = 256;
  config.buffer_pool_pages = 8;
  const Dataset db = datagen::MakeUniform(700, 3, 19);

  DiskSimulator kernel_disk(config);
  ColumnStore kernel_store(db, &kernel_disk);
  kernel_disk.set_fault_injector(kernel_faults);

  DiskSimulator reference_disk(config);
  ColumnStore reference_store(db, &reference_disk);
  reference_disk.set_fault_injector(reference_faults);

  ASSERT_GT(db.size() / kernel_store.entries_per_page(), 30u)
      << "dataset must span many pages for the boundary test to bite";

  Rng rng(53);
  for (size_t qi = 0; qi < queries; ++qi) {
    std::vector<Value> q(db.dims());
    for (Value& v : q) v = rng.Uniform01();
    const size_t n = 1 + rng.UniformInt(db.dims());
    const size_t k = 1 + rng.UniformInt(50);

    TestDiskAccessor<true> kernel_acc(kernel_store);
    TestDiskAccessor<false> reference_acc(reference_store);
    const AdOutput kernel = RunAdSearch(kernel_acc, q, n, n, k);
    const AdOutput reference =
        RunAdSearchReference(reference_acc, q, n, n, k);

    ASSERT_EQ(kernel_acc.status().code(), reference_acc.status().code())
        << what << " query " << qi;
    ExpectSameOutput(kernel, reference, what, qi);
    ASSERT_EQ(DiskCounters(kernel_disk), DiskCounters(reference_disk))
        << what << " query " << qi;
  }
}

TEST(AdKernelDiskTest, RunReadsChargeIdenticallyToEntryReads) {
  DiskDifferentialSoak(nullptr, nullptr, 60, "fault-free");
}

TEST(AdKernelDiskTest, FaultSoakStaysBitIdentical) {
  // Separate injector instances with one seed: both sides must issue
  // the same physical attempt sequence to see the same faults — which
  // is itself part of what is being asserted.
  FaultInjector::Config faults;
  faults.seed = 77;
  faults.transient_error_rate = 0.05;
  faults.corruption_rate = 0.01;
  FaultInjector kernel_faults(faults);
  FaultInjector reference_faults(faults);
  DiskDifferentialSoak(&kernel_faults, &reference_faults, 60, "faulted");
}

}  // namespace
}  // namespace knmatch

#include "knmatch/baselines/fagin.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "knmatch/common/random.h"
#include "knmatch/core/ad_algorithm.h"
#include "knmatch/core/nmatch.h"
#include "knmatch/datagen/generators.h"
#include "paper_data.h"

namespace knmatch {
namespace {

/// Builds descending grade lists from a dataset, one per dimension.
std::vector<GradeList> GradeListsOf(const Dataset& db) {
  std::vector<GradeList> lists(db.dims());
  for (size_t dim = 0; dim < db.dims(); ++dim) {
    for (PointId pid = 0; pid < db.size(); ++pid) {
      lists[dim].emplace_back(pid, db.at(pid, dim));
    }
    std::sort(lists[dim].begin(), lists[dim].end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
  }
  return lists;
}

/// Brute-force top-k for reference.
std::vector<Neighbor> BruteTopK(const Dataset& db,
                                const Aggregation& aggregate, size_t k) {
  std::vector<std::pair<Value, PointId>> scored;
  std::vector<Value> grades(db.dims());
  for (PointId pid = 0; pid < db.size(); ++pid) {
    auto p = db.point(pid);
    std::copy(p.begin(), p.end(), grades.begin());
    scored.emplace_back(aggregate(grades), pid);
  }
  std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  std::vector<Neighbor> result;
  for (size_t i = 0; i < k; ++i) {
    result.push_back(Neighbor{scored[i].second, scored[i].first});
  }
  return result;
}

const Aggregation kMin = [](std::span<const Value> g) {
  return *std::min_element(g.begin(), g.end());
};
const Aggregation kSum = [](std::span<const Value> g) {
  Value s = 0;
  for (const Value v : g) s += v;
  return s;
};

TEST(FaginTest, FaMatchesBruteForceForMonotoneAggregations) {
  Dataset db = datagen::MakeUniform(300, 4, 101);
  auto lists = GradeListsOf(db);
  for (const auto* agg : {&kMin, &kSum}) {
    for (const size_t k : {size_t{1}, size_t{5}, size_t{20}}) {
      auto fa = FaTopK(lists, *agg, k);
      ASSERT_TRUE(fa.ok());
      EXPECT_EQ(fa.value(), BruteTopK(db, *agg, k));
    }
  }
}

TEST(FaginTest, TaMatchesBruteForceForMonotoneAggregations) {
  Dataset db = datagen::MakeUniform(300, 4, 102);
  auto lists = GradeListsOf(db);
  for (const auto* agg : {&kMin, &kSum}) {
    for (const size_t k : {size_t{1}, size_t{5}, size_t{20}}) {
      auto ta = TaTopK(lists, *agg, k);
      ASSERT_TRUE(ta.ok());
      EXPECT_EQ(ta.value(), BruteTopK(db, *agg, k));
    }
  }
}

TEST(FaginTest, TaStopsEarlyOnSkewedGrades) {
  Dataset db = datagen::MakeSkewed(2000, 3, 103);
  auto lists = GradeListsOf(db);
  MiddlewareStats stats;
  auto ta = TaTopK(lists, kSum, 5, &stats);
  ASSERT_TRUE(ta.ok());
  EXPECT_EQ(ta.value(), BruteTopK(db, kSum, 5));
  EXPECT_LT(stats.sorted_accesses, 3u * 2000u / 2);
}

TEST(FaginTest, FaReportsAccessCounts) {
  Dataset db = datagen::MakeUniform(100, 3, 104);
  auto lists = GradeListsOf(db);
  MiddlewareStats stats;
  auto fa = FaTopK(lists, kMin, 3, &stats);
  ASSERT_TRUE(fa.ok());
  EXPECT_GT(stats.sorted_accesses, 0u);
  EXPECT_LE(stats.sorted_accesses, 3u * 100u);
}

TEST(FaginTest, ValidatesInput) {
  GradeList good = {{0, 0.9}, {1, 0.5}};
  GradeList bad_order = {{0, 0.5}, {1, 0.9}};
  GradeList wrong_size = {{0, 0.9}};
  std::vector<GradeList> ok = {good, good};
  EXPECT_TRUE(FaTopK(ok, kMin, 1).ok());
  std::vector<GradeList> unsorted = {good, bad_order};
  EXPECT_FALSE(FaTopK(unsorted, kMin, 1).ok());
  std::vector<GradeList> ragged = {good, wrong_size};
  EXPECT_FALSE(FaTopK(ragged, kMin, 1).ok());
  EXPECT_FALSE(FaTopK(ok, kMin, 0).ok());
  EXPECT_FALSE(FaTopK(ok, kMin, 3).ok());
  EXPECT_FALSE(TaTopK(unsorted, kMin, 1).ok());
}

// Section 3's central demonstration: apply FA to the 1-match query of
// Figure 3 — lists sorted by attribute value (as FA requires for its
// model), aggregation = negated 1-match difference (bigger = better,
// so FA's top-1 is the supposed 1-match). FA returns point 1, but the
// true 1-match is point 2: the n-match difference is not monotone, so
// FA's stopping rule is unsound for it.
TEST(FaginTest, PaperCounterexampleFaIsWrongForNMatch) {
  Dataset db = testing::Figure3Database();
  const auto q = testing::Figure3Query();

  // FA's sorted lists: descending by attribute value (the direction FA
  // walks them, mirroring the paper's Figure 5 organization).
  auto lists = GradeListsOf(db);
  const Aggregation neg_one_match = [&](std::span<const Value> grades) {
    // Reconstruct the 1-match difference from the point's attribute
    // values (grades are exactly the coordinates here).
    Value best = kInfValue;
    for (size_t i = 0; i < grades.size(); ++i) {
      best = std::min(best, std::abs(grades[i] - q[i]));
    }
    return -best;
  };

  // Walking Figure 3's lists in descending value order, object 4
  // (pid 3) tops every list, completes at depth 1, and FA stops: it
  // returns point 4, whose 1-match difference is 2.0. (The paper's
  // text walks the ascending direction and gets point 1, difference
  // 2.6 — either way, not the correct answer.)
  auto fa = FaTopK(lists, neg_one_match, 1);
  ASSERT_TRUE(fa.ok());
  EXPECT_EQ(fa.value()[0].pid, 3u);  // object 4 — wrong

  // The true 1-match is point 2 (pid 1), per the paper; the AD
  // algorithm gets it right because its stopping rule does not assume
  // monotonicity.
  AdSearcher searcher(db);
  auto truth = searcher.KnMatch(q, 1, 1);
  ASSERT_TRUE(truth.ok());
  EXPECT_EQ(truth.value().matches[0].pid, 1u);
  EXPECT_NE(fa.value()[0].pid, truth.value().matches[0].pid);
}

}  // namespace
}  // namespace knmatch

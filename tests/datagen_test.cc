#include <cmath>

#include "knmatch/datagen/coil_like.h"
#include "knmatch/datagen/generators.h"
#include "knmatch/datagen/texture_like.h"
#include "knmatch/datagen/uci_like.h"

#include <gtest/gtest.h>

namespace knmatch::datagen {
namespace {

void ExpectInUnitCube(const Dataset& db) {
  for (PointId pid = 0; pid < db.size(); ++pid) {
    for (const Value v : db.point(pid)) {
      ASSERT_GE(v, 0.0);
      ASSERT_LE(v, 1.0);
    }
  }
}

TEST(GeneratorsTest, UniformShapeAndRange) {
  Dataset db = MakeUniform(500, 8, 1);
  EXPECT_EQ(db.size(), 500u);
  EXPECT_EQ(db.dims(), 8u);
  EXPECT_FALSE(db.labelled());
  ExpectInUnitCube(db);
  EXPECT_TRUE(db.Validate().ok());
}

TEST(GeneratorsTest, UniformDeterministicPerSeed) {
  Dataset a = MakeUniform(50, 4, 7);
  Dataset b = MakeUniform(50, 4, 7);
  Dataset c = MakeUniform(50, 4, 8);
  EXPECT_EQ(a.matrix().data(), b.matrix().data());
  EXPECT_NE(a.matrix().data(), c.matrix().data());
}

TEST(GeneratorsTest, ClusteredIsLabelledWithRequestedClasses) {
  ClusteredSpec spec;
  spec.cardinality = 400;
  spec.dims = 12;
  spec.num_classes = 5;
  spec.seed = 3;
  Dataset db = MakeClustered(spec);
  EXPECT_EQ(db.size(), 400u);
  EXPECT_EQ(db.dims(), 12u);
  ASSERT_TRUE(db.labelled());
  EXPECT_EQ(db.num_classes(), 5u);
  ExpectInUnitCube(db);
}

TEST(GeneratorsTest, ClusteredPointsOfSameClassAreCloser) {
  ClusteredSpec spec;
  spec.cardinality = 300;
  spec.dims = 16;
  spec.num_classes = 2;
  spec.noise_dim_fraction = 0.0;
  spec.outlier_prob = 0.0;
  spec.seed = 5;
  Dataset db = MakeClustered(spec);

  // Average within-class L1 distance should be well below cross-class.
  double within = 0, cross = 0;
  size_t nw = 0, nc = 0;
  for (PointId a = 0; a < 60; ++a) {
    for (PointId b = a + 1; b < 60; ++b) {
      double dist = 0;
      for (size_t dim = 0; dim < db.dims(); ++dim) {
        dist += std::abs(db.at(a, dim) - db.at(b, dim));
      }
      if (db.label(a) == db.label(b)) {
        within += dist;
        ++nw;
      } else {
        cross += dist;
        ++nc;
      }
    }
  }
  ASSERT_GT(nw, 0u);
  ASSERT_GT(nc, 0u);
  EXPECT_LT(within / nw, 0.5 * (cross / nc));
}

TEST(GeneratorsTest, SkewedIsSkewed) {
  Dataset db = MakeSkewed(2000, 8, 11);
  ExpectInUnitCube(db);
  // Low-end bias: the grand mean should sit clearly below 0.5.
  double sum = 0;
  for (const Value v : db.matrix().data()) sum += v;
  EXPECT_LT(sum / static_cast<double>(db.matrix().data().size()), 0.45);
}

TEST(GeneratorsTest, CorrelatedDimensionsCorrelate) {
  Dataset db = MakeCorrelated(2000, 6, 13);
  ExpectInUnitCube(db);
  // Compute Pearson correlation between dims 0 and 1; the shared latent
  // factors should induce visible positive correlation.
  double mx = 0, my = 0;
  for (PointId pid = 0; pid < db.size(); ++pid) {
    mx += db.at(pid, 0);
    my += db.at(pid, 1);
  }
  mx /= static_cast<double>(db.size());
  my /= static_cast<double>(db.size());
  double sxy = 0, sxx = 0, syy = 0;
  for (PointId pid = 0; pid < db.size(); ++pid) {
    const double dx = db.at(pid, 0) - mx;
    const double dy = db.at(pid, 1) - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  EXPECT_GT(sxy / std::sqrt(sxx * syy), 0.2);
}

TEST(UciLikeTest, ReplicasMatchPaperShapes) {
  struct Expectation {
    UciName name;
    size_t c, d, classes;
  };
  const Expectation expectations[] = {
      {UciName::kIonosphere, 351, 34, 2},
      {UciName::kSegmentation, 300, 19, 7},
      {UciName::kWdbc, 569, 30, 2},
      {UciName::kGlass, 214, 9, 7},
      {UciName::kIris, 150, 4, 3},
  };
  for (const auto& e : expectations) {
    Dataset db = MakeUciLike(e.name);
    EXPECT_EQ(db.size(), e.c) << UciDisplayName(e.name);
    EXPECT_EQ(db.dims(), e.d) << UciDisplayName(e.name);
    EXPECT_EQ(db.num_classes(), e.classes) << UciDisplayName(e.name);
    ExpectInUnitCube(db);
  }
  EXPECT_EQ(AllUciNames().size(), 5u);
}

TEST(CoilLikeTest, ShapeAndDeterminism) {
  Dataset a = MakeCoilLike();
  EXPECT_EQ(a.size(), kCoilObjects);
  EXPECT_EQ(a.dims(), kCoilFeatures);
  ExpectInUnitCube(a);
  Dataset b = MakeCoilLike();
  EXPECT_EQ(a.matrix().data(), b.matrix().data());
}

TEST(CoilLikeTest, BoatSharesTextureAndShapeButNotColor) {
  Dataset db = MakeCoilLike();
  const auto q = db.point(CoilLikeIds::kQuery);
  const auto boat = db.point(CoilLikeIds::kBoat);
  // Texture+shape dims [18, 54): close.
  for (size_t i = kCoilGroupSize; i < kCoilFeatures; ++i) {
    EXPECT_LT(std::abs(q[i] - boat[i]), 0.15) << "dim " << i;
  }
  // Color dims: far on average.
  double color_gap = 0;
  for (size_t i = 0; i < kCoilGroupSize; ++i) {
    color_gap += std::abs(q[i] - boat[i]);
  }
  EXPECT_GT(color_gap / kCoilGroupSize, 0.3);
}

TEST(TextureLikeTest, DefaultShape) {
  Dataset db = MakeTextureLike(9, 5000);
  EXPECT_EQ(db.size(), 5000u);
  EXPECT_EQ(db.dims(), 16u);
  ExpectInUnitCube(db);
}

}  // namespace
}  // namespace knmatch::datagen

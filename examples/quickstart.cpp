// Quickstart: the paper's Figure 1 scenario end to end.
//
// Builds the 10-dimensional example database from the paper's
// introduction, then shows how Euclidean kNN is fooled by single noisy
// dimensions while k-n-match and frequent k-n-match recover the
// partially similar objects.
//
// Run: ./quickstart

#include <cstdio>

#include "knmatch.h"

int main() {
  using namespace knmatch;

  // The database of Figure 1 (object ids 1-4 in the paper are pids 0-3
  // here). Objects 1-3 are near-duplicates of the query except for one
  // wildly wrong dimension each; object 4 is uniformly mediocre.
  Dataset db(Matrix::FromRows({
      {1.1, 100, 1.2, 1.6, 1.6, 1.1, 1.2, 1.2, 1, 1},
      {1.4, 1.4, 1.4, 1.5, 100, 1.4, 1.2, 1.2, 1, 1},
      {1, 1, 1, 1, 1, 1, 2, 100, 2, 2},
      {20, 20, 20, 20, 20, 20, 20, 20, 20, 20},
  }));
  const std::vector<Value> query(10, 1.0);

  std::printf("== Traditional kNN (Euclidean) ==\n");
  auto knn = KnnScan(db, query, 1);
  std::printf("1-NN: object %u (distance %.2f) -- the uniformly mediocre "
              "object wins because one bad dimension dominates the "
              "others' distances.\n\n",
              knn.value().matches[0].pid + 1,
              knn.value().matches[0].distance);

  // The AD searcher sorts each dimension once, then answers queries
  // with the provably minimal number of attribute retrievals.
  AdSearcher searcher(db);

  std::printf("== k-n-match (k=1) ==\n");
  for (const size_t n : {6, 7, 8}) {
    auto r = searcher.KnMatch(query, n, 1);
    const Neighbor& nb = r.value().matches[0];
    std::printf("%zu-match: object %u (epsilon = %.1f)\n", n, nb.pid + 1,
                nb.distance);
  }

  std::printf("\n== Frequent k-n-match over n in [1, 10] (k=2) ==\n");
  auto freq = searcher.FrequentKnMatch(query, 1, 10, 2);
  for (size_t i = 0; i < freq.value().matches.size(); ++i) {
    std::printf("object %u appeared in %u of 10 answer sets\n",
                freq.value().matches[i].pid + 1,
                freq.value().frequencies[i]);
  }
  std::printf("attributes retrieved: %llu of %zu\n",
              static_cast<unsigned long long>(
                  freq.value().attributes_retrieved),
              db.size() * db.dims());
  return 0;
}

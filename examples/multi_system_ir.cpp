// Multiple-system information retrieval (the model of Section 3):
// d independent systems each score the same set of objects and keep
// their scores sorted; retrieving a score ("sorted access") is the unit
// of cost. Fagin's FA/TA algorithms need a monotone aggregation
// function — the n-match difference is not monotone, and the AD
// algorithm is the provably attribute-optimal way to run similarity
// queries in this setting.
//
// This example simulates 8 scoring systems over 20,000 documents and
// compares the attribute retrievals of the AD algorithm against the
// naive gather-everything approach.
//
// Run: ./multi_system_ir

#include <cstdio>

#include "knmatch.h"

int main() {
  using namespace knmatch;

  // Each "dimension" is one system's score for every document, e.g.,
  // text relevance, freshness, click-through, pagerank, ... Scores are
  // skewed, as real ranking signals are.
  constexpr size_t kSystems = 8;
  constexpr size_t kDocuments = 20000;
  Dataset db = datagen::MakeSkewed(kDocuments, kSystems, /*seed=*/2024);
  db.set_name("multi-system-scores");

  // The "query" is a target score profile; we want the k documents
  // whose scores match it in the most systems (rather than documents
  // that merely minimize an aggregate distance, which one outlier
  // system can dominate).
  const std::vector<Value> target(db.point(137).begin(),
                                  db.point(137).end());

  AdSearcher searcher(db);
  const uint64_t naive_cost =
      static_cast<uint64_t>(kDocuments) * kSystems;

  std::printf("%zu systems x %zu documents (%llu scores total)\n\n",
              kSystems, kDocuments,
              static_cast<unsigned long long>(naive_cost));
  std::printf("%-28s %-14s %-14s %s\n", "query", "top answer",
              "AD retrievals", "% of naive");

  for (size_t n = 2; n <= kSystems; n += 2) {
    auto r = searcher.KnMatch(target, n, 10);
    std::printf("k-n-match  k=10, n=%zu        doc %-9u %-14llu %5.2f%%\n",
                n, r.value().matches[0].pid,
                static_cast<unsigned long long>(
                    r.value().attributes_retrieved),
                100.0 * static_cast<double>(r.value().attributes_retrieved) /
                    static_cast<double>(naive_cost));
  }

  auto freq = searcher.FrequentKnMatch(target, 2, kSystems, 10);
  std::printf("frequent k-n-match [2, %zu]    doc %-9u %-14llu %5.2f%%\n",
              kSystems, freq.value().matches[0].pid,
              static_cast<unsigned long long>(
                  freq.value().attributes_retrieved),
              100.0 *
                  static_cast<double>(freq.value().attributes_retrieved) /
                  static_cast<double>(naive_cost));

  std::printf(
      "\nTheorem 3.2/3.3: no correct algorithm can retrieve fewer scores "
      "in this model.\n");
  return 0;
}

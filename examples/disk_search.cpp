// Disk-based similarity search (Section 4): the same frequent
// k-n-match query answered three ways against a simulated disk —
// sequential scan, the VA-file two-phase competitor, and the disk AD
// algorithm — with page-access and modelled-response-time accounting.
//
// Run: ./disk_search

#include <cstdio>

#include "knmatch.h"

int main() {
  using namespace knmatch;

  Dataset db = datagen::MakeTextureLike(/*seed=*/9, /*cardinality=*/20000);
  std::printf("dataset: %s, %zu points x %zu dims\n", db.name().c_str(),
              db.size(), db.dims());

  DiskSimulator disk;
  RowStore rows(db, &disk);
  ColumnStore columns(db, &disk);
  VaFile va(db, &disk, /*bits=*/8);
  std::printf("row file: %zu pages | sorted columns: %zu pages | "
              "VA-file: %zu pages (page = %zu B)\n\n",
              rows.num_pages(), columns.num_pages(), va.num_pages(),
              disk.config().page_size);

  const std::vector<Value> query(db.point(4711).begin(),
                                 db.point(4711).end());
  const size_t n0 = 4, n1 = 8, k = 10;
  std::printf("query: frequent %zu-n-match, n in [%zu, %zu]\n\n", k, n0, n1);

  DiskScan scan(rows);
  DiskAdSearcher ad(columns);
  VaKnMatchSearcher va_search(va, rows);

  std::printf("%-12s %-10s %-10s %-12s %-10s\n", "method", "seq pages",
              "rnd pages", "io time (s)", "top pid");

  auto report = [&](const char* name, auto&& run) {
    disk.ResetCounters();
    auto result = run();
    std::printf("%-12s %-10llu %-10llu %-12.3f %u\n", name,
                static_cast<unsigned long long>(disk.sequential_reads()),
                static_cast<unsigned long long>(disk.random_reads()),
                disk.SimulatedIoSeconds(), result.matches[0].pid);
    return result;
  };

  auto scan_result = report("scan", [&] {
    return scan.FrequentKnMatch(query, n0, n1, k).value();
  });
  auto ad_result = report("AD", [&] {
    return ad.FrequentKnMatch(query, n0, n1, k).value();
  });
  disk.ResetCounters();
  auto va_result = va_search.FrequentKnMatch(query, n0, n1, k).value();
  std::printf("%-12s %-10llu %-10llu %-12.3f %u   (%llu points refined)\n",
              "VA-file",
              static_cast<unsigned long long>(disk.sequential_reads()),
              static_cast<unsigned long long>(disk.random_reads()),
              disk.SimulatedIoSeconds(), va_result.base.matches[0].pid,
              static_cast<unsigned long long>(va_result.points_refined));

  // All three must agree exactly.
  const bool agree =
      scan_result.matches == ad_result.matches &&
      scan_result.matches == va_result.base.matches;
  std::printf("\nanswers identical across methods: %s\n",
              agree ? "yes" : "NO (bug!)");
  std::printf("AD attribute retrievals: %llu of %llu (%.1f%%)\n",
              static_cast<unsigned long long>(
                  ad_result.attributes_retrieved),
              static_cast<unsigned long long>(db.size() * db.dims()),
              100.0 * static_cast<double>(ad_result.attributes_retrieved) /
                  static_cast<double>(db.size() * db.dims()));
  return agree ? 0 : 1;
}

// Image search by partial similarity: the COIL-100 scenario of the
// paper's Section 5.1.1 on the planted COIL-like dataset.
//
// Object 42 (the query) and object 78 share texture and shape features
// exactly, but object 78's color is extreme — Euclidean kNN pushes it
// out of the top 10, while k-n-match surfaces it as soon as n ignores
// the 18 color dimensions. Frequent k-n-match then gives a stable
// ranking without choosing a single n.
//
// Run: ./image_search

#include <cstdio>

#include "knmatch.h"

int main() {
  using namespace knmatch;
  using datagen::CoilLikeIds;

  Dataset db = datagen::MakeCoilLike();
  const std::vector<Value> query(db.point(CoilLikeIds::kQuery).begin(),
                                 db.point(CoilLikeIds::kQuery).end());

  std::printf("database: %s (%zu objects x %zu features)\n",
              db.name().c_str(), db.size(), db.dims());
  std::printf("query: image %u; planted partial match: image %u "
              "(same texture+shape, far color)\n\n",
              CoilLikeIds::kQuery, CoilLikeIds::kBoat);

  std::printf("== 10-NN by Euclidean distance ==\n  ");
  auto knn = KnnScan(db, query, 10);
  bool boat_in_knn = false;
  for (const Neighbor& nb : knn.value().matches) {
    std::printf("%u ", nb.pid);
    boat_in_knn |= nb.pid == CoilLikeIds::kBoat;
  }
  std::printf("\n  image %u in the 10-NN answer: %s\n\n",
              CoilLikeIds::kBoat, boat_in_knn ? "yes" : "NO");

  AdSearcher searcher(db);
  std::printf("== k-n-match, k=4, sampled n ==\n");
  for (size_t n = 5; n <= 50; n += 5) {
    auto r = searcher.KnMatch(query, n, 4);
    std::printf("  n=%2zu: ", n);
    for (const Neighbor& nb : r.value().matches) {
      std::printf("%3u ", nb.pid);
    }
    std::printf("\n");
  }

  std::printf("\n== frequent k-n-match, k=4, n in [5, 50] ==\n");
  auto freq = searcher.FrequentKnMatch(query, 5, 50, 4);
  for (size_t i = 0; i < freq.value().matches.size(); ++i) {
    std::printf("  image %3u  (in %2u of 46 answer sets)\n",
                freq.value().matches[i].pid, freq.value().frequencies[i]);
  }
  return 0;
}

// End-to-end data-management workflow: import a CSV (e.g., a real UCI
// file), persist it as a checksummed binary snapshot, let the cost
// advisor pick a disk access path for a query, and run it.
//
// The CSV is generated on the fly here so the example is
// self-contained; point `csv_path` at your own file to use real data
// (e.g., UCI ionosphere with label_column = 34).
//
// Run: ./csv_workflow

#include <cstdio>

#include "knmatch.h"

int main() {
  using namespace knmatch;

  // 1. Produce a CSV as a stand-in for an external data drop.
  const std::string csv_path = "/tmp/knmatch_example.csv";
  const std::string knm_path = "/tmp/knmatch_example.knm";
  {
    datagen::ClusteredSpec spec;
    spec.cardinality = 2000;
    spec.dims = 12;
    spec.num_classes = 4;
    spec.seed = 321;
    Dataset generated = datagen::MakeClustered(spec);
    Status s = io::WriteCsv(generated, csv_path);
    if (!s.ok()) {
      std::fprintf(stderr, "write failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  // 2. Import with label handling and min-max normalization.
  io::CsvOptions options;
  options.label_column = 12;  // written as the last column above
  auto loaded = io::LoadCsv(csv_path, options);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  Dataset db = std::move(loaded).value();
  std::printf("imported %zu points x %zu dims, %zu classes from %s\n",
              db.size(), db.dims(), db.num_classes(), csv_path.c_str());

  // 3. Persist a binary snapshot and reload it (checksum-verified).
  if (Status s = io::SaveDataset(db, knm_path); !s.ok()) {
    std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  auto snapshot = io::LoadDataset(knm_path);
  std::printf("binary snapshot round trip: %s\n",
              snapshot.ok() ? "ok" : snapshot.status().ToString().c_str());

  // 4. Ask the advisor how to answer a frequent k-n-match query.
  const std::vector<Value> query(db.point(7).begin(), db.point(7).end());
  const size_t n0 = 3, n1 = 6, k = 10;
  eval::QueryAdvisor advisor(db);
  auto estimate = advisor.Estimate(query, n0, n1, k);
  if (!estimate.ok()) {
    std::fprintf(stderr, "advisor failed: %s\n",
                 estimate.status().ToString().c_str());
    return 1;
  }
  const char* method_name =
      estimate.value().best == eval::SearchMethod::kDiskAd ? "disk AD"
      : estimate.value().best == eval::SearchMethod::kVaFile
          ? "VA-file"
          : "sequential scan";
  std::printf("\nadvisor estimates (s): scan=%.3f AD=%.3f VA=%.3f -> %s\n",
              estimate.value().scan_seconds, estimate.value().ad_seconds,
              estimate.value().va_seconds, method_name);

  // 5. Execute with the chosen method.
  DiskSimulator disk;
  RowStore rows(db, &disk);
  ColumnStore columns(db, &disk);
  VaFile va(db, &disk, 8);
  disk.ResetCounters();

  FrequentKnMatchResult result;
  switch (estimate.value().best) {
    case eval::SearchMethod::kDiskAd:
      result = DiskAdSearcher(columns)
                   .FrequentKnMatch(query, n0, n1, k)
                   .value();
      break;
    case eval::SearchMethod::kVaFile:
      result = VaKnMatchSearcher(va, rows)
                   .FrequentKnMatch(query, n0, n1, k)
                   .value()
                   .base;
      break;
    case eval::SearchMethod::kSequentialScan:
      result = DiskScan(rows).FrequentKnMatch(query, n0, n1, k).value();
      break;
  }

  std::printf("measured io: %.3f s (%llu seq + %llu rnd pages)\n",
              disk.SimulatedIoSeconds(),
              static_cast<unsigned long long>(disk.sequential_reads()),
              static_cast<unsigned long long>(disk.random_reads()));
  std::printf("top matches (pid appeared-in-sets): ");
  for (size_t i = 0; i < result.matches.size(); ++i) {
    std::printf("%u(%u) ", result.matches[i].pid, result.frequencies[i]);
  }
  std::printf("\n");
  return 0;
}

// Interactive / scriptable shell over the SimilarityEngine — a
// downstream-style consumer of the whole public API. Reads commands
// from stdin, one per line:
//
//   gen uniform <c> <d> [seed]        synthesize data
//   gen clustered <c> <d> <classes> [seed]
//   gen texture <c> [seed]
//   gen coil                          the COIL-100-like image features
//   load csv <path> [label_col]      import a CSV (e.g., real UCI data)
//   load knm <path>                   load a binary snapshot
//   save knm <path>                   write a binary snapshot
//   save csv <path>
//   info                              dataset + storage statistics
//   knmatch <n> <k> <pid>             k-n-match around point <pid>
//   fknmatch <n0> <n1> <k> <pid>      frequent k-n-match
//   knn <k> <pid>                     Euclidean kNN
//   igrid <k> <pid>                   IGrid similarity search
//   disk <auto|scan|ad|va> <n0> <n1> <k> <pid>
//   join <n> <eps>                    epsilon-n-match self-join (pair count)
//   estimate <n> <k> <pid>            analytic selectivity estimate
//   insert <v1> <v2> ... <vd>         append a point (indexes rebuild lazily)
//   ingest begin [window]             durable live-ingest session (WAL,
//                                     group-commit window in txns)
//   ingest add <v1> ... <vd>          WAL-logged insert into the live trees
//   ingest erase <pid>                WAL-logged erase (frees tree slots)
//   ingest flush                      force the group-commit fsync
//   ingest query <n> <k> <pid>        k-n-match over the live snapshot
//   ingest status                     epoch, live size, free slots
//   ingest end                        checkpoint + fold live rows into the
//                                     dataset (indexes rebuild lazily)
//   wal stats                         appends/fsyncs/bytes/pending commits
//   wal checkpoint                    flush dirty pages, truncate the log
//   recover                           crash-recovery drill: rebuild the
//                                     trees from checkpoint + WAL redo
//   faults rate <transient> <corrupt> [seed]   randomized fault schedule
//   faults fail <page> <times>        script transient failures of a page
//   faults corrupt <page>             script sticky corruption of a page
//   faults clear                      heal the disk, lift quarantines
//   faults status                     injected-fault and quarantine counters
//   metrics [json|reset]              process metrics (Prometheus text/JSON)
//   trace on|off                      per-query phase timings + cost counters
//   threads <t>                       worker threads for batch commands
//   govern deadline <ms>              per-query deadline for later queries
//   govern budget attrs|pages|scratch <v>   per-query resource budgets
//   govern off                        lift all governance limits
//   govern status                     show the armed limits
//   shard on [shards] [hash|range|kmeans] [replicas]
//                                     build a scatter-gather ShardRouter
//                                     over the current dataset
//   shard query <n> <k> <pid>         sharded k-n-match (exact merge)
//   shard fquery <n0> <n1> <k> <pid>  sharded frequent k-n-match
//   shard stats                       dispatch/hedge/failover counters,
//                                     per-shard loads and breaker states
//   shard rebalance                   LPT rebalance under snapshot reads
//   shard off                         back to the unsharded engine
//   batch knmatch <n> <k> <q>         q sampled queries, fanned across workers
//   batch fknmatch <n0> <n1> <k> <q>
//   batch knn <k> <q>
//   help
//   quit
//
// Flags: --threads <t> presets the batch worker count (equivalent to
// the `threads` command; 0 = one per hardware thread).
// --deadline-ms <ms> and --budget <attrs> preset query governance: every
// query then runs under that deadline / attribute budget and, on a
// trip, reports its typed status (DeadlineExceeded / ResourceExhausted)
// plus the partial result it got to. Equivalent to `govern`.
// --cache enables the query-result cache with defaults for the whole
// session (equivalent to `cache on`); `cache stats` shows hit ratios
// and invalidation counts as you insert points.
// --shards/--partitioner/--replicas preset the `shard on` defaults.
//
// Try: printf 'gen coil\nknmatch 30 4 42\nknn 10 42\nquit\n' | ./knmatch_cli
// Try: ./knmatch_cli --deadline-ms 2 --budget 100000

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "knmatch.h"

namespace {

using namespace knmatch;

class Cli {
 public:
  Cli(size_t threads, double deadline_ms, uint64_t attr_budget,
      bool cache_on, size_t shards, shard::Partitioner partitioner,
      size_t replicas)
      : threads_(threads), deadline_ms_(deadline_ms), cache_on_(cache_on),
        shards_(shards), replicas_(replicas), partitioner_(partitioner) {
    budgets_.max_attributes = attr_budget;
  }

  int Run() {
    std::string line;
    std::printf("knmatch shell — 'help' lists commands\n");
    while (Prompt(), std::getline(std::cin, line)) {
      if (!Dispatch(line)) break;
    }
    return 0;
  }

 private:
  void Prompt() {
    std::printf("knmatch> ");
    std::fflush(stdout);
  }

  bool RequireData() {
    if (engine_ == nullptr) {
      std::printf("no dataset loaded; use 'gen' or 'load' first\n");
      return false;
    }
    return true;
  }

  bool QueryOf(size_t pid_token, std::vector<Value>* query) {
    if (pid_token >= engine_->dataset().size()) {
      std::printf("pid out of range (dataset has %zu points)\n",
                  engine_->dataset().size());
      return false;
    }
    auto p = engine_->dataset().point(static_cast<PointId>(pid_token));
    query->assign(p.begin(), p.end());
    return true;
  }

  void Adopt(Dataset db) {
    router_.reset();  // built over the previous dataset
    engine_ = std::make_unique<SimilarityEngine>(std::move(db));
    if (injector_ != nullptr) engine_->SetFaultInjector(injector_.get());
    if (cache_on_) engine_->EnableCache(cache_config_);
    std::printf("dataset: %s  (%zu points x %zu dims%s)\n",
                engine_->dataset().name().c_str(),
                engine_->dataset().size(), engine_->dataset().dims(),
                engine_->dataset().labelled() ? ", labelled" : "");
  }

  static const char* MethodName(SimilarityEngine::DiskMethod m) {
    switch (m) {
      case SimilarityEngine::DiskMethod::kScan: return "scan";
      case SimilarityEngine::DiskMethod::kAd: return "AD";
      case SimilarityEngine::DiskMethod::kVaFile: return "VA-file";
      case SimilarityEngine::DiskMethod::kMemoryAd: return "in-memory AD";
      case SimilarityEngine::DiskMethod::kAuto: return "auto";
    }
    return "?";
  }

  void PrintMatches(const std::vector<Neighbor>& matches) {
    for (const Neighbor& nb : matches) {
      std::printf("  pid %-8u score %.6f\n", nb.pid, nb.distance);
    }
  }

  // Arms `ctx` with the session's governance limits; returns nullptr
  // (run ungoverned) when none are set.
  QueryContext* ArmContext(QueryContext* ctx) {
    if (deadline_ms_ <= 0 && !budgets_.any()) return nullptr;
    if (deadline_ms_ > 0) ctx->set_deadline_in_ms(deadline_ms_);
    ctx->budgets() = budgets_;
    return ctx;
  }

  // Prints a query's error status and, if it was a governance trip,
  // the progress and partial result the query got to.
  void PrintStatus(const Status& s, const QueryContext* ctx) {
    std::printf("%s\n", s.ToString().c_str());
    if (ctx == nullptr || !ctx->tripped()) return;
    const GovernanceTrip& trip = ctx->trip();
    std::printf("  tripped after %llu attributes, %llu pops, "
                "%llu pages\n",
                static_cast<unsigned long long>(trip.attributes_retrieved),
                static_cast<unsigned long long>(trip.pops),
                static_cast<unsigned long long>(trip.pages_read));
    size_t have = 0;
    for (const auto& set : trip.partial_per_n_sets) have += set.size();
    std::printf("  partial result: %zu neighbor(s) across %zu answer "
                "set(s)\n",
                have, trip.partial_per_n_sets.size());
  }

  bool Dispatch(const std::string& line) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd)) return true;

    if (cmd == "quit" || cmd == "exit") return false;
    if (cmd == "help") {
      std::printf(
          "gen uniform|clustered|texture|coil ... | load csv|knm <path> | "
          "save csv|knm <path> | info |\n"
          "knmatch <n> <k> <pid> | fknmatch <n0> <n1> <k> <pid> | "
          "knn <k> <pid> | igrid <k> <pid> |\n"
          "disk auto|scan|ad|va|mem <n0> <n1> <k> <pid> | join <n> <eps> | "
          "estimate <n> <k> <pid> |\n"
          "insert <v1> ... <vd> | threads <t> |\n"
          "ingest begin [window] | ingest add <v1> ... <vd> | "
          "ingest erase <pid> | ingest flush |\n"
          "ingest query <n> <k> <pid> | ingest status | ingest end | "
          "wal stats|checkpoint | recover |\n"
          "faults rate <transient> <corrupt> [seed] | faults fail <page> "
          "<times> | faults corrupt <page> |\n"
          "faults clear | faults status | metrics [json|reset] | "
          "trace on|off |\n"
          "govern deadline <ms> | govern budget attrs|pages|scratch <v> | "
          "govern off | govern status |\n"
          "shard on [shards] [hash|range|kmeans] [replicas] | "
          "shard query <n> <k> <pid> |\n"
          "shard fquery <n0> <n1> <k> <pid> | shard stats | "
          "shard rebalance | shard off |\n"
          "cache on [mib] [warm_radius] | cache off | cache stats | "
          "cache clear |\n"
          "batch knmatch <n> <k> <q> | batch fknmatch <n0> <n1> <k> <q> | "
          "batch knn <k> <q> | quit\n");
      return true;
    }

    if (cmd == "metrics") {
      std::string fmt;
      in >> fmt;
      auto& registry = obs::MetricsRegistry::Global();
      if (fmt == "json") {
        std::printf("%s\n", obs::RenderJson(registry).c_str());
      } else if (fmt == "reset") {
        registry.Reset();
        std::printf("metrics reset\n");
      } else {
        std::printf("%s", obs::RenderPrometheus(registry).c_str());
      }
      return true;
    }

    if (cmd == "trace") {
      std::string state;
      in >> state;
      if (state == "on") {
        if (!obs::kMetricsCompiledIn) {
          std::printf("tracing was compiled out "
                      "(KNMATCH_DISABLE_METRICS)\n");
          return true;
        }
        if (trace_scope_ == nullptr) {
          trace_scope_ = std::make_unique<obs::TraceScope>(&trace_);
        }
        trace_.Clear();
        std::printf("tracing on: each query prints phase timings and "
                    "cost counters\n"
                    "(batch commands run on pool workers and are not "
                    "traced)\n");
      } else if (state == "off") {
        trace_scope_.reset();
        std::printf("tracing off\n");
      } else {
        std::printf("usage: trace on|off\n");
      }
      return true;
    }

    if (cmd == "threads") {
      size_t t;
      if (!(in >> t)) {
        std::printf("usage: threads <t>   (0 = one per hardware thread)\n");
        return true;
      }
      threads_ = t;
      std::printf("batch commands now use %zu worker thread(s)\n",
                  exec::ResolveThreads(threads_));
      return true;
    }

    if (cmd == "faults") {
      if (!RequireData()) return true;
      std::string what;
      in >> what;
      if (what == "rate") {
        FaultInjector::Config config;
        if (!(in >> config.transient_error_rate >> config.corruption_rate)) {
          std::printf("usage: faults rate <transient> <corrupt> [seed]\n");
          return true;
        }
        in >> config.seed;
        injector_ = std::make_unique<FaultInjector>(config);
        engine_->SetFaultInjector(injector_.get());
        std::printf("fault schedule armed: %.4f transient, %.4f corrupt "
                    "(seed %llu)\n",
                    config.transient_error_rate, config.corruption_rate,
                    static_cast<unsigned long long>(config.seed));
      } else if (what == "fail" || what == "corrupt") {
        uint64_t page = 0;
        uint32_t times = 0;
        if (!(in >> page) || (what == "fail" && !(in >> times))) {
          std::printf("usage: faults fail <page> <times> | "
                      "faults corrupt <page>\n");
          return true;
        }
        if (injector_ == nullptr) {
          injector_ = std::make_unique<FaultInjector>();
          engine_->SetFaultInjector(injector_.get());
        }
        if (what == "fail") {
          injector_->FailNextReads(page, times);
          std::printf("next %u read(s) of page %llu will fail\n", times,
                      static_cast<unsigned long long>(page));
        } else {
          injector_->CorruptPage(page);
          std::printf("page %llu now delivers corrupt images\n",
                      static_cast<unsigned long long>(page));
        }
      } else if (what == "clear") {
        engine_->ClearFaults();
        std::printf("faults cleared, quarantines lifted\n");
      } else if (what == "status") {
        if (injector_ == nullptr) {
          std::printf("no fault schedule armed\n");
        } else {
          std::printf("  transient faults injected: %llu\n"
                      "  corruptions injected:      %llu\n"
                      "  quarantined pages:         %llu\n",
                      static_cast<unsigned long long>(
                          injector_->transient_faults_injected()),
                      static_cast<unsigned long long>(
                          injector_->corruptions_injected()),
                      static_cast<unsigned long long>(
                          engine_->disk_simulator()->quarantined_pages()));
        }
      } else {
        std::printf("usage: faults rate|fail|corrupt|clear|status ...\n");
      }
      return true;
    }

    if (cmd == "govern") {
      std::string what;
      in >> what;
      if (what == "deadline") {
        double ms = 0;
        if (!(in >> ms) || ms < 0) {
          std::printf("usage: govern deadline <ms>   (0 = none)\n");
          return true;
        }
        deadline_ms_ = ms;
      } else if (what == "budget") {
        std::string which;
        uint64_t v = 0;
        if (!(in >> which >> v)) {
          std::printf("usage: govern budget attrs|pages|scratch <v>   "
                      "(0 = unlimited)\n");
          return true;
        }
        if (which == "attrs") {
          budgets_.max_attributes = v;
        } else if (which == "pages") {
          budgets_.max_pages = v;
        } else if (which == "scratch") {
          budgets_.max_scratch_bytes = static_cast<size_t>(v);
        } else {
          std::printf("usage: govern budget attrs|pages|scratch <v>\n");
          return true;
        }
      } else if (what == "off") {
        deadline_ms_ = 0;
        budgets_ = QueryBudgets{};
      } else if (what != "status") {
        std::printf("usage: govern deadline|budget|off|status ...\n");
        return true;
      }
      if (deadline_ms_ <= 0 && !budgets_.any()) {
        std::printf("governance off: queries run unbounded\n");
      } else {
        std::printf("governance armed:");
        const char* sep = " ";
        if (deadline_ms_ > 0) {
          std::printf("%sdeadline %.3f ms", sep, deadline_ms_);
          sep = " | ";
        }
        if (budgets_.max_attributes != 0) {
          std::printf("%sattrs <= %llu", sep,
                      static_cast<unsigned long long>(
                          budgets_.max_attributes));
          sep = " | ";
        }
        if (budgets_.max_pages != 0) {
          std::printf("%spages <= %llu", sep,
                      static_cast<unsigned long long>(budgets_.max_pages));
          sep = " | ";
        }
        if (budgets_.max_scratch_bytes != 0) {
          std::printf("%sscratch <= %zu B", sep,
                      budgets_.max_scratch_bytes);
        }
        std::printf("\n");
      }
      return true;
    }

    if (cmd == "cache") {
      std::string what;
      in >> what;
      if (what == "on") {
        double mib = 32;
        double radius = 0;
        in >> mib >> radius;
        cache_config_ = cache::CacheConfig{};
        if (mib > 0) {
          cache_config_.max_bytes =
              static_cast<size_t>(mib * 1024.0 * 1024.0);
        }
        cache_config_.warm_radius = radius;
        cache_on_ = true;
        if (engine_ != nullptr) engine_->EnableCache(cache_config_);
        std::printf("cache on: %.1f MiB budget", mib);
        if (radius > 0) {
          std::printf(", warm-start radius %.4f", radius);
        }
        std::printf("  (survives gen/load)\n");
      } else if (what == "off") {
        cache_on_ = false;
        if (engine_ != nullptr) engine_->DisableCache();
        std::printf("cache off\n");
      } else if (what == "clear") {
        if (engine_ == nullptr || engine_->cache() == nullptr) {
          std::printf("cache is not enabled\n");
          return true;
        }
        engine_->cache()->Clear();
        std::printf("cache cleared\n");
      } else if (what == "stats") {
        if (engine_ == nullptr || engine_->cache() == nullptr) {
          std::printf("cache is not enabled\n");
          return true;
        }
        const auto s = engine_->cache()->Stats();
        const uint64_t lookups = s.hits + s.misses;
        std::printf(
            "  entries %llu  bytes %llu\n"
            "  hits %llu  misses %llu  (%.1f%% hit ratio)\n"
            "  stores %llu  evictions %llu\n"
            "  invalidated: %llu by insert, %llu by erase\n",
            static_cast<unsigned long long>(s.entries),
            static_cast<unsigned long long>(s.bytes),
            static_cast<unsigned long long>(s.hits),
            static_cast<unsigned long long>(s.misses),
            lookups > 0 ? 100.0 * static_cast<double>(s.hits) /
                              static_cast<double>(lookups)
                        : 0.0,
            static_cast<unsigned long long>(s.stores),
            static_cast<unsigned long long>(s.evictions),
            static_cast<unsigned long long>(s.invalidated_insert),
            static_cast<unsigned long long>(s.invalidated_erase));
      } else {
        std::printf("usage: cache on [mib] [warm_radius] | cache "
                    "off|stats|clear\n");
      }
      return true;
    }

    if (cmd == "batch") {
      if (!RequireData()) return true;
      std::string what;
      in >> what;
      size_t n0 = 0, n1 = 0, k = 0, q = 0;
      if (what == "knmatch") {
        if (!(in >> n0 >> k >> q)) {
          std::printf("usage: batch knmatch <n> <k> <q>\n");
          return true;
        }
        n1 = n0;
      } else if (what == "fknmatch") {
        if (!(in >> n0 >> n1 >> k >> q)) {
          std::printf("usage: batch fknmatch <n0> <n1> <k> <q>\n");
          return true;
        }
      } else if (what == "knn") {
        if (!(in >> k >> q)) {
          std::printf("usage: batch knn <k> <q>\n");
          return true;
        }
      } else {
        std::printf("usage: batch knmatch|fknmatch|knn ...\n");
        return true;
      }
      RunBatch(what, n0, n1, k, q);
      return true;
    }

    if (cmd == "ingest") {
      if (!RequireData()) return true;
      std::string what;
      in >> what;
      if (what == "begin") {
        SimilarityEngine::IngestConfig config;
        in >> config.group_commit_window;
        if (config.group_commit_window == 0) config.group_commit_window = 1;
        const Status s = engine_->BeginIngest(config);
        if (!s.ok()) {
          std::printf("%s\n", s.ToString().c_str());
          return true;
        }
        std::printf("ingest session open (group-commit window %zu)\n",
                    config.group_commit_window);
      } else if (what == "add") {
        std::vector<Value> coords;
        Value v;
        while (in >> v) coords.push_back(v);
        auto r = engine_->IngestPoint(coords);
        if (!r.ok()) {
          std::printf("%s\n", r.status().ToString().c_str());
          return true;
        }
        std::printf("ingested pid %u\n", r.value());
      } else if (what == "erase") {
        PointId pid = 0;
        if (!(in >> pid)) {
          std::printf("usage: ingest erase <pid>\n");
          return true;
        }
        auto r = engine_->ErasePoint(pid);
        if (!r.ok()) {
          std::printf("%s\n", r.status().ToString().c_str());
        } else {
          std::printf(r.value() ? "erased pid %u\n"
                                : "pid %u was not live\n",
                      pid);
        }
      } else if (what == "flush") {
        const Status s = engine_->FlushIngest();
        std::printf("%s\n", s.ok() ? "flushed" : s.ToString().c_str());
      } else if (what == "query") {
        size_t n, k, pid;
        if (!(in >> n >> k >> pid)) {
          std::printf("usage: ingest query <n> <k> <pid>\n");
          return true;
        }
        std::vector<Value> q;
        if (!QueryOf(pid, &q)) return true;
        QueryContext ctx;
        QueryContext* pctx = ArmContext(&ctx);
        auto r = engine_->LiveKnMatch(q, n, k, pctx);
        if (!r.ok()) {
          PrintStatus(r.status(), pctx);
          return true;
        }
        PrintMatches(r.value().matches);
        std::printf("  (%llu attributes retrieved, live snapshot)\n",
                    static_cast<unsigned long long>(
                        r.value().attributes_retrieved));
      } else if (what == "status") {
        const LiveColumnIndex* live = engine_->live_index();
        if (live == nullptr) {
          std::printf("no ingest session; 'ingest begin' first\n");
          return true;
        }
        std::printf("  epoch %llu | %zu live points | %zu free tree "
                    "slots | %zu committed ops (%zu pending)\n",
                    static_cast<unsigned long long>(live->epoch()),
                    live->live_size(), live->free_slots(),
                    live->committed_ops().size(), live->pending_ops());
      } else if (what == "end") {
        const Status s = engine_->EndIngest();
        if (!s.ok()) {
          std::printf("%s\n", s.ToString().c_str());
          return true;
        }
        std::printf("ingest folded in: dataset now %zu points (indexes "
                    "rebuild on next query)\n",
                    engine_->dataset().size());
      } else {
        std::printf(
            "usage: ingest begin|add|erase|flush|query|status|end ...\n");
      }
      return true;
    }

    if (cmd == "shard") {
      std::string what;
      in >> what;
      if (what == "on") {
        if (!RequireData()) return true;
        shard::RouterOptions opts;
        opts.shards = shards_;
        opts.replicas = replicas_;
        opts.partitioner = partitioner_;
        size_t s = 0;
        if (in >> s && s > 0) opts.shards = s;
        std::string part;
        if (in >> part) {
          auto p = shard::ParsePartitioner(part);
          if (!p.ok()) {
            std::printf("%s\n", p.status().ToString().c_str());
            return true;
          }
          opts.partitioner = p.value();
        }
        size_t r = 0;
        if (in >> r && r > 0) opts.replicas = r;
        opts.threads = threads_;
        router_ = std::make_unique<shard::ShardRouter>(
            engine_->dataset(), opts);
        if (cache_on_) router_->EnableCache(cache_config_);
        std::printf("sharded: %zu shard(s) x %zu replica(s), %s "
                    "partitioner over %zu points\n",
                    router_->num_shards(), router_->num_replicas(),
                    shard::PartitionerName(opts.partitioner),
                    engine_->dataset().size());
        return true;
      }
      if (what == "off") {
        router_.reset();
        std::printf("sharding off: queries run on the unsharded engine\n");
        return true;
      }
      if (router_ == nullptr) {
        std::printf("no shard router; 'shard on [shards] "
                    "[hash|range|kmeans] [replicas]' first\n");
        return true;
      }
      if (what == "query" || what == "fquery") {
        size_t n0, n1, k, pid;
        if (what == "query") {
          if (!(in >> n0 >> k >> pid)) {
            std::printf("usage: shard query <n> <k> <pid>\n");
            return true;
          }
          n1 = n0;
        } else if (!(in >> n0 >> n1 >> k >> pid)) {
          std::printf("usage: shard fquery <n0> <n1> <k> <pid>\n");
          return true;
        }
        std::vector<Value> q;
        if (!QueryOf(pid, &q)) return true;
        QueryContext ctx;
        QueryContext* pctx = ArmContext(&ctx);
        FrequentKnMatchResult result;
        if (what == "query") {
          auto r = router_->KnMatch(q, n0, k, {}, pctx);
          if (!r.ok()) {
            PrintStatus(r.status(), pctx);
            return true;
          }
          result.per_n_sets.push_back(std::move(r.value().matches));
        } else {
          auto r = router_->FrequentKnMatch(q, n0, n1, k, {}, pctx);
          if (!r.ok()) {
            PrintStatus(r.status(), pctx);
            return true;
          }
          result = std::move(r.value());
        }
        for (size_t i = 0; i < result.per_n_sets.size(); ++i) {
          if (result.per_n_sets.size() > 1) {
            std::printf(" n=%zu:\n", n0 + i);
          }
          PrintMatches(result.per_n_sets[i]);
        }
        if (what == "fquery" && !result.matches.empty()) {
          std::printf("  frequent:");
          for (size_t i = 0; i < result.matches.size(); ++i) {
            std::printf(" pid %u (x%u)", result.matches[i].pid,
                        result.frequencies[i]);
          }
          std::printf("\n");
        }
        const shard::DispatchReport& d = router_->last_dispatch();
        std::printf("  %zu shard(s) dispatched", d.shards_dispatched);
        if (d.cache_hit) std::printf(", served from cache");
        if (d.hedges > 0) {
          std::printf(", %zu hedged (%zu won)", d.hedges, d.hedge_wins);
        }
        if (d.failovers > 0) std::printf(", %zu failover(s)", d.failovers);
        if (d.breaker_skips > 0) {
          std::printf(", %zu breaker skip(s)", d.breaker_skips);
        }
        std::printf("\n");
        if (d.degradation.partial()) {
          std::printf("  PARTIAL answer: %zu/%zu shards answered\n",
                      d.degradation.shards_answered,
                      d.degradation.shards_total);
          for (const shard::ShardFailure& f : d.degradation.failed) {
            std::printf("    shard %u: %s\n", f.shard,
                        f.status.ToString().c_str());
          }
        }
        MaybePrintTrace();
      } else if (what == "stats") {
        const shard::RouterStats st = router_->Stats();
        std::printf(
            "  queries %llu  dispatches %llu  hedges %llu (%llu won)\n"
            "  failovers %llu  breaker skips %llu  partial answers %llu\n"
            "  rebalances %llu (%llu partitions moved)  cache hits %llu\n",
            static_cast<unsigned long long>(st.queries),
            static_cast<unsigned long long>(st.dispatches),
            static_cast<unsigned long long>(st.hedges),
            static_cast<unsigned long long>(st.hedge_wins),
            static_cast<unsigned long long>(st.failovers),
            static_cast<unsigned long long>(st.breaker_skips),
            static_cast<unsigned long long>(st.partial_answers),
            static_cast<unsigned long long>(st.rebalances),
            static_cast<unsigned long long>(st.partitions_moved),
            static_cast<unsigned long long>(st.cache_hits));
        for (size_t i = 0; i < st.shard_points.size(); ++i) {
          const char* state = "closed";
          switch (router_->breaker_state(i)) {
            case exec::CircuitBreaker::State::kOpen: state = "OPEN"; break;
            case exec::CircuitBreaker::State::kHalfOpen:
              state = "half-open";
              break;
            default: break;
          }
          std::printf("  shard %zu: %llu point(s), breaker %s\n", i,
                      static_cast<unsigned long long>(st.shard_points[i]),
                      state);
        }
      } else if (what == "rebalance") {
        auto r = router_->Rebalance();
        if (!r.ok()) {
          std::printf("%s\n", r.status().ToString().c_str());
          return true;
        }
        std::printf("  moved %zu partition(s); max shard load %llu -> "
                    "%llu point(s)\n",
                    r.value().partitions_moved,
                    static_cast<unsigned long long>(
                        r.value().max_shard_points_before),
                    static_cast<unsigned long long>(
                        r.value().max_shard_points_after));
      } else {
        std::printf(
            "usage: shard on [shards] [hash|range|kmeans] [replicas] | "
            "shard query|fquery|stats|rebalance|off ...\n");
      }
      return true;
    }

    if (cmd == "wal") {
      if (!RequireData()) return true;
      std::string what;
      in >> what;
      const LiveColumnIndex* live = engine_->live_index();
      if (live == nullptr) {
        std::printf("no ingest session; 'ingest begin' first\n");
        return true;
      }
      if (what == "stats") {
        const WriteAheadLog::Stats st = live->wal().stats();
        std::printf(
            "  appends %llu  commits %llu  fsyncs %llu  checkpoints %llu\n"
            "  log %llu B (%llu durable)  lifetime appended %llu B\n"
            "  pending commits %llu  truncations %llu  next lsn %llu\n",
            static_cast<unsigned long long>(st.appends),
            static_cast<unsigned long long>(st.commits),
            static_cast<unsigned long long>(st.fsyncs),
            static_cast<unsigned long long>(st.checkpoints),
            static_cast<unsigned long long>(st.log_bytes),
            static_cast<unsigned long long>(st.durable_bytes),
            static_cast<unsigned long long>(st.bytes_appended),
            static_cast<unsigned long long>(st.pending_commits),
            static_cast<unsigned long long>(st.truncations),
            static_cast<unsigned long long>(st.next_lsn));
      } else if (what == "checkpoint") {
        const Status s = engine_->Checkpoint();
        std::printf("%s\n",
                    s.ok() ? "checkpointed; log truncated"
                           : s.ToString().c_str());
      } else {
        std::printf("usage: wal stats|checkpoint\n");
      }
      return true;
    }

    if (cmd == "recover") {
      if (!RequireData()) return true;
      if (engine_->live_index() == nullptr) {
        std::printf("no ingest session; 'ingest begin' first\n");
        return true;
      }
      const Status s = engine_->Recover();
      if (!s.ok()) {
        std::printf("%s\n", s.ToString().c_str());
        return true;
      }
      const LiveColumnIndex* live = engine_->live_index();
      std::printf("recovered: epoch %llu, %zu live points (cache epoch "
                  "bumped)\n",
                  static_cast<unsigned long long>(live->epoch()),
                  live->live_size());
      return true;
    }

    if (cmd == "gen") {
      std::string kind;
      in >> kind;
      if (kind == "uniform") {
        size_t c = 1000, d = 8;
        uint64_t seed = 1;
        in >> c >> d >> seed;
        Adopt(datagen::MakeUniform(c, d, seed));
      } else if (kind == "clustered") {
        datagen::ClusteredSpec spec;
        in >> spec.cardinality >> spec.dims >> spec.num_classes >>
            spec.seed;
        Adopt(datagen::MakeClustered(spec));
      } else if (kind == "texture") {
        size_t c = 68040;
        uint64_t seed = 9;
        in >> c >> seed;
        Adopt(datagen::MakeTextureLike(seed, c));
      } else if (kind == "coil") {
        Adopt(datagen::MakeCoilLike());
      } else {
        std::printf("unknown generator '%s'\n", kind.c_str());
      }
      return true;
    }

    if (cmd == "load") {
      std::string kind, path;
      in >> kind >> path;
      if (kind == "csv") {
        io::CsvOptions options;
        int label_col = -1;
        if (in >> label_col) options.label_column = label_col;
        auto loaded = io::LoadCsv(path, options);
        if (!loaded.ok()) {
          std::printf("load failed: %s\n",
                      loaded.status().ToString().c_str());
        } else {
          Adopt(std::move(loaded).value());
        }
      } else if (kind == "knm") {
        auto loaded = io::LoadDataset(path);
        if (!loaded.ok()) {
          std::printf("load failed: %s\n",
                      loaded.status().ToString().c_str());
        } else {
          Adopt(std::move(loaded).value());
        }
      } else {
        std::printf("usage: load csv|knm <path>\n");
      }
      return true;
    }

    if (cmd == "save") {
      if (!RequireData()) return true;
      std::string kind, path;
      in >> kind >> path;
      const Status s = kind == "csv"
                           ? io::WriteCsv(engine_->dataset(), path)
                           : io::SaveDataset(engine_->dataset(), path);
      std::printf("%s\n", s.ok() ? "saved" : s.ToString().c_str());
      return true;
    }

    if (cmd == "info") {
      if (!RequireData()) return true;
      const Dataset& db = engine_->dataset();
      std::printf("name: %s\npoints: %zu\ndims: %zu\nclasses: %zu\n",
                  db.name().c_str(), db.size(), db.dims(),
                  db.num_classes());
      const auto stats = engine_->DiskStorageStats();
      std::printf("disk: %zu row pages, %zu column pages, %zu VA pages\n",
                  stats.row_pages, stats.column_pages, stats.va_pages);
      return true;
    }

    if (cmd == "knmatch") {
      if (!RequireData()) return true;
      size_t n, k, pid;
      if (!(in >> n >> k >> pid)) {
        std::printf("usage: knmatch <n> <k> <pid>\n");
        return true;
      }
      std::vector<Value> q;
      if (!QueryOf(pid, &q)) return true;
      QueryContext ctx;
      QueryContext* pctx = ArmContext(&ctx);
      auto r = engine_->KnMatch(q, n, k, {}, pctx);
      if (!r.ok()) {
        PrintStatus(r.status(), pctx);
        return true;
      }
      PrintMatches(r.value().matches);
      std::printf("  (%llu attributes retrieved)\n",
                  static_cast<unsigned long long>(
                      r.value().attributes_retrieved));
      MaybePrintTrace();
      return true;
    }

    if (cmd == "fknmatch") {
      if (!RequireData()) return true;
      size_t n0, n1, k, pid;
      if (!(in >> n0 >> n1 >> k >> pid)) {
        std::printf("usage: fknmatch <n0> <n1> <k> <pid>\n");
        return true;
      }
      std::vector<Value> q;
      if (!QueryOf(pid, &q)) return true;
      QueryContext ctx;
      QueryContext* pctx = ArmContext(&ctx);
      auto r = engine_->FrequentKnMatch(q, n0, n1, k, {}, pctx);
      if (!r.ok()) {
        PrintStatus(r.status(), pctx);
        return true;
      }
      for (size_t i = 0; i < r.value().matches.size(); ++i) {
        std::printf("  pid %-8u in %u of %zu answer sets\n",
                    r.value().matches[i].pid, r.value().frequencies[i],
                    n1 - n0 + 1);
      }
      MaybePrintTrace();
      return true;
    }

    if (cmd == "knn" || cmd == "igrid") {
      if (!RequireData()) return true;
      size_t k, pid;
      if (!(in >> k >> pid)) {
        std::printf("usage: %s <k> <pid>\n", cmd.c_str());
        return true;
      }
      std::vector<Value> q;
      if (!QueryOf(pid, &q)) return true;
      QueryContext ctx;
      QueryContext* pctx = cmd == "knn" ? ArmContext(&ctx) : nullptr;
      auto r = cmd == "knn" ? engine_->Knn(q, k, Metric::kEuclidean, pctx)
                            : engine_->IGridSearch(q, k);
      if (!r.ok()) {
        PrintStatus(r.status(), pctx);
        return true;
      }
      PrintMatches(r.value().matches);
      MaybePrintTrace();
      return true;
    }

    if (cmd == "disk") {
      if (!RequireData()) return true;
      std::string method_name;
      size_t n0, n1, k, pid;
      if (!(in >> method_name >> n0 >> n1 >> k >> pid)) {
        std::printf("usage: disk auto|scan|ad|va|mem <n0> <n1> <k> <pid>\n");
        return true;
      }
      SimilarityEngine::DiskMethod method =
          SimilarityEngine::DiskMethod::kAuto;
      if (method_name == "scan") {
        method = SimilarityEngine::DiskMethod::kScan;
      } else if (method_name == "ad") {
        method = SimilarityEngine::DiskMethod::kAd;
      } else if (method_name == "va") {
        method = SimilarityEngine::DiskMethod::kVaFile;
      } else if (method_name == "mem") {
        method = SimilarityEngine::DiskMethod::kMemoryAd;
      } else if (method_name != "auto") {
        std::printf("unknown method '%s'\n", method_name.c_str());
        return true;
      }
      std::vector<Value> q;
      if (!QueryOf(pid, &q)) return true;
      QueryContext ctx;
      QueryContext* pctx = ArmContext(&ctx);
      auto r = engine_->DiskFrequentKnMatch(q, n0, n1, k, method, pctx);
      for (const auto& step : engine_->last_disk_fallback()) {
        std::printf("  degraded: %s failed (%s)\n", MethodName(step.method),
                    step.status.ToString().c_str());
      }
      if (!r.ok()) {
        PrintStatus(r.status(), pctx);
        return true;
      }
      const char* ran = MethodName(engine_->last_disk_method());
      PrintMatches(r.value().matches);
      std::printf("  method: %s | io %.3fs (%llu seq + %llu rnd pages)\n",
                  ran, engine_->last_disk_cost().io_seconds,
                  static_cast<unsigned long long>(
                      engine_->last_disk_cost().sequential_pages),
                  static_cast<unsigned long long>(
                      engine_->last_disk_cost().random_pages));
      MaybePrintTrace();
      return true;
    }

    if (cmd == "join") {
      if (!RequireData()) return true;
      size_t n;
      double eps;
      if (!(in >> n >> eps)) {
        std::printf("usage: join <n> <eps>\n");
        return true;
      }
      auto r = engine_->SelfJoin(n, eps);
      if (!r.ok()) {
        std::printf("%s\n", r.status().ToString().c_str());
        return true;
      }
      std::printf("  %zu pairs match within eps=%.4f in >= %zu dims\n",
                  r.value().size(), eps, n);
      for (size_t i = 0; i < std::min<size_t>(10, r.value().size()); ++i) {
        std::printf("  (%u, %u)\n", r.value()[i].a, r.value()[i].b);
      }
      if (r.value().size() > 10) std::printf("  ...\n");
      return true;
    }

    if (cmd == "estimate") {
      if (!RequireData()) return true;
      size_t n, k, pid;
      if (!(in >> n >> k >> pid)) {
        std::printf("usage: estimate <n> <k> <pid>\n");
        return true;
      }
      std::vector<Value> q;
      if (!QueryOf(pid, &q)) return true;
      auto r = engine_->EstimateSelectivity(q, n, k);
      if (!r.ok()) {
        std::printf("%s\n", r.status().ToString().c_str());
        return true;
      }
      std::printf("  estimated %zu-%zu-match difference: %.4f\n", k, n,
                  r.value().estimated_difference);
      std::printf("  estimated AD attribute fraction: %.1f%%\n",
                  100 * r.value().ad_attribute_fraction);
      return true;
    }

    if (cmd == "insert") {
      if (!RequireData()) return true;
      std::vector<Value> coords;
      Value v;
      while (in >> v) coords.push_back(v);
      if (coords.size() != engine_->dataset().dims()) {
        std::printf("need exactly %zu coordinates\n",
                    engine_->dataset().dims());
        return true;
      }
      const PointId pid = engine_->InsertPoint(coords);
      std::printf("inserted pid %u (dataset now %zu points; indexes "
                  "rebuild on next query)\n",
                  pid, engine_->dataset().size());
      return true;
    }

    std::printf("unknown command '%s' — try 'help'\n", cmd.c_str());
    return true;
  }

  // Samples `q` dataset points as queries and runs them as one batch,
  // reporting wall time, throughput, and a determinism checksum (the
  // sum of all result pids — identical for every thread count).
  void RunBatch(const std::string& what, size_t n0, size_t n1, size_t k,
                size_t q) {
    exec::BatchRequest request;
    request.options.threads = threads_;
    // Session governance applies per query inside the batch too; the
    // session deadline doubles as the whole batch's deadline.
    if (deadline_ms_ > 0) request.options.deadline_ms = deadline_ms_;
    request.options.budgets = budgets_;
    for (const PointId pid :
         eval::SampleQueryPids(engine_->dataset(), q, /*seed=*/4242)) {
      auto p = engine_->dataset().point(pid);
      request.queries.emplace_back(p.begin(), p.end());
    }

    const auto start = std::chrono::steady_clock::now();
    uint64_t checksum = 0;
    uint64_t attributes = 0;
    size_t answered = 0;
    size_t skipped = 0;
    auto tally = [&](const std::vector<Status>& statuses) {
      for (const Status& s : statuses) {
        if (s.ok()) {
          ++answered;
        } else {
          ++skipped;
        }
      }
    };
    if (what == "knn") {
      auto r = engine_->KnnBatch(request, k);
      if (!r.ok()) {
        std::printf("%s\n", r.status().ToString().c_str());
        return;
      }
      tally(r.value().statuses);
      for (const auto& result : r.value().results) {
        for (const Neighbor& nb : result.matches) checksum += nb.pid;
      }
    } else if (what == "knmatch") {
      auto r = engine_->KnMatchBatch(request, n0, k);
      if (!r.ok()) {
        std::printf("%s\n", r.status().ToString().c_str());
        return;
      }
      tally(r.value().statuses);
      attributes = r.value().attributes_retrieved;
      for (const auto& result : r.value().results) {
        for (const Neighbor& nb : result.matches) checksum += nb.pid;
      }
    } else {
      auto r = engine_->FrequentKnMatchBatch(request, n0, n1, k);
      if (!r.ok()) {
        std::printf("%s\n", r.status().ToString().c_str());
        return;
      }
      tally(r.value().statuses);
      attributes = r.value().attributes_retrieved;
      for (const auto& result : r.value().results) {
        for (const Neighbor& nb : result.matches) checksum += nb.pid;
      }
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    std::printf(
        "  %zu queries on %zu worker(s): %.3f s  (%.1f queries/s)\n",
        answered, exec::ResolveThreads(threads_), seconds,
        seconds > 0 ? static_cast<double>(answered) / seconds : 0.0);
    if (skipped > 0) {
      std::printf("  %zu queries skipped or shed "
                  "(deadline/cancel/budget)\n",
                  skipped);
    }
    if (attributes > 0) {
      std::printf("  %llu attributes retrieved in total\n",
                  static_cast<unsigned long long>(attributes));
    }
    std::printf("  checksum %llu\n",
                static_cast<unsigned long long>(checksum));
  }

  // Prints and clears the accumulated per-query trace (no-op while
  // tracing is off). Query commands call this after their answer.
  void MaybePrintTrace() {
    if (trace_scope_ == nullptr) return;
    std::printf("%s", trace_.ToString().c_str());
    trace_.Clear();
  }

  std::unique_ptr<SimilarityEngine> engine_;
  std::unique_ptr<FaultInjector> injector_;
  obs::QueryTrace trace_;
  std::unique_ptr<obs::TraceScope> trace_scope_;
  size_t threads_ = 0;
  double deadline_ms_ = 0;
  QueryBudgets budgets_;
  // Session cache policy: re-applied to every engine Adopt() builds.
  bool cache_on_ = false;
  cache::CacheConfig cache_config_;
  // Scatter-gather router over the current dataset ('shard on'); the
  // flags below seed its defaults and Adopt() drops it.
  std::unique_ptr<shard::ShardRouter> router_;
  size_t shards_ = 4;
  size_t replicas_ = 1;
  shard::Partitioner partitioner_ = shard::Partitioner::kHash;
};

}  // namespace

int main(int argc, char** argv) {
  size_t threads = 0;
  double deadline_ms = 0;
  uint64_t attr_budget = 0;
  bool cache_on = false;
  size_t shards = 4;
  size_t replicas = 1;
  knmatch::shard::Partitioner partitioner =
      knmatch::shard::Partitioner::kHash;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--deadline-ms" && i + 1 < argc) {
      deadline_ms = std::strtod(argv[++i], nullptr);
    } else if (arg == "--budget" && i + 1 < argc) {
      attr_budget = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--cache") {
      cache_on = true;
    } else if (arg == "--shards" && i + 1 < argc) {
      shards = static_cast<size_t>(std::strtoul(argv[++i], nullptr, 10));
      if (shards == 0) shards = 1;
    } else if (arg == "--replicas" && i + 1 < argc) {
      replicas = static_cast<size_t>(std::strtoul(argv[++i], nullptr, 10));
      if (replicas == 0) replicas = 1;
    } else if (arg == "--partitioner" && i + 1 < argc) {
      auto p = knmatch::shard::ParsePartitioner(argv[++i]);
      if (!p.ok()) {
        std::fprintf(stderr, "%s\n", p.status().ToString().c_str());
        return 1;
      }
      partitioner = p.value();
    } else {
      std::fprintf(stderr,
                   "usage: %s [--threads <t>] [--deadline-ms <ms>] "
                   "[--budget <attrs>] [--cache] [--shards <s>] "
                   "[--partitioner hash|range|kmeans] [--replicas <r>]\n",
                   argv[0]);
      return 1;
    }
  }
  return Cli(threads, deadline_ms, attr_budget, cache_on, shards,
             partitioner, replicas)
      .Run();
}

#ifndef KNMATCH_KNMATCH_H_
#define KNMATCH_KNMATCH_H_

/// \file
/// Umbrella header for the knmatch library — a from-scratch
/// implementation of "Similarity Search: A Matching Based Approach"
/// (Tung, Zhang, Koudas, Ooi; VLDB 2006): the k-n-match and frequent
/// k-n-match query models, the optimal AD algorithm (in memory and on
/// disk), the VA-file competitor, and the effectiveness baselines the
/// paper compares against.

#include "knmatch/common/dataset.h"
#include "knmatch/common/matrix.h"
#include "knmatch/common/kmeans.h"
#include "knmatch/common/random.h"
#include "knmatch/common/stats.h"
#include "knmatch/common/status.h"
#include "knmatch/common/top_k.h"
#include "knmatch/common/types.h"

#include "knmatch/core/ad_algorithm.h"
#include "knmatch/core/ad_stream.h"
#include "knmatch/core/answer_merge.h"
#include "knmatch/core/categorical.h"
#include "knmatch/core/match_types.h"
#include "knmatch/core/nmatch.h"
#include "knmatch/core/nmatch_join.h"
#include "knmatch/core/nmatch_naive.h"
#include "knmatch/core/query_context.h"
#include "knmatch/core/sorted_columns.h"

#include "knmatch/datagen/coil_like.h"
#include "knmatch/datagen/generators.h"
#include "knmatch/datagen/texture_like.h"
#include "knmatch/datagen/uci_like.h"
#include "knmatch/datagen/zipfian.h"

#include "knmatch/storage/bplus_tree.h"
#include "knmatch/storage/column_store.h"
#include "knmatch/storage/disk_simulator.h"
#include "knmatch/storage/fault_injector.h"
#include "knmatch/storage/free_space.h"
#include "knmatch/storage/ingest.h"
#include "knmatch/storage/page_codec.h"
#include "knmatch/storage/paged_file.h"
#include "knmatch/storage/row_store.h"
#include "knmatch/storage/wal.h"

#include "knmatch/diskalgo/btree_ad.h"
#include "knmatch/diskalgo/disk_ad.h"
#include "knmatch/diskalgo/disk_scan.h"

#include "knmatch/vafile/va_file.h"
#include "knmatch/vafile/va_knmatch.h"
#include "knmatch/vafile/va_knn.h"

#include "knmatch/cache/btree_bridge.h"
#include "knmatch/cache/cached_search.h"
#include "knmatch/cache/query_cache.h"

#include "knmatch/exec/batch.h"
#include "knmatch/exec/circuit_breaker.h"
#include "knmatch/exec/ewma.h"
#include "knmatch/exec/thread_pool.h"

#include "knmatch/obs/catalog.h"
#include "knmatch/obs/exposition.h"
#include "knmatch/obs/metrics.h"
#include "knmatch/obs/trace.h"

#include "knmatch/engine.h"

#include "knmatch/shard/partition.h"
#include "knmatch/shard/shard_router.h"

#include "knmatch/baselines/dpf.h"
#include "knmatch/baselines/fagin.h"
#include "knmatch/baselines/idistance.h"
#include "knmatch/baselines/igrid.h"
#include "knmatch/baselines/knn_scan.h"
#include "knmatch/baselines/rtree.h"
#include "knmatch/baselines/skyline.h"
#include "knmatch/baselines/sstree.h"

#include "knmatch/eval/advisor.h"
#include "knmatch/eval/class_strip.h"
#include "knmatch/eval/selectivity.h"
#include "knmatch/eval/experiment.h"

#include "knmatch/io/binary.h"
#include "knmatch/io/csv.h"

#endif  // KNMATCH_KNMATCH_H_

#ifndef KNMATCH_OBS_TRACE_H_
#define KNMATCH_OBS_TRACE_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <string>

#include "knmatch/obs/metrics.h"

namespace knmatch::obs {

/// Phases of a query's execution, the rows of a trace.
///  - kLocate: positioning every cursor at the query's attributes
///    (binary search on the in-memory columns, root-to-leaf descents on
///    the disk structures).
///  - kAscend: the AD stepping loop — popping attributes in ascending
///    difference order until the answer completes (the paper's cost).
///  - kVerify: exact-distance refinement of candidates (the VA-file's
///    phase 2) and page checksum verification.
///  - kRank: frequency ranking of the per-n answer sets.
///  - kDiskIo: *modelled* I/O seconds from the DiskSimulator — kept
///    apart from the wall-clock CPU phases above so a trace splits a
///    disk query's time into compute vs. (simulated) disk exactly the
///    way eval::QueryCost does.
enum class Phase : uint8_t {
  kLocate = 0,
  kAscend,
  kVerify,
  kRank,
  kDiskIo,
};
inline constexpr size_t kNumPhases = 5;

/// Name of a phase ("locate", "ascend", ...).
const char* PhaseName(Phase p);

/// The paper's cost model plus the fault/storage events of one query,
/// accumulated while the trace is installed.
struct TraceCounters {
  uint64_t attributes_retrieved = 0;  // the paper's optimality metric
  uint64_t heap_pops = 0;             // AD cursor-heap pops
  uint64_t sequential_pages = 0;
  uint64_t random_pages = 0;
  uint64_t buffer_hits = 0;
  uint64_t failed_reads = 0;   // physical attempts that returned nothing
  uint64_t retries = 0;        // re-attempts after transient failures
  uint64_t quarantines = 0;    // pages declared unrecoverable
  uint64_t fallbacks = 0;      // abandoned methods in a degradation chain
  uint64_t points_refined = 0; // candidates exactly re-checked (VA phase 2)
};

/// A per-query trace: phase timings plus cost counters. Install one
/// with TraceScope around a query call; instrumented code finds it via
/// CurrentTrace() and records into it. Single-threaded by design — a
/// trace follows one query on one thread (batch workers each need
/// their own), which is what keeps recording free of atomics.
class QueryTrace {
 public:
  void AddPhaseSeconds(Phase p, double seconds) {
    seconds_[static_cast<size_t>(p)] += seconds;
  }
  double phase_seconds(Phase p) const {
    return seconds_[static_cast<size_t>(p)];
  }
  /// Sum of the wall-clock (CPU) phases; excludes modelled kDiskIo.
  double cpu_seconds() const;

  TraceCounters& counters() { return counters_; }
  const TraceCounters& counters() const { return counters_; }

  void Clear();

  /// Human-readable multi-line rendering (the CLI's `trace` output).
  std::string ToString() const;
  /// One JSON object: {"phases":{...},"counters":{...}}.
  std::string ToJson() const;

 private:
  std::array<double, kNumPhases> seconds_{};
  TraceCounters counters_;
};

#if KNMATCH_OBS_ENABLED

/// The trace installed on this thread, or nullptr. One thread_local
/// read — cheap enough to consult at per-query (not per-attribute)
/// granularity on the hot path.
QueryTrace* CurrentTrace();

/// Installs `trace` as the calling thread's current trace for the
/// scope's lifetime; restores the previous one (scopes nest).
class TraceScope {
 public:
  explicit TraceScope(QueryTrace* trace);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  QueryTrace* prev_;
};

/// RAII phase timer: charges the span's wall-clock time to `phase` of
/// the thread's current trace. When no trace is installed the
/// constructor skips the clock read entirely, so untraced queries pay
/// one thread_local load and a branch per span.
class TraceSpan {
 public:
  explicit TraceSpan(Phase phase) : trace_(CurrentTrace()), phase_(phase) {
    if (trace_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~TraceSpan() {
    if (trace_ != nullptr) {
      trace_->AddPhaseSeconds(
          phase_, std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start_)
                      .count());
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  QueryTrace* trace_;
  Phase phase_;
  std::chrono::steady_clock::time_point start_;
};

#else  // !KNMATCH_OBS_ENABLED

inline QueryTrace* CurrentTrace() { return nullptr; }

class TraceScope {
 public:
  explicit TraceScope(QueryTrace*) {}
};

class TraceSpan {
 public:
  explicit TraceSpan(Phase) {}
};

#endif  // KNMATCH_OBS_ENABLED

}  // namespace knmatch::obs

#endif  // KNMATCH_OBS_TRACE_H_

#ifndef KNMATCH_OBS_CATALOG_H_
#define KNMATCH_OBS_CATALOG_H_

#include "knmatch/obs/metrics.h"

namespace knmatch::obs {

/// Every metric the library itself records, registered once in the
/// global registry and cached here so hot paths pay a single pointer
/// chase per event. See docs/observability.md for the full catalog and
/// naming conventions. All names are prefixed knmatch_; counters end
/// in _total; durations are histograms in seconds.
struct Catalog {
  // --- The paper's cost model (Theorems 3.2/3.3: attributes
  // retrieved), split by algorithm. ---
  Counter* attrs_ad_memory;   // in-memory AD
  Counter* attrs_ad_disk;     // AD over the paged column store
  Counter* attrs_ad_btree;    // AD over the per-dimension B+-trees
  Counter* attrs_scan;        // sequential scan (always c*d)
  Counter* attrs_va;          // VA-file (approximation + refinement)
  Counter* pops_ad_memory;    // AD cursor-heap pops
  Counter* pops_ad_disk;
  Counter* pops_ad_btree;
  Counter* va_points_refined; // VA phase-2 exact re-checks

  // --- Block-ascending kernel (core/ad_kernel.h). ---
  Counter* ad_tree_replays;   // loser-tree leaf-to-root replays
  Histogram* ad_run_length;   // entries consumed per winner run

  // --- Query counts and latency, by entry point. ---
  Counter* queries_knmatch;
  Counter* queries_fknmatch;
  Counter* queries_disk;       // engine-level DiskFrequentKnMatch calls
  Histogram* latency_knmatch;  // seconds, in-memory AD k-n-match
  Histogram* latency_fknmatch;
  Histogram* latency_disk;     // seconds, CPU + modelled I/O

  // --- Storage layer (DiskSimulator / PagedFile / B+-tree). ---
  Counter* pages_sequential;
  Counter* pages_random;
  Counter* buffer_hits;
  Counter* failed_reads;
  Counter* read_retries;        // re-attempts after transient faults
  Counter* checksum_failures;   // CRC mismatches on page images
  Counter* quarantines;         // pages declared unrecoverable (ever)
  Gauge* quarantined_pages;     // currently quarantined
  Counter* btree_node_visits;
  Gauge* storage_row_pages;     // DiskStorageStats, mirrored as gauges
  Gauge* storage_column_pages;
  Gauge* storage_va_pages;

  // --- Fault injection (PR 2's counters, surfaced). ---
  Counter* faults_transient;
  Counter* faults_corruption;

  // --- Engine degradation chain. ---
  Counter* disk_method_scan;   // queries answered by each disk method
  Counter* disk_method_ad;
  Counter* disk_method_va;
  Counter* disk_method_memory;
  Counter* fallback_from_scan;  // methods abandoned mid-chain
  Counter* fallback_from_ad;
  Counter* fallback_from_va;

  // --- Batch executor. ---
  Counter* batch_calls;
  Counter* batch_queries;
  Counter* batch_skipped_deadline;
  Counter* batch_skipped_cancel;
  Gauge* batch_queue_depth;  // queries admitted but not yet finished
  Gauge* batch_workers;      // workers of the current executor

  // --- In-flight query governance (deadlines / budgets / shedding). ---
  Counter* governance_trip_deadline;    // in-flight deadline trips
  Counter* governance_trip_cancel;      // in-flight cancellations
  Counter* governance_trip_attributes;  // attribute-budget trips
  Counter* governance_trip_pages;       // page-budget trips
  Counter* governance_trip_scratch;     // scratch-memory admission refusals
  Counter* batch_shed_queue_depth;      // shed: queue-depth cap
  Counter* batch_shed_pool;             // shed: batch budget pool drained
  Counter* batch_shed_predicted;        // shed: predicted to miss deadline
  Counter* batch_dup_collapsed;         // duplicate queries answered once
  Counter* breaker_skipped;             // routings refused by open breakers
  Gauge* breaker_state_scan;  // 0 closed, 1 open, 2 half-open
  Gauge* breaker_state_ad;
  Gauge* breaker_state_va;
  Histogram* deadline_fraction;  // percent of the deadline consumed

  // --- Write-ahead log + live ingest (storage/wal.h, storage/
  // ingest.h). ---
  Counter* wal_appends;        // records appended (all types)
  Counter* wal_commits;        // commit records appended
  Counter* wal_fsyncs;         // Sync() calls (group commit batches)
  Counter* wal_bytes;          // framed bytes appended
  Counter* wal_checkpoints;    // checkpoint records appended
  Counter* ingest_txns;        // ingest transactions durably committed
  Counter* ingest_pages_flushed;     // page images flushed at checkpoint
  Counter* recoveries;               // Recover() runs
  Counter* recovery_replayed_pages;  // WAL page images redone
  Counter* recovery_discarded_txns;  // uncommitted txns dropped
  Gauge* snapshot_epoch;       // last published read-snapshot epoch
  Gauge* ingest_free_slots;    // reusable node slots across all trees

  // --- Query result cache (cache/query_cache.h). ---
  Counter* cache_hits;
  Counter* cache_misses;
  Counter* cache_stores;
  Counter* cache_evictions;           // LRU / byte-budget evictions
  Counter* cache_invalidated_insert;  // precise invalidation, by cause
  Counter* cache_invalidated_erase;
  Counter* cache_warm_hits;       // near-misses answered by the warm path
  Counter* cache_warm_fallbacks;  // warm attempts that re-ran cold
  Gauge* cache_entries;
  Gauge* cache_bytes;
  Gauge* cache_hit_ratio;  // percent, hits / (hits + misses)

  // --- Sharded scatter-gather router (shard/shard_router.h). Mirrors
  // RouterStats 1:1; the equality tests hold them to each other. ---
  Counter* shard_queries;          // router-level scatter-gather queries
  Counter* shard_dispatches;       // shards dispatched (breaker allowed)
  Counter* shard_hedges;           // hedged duplicate dispatches issued
  Counter* shard_hedge_wins;       // hedges that supplied the answer
  Counter* shard_failovers;        // failover re-dispatches to replicas
  Counter* shard_breaker_skips;    // shards skipped on an open breaker
  Counter* shard_partial_answers;  // answers with shards missing
  Counter* shard_rebalances;       // Rebalance() runs that moved data
  Counter* shard_partitions_moved;
  Counter* shard_cache_hits;       // router-level result-cache hits
  Gauge* shard_count;              // shards in the current layout
  Gauge* shard_replicas;           // replica group size
  Histogram* shard_fanout_seconds;    // whole scatter+gather wall time
  Histogram* shard_dispatch_seconds;  // one shard's dispatch wall time
};

/// The catalog over MetricsRegistry::Global(), built on first use
/// (thread-safe). Instrumentation sites call Cat().foo->Add(...).
const Catalog& Cat();

/// Per-worker batch latency histogram
/// knmatch_batch_query_seconds{worker="<worker>"}, registered in the
/// global registry on first use for that worker index.
Histogram* BatchWorkerLatency(size_t worker);

/// Per-shard point-count gauge knmatch_shard_points{shard="<shard>"},
/// registered in the global registry on first use for that shard index
/// and republished by the router after construction and rebalances.
Gauge* ShardPointsGauge(size_t shard);

}  // namespace knmatch::obs

#endif  // KNMATCH_OBS_CATALOG_H_

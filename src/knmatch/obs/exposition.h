#ifndef KNMATCH_OBS_EXPOSITION_H_
#define KNMATCH_OBS_EXPOSITION_H_

#include <string>

#include "knmatch/obs/metrics.h"

namespace knmatch::obs {

/// Renders a registry snapshot in the Prometheus text exposition
/// format (version 0.0.4): one # HELP / # TYPE pair per family, then
/// one sample line per (labels) instance; histograms expand into
/// cumulative _bucket{le=...} series plus _sum and _count. Families
/// are sorted by name, instances by label string, so the output is
/// deterministic — serve it from any HTTP handler as
/// text/plain; version=0.0.4.
std::string RenderPrometheus(const MetricsRegistry& registry);

/// Renders the same snapshot as one JSON document:
/// {"metrics":[{"name":...,"type":...,"labels":{...},"value":...}, ...]}.
/// Histogram entries carry "count", "sum" and a "buckets" array of
/// {"le": upper_bound, "count": cumulative}. Deterministic ordering as
/// in RenderPrometheus.
std::string RenderJson(const MetricsRegistry& registry);

}  // namespace knmatch::obs

#endif  // KNMATCH_OBS_EXPOSITION_H_

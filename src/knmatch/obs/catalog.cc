#include "knmatch/obs/catalog.h"

#include <string>

namespace knmatch::obs {

namespace {

Catalog BuildCatalog() {
  MetricsRegistry& r = MetricsRegistry::Global();
  Catalog c;

  const char* kAttrsName = "knmatch_attributes_retrieved_total";
  const char* kAttrsHelp =
      "Individual attributes retrieved (the paper's cost metric), by "
      "algorithm";
  c.attrs_ad_memory = r.GetCounter(kAttrsName, "algo=\"ad_memory\"",
                                   kAttrsHelp);
  c.attrs_ad_disk = r.GetCounter(kAttrsName, "algo=\"ad_disk\"", kAttrsHelp);
  c.attrs_ad_btree = r.GetCounter(kAttrsName, "algo=\"ad_btree\"",
                                  kAttrsHelp);
  c.attrs_scan = r.GetCounter(kAttrsName, "algo=\"scan\"", kAttrsHelp);
  c.attrs_va = r.GetCounter(kAttrsName, "algo=\"va\"", kAttrsHelp);

  const char* kPopsName = "knmatch_ad_heap_pops_total";
  const char* kPopsHelp =
      "AD cursor-heap pops (attributes consumed in ascending difference "
      "order), by algorithm";
  c.pops_ad_memory = r.GetCounter(kPopsName, "algo=\"ad_memory\"",
                                  kPopsHelp);
  c.pops_ad_disk = r.GetCounter(kPopsName, "algo=\"ad_disk\"", kPopsHelp);
  c.pops_ad_btree = r.GetCounter(kPopsName, "algo=\"ad_btree\"", kPopsHelp);

  c.va_points_refined = r.GetCounter(
      "knmatch_va_points_refined_total", "",
      "Candidate points exactly re-checked in the VA-file's refinement "
      "phase");

  c.ad_tree_replays = r.GetCounter(
      "knmatch_ad_tree_replays_total", "",
      "Loser-tree replays in the block-ascending AD kernel (one per "
      "winner run; pops per replay is the batching win)");
  c.ad_run_length = r.GetHistogram(
      "knmatch_ad_run_length", "",
      "Entries a winning cursor consumed per run in the block-ascending "
      "AD kernel");

  const char* kQueriesName = "knmatch_queries_total";
  const char* kQueriesHelp = "Queries executed, by entry point";
  c.queries_knmatch = r.GetCounter(kQueriesName, "kind=\"knmatch\"",
                                   kQueriesHelp);
  c.queries_fknmatch = r.GetCounter(kQueriesName, "kind=\"fknmatch\"",
                                    kQueriesHelp);
  c.queries_disk = r.GetCounter(kQueriesName, "kind=\"disk\"",
                                kQueriesHelp);

  const char* kLatencyName = "knmatch_query_seconds";
  const char* kLatencyHelp =
      "Query latency in seconds, by entry point (disk kind includes "
      "modelled I/O time)";
  c.latency_knmatch = r.GetHistogram(kLatencyName, "kind=\"knmatch\"",
                                     kLatencyHelp, 1e-9);
  c.latency_fknmatch = r.GetHistogram(kLatencyName, "kind=\"fknmatch\"",
                                      kLatencyHelp, 1e-9);
  c.latency_disk = r.GetHistogram(kLatencyName, "kind=\"disk\"",
                                  kLatencyHelp, 1e-9);

  const char* kPagesName = "knmatch_disk_pages_read_total";
  const char* kPagesHelp =
      "Physical page read attempts on the simulated disk, by access "
      "pattern";
  c.pages_sequential = r.GetCounter(kPagesName, "kind=\"sequential\"",
                                    kPagesHelp);
  c.pages_random = r.GetCounter(kPagesName, "kind=\"random\"", kPagesHelp);
  c.buffer_hits = r.GetCounter(
      "knmatch_disk_buffer_hits_total", "",
      "Reads absorbed by the shared buffer pool (no media access)");
  c.failed_reads = r.GetCounter(
      "knmatch_disk_failed_reads_total", "",
      "Physical read attempts that transferred nothing usable");
  c.read_retries = r.GetCounter(
      "knmatch_disk_read_retries_total", "",
      "Read re-attempts after transient failures (bounded per read by "
      "the retry budget)");
  c.checksum_failures = r.GetCounter(
      "knmatch_page_checksum_failures_total", "",
      "Page images that failed CRC32 verification");
  c.quarantines = r.GetCounter(
      "knmatch_disk_quarantines_total", "",
      "Pages declared unrecoverable and quarantined");
  c.quarantined_pages = r.GetGauge(
      "knmatch_disk_quarantined_pages", "",
      "Pages currently quarantined (reads refused without I/O)");
  c.btree_node_visits = r.GetCounter(
      "knmatch_btree_node_visits_total", "",
      "B+-tree node pages visited (charged root-to-leaf and sideways "
      "walks)");

  const char* kStorageName = "knmatch_storage_pages";
  const char* kStorageHelp =
      "Pages occupied by each disk-resident store";
  c.storage_row_pages = r.GetGauge(kStorageName, "store=\"row\"",
                                   kStorageHelp);
  c.storage_column_pages = r.GetGauge(kStorageName, "store=\"column\"",
                                      kStorageHelp);
  c.storage_va_pages = r.GetGauge(kStorageName, "store=\"va\"",
                                  kStorageHelp);

  const char* kFaultsName = "knmatch_faults_injected_total";
  const char* kFaultsHelp =
      "Faults delivered by the injector, by kind";
  c.faults_transient = r.GetCounter(kFaultsName, "kind=\"transient\"",
                                    kFaultsHelp);
  c.faults_corruption = r.GetCounter(kFaultsName, "kind=\"corruption\"",
                                     kFaultsHelp);

  const char* kMethodName = "knmatch_disk_method_total";
  const char* kMethodHelp =
      "Disk queries answered, by the method that produced the answer";
  c.disk_method_scan = r.GetCounter(kMethodName, "method=\"scan\"",
                                    kMethodHelp);
  c.disk_method_ad = r.GetCounter(kMethodName, "method=\"ad\"",
                                  kMethodHelp);
  c.disk_method_va = r.GetCounter(kMethodName, "method=\"va\"",
                                  kMethodHelp);
  c.disk_method_memory = r.GetCounter(kMethodName, "method=\"memory_ad\"",
                                      kMethodHelp);

  const char* kFallbackName = "knmatch_disk_fallbacks_total";
  const char* kFallbackHelp =
      "Methods abandoned in auto-routed degradation chains, by the "
      "method that failed";
  c.fallback_from_scan = r.GetCounter(kFallbackName, "from=\"scan\"",
                                      kFallbackHelp);
  c.fallback_from_ad = r.GetCounter(kFallbackName, "from=\"ad\"",
                                    kFallbackHelp);
  c.fallback_from_va = r.GetCounter(kFallbackName, "from=\"va\"",
                                    kFallbackHelp);

  c.batch_calls = r.GetCounter("knmatch_batch_calls_total", "",
                               "Batch API calls");
  c.batch_queries = r.GetCounter(
      "knmatch_batch_queries_total", "",
      "Queries executed (admitted and run) through the batch API");
  const char* kSkippedName = "knmatch_batch_skipped_total";
  const char* kSkippedHelp =
      "Batch queries skipped at their start boundary, by reason";
  c.batch_skipped_deadline = r.GetCounter(kSkippedName,
                                          "reason=\"deadline\"",
                                          kSkippedHelp);
  c.batch_skipped_cancel = r.GetCounter(kSkippedName, "reason=\"cancel\"",
                                        kSkippedHelp);
  c.batch_queue_depth = r.GetGauge(
      "knmatch_batch_queue_depth", "",
      "Queries of the in-flight batch not yet finished");
  c.batch_workers = r.GetGauge("knmatch_batch_workers", "",
                               "Worker threads of the current batch "
                               "executor");

  const char* kTripName = "knmatch_governance_trips_total";
  const char* kTripHelp =
      "Queries stopped in flight by governance, by reason";
  c.governance_trip_deadline = r.GetCounter(kTripName,
                                            "reason=\"deadline\"",
                                            kTripHelp);
  c.governance_trip_cancel = r.GetCounter(kTripName, "reason=\"cancel\"",
                                          kTripHelp);
  c.governance_trip_attributes = r.GetCounter(
      kTripName, "reason=\"budget_attributes\"", kTripHelp);
  c.governance_trip_pages = r.GetCounter(kTripName,
                                         "reason=\"budget_pages\"",
                                         kTripHelp);
  c.governance_trip_scratch = r.GetCounter(kTripName,
                                           "reason=\"budget_scratch\"",
                                           kTripHelp);

  const char* kShedName = "knmatch_batch_shed_total";
  const char* kShedHelp =
      "Batch queries shed by admission control before running, by "
      "reason";
  c.batch_shed_queue_depth = r.GetCounter(kShedName,
                                          "reason=\"queue_depth\"",
                                          kShedHelp);
  c.batch_shed_pool = r.GetCounter(kShedName, "reason=\"budget_pool\"",
                                   kShedHelp);
  c.batch_shed_predicted = r.GetCounter(kShedName,
                                        "reason=\"predicted_deadline\"",
                                        kShedHelp);

  c.breaker_skipped = r.GetCounter(
      "knmatch_breaker_skipped_total", "",
      "Auto-routed disk queries steered around a method whose circuit "
      "breaker was open");
  const char* kBreakerName = "knmatch_breaker_state";
  const char* kBreakerHelp =
      "Per-method circuit-breaker state (0 closed, 1 open, 2 half-open)";
  c.breaker_state_scan = r.GetGauge(kBreakerName, "method=\"scan\"",
                                    kBreakerHelp);
  c.breaker_state_ad = r.GetGauge(kBreakerName, "method=\"ad\"",
                                  kBreakerHelp);
  c.breaker_state_va = r.GetGauge(kBreakerName, "method=\"va\"",
                                  kBreakerHelp);

  c.deadline_fraction = r.GetHistogram(
      "knmatch_deadline_fraction_percent", "",
      "Per-query percentage of the wall-clock deadline consumed "
      "(tripped queries observe >= 100)");

  c.batch_dup_collapsed = r.GetCounter(
      "knmatch_batch_dup_collapsed_total", "",
      "Batch queries answered by copying the result of an identical "
      "query in the same batch (executed once, fanned out)");

  c.wal_appends = r.GetCounter(
      "knmatch_wal_appends_total", "",
      "Write-ahead-log records appended, all record types");
  c.wal_commits = r.GetCounter(
      "knmatch_wal_commits_total", "",
      "Transaction commit records appended to the write-ahead log");
  c.wal_fsyncs = r.GetCounter(
      "knmatch_wal_fsyncs_total", "",
      "Write-ahead-log fsyncs (one per group-commit batch)");
  c.wal_bytes = r.GetCounter(
      "knmatch_wal_bytes_total", "",
      "Framed bytes appended to the write-ahead log");
  c.wal_checkpoints = r.GetCounter(
      "knmatch_wal_checkpoints_total", "",
      "Checkpoint records appended to the write-ahead log");
  c.ingest_txns = r.GetCounter(
      "knmatch_ingest_txns_total", "",
      "Ingest transactions whose commit became durable");
  c.ingest_pages_flushed = r.GetCounter(
      "knmatch_ingest_pages_flushed_total", "",
      "B+-tree page images flushed to the paged file at checkpoints");
  c.recoveries = r.GetCounter(
      "knmatch_recoveries_total", "",
      "Crash-recovery runs (WAL scan + redo replay)");
  c.recovery_replayed_pages = r.GetCounter(
      "knmatch_recovery_replayed_pages_total", "",
      "Committed WAL page images replayed during recovery");
  c.recovery_discarded_txns = r.GetCounter(
      "knmatch_recovery_discarded_txns_total", "",
      "Transactions begun but not durably committed, discarded by "
      "recovery");
  c.snapshot_epoch = r.GetGauge(
      "knmatch_snapshot_epoch", "",
      "Epoch of the last published live-ingest read snapshot");
  c.ingest_free_slots = r.GetGauge(
      "knmatch_ingest_free_slots", "",
      "Reusable B+-tree node slots tracked by the free-space manager, "
      "summed over all dimension trees");

  const char* kCacheLookupName = "knmatch_cache_lookups_total";
  const char* kCacheLookupHelp =
      "Query result cache lookups, by outcome";
  c.cache_hits = r.GetCounter(kCacheLookupName, "outcome=\"hit\"",
                              kCacheLookupHelp);
  c.cache_misses = r.GetCounter(kCacheLookupName, "outcome=\"miss\"",
                                kCacheLookupHelp);
  c.cache_stores = r.GetCounter(
      "knmatch_cache_stores_total", "",
      "Results copied into the query result cache");
  c.cache_evictions = r.GetCounter(
      "knmatch_cache_evictions_total", "",
      "Cache entries evicted by the LRU byte budget");
  const char* kInvalidatedName = "knmatch_cache_invalidated_total";
  const char* kInvalidatedHelp =
      "Cache entries evicted by precise invalidation, by mutation kind";
  c.cache_invalidated_insert = r.GetCounter(
      kInvalidatedName, "mutation=\"insert\"", kInvalidatedHelp);
  c.cache_invalidated_erase = r.GetCounter(
      kInvalidatedName, "mutation=\"erase\"", kInvalidatedHelp);
  const char* kWarmName = "knmatch_cache_warm_starts_total";
  const char* kWarmHelp =
      "Near-miss warm starts of the AD search, by outcome";
  c.cache_warm_hits = r.GetCounter(kWarmName, "outcome=\"hit\"",
                                   kWarmHelp);
  c.cache_warm_fallbacks = r.GetCounter(kWarmName, "outcome=\"fallback\"",
                                        kWarmHelp);
  c.cache_entries = r.GetGauge("knmatch_cache_entries", "",
                               "Entries currently held by the query "
                               "result cache");
  c.cache_bytes = r.GetGauge("knmatch_cache_bytes", "",
                             "Estimated bytes currently held by the "
                             "query result cache");
  c.cache_hit_ratio = r.GetGauge(
      "knmatch_cache_hit_ratio_percent", "",
      "Lifetime cache hit percentage, hits / (hits + misses)");

  c.shard_queries = r.GetCounter(
      "knmatch_shard_queries_total", "",
      "Scatter-gather queries routed across the shard set");
  c.shard_dispatches = r.GetCounter(
      "knmatch_shard_dispatches_total", "",
      "Shards dispatched to (non-empty, breaker allowed), summed over "
      "queries");
  const char* kHedgeName = "knmatch_shard_hedges_total";
  const char* kHedgeHelp =
      "Hedged duplicate dispatches to a second replica, by outcome "
      "(dispatched counts every hedge; won counts hedges that supplied "
      "the answer)";
  c.shard_hedges = r.GetCounter(kHedgeName, "outcome=\"dispatched\"",
                                kHedgeHelp);
  c.shard_hedge_wins = r.GetCounter(kHedgeName, "outcome=\"won\"",
                                    kHedgeHelp);
  c.shard_failovers = r.GetCounter(
      "knmatch_shard_failovers_total", "",
      "Replica failover re-dispatches after kDataLoss/kUnavailable");
  c.shard_breaker_skips = r.GetCounter(
      "knmatch_shard_breaker_skipped_total", "",
      "Shards skipped because their circuit breaker was open");
  c.shard_partial_answers = r.GetCounter(
      "knmatch_shard_partial_answers_total", "",
      "Queries answered from surviving shards with coverage missing");
  c.shard_rebalances = r.GetCounter(
      "knmatch_shard_rebalances_total", "",
      "Rebalance() runs (counted whether or not partitions moved)");
  c.shard_partitions_moved = r.GetCounter(
      "knmatch_shard_partitions_moved_total", "",
      "Partitions reassigned to a different shard by rebalances");
  c.shard_cache_hits = r.GetCounter(
      "knmatch_shard_cache_hits_total", "",
      "Router queries served from the router-level result cache");
  c.shard_count = r.GetGauge("knmatch_shard_count", "",
                             "Shards in the current router layout");
  c.shard_replicas = r.GetGauge("knmatch_shard_replicas", "",
                                "Replica group size per shard");
  c.shard_fanout_seconds = r.GetHistogram(
      "knmatch_shard_fanout_seconds", "",
      "Whole scatter+gather wall time per router query", 1e-9);
  c.shard_dispatch_seconds = r.GetHistogram(
      "knmatch_shard_dispatch_seconds", "",
      "One shard's dispatch wall time (primary, hedge, and failover "
      "attempts included)", 1e-9);
  return c;
}

}  // namespace

const Catalog& Cat() {
  static const Catalog catalog = BuildCatalog();
  return catalog;
}

Histogram* BatchWorkerLatency(size_t worker) {
  return MetricsRegistry::Global().GetHistogram(
      "knmatch_batch_query_seconds",
      "worker=\"" + std::to_string(worker) + "\"",
      "Per-query latency inside the batch executor, by worker",
      1e-9);
}

Gauge* ShardPointsGauge(size_t shard) {
  return MetricsRegistry::Global().GetGauge(
      "knmatch_shard_points",
      "shard=\"" + std::to_string(shard) + "\"",
      "Points currently placed on the shard");
}

}  // namespace knmatch::obs

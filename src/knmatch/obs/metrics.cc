#include "knmatch/obs/metrics.h"

#include <algorithm>
#include <cassert>

namespace knmatch::obs {

#if KNMATCH_OBS_ENABLED

namespace internal {

std::atomic<bool> g_enabled{true};

size_t ThisThreadShard() {
  static std::atomic<size_t> next{0};
  thread_local const size_t shard =
      next.fetch_add(1, std::memory_order_relaxed);
  return shard;
}

}  // namespace internal

void SetEnabled(bool on) {
  internal::g_enabled.store(on, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const noexcept {
  HistogramSnapshot snap;
  snap.scale = scale_;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    snap.counts[i] = buckets_[i].load(std::memory_order_relaxed);
    snap.count += snap.counts[i];
  }
  snap.sum_raw = sum_raw_.load(std::memory_order_relaxed);
  return snap;
}

double Histogram::Quantile(double q) const noexcept {
  const HistogramSnapshot snap = Snapshot();
  if (snap.count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(snap.count);
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (snap.counts[i] == 0) continue;
    const uint64_t next = seen + snap.counts[i];
    if (static_cast<double>(next) >= target) {
      if (i == 0) return 0;  // the exact-zero bucket
      const double lo = static_cast<double>(BucketLowerRaw(i));
      const double hi = BucketUpperRaw(i);
      const double frac =
          (target - static_cast<double>(seen)) /
          static_cast<double>(snap.counts[i]);
      return (lo + (hi - lo) * frac) * scale_;
    }
    seen = next;
  }
  return BucketUpperRaw(kNumBuckets - 1) * scale_;
}

#endif  // KNMATCH_OBS_ENABLED

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Entry* MetricsRegistry::FindOrCreate(
    MetricType type, std::string_view name, std::string_view labels,
    std::string_view help, double scale) {
  std::scoped_lock lock(mu_);
  for (const auto& e : entries_) {
    if (e->name == name && e->labels == labels) {
      assert(e->type == type && "metric re-registered with another type");
      return e.get();
    }
  }
  auto e = std::make_unique<Entry>();
  e->type = type;
  e->name = std::string(name);
  e->labels = std::string(labels);
  e->help = std::string(help);
  switch (type) {
    case MetricType::kCounter:
      e->counter = std::make_unique<Counter>();
      break;
    case MetricType::kGauge:
      e->gauge = std::make_unique<Gauge>();
      break;
    case MetricType::kHistogram:
      e->histogram = std::make_unique<Histogram>(scale);
      break;
  }
  entries_.push_back(std::move(e));
  return entries_.back().get();
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view labels,
                                     std::string_view help) {
  return FindOrCreate(MetricType::kCounter, name, labels, help, 1.0)
      ->counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name,
                                 std::string_view labels,
                                 std::string_view help) {
  return FindOrCreate(MetricType::kGauge, name, labels, help, 1.0)
      ->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view labels,
                                         std::string_view help,
                                         double scale) {
  return FindOrCreate(MetricType::kHistogram, name, labels, help, scale)
      ->histogram.get();
}

void MetricsRegistry::Reset() {
  std::scoped_lock lock(mu_);
  for (const auto& e : entries_) {
    switch (e->type) {
      case MetricType::kCounter:
        e->counter->Reset();
        break;
      case MetricType::kGauge:
        e->gauge->Reset();
        break;
      case MetricType::kHistogram:
        e->histogram->Reset();
        break;
    }
  }
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::vector<MetricSample> samples;
  {
    std::scoped_lock lock(mu_);
    samples.reserve(entries_.size());
    for (const auto& e : entries_) {
      MetricSample s;
      s.type = e->type;
      s.name = e->name;
      s.labels = e->labels;
      s.help = e->help;
      switch (e->type) {
        case MetricType::kCounter:
          s.counter_value = e->counter->Value();
          break;
        case MetricType::kGauge:
          s.gauge_value = e->gauge->Value();
          break;
        case MetricType::kHistogram:
          s.histogram = e->histogram->Snapshot();
          break;
      }
      samples.push_back(std::move(s));
    }
  }
  std::sort(samples.begin(), samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
  return samples;
}

size_t MetricsRegistry::size() const {
  std::scoped_lock lock(mu_);
  return entries_.size();
}

}  // namespace knmatch::obs

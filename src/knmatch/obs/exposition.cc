#include "knmatch/obs/exposition.h"

#include <cinttypes>
#include <cstdio>
#include <string_view>
#include <vector>

namespace knmatch::obs {

namespace {

const char* TypeName(MetricType t) {
  switch (t) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "untyped";
}

std::string FmtDouble(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// "name{labels}" or "name" when labels is empty; `extra` label (the
/// histogram's le) is appended after the instance labels.
std::string SampleName(const std::string& name, const std::string& suffix,
                       const std::string& labels,
                       const std::string& extra = "") {
  std::string out = name + suffix;
  if (!labels.empty() || !extra.empty()) {
    out += '{';
    out += labels;
    if (!labels.empty() && !extra.empty()) out += ',';
    out += extra;
    out += '}';
  }
  return out;
}

/// Splits a raw label body (kind="knmatch",worker="3") into pairs.
/// Label values registered by this library never contain commas,
/// quotes, or escapes, which keeps this exact.
std::vector<std::pair<std::string_view, std::string_view>> ParseLabels(
    std::string_view labels) {
  std::vector<std::pair<std::string_view, std::string_view>> pairs;
  size_t at = 0;
  while (at < labels.size()) {
    const size_t eq = labels.find('=', at);
    if (eq == std::string_view::npos) break;
    const size_t open = labels.find('"', eq);
    const size_t close = labels.find('"', open + 1);
    if (open == std::string_view::npos || close == std::string_view::npos) {
      break;
    }
    pairs.emplace_back(labels.substr(at, eq - at),
                       labels.substr(open + 1, close - open - 1));
    at = labels.find(',', close);
    if (at == std::string_view::npos) break;
    ++at;
  }
  return pairs;
}

/// Index of the last non-empty bucket (0 when all empty), so renderers
/// can stop the cumulative series early instead of emitting 60+ zero
/// buckets per histogram.
size_t LastUsedBucket(const HistogramSnapshot& h) {
  size_t last = 0;
  for (size_t i = 0; i < h.counts.size(); ++i) {
    if (h.counts[i] != 0) last = i;
  }
  return last;
}

}  // namespace

std::string RenderPrometheus(const MetricsRegistry& registry) {
  const std::vector<MetricSample> samples = registry.Snapshot();
  std::string out;
  out.reserve(256 * samples.size());
  std::string_view last_family;
  char buf[160];
  for (const MetricSample& s : samples) {
    if (s.name != last_family) {
      out += "# HELP " + s.name + " " + s.help + "\n";
      out += "# TYPE " + s.name + " ";
      out += TypeName(s.type);
      out += "\n";
      last_family = s.name;
    }
    switch (s.type) {
      case MetricType::kCounter:
        std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", s.counter_value);
        out += SampleName(s.name, "", s.labels) + buf;
        break;
      case MetricType::kGauge:
        std::snprintf(buf, sizeof(buf), " %" PRId64 "\n", s.gauge_value);
        out += SampleName(s.name, "", s.labels) + buf;
        break;
      case MetricType::kHistogram: {
        const HistogramSnapshot& h = s.histogram;
        const size_t last = LastUsedBucket(h);
        uint64_t cumulative = 0;
        for (size_t i = 0; i <= last; ++i) {
          cumulative += h.counts[i];
          const double le =
              i == 0 ? 0.0 : Histogram::BucketUpperRaw(i) * h.scale;
          std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", cumulative);
          out += SampleName(s.name, "_bucket", s.labels,
                            "le=\"" + FmtDouble(le) + "\"") +
                 buf;
        }
        std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", h.count);
        out += SampleName(s.name, "_bucket", s.labels, "le=\"+Inf\"") + buf;
        out += SampleName(s.name, "_sum", s.labels) + " " +
               FmtDouble(static_cast<double>(h.sum_raw) * h.scale) + "\n";
        std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", h.count);
        out += SampleName(s.name, "_count", s.labels) + buf;
        break;
      }
    }
  }
  return out;
}

std::string RenderJson(const MetricsRegistry& registry) {
  const std::vector<MetricSample> samples = registry.Snapshot();
  std::string out = "{\"metrics\":[";
  char buf[160];
  bool first = true;
  for (const MetricSample& s : samples) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + s.name + "\",\"type\":\"";
    out += TypeName(s.type);
    out += "\",\"labels\":{";
    bool first_label = true;
    for (const auto& [key, value] : ParseLabels(s.labels)) {
      if (!first_label) out += ',';
      first_label = false;
      out += '"';
      out += key;
      out += "\":\"";
      out += value;
      out += '"';
    }
    out += '}';
    switch (s.type) {
      case MetricType::kCounter:
        std::snprintf(buf, sizeof(buf), ",\"value\":%" PRIu64 "}",
                      s.counter_value);
        out += buf;
        break;
      case MetricType::kGauge:
        std::snprintf(buf, sizeof(buf), ",\"value\":%" PRId64 "}",
                      s.gauge_value);
        out += buf;
        break;
      case MetricType::kHistogram: {
        const HistogramSnapshot& h = s.histogram;
        std::snprintf(buf, sizeof(buf),
                      ",\"count\":%" PRIu64 ",\"sum\":%s,\"buckets\":[",
                      h.count,
                      FmtDouble(static_cast<double>(h.sum_raw) * h.scale)
                          .c_str());
        out += buf;
        const size_t last = LastUsedBucket(h);
        uint64_t cumulative = 0;
        for (size_t i = 0; i <= last; ++i) {
          cumulative += h.counts[i];
          const double le =
              i == 0 ? 0.0 : Histogram::BucketUpperRaw(i) * h.scale;
          std::snprintf(buf, sizeof(buf), "%s{\"le\":%s,\"count\":%" PRIu64
                        "}",
                        i == 0 ? "" : ",", FmtDouble(le).c_str(),
                        cumulative);
          out += buf;
        }
        std::snprintf(buf, sizeof(buf),
                      ",{\"le\":\"+Inf\",\"count\":%" PRIu64 "}]}",
                      h.count);
        out += buf;
        break;
      }
    }
  }
  out += "]}";
  return out;
}

}  // namespace knmatch::obs

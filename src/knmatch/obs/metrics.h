#ifndef KNMATCH_OBS_METRICS_H_
#define KNMATCH_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

// Compile-time gate for the whole observability subsystem. Building
// with -DKNMATCH_OBS_ENABLED=0 (CMake option KNMATCH_DISABLE_METRICS)
// replaces every metric type with an empty-bodied no-op whose calls
// fold away entirely — the checkable zero-cost path. The default build
// compiles the instrumentation in; a runtime kill switch (SetEnabled)
// then reduces each site to one relaxed atomic load.
#ifndef KNMATCH_OBS_ENABLED
#define KNMATCH_OBS_ENABLED 1
#endif

namespace knmatch::obs {

/// True when the subsystem is compiled in (KNMATCH_OBS_ENABLED != 0).
inline constexpr bool kMetricsCompiledIn = KNMATCH_OBS_ENABLED != 0;

#if KNMATCH_OBS_ENABLED

namespace internal {
/// The runtime kill switch behind Enabled()/SetEnabled().
extern std::atomic<bool> g_enabled;
/// Index of the calling thread in the counters' shard arrays: threads
/// are assigned round-robin slots on first use, so a fixed worker pool
/// lands each worker on its own shard.
size_t ThisThreadShard();
}  // namespace internal

/// Runtime kill switch, default on. Metric mutators check it with one
/// relaxed load; when off they return immediately, so a disabled
/// process pays (almost) nothing for its instrumentation.
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}
void SetEnabled(bool on);

/// Monotonically increasing counter. Increments go to one of kShards
/// cache-line-separated atomic cells chosen by the calling thread, so
/// concurrent workers do not contend on one line; Value() sums the
/// shards. All operations use relaxed ordering — counters order
/// nothing, they only count.
class Counter {
 public:
  static constexpr size_t kShards = 8;

  void Add(uint64_t v = 1) noexcept {
    if (!Enabled()) return;
    shards_[internal::ThisThreadShard() & (kShards - 1)].cell.fetch_add(
        v, std::memory_order_relaxed);
  }

  uint64_t Value() const noexcept {
    uint64_t sum = 0;
    for (const Shard& s : shards_) {
      sum += s.cell.load(std::memory_order_relaxed);
    }
    return sum;
  }

  /// Zeroes the counter (tests and the CLI's `metrics reset`).
  void Reset() noexcept {
    for (Shard& s : shards_) s.cell.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> cell{0};
  };
  std::array<Shard, kShards> shards_;
};

/// A value that can go up and down (queue depths, resident pages).
/// Single atomic cell: gauges are updated at coarse boundaries, not in
/// per-attribute hot loops, so sharding would buy nothing.
class Gauge {
 public:
  void Set(int64_t v) noexcept {
    if (!Enabled()) return;
    cell_.store(v, std::memory_order_relaxed);
  }
  void Add(int64_t delta) noexcept {
    if (!Enabled()) return;
    cell_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const noexcept {
    return cell_.load(std::memory_order_relaxed);
  }
  void Reset() noexcept { cell_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> cell_{0};
};

/// Fixed-size view of a histogram's state, taken atomically enough for
/// monitoring (individual cells are read relaxed; a snapshot taken
/// during updates may be mid-flight by a few observations).
struct HistogramSnapshot {
  /// counts[i] observations fell in bucket i; bucket 0 is the exact
  /// value 0, bucket i >= 1 covers [2^(i-1), 2^i).
  std::array<uint64_t, 65> counts{};
  uint64_t count = 0;    // total observations
  uint64_t sum_raw = 0;  // sum of raw (unscaled) observed values
  double scale = 1.0;    // multiply raw units by this for display
};

/// Log-bucketed histogram over non-negative integers: bucket i >= 1
/// holds values in [2^(i-1), 2^i), bucket 0 holds exact zeros. One
/// relaxed fetch_add per observation (plus one for the sum) — cheap
/// enough for per-query latencies and cost counts, and the power-of-two
/// buckets give quantiles within a factor of 2 with no locking, which
/// is all a monitoring quantile needs (exact percentiles stay with
/// common/stats.h's Summary).
///
/// `scale` converts the raw integer unit into the displayed unit; a
/// latency histogram observes nanoseconds with scale = 1e-9 so its
/// exposition reads in seconds (the Prometheus convention).
class Histogram {
 public:
  explicit Histogram(double scale = 1.0) : scale_(scale) {}

  void Observe(uint64_t raw) noexcept {
    if (!Enabled()) return;
    buckets_[BucketOf(raw)].fetch_add(1, std::memory_order_relaxed);
    sum_raw_.fetch_add(raw, std::memory_order_relaxed);
  }

  /// Observes a duration in seconds; requires scale() in (0, 1].
  void ObserveSeconds(double seconds) noexcept {
    if (!Enabled()) return;
    if (seconds < 0) seconds = 0;
    // Round, don't truncate: 1.0 / 1e-9 computes as 999999999.999...,
    // and truncation would shave one raw unit off exact values.
    Observe(static_cast<uint64_t>(seconds / scale_ + 0.5));
  }

  /// Folds in pre-bucketed counts accumulated outside the histogram
  /// (hot loops bucket locally with BucketOf's layout, then merge once
  /// per query): counts[i] observations for bucket i, raw_sum their
  /// total raw value. One fetch_add per non-empty bucket.
  void MergeBuckets(const std::array<uint64_t, 65>& counts,
                    uint64_t raw_sum) noexcept {
    if (!Enabled()) return;
    for (size_t i = 0; i < counts.size(); ++i) {
      if (counts[i] != 0) {
        buckets_[i].fetch_add(counts[i], std::memory_order_relaxed);
      }
    }
    sum_raw_.fetch_add(raw_sum, std::memory_order_relaxed);
  }

  double scale() const noexcept { return scale_; }

  HistogramSnapshot Snapshot() const noexcept;

  /// Approximate quantile, q in [0, 1]: finds the bucket holding the
  /// rank and interpolates linearly inside it. Returned in display
  /// units (raw * scale). 0 when empty.
  double Quantile(double q) const noexcept;

  void Reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    sum_raw_.store(0, std::memory_order_relaxed);
  }

  /// Bucket index of a raw value: 0 for 0, else bit_width (1..64).
  static constexpr size_t BucketOf(uint64_t raw) noexcept {
    return static_cast<size_t>(std::bit_width(raw));
  }
  /// Inclusive lower / exclusive upper raw bound of bucket i >= 1.
  static constexpr uint64_t BucketLowerRaw(size_t i) noexcept {
    return uint64_t{1} << (i - 1);
  }
  static constexpr double BucketUpperRaw(size_t i) noexcept {
    // As a double: bucket 64's upper bound (2^64) overflows uint64.
    return i < 64 ? static_cast<double>(uint64_t{1} << i)
                  : 18446744073709551616.0;
  }

  static constexpr size_t kNumBuckets = 65;

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> sum_raw_{0};
  double scale_;
};

#else  // !KNMATCH_OBS_ENABLED — the compiled-out no-op types.

inline bool Enabled() { return false; }
inline void SetEnabled(bool) {}

class Counter {
 public:
  static constexpr size_t kShards = 1;
  void Add(uint64_t = 1) noexcept {}
  uint64_t Value() const noexcept { return 0; }
  void Reset() noexcept {}
};

class Gauge {
 public:
  void Set(int64_t) noexcept {}
  void Add(int64_t) noexcept {}
  int64_t Value() const noexcept { return 0; }
  void Reset() noexcept {}
};

struct HistogramSnapshot {
  std::array<uint64_t, 65> counts{};
  uint64_t count = 0;
  uint64_t sum_raw = 0;
  double scale = 1.0;
};

class Histogram {
 public:
  explicit Histogram(double scale = 1.0) : scale_(scale) {}
  void Observe(uint64_t) noexcept {}
  void ObserveSeconds(double) noexcept {}
  void MergeBuckets(const std::array<uint64_t, 65>&, uint64_t) noexcept {}
  double scale() const noexcept { return scale_; }
  HistogramSnapshot Snapshot() const noexcept { return {}; }
  double Quantile(double) const noexcept { return 0; }
  void Reset() noexcept {}
  static constexpr size_t BucketOf(uint64_t) noexcept { return 0; }
  static constexpr uint64_t BucketLowerRaw(size_t) noexcept { return 0; }
  static constexpr double BucketUpperRaw(size_t) noexcept { return 0; }
  static constexpr size_t kNumBuckets = 65;

 private:
  double scale_;
};

// The no-op types must truly fold away: any growth here would mean the
// "compiled out" path still carries state.
static_assert(sizeof(Counter) == 1 && sizeof(Gauge) == 1);

#endif  // KNMATCH_OBS_ENABLED

/// What a registry entry is, for exposition.
enum class MetricType : uint8_t { kCounter, kGauge, kHistogram };

/// One metric's identity + current value, as read by Snapshot().
struct MetricSample {
  MetricType type;
  std::string name;    // Prometheus family name (no labels)
  std::string labels;  // raw label body, e.g. kind="knmatch" (may be "")
  std::string help;
  uint64_t counter_value = 0;
  int64_t gauge_value = 0;
  HistogramSnapshot histogram;
};

/// Registry of named metrics. Registration (GetCounter & friends) takes
/// a mutex and is meant to happen once per site — cache the returned
/// pointer (typically in a function-local static). Returned pointers
/// are stable for the registry's lifetime. Re-registering the same
/// (name, labels) returns the existing metric; the type must match.
///
/// The process-global instance (Global()) is what the library's
/// instrumentation records into and what the exposition endpoints
/// serve; independent instances can be created for tests or embedding.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-global registry.
  static MetricsRegistry& Global();

  Counter* GetCounter(std::string_view name, std::string_view labels,
                      std::string_view help);
  Gauge* GetGauge(std::string_view name, std::string_view labels,
                  std::string_view help);
  /// `scale` is the display multiplier for raw observations (1e-9 for
  /// a nanosecond-observing, second-displaying latency histogram).
  Histogram* GetHistogram(std::string_view name, std::string_view labels,
                          std::string_view help, double scale = 1.0);

  /// Zeroes every registered metric's value; registrations (and cached
  /// pointers) stay valid. For tests and the CLI.
  void Reset();

  /// Reads every metric, sorted by (name, labels) so exposition (and
  /// golden tests) are stable regardless of registration order.
  std::vector<MetricSample> Snapshot() const;

  size_t size() const;

 private:
  struct Entry {
    MetricType type;
    std::string name;
    std::string labels;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrCreate(MetricType type, std::string_view name,
                      std::string_view labels, std::string_view help,
                      double scale);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace knmatch::obs

#endif  // KNMATCH_OBS_METRICS_H_

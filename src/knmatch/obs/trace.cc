#include "knmatch/obs/trace.h"

#include <cstdio>
#include <functional>

namespace knmatch::obs {

const char* PhaseName(Phase p) {
  switch (p) {
    case Phase::kLocate: return "locate";
    case Phase::kAscend: return "ascend";
    case Phase::kVerify: return "verify";
    case Phase::kRank: return "rank";
    case Phase::kDiskIo: return "disk_io";
  }
  return "?";
}

double QueryTrace::cpu_seconds() const {
  double total = 0;
  for (size_t i = 0; i < kNumPhases; ++i) {
    if (static_cast<Phase>(i) != Phase::kDiskIo) total += seconds_[i];
  }
  return total;
}

void QueryTrace::Clear() {
  seconds_.fill(0);
  counters_ = TraceCounters{};
}

namespace {

void AppendCounter(std::string* out, const char* name, uint64_t v,
                   bool json, bool* first) {
  char buf[96];
  if (json) {
    std::snprintf(buf, sizeof(buf), "%s\"%s\":%llu", *first ? "" : ",",
                  name, static_cast<unsigned long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "  %-21s %llu\n", name,
                  static_cast<unsigned long long>(v));
  }
  *out += buf;
  *first = false;
}

void ForEachCounter(
    const TraceCounters& c,
    const std::function<void(const char*, uint64_t)>& fn) {
  fn("attributes_retrieved", c.attributes_retrieved);
  fn("heap_pops", c.heap_pops);
  fn("sequential_pages", c.sequential_pages);
  fn("random_pages", c.random_pages);
  fn("buffer_hits", c.buffer_hits);
  fn("failed_reads", c.failed_reads);
  fn("retries", c.retries);
  fn("quarantines", c.quarantines);
  fn("fallbacks", c.fallbacks);
  fn("points_refined", c.points_refined);
}

}  // namespace

std::string QueryTrace::ToString() const {
  std::string out = "phases:\n";
  char buf[96];
  for (size_t i = 0; i < kNumPhases; ++i) {
    std::snprintf(buf, sizeof(buf), "  %-8s %.6fs\n",
                  PhaseName(static_cast<Phase>(i)), seconds_[i]);
    out += buf;
  }
  out += "counters:\n";
  bool first = true;
  ForEachCounter(counters_, [&](const char* name, uint64_t v) {
    AppendCounter(&out, name, v, /*json=*/false, &first);
  });
  return out;
}

std::string QueryTrace::ToJson() const {
  std::string out = "{\"phases\":{";
  char buf[96];
  for (size_t i = 0; i < kNumPhases; ++i) {
    std::snprintf(buf, sizeof(buf), "%s\"%s\":%.9f", i == 0 ? "" : ",",
                  PhaseName(static_cast<Phase>(i)), seconds_[i]);
    out += buf;
  }
  out += "},\"counters\":{";
  bool first = true;
  ForEachCounter(counters_, [&](const char* name, uint64_t v) {
    AppendCounter(&out, name, v, /*json=*/true, &first);
  });
  out += "}}";
  return out;
}

#if KNMATCH_OBS_ENABLED

namespace {
thread_local QueryTrace* g_current_trace = nullptr;
}  // namespace

QueryTrace* CurrentTrace() { return g_current_trace; }

TraceScope::TraceScope(QueryTrace* trace) : prev_(g_current_trace) {
  g_current_trace = trace;
}

TraceScope::~TraceScope() { g_current_trace = prev_; }

#endif  // KNMATCH_OBS_ENABLED

}  // namespace knmatch::obs

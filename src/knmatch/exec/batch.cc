#include "knmatch/exec/batch.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <string>
#include <unordered_map>
#include <utility>

#include "knmatch/core/nmatch.h"
#include "knmatch/exec/ewma.h"
#include "knmatch/obs/catalog.h"

namespace knmatch::exec {

namespace {

/// Times one admitted query and settles its metrics on destruction:
/// one run-count increment, one latency observation on the worker's
/// histogram, one queue-depth decrement.
class QueryMeter {
 public:
  explicit QueryMeter(obs::Histogram* latency)
      : latency_(latency), armed_(obs::Enabled()) {
    if (armed_) start_ = std::chrono::steady_clock::now();
  }
  ~QueryMeter() {
    if (!armed_) return;
    obs::Cat().batch_queries->Add();
    obs::Cat().batch_queue_depth->Add(-1);
    latency_->Observe(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count()));
  }

 private:
  obs::Histogram* latency_;
  bool armed_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

BatchExecutor::BatchExecutor(size_t threads, bool allow_oversubscription)
    : pool_(std::max<size_t>(
          1, ResolveThreads(threads, allow_oversubscription))),
      scratches_(pool_.size()) {
  worker_latency_.reserve(pool_.size());
  for (size_t w = 0; w < pool_.size(); ++w) {
    worker_latency_.push_back(obs::BatchWorkerLatency(w));
  }
  obs::Cat().batch_workers->Set(static_cast<int64_t>(pool_.size()));
}

/// One batch call's governance state: the shared deadline and cancel
/// flag, the attribute pool, and the latency EWMA behind predictive
/// shedding. Admit() is consulted by every worker at each query's
/// start boundary; admitted queries additionally carry a QueryContext
/// configured by Configure(), so the same deadline/cancel/budgets trip
/// them cooperatively in flight.
class BatchExecutor::RunGuard {
 public:
  explicit RunGuard(const BatchOptions& options)
      : cancel_(options.cancel),
        has_deadline_(options.deadline_ms > 0),
        budgets_(options.budgets),
        attribute_pool_(options.attribute_pool),
        predictive_(options.predictive_shedding && options.deadline_ms > 0) {
    if (has_deadline_) {
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double, std::milli>(
                          options.deadline_ms));
    }
  }

  /// OK while the batch may still start queries. Called exactly once
  /// per query at its start boundary, so a refusal here counts the
  /// query as skipped (and drains it from the queue-depth gauge).
  Status Admit() {
    if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
      obs::Cat().batch_skipped_cancel->Add();
      obs::Cat().batch_queue_depth->Add(-1);
      return Status::Unavailable("batch cancelled");
    }
    const auto now = std::chrono::steady_clock::now();
    if (has_deadline_ && now >= deadline_) {
      obs::Cat().batch_skipped_deadline->Add();
      obs::Cat().batch_queue_depth->Add(-1);
      return Status::DeadlineExceeded("batch deadline exceeded");
    }
    if (attribute_pool_ != 0 &&
        pool_used_.load(std::memory_order_relaxed) >= attribute_pool_) {
      obs::Cat().batch_shed_pool->Add();
      obs::Cat().batch_queue_depth->Add(-1);
      return Status::ResourceExhausted("batch attribute pool exhausted");
    }
    if (predictive_) {
      const int64_t predicted = ewma_.ns();
      if (predicted > 0 &&
          now + std::chrono::nanoseconds(predicted) >= deadline_) {
        obs::Cat().batch_shed_predicted->Add();
        obs::Cat().batch_queue_depth->Add(-1);
        return Status::DeadlineExceeded(
            "batch deadline predicted to pass before completion");
      }
    }
    return Status::OK();
  }

  /// Whether admitted queries need an in-flight governance context.
  bool governed() const {
    return has_deadline_ || cancel_ != nullptr || budgets_.any();
  }

  /// Predictive shedding needs per-query latencies even when obs is
  /// off.
  bool predictive() const { return predictive_; }

  /// Arms `ctx` with the batch's absolute deadline, cancel flag, and
  /// per-query budgets.
  void Configure(QueryContext* ctx) const {
    if (has_deadline_) ctx->set_deadline(deadline_);
    if (cancel_ != nullptr) ctx->set_cancel(cancel_);
    ctx->budgets() = budgets_;
  }

  /// Settles one finished (or tripped) query: draws its attribute cost
  /// from the pool and folds its latency into the EWMA.
  void OnQueryDone(uint64_t attributes, int64_t latency_ns) {
    if (attribute_pool_ != 0 && attributes != 0) {
      pool_used_.fetch_add(attributes, std::memory_order_relaxed);
    }
    if (predictive_) ewma_.Record(latency_ns);
  }

 private:
  std::shared_ptr<std::atomic<bool>> cancel_;
  bool has_deadline_;
  std::chrono::steady_clock::time_point deadline_;
  QueryBudgets budgets_;
  uint64_t attribute_pool_;
  bool predictive_;
  std::atomic<uint64_t> pool_used_{0};
  EwmaLatency ewma_;
};

namespace {

/// FNV-1a over a query vector's value bytes — the duplicate-collapse
/// bucket hash (exactness comes from the vector comparison, not the
/// hash).
uint64_t HashQuery(const std::vector<Value>& query) {
  uint64_t h = 14695981039346656037ull;
  for (const Value v : query) {
    const auto* bytes = reinterpret_cast<const unsigned char*>(&v);
    for (size_t b = 0; b < sizeof(Value); ++b) {
      h ^= bytes[b];
      h *= 1099511628211ull;
    }
  }
  return h;
}

}  // namespace

template <typename ResultT, typename RunFn>
Result<BatchResult<ResultT>> BatchExecutor::RunGoverned(
    const BatchRequest& request, RunFn&& run) {
  BatchResult<ResultT> out;
  const size_t total = request.queries.size();
  out.results.resize(total);
  out.statuses.assign(total, Status::OK());
  obs::Cat().batch_calls->Add();

  // Deterministic queue-depth shedding: the cap admits a prefix of the
  // batch; the tail never enters the queue.
  size_t admitted = total;
  if (const size_t cap = request.options.max_queue_depth;
      cap != 0 && total > cap) {
    admitted = cap;
    for (size_t i = cap; i < total; ++i) {
      out.statuses[i] =
          Status::ResourceExhausted("batch queue depth exceeded");
    }
    obs::Cat().batch_shed_queue_depth->Add(
        static_cast<uint64_t>(total - cap));
  }

  // Duplicate collapse over the admitted prefix: rep[i] is the first
  // admitted index with a bit-identical query vector; only
  // representatives (rep[i] == i) enter the queue.
  std::vector<size_t> rep(admitted);
  std::vector<size_t> distinct;
  distinct.reserve(admitted);
  if (request.options.collapse_duplicates) {
    std::unordered_map<uint64_t, std::vector<size_t>> buckets;
    buckets.reserve(admitted);
    for (size_t i = 0; i < admitted; ++i) {
      std::vector<size_t>& bucket =
          buckets[HashQuery(request.queries[i])];
      rep[i] = i;
      for (const size_t j : bucket) {
        if (request.queries[j] == request.queries[i]) {
          rep[i] = j;
          break;
        }
      }
      if (rep[i] == i) {
        bucket.push_back(i);
        distinct.push_back(i);
      }
    }
    if (const size_t collapsed = admitted - distinct.size();
        collapsed != 0) {
      obs::Cat().batch_dup_collapsed->Add(
          static_cast<uint64_t>(collapsed));
    }
  } else {
    for (size_t i = 0; i < admitted; ++i) {
      rep[i] = i;
      distinct.push_back(i);
    }
  }
  // The queue holds the distinct queries only: duplicates never pass
  // the admission boundary, so the depth gauge drains to zero as the
  // representatives finish.
  obs::Cat().batch_queue_depth->Set(static_cast<int64_t>(distinct.size()));

  RunGuard guard(request.options);
  const auto run_one = [&](size_t worker, size_t i) {
    if (Status admit = guard.Admit(); !admit.ok()) {
      out.statuses[i] = std::move(admit);
      return;
    }
    QueryMeter meter(worker_latency_[worker]);
    QueryContext ctx;
    QueryContext* ctx_ptr = nullptr;
    if (guard.governed()) {
      guard.Configure(&ctx);
      ctx_ptr = &ctx;
    }
    std::chrono::steady_clock::time_point start;
    if (guard.predictive()) start = std::chrono::steady_clock::now();
    Result<ResultT> r = run(worker, i, ctx_ptr);
    int64_t latency_ns = 0;
    if (guard.predictive()) {
      latency_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    }
    if (r.ok()) {
      out.results[i] = std::move(r).value();
      guard.OnQueryDone(out.results[i].attributes_retrieved, latency_ns);
    } else {
      // A tripped query still drains the pool by what it consumed.
      guard.OnQueryDone(
          ctx_ptr != nullptr ? ctx.trip().attributes_retrieved : 0,
          latency_ns);
      out.statuses[i] = r.status();
    }
  };
  // Chunked handoff: a grain of queries per claim amortizes the
  // dispatch overhead (one atomic RMW + one std::function indirection)
  // that dominates when individual queries are cheap — the knn_k10
  // batch lane regressed below 1x sequential on exactly that overhead.
  // ~4 chunks per worker keeps dynamic load balancing meaningful.
  const size_t workers = std::max<size_t>(1, pool_.size());
  const size_t grain = std::clamp<size_t>(
      distinct.size() / (workers * 4), 1, 64);
  pool_.ParallelForChunked(
      distinct.size(), grain, [&](size_t worker, size_t begin, size_t end) {
        for (size_t u = begin; u < end; ++u) run_one(worker, distinct[u]);
      });

  // The batch's cost metric counts each distinct query once.
  for (const size_t i : distinct) {
    if (out.statuses[i].ok()) {
      out.attributes_retrieved += out.results[i].attributes_retrieved;
    }
  }
  // Fan the representatives' outcomes out to their duplicates.
  for (size_t i = 0; i < admitted; ++i) {
    if (rep[i] == i) continue;
    out.statuses[i] = out.statuses[rep[i]];
    if (out.statuses[i].ok()) out.results[i] = out.results[rep[i]];
  }
  return out;
}

Status BatchExecutor::ValidateBatch(size_t cardinality, size_t dims,
                                    const BatchRequest& request, size_t n0,
                                    size_t n1, size_t k) const {
  for (size_t i = 0; i < request.queries.size(); ++i) {
    const Status s = ValidateMatchParams(
        cardinality, dims, request.queries[i].size(), n0, n1, k);
    if (!s.ok()) {
      return Status(s.code(),
                    "query " + std::to_string(i) + ": " + s.message());
    }
  }
  return Status::OK();
}

Result<KnMatchBatchResult> BatchExecutor::KnMatch(
    const AdSearcher& searcher, const BatchRequest& request, size_t n,
    size_t k, std::span<const Value> weights,
    const cache::CacheBinding& binding) {
  Status s = ValidateBatch(searcher.columns().size(),
                           searcher.columns().dims(), request, n, n, k);
  if (!s.ok()) return s;
  s = ValidateAdWeights(weights, searcher.columns().dims());
  if (!s.ok()) return s;

  return RunGoverned<KnMatchResult>(
      request, [&](size_t worker, size_t i, QueryContext* ctx) {
        return cache::CachedKnMatch(binding, searcher, request.queries[i],
                                    n, k, weights, &scratches_[worker],
                                    ctx);
      });
}

Result<FrequentKnMatchBatchResult> BatchExecutor::FrequentKnMatch(
    const AdSearcher& searcher, const BatchRequest& request, size_t n0,
    size_t n1, size_t k, std::span<const Value> weights,
    const cache::CacheBinding& binding) {
  Status s = ValidateBatch(searcher.columns().size(),
                           searcher.columns().dims(), request, n0, n1, k);
  if (!s.ok()) return s;
  s = ValidateAdWeights(weights, searcher.columns().dims());
  if (!s.ok()) return s;

  return RunGoverned<FrequentKnMatchResult>(
      request, [&](size_t worker, size_t i, QueryContext* ctx) {
        return cache::CachedFrequentKnMatch(binding, searcher,
                                            request.queries[i], n0, n1, k,
                                            weights, &scratches_[worker],
                                            ctx);
      });
}

Result<KnMatchBatchResult> BatchExecutor::Knn(const Dataset& db,
                                              const BatchRequest& request,
                                              size_t k, Metric metric,
                                              const cache::CacheBinding& binding) {
  // kNN has no n parameter; n0 = n1 = 1 is always legal for d >= 1, so
  // this reuses the shared validator for the (c, d, query dims, k)
  // checks.
  const Status s = ValidateBatch(db.size(), db.dims(), request, 1, 1, k);
  if (!s.ok()) return s;

  return RunGoverned<KnMatchResult>(
      request, [&](size_t worker, size_t i, QueryContext* ctx) {
        (void)worker;
        return cache::CachedKnn(binding, db, request.queries[i], k, metric,
                                ctx);
      });
}

}  // namespace knmatch::exec

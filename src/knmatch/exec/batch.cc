#include "knmatch/exec/batch.h"

#include <cassert>
#include <chrono>
#include <string>
#include <utility>

#include "knmatch/core/nmatch.h"

namespace knmatch::exec {

BatchExecutor::BatchExecutor(size_t threads)
    : pool_(std::max<size_t>(1, ResolveThreads(threads))),
      scratches_(pool_.size()) {}

/// Snapshot of one batch call's deadline and cancel flag. Admit() is
/// consulted by every worker at each query's start boundary; a running
/// query is never interrupted, so answers stay bit-identical to solo
/// runs.
class BatchExecutor::RunGuard {
 public:
  explicit RunGuard(const BatchOptions& options)
      : cancel_(options.cancel), has_deadline_(options.deadline_ms > 0) {
    if (has_deadline_) {
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double, std::milli>(
                          options.deadline_ms));
    }
  }

  /// OK while the batch may still start queries.
  Status Admit() const {
    if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
      return Status::Unavailable("batch cancelled");
    }
    if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
      return Status::Unavailable("batch deadline exceeded");
    }
    return Status::OK();
  }

 private:
  std::shared_ptr<std::atomic<bool>> cancel_;
  bool has_deadline_;
  std::chrono::steady_clock::time_point deadline_;
};

Status BatchExecutor::ValidateBatch(size_t cardinality, size_t dims,
                                    const BatchRequest& request, size_t n0,
                                    size_t n1, size_t k) const {
  for (size_t i = 0; i < request.queries.size(); ++i) {
    const Status s = ValidateMatchParams(
        cardinality, dims, request.queries[i].size(), n0, n1, k);
    if (!s.ok()) {
      return Status(s.code(),
                    "query " + std::to_string(i) + ": " + s.message());
    }
  }
  return Status::OK();
}

Result<KnMatchBatchResult> BatchExecutor::KnMatch(
    const AdSearcher& searcher, const BatchRequest& request, size_t n,
    size_t k, std::span<const Value> weights) {
  Status s = ValidateBatch(searcher.columns().size(),
                           searcher.columns().dims(), request, n, n, k);
  if (!s.ok()) return s;
  s = ValidateAdWeights(weights, searcher.columns().dims());
  if (!s.ok()) return s;

  KnMatchBatchResult out;
  out.results.resize(request.queries.size());
  out.statuses.assign(request.queries.size(), Status::OK());
  const RunGuard guard(request.options);
  pool_.ParallelFor(
      request.queries.size(), [&](size_t worker, size_t i) {
        if (Status admit = guard.Admit(); !admit.ok()) {
          out.statuses[i] = std::move(admit);
          return;
        }
        auto r = searcher.KnMatch(request.queries[i], n, k, weights,
                                  &scratches_[worker]);
        assert(r.ok() && "validated up front");
        out.results[i] = std::move(r).value();
      });
  for (size_t i = 0; i < out.results.size(); ++i) {
    if (out.statuses[i].ok()) {
      out.attributes_retrieved += out.results[i].attributes_retrieved;
    }
  }
  return out;
}

Result<FrequentKnMatchBatchResult> BatchExecutor::FrequentKnMatch(
    const AdSearcher& searcher, const BatchRequest& request, size_t n0,
    size_t n1, size_t k, std::span<const Value> weights) {
  Status s = ValidateBatch(searcher.columns().size(),
                           searcher.columns().dims(), request, n0, n1, k);
  if (!s.ok()) return s;
  s = ValidateAdWeights(weights, searcher.columns().dims());
  if (!s.ok()) return s;

  FrequentKnMatchBatchResult out;
  out.results.resize(request.queries.size());
  out.statuses.assign(request.queries.size(), Status::OK());
  const RunGuard guard(request.options);
  pool_.ParallelFor(
      request.queries.size(), [&](size_t worker, size_t i) {
        if (Status admit = guard.Admit(); !admit.ok()) {
          out.statuses[i] = std::move(admit);
          return;
        }
        auto r = searcher.FrequentKnMatch(request.queries[i], n0, n1, k,
                                          weights, &scratches_[worker]);
        assert(r.ok() && "validated up front");
        out.results[i] = std::move(r).value();
      });
  for (size_t i = 0; i < out.results.size(); ++i) {
    if (out.statuses[i].ok()) {
      out.attributes_retrieved += out.results[i].attributes_retrieved;
    }
  }
  return out;
}

Result<KnMatchBatchResult> BatchExecutor::Knn(const Dataset& db,
                                              const BatchRequest& request,
                                              size_t k, Metric metric) {
  // kNN has no n parameter; n0 = n1 = 1 is always legal for d >= 1, so
  // this reuses the shared validator for the (c, d, query dims, k)
  // checks.
  const Status s = ValidateBatch(db.size(), db.dims(), request, 1, 1, k);
  if (!s.ok()) return s;

  KnMatchBatchResult out;
  out.results.resize(request.queries.size());
  out.statuses.assign(request.queries.size(), Status::OK());
  const RunGuard guard(request.options);
  pool_.ParallelFor(request.queries.size(),
                    [&](size_t /*worker*/, size_t i) {
                      if (Status admit = guard.Admit(); !admit.ok()) {
                        out.statuses[i] = std::move(admit);
                        return;
                      }
                      auto r = KnnScan(db, request.queries[i], k, metric);
                      assert(r.ok() && "validated up front");
                      out.results[i] = std::move(r).value();
                    });
  for (size_t i = 0; i < out.results.size(); ++i) {
    if (out.statuses[i].ok()) {
      out.attributes_retrieved += out.results[i].attributes_retrieved;
    }
  }
  return out;
}

}  // namespace knmatch::exec

#include "knmatch/exec/batch.h"

#include <cassert>
#include <chrono>
#include <string>
#include <utility>

#include "knmatch/core/nmatch.h"
#include "knmatch/obs/catalog.h"

namespace knmatch::exec {

namespace {

/// Times one admitted query and settles its metrics on destruction:
/// one run-count increment, one latency observation on the worker's
/// histogram, one queue-depth decrement.
class QueryMeter {
 public:
  explicit QueryMeter(obs::Histogram* latency)
      : latency_(latency), armed_(obs::Enabled()) {
    if (armed_) start_ = std::chrono::steady_clock::now();
  }
  ~QueryMeter() {
    if (!armed_) return;
    obs::Cat().batch_queries->Add();
    obs::Cat().batch_queue_depth->Add(-1);
    latency_->Observe(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count()));
  }

 private:
  obs::Histogram* latency_;
  bool armed_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

BatchExecutor::BatchExecutor(size_t threads, bool allow_oversubscription)
    : pool_(std::max<size_t>(
          1, ResolveThreads(threads, allow_oversubscription))),
      scratches_(pool_.size()) {
  worker_latency_.reserve(pool_.size());
  for (size_t w = 0; w < pool_.size(); ++w) {
    worker_latency_.push_back(obs::BatchWorkerLatency(w));
  }
  obs::Cat().batch_workers->Set(static_cast<int64_t>(pool_.size()));
}

/// Snapshot of one batch call's deadline and cancel flag. Admit() is
/// consulted by every worker at each query's start boundary; a running
/// query is never interrupted, so answers stay bit-identical to solo
/// runs.
class BatchExecutor::RunGuard {
 public:
  explicit RunGuard(const BatchOptions& options)
      : cancel_(options.cancel), has_deadline_(options.deadline_ms > 0) {
    if (has_deadline_) {
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double, std::milli>(
                          options.deadline_ms));
    }
  }

  /// OK while the batch may still start queries. Called exactly once
  /// per query at its start boundary, so a refusal here counts the
  /// query as skipped (and drains it from the queue-depth gauge).
  Status Admit() const {
    if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
      obs::Cat().batch_skipped_cancel->Add();
      obs::Cat().batch_queue_depth->Add(-1);
      return Status::Unavailable("batch cancelled");
    }
    if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
      obs::Cat().batch_skipped_deadline->Add();
      obs::Cat().batch_queue_depth->Add(-1);
      return Status::Unavailable("batch deadline exceeded");
    }
    return Status::OK();
  }

 private:
  std::shared_ptr<std::atomic<bool>> cancel_;
  bool has_deadline_;
  std::chrono::steady_clock::time_point deadline_;
};

Status BatchExecutor::ValidateBatch(size_t cardinality, size_t dims,
                                    const BatchRequest& request, size_t n0,
                                    size_t n1, size_t k) const {
  for (size_t i = 0; i < request.queries.size(); ++i) {
    const Status s = ValidateMatchParams(
        cardinality, dims, request.queries[i].size(), n0, n1, k);
    if (!s.ok()) {
      return Status(s.code(),
                    "query " + std::to_string(i) + ": " + s.message());
    }
  }
  return Status::OK();
}

Result<KnMatchBatchResult> BatchExecutor::KnMatch(
    const AdSearcher& searcher, const BatchRequest& request, size_t n,
    size_t k, std::span<const Value> weights) {
  Status s = ValidateBatch(searcher.columns().size(),
                           searcher.columns().dims(), request, n, n, k);
  if (!s.ok()) return s;
  s = ValidateAdWeights(weights, searcher.columns().dims());
  if (!s.ok()) return s;

  KnMatchBatchResult out;
  out.results.resize(request.queries.size());
  out.statuses.assign(request.queries.size(), Status::OK());
  obs::Cat().batch_calls->Add();
  obs::Cat().batch_queue_depth->Set(
      static_cast<int64_t>(request.queries.size()));
  const RunGuard guard(request.options);
  pool_.ParallelFor(
      request.queries.size(), [&](size_t worker, size_t i) {
        if (Status admit = guard.Admit(); !admit.ok()) {
          out.statuses[i] = std::move(admit);
          return;
        }
        QueryMeter meter(worker_latency_[worker]);
        auto r = searcher.KnMatch(request.queries[i], n, k, weights,
                                  &scratches_[worker]);
        assert(r.ok() && "validated up front");
        out.results[i] = std::move(r).value();
      });
  for (size_t i = 0; i < out.results.size(); ++i) {
    if (out.statuses[i].ok()) {
      out.attributes_retrieved += out.results[i].attributes_retrieved;
    }
  }
  return out;
}

Result<FrequentKnMatchBatchResult> BatchExecutor::FrequentKnMatch(
    const AdSearcher& searcher, const BatchRequest& request, size_t n0,
    size_t n1, size_t k, std::span<const Value> weights) {
  Status s = ValidateBatch(searcher.columns().size(),
                           searcher.columns().dims(), request, n0, n1, k);
  if (!s.ok()) return s;
  s = ValidateAdWeights(weights, searcher.columns().dims());
  if (!s.ok()) return s;

  FrequentKnMatchBatchResult out;
  out.results.resize(request.queries.size());
  out.statuses.assign(request.queries.size(), Status::OK());
  obs::Cat().batch_calls->Add();
  obs::Cat().batch_queue_depth->Set(
      static_cast<int64_t>(request.queries.size()));
  const RunGuard guard(request.options);
  pool_.ParallelFor(
      request.queries.size(), [&](size_t worker, size_t i) {
        if (Status admit = guard.Admit(); !admit.ok()) {
          out.statuses[i] = std::move(admit);
          return;
        }
        QueryMeter meter(worker_latency_[worker]);
        auto r = searcher.FrequentKnMatch(request.queries[i], n0, n1, k,
                                          weights, &scratches_[worker]);
        assert(r.ok() && "validated up front");
        out.results[i] = std::move(r).value();
      });
  for (size_t i = 0; i < out.results.size(); ++i) {
    if (out.statuses[i].ok()) {
      out.attributes_retrieved += out.results[i].attributes_retrieved;
    }
  }
  return out;
}

Result<KnMatchBatchResult> BatchExecutor::Knn(const Dataset& db,
                                              const BatchRequest& request,
                                              size_t k, Metric metric) {
  // kNN has no n parameter; n0 = n1 = 1 is always legal for d >= 1, so
  // this reuses the shared validator for the (c, d, query dims, k)
  // checks.
  const Status s = ValidateBatch(db.size(), db.dims(), request, 1, 1, k);
  if (!s.ok()) return s;

  KnMatchBatchResult out;
  out.results.resize(request.queries.size());
  out.statuses.assign(request.queries.size(), Status::OK());
  obs::Cat().batch_calls->Add();
  obs::Cat().batch_queue_depth->Set(
      static_cast<int64_t>(request.queries.size()));
  const RunGuard guard(request.options);
  pool_.ParallelFor(request.queries.size(),
                    [&](size_t worker, size_t i) {
                      if (Status admit = guard.Admit(); !admit.ok()) {
                        out.statuses[i] = std::move(admit);
                        return;
                      }
                      QueryMeter meter(worker_latency_[worker]);
                      auto r = KnnScan(db, request.queries[i], k, metric);
                      assert(r.ok() && "validated up front");
                      out.results[i] = std::move(r).value();
                    });
  for (size_t i = 0; i < out.results.size(); ++i) {
    if (out.statuses[i].ok()) {
      out.attributes_retrieved += out.results[i].attributes_retrieved;
    }
  }
  return out;
}

}  // namespace knmatch::exec

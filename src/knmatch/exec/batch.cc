#include "knmatch/exec/batch.h"

#include <cassert>
#include <string>
#include <utility>

#include "knmatch/core/nmatch.h"

namespace knmatch::exec {

BatchExecutor::BatchExecutor(size_t threads)
    : pool_(std::max<size_t>(1, ResolveThreads(threads))),
      scratches_(pool_.size()) {}

Status BatchExecutor::ValidateBatch(size_t cardinality, size_t dims,
                                    const BatchRequest& request, size_t n0,
                                    size_t n1, size_t k) const {
  for (size_t i = 0; i < request.queries.size(); ++i) {
    const Status s = ValidateMatchParams(
        cardinality, dims, request.queries[i].size(), n0, n1, k);
    if (!s.ok()) {
      return Status(s.code(),
                    "query " + std::to_string(i) + ": " + s.message());
    }
  }
  return Status::OK();
}

Result<KnMatchBatchResult> BatchExecutor::KnMatch(
    const AdSearcher& searcher, const BatchRequest& request, size_t n,
    size_t k, std::span<const Value> weights) {
  Status s = ValidateBatch(searcher.columns().size(),
                           searcher.columns().dims(), request, n, n, k);
  if (!s.ok()) return s;
  s = ValidateAdWeights(weights, searcher.columns().dims());
  if (!s.ok()) return s;

  KnMatchBatchResult out;
  out.results.resize(request.queries.size());
  pool_.ParallelFor(
      request.queries.size(), [&](size_t worker, size_t i) {
        auto r = searcher.KnMatch(request.queries[i], n, k, weights,
                                  &scratches_[worker]);
        assert(r.ok() && "validated up front");
        out.results[i] = std::move(r).value();
      });
  for (const KnMatchResult& r : out.results) {
    out.attributes_retrieved += r.attributes_retrieved;
  }
  return out;
}

Result<FrequentKnMatchBatchResult> BatchExecutor::FrequentKnMatch(
    const AdSearcher& searcher, const BatchRequest& request, size_t n0,
    size_t n1, size_t k, std::span<const Value> weights) {
  Status s = ValidateBatch(searcher.columns().size(),
                           searcher.columns().dims(), request, n0, n1, k);
  if (!s.ok()) return s;
  s = ValidateAdWeights(weights, searcher.columns().dims());
  if (!s.ok()) return s;

  FrequentKnMatchBatchResult out;
  out.results.resize(request.queries.size());
  pool_.ParallelFor(
      request.queries.size(), [&](size_t worker, size_t i) {
        auto r = searcher.FrequentKnMatch(request.queries[i], n0, n1, k,
                                          weights, &scratches_[worker]);
        assert(r.ok() && "validated up front");
        out.results[i] = std::move(r).value();
      });
  for (const FrequentKnMatchResult& r : out.results) {
    out.attributes_retrieved += r.attributes_retrieved;
  }
  return out;
}

Result<KnMatchBatchResult> BatchExecutor::Knn(const Dataset& db,
                                              const BatchRequest& request,
                                              size_t k, Metric metric) {
  // kNN has no n parameter; n0 = n1 = 1 is always legal for d >= 1, so
  // this reuses the shared validator for the (c, d, query dims, k)
  // checks.
  const Status s = ValidateBatch(db.size(), db.dims(), request, 1, 1, k);
  if (!s.ok()) return s;

  KnMatchBatchResult out;
  out.results.resize(request.queries.size());
  pool_.ParallelFor(request.queries.size(),
                    [&](size_t /*worker*/, size_t i) {
                      auto r = KnnScan(db, request.queries[i], k, metric);
                      assert(r.ok() && "validated up front");
                      out.results[i] = std::move(r).value();
                    });
  for (const KnMatchResult& r : out.results) {
    out.attributes_retrieved += r.attributes_retrieved;
  }
  return out;
}

}  // namespace knmatch::exec

#ifndef KNMATCH_EXEC_EWMA_H_
#define KNMATCH_EXEC_EWMA_H_

#include <atomic>
#include <cstdint>

namespace knmatch::exec {

/// Exponentially weighted moving average of a latency stream, in
/// nanoseconds, with a fixed alpha of 1/4 in integer arithmetic:
///
///   next = old == 0 ? sample : (3 * old + sample) / 4
///
/// Shared by the batch executor's predictive shedding and the shard
/// router's hedging trigger. Racy read-modify-write on purpose: the
/// EWMA feeds heuristics (shed / hedge decisions), and a lost update
/// under contention only delays convergence by one sample — so the
/// atomics are relaxed and Record never loops.
class EwmaLatency {
 public:
  /// Folds one latency sample in; non-positive samples are ignored.
  void Record(int64_t latency_ns) {
    if (latency_ns <= 0) return;
    const int64_t old = ewma_ns_.load(std::memory_order_relaxed);
    const int64_t next = old == 0 ? latency_ns : (3 * old + latency_ns) / 4;
    ewma_ns_.store(next, std::memory_order_relaxed);
  }

  /// Current estimate in nanoseconds; 0 until the first sample.
  int64_t ns() const { return ewma_ns_.load(std::memory_order_relaxed); }

  /// Current estimate in milliseconds; 0 until the first sample.
  double ms() const { return static_cast<double>(ns()) / 1e6; }

  /// Drops the estimate back to "no samples yet".
  void Reset() { ewma_ns_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> ewma_ns_{0};
};

}  // namespace knmatch::exec

#endif  // KNMATCH_EXEC_EWMA_H_

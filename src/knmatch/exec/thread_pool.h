#ifndef KNMATCH_EXEC_THREAD_POOL_H_
#define KNMATCH_EXEC_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace knmatch::exec {

/// A fixed pool of worker threads executing index ranges — the
/// execution substrate of the batch query API. Deliberately
/// work-stealing-free: queries over the shared read-only sorted columns
/// are uniform enough that a single shared atomic index (dynamic
/// self-scheduling) balances load without per-worker deques.
///
/// Workers are started once in the constructor and joined in the
/// destructor; ParallelFor dispatches one "job" at a time. The worker
/// index passed to the body is stable for the lifetime of the pool, so
/// callers can key per-thread state (e.g. an AdScratch arena) on it.
///
/// Thread-safety: ParallelFor must not be called concurrently with
/// itself (the engine serializes batch calls); the pool may be
/// constructed/destructed on any thread.
class ThreadPool {
 public:
  /// Starts `num_threads` workers. 0 is allowed: ParallelFor then runs
  /// the whole range inline on the calling thread (worker index 0).
  explicit ThreadPool(size_t num_threads);

  /// Stops and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (0 for an inline pool).
  size_t size() const { return workers_.size(); }

  /// Runs body(worker, index) for every index in [0, count), spread
  /// across the workers, and blocks until all indices complete.
  /// `worker` is in [0, max(1, size())). Bodies must not throw (the
  /// library reports errors via Status) and must not call ParallelFor
  /// reentrantly.
  void ParallelFor(size_t count,
                   const std::function<void(size_t, size_t)>& body);

  /// Chunked work handoff: runs body(worker, begin, end) over
  /// consecutive ranges of [0, count), `grain` indices per range (the
  /// last may be short). One atomic claim and one body indirection per
  /// grain indices instead of per index — the dispatch amortization
  /// that matters when each index is a cheap query. grain == 1 is the
  /// same schedule as ParallelFor. Same restrictions as ParallelFor.
  void ParallelForChunked(
      size_t count, size_t grain,
      const std::function<void(size_t, size_t, size_t)>& body);

 private:
  void WorkerLoop(size_t worker);

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(size_t, size_t)>* body_ = nullptr;  // current job
  /// Chunked job, exclusive with body_.
  const std::function<void(size_t, size_t, size_t)>* chunk_body_ = nullptr;
  size_t grain_ = 1;
  size_t count_ = 0;
  std::atomic<size_t> next_{0};
  size_t active_ = 0;
  uint64_t generation_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Resolves a user-facing thread-count request: 0 means "use the
/// hardware". Explicit requests are capped at 256 (keeps a typo from
/// spawning thousands of threads) and, unless `allow_oversubscription`,
/// clamped to hardware_concurrency(): with CPU-bound uniform queries,
/// workers beyond the core count only add context-switch overhead
/// (BENCH_throughput recorded 0.75–0.78x at 8 workers on a 1-core
/// host), so running more is an explicit opt-in, not a default.
size_t ResolveThreads(size_t requested, bool allow_oversubscription = false);

}  // namespace knmatch::exec

#endif  // KNMATCH_EXEC_THREAD_POOL_H_

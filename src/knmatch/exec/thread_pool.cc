#include "knmatch/exec/thread_pool.h"

#include <algorithm>

namespace knmatch::exec {

ThreadPool::ThreadPool(size_t num_threads) {
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::ParallelFor(
    size_t count, const std::function<void(size_t, size_t)>& body) {
  if (count == 0) return;
  if (workers_.empty()) {
    for (size_t i = 0; i < count; ++i) body(0, i);
    return;
  }
  std::unique_lock lock(mu_);
  body_ = &body;
  chunk_body_ = nullptr;
  count_ = count;
  next_.store(0, std::memory_order_relaxed);
  active_ = workers_.size();
  ++generation_;
  work_cv_.notify_all();
  done_cv_.wait(lock, [this] { return active_ == 0; });
  body_ = nullptr;
}

void ThreadPool::ParallelForChunked(
    size_t count, size_t grain,
    const std::function<void(size_t, size_t, size_t)>& body) {
  if (count == 0) return;
  grain = std::max<size_t>(1, grain);
  if (workers_.empty()) {
    for (size_t begin = 0; begin < count; begin += grain) {
      body(0, begin, std::min(begin + grain, count));
    }
    return;
  }
  std::unique_lock lock(mu_);
  chunk_body_ = &body;
  body_ = nullptr;
  grain_ = grain;
  count_ = count;
  next_.store(0, std::memory_order_relaxed);
  active_ = workers_.size();
  ++generation_;
  work_cv_.notify_all();
  done_cv_.wait(lock, [this] { return active_ == 0; });
  chunk_body_ = nullptr;
}

void ThreadPool::WorkerLoop(size_t worker) {
  uint64_t seen = 0;
  for (;;) {
    const std::function<void(size_t, size_t)>* body;
    const std::function<void(size_t, size_t, size_t)>* chunk_body;
    size_t count;
    size_t grain;
    {
      std::unique_lock lock(mu_);
      work_cv_.wait(lock,
                    [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      body = body_;
      chunk_body = chunk_body_;
      count = count_;
      grain = grain_;
    }
    if (chunk_body != nullptr) {
      for (;;) {
        const size_t chunk = next_.fetch_add(1, std::memory_order_relaxed);
        const size_t begin = chunk * grain;
        if (begin >= count) break;
        (*chunk_body)(worker, begin, std::min(begin + grain, count));
      }
    } else {
      for (;;) {
        const size_t i = next_.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) break;
        (*body)(worker, i);
      }
    }
    {
      std::scoped_lock lock(mu_);
      if (--active_ == 0) done_cv_.notify_all();
    }
  }
}

size_t ResolveThreads(size_t requested, bool allow_oversubscription) {
  const unsigned hw_raw = std::thread::hardware_concurrency();
  const size_t hw = hw_raw == 0 ? 1 : hw_raw;
  if (requested == 0) return hw;
  const size_t capped = std::min<size_t>(requested, 256);
  return allow_oversubscription ? capped : std::min(capped, hw);
}

}  // namespace knmatch::exec

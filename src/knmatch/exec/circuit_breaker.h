#ifndef KNMATCH_EXEC_CIRCUIT_BREAKER_H_
#define KNMATCH_EXEC_CIRCUIT_BREAKER_H_

#include <cstddef>
#include <cstdint>

namespace knmatch::exec {

/// Count-based circuit breaker guarding one backend (here: one disk
/// method of the auto-routed degradation chain). Deterministic on
/// purpose — state advances only on recorded outcomes and refused
/// requests, never on wall-clock time — so tests and replays see the
/// same transitions every run.
///
/// Closed: requests flow; outcomes land in a sliding window, and once
/// at least `min_samples` outcomes show a failure ratio >=
/// `trip_ratio`, the breaker opens. Open: requests are refused;
/// after `cooldown` refusals the breaker goes half-open and admits
/// exactly one probe. Half-open: the probe's success closes the
/// breaker (window cleared), its failure re-opens it.
///
/// Single-threaded by design: the engine's Disk* entry points require
/// external serialization, and the breaker lives behind them.
class CircuitBreaker {
 public:
  struct Options {
    /// Sliding window of most-recent outcomes judged for the trip.
    size_t window = 16;
    /// Outcomes required before the ratio is trusted at all.
    size_t min_samples = 8;
    /// Failure ratio (within the window) that opens the breaker.
    double trip_ratio = 0.5;
    /// Refused requests while open before one half-open probe runs.
    size_t cooldown = 8;
  };

  enum class State { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  CircuitBreaker() = default;
  explicit CircuitBreaker(Options options) : options_(options) {}

  /// May a request be routed to the protected backend? Refusals while
  /// open count toward the cooldown; the call that exhausts it flips
  /// to half-open and admits the probe.
  bool Allow() {
    switch (state_) {
      case State::kClosed:
        return true;
      case State::kOpen:
        if (++refusals_ >= options_.cooldown) {
          state_ = State::kHalfOpen;
          return true;  // the probe
        }
        return false;
      case State::kHalfOpen:
        return false;  // one probe at a time; its outcome decides
    }
    return true;
  }

  /// Reports the outcome of an admitted request.
  void RecordSuccess() {
    if (state_ == State::kHalfOpen) {
      Reset();
      return;
    }
    Push(false);
  }
  void RecordFailure() {
    if (state_ == State::kHalfOpen) {
      Open();
      return;
    }
    Push(true);
    if (samples_ >= options_.min_samples &&
        static_cast<double>(failures_) >=
            options_.trip_ratio * static_cast<double>(samples_)) {
      Open();
    }
  }

  State state() const { return state_; }

 private:
  void Open() {
    state_ = State::kOpen;
    refusals_ = 0;
    // The window restarts after recovery; a re-trip should reflect
    // fresh outcomes, not pre-outage history.
    samples_ = 0;
    failures_ = 0;
    head_ = 0;
    window_bits_ = 0;
  }

  void Reset() {
    state_ = State::kClosed;
    refusals_ = 0;
    samples_ = 0;
    failures_ = 0;
    head_ = 0;
    window_bits_ = 0;
  }

  /// Sliding window as a bitset (options_.window <= 64 enforced by
  /// clamping): one bit per outcome, 1 = failure.
  void Push(bool failure) {
    const size_t cap = options_.window < 64 ? options_.window : 64;
    const uint64_t mask = uint64_t{1} << head_;
    if (samples_ == cap) {
      if (window_bits_ & mask) --failures_;
    } else {
      ++samples_;
    }
    if (failure) {
      window_bits_ |= mask;
      ++failures_;
    } else {
      window_bits_ &= ~mask;
    }
    head_ = (head_ + 1) % cap;
  }

  Options options_;
  State state_ = State::kClosed;
  size_t refusals_ = 0;
  size_t samples_ = 0;
  size_t failures_ = 0;
  size_t head_ = 0;
  uint64_t window_bits_ = 0;
};

}  // namespace knmatch::exec

#endif  // KNMATCH_EXEC_CIRCUIT_BREAKER_H_

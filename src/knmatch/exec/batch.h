#ifndef KNMATCH_EXEC_BATCH_H_
#define KNMATCH_EXEC_BATCH_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "knmatch/baselines/knn_scan.h"
#include "knmatch/common/dataset.h"
#include "knmatch/common/status.h"
#include "knmatch/common/types.h"
#include "knmatch/core/ad_algorithm.h"
#include "knmatch/core/ad_scratch.h"
#include "knmatch/core/match_types.h"
#include "knmatch/exec/thread_pool.h"
#include "knmatch/obs/metrics.h"

namespace knmatch::exec {

/// Execution knobs for a batch call.
struct BatchOptions {
  /// Worker threads fanning the batch out; 0 means "one per hardware
  /// thread". 1 still runs on a pool of one worker — useful for
  /// apples-to-apples throughput comparisons. Requests above the
  /// hardware thread count are clamped to it unless
  /// `allow_oversubscription` is set (see below).
  size_t threads = 0;
  /// By default an explicit `threads` request is clamped to
  /// hardware_concurrency(): the workload is CPU-bound, and extra
  /// workers only add context switches (measured 0.75–0.78x throughput
  /// at 8 workers on a 1-core host). Set true to take `threads`
  /// literally — for scheduling experiments, or when queries spend
  /// their time blocked somewhere the executor cannot see.
  bool allow_oversubscription = false;
  /// Wall-clock budget for the whole batch, measured from the moment
  /// the executor starts fanning out; 0 means no deadline. Checked
  /// cooperatively at query boundaries — a query already running is
  /// finished, not interrupted, so the overshoot is bounded by one
  /// query's latency per worker.
  double deadline_ms = 0;
  /// Optional cancellation flag shared with the caller: set it to true
  /// (from any thread) and workers stop picking up queries at the next
  /// boundary. Null means not cancellable.
  std::shared_ptr<std::atomic<bool>> cancel;
};

/// A batch of same-shaped queries. The match parameters (n, k, ...) are
/// per call — a serving batch groups queries of one kind; per-query
/// variation is the query vector itself.
struct BatchRequest {
  std::vector<std::vector<Value>> queries;
  BatchOptions options;
};

/// Results of a batch call, index-aligned with BatchRequest::queries.
/// Malformed parameters fail the whole call up front (validation runs
/// before any work is fanned out); after that, each query lands an OK
/// status and an answer, or — when the batch's deadline passed or its
/// cancel flag was set before the query started — kUnavailable and a
/// default-constructed result. Queries that did run are bit-identical
/// to solo execution regardless of which others were skipped.
template <typename ResultT>
struct BatchResult {
  std::vector<ResultT> results;
  /// Per-query outcome, index-aligned with `results`. OK slots hold
  /// answers; kUnavailable slots were skipped (deadline/cancel).
  std::vector<Status> statuses;
  /// Sum of attributes retrieved over the queries that ran (the
  /// paper's cost metric); 0 for algorithms that do not report it.
  uint64_t attributes_retrieved = 0;
};

using KnMatchBatchResult = BatchResult<KnMatchResult>;
using FrequentKnMatchBatchResult = BatchResult<FrequentKnMatchResult>;

/// Fans batches of independent queries across a fixed thread pool over
/// the shared read-only sorted columns, giving each worker a private
/// AdScratch arena that is reused from query to query (the O(1)-reset
/// epoch trick — no per-query O(cardinality) allocation).
///
/// Answers are bit-for-bit identical to running each query alone:
/// every query is deterministic given its inputs, workers share no
/// mutable state, and results are written into the slot of the query's
/// index, so neither thread count nor scheduling order can show
/// through.
///
/// The executor itself must not run two batches concurrently (the
/// per-worker scratches would be shared); SimilarityEngine serializes
/// its batch entry points.
class BatchExecutor {
 public:
  /// Spawns `threads` workers (after ResolveThreads, which clamps to
  /// the hardware thread count unless `allow_oversubscription`; 1
  /// worker minimum).
  explicit BatchExecutor(size_t threads, bool allow_oversubscription = false);

  /// Worker count (>= 1).
  size_t threads() const { return pool_.size(); }

  /// Batch KNMatchAD over `searcher`'s sorted columns.
  Result<KnMatchBatchResult> KnMatch(const AdSearcher& searcher,
                                     const BatchRequest& request, size_t n,
                                     size_t k,
                                     std::span<const Value> weights = {});

  /// Batch FKNMatchAD over `searcher`'s sorted columns.
  Result<FrequentKnMatchBatchResult> FrequentKnMatch(
      const AdSearcher& searcher, const BatchRequest& request, size_t n0,
      size_t n1, size_t k, std::span<const Value> weights = {});

  /// Batch exact kNN by scan over `db`.
  Result<KnMatchBatchResult> Knn(const Dataset& db,
                                 const BatchRequest& request, size_t k,
                                 Metric metric = Metric::kEuclidean);

 private:
  Status ValidateBatch(size_t cardinality, size_t dims,
                       const BatchRequest& request, size_t n0, size_t n1,
                       size_t k) const;

  /// Tracks one batch's deadline and cancel flag; queries consult it
  /// at their start boundary.
  class RunGuard;

  ThreadPool pool_;
  std::vector<internal::AdScratch> scratches_;  // one per worker
  /// knmatch_batch_query_seconds{worker=...}, resolved once per worker
  /// at construction so the per-query path is one pointer chase.
  std::vector<obs::Histogram*> worker_latency_;
};

}  // namespace knmatch::exec

#endif  // KNMATCH_EXEC_BATCH_H_

#ifndef KNMATCH_EXEC_BATCH_H_
#define KNMATCH_EXEC_BATCH_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "knmatch/baselines/knn_scan.h"
#include "knmatch/cache/cached_search.h"
#include "knmatch/common/dataset.h"
#include "knmatch/common/status.h"
#include "knmatch/common/types.h"
#include "knmatch/core/ad_algorithm.h"
#include "knmatch/core/ad_scratch.h"
#include "knmatch/core/match_types.h"
#include "knmatch/core/query_context.h"
#include "knmatch/exec/thread_pool.h"
#include "knmatch/obs/metrics.h"

namespace knmatch::exec {

/// Execution knobs for a batch call.
struct BatchOptions {
  /// Worker threads fanning the batch out; 0 means "one per hardware
  /// thread". 1 still runs on a pool of one worker — useful for
  /// apples-to-apples throughput comparisons. Requests above the
  /// hardware thread count are clamped to it unless
  /// `allow_oversubscription` is set (see below).
  size_t threads = 0;
  /// By default an explicit `threads` request is clamped to
  /// hardware_concurrency(): the workload is CPU-bound, and extra
  /// workers only add context switches (measured 0.75–0.78x throughput
  /// at 8 workers on a 1-core host). Set true to take `threads`
  /// literally — for scheduling experiments, or when queries spend
  /// their time blocked somewhere the executor cannot see.
  bool allow_oversubscription = false;
  /// Wall-clock budget for the whole batch, measured from the moment
  /// the executor starts fanning out; 0 means no deadline. Enforced at
  /// two levels: queries not yet started when it passes are skipped
  /// with kDeadlineExceeded at their start boundary (including ones
  /// still queued behind busy workers), and queries already in flight
  /// share the same absolute deadline through their QueryContext, so
  /// they trip cooperatively instead of running to completion — the
  /// overshoot is one governance stride, not one query's latency.
  double deadline_ms = 0;
  /// Optional cancellation flag shared with the caller: set it to true
  /// (from any thread) and workers stop picking up queries at the next
  /// boundary; in-flight queries trip with kUnavailable at their next
  /// governance check. Null means not cancellable.
  std::shared_ptr<std::atomic<bool>> cancel;
  /// Queries admitted into one batch call; anything past the cap is
  /// shed deterministically from the tail (highest indices) with
  /// kResourceExhausted before fan-out begins. 0 means unlimited.
  size_t max_queue_depth = 0;
  /// Per-query resource budgets applied to every admitted query (see
  /// QueryBudgets; zero fields are unlimited).
  QueryBudgets budgets;
  /// Shared attribute pool for the whole batch: every finished query's
  /// attribute cost draws it down, and once it is empty the remaining
  /// queries are shed with kResourceExhausted at their start boundary
  /// (granularity is one query — an in-flight query is bounded by
  /// `budgets`, not the pool). 0 means unlimited.
  uint64_t attribute_pool = 0;
  /// Predictive shedding (requires deadline_ms > 0): the executor keeps
  /// an EWMA of completed-query latencies and shed queries whose
  /// predicted completion would pass the batch deadline, converting a
  /// doomed start into an immediate kDeadlineExceeded. The decision
  /// rule is deterministic given the observed latencies.
  bool predictive_shedding = false;
  /// Collapse exact-duplicate queries within the batch: each distinct
  /// admitted query vector executes once and its result (or governance
  /// status) is fanned out to the duplicates' slots. Duplicates do not
  /// pass the admission boundary, draw the attribute pool, or count in
  /// the per-query metrics (they land in
  /// knmatch_batch_dup_collapsed_total instead), and the batch's
  /// attributes_retrieved sums each distinct query once — the batch
  /// reports the work actually done. Answers are unaffected: a
  /// duplicate's answer is by definition the representative's.
  bool collapse_duplicates = true;
};

/// A batch of same-shaped queries. The match parameters (n, k, ...) are
/// per call — a serving batch groups queries of one kind; per-query
/// variation is the query vector itself.
struct BatchRequest {
  std::vector<std::vector<Value>> queries;
  BatchOptions options;
};

/// Results of a batch call, index-aligned with BatchRequest::queries.
/// Malformed parameters fail the whole call up front (validation runs
/// before any work is fanned out); after that, each query lands an OK
/// status and an answer, or a typed governance status and a
/// default-constructed result: kDeadlineExceeded when the batch
/// deadline passed before the query started (or predicted shedding
/// refused it) or tripped it in flight, kResourceExhausted when the
/// queue-depth cap, the attribute pool, or a per-query budget shed it,
/// kUnavailable when the cancel flag stopped it. Queries that ran to
/// completion are bit-identical to solo execution regardless of which
/// others were skipped or tripped.
template <typename ResultT>
struct BatchResult {
  std::vector<ResultT> results;
  /// Per-query outcome, index-aligned with `results`. OK slots hold
  /// answers; non-OK slots were shed, skipped, or tripped (see above).
  std::vector<Status> statuses;
  /// Sum of attributes retrieved over the queries that ran (the
  /// paper's cost metric); 0 for algorithms that do not report it.
  uint64_t attributes_retrieved = 0;
};

using KnMatchBatchResult = BatchResult<KnMatchResult>;
using FrequentKnMatchBatchResult = BatchResult<FrequentKnMatchResult>;

/// Fans batches of independent queries across a fixed thread pool over
/// the shared read-only sorted columns, giving each worker a private
/// AdScratch arena that is reused from query to query (the O(1)-reset
/// epoch trick — no per-query O(cardinality) allocation).
///
/// Answers are bit-for-bit identical to running each query alone:
/// every query is deterministic given its inputs, workers share no
/// mutable state, and results are written into the slot of the query's
/// index, so neither thread count nor scheduling order can show
/// through.
///
/// The executor itself must not run two batches concurrently (the
/// per-worker scratches would be shared); SimilarityEngine serializes
/// its batch entry points.
class BatchExecutor {
 public:
  /// Spawns `threads` workers (after ResolveThreads, which clamps to
  /// the hardware thread count unless `allow_oversubscription`; 1
  /// worker minimum).
  explicit BatchExecutor(size_t threads, bool allow_oversubscription = false);

  /// Worker count (>= 1).
  size_t threads() const { return pool_.size(); }

  /// Batch KNMatchAD over `searcher`'s sorted columns. `binding`
  /// (engine-provided) routes each query through the shared result
  /// cache; a default binding means caching off.
  Result<KnMatchBatchResult> KnMatch(const AdSearcher& searcher,
                                     const BatchRequest& request, size_t n,
                                     size_t k,
                                     std::span<const Value> weights = {},
                                     const cache::CacheBinding& binding = {});

  /// Batch FKNMatchAD over `searcher`'s sorted columns.
  Result<FrequentKnMatchBatchResult> FrequentKnMatch(
      const AdSearcher& searcher, const BatchRequest& request, size_t n0,
      size_t n1, size_t k, std::span<const Value> weights = {},
      const cache::CacheBinding& binding = {});

  /// Batch exact kNN by scan over `db`.
  Result<KnMatchBatchResult> Knn(const Dataset& db,
                                 const BatchRequest& request, size_t k,
                                 Metric metric = Metric::kEuclidean,
                                 const cache::CacheBinding& binding = {});

 private:
  Status ValidateBatch(size_t cardinality, size_t dims,
                       const BatchRequest& request, size_t n0, size_t n1,
                       size_t k) const;

  /// Tracks one batch's deadline, cancel flag, attribute pool, and
  /// latency EWMA; queries consult it at their start boundary and
  /// settle into it when they finish.
  class RunGuard;

  /// Shared fan-out skeleton: queue-depth shedding, duplicate
  /// collapse, per-query admission, governance context wiring, chunked
  /// dispatch over the distinct queries, and result/status settling
  /// (including the duplicate fan-out copy after the barrier).
  /// `run(worker, i, ctx)` executes query `i` and returns its result.
  template <typename ResultT, typename RunFn>
  Result<BatchResult<ResultT>> RunGoverned(const BatchRequest& request,
                                           RunFn&& run);

  ThreadPool pool_;
  std::vector<internal::AdScratch> scratches_;  // one per worker
  /// knmatch_batch_query_seconds{worker=...}, resolved once per worker
  /// at construction so the per-query path is one pointer chase.
  std::vector<obs::Histogram*> worker_latency_;
};

}  // namespace knmatch::exec

#endif  // KNMATCH_EXEC_BATCH_H_

#include "knmatch/baselines/idistance.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "knmatch/baselines/knn_scan.h"
#include "knmatch/common/kmeans.h"
#include "knmatch/common/top_k.h"
#include "knmatch/core/nmatch.h"

namespace knmatch {

IDistanceIndex::IDistanceIndex(const Dataset& db, DiskSimulator* disk,
                               Options options)
    : db_(db), options_(options), tree_(disk) {
  const size_t d = db.dims();
  // Key stride: strictly larger than any possible distance in the
  // normalized space, so partitions never overlap in key space.
  c_stride_ = 2.0 * std::sqrt(static_cast<double>(d)) + 1.0;

  KMeansResult clusters =
      KMeans(db, options.partitions, /*seed=*/0xD15,
             options.kmeans_iterations);

  // Drop empty partitions and remap.
  std::vector<int> remap(clusters.centers.rows(), -1);
  std::vector<size_t> members(clusters.centers.rows(), 0);
  for (const uint32_t a : clusters.assignment) ++members[a];
  size_t kept = 0;
  for (size_t i = 0; i < members.size(); ++i) {
    if (members[i] > 0) remap[i] = static_cast<int>(kept++);
  }
  centers_ = Matrix(kept, d);
  partition_radius_.assign(kept, 0.0);
  for (size_t i = 0; i < members.size(); ++i) {
    if (remap[i] < 0) continue;
    auto src = clusters.centers.row(i);
    std::copy(src.begin(), src.end(),
              centers_.row(static_cast<size_t>(remap[i])).begin());
  }

  // Build (key, pid) entries and bulk load.
  std::vector<ColumnEntry> entries(db.size());
  for (PointId pid = 0; pid < db.size(); ++pid) {
    const auto part =
        static_cast<uint32_t>(remap[clusters.assignment[pid]]);
    const double dist =
        MetricDistance(db.point(pid), centers_.row(part),
                       Metric::kEuclidean);
    partition_radius_[part] = std::max(partition_radius_[part], dist);
    entries[pid] = ColumnEntry{KeyOf(part, dist), pid};
  }
  std::sort(entries.begin(), entries.end(),
            [](const ColumnEntry& a, const ColumnEntry& b) {
              if (a.value != b.value) return a.value < b.value;
              return a.pid < b.pid;
            });
  tree_.BulkLoad(entries);
}

Value IDistanceIndex::KeyOf(uint32_t partition, double dist) const {
  return static_cast<Value>(partition) * c_stride_ + dist;
}

Result<KnMatchResult> IDistanceIndex::Knn(std::span<const Value> query,
                                          size_t k) const {
  Status s =
      ValidateMatchParams(db_.size(), db_.dims(), query.size(), 1, 1, k);
  if (!s.ok()) return s;

  const size_t parts = centers_.rows();
  const double diagonal = std::sqrt(static_cast<double>(db_.dims()));
  const double step = std::max(1e-6, options_.radius_step * diagonal);

  std::vector<double> dist_to_center(parts);
  for (size_t i = 0; i < parts; ++i) {
    dist_to_center[i] =
        MetricDistance(query, centers_.row(i), Metric::kEuclidean);
  }

  // Scanned key interval per partition; lo > hi means "none yet".
  std::vector<std::pair<Value, Value>> scanned(
      parts, {Value{1}, Value{0}});

  BoundedTopK<PointId, Value, PointId> top(k);
  last_points_examined_ = 0;
  const size_t stream = tree_.OpenStream();

  auto scan_keys = [&](Value lo, Value hi) {
    // Examine every entry with lo <= key <= hi.
    auto it = tree_.SeekLowerBound(stream, lo);
    while (it.Valid() && it.Get().value <= hi) {
      const PointId pid = it.Get().pid;
      ++last_points_examined_;
      top.Offer(MetricDistance(db_.point(pid), query, Metric::kEuclidean),
                pid, pid);
      it.Next();
    }
  };

  for (double r = step;; r += step) {
    for (size_t i = 0; i < parts; ++i) {
      if (dist_to_center[i] - r > partition_radius_[i]) continue;
      const double lo_dist = std::max(0.0, dist_to_center[i] - r);
      const double hi_dist =
          std::min(partition_radius_[i], dist_to_center[i] + r);
      if (lo_dist > hi_dist) continue;
      const Value lo = KeyOf(static_cast<uint32_t>(i), lo_dist);
      const Value hi = KeyOf(static_cast<uint32_t>(i), hi_dist);
      auto& [prev_lo, prev_hi] = scanned[i];
      if (prev_lo > prev_hi) {
        scan_keys(lo, hi);
      } else {
        // Extend only the fresh shell on each side.
        if (lo < prev_lo) {
          auto it = tree_.SeekLowerBound(stream, lo);
          while (it.Valid() && it.Get().value < prev_lo) {
            ++last_points_examined_;
            top.Offer(MetricDistance(db_.point(it.Get().pid), query,
                                     Metric::kEuclidean),
                      it.Get().pid, it.Get().pid);
            it.Next();
          }
        }
        if (hi > prev_hi) {
          auto it = tree_.SeekLowerBound(stream, prev_hi);
          while (it.Valid() && it.Get().value <= prev_hi) it.Next();
          while (it.Valid() && it.Get().value <= hi) {
            ++last_points_examined_;
            top.Offer(MetricDistance(db_.point(it.Get().pid), query,
                                     Metric::kEuclidean),
                      it.Get().pid, it.Get().pid);
            it.Next();
          }
        }
      }
      if (prev_lo > prev_hi) {
        prev_lo = lo;
        prev_hi = hi;
      } else {
        prev_lo = std::min(prev_lo, lo);
        prev_hi = std::max(prev_hi, hi);
      }
    }
    // Correct termination: every unexamined point is farther than r;
    // once the k-th best distance is <= r, nothing can improve it.
    if (top.full() && top.threshold() <= r) break;
    if (r > 2 * diagonal) break;  // everything has been scanned
  }

  KnMatchResult result;
  for (auto& e : top.TakeSorted()) {
    result.matches.push_back(Neighbor{e.item, e.score});
  }
  result.attributes_retrieved = last_points_examined_ * db_.dims();
  return result;
}

}  // namespace knmatch

#ifndef KNMATCH_BASELINES_FAGIN_H_
#define KNMATCH_BASELINES_FAGIN_H_

#include <functional>
#include <span>
#include <vector>

#include "knmatch/common/status.h"
#include "knmatch/common/types.h"
#include "knmatch/core/match_types.h"

namespace knmatch {

/// The multiple-system middleware setting of Fagin [PODS'96] and
/// Fagin-Lotem-Naor [PODS'01], which Section 3 of the paper builds its
/// cost model on: each of d systems holds a grade per object, sorted
/// descending; sorted accesses walk a list downward, random accesses
/// fetch one object's grade from one system directly.
///
/// FA and TA are correct for MONOTONE aggregation functions only. The
/// paper's key observation (its Figure 3 example) is that the n-match
/// difference is not monotone, so neither algorithm applies to
/// k-n-match — these implementations exist to reproduce that
/// demonstration and as correct baselines for monotone scoring.

/// One system's grade list: (object, grade), sorted descending by
/// grade (ties by ascending object id).
using GradeList = std::vector<std::pair<PointId, Value>>;

/// A monotone aggregation: combines one grade per system into an
/// overall grade; increasing any input must not decrease the output.
using Aggregation = std::function<Value(std::span<const Value>)>;

/// Statistics of one FA/TA run (the model's cost metrics).
struct MiddlewareStats {
  uint64_t sorted_accesses = 0;
  uint64_t random_accesses = 0;
};

/// Fagin's Algorithm: parallel sorted access until k objects have been
/// seen in *all* lists, then random accesses to complete every seen
/// object's grades; returns the k objects with the highest aggregate
/// grade (descending; ties by ascending object id).
/// `lists` must all rank the same object set.
Result<std::vector<Neighbor>> FaTopK(std::span<const GradeList> lists,
                                     const Aggregation& aggregate, size_t k,
                                     MiddlewareStats* stats = nullptr);

/// The Threshold Algorithm: sorted access in parallel with immediate
/// random-access completion of every newly seen object; halts when k
/// objects have aggregate grade >= the threshold (the aggregate of the
/// current sorted-access frontier).
Result<std::vector<Neighbor>> TaTopK(std::span<const GradeList> lists,
                                     const Aggregation& aggregate, size_t k,
                                     MiddlewareStats* stats = nullptr);

}  // namespace knmatch

#endif  // KNMATCH_BASELINES_FAGIN_H_

#ifndef KNMATCH_BASELINES_SSTREE_H_
#define KNMATCH_BASELINES_SSTREE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "knmatch/common/dataset.h"
#include "knmatch/common/status.h"
#include "knmatch/core/match_types.h"
#include "knmatch/storage/disk_simulator.h"

namespace knmatch {

/// The SS-tree [White & Jain, ICDE'96] — the paper's reference [22] and
/// the other member of the "early kNN access methods" family its
/// related work discusses: like the R-tree but with bounding *spheres*
/// (centroid + radius) instead of rectangles, inserting into the
/// subtree with the nearest centroid and splitting along the dimension
/// of highest coordinate variance.
///
/// Spheres overlap even more than rectangles as dimensionality grows,
/// so the SS-tree exhibits the same dimensionality curse — reproduced
/// alongside the R-tree in bench_rtree_curse-style comparisons.
class SsTree {
 public:
  /// An empty tree for `dims`-dimensional points; one node per page
  /// when a simulator is attached.
  explicit SsTree(size_t dims, DiskSimulator* disk = nullptr);

  /// Builds a tree over a dataset by repeated insertion.
  static SsTree Build(const Dataset& db, DiskSimulator* disk = nullptr);

  /// Inserts one point.
  void Insert(PointId pid, std::span<const Value> point);

  /// Exact k nearest neighbors (best-first on sphere mindist,
  /// Euclidean metric). Charges one page per visited node.
  Result<KnMatchResult> Knn(std::span<const Value> query, size_t k) const;

  /// Number of points stored.
  size_t size() const { return size_; }
  /// Tree height (0 when empty).
  size_t height() const { return height_; }
  /// Number of nodes.
  size_t num_nodes() const { return nodes_.size(); }
  /// Nodes visited by the most recent Knn() call.
  size_t last_nodes_visited() const { return last_nodes_visited_; }
  /// Max entries per node.
  size_t node_capacity() const { return capacity_; }

  /// Validates sphere containment and fill invariants.
  Status CheckInvariants() const;

 private:
  static constexpr uint32_t kInvalid = 0xFFFFFFFFu;

  struct Sphere {
    std::vector<Value> center;
    double radius = 0;
  };

  struct Entry {
    Sphere sphere;                  // points: radius == 0
    uint32_t child = kInvalid;      // internal only
    PointId pid = kInvalidPointId;  // leaf only
  };

  struct Node {
    bool leaf = true;
    uint32_t parent = kInvalid;
    std::vector<Entry> entries;
  };

  uint32_t NewNode(bool leaf);
  void ChargeVisit(size_t stream, uint32_t node) const;
  /// Smallest sphere centered at the entries' centroid covering all
  /// child spheres.
  Sphere BoundingSphere(const Node& node) const;
  static double Distance(std::span<const Value> a, std::span<const Value> b);
  uint32_t ChooseLeaf(std::span<const Value> point) const;
  uint32_t SplitNode(uint32_t node);
  void AdjustTree(uint32_t node, uint32_t split_sibling);

  size_t dims_;
  size_t capacity_;
  size_t min_fill_;
  DiskSimulator* disk_;
  std::vector<Node> nodes_;
  std::vector<uint64_t> page_of_;
  uint32_t root_ = kInvalid;
  size_t size_ = 0;
  size_t height_ = 0;
  mutable size_t last_nodes_visited_ = 0;
};

}  // namespace knmatch

#endif  // KNMATCH_BASELINES_SSTREE_H_

#include "knmatch/baselines/dpf.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "knmatch/common/top_k.h"
#include "knmatch/core/nmatch.h"

namespace knmatch {

Value DpfDistance(std::span<const Value> p, std::span<const Value> q,
                  size_t n, double r) {
  assert(p.size() == q.size());
  assert(n >= 1 && n <= p.size());
  assert(r > 0);
  std::vector<Value> diffs(p.size());
  for (size_t i = 0; i < p.size(); ++i) {
    diffs[i] = std::abs(p[i] - q[i]);
  }
  std::nth_element(diffs.begin(), diffs.begin() + (n - 1), diffs.end());
  Value acc = 0;
  for (size_t i = 0; i < n; ++i) {
    acc += std::pow(diffs[i], r);
  }
  return std::pow(acc, 1.0 / r);
}

Result<KnMatchResult> DpfKnn(const Dataset& db, std::span<const Value> query,
                             size_t n, size_t k, double r) {
  Status s = ValidateMatchParams(db.size(), db.dims(), query.size(), n, n, k);
  if (!s.ok()) return s;
  if (!(r > 0)) {
    return Status::InvalidArgument("DPF norm r must be positive");
  }

  BoundedTopK<PointId, Value, PointId> top(k);
  for (PointId pid = 0; pid < db.size(); ++pid) {
    top.Offer(DpfDistance(db.point(pid), query, n, r), pid, pid);
  }

  KnMatchResult result;
  for (auto& e : top.TakeSorted()) {
    result.matches.push_back(Neighbor{e.item, e.score});
  }
  result.attributes_retrieved =
      static_cast<uint64_t>(db.size()) * db.dims();
  return result;
}

}  // namespace knmatch

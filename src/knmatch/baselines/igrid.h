#ifndef KNMATCH_BASELINES_IGRID_H_
#define KNMATCH_BASELINES_IGRID_H_

#include <optional>
#include <span>
#include <vector>

#include "knmatch/common/dataset.h"
#include "knmatch/common/status.h"
#include "knmatch/core/match_types.h"
#include "knmatch/storage/paged_file.h"

namespace knmatch {

/// Options for the IGrid index.
struct IGridOptions {
  /// Equi-depth partitions per dimension; 0 selects the IGrid paper's
  /// default max(2, d/2), which makes the accessed-data fraction 2/d —
  /// the figure our paper quotes when comparing against IGrid.
  size_t partitions = 0;
  /// Disk layout of the inverted lists. The paper's critique of IGrid's
  /// "2/d of the data" analysis is that "the accessed data are
  /// fragmented and distributed all over the data set", so each page of
  /// a touched list costs a random access; that is the default (true),
  /// matching the implementation the paper measured. Set false for the
  /// idealized layout where every list is contiguous (one seek per
  /// list, then sequential) — the ablation of that critique.
  bool fragmented = true;
};

/// The IGrid ("inverted grid") index of Aggarwal & Yu [KDD 2000] — the
/// main effectiveness+efficiency competitor in the paper's Section 5.
///
/// Each dimension is partitioned into equi-depth ranges; an inverted
/// list per (dimension, range) stores the (pid, value) pairs falling in
/// it. A query touches exactly one list per dimension — the range its
/// own coordinate falls in — and accumulates, for each point sharing
/// that range, a proximity contribution `1 - |p_i - q_i| / w` where `w`
/// is the range width. Ranking is by total similarity, descending.
/// Dimensions where the point does not co-locate with the query
/// contribute nothing, which is IGrid's (static, data-independent)
/// version of partial matching; the paper's k-n-match picks the matching
/// dimensions dynamically instead.
///
/// When a DiskSimulator is supplied, the inverted lists are additionally
/// laid out on simulated disk, one list after another; each query then
/// charges one random seek plus sequential reads per touched list —
/// modelling the fragmentation cost the paper points out IGrid's
/// analysis ignored.
class IGridIndex {
 public:
  /// Builds the index over `db` (which must outlive the index).
  explicit IGridIndex(const Dataset& db, IGridOptions options = {},
                      DiskSimulator* disk = nullptr);

  /// Partitions per dimension actually used.
  size_t partitions() const { return partitions_; }

  /// Top-k by IGrid similarity. In the returned result, matches are
  /// ordered best-first and `Neighbor::distance` holds the *negated*
  /// similarity (so that, as everywhere in the library, smaller is
  /// better). `attributes_retrieved` counts the inverted-list entries
  /// read. When a disk simulator was supplied at construction, page
  /// reads are charged to it.
  Result<KnMatchResult> Search(std::span<const Value> query,
                               size_t k) const;

  /// The range index of `v` in `dim` (exposed for tests).
  size_t LocateRange(size_t dim, Value v) const;

 private:
  struct ListLocation {
    size_t first_page = 0;
    size_t num_pages = 0;
  };

  const Dataset& db_;
  bool fragmented_ = true;
  size_t partitions_;
  /// boundaries_[dim] has partitions_+1 edges; range r spans
  /// [edges[r], edges[r+1]).
  std::vector<std::vector<Value>> boundaries_;
  /// lists_[dim * partitions_ + r] = (pid, value) pairs, ascending pid.
  std::vector<std::vector<std::pair<PointId, Value>>> lists_;
  DiskSimulator* disk_ = nullptr;
  std::optional<PagedFile> file_;
  std::vector<ListLocation> list_locations_;
};

}  // namespace knmatch

#endif  // KNMATCH_BASELINES_IGRID_H_

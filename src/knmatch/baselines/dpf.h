#ifndef KNMATCH_BASELINES_DPF_H_
#define KNMATCH_BASELINES_DPF_H_

#include <span>

#include "knmatch/common/dataset.h"
#include "knmatch/common/status.h"
#include "knmatch/core/match_types.h"

namespace knmatch {

/// The Dynamic Partial Function of Goh, Li & Chang [ACM MM 2002],
/// discussed in the paper's related work: the distance between P and Q
/// is the L_r aggregate of the *n smallest* per-dimension differences
/// (dimensions chosen per pair, like n-match, but differences are
/// aggregated rather than thresholded).
Value DpfDistance(std::span<const Value> p, std::span<const Value> q,
                  size_t n, double r = 1.0);

/// Exact top-k scan under the DPF distance.
Result<KnMatchResult> DpfKnn(const Dataset& db, std::span<const Value> query,
                             size_t n, size_t k, double r = 1.0);

}  // namespace knmatch

#endif  // KNMATCH_BASELINES_DPF_H_

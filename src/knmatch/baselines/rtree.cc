#include "knmatch/baselines/rtree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <queue>

#include "knmatch/baselines/knn_scan.h"
#include "knmatch/common/top_k.h"
#include "knmatch/core/nmatch.h"

namespace knmatch {

RTree::RTree(size_t dims, DiskSimulator* disk)
    : dims_(dims), disk_(disk) {
  // One node per 4 KB page: an entry is a rectangle (2 * d values)
  // plus a child pointer / point id.
  const size_t page = disk != nullptr ? disk->config().page_size : 4096;
  const size_t entry_bytes = 2 * dims * sizeof(Value) + sizeof(uint32_t);
  capacity_ = std::max<size_t>(4, page / entry_bytes);
  min_fill_ = std::max<size_t>(2, capacity_ * 2 / 5);
}

RTree RTree::Build(const Dataset& db, DiskSimulator* disk) {
  RTree tree(db.dims(), disk);
  for (PointId pid = 0; pid < db.size(); ++pid) {
    tree.Insert(pid, db.point(pid));
  }
  return tree;
}

uint32_t RTree::NewNode(bool leaf) {
  Node node;
  node.leaf = leaf;
  nodes_.push_back(std::move(node));
  page_of_.push_back(disk_ != nullptr ? disk_->AllocatePages(1)
                                      : page_of_.size());
  return static_cast<uint32_t>(nodes_.size() - 1);
}

void RTree::ChargeVisit(size_t stream, uint32_t node) const {
  if (disk_ != nullptr) disk_->RecordRead(stream, page_of_[node]);
}

double RTree::Area(const Rect& rect) {
  double area = 1;
  for (size_t i = 0; i < rect.lo.size(); ++i) {
    area *= rect.hi[i] - rect.lo[i];
  }
  return area;
}

void RTree::Extend(Rect* rect, const Rect& add) {
  for (size_t i = 0; i < rect->lo.size(); ++i) {
    rect->lo[i] = std::min(rect->lo[i], add.lo[i]);
    rect->hi[i] = std::max(rect->hi[i], add.hi[i]);
  }
}

double RTree::Enlargement(const Rect& rect, const Rect& add) {
  Rect extended = rect;
  Extend(&extended, add);
  return Area(extended) - Area(rect);
}

bool RTree::Intersects(const Rect& a, std::span<const Value> lo,
                       std::span<const Value> hi) {
  for (size_t i = 0; i < lo.size(); ++i) {
    if (a.hi[i] < lo[i] || a.lo[i] > hi[i]) return false;
  }
  return true;
}

double RTree::MinDist(const Rect& rect, std::span<const Value> q) const {
  double sum = 0;
  for (size_t i = 0; i < dims_; ++i) {
    double diff = 0;
    if (q[i] < rect.lo[i]) {
      diff = rect.lo[i] - q[i];
    } else if (q[i] > rect.hi[i]) {
      diff = q[i] - rect.hi[i];
    }
    sum += diff * diff;
  }
  return std::sqrt(sum);
}

RTree::Rect RTree::BoundingRect(const Node& node) const {
  Rect rect = node.entries.front().rect;
  for (size_t i = 1; i < node.entries.size(); ++i) {
    Extend(&rect, node.entries[i].rect);
  }
  return rect;
}

uint32_t RTree::ChooseLeaf(const Rect& rect) const {
  uint32_t node = root_;
  while (!nodes_[node].leaf) {
    const Node& n = nodes_[node];
    double best_enlargement = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    uint32_t best_child = kInvalid;
    for (const Entry& e : n.entries) {
      const double enlargement = Enlargement(e.rect, rect);
      const double area = Area(e.rect);
      if (enlargement < best_enlargement ||
          (enlargement == best_enlargement && area < best_area)) {
        best_enlargement = enlargement;
        best_area = area;
        best_child = e.child;
      }
    }
    node = best_child;
  }
  return node;
}

uint32_t RTree::SplitNode(uint32_t node_id) {
  // Guttman's quadratic split.
  std::vector<Entry> entries = std::move(nodes_[node_id].entries);
  nodes_[node_id].entries.clear();
  const uint32_t sibling_id = NewNode(nodes_[node_id].leaf);
  nodes_[sibling_id].parent = nodes_[node_id].parent;

  // Pick seeds: the pair wasting the most area.
  size_t seed_a = 0, seed_b = 1;
  double worst_waste = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < entries.size(); ++i) {
    for (size_t j = i + 1; j < entries.size(); ++j) {
      Rect combined = entries[i].rect;
      Extend(&combined, entries[j].rect);
      const double waste = Area(combined) - Area(entries[i].rect) -
                           Area(entries[j].rect);
      if (waste > worst_waste) {
        worst_waste = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  Node& left = nodes_[node_id];
  Node& right = nodes_[sibling_id];
  Rect left_rect = entries[seed_a].rect;
  Rect right_rect = entries[seed_b].rect;
  std::vector<bool> assigned(entries.size(), false);
  left.entries.push_back(entries[seed_a]);
  right.entries.push_back(entries[seed_b]);
  assigned[seed_a] = assigned[seed_b] = true;
  size_t remaining = entries.size() - 2;

  while (remaining > 0) {
    // Honor the minimum fill: if one side must take everything left,
    // give it everything.
    if (left.entries.size() + remaining == min_fill_) {
      for (size_t i = 0; i < entries.size(); ++i) {
        if (!assigned[i]) {
          left.entries.push_back(entries[i]);
          Extend(&left_rect, entries[i].rect);
          assigned[i] = true;
        }
      }
      break;
    }
    if (right.entries.size() + remaining == min_fill_) {
      for (size_t i = 0; i < entries.size(); ++i) {
        if (!assigned[i]) {
          right.entries.push_back(entries[i]);
          Extend(&right_rect, entries[i].rect);
          assigned[i] = true;
        }
      }
      break;
    }
    // PickNext: the entry with the greatest preference difference.
    size_t pick = entries.size();
    double best_diff = -1;
    double pick_left_enl = 0, pick_right_enl = 0;
    for (size_t i = 0; i < entries.size(); ++i) {
      if (assigned[i]) continue;
      const double left_enl = Enlargement(left_rect, entries[i].rect);
      const double right_enl = Enlargement(right_rect, entries[i].rect);
      const double diff = std::abs(left_enl - right_enl);
      if (diff > best_diff) {
        best_diff = diff;
        pick = i;
        pick_left_enl = left_enl;
        pick_right_enl = right_enl;
      }
    }
    assert(pick < entries.size());
    const bool to_left =
        pick_left_enl < pick_right_enl ||
        (pick_left_enl == pick_right_enl &&
         left.entries.size() <= right.entries.size());
    if (to_left) {
      left.entries.push_back(entries[pick]);
      Extend(&left_rect, entries[pick].rect);
    } else {
      right.entries.push_back(entries[pick]);
      Extend(&right_rect, entries[pick].rect);
    }
    assigned[pick] = true;
    --remaining;
  }

  // Re-parent the sibling's children.
  if (!right.leaf) {
    for (const Entry& e : right.entries) {
      nodes_[e.child].parent = sibling_id;
    }
  }
  return sibling_id;
}

void RTree::AdjustTree(uint32_t node, uint32_t split_sibling) {
  while (true) {
    const uint32_t parent = nodes_[node].parent;
    if (parent == kInvalid) {
      if (split_sibling != kInvalid) {
        // Grow a new root.
        const uint32_t new_root = NewNode(/*leaf=*/false);
        nodes_[new_root].entries.push_back(
            Entry{BoundingRect(nodes_[node]), node, kInvalidPointId});
        nodes_[new_root].entries.push_back(
            Entry{BoundingRect(nodes_[split_sibling]), split_sibling,
                  kInvalidPointId});
        nodes_[node].parent = new_root;
        nodes_[split_sibling].parent = new_root;
        root_ = new_root;
        ++height_;
      }
      return;
    }
    // Refresh this node's MBR in the parent.
    Node& p = nodes_[parent];
    for (Entry& e : p.entries) {
      if (e.child == node) {
        e.rect = BoundingRect(nodes_[node]);
        break;
      }
    }
    if (split_sibling != kInvalid) {
      p.entries.push_back(Entry{BoundingRect(nodes_[split_sibling]),
                                split_sibling, kInvalidPointId});
      nodes_[split_sibling].parent = parent;
      if (p.entries.size() > capacity_) {
        split_sibling = SplitNode(parent);
      } else {
        split_sibling = kInvalid;
      }
    }
    node = parent;
  }
}

void RTree::Insert(PointId pid, std::span<const Value> point) {
  assert(point.size() == dims_);
  Rect rect;
  rect.lo.assign(point.begin(), point.end());
  rect.hi.assign(point.begin(), point.end());

  if (root_ == kInvalid) {
    root_ = NewNode(/*leaf=*/true);
    height_ = 1;
  }
  const uint32_t leaf = ChooseLeaf(rect);
  nodes_[leaf].entries.push_back(Entry{std::move(rect), kInvalid, pid});
  ++size_;

  uint32_t sibling = kInvalid;
  if (nodes_[leaf].entries.size() > capacity_) {
    sibling = SplitNode(leaf);
  }
  AdjustTree(leaf, sibling);
}

Result<KnMatchResult> RTree::Knn(std::span<const Value> query,
                                 size_t k) const {
  Status s = ValidateMatchParams(std::max<size_t>(size_, 1), dims_,
                                 query.size(), 1, 1, k);
  if (!s.ok()) return s;
  if (k > size_) {
    return Status::InvalidArgument("k exceeds the number of points");
  }

  const size_t stream = disk_ != nullptr ? disk_->OpenStream() : 0;
  last_nodes_visited_ = 0;

  struct QueueItem {
    double mindist;
    bool is_node;
    uint32_t node;
    PointId pid;
    double exact;  // for points
  };
  struct Greater {
    bool operator()(const QueueItem& a, const QueueItem& b) const {
      if (a.mindist != b.mindist) return a.mindist > b.mindist;
      return a.pid > b.pid;
    }
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>, Greater> queue;
  queue.push(QueueItem{0, true, root_, kInvalidPointId, 0});

  KnMatchResult result;
  while (!queue.empty() && result.matches.size() < k) {
    const QueueItem item = queue.top();
    queue.pop();
    if (!item.is_node) {
      result.matches.push_back(Neighbor{item.pid, item.exact});
      continue;
    }
    ChargeVisit(stream, item.node);
    ++last_nodes_visited_;
    const Node& n = nodes_[item.node];
    for (const Entry& e : n.entries) {
      if (n.leaf) {
        const double dist =
            MetricDistance({e.rect.lo.data(), dims_}, query,
                           Metric::kEuclidean);
        queue.push(QueueItem{dist, false, kInvalid, e.pid, dist});
      } else {
        queue.push(QueueItem{MinDist(e.rect, query), true, e.child,
                             kInvalidPointId, 0});
      }
    }
  }
  result.attributes_retrieved = last_nodes_visited_ * capacity_ * dims_;
  return result;
}

std::vector<PointId> RTree::RangeQuery(std::span<const Value> lo,
                                       std::span<const Value> hi) const {
  std::vector<PointId> result;
  if (root_ == kInvalid) return result;
  const size_t stream = disk_ != nullptr ? disk_->OpenStream() : 0;
  std::vector<uint32_t> stack = {root_};
  while (!stack.empty()) {
    const uint32_t id = stack.back();
    stack.pop_back();
    ChargeVisit(stream, id);
    const Node& n = nodes_[id];
    for (const Entry& e : n.entries) {
      if (!Intersects(e.rect, lo, hi)) continue;
      if (n.leaf) {
        result.push_back(e.pid);
      } else {
        stack.push_back(e.child);
      }
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

Status RTree::CheckInvariants() const {
  if (root_ == kInvalid) {
    return size_ == 0 ? Status::OK()
                      : Status::Internal("empty tree with points");
  }
  size_t points = 0;
  struct Frame {
    uint32_t node;
    bool is_root;
  };
  std::vector<Frame> stack = {{root_, true}};
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    const Node& n = nodes_[frame.node];
    if (n.entries.empty() && !frame.is_root) {
      return Status::Internal("empty non-root node");
    }
    if (n.entries.size() > capacity_) {
      return Status::Internal("node over capacity");
    }
    if (!frame.is_root && n.entries.size() < min_fill_ && size_ > min_fill_) {
      return Status::Internal("node under minimum fill");
    }
    for (const Entry& e : n.entries) {
      if (n.leaf) {
        ++points;
        continue;
      }
      // Child MBR must be contained and match the child's real extent.
      const Rect actual = BoundingRect(nodes_[e.child]);
      for (size_t i = 0; i < dims_; ++i) {
        if (actual.lo[i] < e.rect.lo[i] || actual.hi[i] > e.rect.hi[i]) {
          return Status::Internal("stale child MBR");
        }
      }
      if (nodes_[e.child].parent != frame.node) {
        return Status::Internal("broken parent link");
      }
      stack.push_back({e.child, false});
    }
  }
  if (points != size_) return Status::Internal("point count mismatch");
  return Status::OK();
}

}  // namespace knmatch

#include "knmatch/baselines/skyline.h"

#include <algorithm>
#include <cmath>

namespace knmatch {

namespace {

/// True iff a dominates b: a <= b in every dimension and a < b in at
/// least one.
bool Dominates(std::span<const Value> a, std::span<const Value> b) {
  bool strictly_better = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i]) strictly_better = true;
  }
  return strictly_better;
}

/// Block-nested-loop skyline over rows produced by `row(pid)`.
template <typename RowFn>
std::vector<PointId> BnlImpl(size_t count, const RowFn& row) {
  struct WindowEntry {
    PointId pid;
    std::vector<Value> values;
  };
  std::vector<WindowEntry> window;
  for (PointId pid = 0; pid < count; ++pid) {
    std::vector<Value> values = row(pid);
    const std::span<const Value> cand(values.data(), values.size());
    bool dominated = false;
    for (const auto& w : window) {
      if (Dominates({w.values.data(), w.values.size()}, cand)) {
        dominated = true;
        break;
      }
    }
    if (dominated) continue;
    // Evict window entries the candidate dominates.
    std::erase_if(window, [&](const WindowEntry& w) {
      return Dominates(cand, {w.values.data(), w.values.size()});
    });
    window.push_back(WindowEntry{pid, std::move(values)});
  }

  std::vector<PointId> result;
  result.reserve(window.size());
  for (const auto& w : window) result.push_back(w.pid);
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace

std::vector<PointId> SkylineBnl(const Dataset& db) {
  return BnlImpl(db.size(), [&](PointId pid) {
    auto p = db.point(pid);
    return std::vector<Value>(p.begin(), p.end());
  });
}

std::vector<PointId> SkylineOfDifferences(const Dataset& db,
                                          std::span<const Value> query) {
  return BnlImpl(db.size(), [&](PointId pid) {
    auto p = db.point(pid);
    std::vector<Value> diffs(p.size());
    for (size_t i = 0; i < p.size(); ++i) {
      diffs[i] = std::abs(p[i] - query[i]);
    }
    return diffs;
  });
}

}  // namespace knmatch

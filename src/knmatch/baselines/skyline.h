#ifndef KNMATCH_BASELINES_SKYLINE_H_
#define KNMATCH_BASELINES_SKYLINE_H_

#include <span>
#include <vector>

#include "knmatch/common/dataset.h"
#include "knmatch/common/types.h"

namespace knmatch {

/// Block-nested-loop skyline (all dimensions minimized): the set of
/// points not dominated by any other point. Section 2.1 of the paper
/// contrasts k-n-match with the skyline operator (Fig. 2's example:
/// skyline {A, B, C} versus 3-1-match {A, D, E}); this implementation
/// lets tests and examples reproduce that contrast.
std::vector<PointId> SkylineBnl(const Dataset& db);

/// Query-relative skyline: the skyline of the per-dimension absolute
/// differences |p_i - q_i| (all minimized).
std::vector<PointId> SkylineOfDifferences(const Dataset& db,
                                          std::span<const Value> query);

}  // namespace knmatch

#endif  // KNMATCH_BASELINES_SKYLINE_H_

#include "knmatch/baselines/fagin.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "knmatch/common/top_k.h"

namespace knmatch {

namespace {

Status ValidateLists(std::span<const GradeList> lists, size_t k) {
  if (lists.empty()) {
    return Status::InvalidArgument("need at least one grade list");
  }
  const size_t c = lists[0].size();
  if (c == 0) {
    return Status::FailedPrecondition("grade lists are empty");
  }
  if (k < 1 || k > c) {
    return Status::InvalidArgument("require 1 <= k <= number of objects");
  }
  for (const GradeList& list : lists) {
    if (list.size() != c) {
      return Status::InvalidArgument(
          "all systems must grade the same object set");
    }
    for (size_t i = 1; i < list.size(); ++i) {
      if (list[i - 1].second < list[i].second) {
        return Status::InvalidArgument(
            "grade lists must be sorted descending");
      }
    }
  }
  return Status::OK();
}

/// Random-access side of the model: grade of `pid` in each list.
class RandomAccessor {
 public:
  explicit RandomAccessor(std::span<const GradeList> lists) {
    grades_.resize(lists.size());
    for (size_t i = 0; i < lists.size(); ++i) {
      for (const auto& [pid, grade] : lists[i]) {
        grades_[i][pid] = grade;
      }
    }
  }

  Value Get(size_t list, PointId pid) const {
    return grades_[list].at(pid);
  }

 private:
  std::vector<std::unordered_map<PointId, Value>> grades_;
};

std::vector<Neighbor> TopKByAggregate(
    const std::vector<std::pair<PointId, Value>>& scored, size_t k) {
  BoundedTopK<PointId, Value, PointId> top(k);
  for (const auto& [pid, grade] : scored) {
    top.Offer(-grade, pid, pid);  // larger grade = better
  }
  std::vector<Neighbor> result;
  for (auto& e : top.TakeSorted()) {
    result.push_back(Neighbor{e.item, -e.score});
  }
  return result;
}

}  // namespace

Result<std::vector<Neighbor>> FaTopK(std::span<const GradeList> lists,
                                     const Aggregation& aggregate, size_t k,
                                     MiddlewareStats* stats) {
  Status s = ValidateLists(lists, k);
  if (!s.ok()) return s;

  const size_t d = lists.size();
  const size_t c = lists[0].size();
  MiddlewareStats local;
  RandomAccessor random(lists);

  // Phase 1: parallel sorted access until k objects seen in all lists.
  std::unordered_map<PointId, size_t> seen_in;
  size_t complete = 0;
  size_t depth = 0;
  while (complete < k && depth < c) {
    for (size_t i = 0; i < d; ++i) {
      ++local.sorted_accesses;
      const PointId pid = lists[i][depth].first;
      if (++seen_in[pid] == d) ++complete;
    }
    ++depth;
  }

  // Phase 2: complete every seen object's grades by random access.
  std::vector<std::pair<PointId, Value>> scored;
  std::vector<Value> grades(d);
  scored.reserve(seen_in.size());
  for (const auto& [pid, count] : seen_in) {
    for (size_t i = 0; i < d; ++i) {
      grades[i] = random.Get(i, pid);
    }
    // The model charges a random access per (object, list) pair that
    // sorted access did not already deliver; counting all d is the
    // conventional upper bound and does not affect the answer.
    local.random_accesses += d - count;
    scored.emplace_back(pid, aggregate(grades));
  }
  if (stats != nullptr) *stats = local;
  return TopKByAggregate(scored, k);
}

Result<std::vector<Neighbor>> TaTopK(std::span<const GradeList> lists,
                                     const Aggregation& aggregate, size_t k,
                                     MiddlewareStats* stats) {
  Status s = ValidateLists(lists, k);
  if (!s.ok()) return s;

  const size_t d = lists.size();
  const size_t c = lists[0].size();
  MiddlewareStats local;
  RandomAccessor random(lists);

  BoundedTopK<PointId, Value, PointId> top(k);
  std::unordered_set<PointId> seen;
  std::vector<Value> grades(d);
  std::vector<Value> frontier(d);

  for (size_t depth = 0; depth < c; ++depth) {
    for (size_t i = 0; i < d; ++i) {
      ++local.sorted_accesses;
      const auto& [pid, grade] = lists[i][depth];
      frontier[i] = grade;
      if (!seen.insert(pid).second) continue;
      for (size_t j = 0; j < d; ++j) {
        if (j == i) {
          grades[j] = grade;
        } else {
          ++local.random_accesses;
          grades[j] = random.Get(j, pid);
        }
      }
      top.Offer(-aggregate(grades), pid, pid);
    }
    // Threshold test: the best any unseen object can score.
    const Value threshold = aggregate(frontier);
    if (top.full() && -top.threshold() >= threshold) break;
  }

  std::vector<Neighbor> result;
  for (auto& e : top.TakeSorted()) {
    result.push_back(Neighbor{e.item, -e.score});
  }
  if (stats != nullptr) *stats = local;
  return result;
}

}  // namespace knmatch

#include "knmatch/baselines/igrid.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "knmatch/common/top_k.h"
#include "knmatch/core/nmatch.h"
#include "knmatch/core/sorted_columns.h"

namespace knmatch {

namespace {
constexpr size_t kListEntryBytes = sizeof(PointId) + sizeof(Value);
}  // namespace

IGridIndex::IGridIndex(const Dataset& db, IGridOptions options,
                       DiskSimulator* disk)
    : db_(db), fragmented_(options.fragmented), disk_(disk) {
  const size_t d = db.dims();
  const size_t c = db.size();
  partitions_ = options.partitions != 0 ? options.partitions
                                        : std::max<size_t>(2, d / 2);
  partitions_ = std::min(partitions_, c);  // at least one point per range

  // Equi-depth boundaries from each sorted dimension.
  SortedColumns sorted(db);
  boundaries_.resize(d);
  lists_.resize(d * partitions_);
  for (size_t dim = 0; dim < d; ++dim) {
    auto vals = sorted.values(dim);
    auto& edges = boundaries_[dim];
    edges.resize(partitions_ + 1);
    for (size_t r = 0; r < partitions_; ++r) {
      edges[r] = vals[r * c / partitions_];
    }
    edges[partitions_] = vals[c - 1];
    // First edge must admit the minimum even with duplicates.
    edges[0] = vals[0];
  }

  // Populate inverted lists (pid ascending — we iterate pids in order).
  for (PointId pid = 0; pid < c; ++pid) {
    auto p = db.point(pid);
    for (size_t dim = 0; dim < d; ++dim) {
      const size_t r = LocateRange(dim, p[dim]);
      lists_[dim * partitions_ + r].emplace_back(pid, p[dim]);
    }
  }

  // Optional disk layout: lists stored back to back.
  if (disk_ != nullptr) {
    file_.emplace(disk_);
    list_locations_.resize(lists_.size());
    const size_t entries_per_page = file_->payload_capacity() / kListEntryBytes;
    std::vector<std::byte> image;
    for (size_t li = 0; li < lists_.size(); ++li) {
      list_locations_[li].first_page = file_->num_pages();
      size_t in_page = 0;
      for (const auto& [pid, value] : lists_[li]) {
        PutScalar(&image, pid);
        PutScalar(&image, value);
        if (++in_page == entries_per_page) {
          file_->AppendPage(image);
          image.clear();
          in_page = 0;
        }
      }
      if (!image.empty()) {
        file_->AppendPage(image);
        image.clear();
      }
      list_locations_[li].num_pages =
          file_->num_pages() - list_locations_[li].first_page;
    }
  }
}

size_t IGridIndex::LocateRange(size_t dim, Value v) const {
  const auto& edges = boundaries_[dim];
  // upper_bound - 1: the last range whose lower edge is <= v.
  auto it = std::upper_bound(edges.begin(), edges.begin() + partitions_, v);
  if (it == edges.begin()) return 0;
  return static_cast<size_t>(it - edges.begin()) - 1;
}

Result<KnMatchResult> IGridIndex::Search(std::span<const Value> query,
                                         size_t k) const {
  Status s =
      ValidateMatchParams(db_.size(), db_.dims(), query.size(), 1, 1, k);
  if (!s.ok()) return s;

  const size_t d = db_.dims();
  std::vector<Value> similarity(db_.size(), Value{0});
  uint64_t entries_read = 0;

  for (size_t dim = 0; dim < d; ++dim) {
    const size_t r = LocateRange(dim, query[dim]);
    const size_t li = dim * partitions_ + r;
    const auto& list = lists_[li];
    const Value lo = boundaries_[dim][r];
    const Value hi = boundaries_[dim][r + 1];
    const Value width = hi - lo;

    if (disk_ != nullptr) {
      const ListLocation& loc = list_locations_[li];
      if (fragmented_) {
        // The layout the paper measured: list fragments scattered over
        // the file, every page its own seek.
        for (size_t pg = 0; pg < loc.num_pages; ++pg) {
          file_->ReadPage(disk_->OpenStream(), loc.first_page + pg);
        }
      } else {
        // Idealized contiguous layout: one seek, then sequential.
        const size_t stream = disk_->OpenStream();
        for (size_t pg = 0; pg < loc.num_pages; ++pg) {
          file_->ReadPage(stream, loc.first_page + pg);
        }
      }
    }

    for (const auto& [pid, value] : list) {
      ++entries_read;
      const Value contribution =
          width > 0
              ? std::max(Value{0}, 1 - std::abs(value - query[dim]) / width)
              : Value{1};
      similarity[pid] += contribution;
    }
  }

  // Top-k by similarity, descending; report negated similarity so that
  // smaller Neighbor::distance is better, as everywhere else.
  BoundedTopK<PointId, Value, PointId> top(k);
  for (PointId pid = 0; pid < db_.size(); ++pid) {
    top.Offer(-similarity[pid], pid, pid);
  }

  KnMatchResult result;
  for (auto& e : top.TakeSorted()) {
    result.matches.push_back(Neighbor{e.item, e.score});
  }
  result.attributes_retrieved = entries_read;
  return result;
}

}  // namespace knmatch

#ifndef KNMATCH_BASELINES_RTREE_H_
#define KNMATCH_BASELINES_RTREE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "knmatch/common/dataset.h"
#include "knmatch/common/status.h"
#include "knmatch/core/match_types.h"
#include "knmatch/storage/disk_simulator.h"

namespace knmatch {

/// A classic R-tree (Guttman insert with quadratic split) with
/// best-first exact kNN search.
///
/// This is the family of access methods (SS-tree, X-tree, ...) the
/// paper's related work cites as the early approach to kNN, noting
/// that "R-tree-like structures all suffer from the dimensionality
/// curse" and cannot index the k-n-match query at all (the matching
/// dimensions are chosen per point, so no fixed-space MBR bounds the
/// score). It is included (a) as an exact-kNN baseline, and (b) to
/// regenerate that curse: the ablation bench shows the fraction of
/// nodes a kNN visit touches approaching 100% as d grows, while the
/// AD algorithm's attribute fraction stays moderate.
class RTree {
 public:
  /// An empty tree for `dims`-dimensional points. Node capacity is
  /// derived from the disk page size (one node per page); pass a
  /// simulator to charge node visits during queries.
  explicit RTree(size_t dims, DiskSimulator* disk = nullptr);

  /// Builds a tree over a whole dataset by repeated insertion.
  static RTree Build(const Dataset& db, DiskSimulator* disk = nullptr);

  /// Inserts one point.
  void Insert(PointId pid, std::span<const Value> point);

  /// Exact k nearest neighbors by best-first (priority queue on MBR
  /// minimum distance), under the Euclidean metric. Charges one page
  /// read per visited node when a simulator is attached.
  Result<KnMatchResult> Knn(std::span<const Value> query, size_t k) const;

  /// All points inside the axis-aligned box [lo, hi] (inclusive).
  std::vector<PointId> RangeQuery(std::span<const Value> lo,
                                  std::span<const Value> hi) const;

  /// Number of points stored.
  size_t size() const { return size_; }
  /// Tree height (0 when empty, 1 for a single leaf).
  size_t height() const { return height_; }
  /// Number of nodes (== pages).
  size_t num_nodes() const { return nodes_.size(); }
  /// Nodes visited by the most recent Knn() call.
  size_t last_nodes_visited() const { return last_nodes_visited_; }
  /// Max entries per node (derived from the page size).
  size_t node_capacity() const { return capacity_; }

  /// Validates MBR containment, fill factors and entry counts.
  Status CheckInvariants() const;

 private:
  static constexpr uint32_t kInvalid = 0xFFFFFFFFu;

  /// An axis-aligned box stored as interleaved lo/hi per dimension.
  struct Rect {
    std::vector<Value> lo;
    std::vector<Value> hi;
  };

  struct Entry {
    Rect rect;          // for leaf entries lo == hi == the point
    uint32_t child = kInvalid;  // internal: node id
    PointId pid = kInvalidPointId;  // leaf: point id
  };

  struct Node {
    bool leaf = true;
    uint32_t parent = kInvalid;
    std::vector<Entry> entries;
  };

  uint32_t NewNode(bool leaf);
  void ChargeVisit(size_t stream, uint32_t node) const;
  Rect BoundingRect(const Node& node) const;
  static double Enlargement(const Rect& rect, const Rect& add);
  static double Area(const Rect& rect);
  static void Extend(Rect* rect, const Rect& add);
  static bool Intersects(const Rect& a, std::span<const Value> lo,
                         std::span<const Value> hi);
  double MinDist(const Rect& rect, std::span<const Value> q) const;

  /// Chooses the leaf whose MBR needs least enlargement.
  uint32_t ChooseLeaf(const Rect& rect) const;
  /// Quadratic split of an overflowing node; returns the new sibling.
  uint32_t SplitNode(uint32_t node);
  /// Updates MBRs upward and splits overflowing ancestors.
  void AdjustTree(uint32_t node, uint32_t split_sibling);

  size_t dims_;
  size_t capacity_;
  size_t min_fill_;
  DiskSimulator* disk_;
  std::vector<Node> nodes_;
  std::vector<uint64_t> page_of_;
  uint32_t root_ = kInvalid;
  size_t size_ = 0;
  size_t height_ = 0;
  mutable size_t last_nodes_visited_ = 0;
};

}  // namespace knmatch

#endif  // KNMATCH_BASELINES_RTREE_H_

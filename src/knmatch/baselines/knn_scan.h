#ifndef KNMATCH_BASELINES_KNN_SCAN_H_
#define KNMATCH_BASELINES_KNN_SCAN_H_

#include <span>

#include "knmatch/common/dataset.h"
#include "knmatch/common/status.h"
#include "knmatch/core/match_types.h"

namespace knmatch {

class QueryContext;

/// Distance metrics for the exact-scan kNN baseline.
enum class Metric {
  kEuclidean,   // L2
  kManhattan,   // L1
  kChebyshev,   // L-infinity — contrast to n-match (Sec. 2.1 discusses
                // why n-match is *not* a generalization of it)
  kFractional,  // L_0.5, advocated for high dimensions by [Aggarwal+ 01]
};

/// Distance between two points under `metric`.
Value MetricDistance(std::span<const Value> a, std::span<const Value> b,
                     Metric metric);

/// Exact k-nearest-neighbor search by sequential scan — the traditional
/// similarity-search model the paper argues against (fixed feature set,
/// aggregated differences). Optional `ctx` governs the query; on a trip
/// the scan stops and returns the context's typed status with the
/// points-seen-so-far top-k as the partial result in ctx->trip().
Result<KnMatchResult> KnnScan(const Dataset& db,
                              std::span<const Value> query, size_t k,
                              Metric metric = Metric::kEuclidean,
                              QueryContext* ctx = nullptr);

}  // namespace knmatch

#endif  // KNMATCH_BASELINES_KNN_SCAN_H_

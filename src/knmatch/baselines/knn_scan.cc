#include "knmatch/baselines/knn_scan.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "knmatch/common/top_k.h"
#include "knmatch/core/nmatch.h"
#include "knmatch/core/query_context.h"

namespace knmatch {

Value MetricDistance(std::span<const Value> a, std::span<const Value> b,
                     Metric metric) {
  assert(a.size() == b.size());
  Value acc = 0;
  switch (metric) {
    case Metric::kEuclidean:
      for (size_t i = 0; i < a.size(); ++i) {
        const Value diff = a[i] - b[i];
        acc += diff * diff;
      }
      return std::sqrt(acc);
    case Metric::kManhattan:
      for (size_t i = 0; i < a.size(); ++i) {
        acc += std::abs(a[i] - b[i]);
      }
      return acc;
    case Metric::kChebyshev:
      for (size_t i = 0; i < a.size(); ++i) {
        acc = std::max(acc, std::abs(a[i] - b[i]));
      }
      return acc;
    case Metric::kFractional:
      for (size_t i = 0; i < a.size(); ++i) {
        acc += std::sqrt(std::abs(a[i] - b[i]));
      }
      return acc * acc;
  }
  return acc;
}

Result<KnMatchResult> KnnScan(const Dataset& db,
                              std::span<const Value> query, size_t k,
                              Metric metric, QueryContext* ctx) {
  Status s = ValidateMatchParams(db.size(), db.dims(), query.size(), 1, 1, k);
  if (!s.ok()) return s;

  const bool governed = ctx != nullptr && ctx->governed();
  if (governed) ctx->ArmPages(nullptr);
  BoundedTopK<PointId, Value, PointId> top(k);
  PointId seen = 0;
  for (PointId pid = 0; pid < db.size(); ++pid) {
    top.Offer(MetricDistance(db.point(pid), query, metric), pid, pid);
    ++seen;
    if (governed && seen % internal::kGovernanceStride == 0 &&
        !ctx->Recheck(static_cast<uint64_t>(seen) * db.dims(), 0)) {
      break;
    }
  }
  if (governed && ctx->tripped()) {
    ctx->trip().attributes_retrieved =
        static_cast<uint64_t>(seen) * db.dims();
    std::vector<std::vector<Neighbor>> partial(1);
    for (auto& e : top.TakeSorted()) {
      partial[0].push_back(Neighbor{e.item, e.score});
    }
    ctx->StorePartialSets(&partial);
    return ctx->trip_status();
  }

  KnMatchResult result;
  for (auto& e : top.TakeSorted()) {
    result.matches.push_back(Neighbor{e.item, e.score});
  }
  result.attributes_retrieved =
      static_cast<uint64_t>(db.size()) * db.dims();
  return result;
}

}  // namespace knmatch

#include "knmatch/baselines/sstree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <queue>

#include "knmatch/core/nmatch.h"

namespace knmatch {

SsTree::SsTree(size_t dims, DiskSimulator* disk)
    : dims_(dims), disk_(disk) {
  const size_t page = disk != nullptr ? disk->config().page_size : 4096;
  // An entry is a center (d values), a radius and a child/pid.
  const size_t entry_bytes =
      dims * sizeof(Value) + sizeof(double) + sizeof(uint32_t);
  capacity_ = std::max<size_t>(4, page / entry_bytes);
  min_fill_ = std::max<size_t>(2, capacity_ * 2 / 5);
}

SsTree SsTree::Build(const Dataset& db, DiskSimulator* disk) {
  SsTree tree(db.dims(), disk);
  for (PointId pid = 0; pid < db.size(); ++pid) {
    tree.Insert(pid, db.point(pid));
  }
  return tree;
}

uint32_t SsTree::NewNode(bool leaf) {
  Node node;
  node.leaf = leaf;
  nodes_.push_back(std::move(node));
  page_of_.push_back(disk_ != nullptr ? disk_->AllocatePages(1)
                                      : page_of_.size());
  return static_cast<uint32_t>(nodes_.size() - 1);
}

void SsTree::ChargeVisit(size_t stream, uint32_t node) const {
  if (disk_ != nullptr) disk_->RecordRead(stream, page_of_[node]);
}

double SsTree::Distance(std::span<const Value> a,
                        std::span<const Value> b) {
  double sum = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    sum += diff * diff;
  }
  return std::sqrt(sum);
}

SsTree::Sphere SsTree::BoundingSphere(const Node& node) const {
  Sphere sphere;
  sphere.center.assign(dims_, 0);
  for (const Entry& e : node.entries) {
    for (size_t i = 0; i < dims_; ++i) {
      sphere.center[i] += e.sphere.center[i];
    }
  }
  for (size_t i = 0; i < dims_; ++i) {
    sphere.center[i] /= static_cast<double>(node.entries.size());
  }
  for (const Entry& e : node.entries) {
    sphere.radius =
        std::max(sphere.radius,
                 Distance(sphere.center, e.sphere.center) + e.sphere.radius);
  }
  return sphere;
}

uint32_t SsTree::ChooseLeaf(std::span<const Value> point) const {
  uint32_t node = root_;
  while (!nodes_[node].leaf) {
    const Node& n = nodes_[node];
    double best = std::numeric_limits<double>::infinity();
    uint32_t best_child = kInvalid;
    for (const Entry& e : n.entries) {
      const double dist = Distance(e.sphere.center, point);
      if (dist < best) {
        best = dist;
        best_child = e.child;
      }
    }
    node = best_child;
  }
  return node;
}

uint32_t SsTree::SplitNode(uint32_t node_id) {
  // SS-tree split: along the coordinate with maximal variance of the
  // entry centers, partitioning at the median.
  std::vector<Entry> entries = std::move(nodes_[node_id].entries);
  nodes_[node_id].entries.clear();
  const uint32_t sibling_id = NewNode(nodes_[node_id].leaf);
  nodes_[sibling_id].parent = nodes_[node_id].parent;

  size_t split_dim = 0;
  double best_variance = -1;
  for (size_t dim = 0; dim < dims_; ++dim) {
    double mean = 0;
    for (const Entry& e : entries) mean += e.sphere.center[dim];
    mean /= static_cast<double>(entries.size());
    double variance = 0;
    for (const Entry& e : entries) {
      const double diff = e.sphere.center[dim] - mean;
      variance += diff * diff;
    }
    if (variance > best_variance) {
      best_variance = variance;
      split_dim = dim;
    }
  }

  std::sort(entries.begin(), entries.end(),
            [split_dim](const Entry& a, const Entry& b) {
              return a.sphere.center[split_dim] <
                     b.sphere.center[split_dim];
            });
  const size_t mid =
      std::clamp(entries.size() / 2, min_fill_, entries.size() - min_fill_);

  Node& left = nodes_[node_id];
  Node& right = nodes_[sibling_id];
  left.entries.assign(entries.begin(), entries.begin() + mid);
  right.entries.assign(entries.begin() + mid, entries.end());
  if (!right.leaf) {
    for (const Entry& e : right.entries) {
      nodes_[e.child].parent = sibling_id;
    }
  }
  return sibling_id;
}

void SsTree::AdjustTree(uint32_t node, uint32_t split_sibling) {
  while (true) {
    const uint32_t parent = nodes_[node].parent;
    if (parent == kInvalid) {
      if (split_sibling != kInvalid) {
        const uint32_t new_root = NewNode(/*leaf=*/false);
        nodes_[new_root].entries.push_back(
            Entry{BoundingSphere(nodes_[node]), node, kInvalidPointId});
        nodes_[new_root].entries.push_back(
            Entry{BoundingSphere(nodes_[split_sibling]), split_sibling,
                  kInvalidPointId});
        nodes_[node].parent = new_root;
        nodes_[split_sibling].parent = new_root;
        root_ = new_root;
        ++height_;
      }
      return;
    }
    Node& p = nodes_[parent];
    for (Entry& e : p.entries) {
      if (e.child == node) {
        e.sphere = BoundingSphere(nodes_[node]);
        break;
      }
    }
    if (split_sibling != kInvalid) {
      p.entries.push_back(Entry{BoundingSphere(nodes_[split_sibling]),
                                split_sibling, kInvalidPointId});
      nodes_[split_sibling].parent = parent;
      if (p.entries.size() > capacity_) {
        split_sibling = SplitNode(parent);
      } else {
        split_sibling = kInvalid;
      }
    }
    node = parent;
  }
}

void SsTree::Insert(PointId pid, std::span<const Value> point) {
  assert(point.size() == dims_);
  if (root_ == kInvalid) {
    root_ = NewNode(/*leaf=*/true);
    height_ = 1;
  }
  const uint32_t leaf = ChooseLeaf(point);
  Entry entry;
  entry.sphere.center.assign(point.begin(), point.end());
  entry.sphere.radius = 0;
  entry.pid = pid;
  nodes_[leaf].entries.push_back(std::move(entry));
  ++size_;

  uint32_t sibling = kInvalid;
  if (nodes_[leaf].entries.size() > capacity_) {
    sibling = SplitNode(leaf);
  }
  AdjustTree(leaf, sibling);
}

Result<KnMatchResult> SsTree::Knn(std::span<const Value> query,
                                  size_t k) const {
  Status s = ValidateMatchParams(std::max<size_t>(size_, 1), dims_,
                                 query.size(), 1, 1, k);
  if (!s.ok()) return s;
  if (k > size_) {
    return Status::InvalidArgument("k exceeds the number of points");
  }

  const size_t stream = disk_ != nullptr ? disk_->OpenStream() : 0;
  last_nodes_visited_ = 0;

  struct QueueItem {
    double mindist;
    bool is_node;
    uint32_t node;
    PointId pid;
  };
  struct Greater {
    bool operator()(const QueueItem& a, const QueueItem& b) const {
      if (a.mindist != b.mindist) return a.mindist > b.mindist;
      return a.pid > b.pid;
    }
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>, Greater> queue;
  queue.push(QueueItem{0, true, root_, kInvalidPointId});

  KnMatchResult result;
  while (!queue.empty() && result.matches.size() < k) {
    const QueueItem item = queue.top();
    queue.pop();
    if (!item.is_node) {
      result.matches.push_back(Neighbor{item.pid, item.mindist});
      continue;
    }
    ChargeVisit(stream, item.node);
    ++last_nodes_visited_;
    const Node& n = nodes_[item.node];
    for (const Entry& e : n.entries) {
      const double center_dist = Distance(e.sphere.center, query);
      if (n.leaf) {
        queue.push(QueueItem{center_dist, false, kInvalid, e.pid});
      } else {
        queue.push(QueueItem{std::max(0.0, center_dist - e.sphere.radius),
                             true, e.child, kInvalidPointId});
      }
    }
  }
  result.attributes_retrieved = last_nodes_visited_ * capacity_ * dims_;
  return result;
}

Status SsTree::CheckInvariants() const {
  if (root_ == kInvalid) {
    return size_ == 0 ? Status::OK()
                      : Status::Internal("empty tree with points");
  }
  size_t points = 0;
  struct Frame {
    uint32_t node;
    bool is_root;
  };
  std::vector<Frame> stack = {{root_, true}};
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    const Node& n = nodes_[frame.node];
    if (n.entries.empty() && !frame.is_root) {
      return Status::Internal("empty non-root node");
    }
    if (n.entries.size() > capacity_) {
      return Status::Internal("node over capacity");
    }
    for (const Entry& e : n.entries) {
      if (n.leaf) {
        ++points;
        continue;
      }
      // The recorded sphere must cover the child's true extent.
      const Sphere actual = BoundingSphere(nodes_[e.child]);
      const double offset = Distance(actual.center, e.sphere.center);
      if (offset + actual.radius > e.sphere.radius + 1e-9) {
        return Status::Internal("stale child sphere");
      }
      if (nodes_[e.child].parent != frame.node) {
        return Status::Internal("broken parent link");
      }
      stack.push_back({e.child, false});
    }
  }
  if (points != size_) return Status::Internal("point count mismatch");
  return Status::OK();
}

}  // namespace knmatch

#ifndef KNMATCH_BASELINES_IDISTANCE_H_
#define KNMATCH_BASELINES_IDISTANCE_H_

#include <span>
#include <vector>

#include "knmatch/common/dataset.h"
#include "knmatch/common/status.h"
#include "knmatch/core/match_types.h"
#include "knmatch/storage/bplus_tree.h"

namespace knmatch {

/// iDistance [Ooi, Yu, Tan et al.] — the one-dimensional-transform kNN
/// index from the same group as the paper: every point is keyed by
/// `partition * C + distance(point, reference_partition)` and stored in
/// a single B+-tree; a kNN query grows a search radius, scanning the
/// key intervals each partition's shell maps to, until the k-th best
/// exact distance falls inside the radius.
///
/// Included as a further exact-kNN baseline on top of this
/// repository's B+-tree substrate: unlike the R-tree it degrades
/// gracefully with dimensionality (one-dimensional keys never
/// "curse"), which makes the contrast in bench_rtree_curse sharper.
/// Like every kNN method it still aggregates all d differences, so it
/// inherits the effectiveness problems the paper's matching model
/// addresses.
class IDistanceIndex {
 public:
  struct Options {
    /// Number of reference points (k-means centers).
    size_t partitions = 32;
    /// Lloyd iterations for picking the references.
    size_t kmeans_iterations = 8;
    /// Search-radius increment per round, as a fraction of the space
    /// diagonal.
    double radius_step = 0.02;
  };

  /// Builds the index over `db` (must outlive the index). Pass a
  /// simulator to charge the B+-tree's page I/O during queries.
  IDistanceIndex(const Dataset& db, DiskSimulator* disk, Options options);
  IDistanceIndex(const Dataset& db, DiskSimulator* disk)
      : IDistanceIndex(db, disk, Options{}) {}

  /// Exact k nearest neighbors under the Euclidean metric.
  Result<KnMatchResult> Knn(std::span<const Value> query, size_t k) const;

  /// Partitions actually used (empty ones are dropped).
  size_t num_partitions() const { return centers_.rows(); }
  /// Candidate points whose exact distance the last Knn() computed.
  uint64_t last_points_examined() const { return last_points_examined_; }

 private:
  Value KeyOf(uint32_t partition, double dist) const;

  const Dataset& db_;
  Options options_;
  Matrix centers_;
  std::vector<double> partition_radius_;  // max dist to center, per part.
  double c_stride_;                       // the constant C
  BPlusTree tree_;
  mutable uint64_t last_points_examined_ = 0;
};

}  // namespace knmatch

#endif  // KNMATCH_BASELINES_IDISTANCE_H_

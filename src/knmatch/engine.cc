#include "knmatch/engine.h"

#include <atomic>
#include <utility>
#include <vector>

#include "knmatch/cache/btree_bridge.h"
#include "knmatch/core/nmatch.h"
#include "knmatch/core/nmatch_join.h"
#include "knmatch/diskalgo/btree_ad.h"
#include "knmatch/eval/selectivity.h"
#include "knmatch/obs/catalog.h"
#include "knmatch/obs/trace.h"
#include "knmatch/storage/ingest.h"

namespace knmatch {

namespace {

obs::Counter* MethodCounter(SimilarityEngine::DiskMethod m) {
  switch (m) {
    case SimilarityEngine::DiskMethod::kScan:
      return obs::Cat().disk_method_scan;
    case SimilarityEngine::DiskMethod::kAd:
      return obs::Cat().disk_method_ad;
    case SimilarityEngine::DiskMethod::kVaFile:
      return obs::Cat().disk_method_va;
    case SimilarityEngine::DiskMethod::kMemoryAd:
      return obs::Cat().disk_method_memory;
    case SimilarityEngine::DiskMethod::kAuto:
      break;  // never the method that answered
  }
  return nullptr;
}

obs::Counter* FallbackCounter(SimilarityEngine::DiskMethod m) {
  switch (m) {
    case SimilarityEngine::DiskMethod::kScan:
      return obs::Cat().fallback_from_scan;
    case SimilarityEngine::DiskMethod::kAd:
      return obs::Cat().fallback_from_ad;
    case SimilarityEngine::DiskMethod::kVaFile:
      return obs::Cat().fallback_from_va;
    case SimilarityEngine::DiskMethod::kMemoryAd:
    case SimilarityEngine::DiskMethod::kAuto:
      break;  // the terminal method never falls back; kAuto never runs
  }
  return nullptr;
}

obs::Gauge* BreakerGauge(SimilarityEngine::DiskMethod m) {
  switch (m) {
    case SimilarityEngine::DiskMethod::kScan:
      return obs::Cat().breaker_state_scan;
    case SimilarityEngine::DiskMethod::kAd:
      return obs::Cat().breaker_state_ad;
    case SimilarityEngine::DiskMethod::kVaFile:
      return obs::Cat().breaker_state_va;
    case SimilarityEngine::DiskMethod::kMemoryAd:
    case SimilarityEngine::DiskMethod::kAuto:
      break;  // no breaker guards these
  }
  return nullptr;
}

}  // namespace

SimilarityEngine::SimilarityEngine(Dataset db, DiskConfig config)
    : db_(std::move(db)), config_(config) {
  cache_epoch_ = cache::NextResultEpoch();
  ResetOnceFlags();
}

void SimilarityEngine::EnableCache(cache::CacheConfig config) {
  cache_ = std::make_unique<cache::QueryResultCache>(config);
}

void SimilarityEngine::DisableCache() { cache_.reset(); }

SimilarityEngine::~SimilarityEngine() = default;

void SimilarityEngine::ResetOnceFlags() {
  ad_once_ = std::make_unique<std::once_flag>();
  igrid_once_ = std::make_unique<std::once_flag>();
  disk_once_ = std::make_unique<std::once_flag>();
  advisor_once_ = std::make_unique<std::once_flag>();
  estimator_once_ = std::make_unique<std::once_flag>();
}

void SimilarityEngine::EnsureAd() const {
  std::call_once(*ad_once_,
                 [this] { ad_ = std::make_unique<AdSearcher>(db_); });
}

void SimilarityEngine::EnsureIGrid() const {
  std::call_once(*igrid_once_,
                 [this] { igrid_ = std::make_unique<IGridIndex>(db_); });
}

void SimilarityEngine::EnsureDiskStores() const {
  std::call_once(*disk_once_, [this] {
    disk_ = std::make_unique<DiskSimulator>(config_);
    // The stores are built before the injector attaches: construction
    // writes pages, and the fault model covers reads only.
    rows_ = std::make_unique<RowStore>(db_, disk_.get());
    columns_ = std::make_unique<ColumnStore>(db_, disk_.get());
    va_ = std::make_unique<VaFile>(db_, disk_.get(), 8);
    disk_->set_fault_injector(injector_);
  });
}

void SimilarityEngine::EnsureAdvisor() const {
  std::call_once(*advisor_once_, [this] {
    advisor_ = std::make_unique<eval::QueryAdvisor>(db_, config_);
  });
}

void SimilarityEngine::EnsureEstimator() const {
  std::call_once(*estimator_once_, [this] {
    estimator_ = std::make_unique<eval::SelectivityEstimator>(db_);
  });
}

exec::BatchExecutor& SimilarityEngine::AcquireExecutor(
    const exec::BatchOptions& options) const {
  const size_t resolved =
      exec::ResolveThreads(options.threads, options.allow_oversubscription);
  if (executor_ == nullptr || executor_->threads() != resolved) {
    // `resolved` is final — re-resolving in the constructor must not
    // clamp an explicitly allowed oversubscribed count.
    executor_ = std::make_unique<exec::BatchExecutor>(
        resolved, /*allow_oversubscription=*/true);
  }
  return *executor_;
}

Result<KnMatchResult> SimilarityEngine::KnMatch(
    std::span<const Value> query, size_t n, size_t k,
    std::span<const Value> weights, QueryContext* ctx) const {
  EnsureAd();
  auto r = cache::CachedKnMatch(CacheHandle(), *ad_, query, n, k, weights,
                                nullptr, ctx);
  if (ctx != nullptr) ctx->ObserveDeadlineFraction();
  return r;
}

Result<FrequentKnMatchResult> SimilarityEngine::FrequentKnMatch(
    std::span<const Value> query, size_t n0, size_t n1, size_t k,
    std::span<const Value> weights, QueryContext* ctx) const {
  EnsureAd();
  auto r = cache::CachedFrequentKnMatch(CacheHandle(), *ad_, query, n0, n1,
                                        k, weights, nullptr, ctx);
  if (ctx != nullptr) ctx->ObserveDeadlineFraction();
  return r;
}

Result<KnMatchResult> SimilarityEngine::Knn(std::span<const Value> query,
                                            size_t k, Metric metric,
                                            QueryContext* ctx) const {
  auto r = cache::CachedKnn(CacheHandle(), db_, query, k, metric, ctx);
  if (ctx != nullptr) ctx->ObserveDeadlineFraction();
  return r;
}

Result<exec::KnMatchBatchResult> SimilarityEngine::KnMatchBatch(
    const exec::BatchRequest& request, size_t n, size_t k,
    std::span<const Value> weights) const {
  EnsureAd();
  std::scoped_lock lock(exec_mu_);
  return AcquireExecutor(request.options)
      .KnMatch(*ad_, request, n, k, weights, CacheHandle());
}

Result<exec::FrequentKnMatchBatchResult>
SimilarityEngine::FrequentKnMatchBatch(const exec::BatchRequest& request,
                                       size_t n0, size_t n1, size_t k,
                                       std::span<const Value> weights) const {
  EnsureAd();
  std::scoped_lock lock(exec_mu_);
  return AcquireExecutor(request.options)
      .FrequentKnMatch(*ad_, request, n0, n1, k, weights, CacheHandle());
}

Result<exec::KnMatchBatchResult> SimilarityEngine::KnnBatch(
    const exec::BatchRequest& request, size_t k, Metric metric) const {
  std::scoped_lock lock(exec_mu_);
  return AcquireExecutor(request.options)
      .Knn(db_, request, k, metric, CacheHandle());
}

Result<KnMatchResult> SimilarityEngine::IGridSearch(
    std::span<const Value> query, size_t k) const {
  EnsureIGrid();
  return igrid_->Search(query, k);
}

Result<std::vector<JoinPair>> SimilarityEngine::SelfJoin(
    size_t n, Value epsilon) const {
  return NMatchSelfJoin(db_, n, epsilon);
}

Result<SimilarityEngine::SelectivityEstimate>
SimilarityEngine::EstimateSelectivity(std::span<const Value> query,
                                      size_t n, size_t k) const {
  Status s =
      ValidateMatchParams(db_.size(), db_.dims(), query.size(), n, n, k);
  if (!s.ok()) return s;
  EnsureEstimator();
  SelectivityEstimate estimate;
  estimate.estimated_difference =
      estimator_->EstimateKnMatchDifference(query, n, k);
  estimate.ad_attribute_fraction =
      estimator_->EstimateAdAttributeFraction(query, n, k);
  return estimate;
}

PointId SimilarityEngine::InsertPoint(std::span<const Value> coords,
                                      Label label) {
  const PointId pid = db_.Append(coords, label);
  // Precise cache invalidation: evict only the entries the new point
  // could enter; everything else stays warm across the index rebuilds.
  if (cache_ != nullptr) cache_->OnPointInserted(pid, coords);
  // Invalidate every derived structure; each rebuilds on next use.
  // InsertPoint requires exclusive access to the engine, so re-arming
  // the call_once flags here is race-free. The batch executor survives:
  // its scratch arenas adapt to any dataset shape per query.
  ad_.reset();
  igrid_.reset();
  disk_.reset();
  rows_.reset();
  columns_.reset();
  va_.reset();
  advisor_.reset();
  estimator_.reset();
  ResetOnceFlags();
  return pid;
}

Status SimilarityEngine::BeginIngest(IngestConfig config) {
  if (live_ != nullptr) {
    return Status::FailedPrecondition(
        "an ingest session is already active; EndIngest() first");
  }
  if (db_.dims() == 0) {
    return Status::FailedPrecondition(
        "cannot ingest into an empty dataset (dimensionality unknown)");
  }
  live_disk_ = std::make_unique<DiskSimulator>(config_);
  LiveColumnIndex::Config live_config;
  live_config.group_commit_window = config.group_commit_window;
  auto live =
      std::make_unique<LiveColumnIndex>(db_, live_disk_.get(), live_config);
  live->set_fault_injector(injector_);
  if (cache_ != nullptr) {
    // Per-tree listeners translate entry mutations into precise cache
    // invalidations. The trees buffer notifications until commit
    // durability, so the cache never evicts for a transaction a crash
    // could still discard.
    live_bridge_ = std::make_unique<cache::BTreeCacheBridge>(cache_.get(),
                                                             db_.dims());
    for (size_t dim = 0; dim < db_.dims(); ++dim) {
      live->tree(dim).set_mutation_listener(live_bridge_->ListenerFor(dim));
    }
  }
  live_ = std::move(live);
  next_ingest_pid_ = static_cast<PointId>(db_.size());
  return Status::OK();
}

Status SimilarityEngine::BeginIngest() { return BeginIngest(IngestConfig()); }

Result<PointId> SimilarityEngine::IngestPoint(std::span<const Value> coords) {
  if (live_ == nullptr) {
    return Status::FailedPrecondition("no ingest session; BeginIngest() first");
  }
  const PointId pid = next_ingest_pid_;
  Status s = live_->Insert(pid, coords);
  if (!s.ok()) return s;
  ++next_ingest_pid_;
  return pid;
}

Result<bool> SimilarityEngine::ErasePoint(PointId pid) {
  if (live_ == nullptr) {
    return Status::FailedPrecondition("no ingest session; BeginIngest() first");
  }
  return live_->Erase(pid);
}

Status SimilarityEngine::FlushIngest() {
  if (live_ == nullptr) {
    return Status::FailedPrecondition("no ingest session; BeginIngest() first");
  }
  return live_->Flush();
}

Status SimilarityEngine::Checkpoint() {
  if (live_ == nullptr) {
    return Status::FailedPrecondition("no ingest session; BeginIngest() first");
  }
  return live_->Checkpoint();
}

Status SimilarityEngine::Recover() {
  if (live_ == nullptr) {
    return Status::FailedPrecondition("no ingest session; BeginIngest() first");
  }
  Status s = live_->Recover();
  // Entries cached before the crash may reflect transactions recovery
  // discarded (volatile WAL tail); a fresh epoch makes every one of
  // them unreachable, whatever recovery concluded.
  cache_epoch_ = cache::NextResultEpoch();
  return s;
}

Status SimilarityEngine::EndIngest() {
  if (live_ == nullptr) {
    return Status::FailedPrecondition("no ingest session; BeginIngest() first");
  }
  Status s = live_->Flush();
  if (!s.ok()) return s;
  s = live_->Checkpoint();
  if (!s.ok()) return s;

  // Materialize the committed live rows into a fresh dataset, ids
  // remapped to 0..n-1 in ascending live-id order. Labels are dropped:
  // after erases and inserts there is no per-row label assignment that
  // is both total and faithful to the base labelling.
  Dataset next;
  next.set_name(db_.name());
  for (const PointId pid : live_->LivePids()) {
    auto coords = live_->CoordsOf(pid);
    if (!coords.ok()) return coords.status();
    next.Append(coords.value());
  }
  db_ = std::move(next);

  live_.reset();
  live_bridge_.reset();
  live_disk_.reset();

  // The id space changed wholesale, so precise invalidation cannot
  // help: a fresh epoch strands every cached entry, and every derived
  // structure rebuilds on next use.
  cache_epoch_ = cache::NextResultEpoch();
  ad_.reset();
  igrid_.reset();
  disk_.reset();
  rows_.reset();
  columns_.reset();
  va_.reset();
  advisor_.reset();
  estimator_.reset();
  ResetOnceFlags();
  return Status::OK();
}

Result<KnMatchResult> SimilarityEngine::LiveKnMatch(
    std::span<const Value> query, size_t n, size_t k,
    QueryContext* ctx) const {
  if (live_ == nullptr) {
    return Status::FailedPrecondition("no ingest session; BeginIngest() first");
  }
  const auto snap = live_->PinSnapshot();
  SnapshotColumns columns(snap->trees, snap->pid_bound);
  auto r = SnapshotAdSearcher(columns).KnMatch(query, n, k, ctx);
  if (ctx != nullptr) ctx->ObserveDeadlineFraction();
  return r;
}

Result<FrequentKnMatchResult> SimilarityEngine::LiveFrequentKnMatch(
    std::span<const Value> query, size_t n0, size_t n1, size_t k,
    QueryContext* ctx) const {
  if (live_ == nullptr) {
    return Status::FailedPrecondition("no ingest session; BeginIngest() first");
  }
  const auto snap = live_->PinSnapshot();
  SnapshotColumns columns(snap->trees, snap->pid_bound);
  auto r = SnapshotAdSearcher(columns).FrequentKnMatch(query, n0, n1, k, ctx);
  if (ctx != nullptr) ctx->ObserveDeadlineFraction();
  return r;
}

void SimilarityEngine::SetFaultInjector(FaultInjector* injector) {
  injector_ = injector;
  if (disk_ != nullptr) disk_->set_fault_injector(injector_);
  if (live_ != nullptr) live_->set_fault_injector(injector_);
}

void SimilarityEngine::ClearFaults() {
  if (injector_ != nullptr) injector_->Clear();
  if (disk_ != nullptr) disk_->ClearQuarantine();
}

DiskSimulator* SimilarityEngine::disk_simulator() const {
  EnsureDiskStores();
  return disk_.get();
}

exec::CircuitBreaker* SimilarityEngine::breaker(DiskMethod method) const {
  switch (method) {
    case DiskMethod::kScan:
      return &breaker_scan_;
    case DiskMethod::kAd:
      return &breaker_ad_;
    case DiskMethod::kVaFile:
      return &breaker_va_;
    case DiskMethod::kMemoryAd:
    case DiskMethod::kAuto:
      break;
  }
  return nullptr;
}

const exec::CircuitBreaker* SimilarityEngine::circuit_breaker(
    DiskMethod method) const {
  return breaker(method);
}

Result<FrequentKnMatchResult> SimilarityEngine::RunDiskMethod(
    DiskMethod method, std::span<const Value> query, size_t n0, size_t n1,
    size_t k, QueryContext* ctx) const {
  switch (method) {
    case DiskMethod::kScan:
      return DiskScan(*rows_).FrequentKnMatch(query, n0, n1, k, ctx);
    case DiskMethod::kAd:
      return DiskAdSearcher(*columns_).FrequentKnMatch(query, n0, n1, k,
                                                       ctx);
    case DiskMethod::kVaFile: {
      auto va = VaKnMatchSearcher(*va_, *rows_).FrequentKnMatch(query, n0,
                                                                n1, k, ctx);
      if (!va.ok()) return va.status();
      return std::move(va).value().base;
    }
    case DiskMethod::kMemoryAd:
      EnsureAd();
      return ad_->FrequentKnMatch(query, n0, n1, k, {}, nullptr, ctx);
    case DiskMethod::kAuto:
      break;  // resolved by the caller
  }
  return Status::Internal("no disk method ran");
}

Result<FrequentKnMatchResult> SimilarityEngine::DiskFrequentKnMatch(
    std::span<const Value> query, size_t n0, size_t n1, size_t k,
    DiskMethod method, QueryContext* ctx) const {
  EnsureDiskStores();
  last_disk_fallback_.clear();

  const bool auto_routed = method == DiskMethod::kAuto;
  if (auto_routed) {
    EnsureAdvisor();
    auto estimate = advisor_->Estimate(query, n0, n1, k);
    if (!estimate.ok()) return estimate.status();
    switch (estimate.value().best) {
      case eval::SearchMethod::kSequentialScan:
        method = DiskMethod::kScan;
        break;
      case eval::SearchMethod::kDiskAd:
        method = DiskMethod::kAd;
        break;
      case eval::SearchMethod::kVaFile:
        method = DiskMethod::kVaFile;
        break;
    }
  }

  // The advisor's pick, then — for auto-routed queries only — the
  // degradation chain: cheapest-first among what remains, ending at the
  // in-memory AD, which needs no disk and so always answers.
  std::vector<DiskMethod> plan = {method};
  if (auto_routed) {
    for (DiskMethod fb : {DiskMethod::kAd, DiskMethod::kVaFile,
                          DiskMethod::kScan, DiskMethod::kMemoryAd}) {
      if (fb != method) plan.push_back(fb);
    }
  }

  Result<FrequentKnMatchResult> result =
      Status::Internal("no disk method ran");
  last_disk_cost_ = eval::MeasureQuery(disk_.get(), [&] {
    for (const DiskMethod attempt : plan) {
      exec::CircuitBreaker* brk = auto_routed ? breaker(attempt) : nullptr;
      if (brk != nullptr) {
        const bool admitted = brk->Allow();
        if (obs::Gauge* g = BreakerGauge(attempt)) {
          g->Set(static_cast<int64_t>(brk->state()));
        }
        if (!admitted) {
          // Breaker open: don't touch a backend that has been tripping;
          // the next method in the chain answers instead. Skipped, not
          // attempted, so no fallback step is recorded.
          obs::Cat().breaker_skipped->Add();
          continue;
        }
      }
      result = RunDiskMethod(attempt, query, n0, n1, k, ctx);
      last_disk_method_ = attempt;
      if (brk != nullptr) {
        // A governance trip counts as a breaker failure: the method
        // consumed a whole deadline/budget without answering, which is
        // exactly the overload signal the breaker sheds.
        if (result.ok()) {
          brk->RecordSuccess();
        } else {
          brk->RecordFailure();
        }
        if (obs::Gauge* g = BreakerGauge(attempt)) {
          g->Set(static_cast<int64_t>(brk->state()));
        }
      }
      if (result.ok()) return;
      // A governance trip never degrades: the query is out of deadline
      // or budget, and rerunning it on a (often costlier) fallback
      // would amplify exactly the load the trip shed. Surface the trip.
      if (ctx != nullptr && ctx->tripped()) return;
      const StatusCode code = result.status().code();
      // Only availability errors degrade; anything else (bad
      // parameters, internal bugs) surfaces immediately.
      if (code != StatusCode::kDataLoss && code != StatusCode::kUnavailable) {
        return;
      }
      // Only auto-routed queries degrade, so only they record fallback
      // steps; an explicit method's failure is the final answer.
      if (auto_routed) {
        last_disk_fallback_.push_back(
            DiskFallbackStep{attempt, result.status()});
        if (obs::Counter* c = FallbackCounter(attempt)) c->Add();
      }
    }
  });

  obs::Cat().queries_disk->Add();
  obs::Cat().latency_disk->ObserveSeconds(last_disk_cost_.cpu_seconds +
                                          last_disk_cost_.io_seconds);
  if (result.ok()) {
    if (obs::Counter* c = MethodCounter(last_disk_method_)) c->Add();
  }
  if (obs::QueryTrace* trace = obs::CurrentTrace()) {
    trace->AddPhaseSeconds(obs::Phase::kDiskIo,
                           last_disk_cost_.io_seconds);
    trace->counters().fallbacks += last_disk_fallback_.size();
  }
  if (ctx != nullptr) ctx->ObserveDeadlineFraction();
  return result;
}

SimilarityEngine::StorageStats SimilarityEngine::DiskStorageStats() const {
  EnsureDiskStores();
  StorageStats stats;
  stats.row_pages = rows_->num_pages();
  stats.column_pages = columns_->num_pages();
  stats.va_pages = va_->num_pages();
  obs::Cat().storage_row_pages->Set(static_cast<int64_t>(stats.row_pages));
  obs::Cat().storage_column_pages->Set(
      static_cast<int64_t>(stats.column_pages));
  obs::Cat().storage_va_pages->Set(static_cast<int64_t>(stats.va_pages));
  return stats;
}

}  // namespace knmatch

#ifndef KNMATCH_CACHE_BTREE_BRIDGE_H_
#define KNMATCH_CACHE_BTREE_BRIDGE_H_

#include <cstddef>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "knmatch/cache/query_cache.h"
#include "knmatch/common/types.h"
#include "knmatch/storage/bplus_tree.h"

namespace knmatch::cache {

/// Glue between d per-dimension B+-trees and a QueryResultCache: one
/// MutationListener per tree (ListenerFor(dim)), translating per-entry
/// tree mutations into per-point cache invalidations.
///
/// A point insert reaches the trees as d separate Insert(value, pid)
/// calls, one per dimension, and the cache's insert invalidation needs
/// the full coordinate vector; the bridge accumulates the arriving
/// (dim, value) pairs per pid and fires OnPointInserted when the last
/// dimension lands. A point erase likewise arrives d times, but the
/// cache call needs only the pid, so the bridge fires OnPointErased on
/// the FIRST arrival — evicting earlier than strictly necessary is
/// safe (the entries were about to be invalidated anyway) and spares
/// tracking erase progress.
///
/// Thread-safety: the accumulation map is mutex-guarded, so trees of
/// different dimensions may be mutated from different threads as long
/// as each tree itself is externally synchronized (its own contract).
class BTreeCacheBridge {
 public:
  BTreeCacheBridge(QueryResultCache* cache, size_t dims);

  /// The listener to register on the dimension-`dim` tree. Valid for
  /// the bridge's lifetime; detach (set_mutation_listener(nullptr))
  /// before destroying the bridge.
  BPlusTree::MutationListener* ListenerFor(size_t dim);

  size_t dims() const { return listeners_.size(); }

 private:
  class DimListener : public BPlusTree::MutationListener {
   public:
    DimListener() = default;
    void Bind(BTreeCacheBridge* bridge, size_t dim) {
      bridge_ = bridge;
      dim_ = dim;
    }
    void OnInsert(const ColumnEntry& entry) override;
    void OnErase(const ColumnEntry& entry) override;

   private:
    BTreeCacheBridge* bridge_ = nullptr;
    size_t dim_ = 0;
  };

  struct PendingInsert {
    std::vector<Value> coords;
    size_t arrived = 0;
  };

  void RecordInsert(size_t dim, const ColumnEntry& entry);
  void RecordErase(const ColumnEntry& entry);

  QueryResultCache* cache_;
  std::vector<DimListener> listeners_;
  std::mutex mu_;
  std::unordered_map<PointId, PendingInsert> pending_;
};

}  // namespace knmatch::cache

#endif  // KNMATCH_CACHE_BTREE_BRIDGE_H_

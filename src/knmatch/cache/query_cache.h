#ifndef KNMATCH_CACHE_QUERY_CACHE_H_
#define KNMATCH_CACHE_QUERY_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <variant>
#include <vector>

#include "knmatch/baselines/knn_scan.h"
#include "knmatch/common/types.h"
#include "knmatch/core/match_types.h"

namespace knmatch::cache {

/// Which entry point produced a cached answer. Part of the cache key:
/// a k-n-match and a kNN query over the same vector are different
/// questions and must never alias.
enum class CachedMethod : uint8_t {
  kKnMatch = 1,
  kFrequentKnMatch = 2,
  kKnn = 3,
};

/// Sizing and behavior knobs for a QueryResultCache.
struct CacheConfig {
  /// Total payload budget across all shards; the LRU tail is evicted
  /// when a store would exceed it. Accounting is an estimate (vector
  /// capacities plus fixed per-entry overhead), not malloc-exact.
  size_t max_bytes = size_t{32} << 20;
  /// Lock shards. Lookups from concurrent batch workers contend only
  /// within a shard; keys are spread by their FNV-1a hash.
  size_t shards = 8;
  /// Warm-start: a miss whose query lies within this L-infinity radius
  /// of a cached query of the same shape reuses the cached answer set
  /// as seed candidates (see core/ad_warm.h). 0 disables the probe.
  double warm_radius = 0;
  /// Slack added to an entry's k-th best difference when deciding
  /// whether an inserted point could enter its answer set. The exact
  /// threshold test is already safe (<=, so boundary ties evict); the
  /// band absorbs callers who recompute coordinates with slightly
  /// different arithmetic before re-inserting them.
  Value guard_band = 0;
  /// Near-miss probes examine at most this many entries per shard,
  /// most recently used first, so a warm-start scan stays bounded no
  /// matter how large the cache grows.
  size_t warm_scan_limit = 128;
};

/// Allocates a process-unique result epoch. Every cache-binding owner
/// — a SimilarityEngine instance (and each dataset generation within
/// one: recovery, EndIngest) or a shard::ShardRouter — keys its entries
/// under an epoch no entry has ever been written with, so answers can
/// never alias across owners sharing a cache.
uint64_t NextResultEpoch();

/// A point-in-time snapshot of the cache's counters and occupancy.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t stores = 0;
  uint64_t evictions = 0;           // LRU / byte-budget evictions
  uint64_t invalidated_insert = 0;  // entries evicted by point inserts
  uint64_t invalidated_erase = 0;   // entries evicted by point erases
  size_t entries = 0;
  size_t bytes = 0;
};

/// Answer-set seeds returned by a near-miss probe: the union of the
/// cached entry's answer pids, plus the L-infinity distance between
/// the two queries (for diagnostics).
struct WarmSeeds {
  std::vector<PointId> pids;
  double query_distance = 0;
};

/// A bounded, sharded, exact-answer result cache for the engine's
/// three in-memory entry points (k-n-match, frequent k-n-match, kNN by
/// scan).
///
/// Keys are (dataset epoch, method, query vector, n-range, k, weights
/// [, metric]) hashed with FNV-1a; an exact hit returns a copy of the
/// stored result, which is bit-identical to re-running the query
/// because every entry point is deterministic given those inputs. Each
/// shard holds an intrusive LRU list under its own mutex, so the cache
/// is safe for concurrent lookups/stores from batch workers
/// (TSan-clean); the byte budget is enforced per shard.
///
/// Invalidation is precise, not epoch-global. A two-way inverted index
/// maps pid -> entries whose answer sets contain it, so an erase
/// evicts exactly the entries that could change (removing a point not
/// in an answer set cannot alter the k smallest differences). An
/// insert evicts an entry only when the new point's n-match difference
/// to the entry's query, at some level n in [n0, n1], is within the
/// entry's stored k-th best difference for that level plus the guard
/// band — otherwise the point cannot displace any cached answer and
/// the entry survives. Cost: O(entries in cache * d) per mutation,
/// which is the price of keeping unrelated entries warm across
/// updates.
///
/// Note on served metadata: a hit returns the stored result verbatim,
/// including its attributes_retrieved cost counter, which describes
/// the run that populated the entry (the answer sets themselves are
/// guaranteed current; the cost of a hit is ~0 by construction).
class QueryResultCache {
 public:
  explicit QueryResultCache(CacheConfig config = CacheConfig());

  QueryResultCache(const QueryResultCache&) = delete;
  QueryResultCache& operator=(const QueryResultCache&) = delete;

  const CacheConfig& config() const { return config_; }

  // --- Exact-hit lookups. A hit refreshes the entry's LRU position
  // and returns a copy of the stored result; a miss returns nullopt.
  std::optional<KnMatchResult> LookupKnMatch(
      uint64_t epoch, std::span<const Value> query, size_t n, size_t k,
      std::span<const Value> weights) const;
  std::optional<FrequentKnMatchResult> LookupFrequent(
      uint64_t epoch, std::span<const Value> query, size_t n0, size_t n1,
      size_t k, std::span<const Value> weights) const;
  std::optional<KnMatchResult> LookupKnn(uint64_t epoch,
                                         std::span<const Value> query,
                                         size_t k, Metric metric) const;

  // --- Stores. Copy the result into the cache (replacing any entry
  // with the same key) and evict from the LRU tail if over budget.
  void StoreKnMatch(uint64_t epoch, std::span<const Value> query, size_t n,
                    size_t k, std::span<const Value> weights,
                    const KnMatchResult& result);
  void StoreFrequent(uint64_t epoch, std::span<const Value> query,
                     size_t n0, size_t n1, size_t k,
                     std::span<const Value> weights,
                     const FrequentKnMatchResult& result);
  void StoreKnn(uint64_t epoch, std::span<const Value> query, size_t k,
                Metric metric, const KnMatchResult& result);

  /// Near-miss probe for warm-starting the AD kernel: the most
  /// recently used entry with the same (epoch, method, n-range, k,
  /// weights) shape whose cached query lies within
  /// config().warm_radius of `query` in L-infinity. Returns the
  /// entry's answer-set pids (deduplicated); nullopt when the radius
  /// is 0 or nothing qualifies within the scan limit.
  std::optional<WarmSeeds> FindWarmSeeds(
      uint64_t epoch, CachedMethod method, std::span<const Value> query,
      size_t n0, size_t n1, size_t k,
      std::span<const Value> weights) const;

  // --- Invalidation hooks (see class comment). Safe to call
  // concurrently with lookups; the caller must ensure the dataset
  // mutation itself is ordered with in-flight queries (the engine's
  // InsertPoint contract).
  void OnPointErased(PointId pid);
  void OnPointInserted(PointId pid, std::span<const Value> coords);

  /// Drops every entry.
  void Clear();

  CacheStats Stats() const;

 private:
  /// The key fields, kept structured (not serialized) so near-miss
  /// probes and insert invalidation can read the query and weights
  /// back out of an entry.
  struct Key {
    uint64_t epoch = 0;
    CachedMethod method = CachedMethod::kKnMatch;
    uint8_t metric = 0;  // Metric, kKnn only
    uint32_t n0 = 0;
    uint32_t n1 = 0;
    uint32_t k = 0;
    std::vector<Value> query;
    std::vector<Value> weights;

    bool operator==(const Key& other) const;
  };

  struct Entry {
    Key key;
    std::variant<KnMatchResult, FrequentKnMatchResult> result;
    /// Sorted, deduplicated pids across every answer set of `result` —
    /// the entry side of the two-way inverted index.
    std::vector<PointId> answer_pids;
    /// Per-level k-th best difference, levels n0..n1 (one slot for
    /// kKnMatch/kKnn). kInfValue when the level's set holds fewer than
    /// k points (any insert could then enter it).
    std::vector<Value> level_kth;
    size_t bytes = 0;
  };

  struct Shard {
    mutable std::mutex mu;
    /// LRU order: begin() = most recently used.
    std::list<Entry> lru;
    /// FNV-1a hash -> entries with that hash (collisions resolved by
    /// full key comparison).
    std::unordered_multimap<uint64_t, std::list<Entry>::iterator> by_hash;
    /// pid -> entries whose answer sets contain it (inverted index).
    std::unordered_map<PointId, std::vector<std::list<Entry>::iterator>>
        by_pid;
    size_t bytes = 0;
  };

  static uint64_t HashKey(const Key& key);
  Shard& ShardFor(uint64_t hash) const;

  /// Looks `key` up in its shard; on a hit moves the entry to the LRU
  /// front and returns a copy of its payload variant.
  std::optional<std::variant<KnMatchResult, FrequentKnMatchResult>>
  LookupEntry(const Key& key) const;

  /// Inserts (or replaces) the entry for `key`, then evicts from the
  /// shard's LRU tail while the shard exceeds its byte budget.
  void StoreEntry(Key key,
                  std::variant<KnMatchResult, FrequentKnMatchResult> result);

  /// Removes `it` from the shard's hash and inverted indexes and the
  /// LRU list. Caller holds the shard lock.
  void EraseEntry(Shard& shard, std::list<Entry>::iterator it);

  /// Publishes entry/byte gauges; call outside shard locks.
  void PublishGauges() const;

  CacheConfig config_;
  size_t per_shard_budget_ = 0;
  mutable std::vector<Shard> shards_;
  std::atomic<size_t> total_entries_{0};
  std::atomic<size_t> total_bytes_{0};
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> stores_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> invalidated_insert_{0};
  std::atomic<uint64_t> invalidated_erase_{0};
};

}  // namespace knmatch::cache

#endif  // KNMATCH_CACHE_QUERY_CACHE_H_

#ifndef KNMATCH_CACHE_CACHED_SEARCH_H_
#define KNMATCH_CACHE_CACHED_SEARCH_H_

#include <span>

#include "knmatch/baselines/knn_scan.h"
#include "knmatch/cache/query_cache.h"
#include "knmatch/common/dataset.h"
#include "knmatch/common/status.h"
#include "knmatch/core/ad_algorithm.h"
#include "knmatch/core/match_types.h"

namespace knmatch {
class QueryContext;
}  // namespace knmatch

namespace knmatch::cache {

/// A cache handle plus the dataset epoch it is keyed under. The engine
/// owns both; the batch executor receives a binding per call so the
/// sequential and fanned-out paths share one cache and one epoch.
/// A null `cache` means "caching disabled" and every helper below
/// degrades to the plain cold call.
struct CacheBinding {
  QueryResultCache* cache = nullptr;
  uint64_t epoch = 0;
};

/// Cache-through k-n-match: exact hit, else warm-start from a
/// near-miss entry (ungoverned queries only — a governed query's
/// trip accounting must come from the real kernel), else cold; OK cold
/// and warm results are stored. Answers are bit-identical to the cold
/// call in every branch (see QueryResultCache and core/ad_warm.h for
/// the respective arguments).
Result<KnMatchResult> CachedKnMatch(const CacheBinding& binding,
                                    const AdSearcher& searcher,
                                    std::span<const Value> query, size_t n,
                                    size_t k, std::span<const Value> weights,
                                    internal::AdScratch* scratch,
                                    QueryContext* ctx);

/// Cache-through frequent k-n-match; same contract as CachedKnMatch.
Result<FrequentKnMatchResult> CachedFrequentKnMatch(
    const CacheBinding& binding, const AdSearcher& searcher,
    std::span<const Value> query, size_t n0, size_t n1, size_t k,
    std::span<const Value> weights, internal::AdScratch* scratch,
    QueryContext* ctx);

/// Cache-through exact kNN by scan. Exact hits only: a neighboring
/// query's k-n-match answer pids say nothing useful about a metric
/// scan's pruning, so there is no warm path.
Result<KnMatchResult> CachedKnn(const CacheBinding& binding,
                                const Dataset& db,
                                std::span<const Value> query, size_t k,
                                Metric metric, QueryContext* ctx);

}  // namespace knmatch::cache

#endif  // KNMATCH_CACHE_CACHED_SEARCH_H_

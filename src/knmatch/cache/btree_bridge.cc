#include "knmatch/cache/btree_bridge.h"

#include <utility>

namespace knmatch::cache {

BTreeCacheBridge::BTreeCacheBridge(QueryResultCache* cache, size_t dims)
    : cache_(cache), listeners_(dims) {
  for (size_t dim = 0; dim < dims; ++dim) {
    listeners_[dim].Bind(this, dim);
  }
}

BPlusTree::MutationListener* BTreeCacheBridge::ListenerFor(size_t dim) {
  return &listeners_[dim];
}

void BTreeCacheBridge::DimListener::OnInsert(const ColumnEntry& entry) {
  bridge_->RecordInsert(dim_, entry);
}

void BTreeCacheBridge::DimListener::OnErase(const ColumnEntry& entry) {
  bridge_->RecordErase(entry);
}

void BTreeCacheBridge::RecordInsert(size_t dim, const ColumnEntry& entry) {
  std::vector<Value> coords;
  {
    std::scoped_lock lock(mu_);
    PendingInsert& pending = pending_[entry.pid];
    if (pending.coords.empty()) pending.coords.resize(listeners_.size());
    pending.coords[dim] = entry.value;
    if (++pending.arrived < listeners_.size()) return;
    coords = std::move(pending.coords);
    pending_.erase(entry.pid);
  }
  cache_->OnPointInserted(entry.pid, coords);
}

void BTreeCacheBridge::RecordErase(const ColumnEntry& entry) {
  // Fire on the first of the d per-dimension erases: an early eviction
  // is safe, and the cache's inverted index makes repeats cheap no-ops.
  cache_->OnPointErased(entry.pid);
}

}  // namespace knmatch::cache

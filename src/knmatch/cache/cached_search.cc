#include "knmatch/cache/cached_search.h"

#include <optional>
#include <utility>

#include "knmatch/core/ad_scratch.h"
#include "knmatch/core/query_context.h"
#include "knmatch/obs/catalog.h"

namespace knmatch::cache {

namespace {

void CountWarm(bool hit) {
  if (!obs::Enabled()) return;
  if (hit) {
    obs::Cat().cache_warm_hits->Add();
  } else {
    obs::Cat().cache_warm_fallbacks->Add();
  }
}

}  // namespace

Result<KnMatchResult> CachedKnMatch(const CacheBinding& binding,
                                    const AdSearcher& searcher,
                                    std::span<const Value> query, size_t n,
                                    size_t k, std::span<const Value> weights,
                                    internal::AdScratch* scratch,
                                    QueryContext* ctx) {
  QueryResultCache* cache = binding.cache;
  if (cache == nullptr) {
    return searcher.KnMatch(query, n, k, weights, scratch, ctx);
  }
  if (std::optional<KnMatchResult> hit =
          cache->LookupKnMatch(binding.epoch, query, n, k, weights);
      hit.has_value()) {
    return std::move(*hit);
  }
  // Warm-start only ungoverned queries: the seeded path has no trip
  // points, so a deadline/budget context must reach the real kernel.
  if (ctx == nullptr && cache->config().warm_radius > 0) {
    if (std::optional<WarmSeeds> seeds = cache->FindWarmSeeds(
            binding.epoch, CachedMethod::kKnMatch, query, n, n, k, weights);
        seeds.has_value()) {
      std::optional<KnMatchResult> warm =
          searcher.KnMatchSeeded(query, n, k, weights, seeds->pids, scratch);
      CountWarm(warm.has_value());
      if (warm.has_value()) {
        cache->StoreKnMatch(binding.epoch, query, n, k, weights, *warm);
        return std::move(*warm);
      }
    }
  }
  Result<KnMatchResult> r = searcher.KnMatch(query, n, k, weights, scratch, ctx);
  if (r.ok()) {
    cache->StoreKnMatch(binding.epoch, query, n, k, weights, r.value());
  }
  return r;
}

Result<FrequentKnMatchResult> CachedFrequentKnMatch(
    const CacheBinding& binding, const AdSearcher& searcher,
    std::span<const Value> query, size_t n0, size_t n1, size_t k,
    std::span<const Value> weights, internal::AdScratch* scratch,
    QueryContext* ctx) {
  QueryResultCache* cache = binding.cache;
  if (cache == nullptr) {
    return searcher.FrequentKnMatch(query, n0, n1, k, weights, scratch, ctx);
  }
  if (std::optional<FrequentKnMatchResult> hit =
          cache->LookupFrequent(binding.epoch, query, n0, n1, k, weights);
      hit.has_value()) {
    return std::move(*hit);
  }
  if (ctx == nullptr && cache->config().warm_radius > 0) {
    if (std::optional<WarmSeeds> seeds = cache->FindWarmSeeds(
            binding.epoch, CachedMethod::kFrequentKnMatch, query, n0, n1, k,
            weights);
        seeds.has_value()) {
      std::optional<FrequentKnMatchResult> warm =
          searcher.FrequentKnMatchSeeded(query, n0, n1, k, weights,
                                         seeds->pids, scratch);
      CountWarm(warm.has_value());
      if (warm.has_value()) {
        cache->StoreFrequent(binding.epoch, query, n0, n1, k, weights, *warm);
        return std::move(*warm);
      }
    }
  }
  Result<FrequentKnMatchResult> r =
      searcher.FrequentKnMatch(query, n0, n1, k, weights, scratch, ctx);
  if (r.ok()) {
    cache->StoreFrequent(binding.epoch, query, n0, n1, k, weights, r.value());
  }
  return r;
}

Result<KnMatchResult> CachedKnn(const CacheBinding& binding,
                                const Dataset& db,
                                std::span<const Value> query, size_t k,
                                Metric metric, QueryContext* ctx) {
  QueryResultCache* cache = binding.cache;
  if (cache == nullptr) return KnnScan(db, query, k, metric, ctx);
  if (std::optional<KnMatchResult> hit =
          cache->LookupKnn(binding.epoch, query, k, metric);
      hit.has_value()) {
    return std::move(*hit);
  }
  Result<KnMatchResult> r = KnnScan(db, query, k, metric, ctx);
  if (r.ok()) {
    cache->StoreKnn(binding.epoch, query, k, metric, r.value());
  }
  return r;
}

}  // namespace knmatch::cache

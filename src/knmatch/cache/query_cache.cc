#include "knmatch/cache/query_cache.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "knmatch/obs/catalog.h"

namespace knmatch::cache {

uint64_t NextResultEpoch() {
  static std::atomic<uint64_t> next_epoch{1};
  return next_epoch.fetch_add(1, std::memory_order_relaxed);
}

namespace {

// FNV-1a, 64-bit.
constexpr uint64_t kFnvOffset = 14695981039346656037ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void HashBytes(uint64_t* h, const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t acc = *h;
  for (size_t i = 0; i < len; ++i) {
    acc ^= p[i];
    acc *= kFnvPrime;
  }
  *h = acc;
}

template <typename T>
void HashPod(uint64_t* h, const T& v) {
  HashBytes(h, &v, sizeof(v));
}

/// The per-dimension weighted difference, written with the same
/// operand order as the AD kernel (down cursor: query - value; up
/// cursor: value - query) so invalidation thresholds compare the exact
/// doubles a recomputed query would produce.
Value WeightedDif(Value coord, Value q, Value weight) {
  Value dif = coord < q ? q - coord : coord - q;
  return dif * weight;
}

void CollectPids(const std::vector<Neighbor>& set,
                 std::vector<PointId>* pids) {
  for (const Neighbor& nb : set) pids->push_back(nb.pid);
}

size_t NeighborVecBytes(const std::vector<Neighbor>& v) {
  return v.capacity() * sizeof(Neighbor) + sizeof(v);
}

}  // namespace

bool QueryResultCache::Key::operator==(const Key& other) const {
  return epoch == other.epoch && method == other.method &&
         metric == other.metric && n0 == other.n0 && n1 == other.n1 &&
         k == other.k && query == other.query && weights == other.weights;
}

uint64_t QueryResultCache::HashKey(const Key& key) {
  uint64_t h = kFnvOffset;
  HashPod(&h, key.epoch);
  HashPod(&h, key.method);
  HashPod(&h, key.metric);
  HashPod(&h, key.n0);
  HashPod(&h, key.n1);
  HashPod(&h, key.k);
  const uint64_t qsize = key.query.size();
  HashPod(&h, qsize);
  HashBytes(&h, key.query.data(), key.query.size() * sizeof(Value));
  const uint64_t wsize = key.weights.size();
  HashPod(&h, wsize);
  HashBytes(&h, key.weights.data(), key.weights.size() * sizeof(Value));
  return h;
}

QueryResultCache::QueryResultCache(CacheConfig config)
    : config_(config),
      shards_(std::max<size_t>(1, config.shards)) {
  config_.shards = shards_.size();
  per_shard_budget_ = std::max<size_t>(1, config_.max_bytes / shards_.size());
}

QueryResultCache::Shard& QueryResultCache::ShardFor(uint64_t hash) const {
  return shards_[hash % shards_.size()];
}

void QueryResultCache::PublishGauges() const {
  if (!obs::Enabled()) return;
  obs::Cat().cache_entries->Set(
      static_cast<int64_t>(total_entries_.load(std::memory_order_relaxed)));
  obs::Cat().cache_bytes->Set(
      static_cast<int64_t>(total_bytes_.load(std::memory_order_relaxed)));
}

std::optional<std::variant<KnMatchResult, FrequentKnMatchResult>>
QueryResultCache::LookupEntry(const Key& key) const {
  const uint64_t hash = HashKey(key);
  Shard& shard = ShardFor(hash);
  {
    std::scoped_lock lock(shard.mu);
    auto [lo, hi] = shard.by_hash.equal_range(hash);
    for (auto it = lo; it != hi; ++it) {
      if (it->second->key == key) {
        // Refresh recency: splice the entry to the LRU front.
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        hits_.fetch_add(1, std::memory_order_relaxed);
        if (obs::Enabled()) {
          obs::Cat().cache_hits->Add();
          const uint64_t h = hits_.load(std::memory_order_relaxed);
          const uint64_t m = misses_.load(std::memory_order_relaxed);
          obs::Cat().cache_hit_ratio->Set(
              static_cast<int64_t>(100 * h / (h + m)));
        }
        return it->second->result;
      }
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (obs::Enabled()) {
    obs::Cat().cache_misses->Add();
    const uint64_t h = hits_.load(std::memory_order_relaxed);
    const uint64_t m = misses_.load(std::memory_order_relaxed);
    obs::Cat().cache_hit_ratio->Set(static_cast<int64_t>(100 * h / (h + m)));
  }
  return std::nullopt;
}

void QueryResultCache::EraseEntry(Shard& shard,
                                  std::list<Entry>::iterator it) {
  const uint64_t hash = HashKey(it->key);
  auto [lo, hi] = shard.by_hash.equal_range(hash);
  for (auto h = lo; h != hi; ++h) {
    if (h->second == it) {
      shard.by_hash.erase(h);
      break;
    }
  }
  for (const PointId pid : it->answer_pids) {
    auto p = shard.by_pid.find(pid);
    if (p == shard.by_pid.end()) continue;
    auto& vec = p->second;
    vec.erase(std::remove(vec.begin(), vec.end(), it), vec.end());
    if (vec.empty()) shard.by_pid.erase(p);
  }
  shard.bytes -= std::min(shard.bytes, it->bytes);
  total_bytes_.fetch_sub(it->bytes, std::memory_order_relaxed);
  total_entries_.fetch_sub(1, std::memory_order_relaxed);
  shard.lru.erase(it);
}

void QueryResultCache::StoreEntry(
    Key key, std::variant<KnMatchResult, FrequentKnMatchResult> result) {
  Entry entry;
  entry.key = std::move(key);
  entry.result = std::move(result);

  // Derive the invalidation metadata: the answer pids (inverted-index
  // side) and the per-level k-th best differences (insert guard).
  const size_t levels = entry.key.n1 - entry.key.n0 + 1;
  entry.level_kth.assign(levels, kInfValue);
  if (const auto* km = std::get_if<KnMatchResult>(&entry.result)) {
    CollectPids(km->matches, &entry.answer_pids);
    if (km->matches.size() >= entry.key.k && !km->matches.empty()) {
      entry.level_kth[0] = km->matches.back().distance;
    }
  } else {
    const auto& fr = std::get<FrequentKnMatchResult>(entry.result);
    CollectPids(fr.matches, &entry.answer_pids);
    for (size_t lvl = 0; lvl < fr.per_n_sets.size() && lvl < levels; ++lvl) {
      const auto& set = fr.per_n_sets[lvl];
      CollectPids(set, &entry.answer_pids);
      if (set.size() >= entry.key.k && !set.empty()) {
        entry.level_kth[lvl] = set.back().distance;
      }
    }
  }
  std::sort(entry.answer_pids.begin(), entry.answer_pids.end());
  entry.answer_pids.erase(
      std::unique(entry.answer_pids.begin(), entry.answer_pids.end()),
      entry.answer_pids.end());

  entry.bytes = sizeof(Entry) +
                entry.key.query.capacity() * sizeof(Value) +
                entry.key.weights.capacity() * sizeof(Value) +
                entry.answer_pids.capacity() * sizeof(PointId) +
                entry.level_kth.capacity() * sizeof(Value);
  if (const auto* km = std::get_if<KnMatchResult>(&entry.result)) {
    entry.bytes += NeighborVecBytes(km->matches);
  } else {
    const auto& fr = std::get<FrequentKnMatchResult>(entry.result);
    entry.bytes += NeighborVecBytes(fr.matches) +
                   fr.frequencies.capacity() * sizeof(uint32_t);
    for (const auto& set : fr.per_n_sets) {
      entry.bytes += NeighborVecBytes(set);
    }
  }

  const uint64_t hash = HashKey(entry.key);
  Shard& shard = ShardFor(hash);
  uint64_t evicted = 0;
  {
    std::scoped_lock lock(shard.mu);
    // Replace any entry with the same key.
    auto [lo, hi] = shard.by_hash.equal_range(hash);
    for (auto it = lo; it != hi; ++it) {
      if (it->second->key == entry.key) {
        EraseEntry(shard, it->second);
        break;
      }
    }
    shard.lru.push_front(std::move(entry));
    auto it = shard.lru.begin();
    shard.by_hash.emplace(hash, it);
    for (const PointId pid : it->answer_pids) {
      shard.by_pid[pid].push_back(it);
    }
    shard.bytes += it->bytes;
    total_bytes_.fetch_add(it->bytes, std::memory_order_relaxed);
    total_entries_.fetch_add(1, std::memory_order_relaxed);
    // Evict from the cold tail while over budget; an entry larger than
    // the whole shard budget evicts itself (the cache declines it).
    while (shard.bytes > per_shard_budget_ && !shard.lru.empty()) {
      EraseEntry(shard, std::prev(shard.lru.end()));
      ++evicted;
    }
  }
  stores_.fetch_add(1, std::memory_order_relaxed);
  if (evicted != 0) {
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
    if (obs::Enabled()) obs::Cat().cache_evictions->Add(evicted);
  }
  if (obs::Enabled()) obs::Cat().cache_stores->Add();
  PublishGauges();
}

std::optional<KnMatchResult> QueryResultCache::LookupKnMatch(
    uint64_t epoch, std::span<const Value> query, size_t n, size_t k,
    std::span<const Value> weights) const {
  Key key{epoch,
          CachedMethod::kKnMatch,
          0,
          static_cast<uint32_t>(n),
          static_cast<uint32_t>(n),
          static_cast<uint32_t>(k),
          {query.begin(), query.end()},
          {weights.begin(), weights.end()}};
  auto hit = LookupEntry(key);
  if (!hit) return std::nullopt;
  return std::get<KnMatchResult>(std::move(*hit));
}

std::optional<FrequentKnMatchResult> QueryResultCache::LookupFrequent(
    uint64_t epoch, std::span<const Value> query, size_t n0, size_t n1,
    size_t k, std::span<const Value> weights) const {
  Key key{epoch,
          CachedMethod::kFrequentKnMatch,
          0,
          static_cast<uint32_t>(n0),
          static_cast<uint32_t>(n1),
          static_cast<uint32_t>(k),
          {query.begin(), query.end()},
          {weights.begin(), weights.end()}};
  auto hit = LookupEntry(key);
  if (!hit) return std::nullopt;
  return std::get<FrequentKnMatchResult>(std::move(*hit));
}

std::optional<KnMatchResult> QueryResultCache::LookupKnn(
    uint64_t epoch, std::span<const Value> query, size_t k,
    Metric metric) const {
  Key key{epoch,
          CachedMethod::kKnn,
          static_cast<uint8_t>(metric),
          1,
          1,
          static_cast<uint32_t>(k),
          {query.begin(), query.end()},
          {}};
  auto hit = LookupEntry(key);
  if (!hit) return std::nullopt;
  return std::get<KnMatchResult>(std::move(*hit));
}

void QueryResultCache::StoreKnMatch(uint64_t epoch,
                                    std::span<const Value> query, size_t n,
                                    size_t k, std::span<const Value> weights,
                                    const KnMatchResult& result) {
  StoreEntry(Key{epoch,
                 CachedMethod::kKnMatch,
                 0,
                 static_cast<uint32_t>(n),
                 static_cast<uint32_t>(n),
                 static_cast<uint32_t>(k),
                 {query.begin(), query.end()},
                 {weights.begin(), weights.end()}},
             result);
}

void QueryResultCache::StoreFrequent(uint64_t epoch,
                                     std::span<const Value> query, size_t n0,
                                     size_t n1, size_t k,
                                     std::span<const Value> weights,
                                     const FrequentKnMatchResult& result) {
  StoreEntry(Key{epoch,
                 CachedMethod::kFrequentKnMatch,
                 0,
                 static_cast<uint32_t>(n0),
                 static_cast<uint32_t>(n1),
                 static_cast<uint32_t>(k),
                 {query.begin(), query.end()},
                 {weights.begin(), weights.end()}},
             result);
}

void QueryResultCache::StoreKnn(uint64_t epoch, std::span<const Value> query,
                                size_t k, Metric metric,
                                const KnMatchResult& result) {
  StoreEntry(Key{epoch,
                 CachedMethod::kKnn,
                 static_cast<uint8_t>(metric),
                 1,
                 1,
                 static_cast<uint32_t>(k),
                 {query.begin(), query.end()},
                 {}},
             result);
}

std::optional<WarmSeeds> QueryResultCache::FindWarmSeeds(
    uint64_t epoch, CachedMethod method, std::span<const Value> query,
    size_t n0, size_t n1, size_t k, std::span<const Value> weights) const {
  if (!(config_.warm_radius > 0)) return std::nullopt;
  std::optional<WarmSeeds> best;
  for (Shard& shard : shards_) {
    std::scoped_lock lock(shard.mu);
    size_t examined = 0;
    for (const Entry& e : shard.lru) {
      if (++examined > config_.warm_scan_limit) break;
      const Key& ek = e.key;
      if (ek.epoch != epoch || ek.method != method ||
          ek.n0 != static_cast<uint32_t>(n0) ||
          ek.n1 != static_cast<uint32_t>(n1) ||
          ek.k != static_cast<uint32_t>(k) ||
          ek.query.size() != query.size() ||
          !std::equal(ek.weights.begin(), ek.weights.end(), weights.begin(),
                      weights.end())) {
        continue;
      }
      double dist = 0;
      for (size_t i = 0; i < query.size() && dist <= config_.warm_radius;
           ++i) {
        dist = std::max(dist, std::abs(ek.query[i] - query[i]));
      }
      if (dist > config_.warm_radius) continue;
      if (!best || dist < best->query_distance) {
        best = WarmSeeds{e.answer_pids, dist};
      }
    }
  }
  return best;
}

void QueryResultCache::OnPointErased(PointId pid) {
  uint64_t evicted = 0;
  for (Shard& shard : shards_) {
    std::scoped_lock lock(shard.mu);
    auto it = shard.by_pid.find(pid);
    if (it == shard.by_pid.end()) continue;
    // EraseEntry edits by_pid[pid]; work from a copy.
    std::vector<std::list<Entry>::iterator> victims = it->second;
    for (auto victim : victims) EraseEntry(shard, victim);
    evicted += victims.size();
  }
  if (evicted != 0) {
    invalidated_erase_.fetch_add(evicted, std::memory_order_relaxed);
    if (obs::Enabled()) obs::Cat().cache_invalidated_erase->Add(evicted);
  }
  PublishGauges();
}

void QueryResultCache::OnPointInserted(PointId pid,
                                       std::span<const Value> coords) {
  (void)pid;
  uint64_t evicted = 0;
  std::vector<Value> difs;
  for (Shard& shard : shards_) {
    std::scoped_lock lock(shard.mu);
    std::vector<std::list<Entry>::iterator> victims;
    for (auto it = shard.lru.begin(); it != shard.lru.end(); ++it) {
      const Key& ek = it->key;
      bool affected = false;
      if (ek.query.size() != coords.size()) {
        // Shape mismatch can only mean the epoch was misused across
        // datasets; evict rather than risk staleness.
        affected = true;
      } else if (ek.method == CachedMethod::kKnn) {
        const Value d = MetricDistance(coords, ek.query,
                                       static_cast<Metric>(ek.metric));
        affected = d <= it->level_kth[0] + config_.guard_band;
      } else {
        difs.resize(coords.size());
        for (size_t i = 0; i < coords.size(); ++i) {
          const Value w = ek.weights.empty() ? Value{1} : ek.weights[i];
          difs[i] = WeightedDif(coords[i], ek.query[i], w);
        }
        std::sort(difs.begin(), difs.end());
        // The new point can enter the level-n answer set only if its
        // n-match difference is within that level's k-th best (plus
        // the guard band); otherwise the cached sets are unchanged.
        for (uint32_t n = ek.n0; n <= ek.n1 && !affected; ++n) {
          affected = difs[n - 1] <= it->level_kth[n - ek.n0] +
                                        config_.guard_band;
        }
      }
      if (affected) victims.push_back(it);
    }
    for (auto victim : victims) EraseEntry(shard, victim);
    evicted += victims.size();
  }
  if (evicted != 0) {
    invalidated_insert_.fetch_add(evicted, std::memory_order_relaxed);
    if (obs::Enabled()) obs::Cat().cache_invalidated_insert->Add(evicted);
  }
  PublishGauges();
}

void QueryResultCache::Clear() {
  for (Shard& shard : shards_) {
    std::scoped_lock lock(shard.mu);
    total_entries_.fetch_sub(shard.lru.size(), std::memory_order_relaxed);
    total_bytes_.fetch_sub(shard.bytes, std::memory_order_relaxed);
    shard.lru.clear();
    shard.by_hash.clear();
    shard.by_pid.clear();
    shard.bytes = 0;
  }
  PublishGauges();
}

CacheStats QueryResultCache::Stats() const {
  CacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.stores = stores_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.invalidated_insert =
      invalidated_insert_.load(std::memory_order_relaxed);
  stats.invalidated_erase =
      invalidated_erase_.load(std::memory_order_relaxed);
  stats.entries = total_entries_.load(std::memory_order_relaxed);
  stats.bytes = total_bytes_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace knmatch::cache

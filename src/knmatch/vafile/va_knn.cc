#include "knmatch/vafile/va_knn.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "knmatch/common/top_k.h"
#include "knmatch/core/nmatch.h"
#include "knmatch/obs/catalog.h"
#include "knmatch/obs/trace.h"

namespace knmatch {

Result<KnMatchResult> VaKnnSearcher::Knn(std::span<const Value> query,
                                         size_t k) const {
  Status s =
      ValidateMatchParams(va_.size(), va_.dims(), query.size(), 1, 1, k);
  if (!s.ok()) return s;

  const size_t d = va_.dims();

  struct Candidate {
    Value lb;
    PointId pid;
  };
  std::vector<Candidate> candidates;
  BoundedTopK<PointId, Value, PointId> ub_heap(k);

  const size_t va_stream = va_.OpenStream();
  Status io = va_.ForEachApprox(va_stream, [&](PointId pid,
                                               std::span<const uint32_t>
                                                   codes) {
    Value lb2 = 0, ub2 = 0;
    for (size_t dim = 0; dim < d; ++dim) {
      const Value lo = va_.CellLower(dim, codes[dim]);
      const Value hi = va_.CellUpper(dim, codes[dim]);
      const Value q = query[dim];
      Value l = 0;
      if (q < lo) {
        l = lo - q;
      } else if (q > hi) {
        l = q - hi;
      }
      const Value u = std::max(std::abs(q - lo), std::abs(q - hi));
      lb2 += l * l;
      ub2 += u * u;
    }
    const Value lb = std::sqrt(lb2);
    if (!ub_heap.full() || lb <= ub_heap.threshold()) {
      candidates.push_back(Candidate{lb, pid});
    }
    ub_heap.Offer(std::sqrt(ub2), pid, pid);
  });
  if (!io.ok()) return io;

  // Phase 2: ascending lower bound with early termination.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.lb != b.lb) return a.lb < b.lb;
              return a.pid < b.pid;
            });

  BoundedTopK<PointId, Value, PointId> top(k);
  const size_t row_stream = rows_.OpenStream();
  std::vector<Value> buf;
  last_points_refined_ = 0;
  {
    obs::TraceSpan span(obs::Phase::kVerify);
    for (const Candidate& cand : candidates) {
      if (top.full() && cand.lb > top.threshold()) break;
      Result<std::span<const Value>> row =
          rows_.ReadRow(row_stream, cand.pid, &buf);
      if (!row.ok()) return row.status();
      std::span<const Value> p = row.value();
      Value sum = 0;
      for (size_t dim = 0; dim < d; ++dim) {
        const Value diff = p[dim] - query[dim];
        sum += diff * diff;
      }
      top.Offer(std::sqrt(sum), cand.pid, cand.pid);
      ++last_points_refined_;
    }
  }

  KnMatchResult result;
  for (auto& e : top.TakeSorted()) {
    result.matches.push_back(Neighbor{e.item, e.score});
  }
  result.attributes_retrieved =
      static_cast<uint64_t>(va_.size()) * d + last_points_refined_ * d;
  obs::Cat().attrs_va->Add(result.attributes_retrieved);
  obs::Cat().va_points_refined->Add(last_points_refined_);
  if (obs::QueryTrace* trace = obs::CurrentTrace()) {
    trace->counters().attributes_retrieved += result.attributes_retrieved;
    trace->counters().points_refined += last_points_refined_;
  }
  return result;
}

}  // namespace knmatch

#ifndef KNMATCH_VAFILE_VA_KNMATCH_H_
#define KNMATCH_VAFILE_VA_KNMATCH_H_

#include <span>

#include "knmatch/common/status.h"
#include "knmatch/core/match_types.h"
#include "knmatch/storage/row_store.h"
#include "knmatch/vafile/va_file.h"

namespace knmatch {

class QueryContext;

/// Result of a VA-file (frequent) k-n-match query, extending the base
/// result with the phase statistics Figure 10 reports.
struct VaFrequentKnMatchResult {
  FrequentKnMatchResult base;
  /// Points that survived phase-1 pruning and were fetched from the row
  /// store in phase 2 (Figure 10(a)'s "number of points retrieved").
  uint64_t points_refined = 0;
};

/// The compression-based competitor of Section 4.2: frequent k-n-match
/// over a VA-file.
///
/// Phase 1 scans the approximation sequentially, computing for every
/// point lower/upper bounds of its n-match difference for each n in
/// [n0, n1] (the n-th smallest per-dimension lower/upper difference
/// bound). Running k-th-smallest upper-bound thresholds prune points
/// whose lower bound exceeds the threshold for *every* n — pruning with
/// a shrinking threshold is conservative, so the candidate set is a
/// superset of every true answer set. Phase 2 fetches the candidates
/// from the row store (random I/O) and computes exact differences, so
/// the final answer is exact and identical to the naive algorithm's.
class VaKnMatchSearcher {
 public:
  /// Searches `va` with refinement reads served by `rows`. Both stores
  /// must outlive the searcher and should share a DiskSimulator.
  VaKnMatchSearcher(const VaFile& va, const RowStore& rows)
      : va_(va), rows_(rows) {}

  /// Frequent k-n-match over [n0, n1]. Optional `ctx` governs the
  /// query (deadline, cancellation, attribute/page budgets), checked
  /// once per approximation-batch in phase 1 and per refined point in
  /// phase 2. A trip returns the context's typed status; a phase-2 trip
  /// leaves the refined-so-far answer sets in ctx->trip(), a phase-1
  /// trip has no exact candidates yet so the partial sets are empty.
  Result<VaFrequentKnMatchResult> FrequentKnMatch(
      std::span<const Value> query, size_t n0, size_t n1, size_t k,
      QueryContext* ctx = nullptr) const;

  /// Plain k-n-match (the n0 == n1 special case).
  Result<VaFrequentKnMatchResult> KnMatch(std::span<const Value> query,
                                          size_t n, size_t k,
                                          QueryContext* ctx = nullptr) const {
    return FrequentKnMatch(query, n, n, k, ctx);
  }

 private:
  const VaFile& va_;
  const RowStore& rows_;
};

}  // namespace knmatch

#endif  // KNMATCH_VAFILE_VA_KNMATCH_H_

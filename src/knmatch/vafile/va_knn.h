#ifndef KNMATCH_VAFILE_VA_KNN_H_
#define KNMATCH_VAFILE_VA_KNN_H_

#include <span>

#include "knmatch/common/status.h"
#include "knmatch/core/match_types.h"
#include "knmatch/storage/row_store.h"
#include "knmatch/vafile/va_file.h"

namespace knmatch {

/// Classic VA-SSA exact kNN under the Euclidean distance [Weber et al.,
/// VLDB'98]. Included both as a completeness check of the VA-file
/// substrate and as the historical point of comparison the paper builds
/// its Section 4.2 competitor from.
///
/// Phase 1 scans the approximation, keeping candidates whose lower
/// bound does not exceed the running k-th smallest upper bound. Phase 2
/// visits candidates in ascending lower-bound order, fetching exact
/// points until the next lower bound exceeds the k-th best exact
/// distance.
class VaKnnSearcher {
 public:
  VaKnnSearcher(const VaFile& va, const RowStore& rows)
      : va_(va), rows_(rows) {}

  /// Exact k nearest neighbors of `query`.
  Result<KnMatchResult> Knn(std::span<const Value> query, size_t k) const;

  /// Candidates refined by the most recent Knn() call.
  uint64_t last_points_refined() const { return last_points_refined_; }

 private:
  const VaFile& va_;
  const RowStore& rows_;
  mutable uint64_t last_points_refined_ = 0;
};

}  // namespace knmatch

#endif  // KNMATCH_VAFILE_VA_KNN_H_

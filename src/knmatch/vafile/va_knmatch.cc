#include "knmatch/vafile/va_knmatch.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "knmatch/common/top_k.h"
#include "knmatch/core/nmatch.h"
#include "knmatch/core/nmatch_naive.h"
#include "knmatch/core/query_context.h"
#include "knmatch/obs/catalog.h"
#include "knmatch/obs/trace.h"

namespace knmatch {

namespace {

// Approximations between phase-1 governance rechecks (each costs d
// quantized attribute reads).
constexpr uint64_t kApproxStride = 64;

// Charges a tripped VA query's cost to the catalog/trace and records
// the harvested partial sets, mirroring the untripped accounting.
Status HarvestVaTrip(QueryContext* ctx, uint64_t attributes,
                     uint64_t points_refined,
                     std::vector<std::vector<Neighbor>> partial) {
  ctx->trip().attributes_retrieved = attributes;
  ctx->StorePartialSets(&partial);
  obs::Cat().attrs_va->Add(attributes);
  obs::Cat().va_points_refined->Add(points_refined);
  if (obs::QueryTrace* trace = obs::CurrentTrace()) {
    trace->counters().attributes_retrieved += attributes;
    trace->counters().points_refined += points_refined;
  }
  return ctx->trip_status();
}

}  // namespace

Result<VaFrequentKnMatchResult> VaKnMatchSearcher::FrequentKnMatch(
    std::span<const Value> query, size_t n0, size_t n1, size_t k,
    QueryContext* ctx) const {
  Status s = ValidateMatchParams(va_.size(), va_.dims(), query.size(), n0,
                                 n1, k);
  if (!s.ok()) return s;
  if (va_.size() != rows_.size() || va_.dims() != rows_.dims()) {
    return Status::FailedPrecondition(
        "VA-file and row store describe different datasets");
  }

  const size_t d = va_.dims();
  const size_t range = n1 - n0 + 1;

  // Phase 1: scan the approximation, maintain per-n thresholds (k-th
  // smallest upper bound seen so far) and collect candidates.
  using UbHeap = BoundedTopK<PointId, Value, PointId>;
  std::vector<UbHeap> thresholds;
  thresholds.reserve(range);
  for (size_t i = 0; i < range; ++i) thresholds.emplace_back(k);

  const bool governed = ctx != nullptr && ctx->governed();
  if (governed) ctx->ArmPages(va_.disk());
  std::vector<PointId> candidates;
  std::vector<Value> lb(d), ub(d);
  uint64_t approx_seen = 0;
  const size_t va_stream = va_.OpenStream();
  Status io = va_.ForEachApproxWhile(va_stream, [&](PointId pid,
                                                    std::span<const uint32_t>
                                                        codes) {
    for (size_t dim = 0; dim < d; ++dim) {
      const Value lo = va_.CellLower(dim, codes[dim]);
      const Value hi = va_.CellUpper(dim, codes[dim]);
      const Value q = query[dim];
      if (q < lo) {
        lb[dim] = lo - q;
      } else if (q > hi) {
        lb[dim] = q - hi;
      } else {
        lb[dim] = 0;
      }
      ub[dim] = std::max(std::abs(q - lo), std::abs(q - hi));
    }
    std::sort(lb.begin(), lb.end());
    std::sort(ub.begin(), ub.end());

    bool candidate = false;
    for (size_t n = n0; n <= n1; ++n) {
      UbHeap& heap = thresholds[n - n0];
      // Threshold is +inf until k upper bounds have been seen.
      if (!candidate &&
          (!heap.full() || lb[n - 1] <= heap.threshold())) {
        candidate = true;
      }
      heap.Offer(ub[n - 1], pid, pid);
    }
    if (candidate) candidates.push_back(pid);
    ++approx_seen;
    if (governed && approx_seen % kApproxStride == 0) {
      return ctx->Recheck(approx_seen * d, 0);
    }
    return true;
  });
  if (!io.ok()) return io;
  if (governed && ctx->tripped()) {
    // Tripped before refinement: no exact candidates yet, so the
    // partial answer is the correctly-shaped empty set per n.
    return HarvestVaTrip(ctx, approx_seen * d, 0,
                         std::vector<std::vector<Neighbor>>(range));
  }

  // Phase 2: fetch candidates (ascending pid, so co-located candidates
  // share page reads) and compute exact n-match differences.
  using Accumulator = BoundedTopK<PointId, Value, PointId>;
  std::vector<Accumulator> per_n;
  per_n.reserve(range);
  for (size_t i = 0; i < range; ++i) per_n.emplace_back(k);

  const size_t row_stream = rows_.OpenStream();
  std::vector<Value> buf, diffs;
  uint64_t refined = 0;
  {
    obs::TraceSpan span(obs::Phase::kVerify);
    for (const PointId pid : candidates) {
      // Each refinement is a random row read — expensive enough that a
      // per-candidate recheck costs nothing by comparison.
      if (governed &&
          !ctx->Recheck(static_cast<uint64_t>(va_.size()) * d + refined * d,
                        0)) {
        break;
      }
      Result<std::span<const Value>> p =
          rows_.ReadRow(row_stream, pid, &buf);
      if (!p.ok()) return p.status();
      SortedAbsDifferences(p.value(), query, &diffs);
      for (size_t n = n0; n <= n1; ++n) {
        per_n[n - n0].Offer(diffs[n - 1], pid, pid);
      }
      ++refined;
    }
  }
  if (governed && ctx->tripped()) {
    std::vector<std::vector<Neighbor>> partial(range);
    for (size_t i = 0; i < range; ++i) {
      for (auto& e : per_n[i].TakeSorted()) {
        partial[i].push_back(Neighbor{e.item, e.score});
      }
    }
    return HarvestVaTrip(ctx,
                         static_cast<uint64_t>(va_.size()) * d + refined * d,
                         refined, std::move(partial));
  }

  VaFrequentKnMatchResult result;
  result.points_refined = candidates.size();
  result.base.per_n_sets.resize(range);
  for (size_t i = 0; i < range; ++i) {
    for (auto& e : per_n[i].TakeSorted()) {
      result.base.per_n_sets[i].push_back(Neighbor{e.item, e.score});
    }
  }
  // Phase 1 reads every approximation (c*d quantized attributes);
  // phase 2 reads d exact attributes per refined point.
  result.base.attributes_retrieved =
      static_cast<uint64_t>(va_.size()) * d +
      static_cast<uint64_t>(candidates.size()) * d;
  obs::Cat().attrs_va->Add(result.base.attributes_retrieved);
  obs::Cat().va_points_refined->Add(result.points_refined);
  if (obs::QueryTrace* trace = obs::CurrentTrace()) {
    trace->counters().attributes_retrieved +=
        result.base.attributes_retrieved;
    trace->counters().points_refined += result.points_refined;
  }
  {
    obs::TraceSpan span(obs::Phase::kRank);
    RankByFrequency(k, &result.base);
  }
  return result;
}

}  // namespace knmatch

#ifndef KNMATCH_VAFILE_VA_FILE_H_
#define KNMATCH_VAFILE_VA_FILE_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "knmatch/common/dataset.h"
#include "knmatch/common/status.h"
#include "knmatch/common/types.h"
#include "knmatch/storage/paged_file.h"

namespace knmatch {

/// Vector-Approximation file [Weber, Schek, Blott; VLDB'98], the
/// compression technique the paper adapts as its disk-based competitor
/// (Section 4.2). Each point is approximated by `bits` bits per
/// dimension identifying the grid cell its coordinate falls in; the
/// approximation file is a fraction (bits/64 for double data; 25% in the
/// paper's 8-bit/float setting) of the original and is scanned
/// sequentially in phase 1 of any VA-based query.
class VaFile {
 public:
  /// Quantizes `db` with `bits` bits per dimension (1..16) into pages on
  /// the simulated disk. Cells are equi-width over each dimension's
  /// [min, max] range.
  VaFile(const Dataset& db, DiskSimulator* disk, unsigned bits = 8);

  /// Cardinality.
  size_t size() const { return size_; }
  /// Dimensionality.
  size_t dims() const { return dims_; }
  /// Bits per dimension.
  unsigned bits() const { return bits_; }
  /// Cells per dimension (2^bits).
  uint32_t cells() const { return cells_; }
  /// Number of pages the approximation file occupies.
  size_t num_pages() const { return file_.num_pages(); }

  /// Lower edge of cell `code` in dimension `dim`.
  Value CellLower(size_t dim, uint32_t code) const;
  /// Upper edge of cell `code` in dimension `dim`.
  Value CellUpper(size_t dim, uint32_t code) const;

  /// The cell code a coordinate quantizes to in `dim`.
  uint32_t Quantize(size_t dim, Value v) const;

  /// Opens an I/O accounting stream.
  size_t OpenStream() const;

  /// The simulator this file charges its I/O to (for page-budget
  /// accounting via QueryContext::ArmPages).
  const DiskSimulator* disk() const { return disk_; }

  /// Sequentially scans the approximation file on `stream`, invoking
  /// `fn(pid, codes)` for every point; `codes` has dims() entries.
  /// Stops at the first unreadable page and returns its error.
  Status ForEachApprox(
      size_t stream,
      const std::function<void(PointId, std::span<const uint32_t>)>& fn)
      const;

  /// As ForEachApprox, but `fn` returning false stops the scan early
  /// with an OK status — the cooperative early-exit the governance
  /// layer uses; no further pages are read.
  Status ForEachApproxWhile(
      size_t stream,
      const std::function<bool(PointId, std::span<const uint32_t>)>& fn)
      const;

 private:
  size_t size_;
  size_t dims_;
  unsigned bits_;
  uint32_t cells_;
  size_t row_bytes_;
  size_t rows_per_page_;
  DiskSimulator* disk_;
  PagedFile file_;
  std::vector<Value> dim_lo_;
  std::vector<Value> dim_width_;  // full range width per dimension
};

}  // namespace knmatch

#endif  // KNMATCH_VAFILE_VA_FILE_H_

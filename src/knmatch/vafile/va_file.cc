#include "knmatch/vafile/va_file.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace knmatch {

namespace {

/// Writes `bits` low bits of `code` into the bit stream at bit offset
/// `bit_pos`.
void PutBits(std::vector<std::byte>* out, size_t bit_pos, uint32_t code,
             unsigned bits) {
  for (unsigned b = 0; b < bits; ++b) {
    const size_t pos = bit_pos + b;
    const size_t byte = pos / 8;
    const unsigned shift = pos % 8;
    if (byte >= out->size()) out->resize(byte + 1, std::byte{0});
    if ((code >> b) & 1u) {
      (*out)[byte] |= std::byte{1} << shift;
    }
  }
}

/// Reads `bits` bits from the image at bit offset `bit_pos`.
uint32_t GetBits(std::span<const std::byte> in, size_t bit_pos,
                 unsigned bits) {
  uint32_t code = 0;
  for (unsigned b = 0; b < bits; ++b) {
    const size_t pos = bit_pos + b;
    const size_t byte = pos / 8;
    const unsigned shift = pos % 8;
    if ((static_cast<uint8_t>(in[byte]) >> shift) & 1u) {
      code |= 1u << b;
    }
  }
  return code;
}

}  // namespace

VaFile::VaFile(const Dataset& db, DiskSimulator* disk, unsigned bits)
    : size_(db.size()),
      dims_(db.dims()),
      bits_(bits),
      cells_(1u << bits),
      disk_(disk),
      file_(disk) {
  assert(bits >= 1 && bits <= 16);
  row_bytes_ = (dims_ * bits_ + 7) / 8;
  assert(row_bytes_ <= file_.payload_capacity());
  rows_per_page_ = file_.payload_capacity() / row_bytes_;

  // Per-dimension ranges for the equi-width grid.
  dim_lo_.assign(dims_, std::numeric_limits<Value>::infinity());
  dim_width_.assign(dims_, 0);
  std::vector<Value> dim_hi(dims_,
                            -std::numeric_limits<Value>::infinity());
  for (PointId pid = 0; pid < size_; ++pid) {
    auto p = db.point(pid);
    for (size_t dim = 0; dim < dims_; ++dim) {
      dim_lo_[dim] = std::min(dim_lo_[dim], p[dim]);
      dim_hi[dim] = std::max(dim_hi[dim], p[dim]);
    }
  }
  for (size_t dim = 0; dim < dims_; ++dim) {
    dim_width_[dim] = dim_hi[dim] - dim_lo_[dim];
  }

  // Quantize and serialize, page by page.
  std::vector<std::byte> image;
  image.reserve(file_.page_size());
  size_t rows_in_page = 0;
  for (PointId pid = 0; pid < size_; ++pid) {
    auto p = db.point(pid);
    const size_t row_base_bits = rows_in_page * row_bytes_ * 8;
    for (size_t dim = 0; dim < dims_; ++dim) {
      PutBits(&image, row_base_bits + dim * bits_, Quantize(dim, p[dim]),
              bits_);
    }
    // PutBits only grows the buffer as far as set bits reach; pad the
    // row to its full width so offsets stay aligned.
    image.resize((rows_in_page + 1) * row_bytes_, std::byte{0});
    if (++rows_in_page == rows_per_page_) {
      file_.AppendPage(image);
      image.clear();
      rows_in_page = 0;
    }
  }
  if (!image.empty()) file_.AppendPage(image);
}

Value VaFile::CellLower(size_t dim, uint32_t code) const {
  return dim_lo_[dim] +
         dim_width_[dim] * static_cast<Value>(code) / cells_;
}

Value VaFile::CellUpper(size_t dim, uint32_t code) const {
  return dim_lo_[dim] +
         dim_width_[dim] * static_cast<Value>(code + 1) / cells_;
}

uint32_t VaFile::Quantize(size_t dim, Value v) const {
  if (dim_width_[dim] <= 0) return 0;
  const Value frac = (v - dim_lo_[dim]) / dim_width_[dim];
  const auto code = static_cast<int64_t>(frac * cells_);
  return static_cast<uint32_t>(
      std::clamp<int64_t>(code, 0, cells_ - 1));
}

size_t VaFile::OpenStream() const { return disk_->OpenStream(); }

Status VaFile::ForEachApprox(
    size_t stream,
    const std::function<void(PointId, std::span<const uint32_t>)>& fn)
    const {
  return ForEachApproxWhile(
      stream, [&fn](PointId pid, std::span<const uint32_t> codes) {
        fn(pid, codes);
        return true;
      });
}

Status VaFile::ForEachApproxWhile(
    size_t stream,
    const std::function<bool(PointId, std::span<const uint32_t>)>& fn)
    const {
  std::vector<uint32_t> codes(dims_);
  PointId pid = 0;
  for (size_t page = 0; page < file_.num_pages(); ++page) {
    auto image = file_.ReadPage(stream, page);
    if (!image.ok()) return image.status();
    for (size_t row = 0; row < rows_per_page_ && pid < size_;
         ++row, ++pid) {
      const size_t row_base_bits = row * row_bytes_ * 8;
      for (size_t dim = 0; dim < dims_; ++dim) {
        codes[dim] =
            GetBits(image.value(), row_base_bits + dim * bits_, bits_);
      }
      if (!fn(pid, std::span<const uint32_t>(codes.data(), codes.size()))) {
        return Status::OK();
      }
    }
  }
  return Status::OK();
}

}  // namespace knmatch

#ifndef KNMATCH_COMMON_TOP_K_H_
#define KNMATCH_COMMON_TOP_K_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <vector>

namespace knmatch {

/// Keeps the k smallest items by a (score, tiebreak) key.
///
/// Used by every scan-based algorithm (naive k-n-match, kNN, DPF) to
/// maintain its running answer set. Backed by a max-heap of size <= k so
/// that insertion is O(log k). Ties are broken by the secondary key so
/// that all algorithms produce identical deterministic answers.
template <typename Item, typename Score, typename Tiebreak>
class BoundedTopK {
 public:
  struct Entry {
    Score score;
    Tiebreak tiebreak;
    Item item;
  };

  /// A top-k accumulator for the given k (> 0).
  explicit BoundedTopK(size_t k) : k_(k) { assert(k > 0); }

  /// Number of items currently held (<= k).
  size_t size() const { return heap_.size(); }
  /// True when k items are held.
  bool full() const { return heap_.size() == k_; }

  /// The current k-th smallest score; only valid when `full()`.
  Score threshold() const {
    assert(full());
    return heap_.front().score;
  }

  /// Worst (score, tiebreak) pair currently held; only valid when full.
  const Entry& worst() const {
    assert(full());
    return heap_.front();
  }

  /// Offers an item; keeps it iff it is among the k smallest seen so far.
  /// Returns true when the item was kept.
  bool Offer(Score score, Tiebreak tiebreak, Item item) {
    if (!full()) {
      heap_.push_back(Entry{score, tiebreak, std::move(item)});
      std::push_heap(heap_.begin(), heap_.end(), Less);
      return true;
    }
    const Entry& top = heap_.front();
    if (score > top.score ||
        (score == top.score && !(tiebreak < top.tiebreak))) {
      return false;
    }
    std::pop_heap(heap_.begin(), heap_.end(), Less);
    heap_.back() = Entry{score, tiebreak, std::move(item)};
    std::push_heap(heap_.begin(), heap_.end(), Less);
    return true;
  }

  /// Extracts all held entries sorted ascending by (score, tiebreak).
  /// The accumulator is left empty.
  std::vector<Entry> TakeSorted() {
    std::vector<Entry> out = std::move(heap_);
    heap_.clear();
    std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
      if (a.score != b.score) return a.score < b.score;
      return a.tiebreak < b.tiebreak;
    });
    return out;
  }

 private:
  // Max-heap ordering on (score, tiebreak): the "largest" (worst) entry
  // sits at the front.
  static bool Less(const Entry& a, const Entry& b) {
    if (a.score != b.score) return a.score < b.score;
    return a.tiebreak < b.tiebreak;
  }

  size_t k_;
  std::vector<Entry> heap_;
};

}  // namespace knmatch

#endif  // KNMATCH_COMMON_TOP_K_H_

#include "knmatch/common/dataset.h"

#include <cmath>
#include <unordered_set>

namespace knmatch {

Dataset::Dataset(Matrix points, std::vector<Label> labels)
    : points_(std::move(points)), labels_(std::move(labels)) {
  assert(labels_.empty() || labels_.size() == points_.rows());
}

PointId Dataset::Append(std::span<const Value> coords, Label label) {
  const bool was_labelled = labelled() || size() == 0;
  points_.AppendRow(coords);
  if (was_labelled && (label != kNoLabel || !labels_.empty())) {
    labels_.push_back(label);
  }
  return static_cast<PointId>(size() - 1);
}

size_t Dataset::num_classes() const {
  if (!labelled()) return 0;
  std::unordered_set<Label> distinct(labels_.begin(), labels_.end());
  return distinct.size();
}

Status Dataset::Validate() const {
  if (!labels_.empty() && labels_.size() != size()) {
    return Status::Internal("label count does not match cardinality");
  }
  for (const Value v : points_.data()) {
    if (!std::isfinite(v)) {
      return Status::Internal("dataset contains a non-finite value");
    }
  }
  return Status::OK();
}

}  // namespace knmatch

#ifndef KNMATCH_COMMON_STATS_H_
#define KNMATCH_COMMON_STATS_H_

#include <chrono>
#include <cstddef>
#include <vector>

namespace knmatch {

/// Wall-clock stopwatch used by the benchmark harnesses for the CPU
/// component of response times (the I/O component comes from the
/// DiskSimulator's model).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Simple accumulating summary of a sample (mean / min / max / stddev /
/// percentiles). Used to aggregate per-query measurements offline,
/// where exact interpolated percentiles matter; Percentile() sorts
/// lazily (a dirty flag caches the sorted order across reads). For
/// online monitoring quantiles — concurrent writers, bounded memory,
/// factor-of-2 accuracy — use obs::Histogram instead, which is what
/// the library's own latency metrics record into.
class Summary {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Number of observations.
  size_t count() const { return values_.size(); }
  /// Arithmetic mean (0 when empty).
  double Mean() const;
  /// Population standard deviation (0 when fewer than 2 observations).
  double Stddev() const;
  /// Smallest observation.
  double Min() const;
  /// Largest observation.
  double Max() const;
  /// Linear-interpolated percentile, p in [0, 100].
  double Percentile(double p) const;
  /// Sum of all observations.
  double Sum() const;

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = true;
  void EnsureSorted() const;
};

}  // namespace knmatch

#endif  // KNMATCH_COMMON_STATS_H_

#ifndef KNMATCH_COMMON_TYPES_H_
#define KNMATCH_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace knmatch {

/// Attribute value type. The paper normalizes all data to [0, 1]; we use
/// double precision throughout so that difference computations are exact
/// enough for tie-free comparisons in tests.
using Value = double;

/// Identifier of a point (row) in a dataset. The paper's datasets top out
/// at a few hundred thousand points; 32 bits is ample.
using PointId = uint32_t;

/// Identifier of a class label in a labelled dataset.
using Label = int32_t;

/// Sentinel for "no point".
inline constexpr PointId kInvalidPointId =
    std::numeric_limits<PointId>::max();

/// Sentinel label for unlabelled points.
inline constexpr Label kNoLabel = -1;

/// Positive infinity for `Value`; used by the AD algorithm for exhausted
/// cursor directions.
inline constexpr Value kInfValue = std::numeric_limits<Value>::infinity();

}  // namespace knmatch

#endif  // KNMATCH_COMMON_TYPES_H_

#include "knmatch/common/matrix.h"

#include <algorithm>
#include <limits>

namespace knmatch {

Matrix Matrix::FromRows(
    std::initializer_list<std::initializer_list<Value>> rows) {
  Matrix m;
  for (const auto& row : rows) {
    std::vector<Value> tmp(row);
    m.AppendRow(std::span<const Value>(tmp.data(), tmp.size()));
  }
  return m;
}

void Matrix::AppendRow(std::span<const Value> values) {
  if (empty() && rows_ == 0) {
    cols_ = values.size();
  }
  assert(values.size() == cols_ && "row length must match cols()");
  data_.insert(data_.end(), values.begin(), values.end());
  ++rows_;
}

std::vector<std::pair<Value, Value>> Matrix::NormalizeColumns() {
  std::vector<std::pair<Value, Value>> ranges(cols_);
  for (size_t c = 0; c < cols_; ++c) {
    Value lo = std::numeric_limits<Value>::infinity();
    Value hi = -std::numeric_limits<Value>::infinity();
    for (size_t r = 0; r < rows_; ++r) {
      lo = std::min(lo, at(r, c));
      hi = std::max(hi, at(r, c));
    }
    ranges[c] = {lo, hi};
    const Value width = hi - lo;
    for (size_t r = 0; r < rows_; ++r) {
      at(r, c) = width > 0 ? (at(r, c) - lo) / width : Value{0};
    }
  }
  return ranges;
}

}  // namespace knmatch

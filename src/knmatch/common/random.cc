#include "knmatch/common/random.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace knmatch {

namespace {

/// SplitMix64 step; used only for seeding.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * Uniform01();
}

uint64_t Rng::UniformInt(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

double Rng::Gaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller with guard against log(0).
  double u1 = Uniform01();
  while (u1 <= 1e-300) u1 = Uniform01();
  const double u2 = Uniform01();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = radius * std::sin(theta);
  have_cached_gaussian_ = true;
  return radius * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

double Rng::Exponential(double lambda) {
  assert(lambda > 0.0);
  double u = Uniform01();
  while (u <= 1e-300) u = Uniform01();
  return -std::log(u) / lambda;
}

bool Rng::Bernoulli(double p) { return Uniform01() < p; }

std::vector<uint32_t> Rng::Permutation(uint32_t n) {
  std::vector<uint32_t> perm(n);
  for (uint32_t i = 0; i < n; ++i) perm[i] = i;
  for (uint32_t i = n; i > 1; --i) {
    const uint32_t j = static_cast<uint32_t>(UniformInt(i));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

std::vector<uint32_t> Rng::SampleWithoutReplacement(uint32_t n,
                                                    uint32_t count) {
  assert(count <= n);
  // Floyd's algorithm would avoid the O(n) permutation, but dataset sizes
  // here are small enough that clarity wins.
  std::vector<uint32_t> perm = Permutation(n);
  perm.resize(count);
  return perm;
}

}  // namespace knmatch

#ifndef KNMATCH_COMMON_STATUS_H_
#define KNMATCH_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>

namespace knmatch {

/// Error categories used across the library. Modeled after the
/// status-code style used by storage engines: the library does not throw
/// exceptions across its public API; fallible operations return a
/// `Status` (or a `Result<T>`).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kFailedPrecondition,
  kInternal,
  /// Stored data is unrecoverably damaged (checksum mismatch, corrupt
  /// page). Retrying will not help; the damaged unit is quarantined.
  kDataLoss,
  /// A transient failure (read error, timeout, cancellation) that did
  /// not heal within the operation's retry budget. Retrying the whole
  /// operation later may succeed.
  kUnavailable,
  /// The query's wall-clock deadline passed while it was in flight (or
  /// before it could start). The work done so far is valid but
  /// incomplete; retrying with a larger deadline may succeed. Never a
  /// reason to fall back to a slower method.
  kDeadlineExceeded,
  /// The query exhausted an explicit resource budget (attributes
  /// retrieved, pages read, scratch memory). Retrying unchanged will
  /// exhaust it again — shrink the query (smaller k/n range) or raise
  /// the budget.
  kResourceExhausted,
};

/// A lightweight success-or-error value.
///
/// `Status` is cheap to copy in the success case (no allocation) and
/// carries a human-readable message in the error case.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Named constructors, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  /// True iff the status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The status code.
  StatusCode code() const { return code_; }

  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// Renders e.g. "InvalidArgument: k must be positive".
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + message_;
  }

  /// Statuses compare by code only: two errors of the same category are
  /// interchangeable for control flow even when their messages differ.
  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }
  friend bool operator!=(const Status& a, const Status& b) {
    return !(a == b);
  }

 private:
  static const char* CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk:
        return "OK";
      case StatusCode::kInvalidArgument:
        return "InvalidArgument";
      case StatusCode::kOutOfRange:
        return "OutOfRange";
      case StatusCode::kNotFound:
        return "NotFound";
      case StatusCode::kFailedPrecondition:
        return "FailedPrecondition";
      case StatusCode::kInternal:
        return "Internal";
      case StatusCode::kDataLoss:
        return "DataLoss";
      case StatusCode::kUnavailable:
        return "Unavailable";
      case StatusCode::kDeadlineExceeded:
        return "DeadlineExceeded";
      case StatusCode::kResourceExhausted:
        return "ResourceExhausted";
    }
    return "Unknown";
  }

  StatusCode code_;
  std::string message_;
};

/// A value-or-error pair: either holds a `T` (status OK) or an error
/// `Status`. Accessing the value of an errored `Result` asserts.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT

  /// Implicit construction from an error status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires an error status");
  }

  /// True iff a value is held.
  bool ok() const { return status_.ok(); }

  /// The status (OK when a value is held).
  const Status& status() const { return status_; }

  /// The held value. Requires `ok()`.
  const T& value() const& {
    assert(ok());
    return value_;
  }
  T& value() & {
    assert(ok());
    return value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace knmatch

#endif  // KNMATCH_COMMON_STATUS_H_

#include "knmatch/common/stats.h"

#include <algorithm>
#include <cmath>

namespace knmatch {

void Summary::Add(double x) {
  values_.push_back(x);
  sorted_ = false;
}

void Summary::EnsureSorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Summary::Sum() const {
  double s = 0;
  for (double v : values_) s += v;
  return s;
}

double Summary::Mean() const {
  return values_.empty() ? 0.0 : Sum() / static_cast<double>(values_.size());
}

double Summary::Stddev() const {
  if (values_.size() < 2) return 0.0;
  const double m = Mean();
  double acc = 0;
  for (double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size()));
}

double Summary::Min() const {
  EnsureSorted();
  return values_.empty() ? 0.0 : values_.front();
}

double Summary::Max() const {
  EnsureSorted();
  return values_.empty() ? 0.0 : values_.back();
}

double Summary::Percentile(double p) const {
  EnsureSorted();
  if (values_.empty()) return 0.0;
  if (values_.size() == 1) return values_[0];
  const double rank = (p / 100.0) * static_cast<double>(values_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

}  // namespace knmatch

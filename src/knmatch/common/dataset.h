#ifndef KNMATCH_COMMON_DATASET_H_
#define KNMATCH_COMMON_DATASET_H_

#include <span>
#include <string>
#include <vector>

#include "knmatch/common/matrix.h"
#include "knmatch/common/status.h"
#include "knmatch/common/types.h"

namespace knmatch {

/// A multi-dimensional point collection, optionally class-labelled.
///
/// This is the in-memory "database DB" of the paper: a set of
/// d-dimensional points, values normalized to [0, 1]. Labels are used
/// only by the class-stripping effectiveness protocol (Sec. 5.1.2) and
/// are never visible to the search algorithms.
class Dataset {
 public:
  Dataset() = default;

  /// Wraps a coordinate matrix; points are unlabelled.
  explicit Dataset(Matrix points) : points_(std::move(points)) {}

  /// Wraps a coordinate matrix with one label per row.
  Dataset(Matrix points, std::vector<Label> labels);

  /// Short human-readable name ("uniform-16d", "ionosphere-like", ...).
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Cardinality `c` — the number of points.
  size_t size() const { return points_.rows(); }
  /// Dimensionality `d`.
  size_t dims() const { return points_.cols(); }
  /// True iff every point carries a class label.
  bool labelled() const { return labels_.size() == size(); }

  /// The coordinates of point `pid`.
  std::span<const Value> point(PointId pid) const {
    return points_.row(pid);
  }
  /// One attribute: dimension `dim` of point `pid`.
  Value at(PointId pid, size_t dim) const { return points_.at(pid, dim); }

  /// The label of point `pid` (kNoLabel when unlabelled).
  Label label(PointId pid) const {
    return labelled() ? labels_[pid] : kNoLabel;
  }

  /// Number of distinct labels (0 for unlabelled datasets).
  size_t num_classes() const;

  /// The underlying matrix.
  const Matrix& matrix() const { return points_; }

  /// Min-max normalizes all coordinates to [0, 1] in place (the paper
  /// normalizes every dataset this way).
  void Normalize() { points_.NormalizeColumns(); }

  /// Appends a point; returns its id (the previous cardinality). The
  /// coordinate count must match dims() (or define it, when empty).
  /// Labelled datasets require a label; unlabelled ones ignore it.
  PointId Append(std::span<const Value> coords, Label label = kNoLabel);

  /// Validates invariants (labels length, finite values). Useful after
  /// deserialization or generation.
  Status Validate() const;

 private:
  std::string name_;
  Matrix points_;
  std::vector<Label> labels_;
};

}  // namespace knmatch

#endif  // KNMATCH_COMMON_DATASET_H_

#ifndef KNMATCH_COMMON_MATRIX_H_
#define KNMATCH_COMMON_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "knmatch/common/types.h"

namespace knmatch {

/// Dense row-major matrix of attribute values: `rows` points, each with
/// `cols` dimensions. This is the in-memory representation of a dataset's
/// coordinates; rows are points, columns are dimensions.
class Matrix {
 public:
  /// An empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// A rows x cols matrix, zero-initialized.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, Value{0}) {}

  /// Builds a matrix from row-major nested initializer lists; all rows
  /// must have the same length. Intended for tests and examples.
  static Matrix FromRows(
      std::initializer_list<std::initializer_list<Value>> rows);

  /// Number of points.
  size_t rows() const { return rows_; }
  /// Number of dimensions.
  size_t cols() const { return cols_; }
  /// True iff the matrix holds no values.
  bool empty() const { return data_.empty(); }

  /// Element access (point `r`, dimension `c`).
  Value& at(size_t r, size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  Value at(size_t r, size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// A view over row `r` (one point, `cols()` values).
  std::span<const Value> row(size_t r) const {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  std::span<Value> row(size_t r) {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  /// Raw row-major storage.
  const std::vector<Value>& data() const { return data_; }
  std::vector<Value>& data() { return data_; }

  /// Appends a row; the span length must equal `cols()` (or the matrix
  /// must be empty, in which case it defines `cols()`).
  void AppendRow(std::span<const Value> values);

  /// Rescales every column to [0, 1] by min-max normalization, in place.
  /// Constant columns map to 0. Returns per-column (min, max) pairs that
  /// were used, enabling queries to be normalized identically.
  std::vector<std::pair<Value, Value>> NormalizeColumns();

 private:
  size_t rows_;
  size_t cols_;
  std::vector<Value> data_;
};

}  // namespace knmatch

#endif  // KNMATCH_COMMON_MATRIX_H_

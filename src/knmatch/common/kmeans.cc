#include "knmatch/common/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "knmatch/common/random.h"

namespace knmatch {

namespace {

double SquaredDistance(std::span<const Value> a, std::span<const Value> b) {
  double sum = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    sum += diff * diff;
  }
  return sum;
}

}  // namespace

KMeansResult KMeans(const Dataset& db, size_t k, uint64_t seed,
                    size_t max_iterations) {
  KMeansResult result;
  const size_t c = db.size();
  const size_t d = db.dims();
  k = std::min(k, c);
  if (k == 0 || c == 0) return result;

  Rng rng(seed);

  // k-means++ seeding: first center uniform, then proportional to the
  // squared distance to the nearest chosen center.
  result.centers = Matrix(k, d);
  std::vector<double> min_sq(c, std::numeric_limits<double>::infinity());
  {
    const auto first = static_cast<PointId>(rng.UniformInt(c));
    auto p = db.point(first);
    std::copy(p.begin(), p.end(), result.centers.row(0).begin());
  }
  for (size_t center = 1; center < k; ++center) {
    double total = 0;
    for (PointId pid = 0; pid < c; ++pid) {
      min_sq[pid] = std::min(
          min_sq[pid],
          SquaredDistance(db.point(pid), result.centers.row(center - 1)));
      total += min_sq[pid];
    }
    PointId chosen = 0;
    if (total > 0) {
      const double pick = rng.Uniform(0.0, total);
      double acc = 0;
      for (PointId pid = 0; pid < c; ++pid) {
        acc += min_sq[pid];
        if (acc >= pick) {
          chosen = pid;
          break;
        }
      }
    } else {
      chosen = static_cast<PointId>(rng.UniformInt(c));
    }
    auto p = db.point(chosen);
    std::copy(p.begin(), p.end(), result.centers.row(center).begin());
  }

  // Lloyd iterations.
  result.assignment.assign(c, 0);
  std::vector<double> sums(k * d);
  std::vector<size_t> counts(k);
  for (result.iterations = 0; result.iterations < max_iterations;
       ++result.iterations) {
    bool changed = false;
    result.inertia = 0;
    for (PointId pid = 0; pid < c; ++pid) {
      double best = std::numeric_limits<double>::infinity();
      uint32_t best_center = 0;
      for (uint32_t center = 0; center < k; ++center) {
        const double sq =
            SquaredDistance(db.point(pid), result.centers.row(center));
        if (sq < best) {
          best = sq;
          best_center = center;
        }
      }
      if (result.assignment[pid] != best_center) {
        result.assignment[pid] = best_center;
        changed = true;
      }
      result.inertia += best;
    }
    if (!changed && result.iterations > 0) break;

    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), size_t{0});
    for (PointId pid = 0; pid < c; ++pid) {
      const uint32_t center = result.assignment[pid];
      auto p = db.point(pid);
      for (size_t dim = 0; dim < d; ++dim) {
        sums[center * d + dim] += p[dim];
      }
      ++counts[center];
    }
    for (uint32_t center = 0; center < k; ++center) {
      if (counts[center] == 0) continue;  // keep an empty center put
      for (size_t dim = 0; dim < d; ++dim) {
        result.centers.at(center, dim) =
            sums[center * d + dim] / static_cast<double>(counts[center]);
      }
    }
  }
  return result;
}

}  // namespace knmatch

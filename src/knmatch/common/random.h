#ifndef KNMATCH_COMMON_RANDOM_H_
#define KNMATCH_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

#include "knmatch/common/types.h"

namespace knmatch {

/// Deterministic, fast pseudo-random generator (xoshiro256** seeded via
/// SplitMix64). Every experiment in the repository is reproducible from
/// a seed; we do not use std::mt19937 so that generated datasets are
/// stable across standard-library implementations.
class Rng {
 public:
  /// Seeds the generator. Two `Rng`s with the same seed produce the same
  /// sequence.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform01();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal variate (Box-Muller; caches the second value).
  double Gaussian();

  /// Normal variate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Exponential variate with the given rate lambda (> 0).
  double Exponential(double lambda);

  /// True with probability p.
  bool Bernoulli(double p);

  /// A random permutation of {0, 1, ..., n-1} (Fisher-Yates).
  std::vector<uint32_t> Permutation(uint32_t n);

  /// Samples `count` distinct indices from [0, n) without replacement.
  /// Requires count <= n.
  std::vector<uint32_t> SampleWithoutReplacement(uint32_t n, uint32_t count);

 private:
  uint64_t state_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace knmatch

#endif  // KNMATCH_COMMON_RANDOM_H_

#ifndef KNMATCH_COMMON_KMEANS_H_
#define KNMATCH_COMMON_KMEANS_H_

#include <cstdint>
#include <vector>

#include "knmatch/common/dataset.h"

namespace knmatch {

/// Result of a k-means run.
struct KMeansResult {
  /// k rows of d cluster centers.
  Matrix centers;
  /// Cluster index per input point.
  std::vector<uint32_t> assignment;
  /// Lloyd iterations actually executed.
  size_t iterations = 0;
  /// Sum of squared distances to assigned centers.
  double inertia = 0;
};

/// Lloyd's k-means with k-means++ seeding, under the Euclidean metric.
/// Deterministic per seed. Used to pick iDistance reference points and
/// available as a general utility. `k` is clamped to the cardinality.
KMeansResult KMeans(const Dataset& db, size_t k, uint64_t seed,
                    size_t max_iterations = 25);

}  // namespace knmatch

#endif  // KNMATCH_COMMON_KMEANS_H_

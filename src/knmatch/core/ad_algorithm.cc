#include "knmatch/core/ad_algorithm.h"

#include <utility>

#include "knmatch/core/ad_engine.h"
#include "knmatch/core/nmatch.h"
#include "knmatch/core/nmatch_naive.h"

namespace knmatch {

Status ValidateAdWeights(std::span<const Value> weights, size_t dims) {
  if (weights.empty()) return Status::OK();
  if (weights.size() != dims) {
    return Status::InvalidArgument(
        "weights must be empty or have one entry per dimension");
  }
  for (const Value w : weights) {
    if (!(w > 0)) {
      return Status::InvalidArgument(
          "AD weights must be strictly positive (a zero weight would "
          "make an entire column pop at difference 0; model an ignored "
          "dimension by dropping it instead)");
    }
  }
  return Status::OK();
}

Result<KnMatchResult> AdSearcher::KnMatch(
    std::span<const Value> query, size_t n, size_t k,
    std::span<const Value> weights, internal::AdScratch* scratch) const {
  Status s =
      ValidateMatchParams(db_.size(), db_.dims(), query.size(), n, n, k);
  if (!s.ok()) return s;
  s = ValidateAdWeights(weights, db_.dims());
  if (!s.ok()) return s;

  internal::MemoryColumnAccessor acc(columns_);
  internal::AdOutput out =
      internal::RunAdSearch(acc, query, n, n, k, weights, scratch);

  KnMatchResult result;
  result.matches = std::move(out.per_n_sets[0]);
  result.attributes_retrieved = out.attributes_retrieved;
  return result;
}

Result<FrequentKnMatchResult> AdSearcher::FrequentKnMatch(
    std::span<const Value> query, size_t n0, size_t n1, size_t k,
    std::span<const Value> weights, internal::AdScratch* scratch) const {
  Status s =
      ValidateMatchParams(db_.size(), db_.dims(), query.size(), n0, n1, k);
  if (!s.ok()) return s;
  s = ValidateAdWeights(weights, db_.dims());
  if (!s.ok()) return s;

  internal::MemoryColumnAccessor acc(columns_);
  internal::AdOutput out =
      internal::RunAdSearch(acc, query, n0, n1, k, weights, scratch);

  FrequentKnMatchResult result;
  result.per_n_sets = std::move(out.per_n_sets);
  result.attributes_retrieved = out.attributes_retrieved;
  RankByFrequency(k, &result);
  return result;
}

}  // namespace knmatch

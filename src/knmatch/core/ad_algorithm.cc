#include "knmatch/core/ad_algorithm.h"

#include <chrono>
#include <utility>

#include "knmatch/core/ad_engine.h"
#include "knmatch/core/ad_warm.h"
#include "knmatch/core/nmatch.h"
#include "knmatch/core/query_context.h"
#include "knmatch/core/nmatch_naive.h"
#include "knmatch/obs/catalog.h"
#include "knmatch/obs/trace.h"

namespace knmatch {

namespace {

// One registry interaction per query: the AD engine tallies locally and
// the totals land here, which is what keeps instrumentation overhead on
// the in-memory hot path under the bench_obs_overhead budget.
void RecordMemoryAdQuery(const internal::AdOutput& out,
                         obs::Counter* queries, obs::Histogram* latency,
                         std::chrono::steady_clock::time_point start) {
  if (!obs::Enabled()) return;
  const obs::Catalog& cat = obs::Cat();
  queries->Add();
  cat.attrs_ad_memory->Add(out.attributes_retrieved);
  cat.pops_ad_memory->Add(out.heap_pops);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  latency->Observe(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
          .count()));
}

}  // namespace

Status ValidateAdWeights(std::span<const Value> weights, size_t dims) {
  if (weights.empty()) return Status::OK();
  if (weights.size() != dims) {
    return Status::InvalidArgument(
        "weights must be empty or have one entry per dimension");
  }
  for (const Value w : weights) {
    if (!(w > 0)) {
      return Status::InvalidArgument(
          "AD weights must be strictly positive (a zero weight would "
          "make an entire column pop at difference 0; model an ignored "
          "dimension by dropping it instead)");
    }
  }
  return Status::OK();
}

Result<KnMatchResult> AdSearcher::KnMatch(
    std::span<const Value> query, size_t n, size_t k,
    std::span<const Value> weights, internal::AdScratch* scratch,
    QueryContext* ctx) const {
  Status s =
      ValidateMatchParams(db_.size(), db_.dims(), query.size(), n, n, k);
  if (!s.ok()) return s;
  s = ValidateAdWeights(weights, db_.dims());
  if (!s.ok()) return s;

  // Memory queries read no pages; re-arm so a context reused after a
  // disk query does not count that query's reads against this one.
  if (ctx != nullptr) ctx->ArmPages(nullptr);
  const auto start = std::chrono::steady_clock::now();
  internal::MemoryColumnAccessor acc(columns_);
  internal::AdOutput out =
      internal::RunAdSearch(acc, query, n, n, k, weights, scratch, ctx);
  RecordMemoryAdQuery(out, obs::Cat().queries_knmatch,
                      obs::Cat().latency_knmatch, start);
  if (ctx != nullptr && ctx->tripped()) return ctx->trip_status();

  KnMatchResult result;
  result.matches = std::move(out.per_n_sets[0]);
  result.attributes_retrieved = out.attributes_retrieved;
  return result;
}

std::optional<KnMatchResult> AdSearcher::KnMatchSeeded(
    std::span<const Value> query, size_t n, size_t k,
    std::span<const Value> weights, std::span<const PointId> seeds,
    internal::AdScratch* scratch) const {
  const auto start = std::chrono::steady_clock::now();
  std::optional<internal::AdOutput> out = internal::RunAdSearchSeeded(
      db_, columns_, query, n, n, k, weights, seeds, scratch);
  if (!out.has_value()) return std::nullopt;
  RecordMemoryAdQuery(*out, obs::Cat().queries_knmatch,
                      obs::Cat().latency_knmatch, start);
  KnMatchResult result;
  result.matches = std::move(out->per_n_sets[0]);
  result.attributes_retrieved = out->attributes_retrieved;
  return result;
}

std::optional<FrequentKnMatchResult> AdSearcher::FrequentKnMatchSeeded(
    std::span<const Value> query, size_t n0, size_t n1, size_t k,
    std::span<const Value> weights, std::span<const PointId> seeds,
    internal::AdScratch* scratch) const {
  const auto start = std::chrono::steady_clock::now();
  std::optional<internal::AdOutput> out = internal::RunAdSearchSeeded(
      db_, columns_, query, n0, n1, k, weights, seeds, scratch);
  if (!out.has_value()) return std::nullopt;
  FrequentKnMatchResult result;
  result.per_n_sets = std::move(out->per_n_sets);
  result.attributes_retrieved = out->attributes_retrieved;
  {
    obs::TraceSpan span(obs::Phase::kRank);
    RankByFrequency(k, &result);
  }
  RecordMemoryAdQuery(*out, obs::Cat().queries_fknmatch,
                      obs::Cat().latency_fknmatch, start);
  return result;
}

Result<FrequentKnMatchResult> AdSearcher::FrequentKnMatch(
    std::span<const Value> query, size_t n0, size_t n1, size_t k,
    std::span<const Value> weights, internal::AdScratch* scratch,
    QueryContext* ctx) const {
  Status s =
      ValidateMatchParams(db_.size(), db_.dims(), query.size(), n0, n1, k);
  if (!s.ok()) return s;
  s = ValidateAdWeights(weights, db_.dims());
  if (!s.ok()) return s;

  if (ctx != nullptr) ctx->ArmPages(nullptr);
  const auto start = std::chrono::steady_clock::now();
  internal::MemoryColumnAccessor acc(columns_);
  internal::AdOutput out =
      internal::RunAdSearch(acc, query, n0, n1, k, weights, scratch, ctx);
  if (ctx != nullptr && ctx->tripped()) {
    RecordMemoryAdQuery(out, obs::Cat().queries_fknmatch,
                        obs::Cat().latency_fknmatch, start);
    return ctx->trip_status();
  }

  FrequentKnMatchResult result;
  result.per_n_sets = std::move(out.per_n_sets);
  result.attributes_retrieved = out.attributes_retrieved;
  {
    obs::TraceSpan span(obs::Phase::kRank);
    RankByFrequency(k, &result);
  }
  RecordMemoryAdQuery(out, obs::Cat().queries_fknmatch,
                      obs::Cat().latency_fknmatch, start);
  return result;
}

}  // namespace knmatch

#include "knmatch/core/answer_merge.h"

#include <algorithm>
#include <cstdint>

#include "knmatch/core/nmatch_naive.h"

namespace knmatch::internal {

namespace {

/// Canonical answer order: ascending (difference, pid). Strict-weak.
bool CanonicalLess(const Neighbor& a, const Neighbor& b) {
  if (a.distance != b.distance) return a.distance < b.distance;
  return a.pid < b.pid;
}

/// One shard's read position in the k-way merge.
struct Cursor {
  const std::vector<Neighbor>* list;
  size_t idx;

  const Neighbor& head() const { return (*list)[idx]; }
};

/// Min-heap comparator over cursor heads (std::*_heap are max-heaps,
/// so the comparison is inverted).
bool CursorGreater(const Cursor& a, const Cursor& b) {
  return CanonicalLess(b.head(), a.head());
}

}  // namespace

std::vector<Neighbor> MergeAnswerLists(
    std::span<const std::vector<Neighbor>* const> lists, size_t k) {
  // The kernels emit completions in ascending difference order, but
  // equal differences complete in pop order, not pid order. Canonical
  // inputs make the merge's boundary selection deterministic; sorting
  // an already-sorted list is one O(len) verification pass.
  std::vector<std::vector<Neighbor>> resorted;
  std::vector<Cursor> heap;
  heap.reserve(lists.size());
  for (const std::vector<Neighbor>* list : lists) {
    if (list == nullptr || list->empty()) continue;
    if (!std::is_sorted(list->begin(), list->end(), CanonicalLess)) {
      resorted.reserve(lists.size());
      resorted.push_back(*list);
      std::sort(resorted.back().begin(), resorted.back().end(),
                CanonicalLess);
      list = &resorted.back();
    }
    heap.push_back(Cursor{list, 0});
  }

  // The global n-match-difference heap: one cursor per shard list,
  // keyed by its head's (difference, pid); k pops yield the k globally
  // smallest entries in canonical order.
  std::make_heap(heap.begin(), heap.end(), CursorGreater);
  std::vector<Neighbor> merged;
  merged.reserve(k);
  while (merged.size() < k && !heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), CursorGreater);
    Cursor& top = heap.back();
    merged.push_back(top.head());
    if (++top.idx < top.list->size()) {
      std::push_heap(heap.begin(), heap.end(), CursorGreater);
    } else {
      heap.pop_back();
    }
  }
  return merged;
}

FrequentKnMatchResult MergeFrequentPartials(
    std::span<const FrequentKnMatchResult* const> partials, size_t levels,
    size_t k) {
  FrequentKnMatchResult out;
  out.per_n_sets.resize(levels);
  std::vector<const std::vector<Neighbor>*> level_lists;
  level_lists.reserve(partials.size());
  for (size_t level = 0; level < levels; ++level) {
    level_lists.clear();
    for (const FrequentKnMatchResult* partial : partials) {
      if (partial != nullptr && level < partial->per_n_sets.size()) {
        level_lists.push_back(&partial->per_n_sets[level]);
      }
    }
    out.per_n_sets[level] = MergeAnswerLists(level_lists, k);
  }
  for (const FrequentKnMatchResult* partial : partials) {
    if (partial != nullptr) {
      out.attributes_retrieved += partial->attributes_retrieved;
    }
  }
  RankByFrequency(k, &out);
  return out;
}

}  // namespace knmatch::internal

#ifndef KNMATCH_CORE_AD_ENGINE_H_
#define KNMATCH_CORE_AD_ENGINE_H_

#include <cassert>
#include <cstdint>
#include <optional>
#include <queue>
#include <span>
#include <vector>

#include "knmatch/common/types.h"
#include "knmatch/core/match_types.h"
#include "knmatch/core/sorted_columns.h"

namespace knmatch::internal {

/// Output of one AD search: the k-n-match answer sets for every n in
/// [n0, n1] (each capped at k entries, in ascending order of n-match
/// difference — the order in which points completed n appearances), and
/// the number of individual attributes retrieved.
struct AdOutput {
  std::vector<std::vector<Neighbor>> per_n_sets;
  uint64_t attributes_retrieved = 0;
};

/// The stepping core of the AD (Ascending Difference) algorithm —
/// the g[] cursor array of the paper's Figures 4/6, generalized over
/// the column source so the same machinery serves the in-memory,
/// column-store, and B+-tree implementations, and exposed one pop at a
/// time so both the batch searches and the streaming iterator build on
/// it.
///
/// `Accessor` must provide:
///   size_t dims() const;                 // dimensionality d
///   size_t column_size() const;          // cardinality c
///   // idx-th smallest entry of `dim`; `slot` identifies the reading
///   // cursor (2*dim for the downward direction, 2*dim+1 for upward)
///   // so disk accessors can charge the right I/O stream.
///   ColumnEntry ReadEntry(size_t dim, size_t idx, uint32_t slot);
///   size_t LocateLowerBound(size_t dim, Value v);   // first idx >= v
///
/// `ReadEntry` calls are the retrieved attributes (the paper's cost
/// metric); the engine counts them. Locating the query's position
/// (binary search / index traversal) is charged by the accessor, not
/// counted as an attribute retrieval, matching the paper's model where
/// each sorted system supports positioned sorted access.
///
/// The engine maintains the paper's g[] array of 2d direction cursors
/// (even slot 2i = downward within dimension i, odd slot 2i+1 = upward)
/// as a min-heap keyed on (difference, slot); the slot component makes
/// pop order — and therefore the answer — fully deterministic.
///
/// Optional positive per-dimension weights scale each difference before
/// it enters the heap; scaling by a per-dimension constant preserves
/// each cursor's ascending order, so correctness is unaffected.
template <typename Accessor>
class AdEngine {
 public:
  /// One popped attribute: the point it belongs to, its (weighted)
  /// difference to the query in the popped dimension, and how many
  /// times the point has now been seen.
  struct Pop {
    PointId pid;
    Value dif;
    uint16_t appearances;
  };

  AdEngine(Accessor& accessor, std::span<const Value> query,
           std::span<const Value> weights = {})
      : acc_(accessor),
        query_(query),
        weights_(weights),
        c_(accessor.column_size()),
        appear_(accessor.column_size(), 0),
        next_idx_(2 * accessor.dims(), kExhausted) {
    const size_t d = acc_.dims();
    assert(query.size() == d);
    assert(weights.empty() || weights.size() == d);
    for (size_t dim = 0; dim < d; ++dim) {
      const size_t pos = acc_.LocateLowerBound(dim, query_[dim]);
      const auto down = static_cast<uint32_t>(2 * dim);
      const uint32_t up = down + 1;
      next_idx_[down] = pos == 0 ? kExhausted : pos - 1;
      next_idx_[up] = pos == c_ ? kExhausted : pos;
      ReadAndPush(down);
      ReadAndPush(up);
    }
  }

  /// Pops the next attribute in ascending difference order; nullopt
  /// once every attribute of every column has been consumed.
  std::optional<Pop> Step() {
    if (g_.empty()) return std::nullopt;
    const HeapItem item = g_.top();
    g_.pop();
    const PointId pid = item.entry.pid;
    const uint16_t a = ++appear_[pid];
    ReadAndPush(item.slot);
    return Pop{pid, item.dif, a};
  }

  /// Attributes retrieved so far (including cursor read-ahead).
  uint64_t attributes_retrieved() const { return attributes_retrieved_; }

 private:
  static constexpr size_t kExhausted = static_cast<size_t>(-1);

  struct HeapItem {
    Value dif;
    uint32_t slot;
    ColumnEntry entry;
  };
  struct HeapGreater {
    bool operator()(const HeapItem& a, const HeapItem& b) const {
      if (a.dif != b.dif) return a.dif > b.dif;
      return a.slot > b.slot;
    }
  };

  void ReadAndPush(uint32_t slot) {
    const size_t idx = next_idx_[slot];
    if (idx == kExhausted) return;
    const size_t dim = slot / 2;
    const ColumnEntry e = acc_.ReadEntry(dim, idx, slot);
    ++attributes_retrieved_;
    Value dif =
        slot % 2 == 0 ? query_[dim] - e.value : e.value - query_[dim];
    if (!weights_.empty()) dif *= weights_[dim];
    g_.push(HeapItem{dif, slot, e});
    if (slot % 2 == 0) {
      next_idx_[slot] = idx == 0 ? kExhausted : idx - 1;
    } else {
      next_idx_[slot] = idx + 1 == c_ ? kExhausted : idx + 1;
    }
  }

  Accessor& acc_;
  std::span<const Value> query_;
  std::span<const Value> weights_;
  size_t c_;
  uint64_t attributes_retrieved_ = 0;
  std::vector<uint16_t> appear_;
  std::vector<size_t> next_idx_;
  std::priority_queue<HeapItem, std::vector<HeapItem>, HeapGreater> g_;
};

/// Batch driver: algorithms KNMatchAD (n0 == n1) and FKNMatchAD of the
/// paper, on top of the stepping engine. Runs until the k-n1-match
/// answer set is complete; by then every k-n-match set for n in
/// [n0, n1] is complete as well (Sec. 3.2).
template <typename Accessor>
AdOutput RunAdSearch(Accessor& acc, std::span<const Value> query, size_t n0,
                     size_t n1, size_t k,
                     std::span<const Value> weights = {}) {
  assert(n0 >= 1 && n0 <= n1 && n1 <= acc.dims());
  assert(k >= 1 && k <= acc.column_size());

  AdOutput out;
  out.per_n_sets.resize(n1 - n0 + 1);
  AdEngine<Accessor> engine(acc, query, weights);

  auto& terminal_set = out.per_n_sets[n1 - n0];
  while (terminal_set.size() < k) {
    std::optional<typename AdEngine<Accessor>::Pop> pop = engine.Step();
    assert(pop.has_value() && "columns exhausted before k points matched");
    const uint16_t a = pop->appearances;
    if (a >= n0 && a <= n1) {
      auto& set = out.per_n_sets[a - n0];
      // Definition 4 counts appearances in the *k*-n-match answer sets,
      // so each per-n set is capped at the first k completions.
      if (set.size() < k) {
        set.push_back(Neighbor{pop->pid, pop->dif});
      }
    }
  }
  out.attributes_retrieved = engine.attributes_retrieved();
  return out;
}

/// Accessor over in-memory SortedColumns.
class MemoryColumnAccessor {
 public:
  explicit MemoryColumnAccessor(const SortedColumns& columns)
      : columns_(columns) {}

  size_t dims() const { return columns_.dims(); }
  size_t column_size() const { return columns_.size(); }
  ColumnEntry ReadEntry(size_t dim, size_t idx, uint32_t /*slot*/) const {
    return columns_.column(dim)[idx];
  }
  size_t LocateLowerBound(size_t dim, Value v) const {
    return columns_.LowerBound(dim, v);
  }

 private:
  const SortedColumns& columns_;
};

}  // namespace knmatch::internal

#endif  // KNMATCH_CORE_AD_ENGINE_H_

#ifndef KNMATCH_CORE_AD_ENGINE_H_
#define KNMATCH_CORE_AD_ENGINE_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "knmatch/common/status.h"
#include "knmatch/common/types.h"
#include "knmatch/core/ad_kernel.h"
#include "knmatch/core/ad_scratch.h"
#include "knmatch/core/match_types.h"
#include "knmatch/core/query_context.h"
#include "knmatch/core/sorted_columns.h"
#include "knmatch/obs/catalog.h"
#include "knmatch/obs/trace.h"

namespace knmatch::internal {

/// Detected on accessors that can fail (disk-backed ones): a non-OK
/// status() after any ReadEntry/LocateLowerBound marks every value the
/// accessor returned since as garbage, and the engine stops stepping.
/// In-memory accessors omit status() and pay nothing for the checks.
template <typename A>
concept StatusReportingAccessor = KernelStatusReportingAccessor<A>;

/// Output of one AD search: the k-n-match answer sets for every n in
/// [n0, n1] (each capped at k entries, in ascending order of n-match
/// difference — the order in which points completed n appearances), and
/// the number of individual attributes retrieved.
struct AdOutput {
  std::vector<std::vector<Neighbor>> per_n_sets;
  uint64_t attributes_retrieved = 0;
  /// Attributes consumed in ascending difference order (one per
  /// delivered pop; the name predates the loser-tree kernel).
  uint64_t heap_pops = 0;
  /// Loser-tree leaf-to-root replays (== winner runs); 0 for the
  /// reference heap driver.
  uint64_t tree_replays = 0;
};

/// The REFERENCE stepping engine of the AD (Ascending Difference)
/// algorithm: the paper's g[] cursor array (Figures 4/6) as a flat
/// binary min-heap over (difference, slot), advanced one pop-plus-push
/// at a time. The production hot path is AdKernel (core/ad_kernel.h),
/// which must pop in exactly this engine's order; this implementation
/// is kept deliberately simple and is what the differential tests and
/// the naive-comparison property tests trust.
///
/// `Accessor` must provide:
///   size_t dims() const;                 // dimensionality d
///   size_t column_size() const;          // cardinality c
///   // idx-th smallest entry of `dim`; `slot` identifies the reading
///   // cursor (2*dim for the downward direction, 2*dim+1 for upward)
///   // so disk accessors can charge the right I/O stream.
///   ColumnEntry ReadEntry(size_t dim, size_t idx, uint32_t slot);
///   size_t LocateLowerBound(size_t dim, Value v);   // first idx >= v
///
/// An accessor may additionally provide
///   size_t column_length(size_t dim) const;
/// when its columns are ragged — shorter than the cardinality because
/// some points lack a value in some dimension (missing attributes,
/// heterogeneous sources). Without it every column is assumed to hold
/// exactly `column_size()` entries. Accessors whose pid space is
/// sparse (ids are not 0..c-1, e.g. live-ingest snapshots after
/// erases) may provide
///   size_t pid_bound() const;   // exclusive upper bound on any pid
/// so the per-point appearance table is sized for the id range rather
/// than the cardinality; without it the two are assumed equal.
///
/// `ReadEntry` calls are the retrieved attributes (the paper's cost
/// metric); the engine counts them. Locating the query's position
/// (binary search / index traversal) is charged by the accessor, not
/// counted as an attribute retrieval, matching the paper's model where
/// each sorted system supports positioned sorted access.
///
/// The heap and the per-point appearance counters live in an AdScratch
/// arena: pass one in to reuse its allocations (and O(1)-reset visit
/// table) across queries on the same thread, or pass none and the
/// engine owns a private arena.
///
/// Optional positive per-dimension weights scale each difference before
/// it enters the heap; scaling by a per-dimension constant preserves
/// each cursor's ascending order, so correctness is unaffected.
template <typename Accessor>
class AdEngine {
 public:
  /// One popped attribute: the point it belongs to, its (weighted)
  /// difference to the query in the popped dimension, and how many
  /// times the point has now been seen.
  struct Pop {
    PointId pid;
    Value dif;
    uint16_t appearances;
  };

  AdEngine(Accessor& accessor, std::span<const Value> query,
           std::span<const Value> weights = {}, AdScratch* scratch = nullptr)
      : acc_(accessor),
        query_(query),
        weights_(weights),
        c_(accessor.column_size()),
        scratch_(scratch != nullptr ? scratch : &owned_scratch_) {
    const size_t d = acc_.dims();
    assert(query.size() == d);
    assert(weights.empty() || weights.size() == d);
    // Accessors over sparse pid spaces (live-ingest snapshots) expose a
    // pid_bound() above the cardinality; size the appearance table for
    // it up front so BumpAppearances never grows mid-search.
    size_t table = c_;
    if constexpr (requires { acc_.pid_bound(); }) {
      table = std::max<size_t>(table, acc_.pid_bound());
    }
    scratch_->Prepare(table, d);
    g_ = &scratch_->heap();
    next_idx_ = scratch_->next_idx();
    for (size_t dim = 0; dim < d; ++dim) {
      const size_t len = ColumnLength(dim);
      size_t pos = acc_.LocateLowerBound(dim, query_[dim]);
      if (AccessorFailed()) return;
      if (pos > len) pos = len;
      const auto down = static_cast<uint32_t>(2 * dim);
      const uint32_t up = down + 1;
      next_idx_[down] = pos == 0 ? kExhausted : pos - 1;
      next_idx_[up] = pos == len ? kExhausted : pos;
      ReadAndPush(down);
      ReadAndPush(up);
      if (AccessorFailed()) return;
    }
  }

  /// Pops the next attribute in ascending difference order; nullopt
  /// once every attribute of every column has been consumed — or once
  /// the accessor reports a failure (check its status()).
  std::optional<Pop> Step() {
    if (AccessorFailed()) return std::nullopt;
    if (g_->empty()) return std::nullopt;
    const AdHeapItem item = g_->top();
    g_->Pop();
    const PointId pid = item.entry.pid;
    const uint16_t a = scratch_->BumpAppearances(pid);
    ReadAndPush(item.slot);
    if (AccessorFailed()) return std::nullopt;
    return Pop{pid, item.dif, a};
  }

  /// Attributes retrieved so far (including cursor read-ahead).
  uint64_t attributes_retrieved() const { return attributes_retrieved_; }

 private:
  static constexpr size_t kExhausted = static_cast<size_t>(-1);

  size_t ColumnLength(size_t dim) const {
    if constexpr (requires(const Accessor& a, size_t i) {
                    { a.column_length(i) } -> std::convertible_to<size_t>;
                  }) {
      return acc_.column_length(dim);
    } else {
      (void)dim;
      return c_;
    }
  }

  bool AccessorFailed() const {
    if constexpr (StatusReportingAccessor<Accessor>) {
      return !acc_.status().ok();
    } else {
      return false;
    }
  }

  void ReadAndPush(uint32_t slot) {
    const size_t idx = next_idx_[slot];
    if (idx == kExhausted) return;
    const size_t dim = slot / 2;
    const ColumnEntry e = acc_.ReadEntry(dim, idx, slot);
    if (AccessorFailed()) return;  // e is garbage; stop consuming
    ++attributes_retrieved_;
    Value dif =
        slot % 2 == 0 ? query_[dim] - e.value : e.value - query_[dim];
    if (!weights_.empty()) dif *= weights_[dim];
    g_->Push(AdHeapItem{dif, slot, e});
    if (slot % 2 == 0) {
      next_idx_[slot] = idx == 0 ? kExhausted : idx - 1;
    } else {
      next_idx_[slot] = idx + 1 == ColumnLength(dim) ? kExhausted : idx + 1;
    }
  }

  Accessor& acc_;
  std::span<const Value> query_;
  std::span<const Value> weights_;
  size_t c_;
  uint64_t attributes_retrieved_ = 0;
  AdScratch owned_scratch_;  // used when the caller supplies no arena
  AdScratch* scratch_;
  AdCursorHeap* g_ = nullptr;
  size_t* next_idx_ = nullptr;
};

/// Shared answer-set bookkeeping for the AD drivers: routes one pop
/// into the per-n sets and reports whether the search must continue.
class AdAnswerBuilder {
 public:
  AdAnswerBuilder(AdOutput* out, size_t n0, size_t n1, size_t k)
      : out_(out), n0_(n0), n1_(n1), k_(k), terminal_left_(k) {}

  // The pop counter and the terminal set's remaining capacity live in
  // members rather than behind out_: Consume runs once per pop and the
  // escaped AdOutput pointer would force a store + vector-size reload
  // on every call. The caller must Flush once, after the drive loop.
  void Flush() { out_->heap_pops += pops_; }

  /// Pops consumed so far (read at governance stride boundaries; the
  /// caller still owes a Flush).
  uint64_t pops() const { return pops_; }

  /// Accounts one pop; false once the terminal set is complete.
  bool Consume(PointId pid, Value dif, uint16_t appearances) {
    ++pops_;
    if (appearances >= n0_ && appearances <= n1_) {
      auto& set = out_->per_n_sets[appearances - n0_];
      // Definition 4 counts appearances in the *k*-n-match answer
      // sets, so each per-n set is capped at the first k completions.
      if (set.size() < k_) {
        set.push_back(Neighbor{pid, dif});
        // Only n1-appearance completions fill the terminal set.
        if (appearances == n1_) --terminal_left_;
      }
    }
    return terminal_left_ != 0;
  }

 private:
  AdOutput* out_;
  size_t n0_, n1_, k_;
  size_t terminal_left_;
  uint64_t pops_ = 0;
};

/// Batch driver: algorithms KNMatchAD (n0 == n1) and FKNMatchAD of the
/// paper, on top of the block-ascending kernel. Runs until the
/// k-n1-match answer set is complete; by then every k-n-match set for n
/// in [n0, n1] is complete as well (Sec. 3.2).
///
/// If the columns exhaust before k points complete n1 appearances —
/// possible only with ragged column sources, where some points lack a
/// value in some dimensions — the partial answer sets accumulated so
/// far are returned: they are exactly the matches supported by the
/// attributes that exist.
///
/// A governed run (`ctx` non-null with any limit armed) rechecks the
/// context once per kGovernanceStride pops — the ungoverned path keeps
/// the exact sink it always had, so governance costs it nothing. On a
/// trip the ascend stops, the best-so-far answer sets move into the
/// context's GovernanceTrip, and the returned AdOutput's sets are
/// empty; callers surface ctx->trip_status().
template <typename Accessor>
AdOutput RunAdSearch(Accessor& acc, std::span<const Value> query, size_t n0,
                     size_t n1, size_t k,
                     std::span<const Value> weights = {},
                     AdScratch* scratch = nullptr,
                     QueryContext* ctx = nullptr) {
  assert(n0 >= 1 && n0 <= n1 && n1 <= acc.dims());
  assert(k >= 1 && k <= acc.column_size());

  AdOutput out;
  const bool governed = ctx != nullptr && ctx->governed();
  size_t table_points = acc.column_size();
  if constexpr (requires { acc.pid_bound(); }) {
    table_points = std::max<size_t>(table_points, acc.pid_bound());
  }
  if (governed && !ctx->AdmitScratch(AdScratch::EstimateFootprintBytes(
                      table_points, acc.dims()))) {
    out.per_n_sets.resize(n1 - n0 + 1);
    return out;  // refused at admission; ctx latched the trip status
  }
  out.per_n_sets.resize(n1 - n0 + 1);
  for (auto& set : out.per_n_sets) set.reserve(k);
  if (scratch == nullptr) {
    // Callers without an arena (the sequential engine entry points) get
    // a per-thread one: a fresh scratch per query would re-fault an
    // O(cardinality) appearance table every time, which costs more than
    // a small per-n query's entire ascend. Thread-local keeps the const
    // query methods safely concurrent; the retained footprint is one
    // table sized to the largest dataset the thread has queried.
    static thread_local AdScratch tls_scratch;
    scratch = &tls_scratch;
  }
  std::optional<AdKernel<Accessor>> kernel;
  {
    obs::TraceSpan span(obs::Phase::kLocate);
    kernel.emplace(acc, query, weights, scratch);
  }

  {
    obs::TraceSpan span(obs::Phase::kAscend);
    AdAnswerBuilder answers(&out, n0, n1, k);
    if (governed) {
      // The stride countdown lives in the sink; only every 256th pop
      // pays the clock read and counter refresh, which keeps the
      // governed lane within the <2% A/B budget
      // (bench_governance_overhead).
      uint32_t countdown = kGovernanceStride;
      kernel->Drive([&](PointId pid, Value dif, uint16_t a) {
        if (!answers.Consume(pid, dif, a)) return false;
        if (--countdown == 0) {
          countdown = kGovernanceStride;
          return ctx->Recheck(kernel->attributes_retrieved(),
                              answers.pops());
        }
        return true;
      });
    } else {
      kernel->Drive([&answers](PointId pid, Value dif, uint16_t a) {
        return answers.Consume(pid, dif, a);
      });
    }
    answers.Flush();
  }
  out.attributes_retrieved = kernel->attributes_retrieved();
  out.tree_replays = kernel->tree_replays();
  if (governed && ctx->tripped()) {
    // Unwind cleanly with the partial result: final progress totals
    // plus the best-so-far sets (exact prefixes of the untripped
    // answer). The returned output keeps its shape but goes empty —
    // the caller returns the trip status, not a value.
    ctx->trip().pops = out.heap_pops;
    ctx->trip().attributes_retrieved = out.attributes_retrieved;
    ctx->StorePartialSets(&out.per_n_sets);
    out.per_n_sets.assign(n1 - n0 + 1, {});
  }
  if (obs::Enabled()) {
    obs::Cat().ad_tree_replays->Add(out.tree_replays);
    obs::Cat().ad_run_length->MergeBuckets(kernel->run_length_buckets(),
                                           kernel->run_entries());
  }
  if (obs::QueryTrace* trace = obs::CurrentTrace()) {
    trace->counters().attributes_retrieved += out.attributes_retrieved;
    trace->counters().heap_pops += out.heap_pops;
  }
  return out;
}

/// The same driver on the reference heap engine, pop by pop. Exists so
/// differential tests can hold the kernel to the reference's answers
/// (and so a suspected kernel bug can be cross-checked quickly);
/// production entry points all use RunAdSearch.
template <typename Accessor>
AdOutput RunAdSearchReference(Accessor& acc, std::span<const Value> query,
                              size_t n0, size_t n1, size_t k,
                              std::span<const Value> weights = {},
                              AdScratch* scratch = nullptr) {
  assert(n0 >= 1 && n0 <= n1 && n1 <= acc.dims());
  assert(k >= 1 && k <= acc.column_size());

  AdOutput out;
  out.per_n_sets.resize(n1 - n0 + 1);
  for (auto& set : out.per_n_sets) set.reserve(k);
  AdEngine<Accessor> engine(acc, query, weights, scratch);
  AdAnswerBuilder answers(&out, n0, n1, k);
  for (;;) {
    std::optional<typename AdEngine<Accessor>::Pop> pop = engine.Step();
    if (!pop.has_value()) break;  // exhausted: return the partial sets
    if (!answers.Consume(pop->pid, pop->dif, pop->appearances)) break;
  }
  answers.Flush();
  out.attributes_retrieved = engine.attributes_retrieved();
  return out;
}

/// Accessor over in-memory SortedColumns (SoA: parallel values/pids
/// arrays per dimension). ReadRun serves the kernel's buffer refills
/// straight out of the column arrays.
class MemoryColumnAccessor {
 public:
  explicit MemoryColumnAccessor(const SortedColumns& columns)
      : columns_(columns) {}

  size_t dims() const { return columns_.dims(); }
  size_t column_size() const { return columns_.size(); }
  ColumnEntry ReadEntry(size_t dim, size_t idx, uint32_t /*slot*/) const {
    return columns_.entry(dim, idx);
  }
  /// Direct column access (DirectColumnAccessor): the kernel walks
  /// these spans in place instead of buffering block reads.
  std::span<const Value> values(size_t dim) const {
    return columns_.values(dim);
  }
  std::span<const PointId> pids(size_t dim) const {
    return columns_.pids(dim);
  }
  /// Kernel block read: copies `len` entries walking away from the
  /// query (descending indices for even slots, ascending for odd) into
  /// the caller's SoA buffers. Always serves the full request — memory
  /// has no page boundaries.
  size_t ReadRun(size_t dim, size_t idx, size_t len, uint32_t slot,
                 Value* values, PointId* pids) const {
    const Value* v = columns_.values(dim).data();
    const PointId* p = columns_.pids(dim).data();
    if (slot % 2 == 0) {
      for (size_t i = 0; i < len; ++i) {
        values[i] = v[idx - i];
        pids[i] = p[idx - i];
      }
    } else {
      std::copy_n(v + idx, len, values);
      std::copy_n(p + idx, len, pids);
    }
    return len;
  }
  size_t LocateLowerBound(size_t dim, Value v) const {
    return columns_.LowerBound(dim, v);
  }

 private:
  const SortedColumns& columns_;
};

}  // namespace knmatch::internal

#endif  // KNMATCH_CORE_AD_ENGINE_H_

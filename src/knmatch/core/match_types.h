#ifndef KNMATCH_CORE_MATCH_TYPES_H_
#define KNMATCH_CORE_MATCH_TYPES_H_

#include <cstdint>
#include <vector>

#include "knmatch/common/types.h"

namespace knmatch {

/// One answer of a (k-)n-match or kNN query: a point and its score.
/// For k-n-match queries `distance` is the point's n-match difference
/// (the epsilon at which it matched); for kNN it is the metric distance.
struct Neighbor {
  PointId pid = kInvalidPointId;
  Value distance = 0;

  friend bool operator==(const Neighbor& a, const Neighbor& b) {
    return a.pid == b.pid && a.distance == b.distance;
  }
};

/// Result of a k-n-match query (Definition 3 of the paper).
struct KnMatchResult {
  /// The k matches, ascending by (n-match difference, point id).
  std::vector<Neighbor> matches;
  /// Number of individual attributes retrieved to answer the query —
  /// the cost metric of the paper's multiple-system IR model. Scan-based
  /// algorithms report c*d; the AD algorithm reports its optimal count.
  uint64_t attributes_retrieved = 0;
};

/// Result of a frequent k-n-match query (Definition 4).
struct FrequentKnMatchResult {
  /// The k points appearing most frequently across the k-n-match answer
  /// sets for n in [n0, n1]; descending by (frequency, then ascending
  /// point id).
  std::vector<Neighbor> matches;  // distance field = best n-match diff seen
  /// matches[i].pid appeared in `frequencies[i]` of the answer sets.
  std::vector<uint32_t> frequencies;
  /// The underlying k-n-match answer sets; index 0 corresponds to n0.
  /// Each is capped at k entries, ascending by n-match difference.
  std::vector<std::vector<Neighbor>> per_n_sets;
  /// Cost metric, as in KnMatchResult.
  uint64_t attributes_retrieved = 0;
};

}  // namespace knmatch

#endif  // KNMATCH_CORE_MATCH_TYPES_H_

#include "knmatch/core/nmatch_naive.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "knmatch/common/top_k.h"
#include "knmatch/core/nmatch.h"

namespace knmatch {

Result<KnMatchResult> KnMatchNaive(const Dataset& db,
                                   std::span<const Value> query, size_t n,
                                   size_t k) {
  Status s = ValidateMatchParams(db.size(), db.dims(), query.size(), n, n, k);
  if (!s.ok()) return s;

  BoundedTopK<PointId, Value, PointId> top(k);
  std::vector<Value> diffs;
  for (PointId pid = 0; pid < db.size(); ++pid) {
    SortedAbsDifferences(db.point(pid), query, &diffs);
    top.Offer(diffs[n - 1], pid, pid);
  }

  KnMatchResult result;
  for (auto& e : top.TakeSorted()) {
    result.matches.push_back(Neighbor{e.item, e.score});
  }
  result.attributes_retrieved =
      static_cast<uint64_t>(db.size()) * db.dims();
  return result;
}

Result<FrequentKnMatchResult> FrequentKnMatchNaive(
    const Dataset& db, std::span<const Value> query, size_t n0, size_t n1,
    size_t k) {
  Status s =
      ValidateMatchParams(db.size(), db.dims(), query.size(), n0, n1, k);
  if (!s.ok()) return s;

  using Accumulator = BoundedTopK<PointId, Value, PointId>;
  std::vector<Accumulator> per_n;
  per_n.reserve(n1 - n0 + 1);
  for (size_t n = n0; n <= n1; ++n) per_n.emplace_back(k);

  std::vector<Value> diffs;
  for (PointId pid = 0; pid < db.size(); ++pid) {
    SortedAbsDifferences(db.point(pid), query, &diffs);
    for (size_t n = n0; n <= n1; ++n) {
      per_n[n - n0].Offer(diffs[n - 1], pid, pid);
    }
  }

  FrequentKnMatchResult result;
  result.per_n_sets.resize(per_n.size());
  for (size_t i = 0; i < per_n.size(); ++i) {
    for (auto& e : per_n[i].TakeSorted()) {
      result.per_n_sets[i].push_back(Neighbor{e.item, e.score});
    }
  }
  result.attributes_retrieved =
      static_cast<uint64_t>(db.size()) * db.dims();
  RankByFrequency(k, &result);
  return result;
}

void RankByFrequency(size_t k, FrequentKnMatchResult* result) {
  struct Tally {
    uint32_t count = 0;
    Value best_diff = kInfValue;
  };
  std::unordered_map<PointId, Tally> tallies;
  for (const auto& set : result->per_n_sets) {
    for (const Neighbor& nb : set) {
      Tally& t = tallies[nb.pid];
      ++t.count;
      t.best_diff = std::min(t.best_diff, nb.distance);
    }
  }

  struct Row {
    PointId pid;
    uint32_t count;
    Value best_diff;
  };
  std::vector<Row> rows;
  rows.reserve(tallies.size());
  for (const auto& [pid, t] : tallies) {
    rows.push_back(Row{pid, t.count, t.best_diff});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.count != b.count) return a.count > b.count;
    if (a.best_diff != b.best_diff) return a.best_diff < b.best_diff;
    return a.pid < b.pid;
  });
  if (rows.size() > k) rows.resize(k);

  result->matches.clear();
  result->frequencies.clear();
  for (const Row& r : rows) {
    result->matches.push_back(Neighbor{r.pid, r.best_diff});
    result->frequencies.push_back(r.count);
  }
}

}  // namespace knmatch

#ifndef KNMATCH_CORE_AD_STREAM_H_
#define KNMATCH_CORE_AD_STREAM_H_

#include <optional>
#include <span>
#include <vector>

#include "knmatch/core/ad_engine.h"
#include "knmatch/core/ad_kernel.h"
#include "knmatch/core/match_types.h"
#include "knmatch/core/sorted_columns.h"

namespace knmatch {

/// Incremental n-match reporting: yields the 1st, 2nd, 3rd, ...
/// n-match of a query in ascending n-match-difference order, retrieving
/// attributes lazily. Useful when the consumer does not know k up
/// front (result-set browsing, top-k with early user cancellation) —
/// stopping after k results has retrieved exactly what KNMatchAD would
/// have.
///
/// The stream is single-pass and pinned to the columns it reads (not
/// copyable or movable). Construction requires 1 <= n <= dims and a
/// query of matching dimensionality (checked by assertion; use
/// ValidateMatchParams for untrusted input).
class AdMatchStream {
 public:
  AdMatchStream(const SortedColumns& columns, std::span<const Value> query,
                size_t n, std::span<const Value> weights = {})
      : query_(query.begin(), query.end()),
        weights_(weights.begin(), weights.end()),
        n_(n),
        accessor_(columns),
        engine_(accessor_, query_, weights_) {
    assert(n >= 1 && n <= columns.dims());
    assert(query.size() == columns.dims());
  }

  AdMatchStream(const AdMatchStream&) = delete;
  AdMatchStream& operator=(const AdMatchStream&) = delete;

  /// The next n-match, or nullopt once all points have been reported.
  std::optional<Neighbor> Next() {
    for (;;) {
      std::optional<
          internal::AdKernel<internal::MemoryColumnAccessor>::Pop>
          pop = engine_.Step();
      if (!pop.has_value()) return std::nullopt;
      if (pop->appearances == n_) {
        ++yielded_;
        return Neighbor{pop->pid, pop->dif};
      }
    }
  }

  /// Attributes retrieved so far.
  uint64_t attributes_retrieved() const {
    return engine_.attributes_retrieved();
  }

  /// Matches yielded so far.
  size_t yielded() const { return yielded_; }

 private:
  std::vector<Value> query_;
  std::vector<Value> weights_;
  size_t n_;
  size_t yielded_ = 0;
  internal::MemoryColumnAccessor accessor_;
  internal::AdKernel<internal::MemoryColumnAccessor> engine_;
};

}  // namespace knmatch

#endif  // KNMATCH_CORE_AD_STREAM_H_

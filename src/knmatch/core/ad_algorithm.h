#ifndef KNMATCH_CORE_AD_ALGORITHM_H_
#define KNMATCH_CORE_AD_ALGORITHM_H_

#include <optional>
#include <span>

#include "knmatch/common/dataset.h"
#include "knmatch/common/status.h"
#include "knmatch/core/match_types.h"
#include "knmatch/core/sorted_columns.h"

namespace knmatch {

class QueryContext;

namespace internal {
class AdScratch;
}  // namespace internal

/// Validates optional per-dimension AD weights: either empty or one
/// strictly positive value per dimension. Shared by the single-query
/// and batch entry points.
Status ValidateAdWeights(std::span<const Value> weights, size_t dims);

/// In-memory AD (Ascending Difference) searcher — the paper's optimal
/// algorithms KNMatchAD and FKNMatchAD over per-dimension sorted
/// columns.
///
/// Construction sorts every dimension once (O(d c log c)); each query
/// then retrieves attributes in ascending order of their difference to
/// the query and stops as early as correctness allows — provably the
/// minimum number of attribute retrievals (Theorems 3.2 / 3.3).
///
/// Example:
/// ```
/// AdSearcher searcher(db);
/// auto r = searcher.FrequentKnMatch(query, /*n0=*/4, /*n1=*/db.dims(),
///                                   /*k=*/10);
/// if (r.ok()) { ... r.value().matches ... }
/// ```
class AdSearcher {
 public:
  /// Builds the sorted-column organization for `db`. The dataset must
  /// outlive the searcher.
  explicit AdSearcher(const Dataset& db)
      : db_(db), columns_(db) {}

  /// Algorithm KNMatchAD (Fig. 4): the k points with smallest n-match
  /// difference to `query`, in ascending difference order.
  ///
  /// Optional `weights` (one strictly positive value per dimension)
  /// scale the per-dimension differences before the n-th-smallest
  /// selection — the weighted extension of the matching model. Scaling
  /// each column's differences by a positive constant preserves their
  /// ascending order, so the AD algorithm's correctness and optimality
  /// carry over unchanged.
  ///
  /// Optional `scratch` reuses a caller-owned working arena (appearance
  /// table, cursor heap) across queries — the answer is identical; only
  /// per-query setup cost changes. A scratch must not be shared by
  /// concurrent queries; the batch executor keeps one per worker.
  ///
  /// Optional `ctx` governs the query (deadline, cancellation,
  /// budgets): on a trip the search unwinds and returns the context's
  /// typed trip status, with the partial result in ctx->trip().
  Result<KnMatchResult> KnMatch(std::span<const Value> query, size_t n,
                                size_t k,
                                std::span<const Value> weights = {},
                                internal::AdScratch* scratch = nullptr,
                                QueryContext* ctx = nullptr) const;

  /// Algorithm FKNMatchAD (Fig. 6): the k points appearing most often in
  /// the k-n-match answer sets for n in [n0, n1]. `weights`, `scratch`
  /// and `ctx` as above.
  Result<FrequentKnMatchResult> FrequentKnMatch(
      std::span<const Value> query, size_t n0, size_t n1, size_t k,
      std::span<const Value> weights = {},
      internal::AdScratch* scratch = nullptr,
      QueryContext* ctx = nullptr) const;

  /// Warm-started KNMatchAD: `seeds` (candidate answer pids from a
  /// nearby cached query) let the search skip the kernel's threshold
  /// discovery via the seeded range-count path (see core/ad_warm.h).
  /// Returns nullopt when the seeded path declines — degenerate seeds,
  /// a tripped scan budget, or a difference tie that could expose cold
  /// pop order — in which case the caller must run KnMatch cold. A
  /// returned result is bit-identical to the cold one.
  std::optional<KnMatchResult> KnMatchSeeded(
      std::span<const Value> query, size_t n, size_t k,
      std::span<const Value> weights, std::span<const PointId> seeds,
      internal::AdScratch* scratch = nullptr) const;

  /// Warm-started FKNMatchAD; same contract as KnMatchSeeded.
  std::optional<FrequentKnMatchResult> FrequentKnMatchSeeded(
      std::span<const Value> query, size_t n0, size_t n1, size_t k,
      std::span<const Value> weights, std::span<const PointId> seeds,
      internal::AdScratch* scratch = nullptr) const;

  /// The underlying sorted columns (exposed for tests and tools).
  const SortedColumns& columns() const { return columns_; }

 private:
  const Dataset& db_;
  SortedColumns columns_;
};

}  // namespace knmatch

#endif  // KNMATCH_CORE_AD_ALGORITHM_H_

#ifndef KNMATCH_CORE_AD_SCRATCH_H_
#define KNMATCH_CORE_AD_SCRATCH_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "knmatch/common/types.h"
#include "knmatch/core/sorted_columns.h"

namespace knmatch::internal {

/// Entries the block-ascending kernel buffers ahead per direction
/// cursor. Bounded so a disk accessor's run read never spans more than
/// it can serve from one page, and small enough that 2d buffers stay
/// cache-resident (64 entries = 512 B of values per cursor).
inline constexpr size_t kAdRunBlock = 64;

/// One attribute sitting in the AD cursor front: its (weighted)
/// difference to the query, the direction cursor it came from, and the
/// column entry itself. Factored out of AdEngine so the scratch arena
/// can own the storage without depending on the accessor type.
struct AdHeapItem {
  Value dif = 0;
  uint32_t slot = 0;
  ColumnEntry entry;
};

/// Fixed-capacity flat binary min-heap over (difference, slot) — the
/// g[] cursor front of the AD algorithm, as used by the reference
/// AdEngine. Each of the 2d direction cursors has at most one
/// outstanding item in the front, so capacity 2d is exact: storage is
/// reserved once per query shape and the pop loop never allocates.
/// Keyed identically to the previous std::priority_queue (difference,
/// then slot), so pop order — and therefore every answer — is
/// unchanged.
class AdCursorHeap {
 public:
  /// Empties the heap and guarantees room for `capacity` items.
  void Reset(size_t capacity) {
    size_ = 0;
    if (items_.size() < capacity) items_.resize(capacity);
  }

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  const AdHeapItem& top() const {
    assert(size_ > 0);
    return items_[0];
  }

  void Push(const AdHeapItem& item) {
    assert(size_ < items_.size() && "heap capacity is one item per cursor");
    size_t i = size_++;
    while (i > 0) {
      const size_t parent = (i - 1) / 2;
      if (!Before(item, items_[parent])) break;
      items_[i] = items_[parent];
      i = parent;
    }
    items_[i] = item;
  }

  void Pop() {
    assert(size_ > 0);
    const AdHeapItem moved = items_[--size_];
    if (size_ == 0) return;
    size_t i = 0;
    for (;;) {
      size_t child = 2 * i + 1;
      if (child >= size_) break;
      if (child + 1 < size_ && Before(items_[child + 1], items_[child])) {
        ++child;
      }
      if (!Before(items_[child], moved)) break;
      items_[i] = items_[child];
      i = child;
    }
    items_[i] = moved;
  }

 private:
  static bool Before(const AdHeapItem& a, const AdHeapItem& b) {
    if (a.dif != b.dif) return a.dif < b.dif;
    return a.slot < b.slot;
  }

  std::vector<AdHeapItem> items_;
  size_t size_ = 0;
};

/// Tournament (loser) tree over the 2d direction cursors, keyed on
/// (difference, slot) exactly like AdCursorHeap — the slot tie-break
/// keeps selection a total order, so the sequence of winners is
/// identical to the heap's pop sequence. The difference is the cost of
/// advancing: where a binary heap pays a pop (sift-down) plus a push
/// (sift-up), the loser tree replays one leaf-to-root path — about half
/// the comparisons, no item moves, and the path is the same every time
/// a cursor wins, so it stays hot in cache.
///
/// Keys live outside the tree (the kernel's cur_difs array); the tree
/// stores only cursor indices. Exhausted cursors carry key kInfValue
/// and simply lose every match against live cursors; the kernel stops
/// once the overall winner is exhausted. (Attribute values are finite —
/// the paper normalizes data to [0, 1] — so an infinite key can only
/// mean exhaustion.)
class AdLoserTree {
 public:
  /// Re-shapes for `m` >= 2 cursors and rebuilds from `difs[0..m)`.
  void Build(size_t m, const Value* difs) {
    assert(m >= 2);
    m_ = static_cast<uint32_t>(m);
    if (tree_.size() < m) tree_.resize(m);
    std::fill(tree_.begin(), tree_.begin() + m, kNone);
    for (uint32_t s = 0; s < m_; ++s) Seed(s, difs);
  }

  /// The cursor with the smallest (difference, slot) key.
  uint32_t winner() const { return tree_[0]; }

  /// Re-runs the matches on `slot`'s leaf-to-root path after its key
  /// changed (it was the winner and advanced). One pass, O(log 2d).
  void Replay(uint32_t slot, const Value* difs) {
    uint32_t w = slot;
    for (uint32_t node = (slot + m_) >> 1; node >= 1; node >>= 1) {
      if (Before(tree_[node], w, difs)) std::swap(w, tree_[node]);
    }
    tree_[0] = w;
  }

  /// The runner-up: the smallest key among all cursors other than the
  /// current winner `w`. The second-best cursor must have lost its
  /// match against the champion directly (anything that lost elsewhere
  /// lost to a cursor smaller than itself), so it is the minimum over
  /// the losers stored on the champion's leaf-to-root path.
  uint32_t RunnerUp(uint32_t w, const Value* difs) const {
    uint32_t ru = kNone;
    for (uint32_t node = (w + m_) >> 1; node >= 1; node >>= 1) {
      const uint32_t loser = tree_[node];
      if (ru == kNone || Before(loser, ru, difs)) ru = loser;
    }
    return ru;
  }

  static constexpr uint32_t kNone = 0xFFFFFFFFu;

 private:
  /// (difs[a], a) < (difs[b], b); kNone loses to everything.
  bool Before(uint32_t a, uint32_t b, const Value* difs) const {
    if (a == kNone) return false;
    if (b == kNone) return true;
    if (difs[a] != difs[b]) return difs[a] < difs[b];
    return a < b;
  }

  /// Initial insertion of leaf `s`: walk up; park at the first empty
  /// node, play at occupied ones (winner continues, loser stays). Every
  /// internal node meets exactly two contenders — one per child subtree
  /// — so after all m seeds the tree is a complete tournament.
  void Seed(uint32_t s, const Value* difs) {
    uint32_t w = s;
    for (uint32_t node = (s + m_) >> 1; node >= 1; node >>= 1) {
      if (tree_[node] == kNone) {
        tree_[node] = w;
        return;
      }
      if (Before(tree_[node], w, difs)) std::swap(w, tree_[node]);
    }
    tree_[0] = w;
  }

  uint32_t m_ = 0;
  /// tree_[0] = overall winner; tree_[1..m) = loser parked at that
  /// internal node (heap-shaped: leaf s sits under node (s + m) / 2).
  std::vector<uint32_t> tree_;
};

/// Reusable per-query working state for the AD engines: the appearance
/// counters, the 2d cursor positions, the cursor-front heap (reference
/// engine), and the loser tree + SoA cursor state + run read-ahead
/// buffers (block-ascending kernel).
///
/// A fresh AdEngine used to zero-initialize an O(cardinality) `appear_`
/// vector per query — per-query setup cost that dwarfs the attribute
/// retrievals the paper optimizes once queries are cheap and frequent.
/// The scratch replaces it with an epoch-stamped visit table: each
/// Prepare() bumps a 16-bit epoch, and a counter is treated as zero
/// until its stamp matches the current epoch. Reset is O(1); the O(c)
/// fill happens only on first use, growth, or epoch wrap (every 2^16
/// queries).
///
/// A scratch is single-threaded state: share one per worker thread,
/// never across concurrent queries. Any cardinality/dimensionality is
/// accepted per Prepare(), so one scratch serves heterogeneous
/// datasets back to back.
class AdScratch {
 public:
  /// What Prepare(cardinality, dims) would make this scratch hold, in
  /// bytes — the governance layer's scratch-memory admission check
  /// (QueryContext::AdmitScratch) compares this against the budget
  /// BEFORE any allocation happens. Mirrors Prepare's sizing: the
  /// appearance table dominates (4 bytes per point); everything else
  /// is O(d).
  static size_t EstimateFootprintBytes(size_t cardinality, size_t dims) {
    const size_t slots = 2 * dims;
    size_t bytes = cardinality * sizeof(uint32_t);  // appearance table
    // Per-slot cursor state: next_idx, cur_dif, cur_pid, buf_pos,
    // buf_len, col_values, col_pids, col_len.
    bytes += slots * (2 * sizeof(size_t) + sizeof(Value) + sizeof(PointId) +
                      2 * sizeof(uint32_t) + sizeof(const Value*) +
                      sizeof(const PointId*));
    // Read-ahead buffers (SoA), heap items, loser-tree nodes, pair
    // minima.
    bytes += slots * kAdRunBlock * (sizeof(Value) + sizeof(PointId));
    bytes += slots * (sizeof(AdHeapItem) + sizeof(uint32_t));
    bytes += dims * sizeof(Value);
    return bytes;
  }

  /// Readies the scratch for a query over `cardinality` points and
  /// `dims` dimensions. O(1) amortized.
  void Prepare(size_t cardinality, size_t dims) {
    // A point appears once per dimension across the two direction
    // cursors, so 16 bits of count never saturate for any practical d.
    assert(dims < (size_t{1} << 16));
    epoch_ = (epoch_ + 1) & kStampMask;
    if (cardinality > appear_.size() || epoch_ == 0) {
      appear_.assign(std::max(cardinality, appear_.size()), 0);
      epoch_ = 1;
    }
    // cur_dif_ and pair_min_ are over-allocated to a multiple of four
    // so the kernel's SIMD winner scan can read whole vectors; the
    // kernel parks kInfValue in the pad lanes, which lose every
    // comparison.
    const size_t slots = 2 * dims;
    const size_t padded = (slots + 3) & ~size_t{3};
    const size_t padded_pairs = (dims + 3) & ~size_t{3};
    if (next_idx_.size() < slots) {
      next_idx_.resize(slots);
      cur_dif_.resize(padded);
      cur_pid_.resize(slots);
      buf_pos_.resize(slots);
      buf_len_.resize(slots);
      buf_values_.resize(slots * kAdRunBlock);
      buf_pids_.resize(slots * kAdRunBlock);
      col_values_.resize(slots);
      col_pids_.resize(slots);
      col_len_.resize(slots);
      pair_min_.resize(padded_pairs);
    }
    heap_.Reset(slots);
  }

  /// Increments and returns the appearance count of `pid` for the
  /// current query (1 on first sighting).
  ///
  /// Stamp and count share one packed 4-byte slot on purpose: every pop
  /// of the ascend loop lands here with an effectively random pid, so
  /// the table is the loop's dominant source of cache misses. Splitting
  /// the fields across two arrays would touch two random lines per pop;
  /// packed (stamp in the high 16 bits, count in the low 16), it is one
  /// line, and the table is half the size an 8-byte slot would make it
  /// — 16 cache lines' worth of counters per line fetched.
  uint16_t BumpAppearances(PointId pid) {
    if (pid >= appear_.size()) {
      // Sparse pid spaces (live ingest after erases) can carry ids past
      // the cardinality Prepare() sized for; grow geometrically so the
      // branch stays predictable. Fresh cells are zero-stamped, which
      // never matches the current epoch, so they read as count zero.
      appear_.resize(std::max<size_t>(pid + 1, appear_.size() * 2), 0);
    }
    uint32_t v = appear_[pid];
    if ((v >> 16) != epoch_) v = epoch_ << 16;
    ++v;
    appear_[pid] = v;
    return static_cast<uint16_t>(v);
  }

  /// Hints the cache that `pid`'s appearance slot will be bumped soon.
  /// The block kernel calls this for every pid it buffers at refill
  /// time, so the miss is (mostly) resolved by the time the entry pops.
  void PrefetchAppearances(PointId pid) const {
#if defined(__GNUC__) || defined(__clang__)
    if (pid < appear_.size()) __builtin_prefetch(&appear_[pid], 1, 2);
#else
    (void)pid;
#endif
  }

  /// The cursor-front heap (valid until the next Prepare).
  AdCursorHeap& heap() { return heap_; }
  /// The loser tree (valid until the next Prepare).
  AdLoserTree& loser_tree() { return tree_; }

  // Kernel cursor state, all sized 2d by Prepare() and valid until the
  // next Prepare(). SoA: the ascend loop compares cur_difs alone.
  size_t* next_idx() { return next_idx_.data(); }
  Value* cur_difs() { return cur_dif_.data(); }
  PointId* cur_pids() { return cur_pid_.data(); }
  uint32_t* buf_pos() { return buf_pos_.data(); }
  uint32_t* buf_len() { return buf_len_.data(); }
  /// Read-ahead buffers, kAdRunBlock entries per slot.
  Value* buf_values(uint32_t slot) {
    return buf_values_.data() + size_t{slot} * kAdRunBlock;
  }
  PointId* buf_pids(uint32_t slot) {
    return buf_pids_.data() + size_t{slot} * kAdRunBlock;
  }
  /// Per-slot column base pointers and lengths, cached once per query
  /// by the kernel's direct (zero-copy) path so an advance is two
  /// indexed loads rather than a walk of the accessor's containers.
  const Value** col_values() { return col_values_.data(); }
  const PointId** col_pids() { return col_pids_.data(); }
  size_t* col_len() { return col_len_.data(); }
  /// Per-dimension min(down cursor dif, up cursor dif), maintained by
  /// the kernel's scan path so winner selection scans d doubles, not
  /// 2d. kInfValue-padded to a multiple of four like cur_difs.
  Value* pair_mins() { return pair_min_.data(); }

 private:
  /// The epoch stamp is 16 bits wide (the high half of a packed
  /// appearance slot), so it cycles every 2^16 Prepare() calls; the
  /// wrap re-zeroes the table, which keeps "stamp != epoch_" meaning
  /// "not seen this query" exact across the cycle.
  static constexpr uint32_t kStampMask = 0xFFFFu;

  uint32_t epoch_ = 0;
  std::vector<uint32_t> appear_;
  std::vector<size_t> next_idx_;
  std::vector<Value> cur_dif_;
  std::vector<PointId> cur_pid_;
  std::vector<uint32_t> buf_pos_;
  std::vector<uint32_t> buf_len_;
  std::vector<Value> buf_values_;
  std::vector<PointId> buf_pids_;
  std::vector<const Value*> col_values_;
  std::vector<const PointId*> col_pids_;
  std::vector<size_t> col_len_;
  std::vector<Value> pair_min_;
  AdCursorHeap heap_;
  AdLoserTree tree_;
};

}  // namespace knmatch::internal

#endif  // KNMATCH_CORE_AD_SCRATCH_H_

#ifndef KNMATCH_CORE_AD_SCRATCH_H_
#define KNMATCH_CORE_AD_SCRATCH_H_

#include <cassert>
#include <cstdint>
#include <vector>

#include "knmatch/common/types.h"
#include "knmatch/core/sorted_columns.h"

namespace knmatch::internal {

/// One attribute sitting in the AD cursor front: its (weighted)
/// difference to the query, the direction cursor it came from, and the
/// column entry itself. Factored out of AdEngine so the scratch arena
/// can own the storage without depending on the accessor type.
struct AdHeapItem {
  Value dif = 0;
  uint32_t slot = 0;
  ColumnEntry entry;
};

/// Fixed-capacity flat binary min-heap over (difference, slot) — the
/// g[] cursor front of the AD algorithm. Each of the 2d direction
/// cursors has at most one outstanding item in the front, so capacity
/// 2d is exact: storage is reserved once per query shape and the pop
/// loop never allocates. Keyed identically to the previous
/// std::priority_queue (difference, then slot), so pop order — and
/// therefore every answer — is unchanged.
class AdCursorHeap {
 public:
  /// Empties the heap and guarantees room for `capacity` items.
  void Reset(size_t capacity) {
    size_ = 0;
    if (items_.size() < capacity) items_.resize(capacity);
  }

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  const AdHeapItem& top() const {
    assert(size_ > 0);
    return items_[0];
  }

  void Push(const AdHeapItem& item) {
    assert(size_ < items_.size() && "heap capacity is one item per cursor");
    size_t i = size_++;
    while (i > 0) {
      const size_t parent = (i - 1) / 2;
      if (!Before(item, items_[parent])) break;
      items_[i] = items_[parent];
      i = parent;
    }
    items_[i] = item;
  }

  void Pop() {
    assert(size_ > 0);
    const AdHeapItem moved = items_[--size_];
    if (size_ == 0) return;
    size_t i = 0;
    for (;;) {
      size_t child = 2 * i + 1;
      if (child >= size_) break;
      if (child + 1 < size_ && Before(items_[child + 1], items_[child])) {
        ++child;
      }
      if (!Before(items_[child], moved)) break;
      items_[i] = items_[child];
      i = child;
    }
    items_[i] = moved;
  }

 private:
  static bool Before(const AdHeapItem& a, const AdHeapItem& b) {
    if (a.dif != b.dif) return a.dif < b.dif;
    return a.slot < b.slot;
  }

  std::vector<AdHeapItem> items_;
  size_t size_ = 0;
};

/// Reusable per-query working state for AdEngine: the appearance
/// counters, the 2d cursor positions, and the cursor-front heap.
///
/// A fresh AdEngine used to zero-initialize an O(cardinality) `appear_`
/// vector per query — per-query setup cost that dwarfs the attribute
/// retrievals the paper optimizes once queries are cheap and frequent.
/// The scratch replaces it with an epoch-stamped visit table: each
/// Prepare() bumps a 32-bit epoch, and a counter is treated as zero
/// until its stamp matches the current epoch. Reset is O(1); the O(c)
/// fill happens only on first use, growth, or epoch wrap (every 2^32
/// queries).
///
/// A scratch is single-threaded state: share one per worker thread,
/// never across concurrent queries. Any cardinality/dimensionality is
/// accepted per Prepare(), so one scratch serves heterogeneous
/// datasets back to back.
class AdScratch {
 public:
  /// Readies the scratch for a query over `cardinality` points and
  /// `dims` dimensions. O(1) amortized.
  void Prepare(size_t cardinality, size_t dims) {
    ++epoch_;
    if (cardinality > stamp_.size() || epoch_ == 0) {
      stamp_.assign(std::max(cardinality, stamp_.size()), 0);
      count_.assign(stamp_.size(), 0);
      epoch_ = 1;
    }
    if (next_idx_.size() < 2 * dims) next_idx_.resize(2 * dims);
    heap_.Reset(2 * dims);
  }

  /// Increments and returns the appearance count of `pid` for the
  /// current query (1 on first sighting).
  uint16_t BumpAppearances(PointId pid) {
    assert(pid < stamp_.size());
    if (stamp_[pid] != epoch_) {
      stamp_[pid] = epoch_;
      count_[pid] = 0;
    }
    return ++count_[pid];
  }

  /// The cursor-front heap (valid until the next Prepare).
  AdCursorHeap& heap() { return heap_; }

  /// The 2d cursor positions (valid until the next Prepare).
  size_t* next_idx() { return next_idx_.data(); }

 private:
  uint32_t epoch_ = 0;
  std::vector<uint32_t> stamp_;  // epoch at which count_[pid] is valid
  std::vector<uint16_t> count_;
  std::vector<size_t> next_idx_;
  AdCursorHeap heap_;
};

}  // namespace knmatch::internal

#endif  // KNMATCH_CORE_AD_SCRATCH_H_

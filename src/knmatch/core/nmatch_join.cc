#include "knmatch/core/nmatch_join.h"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "knmatch/core/sorted_columns.h"

namespace knmatch {

namespace {

/// Packs an ordered pid pair into one 64-bit key.
uint64_t PairKey(PointId a, PointId b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

}  // namespace

Result<std::vector<JoinPair>> NMatchSelfJoin(const Dataset& db, size_t n,
                                             Value epsilon) {
  if (db.size() == 0) {
    return Status::FailedPrecondition("database is empty");
  }
  if (n < 1 || n > db.dims()) {
    return Status::InvalidArgument("require 1 <= n <= d; got n=" +
                                   std::to_string(n));
  }
  if (!(epsilon >= 0)) {
    return Status::InvalidArgument("epsilon must be non-negative");
  }

  SortedColumns columns(db);
  std::unordered_map<uint64_t, uint32_t> match_counts;

  for (size_t dim = 0; dim < db.dims(); ++dim) {
    auto vals = columns.values(dim);
    auto ids = columns.pids(dim);
    size_t window_start = 0;
    for (size_t i = 1; i < vals.size(); ++i) {
      while (vals[i] - vals[window_start] > epsilon) {
        ++window_start;
      }
      // Every entry in [window_start, i) matches entry i in this
      // dimension.
      for (size_t j = window_start; j < i; ++j) {
        const PointId a = std::min(ids[i], ids[j]);
        const PointId b = std::max(ids[i], ids[j]);
        ++match_counts[PairKey(a, b)];
      }
    }
  }

  std::vector<JoinPair> result;
  for (const auto& [key, count] : match_counts) {
    if (count >= n) {
      result.push_back(JoinPair{static_cast<PointId>(key >> 32),
                                static_cast<PointId>(key & 0xFFFFFFFFu)});
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace knmatch

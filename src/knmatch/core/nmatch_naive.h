#ifndef KNMATCH_CORE_NMATCH_NAIVE_H_
#define KNMATCH_CORE_NMATCH_NAIVE_H_

#include <span>

#include "knmatch/common/dataset.h"
#include "knmatch/common/status.h"
#include "knmatch/core/match_types.h"

namespace knmatch {

/// Scan-based k-n-match (the "naive algorithm" of Section 3): computes
/// the n-match difference of every point and keeps the k smallest.
/// Retrieves every attribute of every point (cost c*d).
Result<KnMatchResult> KnMatchNaive(const Dataset& db,
                                   std::span<const Value> query, size_t n,
                                   size_t k);

/// Scan-based frequent k-n-match over the n-range [n0, n1]: one pass
/// computes each point's sorted difference array, from which its
/// n-match difference for every n in the range is read off; a top-k
/// accumulator per n maintains the answer sets.
Result<FrequentKnMatchResult> FrequentKnMatchNaive(
    const Dataset& db, std::span<const Value> query, size_t n0, size_t n1,
    size_t k);

/// Aggregates the per-n answer sets of a frequent k-n-match query into
/// the final top-k-by-frequency list (descending frequency, ties broken
/// by ascending best n-match difference, then point id). Shared by the
/// naive, AD, disk, and VA-file implementations so all four rank
/// identically. Fills `result->matches` and `result->frequencies` from
/// `result->per_n_sets`.
void RankByFrequency(size_t k, FrequentKnMatchResult* result);

}  // namespace knmatch

#endif  // KNMATCH_CORE_NMATCH_NAIVE_H_

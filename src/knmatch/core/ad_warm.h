#ifndef KNMATCH_CORE_AD_WARM_H_
#define KNMATCH_CORE_AD_WARM_H_

#include <optional>
#include <span>

#include "knmatch/common/dataset.h"
#include "knmatch/core/ad_engine.h"
#include "knmatch/core/sorted_columns.h"

namespace knmatch::internal {

/// Warm-started (seeded) AD search over in-memory sorted columns.
///
/// A cold AD run must *discover* the answer's difference threshold: it
/// pops attributes in globally ascending difference order until k
/// points complete n1 appearances, paying the full merge machinery
/// (loser tree, run bookkeeping) for every pop. The seeds — the answer
/// pids of a cached query within the warm radius — let the search skip
/// the discovery phase entirely:
///
///   1. Resolve every seed by random access: read its d attributes,
///      compute its exact (weighted) per-dimension differences with
///      the kernel's own arithmetic, and sort them; the a-th smallest
///      is its exact level-a n-match difference. The k-th best seed
///      difference per level is a sound upper bound m on the true
///      answer threshold (the true k-th best can only be smaller).
///   2. Range-count: in each sorted column, walk outward from the
///      query value while the weighted difference stays <= m, bumping
///      each popped pid's appearance counter — the same "k points seen
///      n times" bookkeeping as the kernel, but per column with no
///      global merge. Any point of the true answer set at level a has
///      level-a difference <= m, hence >= a >= n0 attributes within m,
///      so it must cross the n0-appearance threshold: collecting every
///      pid that does yields a candidate superset of all answer sets.
///   3. Resolve the candidates exactly (random access, step-1
///      arithmetic) and keep the k smallest per level: exactly the
///      cold answer sets, in the same ascending-difference order.
///
/// Equality of differences is the one place pop order could show
/// through (cold sets order difference ties by pop order, which this
/// path cannot reproduce): if any two of the k+1 smallest differences
/// at some level are equal, the function returns nullopt and the
/// caller reruns cold — guaranteeing warm answers are bit-identical
/// to cold ones whenever a warm answer is returned at all. nullopt is
/// also returned when the seeds are degenerate (< k distinct pids) or
/// a scan/candidate budget trips (the safe answer radius turned out
/// too wide for the seeded path to be a win).
///
/// The returned AdOutput's attributes_retrieved counts the entries the
/// range scans touched plus d per resolved point; heap_pops and
/// tree_replays are 0 (no merge ran).
std::optional<AdOutput> RunAdSearchSeeded(
    const Dataset& db, const SortedColumns& columns,
    std::span<const Value> query, size_t n0, size_t n1, size_t k,
    std::span<const Value> weights, std::span<const PointId> seeds,
    AdScratch* scratch = nullptr);

}  // namespace knmatch::internal

#endif  // KNMATCH_CORE_AD_WARM_H_

#ifndef KNMATCH_CORE_ANSWER_MERGE_H_
#define KNMATCH_CORE_ANSWER_MERGE_H_

#include <cstddef>
#include <span>
#include <vector>

#include "knmatch/core/match_types.h"

namespace knmatch::internal {

/// Exact scatter-gather merge of per-shard k-n-match answer sets.
///
/// The n-match difference of a point (the n-th smallest per-dimension
/// |q_i - p_i|, Definition 2 of the paper) depends only on the point
/// and the query, never on the rest of the dataset. So for any
/// partition of the dataset into shards, the global k-n-match answer
/// set is contained in the union of the shard-local top-min(k, |shard|)
/// sets, and a k-way merge of those lists under the canonical
/// (difference, pid) order reproduces the global answer exactly — see
/// docs/sharding.md for the proof sketch and the boundary-tie caveat.
///
/// `lists` are the shard-local answer lists (global pids, each
/// ascending by difference). Returns the k globally smallest entries
/// under (difference, pid), ascending.
std::vector<Neighbor> MergeAnswerLists(
    std::span<const std::vector<Neighbor>* const> lists, size_t k);

/// Merges per-shard frequent k-n-match partials: each per-n level is
/// merged with MergeAnswerLists, then the standard RankByFrequency pass
/// (core/nmatch_naive.cc) rebuilds matches/frequencies from the merged
/// sets — the same code path the unsharded engines use, so the ranking
/// (count desc, best difference asc, pid asc) is reproduced exactly.
/// `levels` is n1 - n0 + 1; every partial must have that many sets.
/// attributes_retrieved is summed over the partials.
FrequentKnMatchResult MergeFrequentPartials(
    std::span<const FrequentKnMatchResult* const> partials, size_t levels,
    size_t k);

}  // namespace knmatch::internal

#endif  // KNMATCH_CORE_ANSWER_MERGE_H_

#include "knmatch/core/ad_warm.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "knmatch/core/ad_scratch.h"

namespace knmatch::internal {

namespace {

/// A level's running top-(k+1): the k+1 smallest (difference, pid)
/// pairs seen so far, kept sorted ascending by (difference, pid). k+1
/// rather than k so the boundary between the k-th and (k+1)-th best is
/// visible for the tie check. Insertion is O(k) — k is small and the
/// candidate stream is short, so a heap would cost more than it saves.
class LevelTop {
 public:
  void Reset(size_t k) {
    cap_ = k + 1;
    items_.clear();
    items_.reserve(cap_);
  }

  void Insert(Value dif, PointId pid) {
    if (items_.size() == cap_ && dif >= items_.back().first) {
      // Not smaller than the current (k+1)-th best: it can neither
      // enter the answer set nor tie its boundary.
      if (dif == items_.back().first) boundary_clouded_ = true;
      return;
    }
    const std::pair<Value, PointId> item{dif, pid};
    auto pos = std::lower_bound(items_.begin(), items_.end(), item);
    items_.insert(pos, item);
    if (items_.size() > cap_) {
      if (items_[cap_ - 1].first == items_[cap_].first) {
        boundary_clouded_ = true;
      }
      items_.pop_back();
    }
  }

  /// The j-th smallest difference (j < size()).
  Value dif(size_t j) const { return items_[j].first; }
  size_t size() const { return items_.size(); }
  const std::pair<Value, PointId>& item(size_t j) const {
    return items_[j];
  }

  /// True when a discarded difference equaled the retained (k+1)-th
  /// best — the discarded point could then tie the answer boundary
  /// even though it is no longer held.
  bool boundary_clouded() const { return boundary_clouded_; }

 private:
  size_t cap_ = 0;
  bool boundary_clouded_ = false;
  std::vector<std::pair<Value, PointId>> items_;
};

}  // namespace

std::optional<AdOutput> RunAdSearchSeeded(
    const Dataset& db, const SortedColumns& columns,
    std::span<const Value> query, size_t n0, size_t n1, size_t k,
    std::span<const Value> weights, std::span<const PointId> seeds,
    AdScratch* scratch) {
  const size_t c = columns.size();
  const size_t d = columns.dims();
  if (c == 0 || d == 0 || k == 0 || n0 == 0 || n1 < n0 || n1 > d ||
      query.size() != d) {
    return std::nullopt;  // let the cold path surface the error
  }
  if (!weights.empty() && weights.size() != d) return std::nullopt;
  const size_t levels = n1 - n0 + 1;

  // Budgets past which the seeded path stops being a win and the
  // caller should just run cold: the range scans approaching half the
  // attribute matrix, or the candidate set ballooning (low n0 over a
  // wide radius degenerates toward resolving everything).
  const size_t scan_budget = c * d / 2 + 1;
  const size_t candidate_budget =
      std::max<size_t>(1024, 16 * k * levels);

  // Deduplicated, bounds-checked seeds.
  std::vector<PointId> seed_pids(seeds.begin(), seeds.end());
  std::sort(seed_pids.begin(), seed_pids.end());
  seed_pids.erase(std::unique(seed_pids.begin(), seed_pids.end()),
                  seed_pids.end());
  while (!seed_pids.empty() && seed_pids.back() >= c) seed_pids.pop_back();
  if (seed_pids.size() < k) return std::nullopt;

  std::vector<LevelTop> tops(levels);
  for (LevelTop& top : tops) top.Reset(k);

  // Resolves one point exactly: its weighted per-dimension differences
  // with the kernel's own arithmetic (down cursor: query - value; up
  // cursor: value - query; then the weight multiply), sorted ascending
  // so the a-th smallest is its exact level-a n-match difference.
  std::vector<Value> difs(d);
  size_t resolved = 0;
  const auto resolve = [&](PointId pid) {
    const std::span<const Value> p = db.point(pid);
    for (size_t i = 0; i < d; ++i) {
      const Value v = p[i];
      Value dif = v < query[i] ? query[i] - v : v - query[i];
      if (!weights.empty()) dif *= weights[i];
      difs[i] = dif;
    }
    std::sort(difs.begin(), difs.end());
    for (size_t lvl = 0; lvl < levels; ++lvl) {
      tops[lvl].Insert(difs[n0 - 1 + lvl], pid);
    }
    ++resolved;
  };

  for (const PointId pid : seed_pids) resolve(pid);

  // The safe scan radius: the largest per-level k-th best difference
  // over the seeds. Every true answer point at level a has level-a
  // difference <= the true k-th best <= this bound.
  Value m = 0;
  for (const LevelTop& top : tops) {
    m = std::max(m, top.dif(k - 1));
  }

  // Range-count phase. Walking outward from the query value in each
  // column mirrors the kernel's two direction cursors, including the
  // difference arithmetic, so the <= m test never disagrees with what
  // the kernel would have popped.
  thread_local AdScratch local_scratch;
  AdScratch& counts = scratch != nullptr ? *scratch : local_scratch;
  counts.Prepare(c, d);
  std::vector<PointId> candidates;
  size_t scanned = 0;
  for (size_t dim = 0; dim < d; ++dim) {
    const std::span<const Value> values = columns.values(dim);
    const std::span<const PointId> pids = columns.pids(dim);
    const Value q = query[dim];
    const bool weighted = !weights.empty();
    const Value w = weighted ? weights[dim] : Value{1};
    const size_t start = columns.LowerBound(dim, q);
    // Up direction: values >= q, ascending.
    for (size_t idx = start; idx < c; ++idx) {
      Value dif = values[idx] - q;
      if (weighted) dif *= w;
      if (dif > m) break;
      ++scanned;
      if (counts.BumpAppearances(pids[idx]) == n0) {
        candidates.push_back(pids[idx]);
      }
    }
    // Down direction: values < q, descending.
    for (size_t idx = start; idx-- > 0;) {
      Value dif = q - values[idx];
      if (weighted) dif *= w;
      if (dif > m) break;
      ++scanned;
      if (counts.BumpAppearances(pids[idx]) == n0) {
        candidates.push_back(pids[idx]);
      }
    }
    if (scanned > scan_budget || candidates.size() > candidate_budget) {
      return std::nullopt;
    }
  }

  // Resolve the candidates the seeds did not already cover.
  for (const PointId pid : candidates) {
    if (std::binary_search(seed_pids.begin(), seed_pids.end(), pid)) {
      continue;
    }
    resolve(pid);
  }

  // Assemble the answer sets, refusing any level where a difference
  // tie could make cold pop order visible (see header).
  AdOutput out;
  out.per_n_sets.resize(levels);
  for (size_t lvl = 0; lvl < levels; ++lvl) {
    const LevelTop& top = tops[lvl];
    if (top.size() < k || top.boundary_clouded()) return std::nullopt;
    const size_t checked = std::min(top.size(), k + 1);
    for (size_t j = 0; j + 1 < checked; ++j) {
      if (top.dif(j) == top.dif(j + 1)) return std::nullopt;
    }
    auto& set = out.per_n_sets[lvl];
    set.reserve(k);
    for (size_t j = 0; j < k; ++j) {
      set.push_back(Neighbor{top.item(j).second, top.item(j).first});
    }
  }
  out.attributes_retrieved =
      static_cast<uint64_t>(scanned) + static_cast<uint64_t>(resolved) * d;
  out.heap_pops = 0;
  out.tree_replays = 0;
  return out;
}

}  // namespace knmatch::internal

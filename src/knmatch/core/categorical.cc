#include "knmatch/core/categorical.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "knmatch/common/top_k.h"
#include "knmatch/core/nmatch.h"
#include "knmatch/core/nmatch_naive.h"

namespace knmatch {

namespace {

/// Fills `out` with the per-dimension mixed differences, sorted
/// ascending.
void SortedMixedDifferences(std::span<const Value> p,
                            std::span<const Value> q,
                            const MixedSchema& schema,
                            std::vector<Value>* out) {
  assert(p.size() == q.size());
  out->resize(p.size());
  for (size_t i = 0; i < p.size(); ++i) {
    const AttributeKind kind =
        i < schema.kinds.size() ? schema.kinds[i] : AttributeKind::kNumeric;
    Value diff;
    if (kind == AttributeKind::kCategorical) {
      diff = p[i] == q[i] ? Value{0} : schema.mismatch_penalty;
    } else {
      diff = std::abs(p[i] - q[i]);
    }
    if (!schema.weights.empty()) {
      assert(schema.weights.size() == p.size());
      diff *= schema.weights[i];
    }
    (*out)[i] = diff;
  }
  std::sort(out->begin(), out->end());
}

Status ValidateSchema(const MixedSchema& schema, size_t d) {
  if (!schema.kinds.empty() && schema.kinds.size() != d) {
    return Status::InvalidArgument(
        "schema.kinds must be empty or have one entry per dimension");
  }
  if (!schema.weights.empty() && schema.weights.size() != d) {
    return Status::InvalidArgument(
        "schema.weights must be empty or have one entry per dimension");
  }
  for (const Value w : schema.weights) {
    if (!(w >= 0)) {
      return Status::InvalidArgument("weights must be non-negative");
    }
  }
  if (!(schema.mismatch_penalty >= 0)) {
    return Status::InvalidArgument("mismatch_penalty must be non-negative");
  }
  return Status::OK();
}

}  // namespace

Value MixedNMatchDifference(std::span<const Value> p,
                            std::span<const Value> q,
                            const MixedSchema& schema, size_t n) {
  assert(n >= 1 && n <= p.size());
  std::vector<Value> diffs;
  SortedMixedDifferences(p, q, schema, &diffs);
  return diffs[n - 1];
}

Result<KnMatchResult> MixedKnMatch(const Dataset& db,
                                   std::span<const Value> query,
                                   const MixedSchema& schema, size_t n,
                                   size_t k) {
  Status s = ValidateMatchParams(db.size(), db.dims(), query.size(), n, n, k);
  if (!s.ok()) return s;
  s = ValidateSchema(schema, db.dims());
  if (!s.ok()) return s;

  BoundedTopK<PointId, Value, PointId> top(k);
  std::vector<Value> diffs;
  for (PointId pid = 0; pid < db.size(); ++pid) {
    SortedMixedDifferences(db.point(pid), query, schema, &diffs);
    top.Offer(diffs[n - 1], pid, pid);
  }

  KnMatchResult result;
  for (auto& e : top.TakeSorted()) {
    result.matches.push_back(Neighbor{e.item, e.score});
  }
  result.attributes_retrieved =
      static_cast<uint64_t>(db.size()) * db.dims();
  return result;
}

Result<FrequentKnMatchResult> MixedFrequentKnMatch(
    const Dataset& db, std::span<const Value> query,
    const MixedSchema& schema, size_t n0, size_t n1, size_t k) {
  Status s =
      ValidateMatchParams(db.size(), db.dims(), query.size(), n0, n1, k);
  if (!s.ok()) return s;
  s = ValidateSchema(schema, db.dims());
  if (!s.ok()) return s;

  using Accumulator = BoundedTopK<PointId, Value, PointId>;
  std::vector<Accumulator> per_n;
  per_n.reserve(n1 - n0 + 1);
  for (size_t n = n0; n <= n1; ++n) per_n.emplace_back(k);

  std::vector<Value> diffs;
  for (PointId pid = 0; pid < db.size(); ++pid) {
    SortedMixedDifferences(db.point(pid), query, schema, &diffs);
    for (size_t n = n0; n <= n1; ++n) {
      per_n[n - n0].Offer(diffs[n - 1], pid, pid);
    }
  }

  FrequentKnMatchResult result;
  result.per_n_sets.resize(per_n.size());
  for (size_t i = 0; i < per_n.size(); ++i) {
    for (auto& e : per_n[i].TakeSorted()) {
      result.per_n_sets[i].push_back(Neighbor{e.item, e.score});
    }
  }
  result.attributes_retrieved =
      static_cast<uint64_t>(db.size()) * db.dims();
  RankByFrequency(k, &result);
  return result;
}

}  // namespace knmatch

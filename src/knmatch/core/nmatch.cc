#include "knmatch/core/nmatch.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>

namespace knmatch {

void SortedAbsDifferences(std::span<const Value> p, std::span<const Value> q,
                          std::vector<Value>* out) {
  assert(p.size() == q.size());
  out->resize(p.size());
  for (size_t i = 0; i < p.size(); ++i) {
    (*out)[i] = std::abs(p[i] - q[i]);
  }
  std::sort(out->begin(), out->end());
}

Value NMatchDifference(std::span<const Value> p, std::span<const Value> q,
                       size_t n) {
  assert(p.size() == q.size());
  assert(n >= 1 && n <= p.size());
  std::vector<Value> diffs(p.size());
  for (size_t i = 0; i < p.size(); ++i) {
    diffs[i] = std::abs(p[i] - q[i]);
  }
  // nth_element is O(d) versus the full sort used in Definition 1;
  // the result is identical.
  std::nth_element(diffs.begin(), diffs.begin() + (n - 1), diffs.end());
  return diffs[n - 1];
}

Status ValidateMatchParams(size_t c, size_t d, size_t query_dims, size_t n0,
                           size_t n1, size_t k) {
  if (c == 0) {
    return Status::FailedPrecondition("database is empty");
  }
  if (query_dims != d) {
    return Status::InvalidArgument(
        "query dimensionality " + std::to_string(query_dims) +
        " does not match database dimensionality " + std::to_string(d));
  }
  if (n0 < 1 || n1 > d || n0 > n1) {
    return Status::InvalidArgument(
        "require 1 <= n0 <= n1 <= d; got n0=" + std::to_string(n0) +
        " n1=" + std::to_string(n1) + " d=" + std::to_string(d));
  }
  if (k < 1 || k > c) {
    return Status::InvalidArgument("require 1 <= k <= c; got k=" +
                                   std::to_string(k) +
                                   " c=" + std::to_string(c));
  }
  return Status::OK();
}

}  // namespace knmatch

#ifndef KNMATCH_CORE_AD_KERNEL_H_
#define KNMATCH_CORE_AD_KERNEL_H_

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <optional>
#include <span>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "knmatch/common/status.h"
#include "knmatch/common/types.h"
#include "knmatch/core/ad_scratch.h"
#include "knmatch/core/sorted_columns.h"

namespace knmatch::internal {

/// Detected on accessors that can fail (disk-backed ones): a non-OK
/// status() after any read marks every value the accessor returned
/// since as garbage, and the kernel stops stepping. In-memory accessors
/// omit status() and pay nothing for the checks.
template <typename A>
concept KernelStatusReportingAccessor = requires(const A& a) {
  { a.status() } -> std::convertible_to<const Status&>;
};

/// Detected on accessors that can serve a cursor a block of consecutive
/// entries in one call (see AdKernel's accessor contract below).
/// Accessors without ReadRun fall back to per-entry ReadEntry calls —
/// the kernel's stepping order is identical either way.
template <typename A>
concept RunReadingAccessor =
    requires(A a, size_t dim, size_t idx, size_t len, uint32_t slot,
             Value* values, PointId* pids) {
      { a.ReadRun(dim, idx, len, slot, values, pids) }
          -> std::convertible_to<size_t>;
    };

/// Detected on accessors whose columns are directly addressable memory
/// (SoA spans). The kernel then walks the columns in place — no
/// read-ahead buffer, no copy; the run block degenerates to a moving
/// pointer. Takes precedence over RunReadingAccessor.
template <typename A>
concept DirectColumnAccessor =
    requires(const A& a, size_t dim) {
      { a.values(dim) } -> std::convertible_to<std::span<const Value>>;
      { a.pids(dim) } -> std::convertible_to<std::span<const PointId>>;
    };

/// The block-ascending kernel: the stepping core of the AD (Ascending
/// Difference) algorithm, rewritten around three ideas from the
/// external-merge literature —
///
///   1. a loser (tournament) tree over the 2d direction cursors instead
///      of a binary heap: advancing the winning cursor is one
///      leaf-to-root replay instead of a pop followed by a push;
///   2. run-batched stepping: after winning, a cursor keeps consuming
///      consecutive entries while each (weighted) difference stays
///      strictly ahead of the runner-up's key — zero tree updates per
///      entry, and columns are sorted, so runs near the query are long;
///   3. block reads: a RunReadingAccessor refills a cursor's
///      read-ahead buffer many entries at a time (SoA: values and pids
///      in separate arrays), which a disk accessor serves with
///      page-granular sequential I/O.
///
/// Pop order, answer sets, and attributes_retrieved are bit-for-bit
/// identical to the reference heap engine (AdEngine): the loser tree
/// selects by the same total order (difference, slot); a run consumes
/// exactly the entries the heap would have popped consecutively from
/// that cursor; and every entry is charged when it enters the cursor
/// front (the moment the heap engine would have read it), never at
/// buffer-refill time. Differential tests enforce the equivalence.
///
/// `Accessor` must provide dims(), column_size(), ReadEntry(dim, idx,
/// slot) and LocateLowerBound(dim, v) as documented on AdEngine, and
/// may additionally provide:
///
///   // Reads up to `len` consecutive entries of `dim` walking away
///   // from the query: slot 2*dim covers idx, idx-1, ... (descending);
///   // slot 2*dim+1 covers idx, idx+1, ... (ascending). Fills
///   // values[i]/pids[i] in walk order and returns how many entries
///   // were produced (>= 1 unless the accessor failed, in which case 0
///   // with a latched status()). An accessor may return fewer than
///   // `len` when serving more would cost extra I/O (a page boundary):
///   // the kernel charges attributes as entries are consumed, so a
///   // short read must only ever stop at a boundary the per-entry path
///   // would also have charged for crossing.
///   size_t ReadRun(size_t dim, size_t idx, size_t len, uint32_t slot,
///                  Value* values, PointId* pids);
///
/// and/or `column_length(dim)` for ragged columns, as on AdEngine.
template <typename Accessor>
class AdKernel {
 public:
  /// One popped attribute, as AdEngine::Pop.
  struct Pop {
    PointId pid;
    Value dif;
    uint16_t appearances;
  };

  AdKernel(Accessor& accessor, std::span<const Value> query,
           std::span<const Value> weights = {}, AdScratch* scratch = nullptr)
      : acc_(accessor),
        query_(query),
        weights_(weights),
        c_(accessor.column_size()),
        scratch_(scratch != nullptr ? scratch : &owned_scratch_) {
    const size_t d = acc_.dims();
    assert(d >= 1);
    assert(query.size() == d);
    assert(weights.empty() || weights.size() == d);
    // As in AdEngine: sparse pid spaces advertise pid_bound() so the
    // appearance table is sized before the hot loop starts.
    size_t table = c_;
    if constexpr (requires { acc_.pid_bound(); }) {
      table = std::max<size_t>(table, acc_.pid_bound());
    }
    scratch_->Prepare(table, d);
    slots_ = 2 * d;
    next_idx_ = scratch_->next_idx();
    cur_dif_ = scratch_->cur_difs();
    cur_pid_ = scratch_->cur_pids();
    buf_pos_ = scratch_->buf_pos();
    buf_len_ = scratch_->buf_len();
    tree_ = &scratch_->loser_tree();
    if constexpr (DirectColumnAccessor<Accessor>) {
      col_vals_ = scratch_->col_values();
      col_pids_ = scratch_->col_pids();
      col_len_ = scratch_->col_len();
      for (size_t dim = 0; dim < d; ++dim) {
        const std::span<const Value> vals = acc_.values(dim);
        const std::span<const PointId> pids = acc_.pids(dim);
        for (uint32_t slot : {static_cast<uint32_t>(2 * dim),
                              static_cast<uint32_t>(2 * dim + 1)}) {
          col_vals_[slot] = vals.data();
          col_pids_[slot] = pids.data();
          col_len_[slot] = vals.size();
        }
      }
    }
    for (size_t dim = 0; dim < d; ++dim) {
      const size_t len = ColumnLength(dim);
      size_t pos = acc_.LocateLowerBound(dim, query_[dim]);
      if (AccessorFailed()) return;
      if (pos > len) pos = len;
      const auto down = static_cast<uint32_t>(2 * dim);
      const uint32_t up = down + 1;
      next_idx_[down] = pos == 0 ? kExhausted : pos - 1;
      next_idx_[up] = pos == len ? kExhausted : pos;
      buf_pos_[down] = buf_len_[down] = 0;
      buf_pos_[up] = buf_len_[up] = 0;
      Advance(down);
      Advance(up);
      if (AccessorFailed()) return;
    }
    // Selection strategy: up to kScanSlots cursors the difs span a few
    // cache lines, and a branchless (SIMD where available) rescan per
    // run beats the loser tree's pointer walk, whose data-dependent
    // branches mispredict on effectively random keys. Past that the
    // O(log m) tree wins and the scan path is skipped.
    use_scan_ = slots_ <= kScanSlots;
    // Pad lanes up to the vector width hold +inf: they lose every
    // comparison, so whole-vector loads in ScanWinner are safe.
    for (size_t s = slots_; s < ((slots_ + 3) & ~size_t{3}); ++s) {
      cur_dif_[s] = kInfValue;
    }
    if (use_scan_) {
      pair_min_ = scratch_->pair_mins();
      for (size_t dim = 0; dim < d; ++dim) {
        pair_min_[dim] = std::min(cur_dif_[2 * dim], cur_dif_[2 * dim + 1]);
      }
      for (size_t dim = d; dim < ((d + 3) & ~size_t{3}); ++dim) {
        pair_min_[dim] = kInfValue;
      }
    } else {
      tree_->Build(slots_, cur_dif_);
    }
  }

  /// Runs the ascend loop, delivering pops in ascending (difference,
  /// slot) order to `sink(pid, dif, appearances)` until the sink
  /// returns false, the columns exhaust, or the accessor fails (check
  /// its status()). This is the run-batched hot path: inside a run the
  /// per-entry work is one buffered read, one difference, one
  /// appearance bump, and one comparison against the runner-up's key.
  template <typename Sink>
  void Drive(Sink&& sink) {
    if (AccessorFailed()) return;
    if (use_scan_) {
      DriveScan(sink);
      return;
    }
    uint32_t w = tree_->winner();
    while (cur_dif_[w] != kInfValue) {
      const uint32_t ru = tree_->RunnerUp(w, cur_dif_);
      assert(ru != AdLoserTree::kNone && "2d >= 2 cursors always "
             "leave a (possibly exhausted) runner-up");
      const Value ru_dif = cur_dif_[ru];
      bool stop = false;
      uint64_t run_length = 0;
      for (;;) {
        const PointId pid = cur_pid_[w];
        const Value dif = cur_dif_[w];
        const uint16_t a = scratch_->BumpAppearances(pid);
        Advance(w);  // replacement read — charged exactly like the
                     // heap engine's post-pop ReadAndPush
        if (AccessorFailed()) {
          // Mirror AdEngine::Step: the pop whose replacement read
          // failed is not delivered.
          RecordRun(run_length);
          return;
        }
        ++run_length;
        if (!sink(pid, dif, a)) {
          stop = true;
          break;
        }
        // The run continues while this cursor still precedes the
        // runner-up in (difference, slot) order — exactly the
        // condition under which the heap would pop it again next.
        const Value nd = cur_dif_[w];
        if (nd < ru_dif || (nd == ru_dif && nd != kInfValue && w < ru)) {
          continue;
        }
        break;
      }
      RecordRun(run_length);
      tree_->Replay(w, cur_dif_);
      ++tree_replays_;
      if (stop) return;
      w = tree_->winner();
      // The refill-time prefetch warmed this slot into the outer
      // levels ~2d*kAdRunBlock pops ago; one more touch now, a full
      // run before the bump, covers the last hop into L1.
      scratch_->PrefetchAppearances(cur_pid_[w]);
    }
  }

  /// Pops the next attribute in ascending difference order; nullopt
  /// once every attribute of every column has been consumed — or once
  /// the accessor reports a failure. Single-stepping entry point for
  /// consumers that cannot batch (AdMatchStream); one tree replay per
  /// pop, no runner-up computation.
  std::optional<Pop> Step() {
    if (AccessorFailed()) return std::nullopt;
    uint32_t w;
    if (use_scan_) {
      Value ru_unused, x2_unused, x3_unused;
      w = ScanWinner(&ru_unused, &x2_unused, &x3_unused);
    } else {
      w = tree_->winner();
    }
    if (cur_dif_[w] == kInfValue) return std::nullopt;
    const PointId pid = cur_pid_[w];
    const Value dif = cur_dif_[w];
    const uint16_t a = scratch_->BumpAppearances(pid);
    Advance(w);
    if (AccessorFailed()) return std::nullopt;
    if (use_scan_) {
      UpdatePairMin(w);
    } else {
      tree_->Replay(w, cur_dif_);
    }
    ++tree_replays_;
    return Pop{pid, dif, a};
  }

  /// Attributes retrieved so far (including cursor read-ahead, not
  /// including buffered entries no cursor has reached yet).
  uint64_t attributes_retrieved() const { return attributes_retrieved_; }
  /// Winner-selection rounds (== runs) so far: loser-tree replays on
  /// the tree path, rescans on the flat-scan path.
  uint64_t tree_replays() const { return tree_replays_; }
  /// Entries delivered across all runs (Drive only).
  uint64_t run_entries() const { return run_entries_; }
  /// Run lengths, log-bucketed with obs::Histogram's layout (bucket i
  /// >= 1 holds lengths in [2^(i-1), 2^i)); accumulated locally so the
  /// hot loop never touches an atomic.
  const std::array<uint64_t, 65>& run_length_buckets() const {
    return run_length_buckets_;
  }

 private:
  static constexpr size_t kExhausted = static_cast<size_t>(-1);
  /// Cursor count up to which flat rescan beats the loser tree (the
  /// difs array fits in two cache lines and the scan is branchless,
  /// where every tree-walk branch is a coin flip to the predictor).
  static constexpr size_t kScanSlots = 64;

  /// The scan-path ascend loop. Selection is ScanWinner's branchless
  /// min/max arithmetic; the run bound is the strict `dif < runner-up
  /// key` test. On a (difference, slot) tie with the runner-up the run
  /// ends one entry early and the rescan re-selects this cursor by the
  /// same total order the tree applies — pop order is identical, the
  /// tie just costs one extra rescan.
  ///
  /// Full rescans only happen every THIRD round. Each full scan yields
  /// the winner's key m1 plus the second and third smallest pair-min
  /// values x2 and x3 (multiset order), and two "free" rounds follow:
  ///
  /// Round B: when round A's run ends, every cursor sits at or above
  /// the old runner-up key `b` = min(x2, partner-of-A), the advanced
  /// cursor included (that is why the run ended), and some cursor still
  /// holds exactly `b` (all others are untouched since the scan). So
  /// the next winner's difference is `b` itself and SelectAt recovers
  /// its slot with the cheap equality pass alone. `b` also remains a
  /// valid (conservative) bound for this round: the true runner-up is
  /// >= `b`, so the round serves exactly one entry and order is
  /// preserved — same argument as the tie-with-runner-up case above.
  ///
  /// Round C: only the pairs of the round-A and round-B winners have
  /// moved since the scan, so the smallest pair-min over the UNTOUCHED
  /// pairs is still known from the scan's triple: it is x2 when B won
  /// inside A's pair (only one pair touched), else x3 (B's pair held
  /// exactly x2 when it was a different pair — any other pair's min is
  /// >= x2, and B's key `b` was <= x2 — so one instance each of x1 and
  /// x2 leave the multiset). The global minimum is that value folded
  /// with the two touched pairs' current mins, and SelectAt on it
  /// recovers the winning slot — again an exact (difference, slot)
  /// selection with a conservative one-entry bound. After round C the
  /// books are spent and the cycle restarts with a full scan.
  template <typename Sink>
  void DriveScan(Sink&& sink) {
    Value bound, x2, x3;
    uint32_t w = ScanWinner(&bound, &x2, &x3);
    if (cur_dif_[w] == kInfValue) return;
    uint32_t winner_a = w;
    uint32_t phase = 0;  // 0: round A (fresh scan), 1: round B, 2: round C
    for (;;) {
      uint64_t run_length = 0;
      bool stop = false;
      for (;;) {
        const PointId pid = cur_pid_[w];
        const Value dif = cur_dif_[w];
        const uint16_t a = scratch_->BumpAppearances(pid);
        Advance(w);  // replacement read — charged exactly like the
                     // heap engine's post-pop ReadAndPush
        if (AccessorFailed()) {
          // Mirror AdEngine::Step: the pop whose replacement read
          // failed is not delivered.
          RecordRun(run_length);
          return;
        }
        ++run_length;
        if (!sink(pid, dif, a)) {
          stop = true;
          break;
        }
        if (cur_dif_[w] >= bound) break;
      }
      RecordRun(run_length);
      ++tree_replays_;
      // Only w's pair changed during the run; fold its new front back
      // into the pair-min array the next selection (or a later Step)
      // reads.
      UpdatePairMin(w);
      if (stop) return;
      if (phase == 0) {
        // All cursors >= bound; bound == kInfValue means all exhausted.
        if (bound == kInfValue) return;
        winner_a = w;
        w = SelectAt(bound);
        phase = 1;  // keep `bound`; serves exactly one entry
      } else if (phase == 1) {
        const Value rest =
            (w >> 1) == (winner_a >> 1) ? x2 : x3;
        const Value vc = std::min(
            rest, std::min(pair_min_[winner_a >> 1], pair_min_[w >> 1]));
        if (vc == kInfValue) return;
        w = SelectAt(vc);
        bound = vc;
        phase = 2;
      } else {
        w = ScanWinner(&bound, &x2, &x3);
        if (cur_dif_[w] == kInfValue) return;
        phase = 0;
      }
    }
  }

  /// Returns the winning cursor given that the winning *difference* is
  /// already known to be `key` (see DriveScan's free round): the
  /// equality pass of ScanWinner without its min/max accumulation.
  /// Same (difference, slot) tie-break — first matching pair is the
  /// lowest, even lane preferred inside it.
  uint32_t SelectAt(Value key) const {
    const Value* pm = pair_min_;
    uint32_t pair;
#if defined(__SSE2__)
    const uint32_t npp = (static_cast<uint32_t>(slots_ / 2) + 3) & ~3u;
    const __m128d k = _mm_set1_pd(key);
    uint64_t mask = 0;
    for (uint32_t i = 0; i < npp; i += 4) {
      const auto lo = static_cast<uint64_t>(
          _mm_movemask_pd(_mm_cmpeq_pd(_mm_loadu_pd(pm + i), k)));
      const auto hi = static_cast<uint64_t>(
          _mm_movemask_pd(_mm_cmpeq_pd(_mm_loadu_pd(pm + i + 2), k)));
      mask |= (lo | (hi << 2)) << i;
    }
    assert(mask != 0 && "some cursor holds the known winning key");
    pair = static_cast<uint32_t>(std::countr_zero(mask));
#else
    pair = 0;
    while (pm[pair] != key) ++pair;
#endif
    const uint32_t base = 2 * pair;
    return base | static_cast<uint32_t>(cur_dif_[base] != key);
  }

  /// Refreshes the pair-min entry of `slot`'s dimension after its
  /// cursor front moved.
  void UpdatePairMin(uint32_t slot) {
    const uint32_t base = slot & ~1u;
    pair_min_[base >> 1] = std::min(cur_dif_[base], cur_dif_[base + 1]);
  }

  /// Returns the winning cursor — smallest (difference, slot) — and
  /// writes the runner-up's difference (the smallest among the other
  /// cursors) to `ru_dif`. Scans the d-wide pair-min array rather than
  /// the 2d difs; the winner inside the winning pair is whichever lane
  /// equals the pair min (even lane on a tie — the lower slot, exactly
  /// the (difference, slot) tie-break), and the runner-up is the better
  /// of the second-best pair min and the winner's partner lane.
  ///
  /// Also writes the second- and third-smallest pair-min *values*
  /// (multiset order — duplicates count) to `x2`/`x3`; DriveScan's
  /// second free round is derived from them.
  ///
  /// Branchless: the three smallest are tracked with pure min/max
  /// arithmetic — with mv = max(v, first), the exact (non-NaN) update
  /// is third' = min(third, max(second, mv)); second' = min(second,
  /// mv); first' = min(first, v) — and the winning pair's index rides
  /// alongside in double lanes, blended on the strict `v < first` mask,
  /// which keeps the FIRST minimum seen, i.e. the lowest pair index,
  /// exactly the (difference, slot) tie-break. Differences are never
  /// NaN (values, queries, and weights are finite; only exhaustion
  /// writes kInfValue), so the min/max identities are exact. Two
  /// sorted triples (fa, sa, ta), (fb, sb, tb) merge with the same
  /// algebra: with G = max(fa, fb) and ms = min(sa, sb), the union's
  /// three smallest are (min(fa, fb), min(G, ms), min(max(G, ms),
  /// min(ta, tb))).
  uint32_t ScanWinner(Value* ru_dif, Value* x2, Value* x3) const {
    const Value* pm = pair_min_;
    const uint32_t np = static_cast<uint32_t>(slots_ / 2);
    Value m1, m2, m3;
    uint32_t pair;
#if defined(__SSE2__)
    const uint32_t npp = (np + 3) & ~3u;
    __m128d f0 = _mm_set1_pd(kInfValue), f1 = f0;
    __m128d s0 = f0, s1 = f0, t0 = f0, t1 = f0;
    __m128d i0 = _mm_setzero_pd(), i1 = i0;
    __m128d c0 = _mm_set_pd(1.0, 0.0);
    __m128d c1 = _mm_set_pd(3.0, 2.0);
    const __m128d step = _mm_set1_pd(4.0);
    for (uint32_t i = 0; i < npp; i += 4) {
      const __m128d v0 = _mm_loadu_pd(pm + i);
      const __m128d v1 = _mm_loadu_pd(pm + i + 2);
      const __m128d lt0 = _mm_cmplt_pd(v0, f0);
      const __m128d lt1 = _mm_cmplt_pd(v1, f1);
      const __m128d mv0 = _mm_max_pd(v0, f0);
      const __m128d mv1 = _mm_max_pd(v1, f1);
      t0 = _mm_min_pd(t0, _mm_max_pd(s0, mv0));
      t1 = _mm_min_pd(t1, _mm_max_pd(s1, mv1));
      s0 = _mm_min_pd(s0, mv0);
      s1 = _mm_min_pd(s1, mv1);
      f0 = _mm_min_pd(f0, v0);
      f1 = _mm_min_pd(f1, v1);
      i0 = _mm_or_pd(_mm_and_pd(lt0, c0), _mm_andnot_pd(lt0, i0));
      i1 = _mm_or_pd(_mm_and_pd(lt1, c1), _mm_andnot_pd(lt1, i1));
      c0 = _mm_add_pd(c0, step);
      c1 = _mm_add_pd(c1, step);
    }
    // Chain merge; a value tie sends the lower pair index forward.
    const __m128d teq = _mm_cmpeq_pd(f0, f1);
    const __m128d tlt = _mm_cmplt_pd(f0, f1);
    const __m128d ilt = _mm_cmplt_pd(i0, i1);
    const __m128d take0 = _mm_or_pd(tlt, _mm_and_pd(teq, ilt));
    const __m128d ia =
        _mm_or_pd(_mm_and_pd(take0, i0), _mm_andnot_pd(take0, i1));
    const __m128d gv = _mm_max_pd(f0, f1);
    const __m128d msv = _mm_min_pd(s0, s1);
    const __m128d fa = _mm_min_pd(f0, f1);
    const __m128d sa = _mm_min_pd(gv, msv);
    const __m128d ta =
        _mm_min_pd(_mm_max_pd(gv, msv), _mm_min_pd(t0, t1));
    const __m128d fh = _mm_unpackhi_pd(fa, fa);
    const double flo = _mm_cvtsd_f64(fa);
    const double fhi = _mm_cvtsd_f64(fh);
    const double ilo = _mm_cvtsd_f64(ia);
    const double ihi = _mm_cvtsd_f64(_mm_unpackhi_pd(ia, ia));
    const double slo = _mm_cvtsd_f64(sa);
    const double shi = _mm_cvtsd_f64(_mm_unpackhi_pd(sa, sa));
    const double tlo2 = _mm_cvtsd_f64(ta);
    const double thi2 = _mm_cvtsd_f64(_mm_unpackhi_pd(ta, ta));
    m1 = std::min(flo, fhi);
    const double g = std::max(flo, fhi);
    const double ms = std::min(slo, shi);
    m2 = std::min(g, ms);
    m3 = std::min(std::max(g, ms), std::min(tlo2, thi2));
    const bool low_lane = flo < fhi || (flo == fhi && ilo < ihi);
    pair = static_cast<uint32_t>(low_lane ? ilo : ihi);
#else
    Value f0 = kInfValue, f1 = kInfValue;
    Value s0 = kInfValue, s1 = kInfValue;
    Value t0 = kInfValue, t1 = kInfValue;
    uint32_t i = 0;
    for (; i + 2 <= np; i += 2) {
      const Value v0 = pm[i], v1 = pm[i + 1];
      const Value mv0 = std::max(v0, f0);
      const Value mv1 = std::max(v1, f1);
      t0 = std::min(t0, std::max(s0, mv0));
      t1 = std::min(t1, std::max(s1, mv1));
      s0 = std::min(s0, mv0);
      s1 = std::min(s1, mv1);
      f0 = std::min(f0, v0);
      f1 = std::min(f1, v1);
    }
    for (; i < np; ++i) {
      const Value v = pm[i];
      const Value mv = std::max(v, f0);
      t0 = std::min(t0, std::max(s0, mv));
      s0 = std::min(s0, mv);
      f0 = std::min(f0, v);
    }
    m1 = std::min(f0, f1);
    const Value g = std::max(f0, f1);
    const Value ms = std::min(s0, s1);
    m2 = std::min(g, ms);
    m3 = std::min(std::max(g, ms), std::min(t0, t1));
    pair = 0;
    while (pm[pair] != m1) ++pair;
#endif
    *x2 = m2;
    *x3 = m3;
    const uint32_t base = 2 * pair;
    // Even lane first on a tie: the lower slot wins equal differences.
    // Branchless — which lane holds the pair min is a coin flip.
    const uint32_t w = base | static_cast<uint32_t>(cur_dif_[base] != m1);
    *ru_dif = std::min(m2, cur_dif_[w ^ 1]);
    return w;
  }

  size_t ColumnLength(size_t dim) const {
    if constexpr (requires(const Accessor& a, size_t i) {
                    { a.column_length(i) } -> std::convertible_to<size_t>;
                  }) {
      return acc_.column_length(dim);
    } else {
      (void)dim;
      return c_;
    }
  }

  bool AccessorFailed() const {
    if constexpr (KernelStatusReportingAccessor<Accessor>) {
      return !acc_.status().ok();
    } else {
      return false;
    }
  }

  void RecordRun(uint64_t length) {
    if (length == 0) return;
    run_entries_ += length;
    ++run_length_buckets_[std::bit_width(length)];
  }

  /// Refills `slot`'s read-ahead buffer from the accessor. Returns
  /// false when the column direction is exhausted or the accessor
  /// failed (nothing buffered).
  bool Refill(uint32_t slot) {
    const size_t idx = next_idx_[slot];
    if (idx == kExhausted) return false;
    const size_t dim = slot / 2;
    size_t got;
    if constexpr (RunReadingAccessor<Accessor>) {
      // Entries available walking away from the query from idx.
      const size_t avail =
          slot % 2 == 0 ? idx + 1 : ColumnLength(dim) - idx;
      const size_t want = std::min(avail, kAdRunBlock);
      got = acc_.ReadRun(dim, idx, want, slot, scratch_->buf_values(slot),
                         scratch_->buf_pids(slot));
      if (AccessorFailed()) return false;
      assert(got >= 1 && got <= want);
    } else {
      const ColumnEntry e = acc_.ReadEntry(dim, idx, slot);
      if (AccessorFailed()) return false;
      scratch_->buf_values(slot)[0] = e.value;
      scratch_->buf_pids(slot)[0] = e.pid;
      got = 1;
    }
    buf_pos_[slot] = 0;
    buf_len_[slot] = static_cast<uint32_t>(got);
    // Every buffered pid gets its appearance slot bumped when it pops;
    // touching those (random) lines now overlaps the misses with the
    // pops of other cursors instead of stalling each pop in turn.
    const PointId* pids = scratch_->buf_pids(slot);
    for (size_t i = 0; i < got; ++i) scratch_->PrefetchAppearances(pids[i]);
    if (slot % 2 == 0) {
      next_idx_[slot] = idx + 1 == got ? kExhausted : idx - got;
    } else {
      next_idx_[slot] =
          idx + got == ColumnLength(dim) ? kExhausted : idx + got;
    }
    return true;
  }

  /// How many entries ahead of the cursor front the direct path
  /// prefetches the appearance slot: far enough (8 entries = ~16d pops
  /// of other-cursor work) to cover the table's cache miss.
  static constexpr size_t kAppearPrefetchDist = 8;

  /// Moves `slot`'s cursor front one entry outward: pulls the next
  /// buffered entry (refilling if needed), charges it as retrieved, and
  /// computes its weighted difference. Marks the cursor exhausted
  /// (kInfValue) when its column direction runs dry. Directly
  /// addressable columns skip the buffer and walk the arrays in place.
  void Advance(uint32_t slot) {
    if constexpr (DirectColumnAccessor<Accessor>) {
      const size_t idx = next_idx_[slot];
      if (idx == kExhausted) {
        cur_dif_[slot] = kInfValue;
        cur_pid_[slot] = kInvalidPointId;
        return;
      }
      const Value* vals = col_vals_[slot];
      const PointId* pids = col_pids_[slot];
      // Charged here — when the entry enters the cursor front, which
      // is the moment the per-entry reference engine reads it.
      ++attributes_retrieved_;
      const Value v = vals[idx];
      cur_pid_[slot] = pids[idx];
      const size_t dim = slot / 2;
      Value dif = slot % 2 == 0 ? query_[dim] - v : v - query_[dim];
      if (!weights_.empty()) dif *= weights_[dim];
      cur_dif_[slot] = dif;
      if (slot % 2 == 0) {
        next_idx_[slot] = idx == 0 ? kExhausted : idx - 1;
        if (idx >= kAppearPrefetchDist) {
          scratch_->PrefetchAppearances(pids[idx - kAppearPrefetchDist]);
        }
      } else {
        next_idx_[slot] = idx + 1 == col_len_[slot] ? kExhausted : idx + 1;
        if (idx + kAppearPrefetchDist < col_len_[slot]) {
          scratch_->PrefetchAppearances(pids[idx + kAppearPrefetchDist]);
        }
      }
      return;
    }
    if (buf_pos_[slot] == buf_len_[slot] && !Refill(slot)) {
      cur_dif_[slot] = kInfValue;
      cur_pid_[slot] = kInvalidPointId;
      return;
    }
    const uint32_t p = buf_pos_[slot]++;
    const Value v = scratch_->buf_values(slot)[p];
    // Charged here — when the entry enters the cursor front, which is
    // the moment the per-entry reference engine reads it — so buffered
    // read-ahead never inflates the paper's cost metric.
    ++attributes_retrieved_;
    const size_t dim = slot / 2;
    Value dif = slot % 2 == 0 ? query_[dim] - v : v - query_[dim];
    if (!weights_.empty()) dif *= weights_[dim];
    cur_dif_[slot] = dif;
    cur_pid_[slot] = scratch_->buf_pids(slot)[p];
  }

  Accessor& acc_;
  std::span<const Value> query_;
  std::span<const Value> weights_;
  size_t c_;
  size_t slots_ = 0;
  bool use_scan_ = false;
  uint64_t attributes_retrieved_ = 0;
  uint64_t tree_replays_ = 0;
  uint64_t run_entries_ = 0;
  std::array<uint64_t, 65> run_length_buckets_{};
  AdScratch owned_scratch_;  // used when the caller supplies no arena
  AdScratch* scratch_;
  AdLoserTree* tree_ = nullptr;
  size_t* next_idx_ = nullptr;
  Value* cur_dif_ = nullptr;
  PointId* cur_pid_ = nullptr;
  uint32_t* buf_pos_ = nullptr;
  uint32_t* buf_len_ = nullptr;
  const Value** col_vals_ = nullptr;    // direct path only
  const PointId** col_pids_ = nullptr;  // direct path only
  size_t* col_len_ = nullptr;           // direct path only
  Value* pair_min_ = nullptr;           // scan path only
};

}  // namespace knmatch::internal

#endif  // KNMATCH_CORE_AD_KERNEL_H_

#include "knmatch/core/sorted_columns.h"

#include <algorithm>
#include <numeric>

namespace knmatch {

SortedColumns::SortedColumns(const Dataset& db) {
  values_.resize(db.dims());
  pids_.resize(db.dims());
  std::vector<PointId> order(db.size());
  for (size_t dim = 0; dim < db.dims(); ++dim) {
    std::iota(order.begin(), order.end(), PointId{0});
    // Ties broken by pid so the order — and every AD answer derived
    // from it — is deterministic.
    std::sort(order.begin(), order.end(), [&](PointId a, PointId b) {
      const Value va = db.at(a, dim);
      const Value vb = db.at(b, dim);
      if (va != vb) return va < vb;
      return a < b;
    });
    auto& vals = values_[dim];
    auto& ids = pids_[dim];
    vals.resize(db.size());
    ids.resize(db.size());
    for (size_t i = 0; i < order.size(); ++i) {
      vals[i] = db.at(order[i], dim);
      ids[i] = order[i];
    }
  }
}

}  // namespace knmatch

#include "knmatch/core/sorted_columns.h"

#include <algorithm>

namespace knmatch {

SortedColumns::SortedColumns(const Dataset& db) {
  columns_.resize(db.dims());
  for (size_t dim = 0; dim < db.dims(); ++dim) {
    auto& col = columns_[dim];
    col.resize(db.size());
    for (PointId pid = 0; pid < db.size(); ++pid) {
      col[pid] = ColumnEntry{db.at(pid, dim), pid};
    }
    std::sort(col.begin(), col.end(),
              [](const ColumnEntry& a, const ColumnEntry& b) {
                if (a.value != b.value) return a.value < b.value;
                return a.pid < b.pid;
              });
  }
}

}  // namespace knmatch

#ifndef KNMATCH_CORE_NMATCH_H_
#define KNMATCH_CORE_NMATCH_H_

#include <cstddef>
#include <span>
#include <vector>

#include "knmatch/common/status.h"
#include "knmatch/common/types.h"

namespace knmatch {

/// Fills `out` (resized to p.size()) with |p_i - q_i| sorted ascending.
/// This is the Delta' array of Definition 1.
void SortedAbsDifferences(std::span<const Value> p, std::span<const Value> q,
                          std::vector<Value>* out);

/// The n-match difference of P with regard to Q (Definition 1): the n-th
/// smallest of the per-dimension absolute differences, 1-based.
/// Requires 1 <= n <= p.size() and p.size() == q.size().
Value NMatchDifference(std::span<const Value> p, std::span<const Value> q,
                       size_t n);

/// Validates the common (k, n0, n1) parameters of (frequent) k-n-match
/// queries against a database of cardinality `c` and dimensionality `d`.
Status ValidateMatchParams(size_t c, size_t d, size_t query_dims, size_t n0,
                           size_t n1, size_t k);

}  // namespace knmatch

#endif  // KNMATCH_CORE_NMATCH_H_

#ifndef KNMATCH_CORE_QUERY_CONTEXT_H_
#define KNMATCH_CORE_QUERY_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "knmatch/common/status.h"
#include "knmatch/core/match_types.h"
#include "knmatch/obs/catalog.h"
#include "knmatch/storage/disk_simulator.h"

namespace knmatch {

/// Hard resource ceilings for one query; 0 means unlimited. Exceeding
/// any of them trips the query with kResourceExhausted — retrying
/// unchanged would exhaust it again, so the remedy is shrinking the
/// query or raising the budget.
struct QueryBudgets {
  /// Attributes retrieved (the paper's cost metric; scans charge c*d
  /// as they stream rows).
  uint64_t max_attributes = 0;
  /// Physical page reads on the simulated disk, counted from the
  /// moment the query arms its context on the store's DiskSimulator.
  uint64_t max_pages = 0;
  /// Working-memory footprint of the AD scratch arena; checked once at
  /// admission, before anything is allocated.
  size_t max_scratch_bytes = 0;

  bool any() const {
    return max_attributes != 0 || max_pages != 0 || max_scratch_bytes != 0;
  }
};

/// Everything the query ran up against when it tripped: how far the
/// ascend got and the best-so-far answer sets, so a caller on a
/// deadline still gets the partial result the attributes it paid for
/// support.
struct GovernanceTrip {
  /// Attributes consumed in ascending difference order before the trip
  /// (0 for the scan-shaped methods, which have no pop loop).
  uint64_t pops = 0;
  /// Attributes retrieved before the trip.
  uint64_t attributes_retrieved = 0;
  /// Physical pages read between ArmPages() and the trip.
  uint64_t pages_read = 0;
  /// Best-so-far k-n-match answer sets at the moment of the trip, one
  /// per n in the query's [n0, n1] (empty for methods that had not yet
  /// produced exact candidates, e.g. a VA query tripped in phase 1).
  /// Entries are exact prefixes of the untripped answer: the AD engines
  /// emit completions in final order, and the scan engines snapshot
  /// their running top-k accumulators.
  std::vector<std::vector<Neighbor>> partial_per_n_sets;
};

/// Per-query governance: a monotonic deadline, a shared cancellation
/// token, and resource budgets, checked cooperatively by every engine
/// at amortized intervals (once per N pop-rounds or row-batches — never
/// per pop, so the ungoverned hot path is untouched and the governed
/// one stays within the bench drift budget).
///
/// A context is single-query, single-thread state (the cancel token may
/// be set from any thread). Pass one by pointer into any engine entry
/// point; nullptr everywhere means ungoverned. On a trip the engine
/// unwinds cleanly, the context latches a typed status —
/// kDeadlineExceeded (deadline), kResourceExhausted (budgets),
/// kUnavailable (cancel) — plus a GovernanceTrip with the partial
/// result, and the entry point returns that status. The engine object
/// itself stays fully reusable.
///
/// ```
/// QueryContext ctx;
/// ctx.set_deadline_in_ms(5.0);
/// ctx.budgets().max_attributes = 100'000;
/// auto r = engine.DiskFrequentKnMatch(q, 1, d, k, method, &ctx);
/// if (!r.ok() && ctx.tripped()) { ... ctx.trip().partial_per_n_sets ... }
/// ```
class QueryContext {
 public:
  using Clock = std::chrono::steady_clock;

  QueryContext() = default;

  /// Arms a wall-clock deadline `ms` milliseconds from now (<= 0
  /// clears it). Rearm() restarts the same duration later.
  void set_deadline_in_ms(double ms) {
    deadline_duration_ms_ = ms > 0 ? ms : 0;
    ArmDeadline();
  }

  /// Arms an absolute deadline (the batch executor shares one across a
  /// batch). The fraction-consumed observation measures from now.
  void set_deadline(Clock::time_point deadline) {
    deadline_duration_ms_ = 0;
    has_deadline_ = true;
    start_ = Clock::now();
    deadline_ = deadline;
  }

  /// Shares a cancellation token: set it to true from any thread and
  /// the query trips (kUnavailable) at its next governance check.
  void set_cancel(std::shared_ptr<std::atomic<bool>> cancel) {
    cancel_ = std::move(cancel);
  }

  QueryBudgets& budgets() { return budgets_; }
  const QueryBudgets& budgets() const { return budgets_; }

  /// True when a deadline (duration or absolute) is armed.
  bool has_deadline() const { return has_deadline_; }

  /// The armed absolute deadline; meaningful only when has_deadline().
  /// The shard router reads it to carve per-shard deadline slices.
  Clock::time_point deadline() const { return deadline_; }

  /// The shared cancellation token (null when none). The shard router
  /// re-arms each per-shard child context with it, so one cancel trips
  /// every in-flight shard slice.
  const std::shared_ptr<std::atomic<bool>>& cancel_token() const {
    return cancel_;
  }

  /// True when any limit is armed; engines take the plain ungoverned
  /// path otherwise.
  bool governed() const {
    return has_deadline_ || cancel_ != nullptr || budgets_.any();
  }

  /// Points page accounting at the store's simulator and snapshots its
  /// counter, so max_pages bounds the pages THIS query reads. Engines
  /// call it on entry; pass nullptr for memory-only methods.
  void ArmPages(const DiskSimulator* disk) {
    disk_ = disk;
    page_base_ = disk != nullptr ? disk->total_reads() : 0;
  }

  /// Clears the trip and restarts a duration deadline from now; page
  /// accounting re-arms on the next engine entry. Call between queries
  /// when reusing one context.
  void Rearm() {
    trip_status_ = Status::OK();
    trip_ = GovernanceTrip{};
    ArmDeadline();
  }

  /// Admission check of the scratch arena's estimated footprint; false
  /// (with a latched kResourceExhausted) refuses the query before any
  /// allocation happens.
  bool AdmitScratch(size_t bytes) {
    if (tripped()) return false;
    if (budgets_.max_scratch_bytes != 0 &&
        bytes > budgets_.max_scratch_bytes) {
      Trip(Status::ResourceExhausted(
               "scratch-memory budget refuses query"),
           obs::Cat().governance_trip_scratch);
      return false;
    }
    return true;
  }

  /// The amortized in-flight check: false once the query must stop.
  /// `attributes` and `pops` are the engine's running totals; pages are
  /// read off the armed simulator. Called once per governance stride,
  /// not per pop.
  bool Recheck(uint64_t attributes, uint64_t pops) {
    if (tripped()) return false;
    trip_.attributes_retrieved = attributes;
    trip_.pops = pops;
    if (disk_ != nullptr) {
      trip_.pages_read = disk_->total_reads() - page_base_;
    }
    if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
      Trip(Status::Unavailable("query cancelled"),
           obs::Cat().governance_trip_cancel);
      return false;
    }
    if (budgets_.max_attributes != 0 &&
        attributes > budgets_.max_attributes) {
      Trip(Status::ResourceExhausted("attribute budget exhausted"),
           obs::Cat().governance_trip_attributes);
      return false;
    }
    if (budgets_.max_pages != 0 && trip_.pages_read > budgets_.max_pages) {
      Trip(Status::ResourceExhausted("page-read budget exhausted"),
           obs::Cat().governance_trip_pages);
      return false;
    }
    if (has_deadline_ && Clock::now() >= deadline_) {
      Trip(Status::DeadlineExceeded("query deadline exceeded"),
           obs::Cat().governance_trip_deadline);
      return false;
    }
    return true;
  }

  /// True once a check failed; latched until Rearm().
  bool tripped() const { return !trip_status_.ok(); }
  /// The typed trip reason; OK while untripped.
  const Status& trip_status() const { return trip_status_; }
  /// Progress and partial result at the trip.
  const GovernanceTrip& trip() const { return trip_; }
  GovernanceTrip& trip() { return trip_; }

  /// Hands the unwinding engine's best-so-far answer sets to the trip
  /// record (moves them out of `sets`).
  void StorePartialSets(std::vector<std::vector<Neighbor>>* sets) {
    trip_.partial_per_n_sets = std::move(*sets);
  }

  /// Observes what share of the deadline the query consumed (percent;
  /// tripped queries land at or above 100). Entry-point facades call
  /// this once per query, after the query settles.
  void ObserveDeadlineFraction() const {
    if (!has_deadline_ || !obs::Enabled()) return;
    const double total =
        std::chrono::duration<double>(deadline_ - start_).count();
    if (total <= 0) return;
    const double used =
        std::chrono::duration<double>(Clock::now() - start_).count();
    obs::Cat().deadline_fraction->Observe(
        static_cast<uint64_t>(100.0 * used / total));
  }

 private:
  void ArmDeadline() {
    has_deadline_ = deadline_duration_ms_ > 0;
    if (has_deadline_) {
      start_ = Clock::now();
      deadline_ =
          start_ + std::chrono::duration_cast<Clock::duration>(
                       std::chrono::duration<double, std::milli>(
                           deadline_duration_ms_));
    }
  }

  void Trip(Status status, obs::Counter* counter) {
    trip_status_ = std::move(status);
    if (obs::Enabled()) counter->Add();
  }

  QueryBudgets budgets_;
  std::shared_ptr<std::atomic<bool>> cancel_;
  double deadline_duration_ms_ = 0;
  bool has_deadline_ = false;
  Clock::time_point start_;
  Clock::time_point deadline_;
  const DiskSimulator* disk_ = nullptr;
  uint64_t page_base_ = 0;
  Status trip_status_;
  GovernanceTrip trip_;
};

namespace internal {

/// Pops between governance rechecks in the AD drivers (and rows
/// between rechecks in the scan-shaped engines). Small enough that a
/// 1 ms deadline trips within microseconds of work, large enough that
/// the clock read and counter refresh amortize to noise per pop.
inline constexpr uint32_t kGovernanceStride = 256;

}  // namespace internal

}  // namespace knmatch

#endif  // KNMATCH_CORE_QUERY_CONTEXT_H_

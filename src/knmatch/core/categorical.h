#ifndef KNMATCH_CORE_CATEGORICAL_H_
#define KNMATCH_CORE_CATEGORICAL_H_

#include <span>
#include <vector>

#include "knmatch/common/dataset.h"
#include "knmatch/common/status.h"
#include "knmatch/core/match_types.h"

namespace knmatch {

/// Attribute kinds for the mixed-type extension. The paper (footnote 1
/// and Sec. 7) points out that the matching-based model gives a uniform
/// treatment of spatial and categorical attributes; this module realizes
/// that: a categorical dimension contributes difference 0 on an exact
/// match and a fixed mismatch penalty otherwise, while numeric
/// dimensions contribute |p_i - q_i| (optionally weighted).
enum class AttributeKind : uint8_t {
  kNumeric = 0,
  kCategorical = 1,
};

/// Per-dimension schema for mixed-type k-n-match queries.
struct MixedSchema {
  /// One entry per dimension; missing entries default to kNumeric.
  std::vector<AttributeKind> kinds;
  /// Difference charged to a categorical mismatch. With numeric data
  /// normalized to [0, 1], the default (1.0) equals the largest possible
  /// numeric dissimilarity.
  Value mismatch_penalty = 1.0;
  /// Optional per-dimension weights applied to the difference before the
  /// n-th-smallest selection; empty means all 1.0.
  std::vector<Value> weights;
};

/// The weighted/mixed n-match difference of P with regard to Q under the
/// schema: the n-th smallest of the per-dimension (weighted) differences.
Value MixedNMatchDifference(std::span<const Value> p,
                            std::span<const Value> q,
                            const MixedSchema& schema, size_t n);

/// Scan-based mixed-type k-n-match.
Result<KnMatchResult> MixedKnMatch(const Dataset& db,
                                   std::span<const Value> query,
                                   const MixedSchema& schema, size_t n,
                                   size_t k);

/// Scan-based mixed-type frequent k-n-match over [n0, n1].
Result<FrequentKnMatchResult> MixedFrequentKnMatch(
    const Dataset& db, std::span<const Value> query,
    const MixedSchema& schema, size_t n0, size_t n1, size_t k);

}  // namespace knmatch

#endif  // KNMATCH_CORE_CATEGORICAL_H_

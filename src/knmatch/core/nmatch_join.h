#ifndef KNMATCH_CORE_NMATCH_JOIN_H_
#define KNMATCH_CORE_NMATCH_JOIN_H_

#include <vector>

#include "knmatch/common/dataset.h"
#include "knmatch/common/status.h"
#include "knmatch/common/types.h"

namespace knmatch {

/// One pair of a similarity self-join; a < b by construction.
struct JoinPair {
  PointId a = kInvalidPointId;
  PointId b = kInvalidPointId;

  friend bool operator==(const JoinPair& x, const JoinPair& y) {
    return x.a == y.a && x.b == y.b;
  }
  friend bool operator<(const JoinPair& x, const JoinPair& y) {
    if (x.a != y.a) return x.a < y.a;
    return x.b < y.b;
  }
};

/// The epsilon-n-match similarity self-join — the natural join operator
/// of the matching model (a step past the paper, which only defines
/// search): all pairs (P, Q) that match within `epsilon` in at least
/// `n` dimensions, i.e., whose n-match difference is <= epsilon.
///
/// Algorithm: the sorted-column organization the AD algorithm already
/// maintains gives each dimension's epsilon-pairs by a sliding window
/// over the sorted values; a pair qualifying in n dimensions is counted
/// n times across the windows, so tallying pair counts and keeping
/// those with count >= n answers the join. Cost is O(sum of window
/// pair counts) — output-sensitive, far below the naive O(c^2 d) when
/// epsilon is selective.
///
/// Pairs are returned sorted ascending. Memory scales with the number
/// of window pairs; pick epsilon accordingly.
Result<std::vector<JoinPair>> NMatchSelfJoin(const Dataset& db, size_t n,
                                             Value epsilon);

}  // namespace knmatch

#endif  // KNMATCH_CORE_NMATCH_JOIN_H_

#ifndef KNMATCH_CORE_SORTED_COLUMNS_H_
#define KNMATCH_CORE_SORTED_COLUMNS_H_

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "knmatch/common/dataset.h"
#include "knmatch/common/types.h"

namespace knmatch {

/// One attribute inside a sorted dimension: the value and the id of the
/// point it belongs to. This is the "(point ID, attribute) pair" of the
/// paper's Figure 5.
struct ColumnEntry {
  Value value = 0;
  PointId pid = kInvalidPointId;

  friend bool operator==(const ColumnEntry& a, const ColumnEntry& b) {
    return a.value == b.value && a.pid == b.pid;
  }
};

/// The paper's data organization for the AD algorithm: every dimension
/// of the dataset sorted independently by attribute value (ties broken
/// by point id, for determinism). Equivalently, the "scores sorted by
/// each system" of the multiple-system IR model [Fagin 96].
class SortedColumns {
 public:
  SortedColumns() = default;

  /// Builds the d sorted columns from a dataset. O(d * c log c).
  explicit SortedColumns(const Dataset& db);

  /// Dimensionality d.
  size_t dims() const { return columns_.size(); }
  /// Cardinality c (entries per column).
  size_t size() const { return columns_.empty() ? 0 : columns_[0].size(); }

  /// The sorted entries of dimension `dim`.
  std::span<const ColumnEntry> column(size_t dim) const {
    return columns_[dim];
  }

  /// Index of the first entry in `dim` whose value is >= v (i.e.,
  /// std::lower_bound). Entries at smaller indices are strictly < v.
  /// Defined in-header (like the column reads above) so the AD hot
  /// path inlines it.
  size_t LowerBound(size_t dim, Value v) const {
    const auto& col = columns_[dim];
    auto it = std::lower_bound(
        col.begin(), col.end(), v,
        [](const ColumnEntry& e, Value target) { return e.value < target; });
    return static_cast<size_t>(it - col.begin());
  }

 private:
  std::vector<std::vector<ColumnEntry>> columns_;
};

}  // namespace knmatch

#endif  // KNMATCH_CORE_SORTED_COLUMNS_H_

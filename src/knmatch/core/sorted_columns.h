#ifndef KNMATCH_CORE_SORTED_COLUMNS_H_
#define KNMATCH_CORE_SORTED_COLUMNS_H_

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "knmatch/common/dataset.h"
#include "knmatch/common/types.h"

namespace knmatch {

/// One attribute inside a sorted dimension: the value and the id of the
/// point it belongs to. This is the "(point ID, attribute) pair" of the
/// paper's Figure 5.
struct ColumnEntry {
  Value value = 0;
  PointId pid = kInvalidPointId;

  friend bool operator==(const ColumnEntry& a, const ColumnEntry& b) {
    return a.value == b.value && a.pid == b.pid;
  }
};

/// The paper's data organization for the AD algorithm: every dimension
/// of the dataset sorted independently by attribute value (ties broken
/// by point id, for determinism). Equivalently, the "scores sorted by
/// each system" of the multiple-system IR model [Fagin 96].
///
/// Storage is structure-of-arrays: each dimension keeps a values[]
/// array and a parallel pids[] array instead of packed (value, pid)
/// pairs. The AD ascend loop is comparison-bound on values alone —
/// splitting the columns halves the bytes the comparisons drag through
/// cache and lets the kernel's run scans walk a dense Value array; the
/// pid is only touched for entries that actually pop.
class SortedColumns {
 public:
  SortedColumns() = default;

  /// Builds the d sorted columns from a dataset. O(d * c log c).
  explicit SortedColumns(const Dataset& db);

  /// Dimensionality d.
  size_t dims() const { return values_.size(); }
  /// Cardinality c (entries per column).
  size_t size() const { return values_.empty() ? 0 : values_[0].size(); }

  /// The sorted attribute values of dimension `dim`.
  std::span<const Value> values(size_t dim) const { return values_[dim]; }
  /// The point ids of dimension `dim`, parallel to values(dim).
  std::span<const PointId> pids(size_t dim) const { return pids_[dim]; }

  /// The idx-th smallest entry of dimension `dim`, reassembled from the
  /// two parallel arrays (for cold paths and tests; hot loops should
  /// read values()/pids() directly).
  ColumnEntry entry(size_t dim, size_t idx) const {
    return ColumnEntry{values_[dim][idx], pids_[dim][idx]};
  }

  /// Index of the first entry in `dim` whose value is >= v (i.e.,
  /// std::lower_bound). Entries at smaller indices are strictly < v.
  /// Defined in-header (like the column reads above) so the AD hot
  /// path inlines it.
  size_t LowerBound(size_t dim, Value v) const {
    const auto& col = values_[dim];
    auto it = std::lower_bound(col.begin(), col.end(), v);
    return static_cast<size_t>(it - col.begin());
  }

 private:
  std::vector<std::vector<Value>> values_;
  std::vector<std::vector<PointId>> pids_;
};

}  // namespace knmatch

#endif  // KNMATCH_CORE_SORTED_COLUMNS_H_

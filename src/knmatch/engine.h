#ifndef KNMATCH_ENGINE_H_
#define KNMATCH_ENGINE_H_

#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "knmatch/baselines/igrid.h"
#include "knmatch/baselines/knn_scan.h"
#include "knmatch/cache/cached_search.h"
#include "knmatch/cache/query_cache.h"
#include "knmatch/common/dataset.h"
#include "knmatch/common/status.h"
#include "knmatch/core/ad_algorithm.h"
#include "knmatch/core/match_types.h"
#include "knmatch/core/nmatch_join.h"
#include "knmatch/core/query_context.h"
#include "knmatch/diskalgo/disk_ad.h"
#include "knmatch/diskalgo/disk_scan.h"
#include "knmatch/eval/advisor.h"
#include "knmatch/eval/experiment.h"
#include "knmatch/exec/batch.h"
#include "knmatch/exec/circuit_breaker.h"
#include "knmatch/storage/column_store.h"
#include "knmatch/storage/fault_injector.h"
#include "knmatch/storage/row_store.h"
#include "knmatch/vafile/va_file.h"
#include "knmatch/vafile/va_knmatch.h"

namespace knmatch {

class LiveColumnIndex;

namespace cache {
class BTreeCacheBridge;
}  // namespace cache

namespace eval {
class SelectivityEstimator;
}  // namespace eval

/// One-stop similarity-search engine over a dataset: the public facade
/// a downstream application embeds. Owns the dataset and builds each
/// access structure (sorted columns, IGrid, the simulated-disk stores,
/// the cost advisor) lazily on first use, so cheap workloads pay only
/// for what they touch.
///
/// ```
/// SimilarityEngine engine(datagen::MakeTextureLike());
/// auto r = engine.FrequentKnMatch(q, 4, 8, 10);
/// auto d = engine.DiskFrequentKnMatch(q, 4, 8, 10);  // advisor-routed
///
/// exec::BatchRequest batch;
/// batch.queries = ...;            // Q independent queries
/// batch.options.threads = 8;
/// auto rs = engine.KnMatchBatch(batch, 8, 10);  // fanned across 8 workers
/// ```
///
/// Thread-safety (see docs/parallelism.md for the full contract): the
/// lazy builders are guarded by std::call_once, so the in-memory query
/// methods — KnMatch, FrequentKnMatch, Knn, and the *Batch entry
/// points — are safe to call concurrently from many threads. The Disk*
/// methods and EstimateSelectivity record per-call state (last cost,
/// simulator counters) and require external serialization, as does
/// InsertPoint (it mutates the dataset and invalidates every index).
class SimilarityEngine {
 public:
  /// Disk execution strategies for DiskFrequentKnMatch.
  enum class DiskMethod {
    kAuto,  // route via the sampling cost advisor
    kScan,
    kAd,
    kVaFile,
    kMemoryAd,  // in-memory AD: the last-resort fallback, no disk I/O
  };

  /// Takes ownership of the dataset. `config` parameterizes the
  /// simulated disk used by the Disk* entry points.
  explicit SimilarityEngine(Dataset db, DiskConfig config = DiskConfig());
  ~SimilarityEngine();

  SimilarityEngine(const SimilarityEngine&) = delete;
  SimilarityEngine& operator=(const SimilarityEngine&) = delete;

  /// The engine's dataset.
  const Dataset& dataset() const { return db_; }

  /// In-memory k-n-match via the AD algorithm. Optional `ctx` governs
  /// the query (deadline, cancellation, resource budgets — see
  /// QueryContext); on a trip the call returns the context's typed
  /// status (kDeadlineExceeded / kResourceExhausted / kUnavailable)
  /// and ctx->trip() holds progress plus the best-so-far partial
  /// result. The engine stays fully reusable after a trip.
  Result<KnMatchResult> KnMatch(std::span<const Value> query, size_t n,
                                size_t k,
                                std::span<const Value> weights = {},
                                QueryContext* ctx = nullptr) const;

  /// In-memory frequent k-n-match via the AD algorithm; `ctx` as on
  /// KnMatch.
  Result<FrequentKnMatchResult> FrequentKnMatch(
      std::span<const Value> query, size_t n0, size_t n1, size_t k,
      std::span<const Value> weights = {}, QueryContext* ctx = nullptr) const;

  /// Exact kNN by scan; `ctx` as on KnMatch.
  Result<KnMatchResult> Knn(std::span<const Value> query, size_t k,
                            Metric metric = Metric::kEuclidean,
                            QueryContext* ctx = nullptr) const;

  /// Batch k-n-match: fans the request's queries across a fixed worker
  /// pool over the shared sorted columns, each worker reusing a private
  /// AdScratch arena. Results are index-aligned with the request's
  /// queries and bit-for-bit identical to per-query KnMatch calls,
  /// independent of thread count. Batch calls are internally
  /// serialized; concurrent callers queue on a mutex.
  Result<exec::KnMatchBatchResult> KnMatchBatch(
      const exec::BatchRequest& request, size_t n, size_t k,
      std::span<const Value> weights = {}) const;

  /// Batch frequent k-n-match; semantics as KnMatchBatch.
  Result<exec::FrequentKnMatchBatchResult> FrequentKnMatchBatch(
      const exec::BatchRequest& request, size_t n0, size_t n1, size_t k,
      std::span<const Value> weights = {}) const;

  /// Batch exact kNN by scan; semantics as KnMatchBatch.
  Result<exec::KnMatchBatchResult> KnnBatch(
      const exec::BatchRequest& request, size_t k,
      Metric metric = Metric::kEuclidean) const;

  /// IGrid similarity search (best-first; distance = negated
  /// similarity).
  Result<KnMatchResult> IGridSearch(std::span<const Value> query,
                                    size_t k) const;

  /// ε-n-match similarity self-join over the whole dataset.
  Result<std::vector<JoinPair>> SelfJoin(size_t n, Value epsilon) const;

  /// Analytic (histogram-based) estimate of a k-n-match query's
  /// difference threshold and AD attribute fraction.
  struct SelectivityEstimate {
    Value estimated_difference = 0;
    double ad_attribute_fraction = 0;
  };
  Result<SelectivityEstimate> EstimateSelectivity(
      std::span<const Value> query, size_t n, size_t k) const;

  /// Appends a point to the dataset (its id is the previous
  /// cardinality, which is returned). Every index built so far is
  /// invalidated and lazily rebuilt on next use — the simple,
  /// correct-by-construction policy for the occasional insert; bulk
  /// loads should construct a fresh engine. The result cache, if
  /// enabled, is NOT dropped wholesale: the insert invalidates
  /// precisely the entries the new point could change (see
  /// cache::QueryResultCache).
  PointId InsertPoint(std::span<const Value> coords, Label label = kNoLabel);

  /// Enables the shared query-result cache for the in-memory entry
  /// points (KnMatch / FrequentKnMatch / Knn and their batch
  /// variants). Replaces any existing cache (dropping its contents).
  /// Requires external serialization like InsertPoint — enable caching
  /// at setup time, not mid-query.
  void EnableCache(cache::CacheConfig config = cache::CacheConfig());

  /// Drops the cache and turns caching off. Same serialization rules
  /// as EnableCache.
  void DisableCache();

  /// The engine's result cache, or nullptr when caching is off. For
  /// stats, Clear(), and tests; the pointer is stable while enabled.
  cache::QueryResultCache* cache() const { return cache_.get(); }

  /// The dataset epoch the cache's entries are keyed under — unique
  /// per engine, so entries can never alias across engines sharing a
  /// cache in a future embedding.
  uint64_t cache_epoch() const { return cache_epoch_; }

  // --- Live ingest (crash-consistent streaming mutations) ---
  //
  // BeginIngest() opens a durable single-writer session over the
  // current dataset: one WAL-backed B+-tree per dimension
  // (LiveColumnIndex). IngestPoint/ErasePoint are then transactional
  // across all d trees, and LiveKnMatch/LiveFrequentKnMatch answer
  // from the last durably committed snapshot epoch — safe to call
  // concurrently with the writer from any thread, bit-identical to a
  // quiesced engine holding the same committed state. The classic
  // query paths keep answering over the dataset as of BeginIngest()
  // until EndIngest() materializes the session.
  //
  // Thread-safety: the Live* query methods are thread-safe;
  // everything else here is writer-side state and requires external
  // serialization (like InsertPoint).

  struct IngestConfig {
    /// WAL commits batched per fsync (see LiveColumnIndex::Config).
    size_t group_commit_window = 1;
  };

  /// Opens a live-ingest session (its own DiskSimulator; the base
  /// dataset is bulk-loaded and checkpointed durably). Fails when one
  /// is already active. When the result cache is enabled, each tree
  /// gets a cache-invalidation listener whose callbacks fire only
  /// after commit durability.
  Status BeginIngest(IngestConfig config);
  Status BeginIngest();

  /// True between BeginIngest() and EndIngest().
  bool ingest_active() const { return live_ != nullptr; }

  /// Durably inserts one point into the live session; its id extends
  /// the id space (base cardinality + inserts so far).
  Result<PointId> IngestPoint(std::span<const Value> coords);

  /// Durably erases a live point; false when `pid` is not live.
  Result<bool> ErasePoint(PointId pid);

  /// Syncs and publishes mutations waiting on the group-commit window.
  Status FlushIngest();

  /// Flushes dirty pages to the checkpoint file and truncates the WAL.
  Status Checkpoint();

  /// Rebuilds the live session's committed state from its durable
  /// surfaces after a (simulated) crash, and bumps the cache epoch so
  /// entries cached before the crash can never serve post-recovery
  /// answers.
  Status Recover();

  /// Ends the session: flush + checkpoint, then materializes the
  /// committed live rows into the engine's dataset (ids remapped to
  /// 0..n-1 in ascending live-id order; labels are dropped — erases
  /// make per-row labels ambiguous) and invalidates every derived
  /// structure, exactly like a bulk rebuild.
  Status EndIngest();

  /// k-n-match over the last durably committed snapshot epoch.
  /// Thread-safe; runs concurrently with the single writer.
  Result<KnMatchResult> LiveKnMatch(std::span<const Value> query, size_t n,
                                    size_t k,
                                    QueryContext* ctx = nullptr) const;

  /// Frequent k-n-match over the committed snapshot; as LiveKnMatch.
  Result<FrequentKnMatchResult> LiveFrequentKnMatch(
      std::span<const Value> query, size_t n0, size_t n1, size_t k,
      QueryContext* ctx = nullptr) const;

  /// The live session's index (nullptr when no session is active).
  /// For the CLI's wal/ingest tooling and tests.
  LiveColumnIndex* live_index() const { return live_.get(); }

  /// Frequent k-n-match against the simulated disk, with the execution
  /// method chosen explicitly or by the cost advisor. The I/O cost of
  /// the run is available from last_disk_cost() afterwards.
  ///
  /// Degradation: when routed with kAuto and the chosen method fails
  /// with kDataLoss or kUnavailable, the engine falls back through the
  /// remaining methods in order kAd -> kVaFile -> kScan -> kMemoryAd
  /// (the in-memory AD terminal fallback cannot hit the faulty disk).
  /// Every method computes identical answers, so a degraded query is
  /// bit-for-bit the same as a healthy one — only its cost differs.
  /// Explicitly-requested methods never fall back: their errors
  /// surface, so callers probing a specific structure see the truth.
  ///
  /// Governance (`ctx`): as on KnMatch, threaded into whichever method
  /// runs. A governance trip NEVER degrades — retrying a query that
  /// already ran out of deadline or budget on a (possibly more
  /// expensive) fallback would amplify exactly the load the trip was
  /// shedding — so tripped queries return immediately with
  /// last_disk_fallback() empty.
  ///
  /// Overload protection: each disk-touching method (scan, AD,
  /// VA-file) sits behind a CircuitBreaker fed by auto-routed
  /// attempts. kAuto skips methods whose breaker is open (half-open
  /// probes recover them); explicit methods bypass the breakers.
  Result<FrequentKnMatchResult> DiskFrequentKnMatch(
      std::span<const Value> query, size_t n0, size_t n1, size_t k,
      DiskMethod method = DiskMethod::kAuto,
      QueryContext* ctx = nullptr) const;

  /// The circuit breaker guarding one disk method (nullptr for methods
  /// that have none: kAuto routes, kMemoryAd cannot fail). Exposed for
  /// tests and diagnostics; same serialization rules as the other
  /// Disk* state.
  const exec::CircuitBreaker* circuit_breaker(DiskMethod method) const;

  /// The method DiskFrequentKnMatch actually executed last — with
  /// kAuto, the one that produced the answer after any fallbacks.
  DiskMethod last_disk_method() const { return last_disk_method_; }

  /// One abandoned attempt in the last query's degradation chain.
  struct DiskFallbackStep {
    DiskMethod method;
    Status status;  // why the method was abandoned
  };
  /// The methods the last DiskFrequentKnMatch tried and abandoned, in
  /// order; empty when the first choice succeeded.
  const std::vector<DiskFallbackStep>& last_disk_fallback() const {
    return last_disk_fallback_;
  }

  /// Cost of the most recent DiskFrequentKnMatch call.
  const eval::QueryCost& last_disk_cost() const { return last_disk_cost_; }

  /// Attaches a fault injector to the simulated disk (pass nullptr to
  /// detach). The injector must outlive the engine; it survives
  /// InsertPoint rebuilds. Requires external serialization like the
  /// other Disk* state.
  void SetFaultInjector(FaultInjector* injector);

  /// Clears injected fault schedules and lifts every page quarantine —
  /// "the operator replaced the disk". Subsequent queries run clean.
  void ClearFaults();

  /// The simulated disk behind the Disk* entry points (built on first
  /// use). For tests and the CLI's fault tooling.
  DiskSimulator* disk_simulator() const;

  /// Structure sizes, for diagnostics and the CLI's `info` command.
  struct StorageStats {
    size_t row_pages = 0;
    size_t column_pages = 0;
    size_t va_pages = 0;
  };
  /// Builds (if needed) and reports the disk stores' footprints.
  StorageStats DiskStorageStats() const;

 private:
  void EnsureAd() const;
  void EnsureIGrid() const;
  void EnsureDiskStores() const;
  void EnsureAdvisor() const;
  void EnsureEstimator() const;

  /// Returns the cached batch executor, rebuilding it if the requested
  /// thread count differs. Caller must hold exec_mu_.
  exec::BatchExecutor& AcquireExecutor(const exec::BatchOptions& options) const;

  /// Re-arms every call_once flag after an invalidation (InsertPoint).
  void ResetOnceFlags();

  /// The cache handle the query paths and the batch executor share.
  cache::CacheBinding CacheHandle() const {
    return cache::CacheBinding{cache_.get(), cache_epoch_};
  }

  /// Runs one concrete disk method (not kAuto) over the built stores.
  Result<FrequentKnMatchResult> RunDiskMethod(DiskMethod method,
                                              std::span<const Value> query,
                                              size_t n0, size_t n1, size_t k,
                                              QueryContext* ctx) const;

  /// Mutable breaker lookup (kScan/kAd/kVaFile only).
  exec::CircuitBreaker* breaker(DiskMethod method) const;

  Dataset db_;
  DiskConfig config_;
  /// Result cache; null when disabled. Epoch is assigned once per
  /// engine from a process-wide counter.
  std::unique_ptr<cache::QueryResultCache> cache_;
  uint64_t cache_epoch_ = 0;
  mutable std::unique_ptr<AdSearcher> ad_;
  mutable std::unique_ptr<IGridIndex> igrid_;
  mutable std::unique_ptr<DiskSimulator> disk_;
  mutable std::unique_ptr<RowStore> rows_;
  mutable std::unique_ptr<ColumnStore> columns_;
  mutable std::unique_ptr<VaFile> va_;
  mutable std::unique_ptr<eval::QueryAdvisor> advisor_;
  mutable std::unique_ptr<eval::SelectivityEstimator> estimator_;
  mutable DiskMethod last_disk_method_ = DiskMethod::kScan;
  mutable eval::QueryCost last_disk_cost_;
  mutable std::vector<DiskFallbackStep> last_disk_fallback_;
  // Per-disk-method breakers for kAuto routing; serialized with the
  // rest of the Disk* state.
  mutable exec::CircuitBreaker breaker_scan_;
  mutable exec::CircuitBreaker breaker_ad_;
  mutable exec::CircuitBreaker breaker_va_;
  FaultInjector* injector_ = nullptr;

  // Live-ingest session state (null when inactive). The session gets
  // its own simulator so ingest I/O accounting never perturbs the
  // Disk* methods' counters. Declaration order matters: the trees in
  // live_ hold raw listener pointers into live_bridge_, so the index
  // must be destroyed first.
  std::unique_ptr<DiskSimulator> live_disk_;
  std::unique_ptr<cache::BTreeCacheBridge> live_bridge_;
  std::unique_ptr<LiveColumnIndex> live_;
  PointId next_ingest_pid_ = 0;

  // Lazy-builder guards. std::once_flag is not resettable, so each
  // lives behind a unique_ptr that InsertPoint recreates when it
  // invalidates the structures (InsertPoint already requires exclusive
  // access — it swaps the dataset under every index).
  mutable std::unique_ptr<std::once_flag> ad_once_;
  mutable std::unique_ptr<std::once_flag> igrid_once_;
  mutable std::unique_ptr<std::once_flag> disk_once_;
  mutable std::unique_ptr<std::once_flag> advisor_once_;
  mutable std::unique_ptr<std::once_flag> estimator_once_;

  // Batch execution: one cached pool + per-worker scratch arenas,
  // rebuilt when a request asks for a different thread count. The
  // mutex serializes whole batch calls (the scratches are per-worker,
  // not per-call).
  mutable std::mutex exec_mu_;
  mutable std::unique_ptr<exec::BatchExecutor> executor_;
};

}  // namespace knmatch

#endif  // KNMATCH_ENGINE_H_

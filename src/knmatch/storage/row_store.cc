#include "knmatch/storage/row_store.h"

#include <cassert>

namespace knmatch {

RowStore::RowStore(const Dataset& db, DiskSimulator* disk)
    : size_(db.size()), dims_(db.dims()), disk_(disk), file_(disk) {
  const size_t row_bytes = dims_ * sizeof(Value);
  assert(row_bytes <= file_.payload_capacity() &&
         "row wider than a page's payload");
  rows_per_page_ = file_.payload_capacity() / row_bytes;

  std::vector<std::byte> image;
  image.reserve(file_.page_size());
  for (PointId pid = 0; pid < size_; ++pid) {
    for (const Value v : db.point(pid)) PutScalar(&image, v);
    if ((pid + 1) % rows_per_page_ == 0) {
      file_.AppendPage(image);
      image.clear();
    }
  }
  if (!image.empty()) file_.AppendPage(image);
}

size_t RowStore::OpenStream() const { return disk_->OpenStream(); }

Result<std::span<const Value>> RowStore::ReadRow(
    size_t stream, PointId pid, std::vector<Value>* buf) const {
  assert(pid < size_);
  const size_t page = pid / rows_per_page_;
  const size_t slot = pid % rows_per_page_;
  auto image = file_.ReadPage(stream, page);
  if (!image.ok()) return image.status();
  buf->resize(dims_);
  for (size_t dim = 0; dim < dims_; ++dim) {
    (*buf)[dim] = GetScalar<Value>(
        image.value(), (slot * dims_ + dim) * sizeof(Value));
  }
  return std::span<const Value>(buf->data(), buf->size());
}

Status RowStore::ForEachRow(
    size_t stream,
    const std::function<void(PointId, std::span<const Value>)>& fn) const {
  return ForEachRowWhile(stream,
                         [&fn](PointId pid, std::span<const Value> row) {
                           fn(pid, row);
                           return true;
                         });
}

Status RowStore::ForEachRowWhile(
    size_t stream,
    const std::function<bool(PointId, std::span<const Value>)>& fn) const {
  std::vector<Value> buf(dims_);
  PointId pid = 0;
  for (size_t page = 0; page < file_.num_pages(); ++page) {
    auto image = file_.ReadPage(stream, page);
    if (!image.ok()) return image.status();
    for (size_t slot = 0; slot < rows_per_page_ && pid < size_;
         ++slot, ++pid) {
      for (size_t dim = 0; dim < dims_; ++dim) {
        buf[dim] = GetScalar<Value>(
            image.value(), (slot * dims_ + dim) * sizeof(Value));
      }
      if (!fn(pid, std::span<const Value>(buf.data(), buf.size()))) {
        return Status::OK();
      }
    }
  }
  return Status::OK();
}

}  // namespace knmatch

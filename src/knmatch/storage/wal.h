#ifndef KNMATCH_STORAGE_WAL_H_
#define KNMATCH_STORAGE_WAL_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "knmatch/common/status.h"

namespace knmatch {

/// Write-ahead log for the live-ingest engine: redo-only, physical
/// (full page images), with group-commit fsync batching.
///
/// One logical transaction covers a whole multi-dimension insert or
/// erase — the page images of every B+-tree the mutation touched plus
/// one row record — so after a crash either all 2d trees reflect the
/// point or none does.
///
/// Record framing reuses the page_codec CRC32 convention so a torn
/// tail (a crash mid-fsync) is detected the same way a torn page is:
///
///   +----------------+------------------------------------+----------+
///   | body len (u32) | body                               | CRC32    |
///   +----------------+------------------------------------+----------+
///                    | type u8 | lsn u64 | txn u64 |
///                    | page u64 | payload ...        |
///   CRC32 (page_codec Crc32) covers the body only.
///
/// Durability model: the log is a byte vector; Sync() plays the role
/// of fsync and advances the durable prefix to the current size.
/// Everything past the durable prefix is the volatile tail a real OS
/// would lose on power failure — crash simulation calls
/// LoseVolatileTail() to drop it, and SyncPartial() models a crash
/// mid-fsync by advancing the durable mark only part-way, leaving a
/// torn record at the durable edge for recovery to detect.
///
/// Group commit: AppendCommit() does not sync; it reports when the
/// configured window of unsynced commits is full and the caller
/// should Sync() once for the whole batch. A transaction is committed
/// *for recovery purposes* only when its commit record lies wholly
/// inside the durable prefix.
///
/// Not thread-safe: owned by the single writer (LiveColumnIndex).
class WriteAheadLog {
 public:
  struct Config {
    /// Commits batched per fsync. 1 = sync every commit (no batching).
    size_t group_commit_window = 1;
    /// Upper bound on a record payload, used as a sanity bound when
    /// scanning a possibly-torn log image.
    size_t max_record_payload = 1 << 20;
  };

  enum class RecordType : uint8_t {
    kBegin = 1,
    kPageImage = 2,  // page = page key, payload = full page image
    kRowInsert = 3,  // payload = serialized row
    kRowErase = 4,   // payload = serialized row key
    kCommit = 5,
    kCheckpoint = 6,
  };

  struct Record {
    RecordType type = RecordType::kBegin;
    uint64_t lsn = 0;
    uint64_t txn = 0;
    uint64_t page = 0;
    std::vector<std::byte> payload;
  };

  struct Stats {
    uint64_t appends = 0;
    uint64_t commits = 0;
    uint64_t fsyncs = 0;
    uint64_t bytes_appended = 0;
    uint64_t checkpoints = 0;
    uint64_t truncations = 0;
    size_t log_bytes = 0;      // durable prefix + volatile tail
    size_t durable_bytes = 0;  // fsynced prefix
    size_t pending_commits = 0;
    uint64_t next_lsn = 1;
  };

  struct CommitTicket {
    uint64_t lsn = 0;
    /// True when this commit filled the group-commit window: the
    /// caller should Sync() now and publish the whole batch.
    bool group_full = false;
  };

  /// Outcome of a recovery scan: the redo records of committed
  /// transactions, in LSN order.
  struct RecoveryResult {
    std::vector<Record> committed;  // kPageImage / kRowInsert / kRowErase
    uint64_t committed_txns = 0;
    uint64_t discarded_txns = 0;  // begun but not durably committed
    bool torn_tail = false;       // scan stopped at a damaged frame
    uint64_t max_lsn = 0;
  };

  WriteAheadLog() = default;
  explicit WriteAheadLog(Config config) : config_(config) {}

  const Config& config() const { return config_; }

  /// Starts a transaction: appends a kBegin record, returns the txn id.
  uint64_t Begin();

  /// Appends a full after-image of `page` (an opaque page key owned by
  /// the caller) mutated by `txn`. Returns the record's LSN.
  uint64_t AppendPageImage(uint64_t txn, uint64_t page,
                           std::span<const std::byte> image);

  /// Appends a logical row record (insert or erase) for `txn`.
  uint64_t AppendRow(RecordType type, uint64_t txn,
                     std::span<const std::byte> row);

  /// Appends the commit record. Does NOT sync — see group commit above.
  CommitTicket AppendCommit(uint64_t txn);

  /// Appends a checkpoint marker (callers Sync() and then truncate).
  uint64_t AppendCheckpoint();

  /// fsync: everything appended so far becomes durable.
  void Sync();

  /// Crash simulation: a sync interrupted part-way. Advances the
  /// durable mark by at most `bytes` into the volatile tail, tearing
  /// whatever record straddles the new durable edge.
  void SyncPartial(size_t bytes);

  /// Crash simulation: drops the volatile (un-fsynced) tail, exactly
  /// what power loss does to page-cache-buffered log writes.
  void LoseVolatileTail();

  /// Drops the durable prefix that precedes the last durable
  /// checkpoint record (the record itself is kept as a marker).
  /// No-op (kNotFound) when no checkpoint record is durable.
  Status TruncateToLastCheckpoint();

  /// Discards the whole log — durable prefix, volatile tail, torn
  /// records — and starts a fresh LSN sequence. Only valid once the
  /// caller has made every committed state durable elsewhere (the
  /// post-recovery full checkpoint). Lifetime counters are kept.
  void Reset();

  /// Scans the durable image and returns the redo records of committed
  /// transactions, in LSN order; stops at the first torn/corrupt frame.
  RecoveryResult Recover() const;

  std::span<const std::byte> DurableImage() const {
    return std::span<const std::byte>(log_.data(), durable_size_);
  }

  size_t pending_commits() const { return pending_commits_; }
  Stats stats() const;

 private:
  uint64_t Append(RecordType type, uint64_t txn, uint64_t page,
                  std::span<const std::byte> payload);

  /// Parses every intact frame in `image` (stopping at the first
  /// damaged one) into `out`; returns whether the tail was torn.
  bool ScanImage(std::span<const std::byte> image,
                 std::vector<Record>* out) const;

  Config config_;
  std::vector<std::byte> log_;
  size_t durable_size_ = 0;
  uint64_t next_lsn_ = 1;
  uint64_t next_txn_ = 1;
  size_t pending_commits_ = 0;

  uint64_t appends_ = 0;
  uint64_t commits_ = 0;
  uint64_t fsyncs_ = 0;
  uint64_t bytes_appended_ = 0;
  uint64_t checkpoints_ = 0;
  uint64_t truncations_ = 0;
};

}  // namespace knmatch

#endif  // KNMATCH_STORAGE_WAL_H_

#ifndef KNMATCH_STORAGE_PAGE_CODEC_H_
#define KNMATCH_STORAGE_PAGE_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "knmatch/common/status.h"

namespace knmatch {

/// Checksummed page framing. Every page image on the simulated disk is
/// wrapped in a fixed-layout frame so that damage anywhere in the page
/// — payload, padding, length header, or the checksum itself — is
/// detected on read:
///
///   offset 0                4            4 + len          size-4   size
///   +----------------------+------------+-----------------+--------+
///   | payload length (u32) | payload    | zero padding    | CRC32  |
///   +----------------------+------------+-----------------+--------+
///                          |<-- len --->|
///   |<------------ CRC32 covers bytes [0, size-4) ------->|
///
/// The frame occupies the full page; payload capacity is therefore
/// page_size - kPageFrameOverhead bytes. Little-endian host layout is
/// assumed (x86-64), matching PutScalar/GetScalar.

/// Header (u32 payload length) plus trailer (u32 CRC32).
constexpr size_t kPageFrameOverhead = 2 * sizeof(uint32_t);

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) of `data`.
uint32_t Crc32(std::span<const std::byte> data);

/// Frames `payload` into a full page image of exactly `page_size`
/// bytes. Requires payload.size() <= page_size - kPageFrameOverhead
/// (asserted).
std::vector<std::byte> FrameChecksummedPage(
    std::span<const std::byte> payload, size_t page_size);

/// Verifies a framed page image and returns a view of its payload
/// (pointing into `page`). Returns kDataLoss when the stored CRC does
/// not match the recomputed one or the frame itself is malformed.
Result<std::span<const std::byte>> VerifyAndUnframePage(
    std::span<const std::byte> page);

}  // namespace knmatch

#endif  // KNMATCH_STORAGE_PAGE_CODEC_H_

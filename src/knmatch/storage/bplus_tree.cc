#include "knmatch/storage/bplus_tree.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "knmatch/obs/catalog.h"

namespace knmatch {

BPlusTree::BPlusTree(DiskSimulator* disk) : disk_(disk) {}

uint32_t BPlusTree::NewNode(bool leaf) {
  const uint64_t page = disk_->AllocatePages(1);
  if (nodes_.empty()) first_global_page_ = page;
  ++allocated_pages_;
  Node node;
  node.leaf = leaf;
  nodes_.push_back(std::move(node));
  page_of_.push_back(page);
  return static_cast<uint32_t>(nodes_.size() - 1);
}

Status BPlusTree::ChargeVisit(size_t stream, uint32_t node) const {
  // Nodes live in memory; the page read is modelled. ChargedRead
  // applies the standard fault policy: bounded retry of transient
  // errors, quarantine on corruption (the node's modelled page image
  // is what got damaged — indistinguishable, for the caller, from a
  // checksum failure on a real page).
  obs::Cat().btree_node_visits->Add();
  return disk_->ChargedRead(stream, page_of_[node]);
}

void BPlusTree::BulkLoad(std::span<const ColumnEntry> sorted_entries) {
  nodes_.clear();
  page_of_.clear();
  root_ = kInvalid;
  first_leaf_ = kInvalid;
  size_ = sorted_entries.size();
  height_ = 0;
  if (sorted_entries.empty()) return;
  assert(std::is_sorted(sorted_entries.begin(), sorted_entries.end(),
                        EntryLess));

  // Leaf level.
  std::vector<uint32_t> level;
  std::vector<ColumnEntry> level_min;  // smallest key per node
  std::vector<uint64_t> level_count;   // entries per subtree
  for (size_t at = 0; at < sorted_entries.size(); at += kLeafCapacity) {
    const size_t count =
        std::min(kLeafCapacity, sorted_entries.size() - at);
    const uint32_t id = NewNode(/*leaf=*/true);
    nodes_[id].entries.assign(sorted_entries.begin() + at,
                              sorted_entries.begin() + at + count);
    if (!level.empty()) {
      nodes_[level.back()].next = id;
      nodes_[id].prev = level.back();
    }
    level.push_back(id);
    level_min.push_back(sorted_entries[at]);
    level_count.push_back(count);
  }
  first_leaf_ = level.front();
  height_ = 1;

  // Internal levels, bottom-up.
  while (level.size() > 1) {
    std::vector<uint32_t> parent_level;
    std::vector<ColumnEntry> parent_min;
    std::vector<uint64_t> parent_count;
    for (size_t at = 0; at < level.size(); at += kInternalCapacity) {
      const size_t fanout =
          std::min(kInternalCapacity, level.size() - at);
      const uint32_t id = NewNode(/*leaf=*/false);
      Node& node = nodes_[id];
      uint64_t total = 0;
      for (size_t i = 0; i < fanout; ++i) {
        node.children.push_back(level[at + i]);
        node.counts.push_back(level_count[at + i]);
        total += level_count[at + i];
        if (i > 0) node.keys.push_back(level_min[at + i]);
      }
      parent_level.push_back(id);
      parent_min.push_back(level_min[at]);
      parent_count.push_back(total);
    }
    level = std::move(parent_level);
    level_min = std::move(parent_min);
    level_count = std::move(parent_count);
    ++height_;
  }
  root_ = level.front();
}

Result<uint32_t> BPlusTree::DescendToLeaf(
    size_t stream, const ColumnEntry& key,
    std::vector<uint32_t>* path) const {
  uint32_t node = root_;
  for (;;) {
    Status s = ChargeVisit(stream, node);
    if (!s.ok()) return s;
    if (path != nullptr) path->push_back(node);
    const Node& n = nodes_[node];
    if (n.leaf) return node;
    // Child index = number of separators <= key.
    const size_t idx = static_cast<size_t>(
        std::upper_bound(n.keys.begin(), n.keys.end(), key, EntryLess) -
        n.keys.begin());
    node = n.children[idx];
  }
}

size_t BPlusTree::OpenStream() const { return disk_->OpenStream(); }

ColumnEntry BPlusTree::Iterator::Get() const {
  assert(Valid());
  return tree_->nodes_[node_].entries[slot_];
}

void BPlusTree::Iterator::Next() {
  assert(Valid());
  const Node* n = &tree_->nodes_[node_];
  if (slot_ + 1 < n->entries.size()) {
    ++slot_;
    return;
  }
  // Cross to the next non-empty leaf (lazily erased leaves may be
  // empty).
  uint32_t next = n->next;
  while (next != kInvalid) {
    Status s = tree_->ChargeVisit(stream_, next);
    if (!s.ok()) {
      status_ = std::move(s);
      node_ = kInvalid;
      return;
    }
    if (!tree_->nodes_[next].entries.empty()) {
      node_ = next;
      slot_ = 0;
      return;
    }
    next = tree_->nodes_[next].next;
  }
  node_ = kInvalid;
}

void BPlusTree::Iterator::Prev() {
  assert(Valid());
  if (slot_ > 0) {
    --slot_;
    return;
  }
  uint32_t prev = tree_->nodes_[node_].prev;
  while (prev != kInvalid) {
    Status s = tree_->ChargeVisit(stream_, prev);
    if (!s.ok()) {
      status_ = std::move(s);
      node_ = kInvalid;
      return;
    }
    if (!tree_->nodes_[prev].entries.empty()) {
      node_ = prev;
      slot_ = tree_->nodes_[prev].entries.size() - 1;
      return;
    }
    prev = tree_->nodes_[prev].prev;
  }
  node_ = kInvalid;
}

BPlusTree::Iterator BPlusTree::SeekLowerBound(size_t stream,
                                              Value v) const {
  Iterator it;
  it.tree_ = this;
  it.stream_ = stream;
  if (root_ == kInvalid) return it;
  const ColumnEntry key{v, 0};
  auto leaf_or = DescendToLeaf(stream, key, nullptr);
  if (!leaf_or.ok()) {
    it.status_ = leaf_or.status();
    return it;
  }
  const uint32_t leaf = leaf_or.value();
  const Node& n = nodes_[leaf];
  const size_t slot = static_cast<size_t>(
      std::lower_bound(n.entries.begin(), n.entries.end(), key,
                       EntryLess) -
      n.entries.begin());
  it.node_ = leaf;
  it.slot_ = slot;
  if (slot == n.entries.size()) {
    // Walk to the next non-empty leaf, if any.
    it.slot_ = n.entries.empty() ? 0 : n.entries.size() - 1;
    // Position at last real entry then step forward (handles empty and
    // full leaves uniformly).
    if (n.entries.empty()) {
      uint32_t next = n.next;
      while (next != kInvalid && nodes_[next].entries.empty()) {
        if (Status s = ChargeVisit(stream, next); !s.ok()) {
          it.status_ = std::move(s);
          it.node_ = kInvalid;
          return it;
        }
        next = nodes_[next].next;
      }
      if (next == kInvalid) {
        it.node_ = kInvalid;
      } else {
        if (Status s = ChargeVisit(stream, next); !s.ok()) {
          it.status_ = std::move(s);
          it.node_ = kInvalid;
          return it;
        }
        it.node_ = next;
        it.slot_ = 0;
      }
    } else {
      it.slot_ = n.entries.size() - 1;
      it.Next();
    }
  }
  return it;
}

BPlusTree::Iterator BPlusTree::SeekBefore(size_t stream, Value v) const {
  Iterator it;
  it.tree_ = this;
  it.stream_ = stream;
  if (root_ == kInvalid) return it;
  const ColumnEntry key{v, 0};
  auto leaf_or = DescendToLeaf(stream, key, nullptr);
  if (!leaf_or.ok()) {
    it.status_ = leaf_or.status();
    return it;
  }
  const uint32_t leaf = leaf_or.value();
  const Node& n = nodes_[leaf];
  const size_t slot = static_cast<size_t>(
      std::lower_bound(n.entries.begin(), n.entries.end(), key,
                       EntryLess) -
      n.entries.begin());
  if (slot > 0) {
    it.node_ = leaf;
    it.slot_ = slot - 1;
    return it;
  }
  // Everything in this leaf is >= key; step to the previous non-empty
  // leaf's last entry.
  uint32_t prev = n.prev;
  while (prev != kInvalid && nodes_[prev].entries.empty()) {
    if (Status s = ChargeVisit(stream, prev); !s.ok()) {
      it.status_ = std::move(s);
      return it;
    }
    prev = nodes_[prev].prev;
  }
  if (prev != kInvalid) {
    if (Status s = ChargeVisit(stream, prev); !s.ok()) {
      it.status_ = std::move(s);
      return it;
    }
    it.node_ = prev;
    it.slot_ = nodes_[prev].entries.size() - 1;
  }
  return it;
}

Result<size_t> BPlusTree::RankOf(size_t stream, Value v) const {
  if (root_ == kInvalid) return size_t{0};
  const ColumnEntry key{v, 0};
  size_t rank = 0;
  uint32_t node = root_;
  for (;;) {
    if (Status s = ChargeVisit(stream, node); !s.ok()) return s;
    const Node& n = nodes_[node];
    if (n.leaf) {
      rank += static_cast<size_t>(
          std::lower_bound(n.entries.begin(), n.entries.end(), key,
                           EntryLess) -
          n.entries.begin());
      return rank;
    }
    const size_t idx = static_cast<size_t>(
        std::upper_bound(n.keys.begin(), n.keys.end(), key, EntryLess) -
        n.keys.begin());
    for (size_t i = 0; i < idx; ++i) rank += n.counts[i];
    node = n.children[idx];
  }
}

Status BPlusTree::Insert(ColumnEntry entry) {
  if (root_ == kInvalid) {
    root_ = NewNode(/*leaf=*/true);
    first_leaf_ = root_;
    height_ = 1;
  }
  std::vector<uint32_t> path;
  const size_t stream = disk_->OpenStream();
  auto leaf_or = DescendToLeaf(stream, entry, &path);
  if (!leaf_or.ok()) return leaf_or.status();
  const uint32_t leaf = leaf_or.value();
  Node& n = nodes_[leaf];
  auto it = std::upper_bound(n.entries.begin(), n.entries.end(), entry,
                             EntryLess);
  n.entries.insert(it, entry);
  ++size_;
  // Update subtree counts along the path.
  for (size_t depth = 0; depth + 1 < path.size(); ++depth) {
    Node& parent = nodes_[path[depth]];
    for (size_t i = 0; i < parent.children.size(); ++i) {
      if (parent.children[i] == path[depth + 1]) {
        ++parent.counts[i];
        break;
      }
    }
  }
  if (nodes_[leaf].entries.size() > kLeafCapacity) {
    SplitUpward(path, leaf);
  }
  if (listener_ != nullptr) listener_->OnInsert(entry);
  return Status::OK();
}

void BPlusTree::SplitUpward(std::vector<uint32_t>& path,
                            uint32_t overflowed) {
  // Split the overflowed node; insert the separator into its parent;
  // recurse if the parent overflows as well.
  for (size_t depth = path.size(); depth-- > 0;) {
    if (path[depth] != overflowed) continue;
    Node& node = nodes_[overflowed];

    uint32_t right_id;
    ColumnEntry separator;
    uint64_t right_count;
    if (node.leaf) {
      right_id = NewNode(/*leaf=*/true);
      Node& fresh = nodes_[overflowed];  // NewNode may reallocate
      Node& right = nodes_[right_id];
      const size_t mid = fresh.entries.size() / 2;
      right.entries.assign(fresh.entries.begin() + mid,
                           fresh.entries.end());
      fresh.entries.resize(mid);
      separator = right.entries.front();
      right_count = right.entries.size();
      // Fix the leaf chain.
      right.next = fresh.next;
      right.prev = overflowed;
      if (fresh.next != kInvalid) nodes_[fresh.next].prev = right_id;
      fresh.next = right_id;
    } else {
      right_id = NewNode(/*leaf=*/false);
      Node& fresh = nodes_[overflowed];
      Node& right = nodes_[right_id];
      const size_t mid = fresh.children.size() / 2;  // promote keys[mid-1]
      separator = fresh.keys[mid - 1];
      right.children.assign(fresh.children.begin() + mid,
                            fresh.children.end());
      right.counts.assign(fresh.counts.begin() + mid, fresh.counts.end());
      right.keys.assign(fresh.keys.begin() + mid, fresh.keys.end());
      fresh.children.resize(mid);
      fresh.counts.resize(mid);
      fresh.keys.resize(mid - 1);
      right_count = 0;
      for (const uint64_t c : right.counts) right_count += c;
    }

    if (depth == 0) {
      // Grow a new root.
      const uint32_t new_root = NewNode(/*leaf=*/false);
      Node& root = nodes_[new_root];
      uint64_t left_count = 0;
      if (nodes_[overflowed].leaf) {
        left_count = nodes_[overflowed].entries.size();
      } else {
        for (const uint64_t c : nodes_[overflowed].counts) {
          left_count += c;
        }
      }
      root.children = {overflowed, right_id};
      root.counts = {left_count, right_count};
      root.keys = {separator};
      root_ = new_root;
      ++height_;
      return;
    }

    // Insert (separator, right_id) into the parent after the left
    // child's position, and carve the right subtree's count out of the
    // left's.
    Node& parent = nodes_[path[depth - 1]];
    for (size_t i = 0; i < parent.children.size(); ++i) {
      if (parent.children[i] == overflowed) {
        parent.keys.insert(parent.keys.begin() + i, separator);
        parent.children.insert(parent.children.begin() + i + 1, right_id);
        parent.counts[i] -= right_count;
        parent.counts.insert(parent.counts.begin() + i + 1, right_count);
        break;
      }
    }
    if (parent.children.size() <= kInternalCapacity) return;
    overflowed = path[depth - 1];
  }
}

Result<bool> BPlusTree::Erase(ColumnEntry entry) {
  if (root_ == kInvalid) return false;
  std::vector<uint32_t> path;
  const size_t stream = disk_->OpenStream();
  auto leaf_or = DescendToLeaf(stream, entry, &path);
  if (!leaf_or.ok()) return leaf_or.status();
  const uint32_t leaf = leaf_or.value();
  Node& n = nodes_[leaf];
  auto it = std::lower_bound(n.entries.begin(), n.entries.end(), entry,
                             EntryLess);
  if (it == n.entries.end() || !(it->value == entry.value) ||
      it->pid != entry.pid) {
    return false;
  }
  n.entries.erase(it);
  --size_;
  for (size_t depth = 0; depth + 1 < path.size(); ++depth) {
    Node& parent = nodes_[path[depth]];
    for (size_t i = 0; i < parent.children.size(); ++i) {
      if (parent.children[i] == path[depth + 1]) {
        --parent.counts[i];
        break;
      }
    }
  }
  if (listener_ != nullptr) listener_->OnErase(entry);
  return true;
}

Status BPlusTree::CheckInvariants() const {
  if (root_ == kInvalid) {
    return size_ == 0 ? Status::OK()
                      : Status::Internal("empty tree with nonzero size");
  }
  // Walk the leaf chain: sortedness and total size.
  size_t seen = 0;
  ColumnEntry last{-1e300, 0};
  uint32_t leaf = first_leaf_;
  uint32_t prev = kInvalid;
  while (leaf != kInvalid) {
    const Node& n = nodes_[leaf];
    if (!n.leaf) return Status::Internal("leaf chain hit internal node");
    if (n.prev != prev) return Status::Internal("broken prev link");
    for (const ColumnEntry& e : n.entries) {
      if (EntryLess(e, last)) {
        return Status::Internal("entries out of order");
      }
      last = e;
      ++seen;
    }
    prev = leaf;
    leaf = n.next;
  }
  if (seen != size_) return Status::Internal("leaf chain size mismatch");

  // Check internal counts recursively.
  struct Checker {
    const BPlusTree* tree;
    Status status = Status::OK();
    uint64_t Count(uint32_t id) {
      const Node& n = tree->nodes_[id];
      if (n.leaf) return n.entries.size();
      if (n.keys.size() + 1 != n.children.size() ||
          n.counts.size() != n.children.size()) {
        status = Status::Internal("internal node arity mismatch");
        return 0;
      }
      uint64_t total = 0;
      for (size_t i = 0; i < n.children.size(); ++i) {
        const uint64_t c = Count(n.children[i]);
        if (c != n.counts[i]) {
          status = Status::Internal("stale subtree count");
        }
        total += c;
      }
      return total;
    }
  } checker{this};
  const uint64_t total = checker.Count(root_);
  if (!checker.status.ok()) return checker.status;
  if (total != size_) return Status::Internal("root count mismatch");
  return Status::OK();
}

}  // namespace knmatch

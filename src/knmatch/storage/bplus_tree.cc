#include "knmatch/storage/bplus_tree.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>
#include <utility>

#include "knmatch/obs/catalog.h"

namespace knmatch {

BPlusTree::BPlusTree(DiskSimulator* disk) : disk_(disk) {}

BPlusTree::Node* BPlusTree::Mutable(uint32_t id) {
  if (!owned_[id]) {
    // A snapshot may still reference this node: copy on write.
    cur_.nodes[id] = std::make_shared<Node>(*cur_.nodes[id]);
    owned_[id] = true;
  }
  MarkDirty(id);
  return const_cast<Node*>(cur_.nodes[id].get());
}

uint32_t BPlusTree::NewNode(bool leaf) {
  uint32_t id;
  if (auto slot = fsm_.Acquire()) {
    // Reuse a reclaimed slot (and its modelled disk page).
    id = static_cast<uint32_t>(*slot);
    cur_.nodes[id] = std::make_shared<Node>();
    owned_[id] = true;
  } else {
    cur_.nodes.push_back(std::make_shared<Node>());
    cur_.page_of.push_back(disk_->AllocatePages(1));
    owned_.push_back(true);
    id = static_cast<uint32_t>(cur_.nodes.size() - 1);
  }
  const_cast<Node*>(cur_.nodes[id].get())->leaf = leaf;
  MarkDirty(id);
  return id;
}

void BPlusTree::MarkDirty(uint32_t id) {
  if (!track_dirty_) return;
  if (dirty_mark_.size() < cur_.nodes.size()) {
    dirty_mark_.resize(cur_.nodes.size(), false);
  }
  if (!dirty_mark_[id]) {
    dirty_mark_[id] = true;
    dirty_.push_back(id);
  }
}

void BPlusTree::EnableDirtyTracking() {
  track_dirty_ = true;
  dirty_mark_.assign(cur_.nodes.size(), false);
  dirty_.clear();
}

std::vector<uint32_t> BPlusTree::TakeDirty() {
  std::sort(dirty_.begin(), dirty_.end());
  std::vector<uint32_t> out = std::move(dirty_);
  dirty_.clear();
  for (const uint32_t id : out) dirty_mark_[id] = false;
  return out;
}

void BPlusTree::BeginPendingNotifications() {
  buffer_notifications_ = true;
}

void BPlusTree::CommitPendingNotifications() {
  buffer_notifications_ = false;
  std::vector<std::pair<bool, ColumnEntry>> pending =
      std::move(pending_notifications_);
  pending_notifications_.clear();
  if (listener_ == nullptr) return;
  for (const auto& [is_insert, entry] : pending) {
    if (is_insert) {
      listener_->OnInsert(entry);
    } else {
      listener_->OnErase(entry);
    }
  }
}

void BPlusTree::DropPendingNotifications() {
  buffer_notifications_ = false;
  pending_notifications_.clear();
}

void BPlusTree::NotifyInsert(const ColumnEntry& entry) {
  if (buffer_notifications_) {
    if (listener_ != nullptr) {
      pending_notifications_.emplace_back(true, entry);
    }
    return;
  }
  if (listener_ != nullptr) listener_->OnInsert(entry);
}

void BPlusTree::NotifyErase(const ColumnEntry& entry) {
  if (buffer_notifications_) {
    if (listener_ != nullptr) {
      pending_notifications_.emplace_back(false, entry);
    }
    return;
  }
  if (listener_ != nullptr) listener_->OnErase(entry);
}

BPlusTree::Snapshot BPlusTree::CreateSnapshot() {
  auto frozen = std::make_shared<const Version>(cur_);
  // Everything the frozen version references must now be copied before
  // mutation.
  owned_.assign(cur_.nodes.size(), false);
  return Snapshot(std::move(frozen), disk_);
}

Status BPlusTree::ChargeVisit(const Version& v, DiskSimulator* disk,
                              size_t stream, uint32_t node) {
  // Nodes live in memory; the page read is modelled. ChargedRead
  // applies the standard fault policy: bounded retry of transient
  // errors, quarantine on corruption (the node's modelled page image
  // is what got damaged — indistinguishable, for the caller, from a
  // checksum failure on a real page).
  obs::Cat().btree_node_visits->Add();
  return disk->ChargedRead(stream, v.page_of[node]);
}

void BPlusTree::BulkLoad(std::span<const ColumnEntry> sorted_entries) {
  cur_ = Version{};
  owned_.clear();
  fsm_.Clear();
  dirty_.clear();
  dirty_mark_.clear();
  cur_.size = sorted_entries.size();
  if (sorted_entries.empty()) return;
  assert(std::is_sorted(sorted_entries.begin(), sorted_entries.end(),
                        EntryLess));

  // Leaf level.
  std::vector<uint32_t> level;
  std::vector<ColumnEntry> level_min;  // smallest key per node
  std::vector<uint64_t> level_count;   // entries per subtree
  for (size_t at = 0; at < sorted_entries.size(); at += kLeafCapacity) {
    const size_t count =
        std::min(kLeafCapacity, sorted_entries.size() - at);
    const uint32_t id = NewNode(/*leaf=*/true);
    Mutable(id)->entries.assign(sorted_entries.begin() + at,
                                sorted_entries.begin() + at + count);
    if (!level.empty()) {
      Mutable(level.back())->next = id;
      Mutable(id)->prev = level.back();
    }
    level.push_back(id);
    level_min.push_back(sorted_entries[at]);
    level_count.push_back(count);
  }
  cur_.first_leaf = level.front();
  cur_.height = 1;

  // Internal levels, bottom-up.
  while (level.size() > 1) {
    std::vector<uint32_t> parent_level;
    std::vector<ColumnEntry> parent_min;
    std::vector<uint64_t> parent_count;
    for (size_t at = 0; at < level.size(); at += kInternalCapacity) {
      const size_t fanout =
          std::min(kInternalCapacity, level.size() - at);
      const uint32_t id = NewNode(/*leaf=*/false);
      Node* node = Mutable(id);
      uint64_t total = 0;
      for (size_t i = 0; i < fanout; ++i) {
        node->children.push_back(level[at + i]);
        node->counts.push_back(level_count[at + i]);
        total += level_count[at + i];
        if (i > 0) node->keys.push_back(level_min[at + i]);
      }
      parent_level.push_back(id);
      parent_min.push_back(level_min[at]);
      parent_count.push_back(total);
    }
    level = std::move(parent_level);
    level_min = std::move(parent_min);
    level_count = std::move(parent_count);
    ++cur_.height;
  }
  cur_.root = level.front();
}

Result<uint32_t> BPlusTree::DescendToLeaf(const Version& v,
                                          DiskSimulator* disk,
                                          size_t stream,
                                          const ColumnEntry& key,
                                          std::vector<uint32_t>* path) {
  uint32_t id = v.root;
  for (;;) {
    Status s = ChargeVisit(v, disk, stream, id);
    if (!s.ok()) return s;
    if (path != nullptr) path->push_back(id);
    const Node& n = *v.nodes[id];
    if (n.leaf) return id;
    // Child index = number of separators <= key.
    const size_t idx = static_cast<size_t>(
        std::upper_bound(n.keys.begin(), n.keys.end(), key, EntryLess) -
        n.keys.begin());
    id = n.children[idx];
  }
}

size_t BPlusTree::OpenStream() const { return disk_->OpenStream(); }

ColumnEntry BPlusTree::Iterator::Get() const {
  assert(Valid());
  return v_->nodes[node_]->entries[slot_];
}

void BPlusTree::Iterator::Next() {
  assert(Valid());
  const Node* n = v_->nodes[node_].get();
  if (slot_ + 1 < n->entries.size()) {
    ++slot_;
    return;
  }
  // Cross to the next non-empty leaf (lazily erased leaves may be
  // empty).
  uint32_t next = n->next;
  while (next != kInvalid) {
    Status s = BPlusTree::ChargeVisit(*v_, disk_, stream_, next);
    if (!s.ok()) {
      status_ = std::move(s);
      node_ = kInvalid;
      return;
    }
    if (!v_->nodes[next]->entries.empty()) {
      node_ = next;
      slot_ = 0;
      return;
    }
    next = v_->nodes[next]->next;
  }
  node_ = kInvalid;
}

void BPlusTree::Iterator::Prev() {
  assert(Valid());
  if (slot_ > 0) {
    --slot_;
    return;
  }
  uint32_t prev = v_->nodes[node_]->prev;
  while (prev != kInvalid) {
    Status s = BPlusTree::ChargeVisit(*v_, disk_, stream_, prev);
    if (!s.ok()) {
      status_ = std::move(s);
      node_ = kInvalid;
      return;
    }
    if (!v_->nodes[prev]->entries.empty()) {
      node_ = prev;
      slot_ = v_->nodes[prev]->entries.size() - 1;
      return;
    }
    prev = v_->nodes[prev]->prev;
  }
  node_ = kInvalid;
}

BPlusTree::Iterator BPlusTree::SeekLowerBoundIn(const Version& v,
                                                DiskSimulator* disk,
                                                size_t stream,
                                                Value value) {
  Iterator it;
  it.v_ = &v;
  it.disk_ = disk;
  it.stream_ = stream;
  if (v.root == kInvalid) return it;
  const ColumnEntry key{value, 0};
  auto leaf_or = DescendToLeaf(v, disk, stream, key, nullptr);
  if (!leaf_or.ok()) {
    it.status_ = leaf_or.status();
    return it;
  }
  const uint32_t leaf = leaf_or.value();
  const Node& n = *v.nodes[leaf];
  const size_t slot = static_cast<size_t>(
      std::lower_bound(n.entries.begin(), n.entries.end(), key,
                       EntryLess) -
      n.entries.begin());
  it.node_ = leaf;
  it.slot_ = slot;
  if (slot == n.entries.size()) {
    // Walk to the next non-empty leaf, if any.
    if (n.entries.empty()) {
      uint32_t next = n.next;
      while (next != kInvalid && v.nodes[next]->entries.empty()) {
        if (Status s = ChargeVisit(v, disk, stream, next); !s.ok()) {
          it.status_ = std::move(s);
          it.node_ = kInvalid;
          return it;
        }
        next = v.nodes[next]->next;
      }
      if (next == kInvalid) {
        it.node_ = kInvalid;
      } else {
        if (Status s = ChargeVisit(v, disk, stream, next); !s.ok()) {
          it.status_ = std::move(s);
          it.node_ = kInvalid;
          return it;
        }
        it.node_ = next;
        it.slot_ = 0;
      }
    } else {
      it.slot_ = n.entries.size() - 1;
      it.Next();
    }
  }
  return it;
}

BPlusTree::Iterator BPlusTree::SeekBeforeIn(const Version& v,
                                            DiskSimulator* disk,
                                            size_t stream, Value value) {
  Iterator it;
  it.v_ = &v;
  it.disk_ = disk;
  it.stream_ = stream;
  if (v.root == kInvalid) return it;
  const ColumnEntry key{value, 0};
  auto leaf_or = DescendToLeaf(v, disk, stream, key, nullptr);
  if (!leaf_or.ok()) {
    it.status_ = leaf_or.status();
    return it;
  }
  const uint32_t leaf = leaf_or.value();
  const Node& n = *v.nodes[leaf];
  const size_t slot = static_cast<size_t>(
      std::lower_bound(n.entries.begin(), n.entries.end(), key,
                       EntryLess) -
      n.entries.begin());
  if (slot > 0) {
    it.node_ = leaf;
    it.slot_ = slot - 1;
    return it;
  }
  // Everything in this leaf is >= key; step to the previous non-empty
  // leaf's last entry.
  uint32_t prev = n.prev;
  while (prev != kInvalid && v.nodes[prev]->entries.empty()) {
    if (Status s = ChargeVisit(v, disk, stream, prev); !s.ok()) {
      it.status_ = std::move(s);
      return it;
    }
    prev = v.nodes[prev]->prev;
  }
  if (prev != kInvalid) {
    if (Status s = ChargeVisit(v, disk, stream, prev); !s.ok()) {
      it.status_ = std::move(s);
      return it;
    }
    it.node_ = prev;
    it.slot_ = v.nodes[prev]->entries.size() - 1;
  }
  return it;
}

Result<size_t> BPlusTree::RankOfIn(const Version& v, DiskSimulator* disk,
                                   size_t stream, Value value) {
  if (v.root == kInvalid) return size_t{0};
  const ColumnEntry key{value, 0};
  size_t rank = 0;
  uint32_t id = v.root;
  for (;;) {
    if (Status s = ChargeVisit(v, disk, stream, id); !s.ok()) return s;
    const Node& n = *v.nodes[id];
    if (n.leaf) {
      rank += static_cast<size_t>(
          std::lower_bound(n.entries.begin(), n.entries.end(), key,
                           EntryLess) -
          n.entries.begin());
      return rank;
    }
    const size_t idx = static_cast<size_t>(
        std::upper_bound(n.keys.begin(), n.keys.end(), key, EntryLess) -
        n.keys.begin());
    for (size_t i = 0; i < idx; ++i) rank += n.counts[i];
    id = n.children[idx];
  }
}

BPlusTree::Iterator BPlusTree::SeekLowerBound(size_t stream,
                                              Value v) const {
  return SeekLowerBoundIn(cur_, disk_, stream, v);
}

BPlusTree::Iterator BPlusTree::SeekBefore(size_t stream, Value v) const {
  return SeekBeforeIn(cur_, disk_, stream, v);
}

Result<size_t> BPlusTree::RankOf(size_t stream, Value v) const {
  return RankOfIn(cur_, disk_, stream, v);
}

BPlusTree::Iterator BPlusTree::Snapshot::SeekLowerBound(size_t stream,
                                                        Value value) const {
  if (v_ == nullptr) return Iterator{};
  return BPlusTree::SeekLowerBoundIn(*v_, disk_, stream, value);
}

BPlusTree::Iterator BPlusTree::Snapshot::SeekBefore(size_t stream,
                                                    Value value) const {
  if (v_ == nullptr) return Iterator{};
  return BPlusTree::SeekBeforeIn(*v_, disk_, stream, value);
}

Result<size_t> BPlusTree::Snapshot::RankOf(size_t stream,
                                           Value value) const {
  if (v_ == nullptr) return size_t{0};
  return BPlusTree::RankOfIn(*v_, disk_, stream, value);
}

Status BPlusTree::Insert(ColumnEntry entry) {
  if (cur_.root == kInvalid) {
    const uint32_t id = NewNode(/*leaf=*/true);
    cur_.root = id;
    cur_.first_leaf = id;
    cur_.height = 1;
  }
  std::vector<uint32_t> path;
  const size_t stream = disk_->OpenStream();
  auto leaf_or = DescendToLeaf(cur_, disk_, stream, entry, &path);
  if (!leaf_or.ok()) return leaf_or.status();
  const uint32_t leaf = leaf_or.value();
  {
    Node* n = Mutable(leaf);
    auto it = std::upper_bound(n->entries.begin(), n->entries.end(),
                               entry, EntryLess);
    n->entries.insert(it, entry);
  }
  ++cur_.size;
  // Update subtree counts along the path.
  for (size_t depth = 0; depth + 1 < path.size(); ++depth) {
    Node* parent = Mutable(path[depth]);
    for (size_t i = 0; i < parent->children.size(); ++i) {
      if (parent->children[i] == path[depth + 1]) {
        ++parent->counts[i];
        break;
      }
    }
  }
  if (node(leaf).entries.size() > kLeafCapacity) {
    SplitUpward(path, leaf);
  }
  NotifyInsert(entry);
  return Status::OK();
}

void BPlusTree::SplitUpward(std::vector<uint32_t>& path,
                            uint32_t overflowed) {
  // Split the overflowed node; insert the separator into its parent;
  // recurse if the parent overflows as well. Node pointers are
  // re-acquired after every NewNode/Mutable (copy-on-write may clone).
  for (size_t depth = path.size(); depth-- > 0;) {
    if (path[depth] != overflowed) continue;

    uint32_t right_id;
    ColumnEntry separator;
    uint64_t right_count;
    if (node(overflowed).leaf) {
      right_id = NewNode(/*leaf=*/true);
      Node* left = Mutable(overflowed);
      Node* right = Mutable(right_id);
      const size_t mid = left->entries.size() / 2;
      right->entries.assign(left->entries.begin() + mid,
                            left->entries.end());
      left->entries.resize(mid);
      separator = right->entries.front();
      right_count = right->entries.size();
      // Fix the leaf chain.
      const uint32_t old_next = left->next;
      right->next = old_next;
      right->prev = overflowed;
      left->next = right_id;
      if (old_next != kInvalid) Mutable(old_next)->prev = right_id;
    } else {
      right_id = NewNode(/*leaf=*/false);
      Node* left = Mutable(overflowed);
      Node* right = Mutable(right_id);
      const size_t mid = left->children.size() / 2;  // promote keys[mid-1]
      separator = left->keys[mid - 1];
      right->children.assign(left->children.begin() + mid,
                             left->children.end());
      right->counts.assign(left->counts.begin() + mid,
                           left->counts.end());
      right->keys.assign(left->keys.begin() + mid, left->keys.end());
      left->children.resize(mid);
      left->counts.resize(mid);
      left->keys.resize(mid - 1);
      right_count = 0;
      for (const uint64_t c : right->counts) right_count += c;
    }

    if (depth == 0) {
      // Grow a new root.
      const uint32_t new_root = NewNode(/*leaf=*/false);
      uint64_t left_count = 0;
      {
        const Node& left = node(overflowed);
        if (left.leaf) {
          left_count = left.entries.size();
        } else {
          for (const uint64_t c : left.counts) left_count += c;
        }
      }
      Node* root = Mutable(new_root);
      root->children = {overflowed, right_id};
      root->counts = {left_count, right_count};
      root->keys = {separator};
      cur_.root = new_root;
      ++cur_.height;
      return;
    }

    // Insert (separator, right_id) into the parent after the left
    // child's position, and carve the right subtree's count out of the
    // left's.
    Node* parent = Mutable(path[depth - 1]);
    for (size_t i = 0; i < parent->children.size(); ++i) {
      if (parent->children[i] == overflowed) {
        parent->keys.insert(parent->keys.begin() + i, separator);
        parent->children.insert(parent->children.begin() + i + 1,
                                right_id);
        parent->counts[i] -= right_count;
        parent->counts.insert(parent->counts.begin() + i + 1,
                              right_count);
        break;
      }
    }
    if (parent->children.size() <= kInternalCapacity) return;
    overflowed = path[depth - 1];
  }
}

Result<bool> BPlusTree::Erase(ColumnEntry entry) {
  if (cur_.root == kInvalid) return false;
  std::vector<uint32_t> path;
  const size_t stream = disk_->OpenStream();
  auto leaf_or = DescendToLeaf(cur_, disk_, stream, entry, &path);
  if (!leaf_or.ok()) return leaf_or.status();
  const uint32_t leaf = leaf_or.value();
  {
    // Probe read-only first: a miss must not clone the leaf.
    const Node& n = node(leaf);
    auto it = std::lower_bound(n.entries.begin(), n.entries.end(), entry,
                               EntryLess);
    if (it == n.entries.end() || !(it->value == entry.value) ||
        it->pid != entry.pid) {
      return false;
    }
  }
  {
    Node* n = Mutable(leaf);
    auto it = std::lower_bound(n->entries.begin(), n->entries.end(),
                               entry, EntryLess);
    n->entries.erase(it);
  }
  --cur_.size;
  for (size_t depth = 0; depth + 1 < path.size(); ++depth) {
    Node* parent = Mutable(path[depth]);
    for (size_t i = 0; i < parent->children.size(); ++i) {
      if (parent->children[i] == path[depth + 1]) {
        --parent->counts[i];
        break;
      }
    }
  }
  if (reclaim_ && node(leaf).entries.empty()) {
    ReclaimEmpty(path);
  }
  NotifyErase(entry);
  return true;
}

void BPlusTree::ReclaimEmpty(const std::vector<uint32_t>& path) {
  uint32_t victim = path.back();
  // Unlink the emptied leaf from the chain.
  {
    const uint32_t prev = node(victim).prev;
    const uint32_t next = node(victim).next;
    if (prev != kInvalid) Mutable(prev)->next = next;
    if (next != kInvalid) Mutable(next)->prev = prev;
    if (cur_.first_leaf == victim) cur_.first_leaf = next;
  }
  // Remove it from its parent; cascade when the parent empties too.
  // Removing children[i] drops separator keys[i-1] (or keys[0] for
  // i == 0): the neighbor's routing range absorbs the victim's
  // now-empty range, so upper_bound descents stay correct.
  for (size_t depth = path.size() - 1; depth-- > 0;) {
    const uint32_t parent_id = path[depth];
    Node* parent = Mutable(parent_id);
    size_t i = 0;
    while (i < parent->children.size() && parent->children[i] != victim) {
      ++i;
    }
    assert(i < parent->children.size() && "victim not under its parent");
    parent->children.erase(parent->children.begin() +
                           static_cast<ptrdiff_t>(i));
    parent->counts.erase(parent->counts.begin() +
                         static_cast<ptrdiff_t>(i));
    if (!parent->keys.empty()) {
      parent->keys.erase(parent->keys.begin() +
                         static_cast<ptrdiff_t>(i == 0 ? 0 : i - 1));
    }
    fsm_.Free(victim);
    if (!parent->children.empty()) return;
    victim = parent_id;
  }
  // The root itself emptied: the tree is empty now.
  fsm_.Free(victim);
  cur_.root = kInvalid;
  cur_.first_leaf = kInvalid;
  cur_.height = 0;
}

std::vector<std::byte> BPlusTree::SerializeNode(uint32_t slot) const {
  // Layouts (little-endian scalars):
  //   leaf:     [1u8][prev u32][next u32][n u32][n x (value f64, pid u32)]
  //   internal: [0u8][c u32][c x child u32][c x count u64]
  //             [(c-1) x (value f64, pid u32)]
  // Worst cases (n = kLeafCapacity, c = kInternalCapacity) fit a
  // framed 4 KB page with the ingest layer's 8-byte page-key prefix.
  static_assert(1 + 3 * sizeof(uint32_t) +
                        kLeafCapacity * (sizeof(Value) + sizeof(PointId)) <=
                    4096 - kPageFrameOverhead - sizeof(uint64_t),
                "serialized leaf must fit one framed page");
  static_assert(1 + sizeof(uint32_t) +
                        kInternalCapacity *
                            (sizeof(uint32_t) + sizeof(uint64_t)) +
                        (kInternalCapacity - 1) *
                            (sizeof(Value) + sizeof(PointId)) <=
                    4096 - kPageFrameOverhead - sizeof(uint64_t),
                "serialized internal node must fit one framed page");
  const Node& n = node(slot);
  std::vector<std::byte> out;
  PutScalar<uint8_t>(&out, n.leaf ? 1 : 0);
  if (n.leaf) {
    PutScalar<uint32_t>(&out, n.prev);
    PutScalar<uint32_t>(&out, n.next);
    PutScalar<uint32_t>(&out, static_cast<uint32_t>(n.entries.size()));
    for (const ColumnEntry& e : n.entries) {
      PutScalar<Value>(&out, e.value);
      PutScalar<PointId>(&out, e.pid);
    }
  } else {
    PutScalar<uint32_t>(&out, static_cast<uint32_t>(n.children.size()));
    for (const uint32_t c : n.children) PutScalar<uint32_t>(&out, c);
    for (const uint64_t c : n.counts) PutScalar<uint64_t>(&out, c);
    for (const ColumnEntry& k : n.keys) {
      PutScalar<Value>(&out, k.value);
      PutScalar<PointId>(&out, k.pid);
    }
  }
  return out;
}

std::vector<std::byte> BPlusTree::SerializeMeta() const {
  // [root u32][first_leaf u32][size u64][height u64][node_count u32]
  // [free_count u32][free_count x slot u32]
  std::vector<std::byte> out;
  PutScalar<uint32_t>(&out, cur_.root);
  PutScalar<uint32_t>(&out, cur_.first_leaf);
  PutScalar<uint64_t>(&out, cur_.size);
  PutScalar<uint64_t>(&out, cur_.height);
  PutScalar<uint32_t>(&out, static_cast<uint32_t>(cur_.nodes.size()));
  const std::vector<uint64_t> free_slots = fsm_.ToSortedList();
  PutScalar<uint32_t>(&out, static_cast<uint32_t>(free_slots.size()));
  for (const uint64_t s : free_slots) {
    PutScalar<uint32_t>(&out, static_cast<uint32_t>(s));
  }
  assert(out.size() <=
             4096 - kPageFrameOverhead - sizeof(uint64_t) &&
         "free list outgrew the meta page; checkpoint more often");
  return out;
}

Status BPlusTree::RestoreFromImages(
    std::span<const std::byte> meta,
    const std::vector<std::optional<std::vector<std::byte>>>& images) {
  constexpr size_t kMetaHeader = 2 * sizeof(uint32_t) +
                                 2 * sizeof(uint64_t) +
                                 2 * sizeof(uint32_t);
  if (meta.size() < kMetaHeader) {
    return Status::DataLoss("meta image too small");
  }
  Version v;
  v.root = GetScalar<uint32_t>(meta, 0);
  v.first_leaf = GetScalar<uint32_t>(meta, 4);
  v.size = static_cast<size_t>(GetScalar<uint64_t>(meta, 8));
  v.height = static_cast<size_t>(GetScalar<uint64_t>(meta, 16));
  const uint32_t node_count = GetScalar<uint32_t>(meta, 24);
  const uint32_t free_count = GetScalar<uint32_t>(meta, 28);
  if (meta.size() < kMetaHeader + free_count * sizeof(uint32_t)) {
    return Status::DataLoss("meta image truncated free list");
  }
  std::vector<uint64_t> free_slots;
  std::unordered_set<uint32_t> free_set;
  free_slots.reserve(free_count);
  for (uint32_t i = 0; i < free_count; ++i) {
    const uint32_t slot =
        GetScalar<uint32_t>(meta, kMetaHeader + i * sizeof(uint32_t));
    if (slot >= node_count) {
      return Status::DataLoss("free slot beyond node count");
    }
    free_slots.push_back(slot);
    free_set.insert(slot);
  }

  v.nodes.resize(node_count);
  for (uint32_t slot = 0; slot < node_count; ++slot) {
    if (free_set.contains(slot)) {
      // A freed slot needs no contents even if a stale image survives
      // (e.g. the emptied node logged by the reclaiming transaction);
      // park an empty placeholder.
      v.nodes[slot] = std::make_shared<Node>();
      continue;
    }
    const std::optional<std::vector<std::byte>>* image =
        slot < images.size() ? &images[slot] : nullptr;
    if (image == nullptr || !image->has_value()) {
      return Status::DataLoss("missing page image for live node slot " +
                              std::to_string(slot));
    }
    const std::span<const std::byte> img(**image);
    if (img.size() < 1) return Status::DataLoss("empty node image");
    auto parsed = std::make_shared<Node>();
    const uint8_t leaf_flag = GetScalar<uint8_t>(img, 0);
    if (leaf_flag == 1) {
      constexpr size_t kLeafHeader = 1 + 3 * sizeof(uint32_t);
      if (img.size() < kLeafHeader) {
        return Status::DataLoss("truncated leaf image");
      }
      parsed->leaf = true;
      parsed->prev = GetScalar<uint32_t>(img, 1);
      parsed->next = GetScalar<uint32_t>(img, 5);
      const uint32_t n = GetScalar<uint32_t>(img, 9);
      constexpr size_t kEntryBytes = sizeof(Value) + sizeof(PointId);
      if (n > kLeafCapacity ||
          img.size() < kLeafHeader + n * kEntryBytes) {
        return Status::DataLoss("leaf image entry count implausible");
      }
      parsed->entries.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        const size_t at = kLeafHeader + i * kEntryBytes;
        parsed->entries.push_back(
            ColumnEntry{GetScalar<Value>(img, at),
                        GetScalar<PointId>(img, at + sizeof(Value))});
      }
    } else if (leaf_flag == 0) {
      constexpr size_t kIntHeader = 1 + sizeof(uint32_t);
      if (img.size() < kIntHeader) {
        return Status::DataLoss("truncated internal image");
      }
      parsed->leaf = false;
      const uint32_t c = GetScalar<uint32_t>(img, 1);
      constexpr size_t kKeyBytes = sizeof(Value) + sizeof(PointId);
      if (c == 0 || c > kInternalCapacity + 1 ||
          img.size() < kIntHeader +
                           c * (sizeof(uint32_t) + sizeof(uint64_t)) +
                           (c - 1) * kKeyBytes) {
        return Status::DataLoss("internal image fanout implausible");
      }
      size_t at = kIntHeader;
      parsed->children.reserve(c);
      for (uint32_t i = 0; i < c; ++i, at += sizeof(uint32_t)) {
        const uint32_t child = GetScalar<uint32_t>(img, at);
        if (child >= node_count) {
          return Status::DataLoss("child index beyond node count");
        }
        parsed->children.push_back(child);
      }
      parsed->counts.reserve(c);
      for (uint32_t i = 0; i < c; ++i, at += sizeof(uint64_t)) {
        parsed->counts.push_back(GetScalar<uint64_t>(img, at));
      }
      parsed->keys.reserve(c - 1);
      for (uint32_t i = 0; i + 1 < c; ++i, at += kKeyBytes) {
        parsed->keys.push_back(
            ColumnEntry{GetScalar<Value>(img, at),
                        GetScalar<PointId>(img, at + sizeof(Value))});
      }
    } else {
      return Status::DataLoss("unknown node kind byte");
    }
    v.nodes[slot] = std::move(parsed);
  }

  if (v.root != kInvalid && v.root >= node_count) {
    return Status::DataLoss("root index beyond node count");
  }
  if (v.first_leaf != kInvalid && v.first_leaf >= node_count) {
    return Status::DataLoss("first-leaf index beyond node count");
  }

  // Fresh modelled disk pages for every slot (the page ids are I/O
  // accounting handles; query answers do not depend on them).
  const uint64_t first = disk_->AllocatePages(node_count);
  v.page_of.resize(node_count);
  for (uint32_t slot = 0; slot < node_count; ++slot) {
    v.page_of[slot] = first + slot;
  }

  if (Status s = CheckInvariantsOf(v); !s.ok()) return s;

  cur_ = std::move(v);
  owned_.assign(cur_.nodes.size(), true);
  fsm_.Restore(free_slots);
  dirty_.clear();
  dirty_mark_.assign(cur_.nodes.size(), false);
  pending_notifications_.clear();
  buffer_notifications_ = false;
  return Status::OK();
}

Status BPlusTree::CheckInvariants() const {
  return CheckInvariantsOf(cur_);
}

Status BPlusTree::CheckInvariantsOf(const Version& v) {
  if (v.root == kInvalid) {
    return v.size == 0 ? Status::OK()
                       : Status::Internal("empty tree with nonzero size");
  }
  const size_t node_count = v.nodes.size();
  if (v.root >= node_count) return Status::Internal("root out of range");
  // Walk the leaf chain: sortedness and total size.
  size_t seen = 0;
  ColumnEntry last{-1e300, 0};
  uint32_t leaf = v.first_leaf;
  uint32_t prev = kInvalid;
  while (leaf != kInvalid) {
    if (leaf >= node_count) {
      return Status::Internal("leaf chain index out of range");
    }
    const Node& n = *v.nodes[leaf];
    if (!n.leaf) return Status::Internal("leaf chain hit internal node");
    if (n.prev != prev) return Status::Internal("broken prev link");
    for (const ColumnEntry& e : n.entries) {
      if (EntryLess(e, last)) {
        return Status::Internal("entries out of order");
      }
      last = e;
      ++seen;
    }
    prev = leaf;
    leaf = n.next;
  }
  if (seen != v.size) return Status::Internal("leaf chain size mismatch");

  // Check internal counts recursively.
  struct Checker {
    const Version* v;
    Status status = Status::OK();
    uint64_t Count(uint32_t id) {
      if (id >= v->nodes.size()) {
        status = Status::Internal("child index out of range");
        return 0;
      }
      const Node& n = *v->nodes[id];
      if (n.leaf) return n.entries.size();
      if (n.keys.size() + 1 != n.children.size() ||
          n.counts.size() != n.children.size()) {
        status = Status::Internal("internal node arity mismatch");
        return 0;
      }
      uint64_t total = 0;
      for (size_t i = 0; i < n.children.size(); ++i) {
        const uint64_t c = Count(n.children[i]);
        if (c != n.counts[i]) {
          status = Status::Internal("stale subtree count");
        }
        total += c;
      }
      return total;
    }
  } checker{&v};
  const uint64_t total = checker.Count(v.root);
  if (!checker.status.ok()) return checker.status;
  if (total != v.size) return Status::Internal("root count mismatch");
  return Status::OK();
}

}  // namespace knmatch

#ifndef KNMATCH_STORAGE_BPLUS_TREE_H_
#define KNMATCH_STORAGE_BPLUS_TREE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "knmatch/common/status.h"
#include "knmatch/core/sorted_columns.h"
#include "knmatch/storage/free_space.h"
#include "knmatch/storage/paged_file.h"

namespace knmatch {

/// A disk-based B+-tree over (value, pid) entries, keyed by
/// (value, pid) lexicographically. This is the index structure a real
/// deployment would put on each sorted dimension instead of the
/// ColumnStore's in-memory page directory: lower-bound seeks traverse
/// root-to-leaf with one charged page read per node, and leaf pages are
/// chained both ways so the AD algorithm's two cursor directions
/// translate to sideways leaf walks.
///
/// Supported operations: bottom-up bulk load from a sorted column,
/// charged lower-bound seek, bidirectional leaf iteration, and
/// incremental insertion with node splits (so a column can be kept
/// up to date as points are appended to the database). Deletion is
/// lazy by default (no rebalancing); with EnableReclamation() a leaf
/// emptied by erases is unlinked, removed from its parent, and its
/// slot handed to the free-space manager for reuse.
///
/// Versioned reads (the live-ingest engine's snapshot mechanism): the
/// tree's state is a Version — a table of shared_ptr<const Node> plus
/// the root/leaf-chain scalars. CreateSnapshot() copies the pointer
/// table (O(#nodes) pointer copies, no node copies) and freezes it;
/// mutations after a snapshot copy-on-write exactly the nodes they
/// touch, so every outstanding Snapshot keeps observing the frozen
/// state while the writer moves on. Snapshots are immutable and safe
/// to read from other threads (their I/O charging goes through the
/// internally-synchronized DiskSimulator); the tree itself remains
/// single-writer, externally synchronized.
class BPlusTree {
 public:
  /// Observes successful mutations of the tree's entry set. The hook
  /// behind cache invalidation: a listener on each per-dimension tree
  /// lets a result cache evict exactly the entries a point mutation
  /// could affect. By default callbacks fire after the tree is
  /// updated, on the mutating thread; inside an ingest transaction
  /// (BeginPendingNotifications) they are buffered and delivered only
  /// once the transaction's commit is durable, so a crashed
  /// transaction can never have evicted or poisoned cache entries.
  /// BulkLoad does not notify (it replaces the whole column — callers
  /// handling a rebuild should clear dependent state themselves).
  class MutationListener {
   public:
    virtual ~MutationListener() = default;
    virtual void OnInsert(const ColumnEntry& entry) = 0;
    virtual void OnErase(const ColumnEntry& entry) = 0;
  };

  /// Creates an empty tree whose nodes live on `disk`. The simulator
  /// must outlive the tree.
  explicit BPlusTree(DiskSimulator* disk);

  /// Registers `listener` (nullptr to detach) for Insert/Erase
  /// notifications. The listener must outlive the tree or be detached
  /// first; it is invoked under no tree lock (the tree is externally
  /// synchronized, like all its mutations).
  void set_mutation_listener(MutationListener* listener) {
    listener_ = listener;
  }

  /// Bulk loads from entries sorted ascending by (value, pid).
  /// Replaces any existing content. O(n).
  void BulkLoad(std::span<const ColumnEntry> sorted_entries);

  /// Inserts one entry, splitting nodes as needed. O(log n) charged
  /// page reads (plus uncharged writes, which are deferrable). Fails
  /// without modifying the tree when the root-to-leaf descent cannot
  /// read a node page.
  Status Insert(ColumnEntry entry);

  /// Removes the exact (value, pid) entry if present; returns whether
  /// it was found. No rebalancing; see EnableReclamation() for what
  /// happens to emptied leaves. Fails without modifying the tree when
  /// the descent cannot read a node page.
  Result<bool> Erase(ColumnEntry entry);

  /// Number of entries.
  size_t size() const { return cur_.size; }
  /// The simulator this tree charges its node visits to (for
  /// page-budget accounting via QueryContext::ArmPages).
  const DiskSimulator* disk() const { return disk_; }
  /// Tree height (0 for an empty tree, 1 for a single leaf).
  size_t height() const { return cur_.height; }
  /// Total node slots (== pages) of the tree, free slots included.
  size_t num_nodes() const { return cur_.nodes.size(); }

 private:
  // Nodes are fixed-fanout, sized to mimic one 4 KB page:
  // 12-byte entries in leaves -> ~340; (key, child) pairs in internal
  // nodes -> ~256. We keep the arithmetic simple with round figures
  // (and the serialized forms fit a framed 4 KB page with room for the
  // live-ingest page key; static_asserted in the .cc).
  static constexpr size_t kLeafCapacity = 256;
  static constexpr size_t kInternalCapacity = 128;
  static constexpr uint32_t kInvalid = 0xFFFFFFFFu;

  struct Node {
    bool leaf = true;
    // Leaf: entries sorted by (value, pid); prev/next sibling links
    // (slot indices resolved through the owning Version's table).
    std::vector<ColumnEntry> entries;
    uint32_t prev = kInvalid;
    uint32_t next = kInvalid;
    // Internal: keys.size() + 1 == children.size(); keys[i] is the
    // smallest key in the subtree of children[i+1]. counts[i] is the
    // number of entries under children[i] (order-statistic
    // augmentation, for RankOf).
    std::vector<ColumnEntry> keys;
    std::vector<uint32_t> children;
    std::vector<uint64_t> counts;
  };

  /// One immutable-once-published state of the tree. Node links are
  /// slot indices, resolved through this table — so a frozen Version
  /// and the writer's evolving one share unchanged nodes and diverge
  /// only on the copied-on-write ones.
  struct Version {
    std::vector<std::shared_ptr<const Node>> nodes;
    /// Global disk page id per node slot (nodes are one page each).
    std::vector<uint64_t> page_of;
    uint32_t root = kInvalid;
    uint32_t first_leaf = kInvalid;
    size_t size = 0;
    size_t height = 0;
  };

 public:
  /// A charged cursor into the leaf level of one Version. A cursor
  /// that hits an unreadable leaf page becomes invalid with a non-OK
  /// status(); distinguish "walked off the end" (invalid, OK status)
  /// from "the store is damaged" (invalid, error status).
  ///
  /// Lifetime: an iterator borrows the Version it was created from —
  /// it must not outlive the tree (live iterators) or the Snapshot
  /// (snapshot iterators) that produced it.
  class Iterator {
   public:
    /// True while the iterator points at an entry.
    bool Valid() const { return node_ != kInvalid; }
    /// OK unless a leaf page failed to read during a seek or a move.
    const Status& status() const { return status_; }
    /// The entry under the cursor. Requires Valid().
    ColumnEntry Get() const;
    /// Moves one entry forward (ascending). Crossing a leaf boundary
    /// charges a page read to this iterator's stream.
    void Next();
    /// Moves one entry backward (descending); invalid before the first
    /// entry.
    void Prev();

   private:
    friend class BPlusTree;
    static constexpr uint32_t kInvalid = 0xFFFFFFFFu;
    const Version* v_ = nullptr;
    DiskSimulator* disk_ = nullptr;
    size_t stream_ = 0;
    uint32_t node_ = kInvalid;
    size_t slot_ = 0;
    Status status_;
  };

  /// A frozen, immutable view of the tree: the read side of the
  /// live-ingest engine's epoch mechanism. Cheap to copy (shared
  /// ownership of the Version). Safe to use from any thread; seeks
  /// and iterator moves charge I/O through the thread-safe simulator.
  class Snapshot {
   public:
    Snapshot() = default;

    size_t size() const { return v_ == nullptr ? 0 : v_->size; }
    size_t height() const { return v_ == nullptr ? 0 : v_->height; }
    const DiskSimulator* disk() const { return disk_; }

    size_t OpenStream() const { return disk_->OpenStream(); }
    Iterator SeekLowerBound(size_t stream, Value v) const;
    Iterator SeekBefore(size_t stream, Value v) const;
    Result<size_t> RankOf(size_t stream, Value v) const;

   private:
    friend class BPlusTree;
    Snapshot(std::shared_ptr<const Version> v, DiskSimulator* disk)
        : v_(std::move(v)), disk_(disk) {}
    std::shared_ptr<const Version> v_;
    DiskSimulator* disk_ = nullptr;
  };

  /// Freezes the current state into a Snapshot. O(#nodes) pointer
  /// copies; the next mutation of each node pays one node copy.
  /// Called by the ingest writer after a durable commit.
  Snapshot CreateSnapshot();

  /// Opens an I/O stream for a cursor (each AD direction gets its own).
  size_t OpenStream() const;

  /// Seeks to the first entry with (value, pid) >= (v, 0); the
  /// traversal charges height() page reads to `stream`. The returned
  /// iterator is invalid when every entry is smaller — or, with a
  /// non-OK status(), when a node page could not be read.
  Iterator SeekLowerBound(size_t stream, Value v) const;

  /// An iterator at the first entry smaller than (v, 0) — the starting
  /// point of a descending cursor. Shares the seek's charged traversal.
  Iterator SeekBefore(size_t stream, Value v) const;

  /// Rank (number of entries strictly below (v, 0)). Charges one
  /// root-to-leaf traversal to `stream`.
  Result<size_t> RankOf(size_t stream, Value v) const;

  /// Validates the B+-tree invariants (sortedness, fanout bounds, leaf
  /// chain consistency, key/child separators). For tests and recovery.
  Status CheckInvariants() const;

  // --- Live-ingest hooks (storage/ingest.h drives these). ---

  /// Reclaims leaves emptied by Erase: unlink from the chain, remove
  /// from the parent (cascading if the parent empties too), and hand
  /// the slot to the free-space manager for reuse by later inserts.
  void EnableReclamation() { reclaim_ = true; }
  /// Reusable node slots currently tracked by the free-space manager.
  size_t free_slots() const { return fsm_.free_count(); }

  /// Starts recording which node slots mutations touch (for WAL page
  /// images). Cleared by TakeDirty().
  void EnableDirtyTracking();
  /// The slots touched since the last call, ascending, plus — always,
  /// when any slot is dirty — the implicit meta "page" (root/chain
  /// scalars and free list; serialized by SerializeMeta()).
  std::vector<uint32_t> TakeDirty();

  /// Buffers MutationListener callbacks instead of firing them, until
  /// CommitPendingNotifications() (durable commit) delivers them in
  /// order or DropPendingNotifications() (crashed transaction)
  /// discards them. Non-reentrant; pairs with exactly one of the two.
  void BeginPendingNotifications();
  void CommitPendingNotifications();
  void DropPendingNotifications();

  /// Serialized page image of one node slot (fits a framed 4 KB page;
  /// layout documented in the .cc).
  std::vector<std::byte> SerializeNode(uint32_t slot) const;
  /// Serialized meta page: root, first leaf, size, height, node count,
  /// and the free-space manager's slot list.
  std::vector<std::byte> SerializeMeta() const;
  /// Rebuilds the tree from a meta image and per-slot node images
  /// (recovery). Slots on the meta page's free list may lack an image;
  /// every other slot must have one. Fresh modelled disk pages are
  /// allocated for all slots. Validates invariants before adopting.
  Status RestoreFromImages(
      std::span<const std::byte> meta,
      const std::vector<std::optional<std::vector<std::byte>>>& images);

 private:
  static bool EntryLess(const ColumnEntry& a, const ColumnEntry& b) {
    if (a.value != b.value) return a.value < b.value;
    return a.pid < b.pid;
  }

  /// Read-only access to a node of the current version.
  const Node& node(uint32_t id) const { return *cur_.nodes[id]; }
  /// Mutable access with copy-on-write: clones the node first when a
  /// snapshot may still reference it. Invalidates Node references
  /// obtained earlier — never hold one across a Mutable() call.
  Node* Mutable(uint32_t id);
  uint32_t NewNode(bool leaf);
  void MarkDirty(uint32_t id);
  /// Unlinks and frees the emptied leaf at path.back(), cascading into
  /// parents that empty as a result.
  void ReclaimEmpty(const std::vector<uint32_t>& path);
  void NotifyInsert(const ColumnEntry& entry);
  void NotifyErase(const ColumnEntry& entry);

  /// One charged node-page read, with the simulator's standard fault
  /// policy (retry, quarantine).
  static Status ChargeVisit(const Version& v, DiskSimulator* disk,
                            size_t stream, uint32_t node);
  /// Descends to the leaf that would contain `key`, charging each
  /// visited node; records the root-to-leaf path in `path` if non-null.
  /// Fails when any node page on the way is unreadable.
  static Result<uint32_t> DescendToLeaf(const Version& v,
                                        DiskSimulator* disk, size_t stream,
                                        const ColumnEntry& key,
                                        std::vector<uint32_t>* path);
  static Iterator SeekLowerBoundIn(const Version& v, DiskSimulator* disk,
                                   size_t stream, Value value);
  static Iterator SeekBeforeIn(const Version& v, DiskSimulator* disk,
                               size_t stream, Value value);
  static Result<size_t> RankOfIn(const Version& v, DiskSimulator* disk,
                                 size_t stream, Value value);
  static Status CheckInvariantsOf(const Version& v);

  /// Splits the child at path position `depth` after an overflow,
  /// propagating upward; may grow a new root.
  void SplitUpward(std::vector<uint32_t>& path, uint32_t overflowed);

  DiskSimulator* disk_;
  Version cur_;
  /// owned_[i]: cur_.nodes[i] is exclusively ours (created or already
  /// cloned since the last snapshot) and may be mutated in place.
  std::vector<bool> owned_;
  FreeSpaceManager fsm_;
  bool reclaim_ = false;
  bool track_dirty_ = false;
  std::vector<bool> dirty_mark_;
  std::vector<uint32_t> dirty_;
  bool buffer_notifications_ = false;
  /// (is_insert, entry) in mutation order.
  std::vector<std::pair<bool, ColumnEntry>> pending_notifications_;
  MutationListener* listener_ = nullptr;
};

}  // namespace knmatch

#endif  // KNMATCH_STORAGE_BPLUS_TREE_H_

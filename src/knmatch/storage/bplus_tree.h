#ifndef KNMATCH_STORAGE_BPLUS_TREE_H_
#define KNMATCH_STORAGE_BPLUS_TREE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "knmatch/common/status.h"
#include "knmatch/core/sorted_columns.h"
#include "knmatch/storage/paged_file.h"

namespace knmatch {

/// A disk-based B+-tree over (value, pid) entries, keyed by
/// (value, pid) lexicographically. This is the index structure a real
/// deployment would put on each sorted dimension instead of the
/// ColumnStore's in-memory page directory: lower-bound seeks traverse
/// root-to-leaf with one charged page read per node, and leaf pages are
/// chained both ways so the AD algorithm's two cursor directions
/// translate to sideways leaf walks.
///
/// Supported operations: bottom-up bulk load from a sorted column,
/// charged lower-bound seek, bidirectional leaf iteration, and
/// incremental insertion with node splits (so a column can be kept
/// up to date as points are appended to the database). Deletion is
/// intentionally lazy (tombstone-free removal from the leaf without
/// rebalancing), as is common for append-mostly analytical stores;
/// underflowed leaves are merged only by a rebuild.
class BPlusTree {
 public:
  /// Observes successful mutations of the tree's entry set. The hook
  /// behind cache invalidation: a listener on each per-dimension tree
  /// lets a result cache evict exactly the entries a point mutation
  /// could affect. Callbacks fire after the tree is updated, on the
  /// mutating thread; BulkLoad does not notify (it replaces the whole
  /// column — callers handling a rebuild should clear dependent state
  /// themselves).
  class MutationListener {
   public:
    virtual ~MutationListener() = default;
    virtual void OnInsert(const ColumnEntry& entry) = 0;
    virtual void OnErase(const ColumnEntry& entry) = 0;
  };

  /// Creates an empty tree whose nodes live on `disk`. The simulator
  /// must outlive the tree.
  explicit BPlusTree(DiskSimulator* disk);

  /// Registers `listener` (nullptr to detach) for Insert/Erase
  /// notifications. The listener must outlive the tree or be detached
  /// first; it is invoked under no tree lock (the tree is externally
  /// synchronized, like all its mutations).
  void set_mutation_listener(MutationListener* listener) {
    listener_ = listener;
  }

  /// Bulk loads from entries sorted ascending by (value, pid).
  /// Replaces any existing content. O(n).
  void BulkLoad(std::span<const ColumnEntry> sorted_entries);

  /// Inserts one entry, splitting nodes as needed. O(log n) charged
  /// page reads (plus uncharged writes, which are deferrable). Fails
  /// without modifying the tree when the root-to-leaf descent cannot
  /// read a node page.
  Status Insert(ColumnEntry entry);

  /// Removes the exact (value, pid) entry if present; returns whether
  /// it was found. No rebalancing (see class comment). Fails without
  /// modifying the tree when the descent cannot read a node page.
  Result<bool> Erase(ColumnEntry entry);

  /// Number of entries.
  size_t size() const { return size_; }
  /// The simulator this tree charges its node visits to (for
  /// page-budget accounting via QueryContext::ArmPages).
  const DiskSimulator* disk() const { return disk_; }
  /// Tree height (0 for an empty tree, 1 for a single leaf).
  size_t height() const { return height_; }
  /// Total nodes (== pages) in the tree.
  size_t num_nodes() const { return nodes_.size(); }

  /// A charged cursor into the leaf level. A cursor that hits an
  /// unreadable leaf page becomes invalid with a non-OK status();
  /// distinguish "walked off the end" (invalid, OK status) from "the
  /// store is damaged" (invalid, error status).
  class Iterator {
   public:
    /// True while the iterator points at an entry.
    bool Valid() const { return node_ != kInvalid; }
    /// OK unless a leaf page failed to read during a seek or a move.
    const Status& status() const { return status_; }
    /// The entry under the cursor. Requires Valid().
    ColumnEntry Get() const;
    /// Moves one entry forward (ascending). Crossing a leaf boundary
    /// charges a page read to this iterator's stream.
    void Next();
    /// Moves one entry backward (descending); invalid before the first
    /// entry.
    void Prev();

   private:
    friend class BPlusTree;
    static constexpr uint32_t kInvalid = 0xFFFFFFFFu;
    const BPlusTree* tree_ = nullptr;
    size_t stream_ = 0;
    uint32_t node_ = kInvalid;
    size_t slot_ = 0;
    Status status_;
  };

  /// Opens an I/O stream for a cursor (each AD direction gets its own).
  size_t OpenStream() const;

  /// Seeks to the first entry with (value, pid) >= (v, 0); the
  /// traversal charges height() page reads to `stream`. The returned
  /// iterator is invalid when every entry is smaller — or, with a
  /// non-OK status(), when a node page could not be read.
  Iterator SeekLowerBound(size_t stream, Value v) const;

  /// An iterator at the first entry smaller than (v, 0) — the starting
  /// point of a descending cursor. Shares the seek's charged traversal.
  Iterator SeekBefore(size_t stream, Value v) const;

  /// Rank (number of entries strictly below (v, 0)). Charges one
  /// root-to-leaf traversal to `stream`.
  Result<size_t> RankOf(size_t stream, Value v) const;

  /// Validates the B+-tree invariants (sortedness, fanout bounds, leaf
  /// chain consistency, key/child separators). For tests.
  Status CheckInvariants() const;

 private:
  // Nodes are fixed-fanout, sized to mimic one 4 KB page:
  // 12-byte entries in leaves -> ~340; (key, child) pairs in internal
  // nodes -> ~256. We keep the arithmetic simple with round figures.
  static constexpr size_t kLeafCapacity = 256;
  static constexpr size_t kInternalCapacity = 128;
  static constexpr uint32_t kInvalid = 0xFFFFFFFFu;

  struct Node {
    bool leaf = true;
    // Leaf: entries sorted by (value, pid); prev/next sibling links.
    std::vector<ColumnEntry> entries;
    uint32_t prev = kInvalid;
    uint32_t next = kInvalid;
    // Internal: keys.size() + 1 == children.size(); keys[i] is the
    // smallest key in the subtree of children[i+1]. counts[i] is the
    // number of entries under children[i] (order-statistic
    // augmentation, for RankOf).
    std::vector<ColumnEntry> keys;
    std::vector<uint32_t> children;
    std::vector<uint64_t> counts;
  };

  static bool EntryLess(const ColumnEntry& a, const ColumnEntry& b) {
    if (a.value != b.value) return a.value < b.value;
    return a.pid < b.pid;
  }

  uint32_t NewNode(bool leaf);
  /// One charged node-page read, with the simulator's standard fault
  /// policy (retry, quarantine).
  Status ChargeVisit(size_t stream, uint32_t node) const;
  /// Descends to the leaf that would contain `key`, charging each
  /// visited node; records the root-to-leaf path in `path` if non-null.
  /// Fails when any node page on the way is unreadable.
  Result<uint32_t> DescendToLeaf(size_t stream, const ColumnEntry& key,
                                 std::vector<uint32_t>* path) const;
  /// Splits the child at path position `depth` after an overflow,
  /// propagating upward; may grow a new root.
  void SplitUpward(std::vector<uint32_t>& path, uint32_t overflowed);

  DiskSimulator* disk_;
  uint64_t first_global_page_ = 0;
  uint64_t allocated_pages_ = 0;
  std::vector<Node> nodes_;
  /// Global disk page id per node (nodes are one page each).
  std::vector<uint64_t> page_of_;
  uint32_t root_ = kInvalid;
  uint32_t first_leaf_ = kInvalid;
  size_t size_ = 0;
  size_t height_ = 0;
  MutationListener* listener_ = nullptr;
};

}  // namespace knmatch

#endif  // KNMATCH_STORAGE_BPLUS_TREE_H_

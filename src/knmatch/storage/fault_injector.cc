#include "knmatch/storage/fault_injector.h"

#include "knmatch/obs/catalog.h"

namespace knmatch {

namespace {
/// splitmix64 finalizer: a cheap, well-mixed 64-bit hash.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}
}  // namespace

double FaultInjector::HashToUnit(uint64_t seed, uint64_t a, uint64_t b) {
  const uint64_t h = Mix64(Mix64(seed ^ Mix64(a)) ^ b);
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

FaultInjector::Outcome FaultInjector::OnReadAttempt(uint64_t page) {
  const uint64_t attempt = attempts_[page]++;

  if (scripted_corrupt_.contains(page)) {
    ++corruptions_injected_;
    obs::Cat().faults_corruption->Add();
    return Outcome::kCorruption;
  }
  if (auto it = scripted_failures_.find(page);
      it != scripted_failures_.end()) {
    if (it->second > 0) {
      --it->second;
      ++transient_faults_injected_;
      obs::Cat().faults_transient->Add();
      return Outcome::kTransientError;
    }
    scripted_failures_.erase(it);
  }

  if (config_.corruption_rate > 0 && !healed_.contains(page) &&
      HashToUnit(config_.seed ^ 0xC0DEC0DEC0DEC0DEull, page, 0) <
          config_.corruption_rate) {
    ++corruptions_injected_;
    obs::Cat().faults_corruption->Add();
    return Outcome::kCorruption;
  }
  if (config_.transient_error_rate > 0 &&
      HashToUnit(config_.seed, page, attempt) <
          config_.transient_error_rate) {
    ++transient_faults_injected_;
    obs::Cat().faults_transient->Add();
    return Outcome::kTransientError;
  }
  return Outcome::kOk;
}

void FaultInjector::FailNextReads(uint64_t page, uint32_t times) {
  if (times == 0) return;
  scripted_failures_[page] += times;
}

void FaultInjector::CorruptPage(uint64_t page) {
  scripted_corrupt_.insert(page);
  healed_.erase(page);
}

void FaultInjector::HealPage(uint64_t page) {
  scripted_corrupt_.erase(page);
  scripted_failures_.erase(page);
  healed_.insert(page);
}

void FaultInjector::ScheduleCrash(CrashPoint point, uint32_t nth) {
  crash_schedule_[static_cast<size_t>(point)] = nth;
}

bool FaultInjector::ShouldCrash(CrashPoint point) {
  uint32_t& remaining = crash_schedule_[static_cast<size_t>(point)];
  if (remaining == 0) return false;
  if (--remaining > 0) return false;
  ++crashes_delivered_;
  return true;
}

bool FaultInjector::HasScheduledCrash() const {
  for (const uint32_t n : crash_schedule_) {
    if (n != 0) return true;
  }
  return false;
}

void FaultInjector::Clear() {
  scripted_failures_.clear();
  scripted_corrupt_.clear();
  healed_.clear();
  crash_schedule_.fill(0);
  config_.transient_error_rate = 0.0;
  config_.corruption_rate = 0.0;
}

}  // namespace knmatch

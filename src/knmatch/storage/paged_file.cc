#include "knmatch/storage/paged_file.h"

#include <cassert>

namespace knmatch {

PagedFile::PagedFile(DiskSimulator* disk)
    : disk_(disk), page_size_(disk->config().page_size) {}

size_t PagedFile::AppendPage(std::span<const std::byte> image) {
  assert(image.size() <= page_size_);
  std::vector<std::byte> page(page_size_, std::byte{0});
  std::memcpy(page.data(), image.data(), image.size());
  // Keep the file's pages contiguous in the global page space: allocate
  // them from the simulator one at a time; because no other allocation
  // interleaves during a build, the run stays contiguous. The first
  // allocation records the base.
  const uint64_t global = disk_->AllocatePages(1);
  if (pages_.empty()) {
    first_global_page_ = global;
  }
  assert(global == first_global_page_ + pages_.size() &&
         "file pages must be contiguous; do not interleave builds");
  pages_.push_back(std::move(page));
  return pages_.size() - 1;
}

std::span<const std::byte> PagedFile::ReadPage(size_t stream,
                                               size_t index) const {
  assert(index < pages_.size());
  disk_->RecordRead(stream, first_global_page_ + index);
  return pages_[index];
}

std::span<const std::byte> PagedFile::PeekPage(size_t index) const {
  assert(index < pages_.size());
  return pages_[index];
}

}  // namespace knmatch

#include "knmatch/storage/paged_file.h"

#include <cassert>
#include <string>

#include "knmatch/obs/catalog.h"
#include "knmatch/obs/trace.h"

namespace knmatch {

PagedFile::PagedFile(DiskSimulator* disk)
    : disk_(disk), page_size_(disk->config().page_size) {}

size_t PagedFile::AppendPage(std::span<const std::byte> payload) {
  assert(payload.size() <= payload_capacity() &&
         "payload exceeds the framed page capacity");
  // Keep the file's pages contiguous in the global page space: allocate
  // them from the simulator one at a time; because no other allocation
  // interleaves during a build, the run stays contiguous. The first
  // allocation records the base.
  const uint64_t global = disk_->AllocatePages(1);
  if (pages_.empty()) {
    first_global_page_ = global;
  }
  assert(global == first_global_page_ + pages_.size() &&
         "file pages must be contiguous; do not interleave builds");
  pages_.push_back(FrameChecksummedPage(payload, page_size_));
  verified_.push_back(false);
  return pages_.size() - 1;
}

Result<std::span<const std::byte>> PagedFile::VerifyStored(
    size_t index) const {
  const std::vector<std::byte>& page = pages_[index];
  if (verified_[index]) {
    // Already proven intact; re-derive the payload view from the
    // header without recomputing the checksum.
    uint32_t len;
    std::memcpy(&len, page.data(), sizeof(len));
    return std::span<const std::byte>(page.data() + sizeof(uint32_t),
                                      len);
  }
  obs::TraceSpan span(obs::Phase::kVerify);
  auto payload = VerifyAndUnframePage(page);
  if (payload.ok()) {
    verified_[index] = true;
  } else {
    obs::Cat().checksum_failures->Add();
  }
  return payload;
}

Result<std::span<const std::byte>> PagedFile::ReadPage(
    size_t stream, size_t index) const {
  if (index >= pages_.size()) {
    return Status::OutOfRange("page index " + std::to_string(index) +
                              " >= file size " +
                              std::to_string(pages_.size()));
  }
  const uint64_t global = first_global_page_ + index;
  if (disk_->IsQuarantined(global)) {
    return Status::DataLoss("page " + std::to_string(global) +
                            " is quarantined");
  }
  for (int attempt = 0; attempt < DiskSimulator::kMaxReadAttempts;
       ++attempt) {
    if (attempt > 0) {
      obs::Cat().read_retries->Add();
      if (obs::QueryTrace* trace = obs::CurrentTrace()) {
        ++trace->counters().retries;
      }
    }
    switch (disk_->ReadAttempt(stream, global)) {
      case DiskSimulator::ReadOutcome::kOk:
        break;
      case DiskSimulator::ReadOutcome::kTransientError:
        continue;
      case DiskSimulator::ReadOutcome::kCorruption: {
        // The transfer delivered a damaged image. Run it through the
        // codec — the checksum is what actually detects the damage.
        std::vector<std::byte> damaged = pages_[index];
        damaged[index % damaged.size()] ^= std::byte{0x40};
        auto verdict = VerifyAndUnframePage(damaged);
        assert(!verdict.ok() && "checksum must catch a flipped bit");
        obs::Cat().checksum_failures->Add();
        disk_->QuarantinePage(global);
        return verdict.ok()
                   ? Status::DataLoss("corrupt transfer")  // unreachable
                   : verdict.status();
      }
    }
    // Successful transfer: verify the stored image (detects at-rest
    // damage such as bit rot).
    auto payload = VerifyStored(index);
    if (!payload.ok()) {
      // The cached copy is garbage too; quarantine so later readers
      // are refused cheaply.
      disk_->QuarantinePage(global);
    }
    return payload;
  }
  return Status::Unavailable(
      "page " + std::to_string(global) + " unreadable after " +
      std::to_string(DiskSimulator::kMaxReadAttempts) + " attempts");
}

Result<std::span<const std::byte>> PagedFile::PeekPage(
    size_t index) const {
  if (index >= pages_.size()) {
    return Status::OutOfRange("page index " + std::to_string(index) +
                              " >= file size " +
                              std::to_string(pages_.size()));
  }
  return VerifyStored(index);
}

void PagedFile::CorruptStoredByte(size_t index, size_t offset,
                                  uint8_t mask) {
  assert(index < pages_.size());
  assert(offset < page_size_);
  pages_[index][offset] ^= std::byte{mask};
  verified_[index] = false;
}

}  // namespace knmatch

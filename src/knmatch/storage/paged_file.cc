#include "knmatch/storage/paged_file.h"

#include <cassert>
#include <string>

#include "knmatch/obs/catalog.h"
#include "knmatch/obs/trace.h"

namespace knmatch {

PagedFile::PagedFile(DiskSimulator* disk)
    : disk_(disk), page_size_(disk->config().page_size) {}

size_t PagedFile::AppendPage(std::span<const std::byte> payload) {
  assert(payload.size() <= payload_capacity() &&
         "payload exceeds the framed page capacity");
  // Pages are allocated from the simulator one at a time. Bulk builds
  // (nothing else allocating) get a contiguous run; a live-ingest file
  // growing while other files allocate records each page's global id.
  const uint64_t global = disk_->AllocatePages(1);
  if (pages_.empty()) {
    first_global_page_ = global;
  }
  pages_.push_back(FrameChecksummedPage(payload, page_size_));
  global_of_.push_back(global);
  verified_.push_back(false);
  return pages_.size() - 1;
}

void PagedFile::WritePage(size_t index,
                          std::span<const std::byte> payload) {
  assert(index < pages_.size());
  assert(payload.size() <= payload_capacity() &&
         "payload exceeds the framed page capacity");
  pages_[index] = FrameChecksummedPage(payload, page_size_);
  verified_[index] = false;
  // The pool may hold the old image; the head position is untouched
  // (writes are not I/O-modelled).
  disk_->EvictPage(global_of_[index]);
}

void PagedFile::WritePageTorn(size_t index,
                              std::span<const std::byte> payload,
                              size_t valid_bytes) {
  assert(payload.size() <= payload_capacity());
  std::vector<std::byte> frame = FrameChecksummedPage(payload, page_size_);
  if (valid_bytes >= frame.size()) valid_bytes = frame.size() - 1;
  if (index == pages_.size()) {
    const uint64_t global = disk_->AllocatePages(1);
    if (pages_.empty()) first_global_page_ = global;
    pages_.emplace_back(page_size_, std::byte{0});
    global_of_.push_back(global);
    verified_.push_back(false);
  }
  assert(index < pages_.size());
  // Old image keeps its tail; only the first valid_bytes of the new
  // frame landed before the crash.
  std::memcpy(pages_[index].data(), frame.data(), valid_bytes);
  verified_[index] = false;
  disk_->EvictPage(global_of_[index]);
}

Result<std::span<const std::byte>> PagedFile::VerifyStored(
    size_t index) const {
  const std::vector<std::byte>& page = pages_[index];
  if (verified_[index]) {
    // Already proven intact; re-derive the payload view from the
    // header without recomputing the checksum.
    uint32_t len;
    std::memcpy(&len, page.data(), sizeof(len));
    return std::span<const std::byte>(page.data() + sizeof(uint32_t),
                                      len);
  }
  obs::TraceSpan span(obs::Phase::kVerify);
  auto payload = VerifyAndUnframePage(page);
  if (payload.ok()) {
    verified_[index] = true;
  } else {
    obs::Cat().checksum_failures->Add();
  }
  return payload;
}

Result<std::span<const std::byte>> PagedFile::ReadPage(
    size_t stream, size_t index) const {
  if (index >= pages_.size()) {
    return Status::OutOfRange("page index " + std::to_string(index) +
                              " >= file size " +
                              std::to_string(pages_.size()));
  }
  const uint64_t global = global_of_[index];
  if (disk_->IsQuarantined(global)) {
    return Status::DataLoss("page " + std::to_string(global) +
                            " is quarantined");
  }
  for (int attempt = 0; attempt < DiskSimulator::kMaxReadAttempts;
       ++attempt) {
    if (attempt > 0) {
      obs::Cat().read_retries->Add();
      if (obs::QueryTrace* trace = obs::CurrentTrace()) {
        ++trace->counters().retries;
      }
    }
    switch (disk_->ReadAttempt(stream, global)) {
      case DiskSimulator::ReadOutcome::kOk:
        break;
      case DiskSimulator::ReadOutcome::kTransientError:
        continue;
      case DiskSimulator::ReadOutcome::kCorruption: {
        // The transfer delivered a damaged image. Run it through the
        // codec — the checksum is what actually detects the damage.
        std::vector<std::byte> damaged = pages_[index];
        damaged[index % damaged.size()] ^= std::byte{0x40};
        auto verdict = VerifyAndUnframePage(damaged);
        assert(!verdict.ok() && "checksum must catch a flipped bit");
        obs::Cat().checksum_failures->Add();
        disk_->QuarantinePage(global);
        return verdict.ok()
                   ? Status::DataLoss("corrupt transfer")  // unreachable
                   : verdict.status();
      }
    }
    // Successful transfer: verify the stored image (detects at-rest
    // damage such as bit rot).
    auto payload = VerifyStored(index);
    if (!payload.ok()) {
      // The cached copy is garbage too; quarantine so later readers
      // are refused cheaply.
      disk_->QuarantinePage(global);
    }
    return payload;
  }
  return Status::Unavailable(
      "page " + std::to_string(global) + " unreadable after " +
      std::to_string(DiskSimulator::kMaxReadAttempts) + " attempts");
}

Result<std::span<const std::byte>> PagedFile::PeekPage(
    size_t index) const {
  if (index >= pages_.size()) {
    return Status::OutOfRange("page index " + std::to_string(index) +
                              " >= file size " +
                              std::to_string(pages_.size()));
  }
  return VerifyStored(index);
}

void PagedFile::CorruptStoredByte(size_t index, size_t offset,
                                  uint8_t mask) {
  assert(index < pages_.size());
  assert(offset < page_size_);
  pages_[index][offset] ^= std::byte{mask};
  verified_[index] = false;
}

}  // namespace knmatch

#include "knmatch/storage/disk_simulator.h"

#include <cassert>

namespace knmatch {

uint64_t DiskSimulator::AllocatePages(uint64_t count) {
  const uint64_t first = next_page_;
  next_page_ += count;
  return first;
}

size_t DiskSimulator::OpenStream() {
  stream_last_page_.push_back(0);
  stream_has_read_.push_back(false);
  return stream_last_page_.size() - 1;
}

bool DiskSimulator::BufferPool::Touch(uint64_t page, size_t capacity) {
  auto it = index.find(page);
  if (it != index.end()) {
    recency.splice(recency.begin(), recency, it->second);
    return true;
  }
  recency.push_front(page);
  index[page] = recency.begin();
  if (recency.size() > capacity) {
    index.erase(recency.back());
    recency.pop_back();
  }
  return false;
}

void DiskSimulator::BufferPool::Clear() {
  recency.clear();
  index.clear();
}

void DiskSimulator::DropBufferPool() { pool_.Clear(); }

void DiskSimulator::RecordRead(size_t stream, uint64_t page) {
  assert(stream < stream_last_page_.size());
  assert(page < next_page_);
  // Re-reading the reader's current page hits its own page buffer:
  // free, and it does not touch the shared pool's recency either.
  if (config_.single_head) {
    if (head_has_read_ && page == head_last_page_) return;
  } else if (stream_has_read_[stream] &&
             stream_last_page_[stream] == page) {
    return;
  }
  // Shared buffer pool (when configured). A hit costs nothing; the
  // reader's own page buffer now holds the page, so subsequent
  // same-page reads are free too.
  if (config_.buffer_pool_pages > 0 &&
      pool_.Touch(page, config_.buffer_pool_pages)) {
    ++buffer_hits_;
    if (config_.single_head) {
      head_has_read_ = true;
      head_last_page_ = page;
    } else {
      stream_has_read_[stream] = true;
      stream_last_page_[stream] = page;
    }
    return;
  }
  if (config_.single_head) {
    // Ablation model: one shared head, no per-cursor buffering.
    if (head_has_read_) {
      const bool adjacent =
          page == head_last_page_ + 1 || head_last_page_ == page + 1;
      if (adjacent) {
        ++sequential_reads_;
      } else {
        ++random_reads_;
      }
    } else {
      ++random_reads_;
      head_has_read_ = true;
    }
    head_last_page_ = page;
    return;
  }
  if (stream_has_read_[stream]) {
    const uint64_t last = stream_last_page_[stream];
    const bool adjacent = page == last + 1 || last == page + 1;
    if (adjacent) {
      ++sequential_reads_;
    } else {
      ++random_reads_;
    }
  } else {
    ++random_reads_;  // First access of a stream always seeks.
    stream_has_read_[stream] = true;
  }
  stream_last_page_[stream] = page;
}

double DiskSimulator::SimulatedIoSeconds() const {
  return (static_cast<double>(sequential_reads_) *
              config_.sequential_read_ms +
          static_cast<double>(random_reads_) * config_.random_read_ms) /
         1000.0;
}

void DiskSimulator::ResetCounters() {
  sequential_reads_ = 0;
  random_reads_ = 0;
  buffer_hits_ = 0;
  head_has_read_ = false;
  for (size_t i = 0; i < stream_has_read_.size(); ++i) {
    stream_has_read_[i] = false;
  }
}

}  // namespace knmatch

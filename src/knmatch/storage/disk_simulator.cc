#include "knmatch/storage/disk_simulator.h"

#include <cassert>
#include <string>

#include "knmatch/obs/catalog.h"
#include "knmatch/obs/trace.h"

namespace knmatch {

uint64_t DiskSimulator::AllocatePages(uint64_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t first = next_page_;
  next_page_ += count;
  return first;
}

size_t DiskSimulator::OpenStream() {
  std::lock_guard<std::mutex> lock(mu_);
  stream_last_page_.push_back(0);
  stream_has_pos_.push_back(false);
  stream_buffer_valid_.push_back(false);
  return stream_last_page_.size() - 1;
}

bool DiskSimulator::BufferPool::Lookup(uint64_t page) {
  auto it = index.find(page);
  if (it == index.end()) return false;
  recency.splice(recency.begin(), recency, it->second);
  return true;
}

void DiskSimulator::BufferPool::Insert(uint64_t page, size_t capacity) {
  if (index.contains(page)) return;
  recency.push_front(page);
  index[page] = recency.begin();
  if (recency.size() > capacity) {
    index.erase(recency.back());
    recency.pop_back();
  }
}

void DiskSimulator::BufferPool::Erase(uint64_t page) {
  auto it = index.find(page);
  if (it == index.end()) return;
  recency.erase(it->second);
  index.erase(it);
}

void DiskSimulator::BufferPool::Clear() {
  recency.clear();
  index.clear();
}

void DiskSimulator::DropBufferPool() {
  std::lock_guard<std::mutex> lock(mu_);
  pool_.Clear();
}

bool DiskSimulator::IsQuarantined(uint64_t page) const {
  std::lock_guard<std::mutex> lock(mu_);
  return quarantined_.contains(page);
}

void DiskSimulator::QuarantinePage(uint64_t page) {
  std::lock_guard<std::mutex> lock(mu_);
  QuarantinePageLocked(page);
}

void DiskSimulator::QuarantinePageLocked(uint64_t page) {
  if (quarantined_.insert(page).second) {
    obs::Cat().quarantines->Add();
    obs::Cat().quarantined_pages->Add(1);
    if (obs::QueryTrace* trace = obs::CurrentTrace()) {
      ++trace->counters().quarantines;
    }
  }
  pool_.Erase(page);
}

void DiskSimulator::ClearQuarantine() {
  std::lock_guard<std::mutex> lock(mu_);
  obs::Cat().quarantined_pages->Add(
      -static_cast<int64_t>(quarantined_.size()));
  quarantined_.clear();
}

void DiskSimulator::EvictPage(uint64_t page) {
  std::lock_guard<std::mutex> lock(mu_);
  pool_.Erase(page);
}

void DiskSimulator::SetPosition(size_t stream, uint64_t page,
                                bool buffer_valid) {
  if (config_.single_head) {
    head_has_pos_ = true;
    head_last_page_ = page;
    head_buffer_valid_ = buffer_valid;
  } else {
    stream_has_pos_[stream] = true;
    stream_last_page_[stream] = page;
    stream_buffer_valid_[stream] = buffer_valid;
  }
}

void DiskSimulator::ChargeAttempt(size_t stream, uint64_t page) {
  const bool has_pos =
      config_.single_head ? head_has_pos_ : stream_has_pos_[stream];
  if (!has_pos) {
    ++random_reads_;  // First access of a stream always seeks.
    obs::Cat().pages_random->Add();
    if (obs::QueryTrace* trace = obs::CurrentTrace()) {
      ++trace->counters().random_pages;
    }
    return;
  }
  const uint64_t last =
      config_.single_head ? head_last_page_ : stream_last_page_[stream];
  // Same page (only reachable when the buffer is invalid, i.e. a retry
  // after a failed transfer) and +/-1 neighbors need no seek.
  const bool adjacent =
      page == last || page == last + 1 || last == page + 1;
  if (adjacent) {
    ++sequential_reads_;
    obs::Cat().pages_sequential->Add();
    if (obs::QueryTrace* trace = obs::CurrentTrace()) {
      ++trace->counters().sequential_pages;
    }
  } else {
    ++random_reads_;
    obs::Cat().pages_random->Add();
    if (obs::QueryTrace* trace = obs::CurrentTrace()) {
      ++trace->counters().random_pages;
    }
  }
}

DiskSimulator::ReadOutcome DiskSimulator::ReadAttempt(size_t stream,
                                                      uint64_t page) {
  std::lock_guard<std::mutex> lock(mu_);
  return ReadAttemptLocked(stream, page);
}

DiskSimulator::ReadOutcome DiskSimulator::ReadAttemptLocked(
    size_t stream, uint64_t page) {
  assert(stream < stream_last_page_.size());
  assert(page < next_page_);
  // Re-reading the contents held by the reader's own page buffer:
  // free, no media access, and the shared pool's recency untouched.
  if (config_.single_head) {
    if (head_buffer_valid_ && page == head_last_page_) {
      return ReadOutcome::kOk;
    }
  } else if (stream_buffer_valid_[stream] &&
             stream_last_page_[stream] == page) {
    return ReadOutcome::kOk;
  }
  // Shared buffer pool (when configured): resident pages are served
  // from memory — no media access, so no fault opportunity either.
  if (config_.buffer_pool_pages > 0 && pool_.Lookup(page)) {
    ++buffer_hits_;
    obs::Cat().buffer_hits->Add();
    if (obs::QueryTrace* trace = obs::CurrentTrace()) {
      ++trace->counters().buffer_hits;
    }
    SetPosition(stream, page, /*buffer_valid=*/true);
    return ReadOutcome::kOk;
  }
  // Physical attempt: it costs I/O whether or not it succeeds.
  ReadOutcome outcome = ReadOutcome::kOk;
  if (injector_ != nullptr) {
    switch (injector_->OnReadAttempt(page)) {
      case FaultInjector::Outcome::kOk:
        break;
      case FaultInjector::Outcome::kTransientError:
        outcome = ReadOutcome::kTransientError;
        break;
      case FaultInjector::Outcome::kCorruption:
        outcome = ReadOutcome::kCorruption;
        break;
    }
  }
  ChargeAttempt(stream, page);
  if (outcome == ReadOutcome::kOk) {
    if (config_.buffer_pool_pages > 0) {
      pool_.Insert(page, config_.buffer_pool_pages);
    }
    SetPosition(stream, page, /*buffer_valid=*/true);
  } else {
    // The head reached the page but nothing usable transferred; a
    // corrupted transfer's garbage must not enter the pool either.
    ++failed_reads_;
    obs::Cat().failed_reads->Add();
    if (obs::QueryTrace* trace = obs::CurrentTrace()) {
      ++trace->counters().failed_reads;
    }
    SetPosition(stream, page, /*buffer_valid=*/false);
  }
  return outcome;
}

void DiskSimulator::RecordRead(size_t stream, uint64_t page) {
  (void)ReadAttempt(stream, page);
}

Status DiskSimulator::ChargedRead(size_t stream, uint64_t page) {
  std::lock_guard<std::mutex> lock(mu_);
  if (quarantined_.contains(page)) {
    return Status::DataLoss("page " + std::to_string(page) +
                            " is quarantined");
  }
  for (int attempt = 0; attempt < kMaxReadAttempts; ++attempt) {
    if (attempt > 0) {
      obs::Cat().read_retries->Add();
      if (obs::QueryTrace* trace = obs::CurrentTrace()) {
        ++trace->counters().retries;
      }
    }
    switch (ReadAttemptLocked(stream, page)) {
      case ReadOutcome::kOk:
        return Status::OK();
      case ReadOutcome::kTransientError:
        continue;
      case ReadOutcome::kCorruption:
        QuarantinePageLocked(page);
        return Status::DataLoss("page " + std::to_string(page) +
                                " failed verification; quarantined");
    }
  }
  return Status::Unavailable("page " + std::to_string(page) +
                             " unreadable after " +
                             std::to_string(kMaxReadAttempts) +
                             " attempts");
}

double DiskSimulator::SimulatedIoSeconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return (static_cast<double>(sequential_reads_) *
              config_.sequential_read_ms +
          static_cast<double>(random_reads_) * config_.random_read_ms) /
         1000.0;
}

void DiskSimulator::ResetCounters() {
  std::lock_guard<std::mutex> lock(mu_);
  sequential_reads_ = 0;
  random_reads_ = 0;
  failed_reads_ = 0;
  buffer_hits_ = 0;
  head_has_pos_ = false;
  head_buffer_valid_ = false;
  for (size_t i = 0; i < stream_has_pos_.size(); ++i) {
    stream_has_pos_[i] = false;
    stream_buffer_valid_[i] = false;
  }
}

}  // namespace knmatch

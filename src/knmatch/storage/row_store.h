#ifndef KNMATCH_STORAGE_ROW_STORE_H_
#define KNMATCH_STORAGE_ROW_STORE_H_

#include <functional>
#include <span>
#include <vector>

#include "knmatch/common/dataset.h"
#include "knmatch/common/status.h"
#include "knmatch/common/types.h"
#include "knmatch/storage/paged_file.h"

namespace knmatch {

/// Row-major heap file: points stored back to back in pid order, fixed
/// row width of dims() * sizeof(Value) bytes, no row spanning pages.
/// This is the layout the sequential-scan competitors read, and the file
/// the VA-file algorithm's refinement phase fetches points from.
class RowStore {
 public:
  /// Materializes `db` onto the simulated disk.
  RowStore(const Dataset& db, DiskSimulator* disk);

  /// Cardinality.
  size_t size() const { return size_; }
  /// Dimensionality.
  size_t dims() const { return dims_; }
  /// Number of pages the file occupies.
  size_t num_pages() const { return file_.num_pages(); }
  /// Rows stored per page.
  size_t rows_per_page() const { return rows_per_page_; }

  /// Opens an I/O accounting stream on the underlying disk.
  size_t OpenStream() const;

  /// The simulator this store charges its I/O to (for page-budget
  /// accounting via QueryContext::ArmPages).
  const DiskSimulator* disk() const { return disk_; }

  /// As ForEachRow, but `fn` returning false stops the scan early with
  /// an OK status — the cooperative early-exit the governance layer
  /// uses; no further pages are read.
  Status ForEachRowWhile(
      size_t stream,
      const std::function<bool(PointId, std::span<const Value>)>& fn) const;

  /// Reads the coordinates of `pid` (one page read, charged to
  /// `stream`). The returned span points into `*buf`. Fails (kDataLoss
  /// / kUnavailable) when the row's page cannot be read intact.
  Result<std::span<const Value>> ReadRow(size_t stream, PointId pid,
                                         std::vector<Value>* buf) const;

  /// Sequentially scans the whole file on `stream`, invoking
  /// `fn(pid, coordinates)` for every point in pid order. Stops at the
  /// first unreadable page and returns its error.
  Status ForEachRow(
      size_t stream,
      const std::function<void(PointId, std::span<const Value>)>& fn) const;

 private:
  size_t size_;
  size_t dims_;
  size_t rows_per_page_;
  DiskSimulator* disk_;
  PagedFile file_;
};

}  // namespace knmatch

#endif  // KNMATCH_STORAGE_ROW_STORE_H_

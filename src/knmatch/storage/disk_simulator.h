#ifndef KNMATCH_STORAGE_DISK_SIMULATOR_H_
#define KNMATCH_STORAGE_DISK_SIMULATOR_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "knmatch/common/status.h"
#include "knmatch/storage/fault_injector.h"

namespace knmatch {

/// Cost model of the simulated disk.
///
/// The paper's experiments ran on a 2006-era desktop; we do not try to
/// reproduce its absolute seconds. Instead the simulator counts page
/// accesses — the paper's own primary efficiency metric — and converts
/// them to modelled time with a sequential/random split. A page read is
/// *sequential* when it is adjacent (+/-1) to the previous page read by
/// the same stream (cursor); this models per-cursor read-ahead buffers
/// and matches the paper's observation that the AD algorithm's forward
/// searches enjoy sequential access.
struct DiskConfig {
  /// Page size in bytes (the paper uses 4096).
  size_t page_size = 4096;
  /// Modelled cost of a sequential page read, milliseconds. The default
  /// (0.5 ms) reflects a 2006-era disk's *effective* per-page scan rate
  /// (transfer plus per-page processing), calibrated so the sequential
  /// scan of the paper's texture dataset lands near its measured ~1 s.
  double sequential_read_ms = 0.5;
  /// Modelled cost of a random page read (seek + rotational delay),
  /// milliseconds.
  double random_read_ms = 5.0;
  /// Ablation switch: when true, sequential/random classification uses
  /// one global head position instead of per-stream positions — the
  /// pessimistic model where interleaved cursors (e.g., the AD
  /// algorithm's 2d directions) destroy each other's locality because
  /// nothing buffers per cursor. The default (false) models per-cursor
  /// read-ahead buffers.
  bool single_head = false;
  /// Buffer-pool capacity in pages (0 disables caching). A read whose
  /// page is resident costs nothing and does not move the head;
  /// eviction is LRU. Counted separately as buffer_hits.
  size_t buffer_pool_pages = 0;
};

/// Counts simulated page I/O, classified per stream into sequential and
/// random reads. All paged files of one simulated database share one
/// simulator; page ids are global, mirroring physical placement (each
/// file's pages are contiguous, files laid out one after another).
///
/// Fault model: an optional FaultInjector decides the outcome of every
/// *physical* read attempt (reads served from a reader's own page
/// buffer or the shared pool never reach the media and cannot fault).
/// Every physical attempt — failed or not — costs I/O and is counted,
/// so retries show up in the modelled time; failed attempts are
/// additionally tallied in failed_reads() and never populate the buffer
/// pool. Pages whose contents prove unrecoverable are quarantined:
/// subsequent reads are refused immediately, without charging I/O,
/// until ClearQuarantine().
///
/// Thread safety: all public methods are internally synchronized by
/// one mutex, so concurrent snapshot readers (the live-ingest engine
/// runs AD queries against pinned epochs while a writer commits) can
/// charge I/O on their own streams without data races. The attached
/// FaultInjector is only ever consulted under that mutex, so it needs
/// no locking of its own.
class DiskSimulator {
 public:
  explicit DiskSimulator(DiskConfig config = DiskConfig())
      : config_(config) {}

  /// The configured cost model.
  const DiskConfig& config() const { return config_; }

  /// Attaches a fault source (nullptr detaches). Not owned; must
  /// outlive the simulator or be detached first.
  void set_fault_injector(FaultInjector* injector) {
    std::lock_guard<std::mutex> lock(mu_);
    injector_ = injector;
  }
  FaultInjector* fault_injector() const {
    std::lock_guard<std::mutex> lock(mu_);
    return injector_;
  }

  /// Allocates `count` fresh page ids (one contiguous run) and returns
  /// the first. Called by files at build time.
  uint64_t AllocatePages(uint64_t count);

  /// Opens an access stream (a cursor with its own read-ahead state).
  /// Streams are cheap; open one per independent cursor.
  size_t OpenStream();

  /// Outcome of one physical read attempt (mirrors
  /// FaultInjector::Outcome so callers need not reach the injector).
  enum class ReadOutcome {
    kOk,
    kTransientError,
    kCorruption,
  };

  /// Performs one read attempt of `page` on `stream`: consults the
  /// fault injector (if any), charges the attempt's I/O, and updates
  /// the stream's position and buffer state. Buffered reads return kOk
  /// without touching the media. Failed attempts leave the reader's
  /// page buffer invalid, so a retry is a fresh physical read (charged
  /// as sequential: the head is already on the page).
  ReadOutcome ReadAttempt(size_t stream, uint64_t page);

  /// Infallible read accounting: one attempt, outcome ignored. The
  /// legacy entry point for structures that only model I/O counts
  /// (R-tree, SS-tree node visits) and for tests of the cost model.
  void RecordRead(size_t stream, uint64_t page);

  /// A complete charged read with the standard fault policy: refused
  /// immediately if quarantined; up to kMaxReadAttempts attempts with
  /// transient errors retried; corruption quarantines the page and
  /// reports kDataLoss. For callers without page bytes of their own
  /// (the B+-tree's modelled node visits); PagedFile layers checksum
  /// verification on top of ReadAttempt instead.
  Status ChargedRead(size_t stream, uint64_t page);

  /// Retry budget of ChargedRead (and PagedFile::ReadPage).
  static constexpr int kMaxReadAttempts = 3;

  /// Quarantine of unrecoverable pages.
  bool IsQuarantined(uint64_t page) const;
  /// Marks `page` unrecoverable and evicts it from the buffer pool.
  void QuarantinePage(uint64_t page);
  /// Lifts every quarantine (after the fault source is cleared).
  void ClearQuarantine();
  size_t quarantined_pages() const {
    std::lock_guard<std::mutex> lock(mu_);
    return quarantined_.size();
  }

  /// Evicts `page` from the shared buffer pool (e.g., when its cached
  /// image failed verification).
  void EvictPage(uint64_t page);

  /// Counters. Sequential/random totals include failed attempts — every
  /// physical attempt costs I/O — and failed_reads() tallies them.
  uint64_t sequential_reads() const {
    std::lock_guard<std::mutex> lock(mu_);
    return sequential_reads_;
  }
  uint64_t random_reads() const {
    std::lock_guard<std::mutex> lock(mu_);
    return random_reads_;
  }
  uint64_t total_reads() const {
    std::lock_guard<std::mutex> lock(mu_);
    return sequential_reads_ + random_reads_;
  }
  uint64_t failed_reads() const {
    std::lock_guard<std::mutex> lock(mu_);
    return failed_reads_;
  }
  /// Reads absorbed by the buffer pool (only when configured).
  uint64_t buffer_hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return buffer_hits_;
  }

  /// Modelled elapsed I/O time, in seconds, for the recorded reads.
  double SimulatedIoSeconds() const;

  /// Resets the counters (not the allocated pages or open streams).
  /// Called between measured queries. The buffer pool's contents
  /// survive a reset (it models a warm cache across queries); call
  /// DropBufferPool() for a cold one.
  void ResetCounters();

  /// Empties the buffer pool.
  void DropBufferPool();

 private:
  /// Charges one physical attempt: sequential/random classification
  /// against the stream's position, which then moves to `page`.
  void ChargeAttempt(size_t stream, uint64_t page);
  /// Moves the stream's position to `page` and records whether its
  /// page buffer now holds valid contents.
  void SetPosition(size_t stream, uint64_t page, bool buffer_valid);
  /// Unsynchronized bodies, called with mu_ held.
  ReadOutcome ReadAttemptLocked(size_t stream, uint64_t page);
  void QuarantinePageLocked(uint64_t page);

  /// Guards every member below; public methods lock it on entry.
  mutable std::mutex mu_;
  DiskConfig config_;
  FaultInjector* injector_ = nullptr;
  uint64_t next_page_ = 0;
  // A stream's state splits into *position* (where the head last was,
  // driving sequential/random classification) and *buffer validity*
  // (whether the read-ahead buffer holds the positioned page's
  // contents). They differ exactly after a failed attempt: the head
  // reached the page but nothing usable transferred, so a re-read of
  // the same page must be charged again.
  std::vector<uint64_t> stream_last_page_;
  std::vector<bool> stream_has_pos_;
  std::vector<bool> stream_buffer_valid_;
  uint64_t head_last_page_ = 0;
  bool head_has_pos_ = false;
  bool head_buffer_valid_ = false;
  uint64_t sequential_reads_ = 0;
  uint64_t random_reads_ = 0;
  uint64_t failed_reads_ = 0;
  uint64_t buffer_hits_ = 0;
  std::unordered_set<uint64_t> quarantined_;

  /// LRU buffer pool over global page ids: doubly-linked recency list
  /// plus an index into it. Lookup refreshes recency on a hit; Insert
  /// adds a page, evicting the back beyond capacity. Only successful
  /// reads insert — a failed transfer must not populate the cache.
  struct BufferPool {
    std::list<uint64_t> recency;
    std::unordered_map<uint64_t, std::list<uint64_t>::iterator> index;
    bool Lookup(uint64_t page);
    void Insert(uint64_t page, size_t capacity);
    void Erase(uint64_t page);
    void Clear();
  };
  BufferPool pool_;
};

}  // namespace knmatch

#endif  // KNMATCH_STORAGE_DISK_SIMULATOR_H_

#ifndef KNMATCH_STORAGE_DISK_SIMULATOR_H_
#define KNMATCH_STORAGE_DISK_SIMULATOR_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

namespace knmatch {

/// Cost model of the simulated disk.
///
/// The paper's experiments ran on a 2006-era desktop; we do not try to
/// reproduce its absolute seconds. Instead the simulator counts page
/// accesses — the paper's own primary efficiency metric — and converts
/// them to modelled time with a sequential/random split. A page read is
/// *sequential* when it is adjacent (+/-1) to the previous page read by
/// the same stream (cursor); this models per-cursor read-ahead buffers
/// and matches the paper's observation that the AD algorithm's forward
/// searches enjoy sequential access.
struct DiskConfig {
  /// Page size in bytes (the paper uses 4096).
  size_t page_size = 4096;
  /// Modelled cost of a sequential page read, milliseconds. The default
  /// (0.5 ms) reflects a 2006-era disk's *effective* per-page scan rate
  /// (transfer plus per-page processing), calibrated so the sequential
  /// scan of the paper's texture dataset lands near its measured ~1 s.
  double sequential_read_ms = 0.5;
  /// Modelled cost of a random page read (seek + rotational delay),
  /// milliseconds.
  double random_read_ms = 5.0;
  /// Ablation switch: when true, sequential/random classification uses
  /// one global head position instead of per-stream positions — the
  /// pessimistic model where interleaved cursors (e.g., the AD
  /// algorithm's 2d directions) destroy each other's locality because
  /// nothing buffers per cursor. The default (false) models per-cursor
  /// read-ahead buffers.
  bool single_head = false;
  /// Buffer-pool capacity in pages (0 disables caching). A read whose
  /// page is resident costs nothing and does not move the head;
  /// eviction is LRU. Counted separately as buffer_hits.
  size_t buffer_pool_pages = 0;
};

/// Counts simulated page I/O, classified per stream into sequential and
/// random reads. All paged files of one simulated database share one
/// simulator; page ids are global, mirroring physical placement (each
/// file's pages are contiguous, files laid out one after another).
class DiskSimulator {
 public:
  explicit DiskSimulator(DiskConfig config = DiskConfig())
      : config_(config) {}

  /// The configured cost model.
  const DiskConfig& config() const { return config_; }

  /// Allocates `count` fresh page ids (one contiguous run) and returns
  /// the first. Called by files at build time.
  uint64_t AllocatePages(uint64_t count);

  /// Opens an access stream (a cursor with its own read-ahead state).
  /// Streams are cheap; open one per independent cursor.
  size_t OpenStream();

  /// Records that `stream` read global page `page`. Classified as
  /// sequential iff the stream's previous read was page-1 or page+1.
  void RecordRead(size_t stream, uint64_t page);

  /// Counters.
  uint64_t sequential_reads() const { return sequential_reads_; }
  uint64_t random_reads() const { return random_reads_; }
  uint64_t total_reads() const { return sequential_reads_ + random_reads_; }
  /// Reads absorbed by the buffer pool (only when configured).
  uint64_t buffer_hits() const { return buffer_hits_; }

  /// Modelled elapsed I/O time, in seconds, for the recorded reads.
  double SimulatedIoSeconds() const;

  /// Resets the counters (not the allocated pages or open streams).
  /// Called between measured queries. The buffer pool's contents
  /// survive a reset (it models a warm cache across queries); call
  /// DropBufferPool() for a cold one.
  void ResetCounters();

  /// Empties the buffer pool.
  void DropBufferPool();

 private:
  DiskConfig config_;
  uint64_t next_page_ = 0;
  std::vector<uint64_t> stream_last_page_;
  std::vector<bool> stream_has_read_;
  uint64_t head_last_page_ = 0;
  bool head_has_read_ = false;
  uint64_t sequential_reads_ = 0;
  uint64_t random_reads_ = 0;
  uint64_t buffer_hits_ = 0;

  /// LRU buffer pool over global page ids: doubly-linked recency list
  /// plus an index into it. Touching a page moves it to the front;
  /// inserting beyond capacity evicts the back.
  struct BufferPool {
    std::list<uint64_t> recency;
    std::unordered_map<uint64_t, std::list<uint64_t>::iterator> index;
    /// Returns true (a hit) and refreshes recency when resident;
    /// otherwise inserts, evicting LRU if over `capacity`.
    bool Touch(uint64_t page, size_t capacity);
    void Clear();
  };
  BufferPool pool_;
};

}  // namespace knmatch

#endif  // KNMATCH_STORAGE_DISK_SIMULATOR_H_

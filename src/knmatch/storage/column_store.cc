#include "knmatch/storage/column_store.h"

#include <algorithm>
#include <cassert>

namespace knmatch {

namespace {
constexpr size_t kEntryBytes = sizeof(Value) + sizeof(PointId);
}  // namespace

ColumnStore::ColumnStore(const Dataset& db, DiskSimulator* disk)
    : dims_(db.dims()), size_(db.size()), disk_(disk), file_(disk) {
  entries_per_page_ = file_.payload_capacity() / kEntryBytes;
  assert(entries_per_page_ > 0 && "page too small for one entry");
  pages_per_dim_ = (size_ + entries_per_page_ - 1) / entries_per_page_;
  first_values_.resize(dims_);

  // Reuse the in-memory sorting logic, then serialize column by column.
  SortedColumns sorted(db);
  std::vector<std::byte> image;
  image.reserve(file_.page_size());
  for (size_t dim = 0; dim < dims_; ++dim) {
    auto vals = sorted.values(dim);
    auto ids = sorted.pids(dim);
    first_values_[dim].reserve(pages_per_dim_);
    for (size_t i = 0; i < vals.size(); ++i) {
      if (i % entries_per_page_ == 0) {
        first_values_[dim].push_back(vals[i]);
      }
      PutScalar(&image, vals[i]);
      PutScalar(&image, ids[i]);
      if ((i + 1) % entries_per_page_ == 0) {
        file_.AppendPage(image);
        image.clear();
      }
    }
    if (!image.empty()) {
      file_.AppendPage(image);
      image.clear();
    }
  }
}

size_t ColumnStore::OpenStream() const { return disk_->OpenStream(); }

ColumnEntry ColumnStore::DecodeEntry(std::span<const std::byte> image,
                                     size_t slot) const {
  ColumnEntry e;
  e.value = GetScalar<Value>(image, slot * kEntryBytes);
  e.pid = GetScalar<PointId>(image, slot * kEntryBytes + sizeof(Value));
  return e;
}

size_t ColumnStore::PageOf(size_t dim, size_t idx) const {
  return dim * pages_per_dim_ + idx / entries_per_page_;
}

Result<ColumnEntry> ColumnStore::ReadEntry(size_t stream, size_t dim,
                                           size_t idx) const {
  assert(dim < dims_ && idx < size_);
  auto image = file_.ReadPage(stream, PageOf(dim, idx));
  if (!image.ok()) return image.status();
  return DecodeEntry(image.value(), idx % entries_per_page_);
}

Result<size_t> ColumnStore::ReadRun(size_t stream, size_t dim, size_t idx,
                                    size_t len, bool descending,
                                    Value* values, PointId* pids) const {
  assert(dim < dims_ && idx < size_ && len >= 1);
  auto image = file_.ReadPage(stream, PageOf(dim, idx));
  if (!image.ok()) return image.status();
  const size_t slot = idx % entries_per_page_;
  size_t n;
  if (descending) {
    n = std::min(len, slot + 1);
    for (size_t i = 0; i < n; ++i) {
      const ColumnEntry e = DecodeEntry(image.value(), slot - i);
      values[i] = e.value;
      pids[i] = e.pid;
    }
  } else {
    const size_t page_base = idx - slot;
    const size_t in_page = std::min(entries_per_page_, size_ - page_base);
    n = std::min(len, in_page - slot);
    for (size_t i = 0; i < n; ++i) {
      const ColumnEntry e = DecodeEntry(image.value(), slot + i);
      values[i] = e.value;
      pids[i] = e.pid;
    }
  }
  return n;
}

size_t ColumnStore::LowerBound(size_t dim, Value v) const {
  const auto& firsts = first_values_[dim];
  // Find the last page whose first value is < v; the lower bound lives
  // there or at the start of the next page.
  auto it = std::lower_bound(firsts.begin(), firsts.end(), v);
  size_t page;  // page index within the dimension
  if (it == firsts.begin()) {
    page = 0;
  } else {
    page = static_cast<size_t>(it - firsts.begin()) - 1;
  }
  // In-page binary search over the peeked (uncharged) page image.
  auto image_or = file_.PeekPage(dim * pages_per_dim_ + page);
  const size_t base = page * entries_per_page_;
  if (!image_or.ok()) {
    // The page is damaged. Fall back to the directory's bound (the
    // page's first entry): never past the true lower bound, and the
    // first charged read of this page will report the loss.
    return base;
  }
  std::span<const std::byte> image = image_or.value();
  const size_t count = std::min(entries_per_page_, size_ - base);
  size_t lo = 0, hi = count;
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (DecodeEntry(image, mid).value < v) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return base + lo;
}

}  // namespace knmatch

#include "knmatch/storage/free_space.h"

namespace knmatch {

void FreeSpaceManager::Free(uint64_t id) { free_.insert(id); }

std::optional<uint64_t> FreeSpaceManager::Acquire() {
  if (free_.empty()) return std::nullopt;
  const uint64_t id = *free_.begin();
  free_.erase(free_.begin());
  return id;
}

std::vector<uint64_t> FreeSpaceManager::ToSortedList() const {
  return std::vector<uint64_t>(free_.begin(), free_.end());
}

void FreeSpaceManager::Restore(const std::vector<uint64_t>& ids) {
  free_.clear();
  free_.insert(ids.begin(), ids.end());
}

}  // namespace knmatch

#ifndef KNMATCH_STORAGE_COLUMN_STORE_H_
#define KNMATCH_STORAGE_COLUMN_STORE_H_

#include <vector>

#include "knmatch/common/dataset.h"
#include "knmatch/common/status.h"
#include "knmatch/common/types.h"
#include "knmatch/core/sorted_columns.h"
#include "knmatch/storage/paged_file.h"

namespace knmatch {

/// The disk layout of Section 4.1: every dimension sorted by attribute
/// value and stored sequentially on disk as (value, pid) entries, one
/// dimension after another. A small in-memory index (the first value of
/// every page, as a B+-tree inner level would cache) supports locating
/// the query's attribute without charged I/O — the two direction
/// cursors charge the located page on their first read anyway, which is
/// exactly the paper's accounting.
class ColumnStore {
 public:
  /// Builds the sorted, paged columns for `db` on the simulated disk.
  ColumnStore(const Dataset& db, DiskSimulator* disk);

  /// Dimensionality d.
  size_t dims() const { return dims_; }
  /// Cardinality c (entries per column).
  size_t column_size() const { return size_; }
  /// Total pages across all columns.
  size_t num_pages() const { return file_.num_pages(); }
  /// Entries stored per page.
  size_t entries_per_page() const { return entries_per_page_; }

  /// Opens an I/O accounting stream (one per cursor direction).
  size_t OpenStream() const;

  /// The simulator this store charges its I/O to (for page-budget
  /// accounting via QueryContext::ArmPages).
  const DiskSimulator* disk() const { return disk_; }

  /// Reads the idx-th smallest entry of `dim`, charging the page access
  /// to `stream`. Adjacent reads on the same stream touch the same page
  /// and cost nothing extra. Fails (kDataLoss / kUnavailable) when the
  /// underlying page cannot be read intact.
  Result<ColumnEntry> ReadEntry(size_t stream, size_t dim,
                                size_t idx) const;

  /// Reads up to `len` consecutive entries of `dim` starting at `idx`
  /// and walking toward smaller indices (`descending`, a downward AD
  /// cursor) or larger ones, into the SoA output arrays in walk order.
  /// Deliberately bounded to the single page holding `idx`: one charged
  /// ReadPage serves every entry returned, so the I/O accounting
  /// (pattern classification, buffer-pool recency, fault opportunities)
  /// is bit-identical to reading the same entries one ReadEntry at a
  /// time — the per-entry path's same-page re-reads on one stream are
  /// free. Returns how many entries were produced (>= 1).
  Result<size_t> ReadRun(size_t stream, size_t dim, size_t idx, size_t len,
                         bool descending, Value* values,
                         PointId* pids) const;

  /// Index of the first entry of `dim` whose value is >= v. Uses the
  /// in-memory page index plus an uncharged peek at one leaf page (see
  /// class comment). Infallible by design: if the peeked page is
  /// damaged, the page-directory bound (the page's first entry) is
  /// returned — conservative, and the cursor's first charged ReadEntry
  /// of that page surfaces the error before any result is produced.
  size_t LowerBound(size_t dim, Value v) const;

 private:
  ColumnEntry DecodeEntry(std::span<const std::byte> image,
                          size_t slot) const;
  /// File-level page index holding entry `idx` of `dim`.
  size_t PageOf(size_t dim, size_t idx) const;

  size_t dims_;
  size_t size_;
  size_t entries_per_page_;
  size_t pages_per_dim_;
  DiskSimulator* disk_;
  PagedFile file_;
  /// first_values_[dim][p] = value of the first entry in the p-th page
  /// of that dimension.
  std::vector<std::vector<Value>> first_values_;
};

}  // namespace knmatch

#endif  // KNMATCH_STORAGE_COLUMN_STORE_H_

#include "knmatch/storage/page_codec.h"

#include <array>
#include <cassert>
#include <cstring>

namespace knmatch {

namespace {

std::array<uint32_t, 256> MakeCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

uint32_t Crc32(std::span<const std::byte> data) {
  static const std::array<uint32_t, 256> kTable = MakeCrc32Table();
  uint32_t crc = 0xFFFFFFFFu;
  for (const std::byte b : data) {
    crc = (crc >> 8) ^ kTable[(crc ^ static_cast<uint8_t>(b)) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

std::vector<std::byte> FrameChecksummedPage(
    std::span<const std::byte> payload, size_t page_size) {
  assert(page_size > kPageFrameOverhead && "page too small for a frame");
  assert(payload.size() <= page_size - kPageFrameOverhead &&
         "payload exceeds framed page capacity");
  std::vector<std::byte> page(page_size, std::byte{0});
  const auto len = static_cast<uint32_t>(payload.size());
  std::memcpy(page.data(), &len, sizeof(len));
  std::memcpy(page.data() + sizeof(len), payload.data(), payload.size());
  const uint32_t crc = Crc32(
      std::span<const std::byte>(page.data(), page_size - sizeof(uint32_t)));
  std::memcpy(page.data() + page_size - sizeof(crc), &crc, sizeof(crc));
  return page;
}

Result<std::span<const std::byte>> VerifyAndUnframePage(
    std::span<const std::byte> page) {
  if (page.size() <= kPageFrameOverhead) {
    return Status::DataLoss("framed page truncated");
  }
  uint32_t stored_crc;
  std::memcpy(&stored_crc, page.data() + page.size() - sizeof(stored_crc),
              sizeof(stored_crc));
  const uint32_t computed = Crc32(
      std::span<const std::byte>(page.data(),
                                 page.size() - sizeof(uint32_t)));
  if (stored_crc != computed) {
    return Status::DataLoss("page checksum mismatch");
  }
  uint32_t len;
  std::memcpy(&len, page.data(), sizeof(len));
  if (len > page.size() - kPageFrameOverhead) {
    // The checksum matched a frame whose header claims an impossible
    // payload: a malformed write, not transfer damage.
    return Status::DataLoss("framed page length out of bounds");
  }
  return std::span<const std::byte>(page.data() + sizeof(uint32_t), len);
}

}  // namespace knmatch
